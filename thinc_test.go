package thinc

import (
	"net"
	"testing"
	"time"
)

// TestPublicAPIQuickstart exercises the package-level facade end to
// end: host a session, connect over an in-memory transport, draw, and
// verify the client converges — the README quick start as a test.
func TestPublicAPIQuickstart(t *testing.T) {
	accounts := NewAccounts()
	accounts.Add("alice", "secret")
	host := NewHost(320, 240, NewAuthenticator("alice", accounts), HostOptions{
		Core:          CoreOptions{RawCodec: CodecPNG},
		FlushInterval: time.Millisecond,
	})

	serverSide, clientSide := net.Pipe()
	go host.ServeConn(serverSide)

	conn, err := dialPipe(clientSide)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go conn.Run()

	host.Do(func(d *Display) {
		win := d.CreateWindow(XYWH(0, 0, 320, 240))
		d.FillRect(win, &GC{Fg: RGB(250, 250, 250)}, win.Bounds())
		d.DrawText(win, &GC{Fg: RGB(0, 0, 0)}, 10, 10, "public api")
		card := d.CreatePixmap(80, 40)
		d.FillRect(card, &GC{Fg: RGB(40, 90, 200)}, card.Bounds())
		d.CopyArea(win, card, card.Bounds(), Point{X: 100, Y: 100})
		d.FreePixmap(card)
	})
	want := host.ScreenChecksum()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if conn.Snapshot().Checksum() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("client did not converge: want %08x got %08x", want, conn.Snapshot().Checksum())
}

// dialPipe runs the client handshake over an established connection.
func dialPipe(nc net.Conn) (*Conn, error) {
	return Handshake(nc, "alice", "secret", 320, 240)
}

// TestLocalCoreWithoutNetwork drives the translation core directly: a
// display with the THINC driver, an attached command-buffer client, and
// a message-executing client — no sockets anywhere.
func TestLocalCoreWithoutNetwork(t *testing.T) {
	core := NewCoreServer(CoreOptions{})
	dpy := NewDisplay(64, 48, core)
	buf := core.AttachClient(64, 48)
	view := NewClient(64, 48)

	if err := view.ApplyAll(buf.FlushAll()); err != nil {
		t.Fatal(err)
	}
	win := dpy.CreateWindow(XYWH(0, 0, 64, 48))
	dpy.FillRect(win, &GC{Fg: RGB(9, 9, 9)}, XYWH(4, 4, 20, 20))
	if err := view.ApplyAll(buf.FlushAll()); err != nil {
		t.Fatal(err)
	}
	if !view.FB().Equal(dpy.Screen()) {
		t.Fatal("local client diverged")
	}
}

// TestExperimentsFacade runs a tiny experiment through the public
// harness type.
func TestExperimentsFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	e := NewExperiments(2, 1)
	tab := e.Fig7()
	if len(tab.Rows) != 11 {
		t.Fatalf("Fig7 rows = %d, want the 11 Table 2 sites", len(tab.Rows))
	}
}
