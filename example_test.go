package thinc_test

import (
	"fmt"

	"thinc"
)

// Example_localPipeline drives the whole translation pipeline without a
// network: a window system with the THINC virtual driver, a command
// buffer, and a message-executing client.
func Example_localPipeline() {
	core := thinc.NewCoreServer(thinc.CoreOptions{RawCodec: thinc.CodecPNG})
	dpy := thinc.NewDisplay(320, 240, core)
	buf := core.AttachClient(320, 240)
	view := thinc.NewClient(320, 240)
	if err := view.ApplyAll(buf.FlushAll()); err != nil { // initial refresh
		panic(err)
	}

	// An application draws: a page prepared offscreen, flipped onscreen.
	win := dpy.CreateWindow(thinc.XYWH(0, 0, 320, 240))
	page := dpy.CreatePixmap(300, 200)
	dpy.FillRect(page, &thinc.GC{Fg: thinc.RGB(250, 250, 250)}, page.Bounds())
	dpy.DrawText(page, &thinc.GC{Fg: thinc.RGB(0, 0, 0)}, 10, 10, "offscreen page")
	dpy.CopyArea(win, page, page.Bounds(), thinc.Point{X: 10, Y: 20})
	dpy.FreePixmap(page)

	// The client executes the protocol commands and matches the screen.
	if err := view.ApplyAll(buf.FlushAll()); err != nil {
		panic(err)
	}
	fmt.Println("client matches server:", view.FB().Equal(dpy.Screen()))
	// Output:
	// client matches server: true
}

// Example_serverResize shows server-side scaling (§6): a PDA-sized
// client attached to the same session receives resampled updates.
func Example_serverResize() {
	core := thinc.NewCoreServer(thinc.CoreOptions{})
	dpy := thinc.NewDisplay(640, 480, core)
	desktop := core.AttachClient(640, 480)
	pda := core.AttachClient(160, 120)
	dView := thinc.NewClient(640, 480)
	pView := thinc.NewClient(160, 120)
	dView.ApplyAll(desktop.FlushAll())
	pView.ApplyAll(pda.FlushAll())

	win := dpy.CreateWindow(thinc.XYWH(0, 0, 640, 480))
	dpy.FillRect(win, &thinc.GC{Fg: thinc.RGB(30, 90, 200)}, win.Bounds())
	dView.ApplyAll(desktop.FlushAll())
	pView.ApplyAll(pda.FlushAll())

	fmt.Println("desktop center:", dView.FB().At(320, 240) == thinc.RGB(30, 90, 200))
	fmt.Println("pda center:    ", pView.FB().At(80, 60) == thinc.RGB(30, 90, 200))
	// Output:
	// desktop center: true
	// pda center:     true
}
