package testutil

import (
	"strings"
	"testing"
	"time"
)

func baseIDs() map[string]bool {
	base := map[string]bool{}
	for _, g := range snapshot() {
		base[g.ID] = true
	}
	return base
}

func TestSnapshotSeesSelf(t *testing.T) {
	gs := snapshot()
	if len(gs) == 0 {
		t.Fatalf("snapshot returned no goroutines")
	}
	found := false
	for _, g := range gs {
		if strings.Contains(g.Stack, "testutil.snapshot") && g.ID != "" {
			found = true
		}
	}
	if !found {
		t.Fatalf("snapshot did not include the snapshotting goroutine")
	}
}

func TestLeakDetected(t *testing.T) {
	base := baseIDs()
	stop := make(chan struct{})
	defer close(stop)
	started := make(chan struct{})
	go func() {
		close(started)
		<-stop // deliberate leak for the duration of the check
	}()
	<-started
	leaked := leakedSince(base, 50*time.Millisecond)
	if len(leaked) != 1 {
		t.Fatalf("leakedSince found %d goroutines, want 1", len(leaked))
	}
	if !strings.Contains(leaked[0].Stack, "TestLeakDetected") {
		t.Fatalf("leak report missing origin stack:\n%s", leaked[0].Stack)
	}
}

func TestSettleGraceDrains(t *testing.T) {
	base := baseIDs()
	done := make(chan struct{})
	go func() {
		time.Sleep(30 * time.Millisecond) // slow but clean shutdown
		close(done)
	}()
	if leaked := leakedSince(base, 2*time.Second); len(leaked) != 0 {
		t.Fatalf("settle window did not absorb a draining goroutine: %d leaked", len(leaked))
	}
	<-done
}

func TestPreexistingGoroutinesIgnored(t *testing.T) {
	// A goroutine started before the snapshot is not a leak.
	stop := make(chan struct{})
	defer close(stop)
	started := make(chan struct{})
	go func() { close(started); <-stop }()
	<-started
	base := baseIDs()
	if leaked := leakedSince(base, 50*time.Millisecond); len(leaked) != 0 {
		t.Fatalf("preexisting goroutine reported as leak")
	}
}

// CheckGoroutines in its natural habitat: a clean test must pass.
func TestCheckGoroutinesClean(t *testing.T) {
	CheckGoroutines(t)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}

func TestBenignFilter(t *testing.T) {
	g := Goroutine{Stack: "goroutine 1 [chan receive]:\ntesting.(*T).Run(0xc000001)\n\t/go/src/testing/testing.go:1"}
	if !benign(g) {
		t.Fatalf("test-runner goroutine not filtered")
	}
	g2 := Goroutine{Stack: "goroutine 9 [chan receive]:\nthinc/internal/server.(*Host).flushLoop(0xc000001)\n\t/repo/server.go:1"}
	if benign(g2) {
		t.Fatalf("server goroutine wrongly filtered")
	}
}
