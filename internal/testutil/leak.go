// Package testutil holds test-only infrastructure shared across the
// repo's suites. Its centerpiece is a goroutine-leak checker:
// snapshot the live goroutines when a test starts, diff at teardown
// with stack filtering, and fail the test naming the survivors. The
// sharded delivery core's whole value proposition is goroutine
// accounting — O(shards), not O(sessions) — so every server, client,
// and chaos test runs under this checker.
package testutil

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// Goroutine is one parsed entry from a full runtime stack dump.
type Goroutine struct {
	ID    string // numeric id from the "goroutine N [state]:" header
	State string // e.g. "chan receive", "IO wait"
	Stack string // full text including header
}

// benign reports stacks that are never a leak: the test runner
// itself, runtime helpers, signal plumbing, and this checker.
func benign(g Goroutine) bool {
	for _, line := range strings.Split(g.Stack, "\n") {
		line = strings.TrimSpace(line)
		for _, p := range []string{
			"testing.RunTests",
			"testing.Main(",
			"testing.tRunner(",
			"testing.(*T).Run(",
			"testing.(*M).",
			"testing.runFuzzing(",
			"testing.runFuzzTests(",
			"runtime.goexit",
			"os/signal.signal_recv",
			"os/signal.loop",
			"runtime/pprof.",
			"thinc/internal/testutil.snapshot",
		} {
			if strings.HasPrefix(line, p) || strings.HasPrefix(line, "created by "+strings.TrimSuffix(p, "(")) {
				return true
			}
		}
	}
	return false
}

// snapshot parses a full goroutine dump.
func snapshot() []Goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []Goroutine
	for _, blk := range strings.Split(string(buf), "\n\n") {
		if !strings.HasPrefix(blk, "goroutine ") {
			continue
		}
		head, _, _ := strings.Cut(blk, "\n")
		rest := strings.TrimPrefix(head, "goroutine ")
		id, state, _ := strings.Cut(rest, " ")
		state = strings.Trim(state, "[]:")
		out = append(out, Goroutine{ID: id, State: state, Stack: blk})
	}
	return out
}

// leakedSince returns non-benign goroutines that are running now but
// were not in base, polling until they drain or the deadline passes —
// teardown is allowed a settle window because conn close and worker
// exit are asynchronous.
func leakedSince(base map[string]bool, deadline time.Duration) []Goroutine {
	var leaked []Goroutine
	stop := time.Now().Add(deadline)
	for {
		leaked = leaked[:0]
		for _, g := range snapshot() {
			if base[g.ID] || benign(g) {
				continue
			}
			leaked = append(leaked, g)
		}
		if len(leaked) == 0 || time.Now().After(stop) {
			return leaked
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// CheckGoroutines snapshots the current goroutines and registers a
// cleanup that fails the test if goroutines created during the test
// outlive it (after a settle grace). Call it first thing:
//
//	func TestServeConn(t *testing.T) {
//		testutil.CheckGoroutines(t)
//		...
//	}
//
// Cleanups run LIFO, so resources released via t.Cleanup after this
// call are torn down before the leak diff runs.
func CheckGoroutines(t testing.TB) {
	t.Helper()
	base := map[string]bool{}
	for _, g := range snapshot() {
		base[g.ID] = true
	}
	t.Cleanup(func() {
		if t.Failed() {
			return // don't bury the real failure under leak noise
		}
		leaked := leakedSince(base, 5*time.Second)
		if len(leaked) == 0 {
			return
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%d goroutine(s) leaked by this test:\n", len(leaked))
		for _, g := range leaked {
			fmt.Fprintf(&b, "\n%s\n", g.Stack)
		}
		t.Errorf("%s", b.String())
	})
}
