// Package loadsim is the multi-session load harness behind
// cmd/thinc-load: it attaches thousands of event-driven THINC sessions
// to a server.Fleet over in-memory simnet.EventConn pairs and proves
// the sharded delivery core's scaling claims — goroutine count stays
// O(shards), an idle session costs near-zero heap and zero timer
// churn, and damage-to-glass latency under load stays inside the
// wire-v5 e2e envelope.
//
// Each simulated client is goroutine-free in steady state: the
// EventConn data hook runs on the server's own shard worker when a
// flush lands, decrypts and parses whatever arrived, and answers
// Ping→Pong and TimeMark→MarkAck through EventSession.Deliver. Only
// the handshake borrows a transient goroutine.
package loadsim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"thinc/internal/auth"
	"thinc/internal/cipher"
	"thinc/internal/geom"
	"thinc/internal/overload"
	"thinc/internal/pixel"
	"thinc/internal/server"
	"thinc/internal/shard"
	"thinc/internal/simnet"
	"thinc/internal/telemetry"
	"thinc/internal/wire"
	"thinc/internal/xserver"
)

// Options configures one load run.
type Options struct {
	// Sessions is the number of concurrent sessions to attach.
	Sessions int
	// Active is the rotating subset receiving damage each tick.
	Active int
	// Duration is the measured drive phase; attach time is extra.
	Duration time.Duration
	// Tick is the damage cadence. Default 25ms.
	Tick time.Duration
	// W, H is the per-session display geometry. Default 96x64 — small
	// enough that 10k framebuffers fit comfortably, large enough that
	// resyncs and damage translation do real work.
	W, H int
	// Shards sizes the worker pool; 0 takes shard.DefaultShards.
	Shards int
	// ReattachEvery detaches and ticket-reattaches one rotating session
	// every N ticks (0 disables) — the churn rung.
	ReattachEvery int
	// DegradeEvery forces a rung cycle (lossless→compress→lossless) on
	// one rotating active session every N ticks (0 disables).
	DegradeEvery int

	// Self-check budgets; zero takes the listed default.
	E2EEnvelopeUS    int64 // p99 damage-to-glass, lossless rung. Default 50ms.
	TaskWaitBudgetUS int64 // p99 shard queue wait. Default 250ms.
	HeapBudgetBytes  int64 // marginal heap per idle session. Default 1 MiB.
	GoroutineSlack   int   // budget = base + 2*shards + slack. Default 24.

	// Progress, when set, receives human-readable phase updates.
	Progress func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Sessions <= 0 {
		o.Sessions = 100
	}
	if o.Active <= 0 {
		o.Active = 64
	}
	if o.Active > o.Sessions {
		o.Active = o.Sessions
	}
	if o.Duration <= 0 {
		o.Duration = 3 * time.Second
	}
	if o.Tick <= 0 {
		o.Tick = 25 * time.Millisecond
	}
	if o.W <= 0 || o.H <= 0 {
		o.W, o.H = 96, 64
	}
	if o.Shards <= 0 {
		o.Shards = shard.DefaultShards
	}
	if o.E2EEnvelopeUS <= 0 {
		// Damage-to-glass p99 at full scale. Well above the ~2.5ms a
		// single unloaded session measures (BENCH_pr7) — at 10k
		// sessions per core the tail absorbs heartbeat bursts and GC
		// marks over a multi-GB heap — but comfortably inside the
		// ~150ms interactivity threshold the THINC paper's web
		// benchmarks target.
		o.E2EEnvelopeUS = 100_000
	}
	if o.TaskWaitBudgetUS <= 0 {
		o.TaskWaitBudgetUS = 250_000
	}
	if o.HeapBudgetBytes <= 0 {
		o.HeapBudgetBytes = 1 << 20
	}
	if o.GoroutineSlack <= 0 {
		o.GoroutineSlack = 24
	}
	return o
}

const (
	lsUser   = "owner"
	lsSecret = "pw"
)

// lsession is one simulated client: the EventConn client end, its
// cipher stream, and the resumable frame parser the data hook drives.
type lsession struct {
	idx  int
	host *server.Host

	mu      sync.Mutex // guards conn/enc/es swap and all parser state
	conn    *simnet.EventConn
	enc     *cipher.StreamConn
	es      *server.EventSession
	closing bool // an intentional detach is in progress

	rbuf []byte // decrypt scratch
	pbuf []byte // decrypted byte accumulator
	off  int    // parse offset into pbuf

	ticket     []byte
	cacheEpoch uint64
	applyNS    int64 // parse time since last MarkAck (echoed as ApplyUS)
	rung       uint8

	msgs    atomic.Int64
	bytes   atomic.Int64
	pongs   atomic.Int64
	acks    atomic.Int64
	notices atomic.Int64
	dead    atomic.Bool
}

// onData is the EventConn hook: it runs on whatever goroutine wrote to
// our end — in steady state the server's shard worker — and consumes
// everything buffered. The mutex serializes it against the post-attach
// kick and against reattach swaps.
func (s *lsession) onData(int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drainLocked()
}

func (s *lsession) drainLocked() {
	if s.closing || s.dead.Load() {
		return
	}
	start := time.Now()
	for {
		n := s.conn.Buffered()
		if n == 0 {
			break
		}
		if cap(s.rbuf) < n {
			s.rbuf = make([]byte, n)
		}
		m, err := s.enc.Read(s.rbuf[:n])
		if err != nil {
			if !s.closing {
				s.dead.Store(true)
			}
			return
		}
		s.pbuf = append(s.pbuf, s.rbuf[:m]...)
		s.parseLocked()
	}
	s.applyNS += time.Since(start).Nanoseconds()
	// Drop a fully-consumed buffer, or slide a long tail down so one
	// giant resync does not pin its worst-case capacity forever.
	if s.off == len(s.pbuf) {
		s.pbuf = s.pbuf[:0]
		s.off = 0
	} else if s.off > 8192 {
		s.pbuf = append(s.pbuf[:0], s.pbuf[s.off:]...)
		s.off = 0
	}
}

// parseLocked consumes complete frames from pbuf. Control messages are
// decoded and answered; display traffic is counted and skipped — the
// harness measures delivery, not rendering.
func (s *lsession) parseLocked() {
	for {
		avail := len(s.pbuf) - s.off
		if avail < wire.HeaderSize {
			return
		}
		pl := int(binary.BigEndian.Uint32(s.pbuf[s.off+1:]))
		if avail < wire.HeaderSize+pl {
			return
		}
		t := wire.Type(s.pbuf[s.off])
		payload := s.pbuf[s.off+wire.HeaderSize : s.off+wire.HeaderSize+pl]
		s.off += wire.HeaderSize + pl
		s.msgs.Add(1)
		s.bytes.Add(int64(wire.HeaderSize + pl))
		switch t {
		case wire.TPing:
			if m, err := wire.Unmarshal(t, payload); err == nil {
				p := m.(*wire.Ping)
				s.deliver(&wire.Pong{Seq: p.Seq, TimeUS: p.TimeUS})
				s.pongs.Add(1)
			}
		case wire.TTimeMark:
			if m, err := wire.Unmarshal(t, payload); err == nil {
				tm := m.(*wire.TimeMark)
				apply := uint32(s.applyNS / 1000)
				s.applyNS = 0
				s.deliver(&wire.MarkAck{Epoch: tm.Epoch, TimeUS: tm.TimeUS,
					ApplyUS: apply})
				s.acks.Add(1)
			}
		case wire.TSessionTicket:
			if m, err := wire.Unmarshal(t, payload); err == nil {
				st := m.(*wire.SessionTicket)
				s.ticket = append(s.ticket[:0], st.Ticket...)
				s.cacheEpoch = st.CacheEpoch
			}
		case wire.TDegradeNotice:
			if m, err := wire.Unmarshal(t, payload); err == nil {
				s.rung = m.(*wire.DegradeNotice).Rung
				s.notices.Add(1)
			}
		}
	}
}

// deliver injects a client→server message. Errors during an
// intentional detach are expected; anything else marks the session
// dead for the final accounting.
func (s *lsession) deliver(m wire.Message) {
	if err := s.es.Deliver(m); err != nil && !s.closing {
		s.dead.Store(true)
	}
}

// Run executes one load run and returns its self-checking report.
func Run(o Options) (*Report, error) {
	o = o.withDefaults()
	progress := o.Progress
	if progress == nil {
		progress = func(string, ...any) {}
	}

	runtime.GC()
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	baseGoroutines := runtime.NumGoroutine()

	acc := auth.NewAccounts()
	acc.Add(lsUser, lsSecret)
	gate := auth.NewAuthenticator(lsUser, acc)

	fleet := server.NewFleet(server.Options{
		// Audit probes need a client-side framebuffer to digest; the
		// harness client renders nothing, so the audit stays off. The
		// e2e mark pipeline (which needs only acks) stays on — it is
		// the latency instrument this run reports.
		DisableAudit: true,
	}, shard.Options{Shards: o.Shards})
	defer fleet.Close()

	sessions := make([]*lsession, o.Sessions)
	attachStart := time.Now()
	pool := fleet.Scheduler().Pool()
	for i := range sessions {
		s := &lsession{idx: i, host: fleet.NewHost(o.W, o.H, gate)}
		if err := attach(s, o, false); err != nil {
			return nil, fmt.Errorf("attach session %d: %w", i, err)
		}
		sessions[i] = s
		if (i+1)%1000 == 0 {
			progress("attached %d/%d sessions", i+1, o.Sessions)
		}
		// Pace the storm against the delivery core: an unthrottled
		// attach loop would monopolize the CPU and starve heartbeat
		// passes for the sessions already attached. Yielding whenever
		// the run queue backs up keeps delivery current throughout.
		if i%32 == 31 {
			for pool.Stats().Depth > 128 {
				time.Sleep(2 * time.Millisecond)
			}
		}
	}
	attachMS := time.Since(attachStart).Milliseconds()
	progress("all %d sessions attached in %dms", o.Sessions, attachMS)

	// Let attach-phase resyncs fully drain, then measure the idle
	// steady state: this is where goroutine and heap claims are made.
	time.Sleep(300 * time.Millisecond)
	runtime.GC()
	var msIdle runtime.MemStats
	runtime.ReadMemStats(&msIdle)
	idleGoroutines := runtime.NumGoroutine()
	heapPer := int64(0)
	if msIdle.HeapAlloc > msBefore.HeapAlloc {
		heapPer = int64(msIdle.HeapAlloc-msBefore.HeapAlloc) / int64(o.Sessions)
	}
	progress("idle: %d goroutines (base %d), %d heap bytes/session",
		idleGoroutines, baseGoroutines, heapPer)

	// Drive phase: rotating damage over the active subset, optional
	// degradation and reattach churn riding the same clock.
	cpuStart := cpuTime()
	driveStart := time.Now()
	var reattaches int64
	next := 0
	degradeAt := 0
	tick := 0
	for time.Since(driveStart) < o.Duration {
		tickStart := time.Now()
		for j := 0; j < o.Active; j++ {
			s := sessions[next%len(sessions)]
			next++
			if s.dead.Load() {
				continue
			}
			paint(s.host, o, tick, j)
		}
		if o.DegradeEvery > 0 && tick%o.DegradeEvery == 0 && tick > 0 {
			// Walk one session up a rung and the previous one back down;
			// active sessions flush constantly, so notices flow.
			sessions[degradeAt%len(sessions)].host.ForceRung(0)
			degradeAt++
			sessions[degradeAt%len(sessions)].host.ForceRung(1)
		}
		if o.ReattachEvery > 0 && tick%o.ReattachEvery == 0 && tick > 0 {
			s := sessions[(tick/o.ReattachEvery)%len(sessions)]
			if !s.dead.Load() {
				if err := reattach(s, o); err != nil {
					s.dead.Store(true)
				} else {
					reattaches++
				}
			}
		}
		tick++
		if rest := o.Tick - time.Since(tickStart); rest > 0 {
			time.Sleep(rest)
		}
	}
	// Give in-flight marks one last interval to ack before snapshot.
	time.Sleep(200 * time.Millisecond)
	driveMS := time.Since(driveStart).Milliseconds()
	cpuSec := cpuTime() - cpuStart
	progress("drive done: %d ticks, %d reattaches, %.2f cpu-sec",
		tick, reattaches, cpuSec)

	// Undo any rung still forced so the final state is uniform.
	if o.DegradeEvery > 0 {
		sessions[degradeAt%len(sessions)].host.ForceRung(0)
	}

	reg := fleet.Telemetry()
	rep := &Report{
		Schema:   ReportSchema,
		Sessions: o.Sessions,
		Active:   o.Active,
		Shards:   o.Shards,
		Procs:    runtime.GOMAXPROCS(0),
		AttachMS: attachMS,
		DriveMS:  driveMS,
		Goroutines: GoroutineReport{
			Base:   baseGoroutines,
			Idle:   idleGoroutines,
			Final:  runtime.NumGoroutine(),
			Budget: baseGoroutines + 2*o.Shards + o.GoroutineSlack,
		},
		HeapPerIdleSession: heapPer,
		TaskWait:           pctOf(histSnap(reg, "thinc_shard_task_wait_ns"), 1000),
		TaskRun:            pctOf(histSnap(reg, "thinc_shard_task_run_ns"), 1000),
		E2E: pctOf(histSnap(reg, "thinc_e2e_latency_us",
			telemetry.L("rung", overload.RungName(0))), 1),
		StageQueue: pctOf(histSnap(reg, "thinc_e2e_stage_ns",
			telemetry.L("stage", "queue")), 1000),
		StageWrite: pctOf(histSnap(reg, "thinc_e2e_stage_ns",
			telemetry.L("stage", "write")), 1000),
		StageWire: pctOf(histSnap(reg, "thinc_e2e_stage_ns",
			telemetry.L("stage", "wire")), 1000),
		StageApply: pctOf(histSnap(reg, "thinc_e2e_stage_ns",
			telemetry.L("stage", "apply")), 1000),
		ShardTasks:       reg.Value("thinc_shard_tasks"),
		ShardWakes:       reg.Value("thinc_shard_task_wakes_total"),
		ShardRuns:        reg.Value("thinc_shard_task_runs_total"),
		WheelScheduled:   reg.Value("thinc_shard_wheel_scheduled_total"),
		WheelFired:       reg.Value("thinc_shard_wheel_fired_total"),
		WheelPending:     reg.Value("thinc_shard_wheel_pending"),
		HeartbeatsSent:   reg.Value("thinc_heartbeats_sent_total"),
		MarksSent:        reg.Value("thinc_e2e_marks_total"),
		MarkAcks:         reg.Value("thinc_e2e_acks_total"),
		Reattaches:       reattaches,
		E2EEnvelopeUS:    o.E2EEnvelopeUS,
		TaskWaitBudgetUS: o.TaskWaitBudgetUS,
		HeapBudgetBytes:  o.HeapBudgetBytes,
	}
	if cpuSec > 0 && driveMS > 0 {
		rep.CPUCoresUsed = cpuSec / (float64(driveMS) / 1000)
		if rep.CPUCoresUsed > 0 {
			rep.SessionsPerCore = float64(o.Sessions) / rep.CPUCoresUsed
		}
	}
	for _, s := range sessions {
		rep.ClientMsgs += s.msgs.Load()
		rep.ClientBytes += s.bytes.Load()
		rep.ClientPongs += s.pongs.Load()
		rep.DegradeNotices += s.notices.Load()
		if s.dead.Load() {
			rep.SessionFailures++
		}
	}

	// Orderly teardown before the deferred fleet.Close: detach every
	// client so close-path errors never count as session failures.
	for _, s := range sessions {
		s.mu.Lock()
		s.closing = true
		s.mu.Unlock()
	}
	for _, s := range sessions {
		s.conn.Close()
	}
	return rep, nil
}

// paint queues one desktop-style damage burst on the session's host:
// a moving fill plus a line of text, sized well under one flush budget.
func paint(h *server.Host, o Options, tick, slot int) {
	h.Do(func(d *xserver.Display) {
		win := d.CreateWindow(geom.XYWH(0, 0, o.W, o.H))
		x := (tick * 7) % (o.W - 32)
		y := (slot * 5) % (o.H - 24)
		d.FillRect(win, &xserver.GC{Fg: pixel.RGB(uint8(tick*13), 80, 40)},
			geom.XYWH(x, y, 32, 24))
		d.DrawText(win, &xserver.GC{Fg: pixel.RGB(240, 240, 240)}, 4, 4,
			fmt.Sprintf("t%d", tick))
	})
}

// attach performs the client handshake over a fresh EventConn pair,
// with the server side running ServeEvent on a transient goroutine.
// On success the session's data hook is installed and any bytes that
// landed before it (session ticket, initial resync) are drained.
func attach(s *lsession, o Options, asReattach bool) error {
	cln, srv := simnet.NewEventPair()
	type serveRes struct {
		es  *server.EventSession
		err error
	}
	resC := make(chan serveRes, 1)
	go func() {
		es, err := s.host.ServeEvent(srv)
		resC <- serveRes{es, err}
	}()

	fail := func(err error) error {
		cln.Close()
		<-resC // the server side fails on the closed pipe; reap it
		return err
	}
	_ = cln.SetReadDeadline(time.Now().Add(10 * time.Second))
	m, err := wire.ReadMessage(cln)
	if err != nil {
		return fail(err)
	}
	ch, ok := m.(*wire.AuthChallenge)
	if !ok {
		return fail(fmt.Errorf("loadsim: expected challenge, got %v", m.Type()))
	}
	if err := wire.WriteMessage(cln, &wire.AuthResponse{
		User: lsUser, Proof: auth.Proof(lsSecret, ch.Nonce)}); err != nil {
		return fail(err)
	}
	m, err = wire.ReadMessage(cln)
	if err != nil {
		return fail(err)
	}
	if res, ok := m.(*wire.AuthResult); !ok || !res.OK {
		return fail(errors.New("loadsim: authentication refused"))
	}
	enc, err := cipher.NewStreamConn(cln, auth.SessionKey(lsSecret, ch.Nonce), false)
	if err != nil {
		return fail(err)
	}
	var hello wire.Message
	if asReattach {
		hello = &wire.Reattach{Ticket: s.ticket, ViewW: o.W, ViewH: o.H,
			Name: lsUser, Role: wire.RoleOwner, CacheEpoch: s.cacheEpoch}
	} else {
		hello = &wire.ClientInit{ViewW: o.W, ViewH: o.H, Name: lsUser,
			Role: wire.RoleOwner}
	}
	if err := wire.WriteMessage(enc, hello); err != nil {
		return fail(err)
	}
	m, err = wire.ReadMessage(enc)
	if err != nil {
		return fail(err)
	}
	if _, ok := m.(*wire.ServerInit); !ok {
		return fail(fmt.Errorf("loadsim: expected server init, got %v", m.Type()))
	}
	_ = cln.SetReadDeadline(time.Time{})

	res := <-resC
	if res.err != nil {
		cln.Close()
		return res.err
	}
	s.mu.Lock()
	s.conn, s.enc, s.es = cln, enc, res.es
	s.closing = false
	s.pbuf, s.off = s.pbuf[:0], 0
	s.mu.Unlock()
	// Writes that landed before the hook was installed do not fire it;
	// one manual kick drains them (the hook serializes via s.mu).
	cln.SetOnData(s.onData)
	s.onData(0)
	return nil
}

// reattach detaches the session (its server state is retained under
// DetachGrace) and resumes it by ticket on a fresh pair.
func reattach(s *lsession, o Options) error {
	s.mu.Lock()
	if len(s.ticket) == 0 {
		s.mu.Unlock()
		return errors.New("loadsim: no ticket yet")
	}
	s.closing = true
	old := s.conn
	es := s.es
	s.mu.Unlock()
	es.Close()
	old.Close()
	return attach(s, o, true)
}
