package loadsim

import (
	"fmt"

	"thinc/internal/telemetry"
)

// ReportSchema versions the BENCH_pr10.json layout.
const ReportSchema = "thinc-load/v1"

// Pct is a percentile summary extracted from a telemetry histogram,
// reported in microseconds regardless of the histogram's native unit.
type Pct struct {
	Count int64 `json:"count"`
	AvgUS int64 `json:"avg_us"`
	P50US int64 `json:"p50_us"`
	P95US int64 `json:"p95_us"`
	P99US int64 `json:"p99_us"`
}

// GoroutineReport captures the goroutine-count evidence for the core
// scaling claim: session count must not leak into goroutine count.
type GoroutineReport struct {
	// Base is the count before the fleet existed (harness + runtime).
	Base int `json:"base"`
	// Idle is the steady-state count with every session attached and
	// no active workload.
	Idle int `json:"idle"`
	// Final is the count after the drive phase, sessions still attached.
	Final int `json:"final"`
	// Budget is the self-check ceiling for Idle and Final:
	// Base + 2*Shards + slack. O(shards), independent of Sessions.
	Budget int `json:"budget"`
}

// Report is the self-checking output of one load run — the artifact
// cmd/thinc-load writes as BENCH_pr10.json. Check() returns the list
// of violated invariants; an empty list is the pass criterion, so the
// file proves its own claims rather than asking the reader to eyeball
// thresholds.
type Report struct {
	Schema   string `json:"schema"`
	Sessions int    `json:"sessions"`
	Active   int    `json:"active_sessions"`
	Shards   int    `json:"shards"`
	Procs    int    `json:"gomaxprocs"`

	AttachMS int64 `json:"attach_ms"` // wall time to attach every session
	DriveMS  int64 `json:"drive_ms"`  // wall time of the measured phase

	// SessionsPerCore is Sessions divided by the CPU cores actually
	// consumed during the drive phase (process CPU time / wall time) —
	// the honest capacity headline, not a division by GOMAXPROCS.
	SessionsPerCore float64 `json:"sessions_per_core"`
	CPUCoresUsed    float64 `json:"cpu_cores_used"`

	Goroutines GoroutineReport `json:"goroutines"`

	// HeapPerIdleSession is (heap after attach+GC - heap before fleet
	// +GC) / Sessions: the marginal footprint of one idle session.
	HeapPerIdleSession int64 `json:"heap_bytes_per_idle_session"`

	// TaskWait is wake-to-run queueing delay on the shard workers (the
	// fairness headline); TaskRun is the cost of one pump pass — the
	// flush latency of the sharded core.
	TaskWait Pct `json:"task_wait"`
	TaskRun  Pct `json:"task_run"`

	// E2E is client-perceived damage-to-glass latency at the lossless
	// rung, measured by the wire-v5 TimeMark/MarkAck pipeline — the
	// same instrument BENCH_pr7.json reads, now under 10k sessions.
	// The stage split attributes the tail: queue (damage sat in the
	// client buffer), write (batch encode+write), wire (flight +
	// client decode), apply (client-reported paint time).
	E2E        Pct `json:"e2e_lossless"`
	StageQueue Pct `json:"e2e_stage_queue"`
	StageWrite Pct `json:"e2e_stage_write"`
	StageWire  Pct `json:"e2e_stage_wire"`
	StageApply Pct `json:"e2e_stage_apply"`

	// Shard occupancy at the end of the drive phase.
	ShardTasks      int64 `json:"shard_tasks"`
	ShardWakes      int64 `json:"shard_wakes_total"`
	ShardRuns       int64 `json:"shard_runs_total"`
	WheelScheduled  int64 `json:"wheel_scheduled_total"`
	WheelFired      int64 `json:"wheel_fired_total"`
	WheelPending    int64 `json:"wheel_pending"`
	HeartbeatsSent  int64 `json:"heartbeats_sent_total"`
	MarksSent       int64 `json:"e2e_marks_total"`
	MarkAcks        int64 `json:"e2e_acks_total"`
	ClientPongs     int64 `json:"client_pongs_sent"`
	ClientMsgs      int64 `json:"client_msgs_received"`
	ClientBytes     int64 `json:"client_bytes_received"`
	DegradeNotices  int64 `json:"degrade_notices_received"`
	Reattaches      int64 `json:"reattaches_completed"`
	SessionFailures int64 `json:"session_failures"`

	// Budgets the checks ran against (recorded so the JSON is
	// self-describing).
	E2EEnvelopeUS    int64 `json:"budget_e2e_p99_us"`
	TaskWaitBudgetUS int64 `json:"budget_task_wait_p99_us"`
	HeapBudgetBytes  int64 `json:"budget_heap_bytes_per_session"`
}

// Check validates the run's invariants and returns every violation.
func (r *Report) Check() []string {
	var bad []string
	fail := func(format string, args ...any) {
		bad = append(bad, fmt.Sprintf(format, args...))
	}
	if r.Schema != ReportSchema {
		fail("schema %q, want %q", r.Schema, ReportSchema)
	}
	if r.SessionFailures != 0 {
		fail("%d sessions died during the run", r.SessionFailures)
	}
	if r.ShardTasks != int64(r.Sessions) {
		fail("shard tasks %d != sessions %d: connections leaked or died",
			r.ShardTasks, r.Sessions)
	}
	// The scaling claim: goroutines are O(shards), never O(sessions).
	if r.Goroutines.Idle > r.Goroutines.Budget {
		fail("idle goroutines %d exceed O(shards) budget %d",
			r.Goroutines.Idle, r.Goroutines.Budget)
	}
	if r.Goroutines.Final > r.Goroutines.Budget {
		fail("post-drive goroutines %d exceed O(shards) budget %d",
			r.Goroutines.Final, r.Goroutines.Budget)
	}
	if r.HeapPerIdleSession > r.HeapBudgetBytes {
		fail("heap %d bytes per idle session exceeds budget %d",
			r.HeapPerIdleSession, r.HeapBudgetBytes)
	}
	// Liveness: heartbeats flowed both ways, marks closed the loop.
	if r.HeartbeatsSent == 0 {
		fail("no heartbeats sent: timer wheel never fired heartbeat passes")
	}
	if r.ClientPongs == 0 {
		fail("no pongs returned: inbound delivery path dead")
	}
	if r.MarksSent == 0 || r.MarkAcks == 0 {
		fail("e2e pipeline dead: %d marks, %d acks", r.MarksSent, r.MarkAcks)
	}
	if r.E2E.Count == 0 {
		fail("no e2e latency samples at the lossless rung")
	} else if r.E2E.P99US > r.E2EEnvelopeUS {
		fail("e2e p99 %dus exceeds envelope %dus", r.E2E.P99US, r.E2EEnvelopeUS)
	}
	if r.TaskWait.Count == 0 {
		fail("no task-wait samples: shard pool hooks disconnected")
	} else if r.TaskWait.P99US > r.TaskWaitBudgetUS {
		fail("task wait p99 %dus exceeds budget %dus",
			r.TaskWait.P99US, r.TaskWaitBudgetUS)
	}
	if r.WheelFired == 0 {
		fail("timer wheel never fired")
	}
	return bad
}

// histSnap finds the named histogram series (matching any provided
// labels) in a registry snapshot — the same extraction internal/bench
// uses for its reports.
func histSnap(reg *telemetry.Registry, name string, labels ...telemetry.Label) telemetry.HistogramSnapshot {
	want := map[string]string{}
	for _, l := range labels {
		want[l.Key] = l.Value
	}
	for _, s := range reg.Snapshot() {
		if s.Name != name || s.Histogram == nil {
			continue
		}
		match := true
		for k, v := range want {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return *s.Histogram
		}
	}
	return telemetry.HistogramSnapshot{}
}

// pctOf folds a histogram snapshot into microsecond percentiles; div
// converts the native unit (1 for us histograms, 1000 for ns).
func pctOf(s telemetry.HistogramSnapshot, div int64) Pct {
	p := Pct{Count: s.Count}
	if s.Count == 0 {
		return p
	}
	p.AvgUS = s.Sum / s.Count / div
	p.P50US = quantile(s, 0.50) / div
	p.P95US = quantile(s, 0.95) / div
	p.P99US = quantile(s, 0.99) / div
	return p
}

// quantile locates the q-th quantile by linear interpolation inside
// the containing bucket, in the histogram's native unit. The overflow
// bucket reports its lower bound.
func quantile(s telemetry.HistogramSnapshot, q float64) int64 {
	target := int64(q * float64(s.Count))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, c := range s.Buckets {
		if seen+c < target {
			seen += c
			continue
		}
		if i >= len(s.Bounds) { // +Inf bucket
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := int64(0)
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		frac := float64(target-seen) / float64(c)
		return lo + int64(frac*float64(hi-lo))
	}
	return s.Bounds[len(s.Bounds)-1]
}
