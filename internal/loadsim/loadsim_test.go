package loadsim

import (
	"os"
	"testing"
	"time"

	"thinc/internal/telemetry"
	"thinc/internal/testutil"
)

// TestRunSmoke drives a small fleet through the full harness path —
// attach, damage, degradation churn, ticket reattach — and requires
// the report to pass its own self-checks. Budgets are loosened versus
// the 10k benchmark because this test also runs under -race, which
// slows every stage by an order of magnitude.
func TestRunSmoke(t *testing.T) {
	testutil.CheckGoroutines(t)
	sessions, duration := 200, 1200*time.Millisecond
	if testing.Short() {
		sessions, duration = 60, 600*time.Millisecond
	}
	rep, err := Run(Options{
		Sessions:      sessions,
		Active:        24,
		Duration:      duration,
		Tick:          20 * time.Millisecond,
		ReattachEvery: 10,
		DegradeEvery:  8,

		E2EEnvelopeUS:    2_000_000,
		TaskWaitBudgetUS: 2_000_000,
		HeapBudgetBytes:  4 << 20, // small fleets amortize fixed cost badly
		Progress:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad := rep.Check(); len(bad) > 0 {
		t.Fatalf("self-check failures: %v", bad)
	}
	if rep.Reattaches == 0 {
		t.Error("reattach churn never completed a reattach")
	}
	if rep.DegradeNotices == 0 {
		t.Error("degradation churn never delivered a notice")
	}
	if rep.ClientMsgs == 0 || rep.ClientBytes == 0 {
		t.Error("clients decoded no traffic")
	}
}

// TestLoadSmoke1K is the `make bench-load-smoke` CI entry: a thousand
// event-driven sessions under the race detector, self-checked like the
// full 10k benchmark. Gated behind THINC_LOAD_SMOKE because a 1k-fleet
// race-instrumented run is too heavy for every `go test ./...`.
func TestLoadSmoke1K(t *testing.T) {
	if os.Getenv("THINC_LOAD_SMOKE") == "" {
		t.Skip("set THINC_LOAD_SMOKE=1 to run the 1k-session load smoke")
	}
	testutil.CheckGoroutines(t)
	rep, err := Run(Options{
		Sessions:      1000,
		Active:        32,
		Duration:      2 * time.Second,
		Tick:          25 * time.Millisecond,
		ReattachEvery: 20,
		DegradeEvery:  16,

		// Race instrumentation slows every stage ~10x and fattens the
		// heap, so the latency envelopes widen and the per-session heap
		// budget doubles; the structural invariants (no dead sessions,
		// O(shards) goroutines, live heartbeat/mark loops) stay strict.
		E2EEnvelopeUS:    5_000_000,
		TaskWaitBudgetUS: 5_000_000,
		HeapBudgetBytes:  2 << 20,
		Progress:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad := rep.Check(); len(bad) > 0 {
		t.Fatalf("self-check failures: %v", bad)
	}
	if rep.Sessions != 1000 || rep.ShardTasks != 1000 {
		t.Fatalf("fleet incomplete: %d sessions, %d tasks", rep.Sessions, rep.ShardTasks)
	}
}

// TestReportCheck pins the self-check logic itself: a fabricated
// report violating each invariant must be flagged, and a healthy one
// must pass clean.
func TestReportCheck(t *testing.T) {
	good := Report{
		Schema: ReportSchema, Sessions: 10, Shards: 4,
		Goroutines:         GoroutineReport{Base: 5, Idle: 12, Final: 13, Budget: 37},
		HeapPerIdleSession: 1000, HeapBudgetBytes: 2000,
		TaskWait:       Pct{Count: 100, P99US: 10},
		E2E:            Pct{Count: 50, P99US: 500},
		ShardTasks:     10,
		HeartbeatsSent: 10, ClientPongs: 10, MarksSent: 5, MarkAcks: 5,
		WheelFired: 20, E2EEnvelopeUS: 1000, TaskWaitBudgetUS: 1000,
	}
	if bad := good.Check(); len(bad) != 0 {
		t.Fatalf("healthy report flagged: %v", bad)
	}
	cases := []struct {
		name   string
		mutate func(*Report)
	}{
		{"dead sessions", func(r *Report) { r.SessionFailures = 1 }},
		{"task leak", func(r *Report) { r.ShardTasks = 9 }},
		{"goroutines O(sessions)", func(r *Report) { r.Goroutines.Idle = 100 }},
		{"heap blowout", func(r *Report) { r.HeapPerIdleSession = 5000 }},
		{"no heartbeats", func(r *Report) { r.HeartbeatsSent = 0 }},
		{"e2e over envelope", func(r *Report) { r.E2E.P99US = 5000 }},
		{"no e2e samples", func(r *Report) { r.E2E.Count = 0 }},
		{"task wait blowout", func(r *Report) { r.TaskWait.P99US = 5000 }},
		{"wheel dead", func(r *Report) { r.WheelFired = 0 }},
	}
	for _, tc := range cases {
		r := good
		tc.mutate(&r)
		if bad := r.Check(); len(bad) == 0 {
			t.Errorf("%s: violation not flagged", tc.name)
		}
	}
}

// TestQuantile pins the percentile extraction against a hand-built
// histogram: 90 samples in [0,100), 10 in [100,200).
func TestQuantile(t *testing.T) {
	s := telemetry.HistogramSnapshot{
		Count:   100,
		Sum:     10_000,
		Bounds:  []int64{100, 200},
		Buckets: []int64{90, 10, 0},
	}
	if p50 := quantile(s, 0.50); p50 < 40 || p50 > 70 {
		t.Errorf("p50 = %d, want ~55", p50)
	}
	if p99 := quantile(s, 0.99); p99 < 100 || p99 > 200 {
		t.Errorf("p99 = %d, want inside [100,200)", p99)
	}
	if got := pctOf(s, 1).AvgUS; got != 100 {
		t.Errorf("avg = %d, want 100", got)
	}
	if empty := pctOf(telemetry.HistogramSnapshot{}, 1); empty.Count != 0 || empty.P99US != 0 {
		t.Errorf("empty snapshot produced %+v", empty)
	}
}
