package loadsim

import "syscall"

// cpuTime returns the process's cumulative user+system CPU seconds.
// The drive phase differences two readings to compute cores actually
// consumed — the denominator of the sessions-per-core headline.
func cpuTime() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return float64(ru.Utime.Sec) + float64(ru.Utime.Usec)/1e6 +
		float64(ru.Stime.Sec) + float64(ru.Stime.Usec)/1e6
}
