package driver

import (
	"testing"

	"thinc/internal/fb"
	"thinc/internal/geom"
	"thinc/internal/pixel"
)

func TestScreenID(t *testing.T) {
	if !Screen.IsScreen() {
		t.Fatal("Screen must report IsScreen")
	}
	if DrawableID(1).IsScreen() || DrawableID(42).IsScreen() {
		t.Fatal("pixmap ids must not report IsScreen")
	}
}

// TestNopIsCompleteAndInert checks that the embeddable no-op driver
// accepts every entrypoint without side effects (the local-PC path and
// the base for partial drivers).
func TestNopIsCompleteAndInert(t *testing.T) {
	var d Driver = Nop{}
	d.Init(nil, 100, 100)
	d.CreatePixmap(1, 10, 10)
	d.FillSolid(Screen, geom.XYWH(0, 0, 5, 5), pixel.RGB(1, 2, 3))
	d.FillTile(Screen, geom.XYWH(0, 0, 5, 5), fb.NewTile(1, 1, []pixel.ARGB{0}))
	d.FillStipple(Screen, geom.XYWH(0, 0, 5, 5), fb.NewBitmap(5, 5), 0, 0, false)
	d.PutImage(Screen, geom.XYWH(0, 0, 1, 1), []pixel.ARGB{0}, 1)
	d.Composite(Screen, geom.XYWH(0, 0, 1, 1), []pixel.ARGB{0}, 1)
	d.CopyArea(Screen, 1, geom.XYWH(0, 0, 5, 5), geom.Point{})
	d.VideoSetup(1, 8, 8, geom.XYWH(0, 0, 8, 8))
	d.VideoFrame(1, pixel.NewYV12(8, 8), 0)
	d.VideoMove(1, geom.XYWH(1, 1, 8, 8))
	d.VideoStop(1)
	d.NotifyInput(geom.Point{X: 1, Y: 2})
	d.DestroyPixmap(1)
}
