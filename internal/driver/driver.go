// Package driver defines the video device driver interface — the
// well-defined, low-level, device-dependent layer between the window
// server and the display hardware that THINC virtualizes (§3). The
// window system (internal/xserver) renders application requests in
// software and invokes these entrypoints with the request's *semantic*
// parameters still intact; a hardware driver would accelerate them, the
// local driver ignores them (the software-rendered surface is already
// the display), and THINC's virtual driver translates them into protocol
// commands.
package driver

import (
	"thinc/internal/fb"
	"thinc/internal/geom"
	"thinc/internal/pixel"
)

// DrawableID names a rendering target known to the display system.
// ID 0 is always the screen; positive IDs are offscreen pixmaps.
type DrawableID uint32

// Screen is the fixed ID of the visible framebuffer.
const Screen DrawableID = 0

// IsScreen reports whether the drawable is the visible framebuffer.
func (d DrawableID) IsScreen() bool { return d == Screen }

// Memory gives drivers read access to the display system's rendered
// surfaces ("video memory"): the screen and all offscreen pixmaps. A
// driver uses it to fetch pixel data when it must fall back to RAW.
type Memory interface {
	// ReadPixels returns the current contents of r on drawable d,
	// row-major with stride r.W().
	ReadPixels(d DrawableID, r geom.Rect) []pixel.ARGB
	// SurfaceSize returns the geometry of drawable d.
	SurfaceSize(d DrawableID) (w, h int)
}

// Driver is the video device driver interface. Every entrypoint is
// invoked after the window system has rendered the operation into its
// surface, with the operation's semantic parameters. Rectangles are
// already clipped to the drawable.
//
// Implementations must not retain the pix/tile/bitmap slices beyond the
// call unless they copy them.
type Driver interface {
	// Init attaches the driver to the display system.
	Init(mem Memory, screenW, screenH int)

	// CreatePixmap and DestroyPixmap track offscreen drawable lifetime —
	// the hooks THINC's offscreen awareness builds on (§4.1).
	CreatePixmap(d DrawableID, w, h int)
	DestroyPixmap(d DrawableID)

	// FillSolid paints r on d with a solid color.
	FillSolid(d DrawableID, r geom.Rect, c pixel.ARGB)
	// FillTile tiles r on d with the pattern.
	FillTile(d DrawableID, r geom.Rect, tile *fb.Tile)
	// FillStipple paints r through a 1-bit stipple anchored at r's
	// origin (glyph text arrives here).
	FillStipple(d DrawableID, r geom.Rect, bm *fb.Bitmap, fg, bg pixel.ARGB, transparent bool)
	// PutImage writes client-supplied pixel data (stride in pixels).
	PutImage(d DrawableID, r geom.Rect, pix []pixel.ARGB, stride int)
	// Composite alpha-blends pixel data over r.
	Composite(d DrawableID, r geom.Rect, pix []pixel.ARGB, stride int)
	// CopyArea copies sr on src to dp on dst; src and dst may be the
	// same drawable (scrolling) or differ (offscreen-to-screen flips).
	CopyArea(dst, src DrawableID, sr geom.Rect, dp geom.Point)

	// Video entrypoints mirror the XVideo driver hooks (§4.2).
	VideoSetup(stream uint32, srcW, srcH int, dst geom.Rect)
	VideoFrame(stream uint32, frame *pixel.YV12Image, ptsUS uint64)
	VideoMove(stream uint32, dst geom.Rect)
	VideoStop(stream uint32)

	// NotifyInput reports the location of a user input event so the
	// driver can prioritize nearby updates (THINC's real-time queue, §5).
	NotifyInput(p geom.Point)

	// SetCursor and MoveCursor mirror the DDX hardware-cursor
	// entrypoints: the cursor is an overlay the display hardware (or a
	// THINC client) composites above the framebuffer.
	SetCursor(img []pixel.ARGB, w, h int, hot geom.Point)
	MoveCursor(p geom.Point)
}

// Nop is a Driver that ignores every call — the "local PC" display
// path, where the window system's software-rendered surface is itself
// the display. It also serves as an embeddable base for drivers that
// care about a subset of entrypoints.
type Nop struct{}

// Init implements Driver.
func (Nop) Init(Memory, int, int) {}

// CreatePixmap implements Driver.
func (Nop) CreatePixmap(DrawableID, int, int) {}

// DestroyPixmap implements Driver.
func (Nop) DestroyPixmap(DrawableID) {}

// FillSolid implements Driver.
func (Nop) FillSolid(DrawableID, geom.Rect, pixel.ARGB) {}

// FillTile implements Driver.
func (Nop) FillTile(DrawableID, geom.Rect, *fb.Tile) {}

// FillStipple implements Driver.
func (Nop) FillStipple(DrawableID, geom.Rect, *fb.Bitmap, pixel.ARGB, pixel.ARGB, bool) {}

// PutImage implements Driver.
func (Nop) PutImage(DrawableID, geom.Rect, []pixel.ARGB, int) {}

// Composite implements Driver.
func (Nop) Composite(DrawableID, geom.Rect, []pixel.ARGB, int) {}

// CopyArea implements Driver.
func (Nop) CopyArea(DrawableID, DrawableID, geom.Rect, geom.Point) {}

// VideoSetup implements Driver.
func (Nop) VideoSetup(uint32, int, int, geom.Rect) {}

// VideoFrame implements Driver.
func (Nop) VideoFrame(uint32, *pixel.YV12Image, uint64) {}

// VideoMove implements Driver.
func (Nop) VideoMove(uint32, geom.Rect) {}

// VideoStop implements Driver.
func (Nop) VideoStop(uint32) {}

// NotifyInput implements Driver.
func (Nop) NotifyInput(geom.Point) {}

// SetCursor implements Driver.
func (Nop) SetCursor([]pixel.ARGB, int, int, geom.Point) {}

// MoveCursor implements Driver.
func (Nop) MoveCursor(geom.Point) {}

var _ Driver = Nop{}
