package workload

import (
	"math/rand"

	"thinc/internal/pixel"
	"thinc/internal/sim"
)

// VideoClip models the A/V benchmark clip (§8.2): 34.75 seconds of
// 352x240 video at ~24 fps, displayed at full-screen resolution.
// Frames are synthetic but share real video's two load-bearing
// properties: every frame differs from the previous one (full-screen
// damage for scraping systems) and the content is noisy enough that
// general-purpose compression gains little.
type VideoClip struct {
	W, H     int
	FPS      int
	Duration sim.Time
}

// DefaultClip is the paper's clip geometry.
func DefaultClip() *VideoClip {
	return &VideoClip{W: 352, H: 240, FPS: 24, Duration: sim.Time(34.75 * float64(sim.Second))}
}

// NumFrames returns the frame count of the clip.
func (c *VideoClip) NumFrames() int {
	return int(int64(c.Duration) * int64(c.FPS) / int64(sim.Second))
}

// FrameInterval returns the time between frames.
func (c *VideoClip) FrameInterval() sim.Time {
	return sim.Time(int64(sim.Second) / int64(c.FPS))
}

// PTS returns frame i's presentation timestamp in microseconds.
func (c *VideoClip) PTS(i int) uint64 {
	return uint64(int64(i) * int64(c.FrameInterval()))
}

// Frame synthesizes frame i as decoder output (YV12).
func (c *VideoClip) Frame(i int) *pixel.YV12Image {
	img := pixel.NewYV12(c.W, c.H)
	rnd := rand.New(rand.NewSource(int64(i)*65537 + 3))
	// Luma: moving diagonal gradient + strong per-pixel noise. Real
	// decoded video carries film grain and texture that general-purpose
	// compressors barely reduce; the noise floor reproduces that.
	for y := 0; y < c.H; y++ {
		for x := 0; x < c.W; x++ {
			v := (x + y + i*5) % 160
			img.Y[y*c.W+x] = uint8(16 + v/2 + rnd.Intn(96))
		}
	}
	cw, ch := (c.W+1)/2, (c.H+1)/2
	for y := 0; y < ch; y++ {
		for x := 0; x < cw; x++ {
			img.U[y*cw+x] = uint8(96 + (x+i)%64 + rnd.Intn(8))
			img.V[y*cw+x] = uint8(96 + (y+i*2)%64 + rnd.Intn(8))
		}
	}
	return img
}

// FrameRGB returns frame i as RGB pixels — the form a software-decoding
// player blits when no video extension is available (the path
// non-THINC systems are stuck with).
func (c *VideoClip) FrameRGB(i int) []pixel.ARGB {
	return pixel.DecodeYV12(c.Frame(i), c.W, c.H)
}

// MPEGBytes approximates the clip's encoded source size: the paper's
// clip streamed at roughly 1.2 Mbps (local PC transferred <6 MB).
func (c *VideoClip) MPEGBytes() int64 {
	return int64(1.2e6/8) * int64(c.Duration) / int64(sim.Second)
}

// AudioTrack models the clip's PCM soundtrack as the virtual ALSA
// driver captures it: 44.1 kHz, 16-bit stereo, chunked.
type AudioTrack struct {
	SampleRate int
	Channels   int
	ChunkDur   sim.Time
	Duration   sim.Time
}

// DefaultAudio matches the A/V clip duration.
func DefaultAudio() *AudioTrack {
	return &AudioTrack{
		SampleRate: 44100,
		Channels:   2,
		ChunkDur:   50 * sim.Millisecond,
		Duration:   sim.Time(34.75 * float64(sim.Second)),
	}
}

// NumChunks returns the number of audio chunks in the track.
func (a *AudioTrack) NumChunks() int {
	return int(int64(a.Duration) / int64(a.ChunkDur))
}

// ChunkBytes returns the PCM payload size of one chunk.
func (a *AudioTrack) ChunkBytes() int {
	samples := int(int64(a.SampleRate) * int64(a.ChunkDur) / int64(sim.Second))
	return samples * a.Channels * 2
}

// PTS returns chunk i's timestamp in microseconds.
func (a *AudioTrack) PTS(i int) uint64 { return uint64(int64(i) * int64(a.ChunkDur)) }

// Chunk synthesizes chunk i's PCM bytes (deterministic noise — audio
// content does not affect any system under test, only its volume).
func (a *AudioTrack) Chunk(i int) []byte {
	buf := make([]byte, a.ChunkBytes())
	rnd := rand.New(rand.NewSource(int64(i) + 991))
	rnd.Read(buf)
	return buf
}
