package workload

import (
	"testing"

	"thinc/internal/driver"
	"thinc/internal/geom"
	"thinc/internal/sim"
	"thinc/internal/xserver"
)

func TestWebPagesDeterministic(t *testing.T) {
	render := func() (uint32, PageStats) {
		d := xserver.NewDisplay(1024, 768, driver.Nop{})
		b := &Browser{Dpy: d, Win: d.CreateWindow(geom.XYWH(0, 0, 1024, 768)), DoubleBuffer: true}
		st := b.RenderPage(7)
		return d.Screen().Checksum(), st
	}
	c1, s1 := render()
	c2, s2 := render()
	if c1 != c2 {
		t.Fatal("page pixels not deterministic")
	}
	if s1 != s2 {
		t.Fatal("page stats not deterministic")
	}
}

func TestWebPageMix(t *testing.T) {
	d := xserver.NewDisplay(1024, 768, driver.Nop{})
	b := &Browser{Dpy: d, Win: d.CreateWindow(geom.XYWH(0, 0, 1024, 768)), DoubleBuffer: true}
	heavy, mixed := 0, 0
	for i := 0; i < NumPages; i++ {
		st := b.RenderPage(i)
		if st.Ops == 0 || st.IntrinsicBytes == 0 {
			t.Fatalf("page %d rendered nothing", i)
		}
		if st.ImageHeavy {
			heavy++
			if st.ImagePixels < 1024*768/4 {
				t.Errorf("page %d marked image heavy but only %d image px", i, st.ImagePixels)
			}
		} else {
			mixed++
			if st.Glyphs == 0 {
				t.Errorf("page %d has no text", i)
			}
		}
	}
	if heavy != NumPages/9 {
		t.Errorf("%d image-heavy pages, want %d", heavy, NumPages/9)
	}
	if mixed == 0 {
		t.Error("no mixed pages")
	}
}

func TestWebPagesDifferAcrossIndices(t *testing.T) {
	d := xserver.NewDisplay(640, 480, driver.Nop{})
	b := &Browser{Dpy: d, Win: d.CreateWindow(geom.XYWH(0, 0, 640, 480)), DoubleBuffer: false}
	b.RenderPage(0)
	c0 := d.Screen().Checksum()
	b.RenderPage(1)
	if d.Screen().Checksum() == c0 {
		t.Error("consecutive pages render identically")
	}
}

func TestDoubleBufferMatchesDirect(t *testing.T) {
	// The same page rendered direct vs double-buffered must produce the
	// same final pixels (offscreen flip correctness at the workload level).
	render := func(db bool) uint32 {
		d := xserver.NewDisplay(800, 600, driver.Nop{})
		b := &Browser{Dpy: d, Win: d.CreateWindow(geom.XYWH(0, 0, 800, 600)), DoubleBuffer: db}
		b.RenderPage(3)
		return d.Screen().Checksum()
	}
	if render(true) != render(false) {
		t.Error("double buffering changed the rendered result")
	}
}

func TestNextLinkInsideWindow(t *testing.T) {
	d := xserver.NewDisplay(1024, 768, driver.Nop{})
	b := &Browser{Dpy: d, Win: d.CreateWindow(geom.XYWH(0, 0, 1024, 768))}
	if !b.NextLink().In(b.Win.Bounds()) {
		t.Error("next link outside window")
	}
}

func TestVideoClipGeometry(t *testing.T) {
	c := DefaultClip()
	if c.W != 352 || c.H != 240 || c.FPS != 24 {
		t.Fatal("clip geometry wrong")
	}
	if n := c.NumFrames(); n != 834 {
		t.Errorf("frames = %d, want 834 (34.75s x 24fps)", n)
	}
	if c.FrameInterval() != sim.Time(41666) {
		t.Errorf("frame interval %v", c.FrameInterval())
	}
	if c.PTS(24) != uint64(24*41666) {
		t.Errorf("PTS wrong: %d", c.PTS(24))
	}
	if c.MPEGBytes() > 6<<20 {
		t.Errorf("MPEG size %d should be under 6MB (paper: local PC <6MB)", c.MPEGBytes())
	}
}

func TestVideoFramesDifferEveryFrame(t *testing.T) {
	c := DefaultClip()
	f0, f1 := c.Frame(0), c.Frame(1)
	same := 0
	for i := range f0.Y {
		if f0.Y[i] == f1.Y[i] {
			same++
		}
	}
	if same > len(f0.Y)/2 {
		t.Errorf("frames too similar: %d/%d identical luma", same, len(f0.Y))
	}
	// Deterministic.
	f0b := c.Frame(0)
	for i := range f0.Y {
		if f0.Y[i] != f0b.Y[i] {
			t.Fatal("frames not deterministic")
		}
	}
}

func TestFrameRGBGeometry(t *testing.T) {
	c := DefaultClip()
	rgb := c.FrameRGB(5)
	if len(rgb) != 352*240 {
		t.Fatalf("rgb size %d", len(rgb))
	}
}

func TestAudioTrack(t *testing.T) {
	a := DefaultAudio()
	if a.NumChunks() != 695 {
		t.Errorf("chunks = %d, want 695 (34.75s / 50ms)", a.NumChunks())
	}
	// 44.1kHz * 50ms * 2ch * 2B = 8820 bytes.
	if a.ChunkBytes() != 8820 {
		t.Errorf("chunk bytes = %d", a.ChunkBytes())
	}
	if len(a.Chunk(3)) != a.ChunkBytes() {
		t.Error("chunk payload size mismatch")
	}
	if a.PTS(2) != 100000 {
		t.Errorf("PTS = %d", a.PTS(2))
	}
	// Total audio bandwidth ~1.4 Mbps (CD PCM stereo).
	totalBytes := int64(a.NumChunks()) * int64(a.ChunkBytes())
	bps := float64(totalBytes*8) / a.Duration.Seconds()
	if bps < 1.3e6 || bps > 1.5e6 {
		t.Errorf("audio bitrate %.2f Mbps, want ~1.41", bps/1e6)
	}
}
