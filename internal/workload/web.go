// Package workload generates the application workloads of §8.2: a
// deterministic 54-page web browsing benchmark in the style of the
// i-Bench Web Page Load test (mixed text and graphics, rendered through
// the window system with Mozilla-style offscreen double buffering), a
// 34.75-second 352x240 24 fps video clip, and a PCM audio track.
//
// Content is synthetic but statistically shaped like the original: text
// runs become per-glyph stipples, backgrounds become fills and tiles,
// images rasterize scanline by scanline with photo-like (poorly
// compressible) pixels, and every ninth page is dominated by one large
// image — the page class the paper singles out in its page-by-page
// analysis.
package workload

import (
	"math/rand"

	"thinc/internal/fb"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/xserver"
)

// NumPages is the length of the benchmark sequence (§8.2).
const NumPages = 54

// PageStats summarizes what rendering one page did, for cost modeling
// and for the local-PC intrinsic-content baseline.
type PageStats struct {
	Index       int
	ImageHeavy  bool
	Ops         int // drawing requests issued
	Glyphs      int // text glyphs drawn
	ImagePixels int
	FillPixels  int
	// IntrinsicBytes approximates the page's fetched content size
	// (compressed images + HTML text) — what a local browser transfers.
	IntrinsicBytes int
}

// Browser renders benchmark pages into a window, optionally through an
// offscreen pixmap (double buffering) the way Mozilla prepares pages
// before presenting them (§4.1).
type Browser struct {
	Dpy          *xserver.Display
	Win          *xserver.Window
	DoubleBuffer bool
}

// RenderPage draws page i (0-based) and returns its statistics. Pages
// are deterministic: the same index always produces the same pixels.
func (b *Browser) RenderPage(i int) PageStats {
	st := PageStats{Index: i, ImageHeavy: ImageHeavy(i)}
	var target xserver.Drawable = b.Win
	var pm *xserver.Pixmap
	wb := b.Win.Bounds()
	if b.DoubleBuffer {
		pm = b.Dpy.CreatePixmap(wb.W(), wb.H())
		target = pm
	}
	b.renderInto(target, geom.XYWH(0, 0, wb.W(), wb.H()), i, &st)
	if b.DoubleBuffer {
		b.Dpy.CopyArea(b.Win, pm, pm.Bounds(), geom.Point{})
		st.Ops++
		b.Dpy.FreePixmap(pm)
	}
	return st
}

// ImageHeavy reports whether page i consists primarily of one large
// image (every ninth page).
func ImageHeavy(i int) bool { return i%9 == 8 }

func (b *Browser) renderInto(t xserver.Drawable, area geom.Rect, page int, st *PageStats) {
	rnd := rand.New(rand.NewSource(int64(page)*7919 + 17))
	d := b.Dpy
	w, h := area.W(), area.H()

	// Background: solid white-ish, or a subtle tile on some pages.
	bg := pixel.RGB(uint8(240+rnd.Intn(16)), uint8(240+rnd.Intn(16)), uint8(240+rnd.Intn(16)))
	if rnd.Intn(4) == 0 {
		tw, th := 4+rnd.Intn(5), 4+rnd.Intn(5)
		tile := makeTile(rnd, tw, th, bg)
		d.TileRect(t, tile, area)
		st.Ops++
		st.FillPixels += w * h
	} else {
		d.FillRect(t, &xserver.GC{Fg: bg}, area)
		st.Ops++
		st.FillPixels += w * h
	}

	if st.ImageHeavy {
		// One large image dominating the page (the RAW-dominated class).
		iw, ih := w*3/4, h*3/4
		r := geom.XYWH(area.X0+w/8, area.Y0+h/8, iw, ih)
		img := photoImage(rnd, iw, ih)
		d.PutImageScanlines(t, r, img, iw)
		st.Ops += ih
		st.ImagePixels += iw * ih
		st.IntrinsicBytes += iw * ih * 4 / 10 // JPEG-like
		title := "Large Image Gallery Page"
		d.DrawText(t, &xserver.GC{Fg: pixel.RGB(20, 20, 20)}, area.X0+10, area.Y0+6, title)
		st.Ops += len(title)
		st.Glyphs += len(title)
		st.IntrinsicBytes += 2 * 1024
		return
	}

	y := area.Y0 + 8
	ink := pixel.RGB(uint8(rnd.Intn(60)), uint8(rnd.Intn(60)), uint8(rnd.Intn(60)))
	gc := &xserver.GC{Fg: ink}

	// Heading bar.
	d.FillRect(t, &xserver.GC{Fg: pixel.RGB(uint8(rnd.Intn(128)), uint8(100+rnd.Intn(100)), 200)},
		geom.XYWH(area.X0, y, w, 24))
	st.Ops++
	st.FillPixels += w * 24
	head := pageText(rnd, 4+rnd.Intn(5))
	d.DrawText(t, &xserver.GC{Fg: pixel.RGB(255, 255, 255)}, area.X0+12, y+7, head)
	st.Ops += countGlyphs(head)
	st.Glyphs += countGlyphs(head)
	y += 32

	// Body: paragraphs interleaved with inline images and tables.
	paras := 3 + rnd.Intn(4)
	for p := 0; p < paras && y < area.Y1-80; p++ {
		switch rnd.Intn(5) {
		case 0: // inline image
			iw := 80 + rnd.Intn(w/3)
			ih := 50 + rnd.Intn(90)
			r := geom.XYWH(area.X0+10+rnd.Intn(w/4), y, iw, ih)
			img := photoImage(rnd, iw, ih)
			d.PutImageScanlines(t, r, img, iw)
			st.Ops += ih
			st.ImagePixels += iw * ih
			st.IntrinsicBytes += iw * ih * 4 / 10
			y += ih + 8
		case 1: // table: grid of cells with short labels
			rows, cols := 2+rnd.Intn(4), 3+rnd.Intn(4)
			cw, ch := (w-40)/cols, 18
			for rr := 0; rr < rows; rr++ {
				for cc := 0; cc < cols; cc++ {
					cell := geom.XYWH(area.X0+20+cc*cw, y+rr*ch, cw-2, ch-2)
					shade := uint8(210 + ((rr+cc)%2)*20)
					d.FillRect(t, &xserver.GC{Fg: pixel.RGB(shade, shade, shade)}, cell)
					st.Ops++
					st.FillPixels += cell.Area()
					lbl := pageText(rnd, 1)
					d.DrawText(t, gc, cell.X0+3, cell.Y0+4, lbl)
					st.Ops += countGlyphs(lbl)
					st.Glyphs += countGlyphs(lbl)
				}
			}
			y += rows*ch + 10
			st.IntrinsicBytes += rows * cols * 16
		default: // text paragraph
			lines := 2 + rnd.Intn(5)
			for ln := 0; ln < lines && y < area.Y1-16; ln++ {
				text := pageText(rnd, 8+rnd.Intn(10))
				d.DrawText(t, gc, area.X0+12, y, text)
				st.Ops += countGlyphs(text)
				st.Glyphs += countGlyphs(text)
				st.IntrinsicBytes += len(text)
				y += xserver.GlyphH + 3
			}
			y += 6
		}
	}

	// Footer rule + link line (the "next page" link the benchmark clicks).
	d.FillRect(t, &xserver.GC{Fg: pixel.RGB(120, 120, 120)}, geom.XYWH(area.X0+8, area.Y1-30, w-16, 2))
	st.Ops++
	st.FillPixels += (w - 16) * 2
	link := "next page >"
	d.DrawText(t, &xserver.GC{Fg: pixel.RGB(0, 0, 238)}, area.X0+12, area.Y1-24, link)
	st.Ops += countGlyphs(link)
	st.Glyphs += countGlyphs(link)
	st.IntrinsicBytes += 4 * 1024 // HTML boilerplate
}

// NextLink returns the screen location of page i's "next" link — where
// the benchmark's mechanical clicker presses the mouse (§8.2).
func (b *Browser) NextLink() geom.Point {
	r := b.Win.Bounds()
	return geom.Point{X: r.X0 + 20, Y: r.Y1 - 20}
}

func countGlyphs(s string) int {
	n := 0
	for _, ch := range s {
		if ch != ' ' && ch != '\n' {
			n++
		}
	}
	return n
}

var words = []string{
	"the", "quick", "display", "server", "client", "network", "remote",
	"virtual", "thin", "protocol", "command", "screen", "update", "video",
	"latency", "bandwidth", "driver", "window", "system", "performance",
}

func pageText(rnd *rand.Rand, n int) string {
	out := ""
	for k := 0; k < n; k++ {
		if k > 0 {
			out += " "
		}
		out += words[rnd.Intn(len(words))]
	}
	return out
}

// photoImage synthesizes photo-like pixels: smooth gradients with noise,
// compressible by PNG only moderately, like photographic JPEG sources.
func photoImage(rnd *rand.Rand, w, h int) []pixel.ARGB {
	pix := make([]pixel.ARGB, w*h)
	baseR, baseG, baseB := rnd.Intn(200), rnd.Intn(200), rnd.Intn(200)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			n := rnd.Intn(48)
			r := clampU8(baseR + x*40/max(1, w) + n)
			g := clampU8(baseG + y*40/max(1, h) + n/2)
			bb := clampU8(baseB + (x+y)*30/max(1, w+h) + n/3)
			pix[y*w+x] = pixel.RGB(r, g, bb)
		}
	}
	return pix
}

func makeTile(rnd *rand.Rand, w, h int, base pixel.ARGB) *fb.Tile {
	pix := make([]pixel.ARGB, w*h)
	for i := range pix {
		v := int(base.R()) - 8 + rnd.Intn(16)
		pix[i] = pixel.RGB(clampU8(v), clampU8(v), clampU8(v+4))
	}
	return fb.NewTile(w, h, pix)
}

func clampU8(v int) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}
