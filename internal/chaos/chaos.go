// Package chaos is the overload-protection soak harness: it runs a
// real server and a real client over loopback TCP, drives a seeded
// random workload through every display path — fills, tiles, bitmaps,
// raws, composites, copies, offscreen pixmaps, video, audio, input —
// while a fault-injecting dialer cuts, stalls, truncates, reorders and
// duplicates the transport underneath the session. After the storm it
// quiesces and applies THINC's strongest invariant as the oracle: the
// client framebuffer must become byte-identical to the server screen.
// A schedule either pins one degradation-ladder rung (proving the
// lossy rungs repair completely) or leaves the adaptive controller on
// (proving the ladder itself converges); the link model for flush
// pacing comes from the simnet environments of §8.
package chaos

import (
	"fmt"
	"math/rand"
	"net"
	"sync/atomic"
	"time"

	"thinc/internal/audio"
	"thinc/internal/auth"
	"thinc/internal/client"
	"thinc/internal/core"
	"thinc/internal/faultconn"
	"thinc/internal/geom"
	"thinc/internal/overload"
	"thinc/internal/pixel"
	"thinc/internal/server"
	"thinc/internal/sim"
	"thinc/internal/simnet"
	"thinc/internal/wire"
	"thinc/internal/xserver"
)

// Schedule scripts one chaos run. The seed fixes both the workload
// and the fault plans, so a failing schedule replays exactly.
type Schedule struct {
	Name string
	Seed int64
	// Link models the client's network: the server's flush budget is
	// its effective rate over one flush interval.
	Link simnet.LinkParams
	// Adaptive leaves the overload controller on; otherwise the run is
	// pinned at Rung for the whole storm (DisableOverload).
	Adaptive bool
	// Rung is the pinned degradation rung when !Adaptive.
	Rung int
	// Ops is the number of workload operations before quiescence.
	Ops int
	// MaxWall bounds the whole run; zero means 20s.
	MaxWall time.Duration
	// Viewers attaches this many viewer-role connections alongside the
	// owner — the broadcast fan-out under chaos. Viewer i is pinned at
	// rung i % overload.NumRungs during the storm (a mixed-rung set),
	// and with Viewers >= 2 the last viewer attaches mid-storm (the
	// late joiner). All are released at quiescence and each must
	// converge byte-identical.
	Viewers int
}

// Result is what one schedule produced.
type Result struct {
	Schedule  Schedule
	Converged bool
	// MismatchAt is the first differing pixel index (-1 when identical).
	MismatchAt int
	// MaxRungSeen is the highest client-observed rung during the run.
	MaxRungSeen int

	Reconnects         int
	Reattaches         int
	SlowResyncs        int
	OverloadUps        int
	OverloadDowns      int
	OverloadResyncs    int
	WatchdogRecoveries int
	BudgetEvictions    int64

	// E2E mark/ack health under chaos: marks must flow whenever display
	// traffic does, and every mark ends either acked or (after transport
	// mayhem ate consecutive marks) in the conservative legacy verdict —
	// never in a silently dead measurement loop.
	E2EMarks       int
	E2EAcks        int
	E2ELegacyPeers int

	// ViewerMismatches holds each viewer's first differing pixel index
	// after release (-1 when byte-identical); ViewerMaxRungs the highest
	// rung each viewer observed. Converged requires every viewer at -1.
	ViewerMismatches []int
	ViewerMaxRungs   []int
}

func (r Result) String() string {
	return fmt.Sprintf("%s seed=%d converged=%v maxRung=%d viewers=%d viewerMismatches=%v reconnects=%d reattaches=%d ups=%d downs=%d resyncs=%d evictions=%d marks=%d acks=%d legacy=%d",
		r.Schedule.Name, r.Schedule.Seed, r.Converged, r.MaxRungSeen,
		r.Schedule.Viewers, r.ViewerMismatches,
		r.Reconnects, r.Reattaches, r.OverloadUps, r.OverloadDowns,
		r.OverloadResyncs, r.BudgetEvictions, r.E2EMarks, r.E2EAcks,
		r.E2ELegacyPeers)
}

// Suite returns the standard chaos schedules: the three §8 testbed
// environments under adaptive control, every ladder rung pinned in
// turn, and a narrow modem-class link that forces the ladder to climb.
func Suite() []Schedule {
	modem := simnet.LinkParams{Name: "modem", Bandwidth: 2e6,
		RTT: 50 * sim.Millisecond, Window: 1 << 16}
	return []Schedule{
		{Name: "lan-adaptive", Seed: 101, Link: simnet.LAN(), Adaptive: true, Ops: 400},
		{Name: "wan-adaptive", Seed: 202, Link: simnet.WAN(), Adaptive: true, Ops: 350},
		{Name: "wifi-adaptive", Seed: 303, Link: simnet.PDA80211g(), Adaptive: true, Ops: 350},
		{Name: "modem-adaptive-ladder", Seed: 404, Link: modem, Adaptive: true, Ops: 500},
		{Name: "rung1-compress", Seed: 505, Link: simnet.LAN(), Rung: overload.RungCompress, Ops: 300},
		{Name: "rung2-downscale", Seed: 606, Link: simnet.WAN(), Rung: overload.RungDownscale, Ops: 300},
		{Name: "rung3-drop-video", Seed: 707, Link: simnet.PDA80211g(), Rung: overload.RungDropVideo, Ops: 300},
		{Name: "rung4-resync", Seed: 808, Link: simnet.LAN(), Rung: overload.RungResync, Ops: 300},
		// The broadcast oracle: one owner plus three viewers pinned at
		// different rungs (lossless / compress / downscale), the last
		// attaching mid-storm, all converging byte-identical.
		{Name: "broadcast-mixed-rungs", Seed: 909, Link: simnet.LAN(), Ops: 400, Viewers: 3},
	}
}

// SoakSchedules derives n randomized schedules from one base seed —
// the long-haul mode behind `make soak`.
func SoakSchedules(n int, seed int64) []Schedule {
	rnd := rand.New(rand.NewSource(seed))
	links := []simnet.LinkParams{simnet.LAN(), simnet.WAN(), simnet.PDA80211g(),
		{Name: "modem", Bandwidth: 2e6, RTT: 50 * sim.Millisecond, Window: 1 << 16}}
	out := make([]Schedule, 0, n)
	for i := 0; i < n; i++ {
		s := Schedule{
			Name: fmt.Sprintf("soak-%03d", i),
			Seed: rnd.Int63(),
			Link: links[rnd.Intn(len(links))],
			Ops:  150 + rnd.Intn(250),
			// Soaks run ~GOMAXPROCS-wide under -race: wall-clock budgets
			// must absorb CPU contention, not just the work itself.
			MaxWall: 90 * time.Second,
		}
		if rnd.Intn(2) == 0 {
			s.Adaptive = true
		} else {
			s.Rung = rnd.Intn(overload.NumRungs)
		}
		// Every third soak runs the broadcast fan-out: three mixed-rung
		// viewers riding the same storm.
		if i%3 == 2 {
			s.Viewers = 3
		}
		out = append(out, s)
	}
	return out
}

const (
	screenW = 96
	screenH = 64
)

// nextPlan draws the fault plan for one connection attempt. Budgets
// are cumulative bytes through the wrapper, so every mode lands at an
// arbitrary point inside some frame — the mid-flush cut.
func nextPlan(rnd *rand.Rand) faultconn.Plan {
	switch r := rnd.Float64(); {
	case r < 0.25:
		// Half-dead peer: the stream stalls; deadlines and heartbeats
		// must break the session, not a FIN.
		return faultconn.Plan{ReadFaultAfter: 1024 + rnd.Int63n(96<<10), Stall: true}
	case r < 0.40:
		// Adjacent-write swap on the client->server stream.
		return faultconn.Plan{ReorderAfter: 256 + rnd.Int63n(2<<10),
			ReadFaultAfter: 8<<10 + rnd.Int63n(128<<10)}
	case r < 0.55:
		// Retransmit-style duplicate on the client->server stream.
		return faultconn.Plan{DuplicateAfter: 256 + rnd.Int63n(2<<10),
			ReadFaultAfter: 8<<10 + rnd.Int63n(128<<10)}
	case r < 0.85:
		// Server->client cut: the flush dies mid-frame (truncation is
		// inherent — the budget lands inside a frame).
		return faultconn.Plan{ReadFaultAfter: 512 + rnd.Int63n(48<<10)}
	default:
		// Client->server cut mid-pong or mid-input.
		return faultconn.Plan{WriteFaultAfter: 128 + rnd.Int63n(4<<10)}
	}
}

// Run executes one schedule and reports what happened. Setup failures
// return an error; oracle failure is reported in Result.Converged.
func Run(s Schedule) (Result, error) {
	res := Result{Schedule: s, MismatchAt: -1}
	if s.MaxWall <= 0 {
		s.MaxWall = 20 * time.Second
	}
	deadline := time.Now().Add(s.MaxWall)
	planRnd := rand.New(rand.NewSource(s.Seed))
	workRnd := rand.New(rand.NewSource(s.Seed ^ 0x1e3779b97f4a7c15))

	// Flush pacing from the link model: effective rate over one tick.
	interval := 2 * time.Millisecond
	budget := int(s.Link.EffectiveRate() * interval.Seconds())
	if budget < 512 {
		budget = 512
	}
	if budget > 64<<10 {
		budget = 64 << 10
	}

	acc := auth.NewAccounts()
	acc.Add("owner", "pw")
	opts := server.Options{
		Core: core.Options{
			QueueBudgetBytes:          256 << 10,
			OffscreenQueueBudgetBytes: 128 << 10,
		},
		FlushInterval:     interval,
		FlushBudget:       budget,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  200 * time.Millisecond,
		DetachGrace:       10 * time.Second,
		DisableOverload:   !s.Adaptive,
		Overload: overload.Config{
			UpSec: 0.05, DownSec: 0.01, UpTicks: 4, DownTicks: 4, HoldTicks: 8,
		},
	}
	gate := auth.NewAuthenticator("owner", acc)
	if s.Viewers > 0 {
		gate.SetSessionPassword("watch")
	}
	host := server.NewHost(screenW, screenH, gate, opts)
	defer host.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	defer l.Close()
	go host.Serve(l)

	// The fault-injecting dialer: every attempt gets the next seeded
	// plan; once quiesced, attempts are clean so the oracle can settle.
	var quiesced atomic.Bool
	dial := func() (net.Conn, error) {
		nc, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			return nil, err
		}
		if quiesced.Load() {
			return nc, nil
		}
		return faultconn.Wrap(nc, nextPlan(planRnd)), nil
	}

	var conn *client.Conn
	for attempt := 0; ; attempt++ {
		conn, err = client.DialWith(dial, "owner", "pw", screenW, screenH)
		if err == nil {
			break
		}
		if attempt >= 50 || time.Now().After(deadline) {
			return res, fmt.Errorf("chaos: initial dial never succeeded: %w", err)
		}
	}
	defer conn.Close()
	conn.ReadTimeout = 250 * time.Millisecond
	conn.WriteTimeout = 250 * time.Millisecond
	runDone := make(chan error, 1)
	go func() {
		runDone <- conn.RunAuto(client.ReconnectPolicy{
			Initial: 2 * time.Millisecond, Max: 20 * time.Millisecond,
			MaxAttempts: 1 << 20, Seed: s.Seed,
		})
	}()

	// The viewer set: each gets its own fault-plan RNG (dialers run on
	// the viewers' reconnect goroutines), its own mixed rung, and the
	// same RunAuto resilience as the owner. With Viewers >= 2 the last
	// one stays unattached until mid-storm — the late joiner.
	type viewer struct {
		name string
		rung int
		conn *client.Conn
		done chan error
	}
	attachViewer := func(i int) (*viewer, error) {
		v := &viewer{
			name: fmt.Sprintf("viewer%d", i),
			rung: i % overload.NumRungs,
			done: make(chan error, 1),
		}
		vRnd := rand.New(rand.NewSource(s.Seed + int64(i+1)*0x9e3779b9))
		vdial := func() (net.Conn, error) {
			nc, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				return nil, err
			}
			if quiesced.Load() {
				return nc, nil
			}
			return faultconn.Wrap(nc, nextPlan(vRnd)), nil
		}
		var err error
		for attempt := 0; ; attempt++ {
			v.conn, err = client.DialWithRole(vdial, v.name, "watch",
				screenW, screenH, wire.RoleViewer)
			if err == nil {
				break
			}
			if attempt >= 50 || time.Now().After(deadline) {
				return nil, fmt.Errorf("chaos: viewer %s never attached: %w", v.name, err)
			}
		}
		v.conn.ReadTimeout = 250 * time.Millisecond
		v.conn.WriteTimeout = 250 * time.Millisecond
		go func() {
			v.done <- v.conn.RunAuto(client.ReconnectPolicy{
				Initial: 2 * time.Millisecond, Max: 20 * time.Millisecond,
				MaxAttempts: 1 << 20, Seed: s.Seed + int64(i),
			})
		}()
		host.ForceRungUser(v.name, v.rung)
		return v, nil
	}
	var viewers []*viewer
	earlyViewers := s.Viewers
	if s.Viewers >= 2 {
		earlyViewers = s.Viewers - 1
	}
	for i := 0; i < earlyViewers; i++ {
		v, err := attachViewer(i)
		if err != nil {
			return res, err
		}
		defer v.conn.Close()
		viewers = append(viewers, v)
	}

	// Stage the scene: a full-screen window, an offscreen pixmap, a
	// video port and an audio stream.
	bounds := geom.XYWH(0, 0, screenW, screenH)
	var win *xserver.Window
	var pm *xserver.Pixmap
	var vp *xserver.VideoPort
	host.Do(func(d *xserver.Display) {
		win = d.CreateWindow(bounds)
		d.FillRect(win, &xserver.GC{Fg: pixel.RGB(24, 40, 80)}, bounds)
		pm = d.CreatePixmap(24, 16)
		d.FillRect(pm, &xserver.GC{Fg: pixel.RGB(200, 60, 20)}, pm.Bounds())
		vp = d.CreateVideoPort(16, 12, geom.XYWH(64, 40, 24, 16))
	})
	stream := host.Audio().OpenStream(audio.CD)
	pcm := make([]byte, 1764) // 10ms of CD audio
	tile := make([]pixel.ARGB, 16*16)
	for i := range tile {
		tile[i] = pixel.PackARGB(128, uint8(i*5), uint8(i*11), uint8(i*17))
	}
	frame := pixel.NewYV12(16, 12)

	if !s.Adaptive {
		host.ForceRung(s.Rung)
	}

	// The storm: seeded random operations across every display path.
	for i := 0; i < s.Ops && time.Now().Before(deadline); i++ {
		op := workRnd.Intn(100)
		x, y := workRnd.Intn(screenW-24), workRnd.Intn(screenH-16)
		host.Do(func(d *xserver.Display) {
			switch {
			case op < 20:
				d.FillRect(win, &xserver.GC{Fg: pixel.RGB(uint8(op*3), uint8(x), uint8(y))},
					geom.XYWH(x, y, 4+workRnd.Intn(20), 4+workRnd.Intn(12)))
			case op < 40:
				pix := make([]pixel.ARGB, 24*16)
				for j := range pix {
					pix[j] = pixel.RGB(uint8(workRnd.Intn(256)), uint8(j), uint8(i))
				}
				d.PutImage(win, geom.XYWH(x, y, 24, 16), pix, 24)
			case op < 55:
				d.Composite(win, geom.XYWH(x, y, 16, 16), tile, 16)
			case op < 65:
				d.CopyArea(win, win, geom.XYWH(x, y, 16, 12),
					geom.Point{X: workRnd.Intn(screenW - 16), Y: workRnd.Intn(screenH - 12)})
			case op < 72:
				d.DrawText(win, &xserver.GC{Fg: pixel.RGB(255, 255, 0)}, x, y, "chaos")
			case op < 80:
				// Offscreen round trip: draw into the pixmap, copy out.
				d.FillRect(pm, &xserver.GC{Fg: pixel.RGB(uint8(i), uint8(op), 99)},
					geom.XYWH(0, 0, 12+workRnd.Intn(12), 8+workRnd.Intn(8)))
				d.CopyArea(win, pm, pm.Bounds(), geom.Point{X: x, Y: y})
			case op < 92:
				for j := range frame.Y {
					frame.Y[j] = uint8(i + j)
				}
				vp.PutFrame(frame, uint64(i)*33_000)
			default:
				d.InjectInput(geom.Point{X: x, Y: y})
			}
		})
		if op%10 == 0 {
			_, _ = stream.Write(pcm)
		}
		if op%17 == 0 {
			// Input may be cut mid-fault; the chaos point is that it can.
			_ = conn.SendInput(&wire.Input{Kind: wire.InputMouseButton,
				X: x, Y: y, Code: 1, Press: true})
		}
		if !s.Adaptive && i%32 == 0 {
			// Reconnects attach at rung 0: re-pin.
			host.ForceRung(s.Rung)
		}
		if s.Viewers >= 2 && i == s.Ops/2 && len(viewers) < s.Viewers {
			// The late joiner arrives mid-storm.
			v, err := attachViewer(s.Viewers - 1)
			if err != nil {
				return res, err
			}
			defer v.conn.Close()
			viewers = append(viewers, v)
		}
		if i%32 == 0 {
			// Viewer reconnects also attach at rung 0: re-pin each at its
			// own rung (ForceRung above hits every conn, viewers included).
			for _, v := range viewers {
				host.ForceRungUser(v.name, v.rung)
			}
		}
		if r := conn.Stats().DegradeRung; r > res.MaxRungSeen {
			res.MaxRungSeen = r
		}
		if i%8 == 0 {
			time.Sleep(200 * time.Microsecond)
		}
	}

	// Quiescence: stop the workload and the faults, close the video
	// port (its overlay region must be repainted), unpin the rung so
	// the lossy rungs queue their repair, and let the system settle.
	host.Do(func(d *xserver.Display) { vp.Close() })
	_ = stream.Close()
	quiesced.Store(true)
	res.ViewerMismatches = make([]int, len(viewers))
	res.ViewerMaxRungs = make([]int, len(viewers))
	for i, v := range viewers {
		res.ViewerMaxRungs[i] = v.conn.Stats().DegradeRung
	}
	if !s.Adaptive {
		// Prove the notice plumbing: with the faults off, the client must
		// come to observe the pinned rung before it is released. A storm
		// that ended mid-reconnect attaches fresh at rung 0, so re-pin.
		for s.Rung > 0 && time.Now().Before(deadline) &&
			conn.Stats().DegradeRung != s.Rung {
			host.ForceRung(s.Rung)
			time.Sleep(5 * time.Millisecond)
		}
		if r := conn.Stats().DegradeRung; r > res.MaxRungSeen {
			res.MaxRungSeen = r
		}
		// Each viewer must likewise observe its own pinned rung — the
		// mixed-rung set really was mixed.
		for i, v := range viewers {
			for v.rung > 0 && time.Now().Before(deadline) &&
				v.conn.Stats().DegradeRung != v.rung {
				host.ForceRungUser(v.name, v.rung)
				time.Sleep(5 * time.Millisecond)
			}
			if r := v.conn.Stats().DegradeRung; r > res.ViewerMaxRungs[i] {
				res.ViewerMaxRungs[i] = r
			}
		}
		host.ForceRung(0)
	}

	// The oracle: every framebuffer — the owner's and each viewer's —
	// becomes byte-identical to the server screen with its connection
	// at the lossless rung.
	ownerDone := false
	viewerDone := make([]bool, len(viewers))
	for time.Now().Before(deadline) {
		// ForceRung only reaches attached connections: released during
		// a reconnect gap, the retained session would carry its pinned
		// lossy rung across the reattach forever. Re-release each pass
		// (idempotent — the repair refresh fires only on the lossy→
		// lossless transition). Adaptive runs release only the pinned
		// viewers and let the owner's controller descend on its own.
		if !s.Adaptive {
			host.ForceRung(0)
		} else {
			for _, v := range viewers {
				host.ForceRungUser(v.name, 0)
			}
		}
		if !ownerDone && conn.State() == client.StateConnected &&
			conn.Stats().DegradeRung == 0 {
			if at := firstMismatch(host, conn); at < 0 {
				ownerDone, res.MismatchAt = true, -1
			} else {
				res.MismatchAt = at
			}
		}
		for i, v := range viewers {
			if viewerDone[i] {
				continue
			}
			if v.conn.State() != client.StateConnected || v.conn.Stats().DegradeRung != 0 {
				continue
			}
			if at := firstMismatch(host, v.conn); at < 0 {
				viewerDone[i], res.ViewerMismatches[i] = true, -1
			} else {
				res.ViewerMismatches[i] = at
			}
		}
		allDone := ownerDone
		for _, d := range viewerDone {
			allDone = allDone && d
		}
		if allDone {
			res.Converged = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	st := host.Resilience()
	cs := conn.Stats()
	res.Reconnects = cs.Reconnects
	res.Reattaches = st.Reattaches
	res.SlowResyncs = st.SlowResyncs
	res.OverloadUps = st.OverloadUps
	res.OverloadDowns = st.OverloadDowns
	res.OverloadResyncs = st.OverloadResyncs
	res.WatchdogRecoveries = st.WatchdogRecoveries
	res.BudgetEvictions = host.Telemetry().Total("thinc_sched_budget_evicted_total")
	res.E2EMarks = st.E2EMarks
	res.E2EAcks = st.E2EAcks
	res.E2ELegacyPeers = st.E2ELegacyPeers
	if cs.DegradeRung > res.MaxRungSeen {
		res.MaxRungSeen = cs.DegradeRung
	}

	conn.Close()
	<-runDone
	for _, v := range viewers {
		v.conn.Close()
		<-v.done
	}
	return res, nil
}

// firstMismatch compares the client framebuffer against the server
// screen pixel by pixel: -1 means byte-identical.
func firstMismatch(host *server.Host, conn *client.Conn) int {
	var want []pixel.ARGB
	host.Do(func(d *xserver.Display) {
		want = append([]pixel.ARGB(nil), d.Screen().Pix()...)
	})
	got := conn.Snapshot().Pix()
	if len(want) != len(got) {
		return 0
	}
	for i := range want {
		if want[i] != got[i] {
			return i
		}
	}
	return -1
}
