package chaos

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"time"

	"thinc/internal/auth"
	"thinc/internal/client"
	"thinc/internal/core"
	"thinc/internal/faultconn"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/server"
	"thinc/internal/xserver"
)

// The silent-corruption schedule family: where the transport-fault
// schedules above attack the connection, these attack the *content*.
// A frame-aware corrupter sits between the cipher and the decoder on
// the client and flips bits inside well-framed RAW payloads — the
// framing survives, the decode succeeds, the client draws the wrong
// pixels and has no way to know. Nothing in the v1-v3 protocol can
// ever repair this; the run asserts the wire-v4 integrity audit
// detects every injected divergence and heals it with targeted tile
// repairs (no full-screen resync, no reconnect) when few tiles
// diverge, and that broad damage escalates through the sweep to a
// forced resync.

// auditTile is the audit tile side for corruption runs: 16px over the
// 96x64 chaos screen gives a 6x4 grid of 24 tiles.
const auditTile = 16

// corruptTileW/H: each corrupted draw fills exactly one audit tile,
// so the injected divergence is bounded by the draw count.
const (
	corruptTileW = auditTile
	corruptTileH = auditTile
	// corruptDrawPayload is the eligible payload of one such draw: a
	// CodecNone RAW of tile pixels (the 14-byte meta is ineligible).
	corruptDrawPayload = corruptTileW * corruptTileH * 4
)

// CorruptSchedule scripts one silent-corruption run.
type CorruptSchedule struct {
	Name string
	Seed int64
	// Tiles is how many distinct audit tiles the corruption phase draws
	// (and therefore the exact number of tiles that diverge: the fixed
	// flip stride guarantees at least one flip per draw, and the flip
	// budget is exhausted by the last draw's payload).
	Tiles int
	// Escalate marks the broad-damage run: enough divergent tiles that
	// the audit must climb the ladder to a full resync.
	Escalate bool
	// MaxWall bounds the whole run; zero means 20s.
	MaxWall time.Duration
}

// CorruptResult is what one corruption schedule produced.
type CorruptResult struct {
	Schedule   CorruptSchedule
	Converged  bool
	MismatchAt int // first differing pixel after quiescence (-1: identical)

	Flips         int64 // bits actually flipped inside payloads
	Probes        int
	Replies       int
	Mismatches    int // divergent tiles the audit detected
	RepairedTiles int
	RepairedBytes int
	Sweeps        int
	Resyncs       int // audit-forced full resyncs

	Reconnects  int // must stay 0: corruption is silent, nothing disconnects
	SlowResyncs int
}

func (r CorruptResult) String() string {
	return fmt.Sprintf("%s seed=%d tiles=%d escalate=%v converged=%v flips=%d probes=%d detected=%d repaired=%d/%dB sweeps=%d resyncs=%d reconnects=%d",
		r.Schedule.Name, r.Schedule.Seed, r.Schedule.Tiles, r.Schedule.Escalate,
		r.Converged, r.Flips, r.Probes, r.Mismatches, r.RepairedTiles,
		r.RepairedBytes, r.Sweeps, r.Resyncs, r.Reconnects)
}

// CorruptionSuite returns the standard silent-corruption schedules:
// 1, 2 and 4 divergent tiles must heal by targeted repair alone, and
// the 20-tile run must escalate to a resync.
func CorruptionSuite() []CorruptSchedule {
	return []CorruptSchedule{
		{Name: "corrupt-1-tile", Seed: 1101, Tiles: 1},
		{Name: "corrupt-2-tiles", Seed: 1202, Tiles: 2},
		{Name: "corrupt-4-tiles", Seed: 1404, Tiles: 4},
		{Name: "corrupt-escalate-resync", Seed: 1606, Tiles: 20, Escalate: true},
	}
}

// SoakCorruptionSchedules derives n randomized corruption schedules
// from one base seed — the soak's content-integrity counterpart to
// SoakSchedules. Three of four runs corrupt 1-4 tiles (targeted
// repair must heal them); every fourth corrupts most of the screen
// (escalation must resync).
func SoakCorruptionSchedules(n int, seed int64) []CorruptSchedule {
	rnd := rand.New(rand.NewSource(seed ^ 0x5bd1e995))
	out := make([]CorruptSchedule, 0, n)
	for i := 0; i < n; i++ {
		s := CorruptSchedule{
			Name:    fmt.Sprintf("soak-corrupt-%03d", i),
			Seed:    rnd.Int63(),
			Tiles:   1 + rnd.Intn(4),
			MaxWall: 90 * time.Second,
		}
		if i%4 == 3 {
			s.Tiles = 18 + rnd.Intn(5) // 18..22 of 24 tiles
			s.Escalate = true
		}
		out = append(out, s)
	}
	return out
}

// RunCorruption executes one silent-corruption schedule in three
// phases: settle clean, inject, quiesce and verify healing.
func RunCorruption(s CorruptSchedule) (CorruptResult, error) {
	res := CorruptResult{Schedule: s, MismatchAt: -1}
	if s.MaxWall <= 0 {
		s.MaxWall = 20 * time.Second
	}
	deadline := time.Now().Add(s.MaxWall)

	acc := auth.NewAccounts()
	acc.Add("owner", "pw")
	opts := server.Options{
		// RawCodec stays CodecNone: repair and draw payloads are plain
		// pixels, so a bit flip is a silent pixel change, never a codec
		// decode error (which would be a loud failure, not corruption).
		Core:              core.Options{AuditTileSize: auditTile},
		FlushInterval:     time.Millisecond,
		FlushBudget:       1 << 20, // the corruption batch flushes whole
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
		AuditInterval:     5 * time.Millisecond,
		AuditTimeout:      500 * time.Millisecond,
		DisableOverload:   true, // pinned lossless: audits always eligible
	}
	host := server.NewHost(screenW, screenH, auth.NewAuthenticator("owner", acc), opts)
	defer host.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	defer l.Close()
	go host.Serve(l)

	conn, err := client.DialWith(func() (net.Conn, error) {
		return net.Dial("tcp", l.Addr().String())
	}, "owner", "pw", screenW, screenH)
	if err != nil {
		return res, err
	}
	defer conn.Close()

	// The corrupter sits on the decrypted read stream, below the
	// decoder. Installed dormant; phase two arms it. The fixed stride
	// of half a draw payload puts exactly two flips in every corrupted
	// draw — for any seed — and the budget of 2*Tiles flips runs out
	// precisely at the end of the last draw, so the divergence set is
	// exactly the drawn tiles.
	var corr *faultconn.Corrupter
	conn.SetReadWrapper(func(r io.Reader) io.Reader {
		corr = faultconn.NewCorrupter(r, faultconn.CorruptPlan{
			Seed:     s.Seed,
			Gap:      corruptDrawPayload / 2,
			Fixed:    true,
			MaxFlips: int64(2 * s.Tiles),
		})
		corr.Disable()
		return corr
	})
	runDone := make(chan error, 1)
	go func() { runDone <- conn.Run() }()

	// Phase 1: settle clean. Paint a scene and converge byte-exact.
	var win *xserver.Window
	host.Do(func(d *xserver.Display) {
		win = d.CreateWindow(geom.XYWH(0, 0, screenW, screenH))
		d.FillRect(win, &xserver.GC{Fg: pixel.RGB(20, 50, 110)}, geom.XYWH(0, 0, screenW, screenH))
		d.FillRect(win, &xserver.GC{Fg: pixel.RGB(180, 80, 20)}, geom.XYWH(10, 8, 50, 30))
		d.DrawText(win, &xserver.GC{Fg: pixel.RGB(240, 240, 240)}, 8, 44, "integrity")
	})
	if !waitConverged(host, conn, deadline) {
		res.MismatchAt = firstMismatch(host, conn)
		return res, fmt.Errorf("chaos: clean phase never converged (mismatch at %d)", res.MismatchAt)
	}

	// Phase 2: inject. Draw each chosen tile exactly once with the
	// corrupter armed; the flips ride those payloads and nothing
	// overdraws them, so every divergence persists until audited.
	workRnd := rand.New(rand.NewSource(s.Seed ^ 0x1e3779b97f4a7c15))
	grid := rand.New(rand.NewSource(s.Seed)).Perm(
		(screenW / corruptTileW) * (screenH / corruptTileH))
	tiles := grid[:s.Tiles]
	corr.Enable()
	host.Do(func(d *xserver.Display) {
		cols := screenW / corruptTileW
		for _, ti := range tiles {
			r := geom.XYWH((ti%cols)*corruptTileW, (ti/cols)*corruptTileH,
				corruptTileW, corruptTileH)
			pix := make([]pixel.ARGB, corruptTileW*corruptTileH)
			for j := range pix {
				pix[j] = pixel.RGB(uint8(workRnd.Intn(256)), uint8(j), uint8(ti))
			}
			d.PutImage(win, r, pix, corruptTileW)
		}
	})
	// The flip budget empties exactly at the end of the last corrupted
	// draw; wait for the whole injection to pass through the client.
	for corr.Flips() < int64(2*s.Tiles) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	res.Flips = corr.Flips()
	corr.Disable()
	if res.Flips == 0 {
		return res, fmt.Errorf("chaos: corrupter never flipped a bit")
	}

	// Phase 3: quiesce and verify self-healing. No workload, no new
	// corruption — the audit must detect the divergence and converge
	// the framebuffers byte-identical within the wall budget.
	res.Converged = waitConverged(host, conn, deadline)
	if !res.Converged {
		res.MismatchAt = firstMismatch(host, conn)
	}

	st := host.Resilience()
	res.Probes = st.AuditProbes
	res.Replies = st.AuditReplies
	res.Mismatches = st.AuditMismatches
	res.RepairedTiles = st.AuditRepairs
	res.RepairedBytes = st.AuditRepairBytes
	res.Sweeps = st.AuditSweeps
	res.Resyncs = st.AuditResyncs
	res.SlowResyncs = st.SlowResyncs
	res.Reconnects = conn.Stats().Reconnects

	conn.Close()
	<-runDone
	return res, nil
}

// waitConverged polls the byte-identity oracle until it holds or the
// deadline passes.
func waitConverged(host *server.Host, conn *client.Conn, deadline time.Time) bool {
	for time.Now().Before(deadline) {
		if firstMismatch(host, conn) < 0 {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}
