package chaos

import (
	"fmt"
	"io"
	"net"
	"time"

	"thinc/internal/auth"
	"thinc/internal/client"
	"thinc/internal/core"
	"thinc/internal/faultconn"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/server"
	"thinc/internal/xserver"
)

// The cache-desync schedule family: wire v6 replaces repeated payloads
// with 21-byte CACHE_PAINT references, which concentrates the entire
// correctness of a region into a single 8-byte digest. This run attacks
// exactly that surface — a frame-aware corrupter flips bits inside
// CACHE_PAINT digests (the reference no longer matches anything the
// client holds) and inside CACHE_STORE payload data (the content no
// longer matches the digest that rode with it) — and asserts the v6
// miss protocol detects every desync at apply time, reports it, and
// heals it by forget-and-repaint with zero framebuffer divergence, no
// reconnect, and a cache that still produces hits afterwards.

// cacheChaos draw geometry: tiles are inset one pixel inside each
// audit-tile slot so no two draws ever abut — RawCmd merging would
// otherwise coalesce neighbors into one store and break the one
// draw = one cache message accounting the schedule relies on.
const (
	cacheSlotSide = auditTile
	cacheTileSide = cacheSlotSide - 2
	// cachePaintDigestLen is the corruptible window of a CACHE_PAINT: a
	// fixed flip stride no longer than this guarantees every armed
	// paint takes at least one flip, for any seed.
	cachePaintDigestLen = 8
)

// CacheCorruptSchedule scripts one cache-desync run.
type CacheCorruptSchedule struct {
	Name string
	Seed int64
	// Bank is how many distinct patterns phase one stores cleanly —
	// the population of the client cache before the storm.
	Bank int
	// Repeats is how many bank patterns phase two redraws at new
	// positions with the corrupter armed: each goes out as a
	// CACHE_PAINT whose digest is guaranteed a flip.
	Repeats int
	// Fresh is how many new patterns phase two draws armed: each goes
	// out as a CACHE_STORE whose payload data is guaranteed flips, so
	// the client's digest verification must reject it.
	Fresh int
	// MaxWall bounds the whole run; zero means 20s.
	MaxWall time.Duration
}

// slots reports how many non-abutting draw slots the schedule needs:
// bank, repeat targets, fresh, and the post-storm recovery repaints.
func (s CacheCorruptSchedule) slots() int {
	return s.Bank + s.Repeats + s.Fresh + s.Repeats
}

// CacheCorruptResult is what one cache-desync schedule produced.
type CacheCorruptResult struct {
	Schedule   CacheCorruptSchedule
	Converged  bool
	MismatchAt int // first differing pixel after quiescence (-1: identical)

	Flips       int64 // bits flipped inside cache messages
	Grants      int   // handshakes the server granted a cache
	MissReports int   // CACHE_MISS reports the client sent
	MissRepairs int   // forget-and-repaint healings on the server
	Stored      int   // payloads the client retained (verified stores)
	Painted     int   // references satisfied from the client store

	Reconnects int // must stay 0: desync is healed in-protocol
}

func (r CacheCorruptResult) String() string {
	return fmt.Sprintf("%s seed=%d bank=%d repeats=%d fresh=%d converged=%v flips=%d grants=%d missReports=%d missRepairs=%d stored=%d painted=%d reconnects=%d",
		r.Schedule.Name, r.Schedule.Seed, r.Schedule.Bank, r.Schedule.Repeats,
		r.Schedule.Fresh, r.Converged, r.Flips, r.Grants, r.MissReports,
		r.MissRepairs, r.Stored, r.Painted, r.Reconnects)
}

// CacheCorruptionSuite returns the standard cache-desync schedules.
func CacheCorruptionSuite() []CacheCorruptSchedule {
	return []CacheCorruptSchedule{
		{Name: "cache-desync-paints", Seed: 2101, Bank: 3, Repeats: 3, Fresh: 0},
		{Name: "cache-desync-stores", Seed: 2202, Bank: 2, Repeats: 0, Fresh: 3},
		{Name: "cache-desync-storm", Seed: 2404, Bank: 3, Repeats: 3, Fresh: 3},
	}
}

// cacheSlotRect returns the inset draw rect of slot i on the chaos
// screen's audit-tile grid.
func cacheSlotRect(i int) geom.Rect {
	cols := screenW / cacheSlotSide
	return geom.XYWH((i%cols)*cacheSlotSide+1, (i/cols)*cacheSlotSide+1,
		cacheTileSide, cacheTileSide)
}

// cacheChaosPattern fills a tile with pattern id's pixels. Content is a
// pure function of (id, offset) — never of screen position — so a bank
// pattern redrawn at a new slot is byte-identical and digests equal.
// The per-pixel variation keeps the tile from collapsing to a solid
// fill, which the damage pipeline would ship as SFILL instead of RAW.
func cacheChaosPattern(id int) []pixel.ARGB {
	pix := make([]pixel.ARGB, cacheTileSide*cacheTileSide)
	for j := range pix {
		pix[j] = pixel.RGB(uint8(37*id+11), uint8(j), uint8(j>>3^id*53))
	}
	return pix
}

// RunCacheCorruption executes one cache-desync schedule in four
// phases: populate the cache clean, corrupt the delta protocol, heal
// and converge, then prove the cache still hits.
func RunCacheCorruption(s CacheCorruptSchedule) (CacheCorruptResult, error) {
	res := CacheCorruptResult{Schedule: s, MismatchAt: -1}
	if s.MaxWall <= 0 {
		s.MaxWall = 20 * time.Second
	}
	if n, max := s.slots(), (screenW/cacheSlotSide)*(screenH/cacheSlotSide); n > max {
		return res, fmt.Errorf("chaos: schedule needs %d slots, screen has %d", n, max)
	}
	if s.Repeats > s.Bank {
		return res, fmt.Errorf("chaos: %d repeats of a %d-pattern bank", s.Repeats, s.Bank)
	}
	deadline := time.Now().Add(s.MaxWall)

	acc := auth.NewAccounts()
	acc.Add("owner", "pw")
	opts := server.Options{
		// RawCodec stays CodecNone so repaint and store payloads are
		// plain pixels: a flip is silent divergence, never a codec
		// decode error. The audit stays on as the backstop for plain
		// RAW flips; the assertions below are about the cache path.
		Core:              core.Options{AuditTileSize: auditTile},
		CacheKB:           512,
		FlushInterval:     time.Millisecond,
		FlushBudget:       1 << 20,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
		AuditInterval:     5 * time.Millisecond,
		AuditTimeout:      500 * time.Millisecond,
		DisableOverload:   true,
	}
	host := server.NewHost(screenW, screenH, auth.NewAuthenticator("owner", acc), opts)
	defer host.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	defer l.Close()
	go host.Serve(l)

	// The default dial handshake requests a cache; the server grants
	// min(request, CacheKB) = 512 KB.
	conn, err := client.DialWith(func() (net.Conn, error) {
		return net.Dial("tcp", l.Addr().String())
	}, "owner", "pw", screenW, screenH)
	if err != nil {
		return res, err
	}
	defer conn.Close()

	// The corrupter rides the decrypted read stream, installed dormant.
	// The fixed stride of one digest length guarantees every armed
	// CACHE_PAINT takes a flip (any 8 consecutive eligible bytes span a
	// stride multiple) and peppers every armed CACHE_STORE's data; no
	// flip cap, because the repair traffic the storm provokes is itself
	// corruptible while armed — the run converges after disarm.
	var corr *faultconn.Corrupter
	conn.SetReadWrapper(func(r io.Reader) io.Reader {
		corr = faultconn.NewCorrupter(r, faultconn.CorruptPlan{
			Seed:  s.Seed,
			Gap:   cachePaintDigestLen,
			Fixed: true,
		})
		corr.Disable()
		return corr
	})
	runDone := make(chan error, 1)
	go func() { runDone <- conn.Run() }()

	// Phase 1: populate. Draw every bank pattern once, clean; each
	// first appearance ships as a verified CACHE_STORE, so after
	// convergence both sides hold the bank.
	var win *xserver.Window
	host.Do(func(d *xserver.Display) {
		win = d.CreateWindow(geom.XYWH(0, 0, screenW, screenH))
		d.FillRect(win, &xserver.GC{Fg: pixel.RGB(20, 50, 110)}, geom.XYWH(0, 0, screenW, screenH))
		for i := 0; i < s.Bank; i++ {
			d.PutImage(win, cacheSlotRect(i), cacheChaosPattern(i), cacheTileSide)
		}
	})
	if !waitConverged(host, conn, deadline) {
		res.MismatchAt = firstMismatch(host, conn)
		return res, fmt.Errorf("chaos: populate phase never converged (mismatch at %d)", res.MismatchAt)
	}
	if st := conn.Stats(); st.CacheStored < s.Bank {
		return res, fmt.Errorf("chaos: client stored %d of %d bank payloads", st.CacheStored, s.Bank)
	}

	// Phase 2: corrupt. Redraw bank patterns at new slots (hits: armed
	// CACHE_PAINTs with flipped digests) and draw fresh patterns
	// (armed CACHE_STOREs with flipped data). Every one must surface
	// as a CACHE_MISS — the flipped digest misses the client store,
	// the flipped payload fails digest verification.
	wantMiss := s.Repeats + s.Fresh
	corr.Enable()
	host.Do(func(d *xserver.Display) {
		for i := 0; i < s.Repeats; i++ {
			d.PutImage(win, cacheSlotRect(s.Bank+i), cacheChaosPattern(i), cacheTileSide)
		}
		for i := 0; i < s.Fresh; i++ {
			d.PutImage(win, cacheSlotRect(s.Bank+s.Repeats+i),
				cacheChaosPattern(s.Bank+i), cacheTileSide)
		}
	})
	for conn.Stats().CacheMissReports < wantMiss && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	res.Flips = corr.Flips()
	corr.Disable()
	if res.Flips == 0 {
		return res, fmt.Errorf("chaos: corrupter never flipped a bit")
	}

	// Phase 3: heal. No workload, no new corruption — every reported
	// miss is forgotten and repainted clean, and whatever plain-RAW
	// collateral the storm left behind falls to the audit backstop.
	if !waitConverged(host, conn, deadline) {
		res.MismatchAt = firstMismatch(host, conn)
		harvestCacheStats(&res, host, conn)
		return res, nil
	}

	// Phase 4: prove recovery. The storm must not have poisoned the
	// bank: redrawing it at fresh slots must hit the cache (clean
	// CACHE_PAINTs the client satisfies locally) and still converge.
	paintedBefore := conn.Stats().CachePainted
	host.Do(func(d *xserver.Display) {
		for i := 0; i < s.Repeats; i++ {
			d.PutImage(win, cacheSlotRect(s.Bank+s.Repeats+s.Fresh+i),
				cacheChaosPattern(i), cacheTileSide)
		}
	})
	res.Converged = waitConverged(host, conn, deadline)
	if !res.Converged {
		res.MismatchAt = firstMismatch(host, conn)
	}
	for s.Repeats > 0 && conn.Stats().CachePainted == paintedBefore && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	harvestCacheStats(&res, host, conn)
	conn.Close()
	<-runDone
	return res, nil
}

func harvestCacheStats(res *CacheCorruptResult, host *server.Host, conn *client.Conn) {
	st := host.Resilience()
	res.Grants = st.CacheGrants
	res.MissRepairs = st.CacheMissRepairs
	cs := conn.Stats()
	res.MissReports = cs.CacheMissReports
	res.Stored = cs.CacheStored
	res.Painted = cs.CachePainted
	res.Reconnects = cs.Reconnects
}
