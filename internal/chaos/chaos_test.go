package chaos

import (
	"os"
	"strconv"
	"testing"

	"thinc/internal/overload"
	"thinc/internal/testutil"
)

// TestChaosSuiteConverges runs the standard schedules: every ladder
// rung pinned in turn plus the adaptive environments, each under a
// seeded fault storm, and asserts the convergence oracle — the client
// framebuffer ends byte-identical to the server screen.
func TestChaosSuiteConverges(t *testing.T) {
	testutil.CheckGoroutines(t)
	if testing.Short() {
		t.Skip("chaos suite is seconds-long; skipped in -short")
	}
	for _, s := range Suite() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(s)
			if err != nil {
				t.Fatalf("chaos run failed: %v", err)
			}
			t.Log(res)
			if !res.Converged {
				t.Fatalf("framebuffers did not converge: first mismatch at pixel %d (%s)",
					res.MismatchAt, res)
			}
			if !s.Adaptive && s.Rung > 0 && res.MaxRungSeen < s.Rung {
				t.Fatalf("pinned rung %d never observed at client (max %d)", s.Rung, res.MaxRungSeen)
			}
			if s.Name == "modem-adaptive-ladder" && res.OverloadUps < 1 {
				t.Fatalf("narrow link never escalated the ladder: %s", res)
			}
			// E2E tracing health: the storm delivered display traffic,
			// so marks must have flowed, and the loop must not end
			// silently dead — every session either produced acks or
			// was conservatively retired by the legacy verdict.
			if res.E2EMarks == 0 {
				t.Errorf("no TIME_MARKs sent during the storm: %s", res)
			}
			if res.E2EAcks == 0 && res.E2ELegacyPeers == 0 {
				t.Errorf("e2e loop silently dead: marks=%d but no acks and no legacy verdict (%s)",
					res.E2EMarks, res)
			}
			if s.Viewers > 0 {
				if len(res.ViewerMismatches) != s.Viewers {
					t.Fatalf("%d of %d viewers attached: %s",
						len(res.ViewerMismatches), s.Viewers, res)
				}
				for i, at := range res.ViewerMismatches {
					if at != -1 {
						t.Errorf("viewer %d first mismatch at pixel %d, want -1", i, at)
					}
				}
				if !s.Adaptive {
					// The mixed-rung set really was mixed: each viewer
					// observed its pinned rung i % NumRungs.
					for i, r := range res.ViewerMaxRungs {
						if want := i % overload.NumRungs; r < want {
							t.Errorf("viewer %d max rung %d, want >= %d (pinned)", i, r, want)
						}
					}
				}
			}
		})
	}
}

// TestChaosSoak is the long-haul randomized mode behind `make soak`:
// THINC_CHAOS_SOAK=N runs N derived schedules. Unset, it's skipped.
func TestChaosSoak(t *testing.T) {
	testutil.CheckGoroutines(t)
	env := os.Getenv("THINC_CHAOS_SOAK")
	if env == "" {
		t.Skip("set THINC_CHAOS_SOAK=<n> to run the soak")
	}
	n, err := strconv.Atoi(env)
	if err != nil || n <= 0 {
		t.Fatalf("THINC_CHAOS_SOAK=%q is not a positive integer", env)
	}
	seed := int64(1)
	if s := os.Getenv("THINC_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("THINC_CHAOS_SEED=%q is not an integer", s)
		}
		seed = v
	}
	for _, s := range SoakSchedules(n, seed) {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(s)
			if err != nil {
				t.Fatalf("chaos run failed: %v", err)
			}
			t.Log(res)
			if !res.Converged {
				t.Fatalf("framebuffers did not converge: first mismatch at pixel %d (%s)",
					res.MismatchAt, res)
			}
		})
	}
}

// checkCorruption applies the silent-corruption oracle to one result:
// the run must converge byte-identical, every injected divergence must
// be detected and healed through the audit, and — when few tiles
// diverge — healed by targeted repair alone, with no resync of any
// kind and no reconnect. The broad-damage schedules must instead climb
// the escalation ladder to a forced resync.
func checkCorruption(t *testing.T, res CorruptResult) {
	t.Helper()
	t.Log(res)
	s := res.Schedule
	if !res.Converged {
		t.Fatalf("silent corruption was not healed: first mismatch at pixel %d (%s)",
			res.MismatchAt, res)
	}
	if res.Flips == 0 {
		t.Fatal("corrupter never flipped a bit; the schedule proved nothing")
	}
	if res.Probes == 0 || res.Replies == 0 {
		t.Fatalf("no audit traffic: %s", res)
	}
	if res.Mismatches == 0 {
		t.Fatalf("injected divergence was never detected: %s", res)
	}
	if res.Reconnects != 0 {
		t.Errorf("silent corruption caused %d reconnects; it must be invisible to the transport", res.Reconnects)
	}
	if res.SlowResyncs != 0 {
		t.Errorf("slow-client resyncs fired (%d) during a corruption run", res.SlowResyncs)
	}
	if s.Escalate {
		if res.Sweeps < 1 || res.Resyncs < 1 {
			t.Errorf("broad damage (%d tiles) did not escalate: sweeps=%d resyncs=%d",
				s.Tiles, res.Sweeps, res.Resyncs)
		}
		return
	}
	if res.Resyncs != 0 {
		t.Errorf("%d divergent tiles escalated to %d full resyncs; targeted repair must suffice",
			s.Tiles, res.Resyncs)
	}
	if res.RepairedTiles < s.Tiles {
		t.Errorf("repaired %d tiles, want >= %d (every corrupted tile)",
			res.RepairedTiles, s.Tiles)
	}
	if res.RepairedBytes < s.Tiles*16*16*4 {
		t.Errorf("repaired %d bytes, want >= %d", res.RepairedBytes, s.Tiles*16*16*4)
	}
}

// TestChaosCorruptionSuite runs the silent-corruption schedules: bit
// flips inside well-framed payloads that survive decode and can only
// be caught by the wire-v4 integrity audit.
func TestChaosCorruptionSuite(t *testing.T) {
	testutil.CheckGoroutines(t)
	if testing.Short() {
		t.Skip("corruption suite is seconds-long; skipped in -short")
	}
	for _, s := range CorruptionSuite() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			res, err := RunCorruption(s)
			if err != nil {
				t.Fatalf("corruption run failed: %v", err)
			}
			checkCorruption(t, res)
		})
	}
}

// TestChaosCacheDesync runs the wire-v6 cache-desync schedules: bit
// flips inside CACHE_PAINT digests and CACHE_STORE payloads that the
// miss protocol must detect at apply time and heal by
// forget-and-repaint, with zero framebuffer divergence, no reconnect,
// and a cache that still hits after the storm.
func TestChaosCacheDesync(t *testing.T) {
	testutil.CheckGoroutines(t)
	if testing.Short() {
		t.Skip("cache-desync suite is seconds-long; skipped in -short")
	}
	for _, s := range CacheCorruptionSuite() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			res, err := RunCacheCorruption(s)
			if err != nil {
				t.Fatalf("cache-desync run failed: %v", err)
			}
			t.Log(res)
			if !res.Converged {
				t.Fatalf("cache desync was not healed: first mismatch at pixel %d (%s)",
					res.MismatchAt, res)
			}
			if res.Flips == 0 {
				t.Fatal("corrupter never flipped a bit; the schedule proved nothing")
			}
			if res.Grants < 1 {
				t.Fatalf("server never granted a cache: %s", res)
			}
			want := s.Repeats + s.Fresh
			if res.MissReports < want {
				t.Errorf("client reported %d cache misses, want >= %d (every corrupted delivery)",
					res.MissReports, want)
			}
			if res.MissRepairs < want {
				t.Errorf("server healed %d cache misses, want >= %d", res.MissRepairs, want)
			}
			if res.Stored < s.Bank {
				t.Errorf("client retained %d payloads, want >= %d (the bank)", res.Stored, s.Bank)
			}
			if s.Repeats > 0 && res.Painted < s.Repeats {
				t.Errorf("post-storm repaints hit the cache %d times, want >= %d; the storm poisoned the store",
					res.Painted, s.Repeats)
			}
			if res.Reconnects != 0 {
				t.Errorf("cache desync caused %d reconnects; healing must stay in-protocol", res.Reconnects)
			}
		})
	}
}

// TestChaosReattachSuite runs the wire-v7 reattach-lifecycle schedules:
// warm resumes that must carry content missed while detached, an epoch
// desync from a simulated client reboot, transports cut inside the warm
// resync's CACHE_STORE wave, and a reattach storm against a small
// admission budget. Every run must end byte-identical.
func TestChaosReattachSuite(t *testing.T) {
	testutil.CheckGoroutines(t)
	if testing.Short() {
		t.Skip("reattach suite is seconds-long; skipped in -short")
	}
	for _, s := range ReattachSuite() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			res, err := RunReattach(s)
			if err != nil {
				t.Fatalf("reattach run failed: %v", err)
			}
			t.Log(res)
			if !res.Converged {
				t.Fatalf("framebuffers did not converge: first mismatch at pixel %d (%s)",
					res.MismatchAt, res)
			}
			switch s.Mode {
			case ReattachWarm:
				if res.WarmResumes != s.Cycles || res.ColdFallbacks != 0 {
					t.Errorf("warm cycles resumed warm %d/%d times (cold fallbacks %d): %s",
						res.WarmResumes, s.Cycles, res.ColdFallbacks, res)
				}
				if res.WarmReattaches != s.Cycles || res.ColdReattaches != 0 {
					t.Errorf("server verdicts disagree: %s", res)
				}
				if res.Painted < 1 {
					t.Errorf("warm resumes never hit the cache: %s", res)
				}
			case ReattachRestart:
				// The reboot dropped the store, so the resume carries no
				// epoch claim and must renegotiate cold — and the cache
				// must come back to life under the new epoch.
				if res.WarmResumes != 0 || res.ColdReattaches < 1 {
					t.Errorf("rebooted client resumed warm: %s", res)
				}
				if res.Stored < 4 {
					t.Errorf("cache never came back after the cold resume: %s", res)
				}
			case ReattachMidStore:
				// Wherever the cuts landed, the final clean resume healed;
				// the populate bank plus resync stores must have survived.
				if res.Stored < 3 {
					t.Errorf("no stores survived the mid-store cuts: %s", res)
				}
				if res.Reattaches < s.Cycles {
					t.Errorf("only %d reattaches across %d faulted cycles: %s",
						res.Reattaches, s.Cycles, res)
				}
			case ReattachStorm:
				if res.PeakInFlight > s.Budget {
					t.Errorf("gate exceeded budget: peak %d > %d (%s)",
						res.PeakInFlight, s.Budget, res)
				}
				if res.Rejected == 0 || res.BusyRejections == 0 {
					t.Errorf("a %d-wide storm against budget %d never tripped the gate: %s",
						s.Clients, s.Budget, res)
				}
			}
		})
	}
}

// TestChaosCorruptionSoak is the randomized long-haul corruption pass
// behind `make soak`, sharing THINC_CHAOS_SOAK with the fault soak.
func TestChaosCorruptionSoak(t *testing.T) {
	testutil.CheckGoroutines(t)
	env := os.Getenv("THINC_CHAOS_SOAK")
	if env == "" {
		t.Skip("set THINC_CHAOS_SOAK=<n> to run the soak")
	}
	n, err := strconv.Atoi(env)
	if err != nil || n <= 0 {
		t.Fatalf("THINC_CHAOS_SOAK=%q is not a positive integer", env)
	}
	seed := int64(1)
	if s := os.Getenv("THINC_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("THINC_CHAOS_SEED=%q is not an integer", s)
		}
		seed = v
	}
	for _, s := range SoakCorruptionSchedules(n, seed) {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			res, err := RunCorruption(s)
			if err != nil {
				t.Fatalf("corruption run failed: %v", err)
			}
			checkCorruption(t, res)
		})
	}
}

// TestSoakCorruptionSchedulesDeterministic guards replayability of the
// corruption soak derivation, and that both schedule classes appear.
func TestSoakCorruptionSchedulesDeterministic(t *testing.T) {
	a := SoakCorruptionSchedules(8, 7)
	b := SoakCorruptionSchedules(8, 7)
	escalate := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule %d differs: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Escalate {
			escalate++
			if a[i].Tiles <= 4 {
				t.Fatalf("escalation schedule %d corrupts only %d tiles", i, a[i].Tiles)
			}
		} else if a[i].Tiles < 1 || a[i].Tiles > 4 {
			t.Fatalf("targeted schedule %d corrupts %d tiles, want 1..4", i, a[i].Tiles)
		}
	}
	if escalate == 0 {
		t.Fatal("no escalation schedules in an 8-draw sample")
	}
}

// TestSoakSchedulesDeterministic guards replayability: the same base
// seed must derive the same schedules.
func TestSoakSchedulesDeterministic(t *testing.T) {
	a := SoakSchedules(16, 7)
	b := SoakSchedules(16, 7)
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("lengths %d/%d, want 16", len(a), len(b))
	}
	rungs := map[int]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule %d differs: %+v vs %+v", i, a[i], b[i])
		}
		if !a[i].Adaptive {
			rungs[a[i].Rung] = true
		}
		if a[i].Rung >= overload.NumRungs {
			t.Fatalf("schedule %d rung %d out of range", i, a[i].Rung)
		}
	}
	if len(rungs) == 0 {
		t.Fatal("no pinned-rung schedules in a 16-draw sample")
	}
}
