package chaos

import (
	"os"
	"strconv"
	"testing"

	"thinc/internal/overload"
)

// TestChaosSuiteConverges runs the standard schedules: every ladder
// rung pinned in turn plus the adaptive environments, each under a
// seeded fault storm, and asserts the convergence oracle — the client
// framebuffer ends byte-identical to the server screen.
func TestChaosSuiteConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is seconds-long; skipped in -short")
	}
	for _, s := range Suite() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(s)
			if err != nil {
				t.Fatalf("chaos run failed: %v", err)
			}
			t.Log(res)
			if !res.Converged {
				t.Fatalf("framebuffers did not converge: first mismatch at pixel %d (%s)",
					res.MismatchAt, res)
			}
			if !s.Adaptive && s.Rung > 0 && res.MaxRungSeen < s.Rung {
				t.Fatalf("pinned rung %d never observed at client (max %d)", s.Rung, res.MaxRungSeen)
			}
			if s.Name == "modem-adaptive-ladder" && res.OverloadUps < 1 {
				t.Fatalf("narrow link never escalated the ladder: %s", res)
			}
			if s.Viewers > 0 {
				if len(res.ViewerMismatches) != s.Viewers {
					t.Fatalf("%d of %d viewers attached: %s",
						len(res.ViewerMismatches), s.Viewers, res)
				}
				for i, at := range res.ViewerMismatches {
					if at != -1 {
						t.Errorf("viewer %d first mismatch at pixel %d, want -1", i, at)
					}
				}
				if !s.Adaptive {
					// The mixed-rung set really was mixed: each viewer
					// observed its pinned rung i % NumRungs.
					for i, r := range res.ViewerMaxRungs {
						if want := i % overload.NumRungs; r < want {
							t.Errorf("viewer %d max rung %d, want >= %d (pinned)", i, r, want)
						}
					}
				}
			}
		})
	}
}

// TestChaosSoak is the long-haul randomized mode behind `make soak`:
// THINC_CHAOS_SOAK=N runs N derived schedules. Unset, it's skipped.
func TestChaosSoak(t *testing.T) {
	env := os.Getenv("THINC_CHAOS_SOAK")
	if env == "" {
		t.Skip("set THINC_CHAOS_SOAK=<n> to run the soak")
	}
	n, err := strconv.Atoi(env)
	if err != nil || n <= 0 {
		t.Fatalf("THINC_CHAOS_SOAK=%q is not a positive integer", env)
	}
	seed := int64(1)
	if s := os.Getenv("THINC_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("THINC_CHAOS_SEED=%q is not an integer", s)
		}
		seed = v
	}
	for _, s := range SoakSchedules(n, seed) {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(s)
			if err != nil {
				t.Fatalf("chaos run failed: %v", err)
			}
			t.Log(res)
			if !res.Converged {
				t.Fatalf("framebuffers did not converge: first mismatch at pixel %d (%s)",
					res.MismatchAt, res)
			}
		})
	}
}

// TestSoakSchedulesDeterministic guards replayability: the same base
// seed must derive the same schedules.
func TestSoakSchedulesDeterministic(t *testing.T) {
	a := SoakSchedules(16, 7)
	b := SoakSchedules(16, 7)
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("lengths %d/%d, want 16", len(a), len(b))
	}
	rungs := map[int]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule %d differs: %+v vs %+v", i, a[i], b[i])
		}
		if !a[i].Adaptive {
			rungs[a[i].Rung] = true
		}
		if a[i].Rung >= overload.NumRungs {
			t.Fatalf("schedule %d rung %d out of range", i, a[i].Rung)
		}
	}
	if len(rungs) == 0 {
		t.Fatal("no pinned-rung schedules in a 16-draw sample")
	}
}
