package chaos

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"thinc/internal/auth"
	"thinc/internal/client"
	"thinc/internal/core"
	"thinc/internal/faultconn"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/server"
	"thinc/internal/shard"
	"thinc/internal/wire"
	"thinc/internal/xserver"
)

// The reattach schedule family: wire v7 lets a payload cache survive a
// disconnect, which moves session state across the one boundary chaos
// cares about most — the transport dying at an arbitrary byte. These
// runs attack that boundary from four directions: repeated warm resumes
// that must carry content missed while detached, an epoch desync where
// the client rebooted out from under its warm claim, transports cut in
// the middle of the warm resync's CACHE_STORE wave, and a storm of
// simultaneous reattaches against a small admission budget. Every
// schedule ends on the same oracle as the rest of the suite: the client
// framebuffer byte-identical to the server screen.

// Reattach schedule modes.
const (
	// ReattachWarm kills and resumes one client Cycles times, drawing
	// new content during each detach window; every resume must be warm
	// and the resync must deliver what was missed.
	ReattachWarm = "warm"
	// ReattachRestart populates the cache, then simulates a client
	// reboot (store lost, ticket kept) before reattaching: the epoch
	// claim is gone, the server must renegotiate cold, and the cache
	// must come back to life afterwards.
	ReattachRestart = "restart"
	// ReattachMidStore cuts each reattached transport after a random
	// byte budget, landing the cut inside the warm resync's CACHE_STORE
	// wave, then reattaches again — wherever the cut lands, the final
	// clean resume must converge.
	ReattachMidStore = "midstore"
	// ReattachStorm cuts Clients transports at once and lets RunAuto
	// fight through a Budget-wide admission gate: the gate must never
	// exceed its budget and everyone must get back in.
	ReattachStorm = "storm"
)

// ReattachSchedule scripts one reattach-lifecycle run.
type ReattachSchedule struct {
	Name string
	Seed int64
	Mode string
	// Cycles is how many kill/resume rounds the single-client modes run
	// (default 2).
	Cycles int
	// Clients and Budget shape the storm: Clients transports cut at
	// once against a Budget-wide resync admission gate.
	Clients int
	Budget  int
	// Sched runs the schedule against the sharded delivery core
	// (Options.Sched): socket connections are driven by runScheduled on
	// a worker pool and the shared timer wheel instead of the classic
	// per-connection goroutine pair. Wire behavior must be identical,
	// so every oracle and counter assertion is unchanged.
	Sched bool
	// MaxWall bounds the whole run; zero means 30s.
	MaxWall time.Duration
}

// ReattachResult is what one reattach schedule produced.
type ReattachResult struct {
	Schedule   ReattachSchedule
	Converged  bool
	MismatchAt int // first differing pixel after quiescence (-1: identical)

	// Client side (summed across clients in storm mode).
	WarmResumes    int
	ColdFallbacks  int
	BusyRejections int
	Stored         int
	Painted        int

	// Server side.
	Reattaches     int
	WarmReattaches int
	ColdReattaches int
	Rejected       int
	PeakInFlight   int
}

func (r ReattachResult) String() string {
	return fmt.Sprintf("%s seed=%d mode=%s converged=%v warm=%d cold=%d busy=%d stored=%d painted=%d srvReattach=%d srvWarm=%d srvCold=%d rejected=%d peak=%d",
		r.Schedule.Name, r.Schedule.Seed, r.Schedule.Mode, r.Converged,
		r.WarmResumes, r.ColdFallbacks, r.BusyRejections, r.Stored, r.Painted,
		r.Reattaches, r.WarmReattaches, r.ColdReattaches, r.Rejected, r.PeakInFlight)
}

// ReattachSuite returns the standard reattach schedules.
func ReattachSuite() []ReattachSchedule {
	return []ReattachSchedule{
		{Name: "reattach-warm-cycles", Seed: 3101, Mode: ReattachWarm, Cycles: 3},
		{Name: "reattach-epoch-desync", Seed: 3202, Mode: ReattachRestart},
		{Name: "reattach-kill-mid-store", Seed: 3303, Mode: ReattachMidStore, Cycles: 3},
		{Name: "reattach-storm", Seed: 3404, Mode: ReattachStorm, Clients: 12, Budget: 2},
		// The same storm against the sharded delivery core: the admission
		// gate, the ticket protocol, and the convergence oracle must hold
		// when every connection is a shard task instead of a goroutine pair.
		{Name: "reattach-storm-sharded", Seed: 3404, Mode: ReattachStorm, Clients: 12, Budget: 2, Sched: true},
	}
}

// killableDialer dials addr, remembers the latest transport so the
// schedule can cut it, and optionally wraps the next dial in a fault
// plan (consumed once — the mid-store cut).
type killableDialer struct {
	mu       sync.Mutex
	addr     string
	last     net.Conn
	nextWrap func(net.Conn) net.Conn
}

func (d *killableDialer) dial() (net.Conn, error) {
	nc, err := net.Dial("tcp", d.addr)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	if d.nextWrap != nil {
		nc = d.nextWrap(nc)
		d.nextWrap = nil
	}
	d.last = nc
	d.mu.Unlock()
	return nc, nil
}

func (d *killableDialer) kill() {
	d.mu.Lock()
	nc := d.last
	d.mu.Unlock()
	if nc != nil {
		nc.Close()
	}
}

func (d *killableDialer) armWrap(w func(net.Conn) net.Conn) {
	d.mu.Lock()
	d.nextWrap = w
	d.mu.Unlock()
}

// reattachOptions is the server shape shared by the reattach runs: the
// cache on (except the storm, which wants every resync gated), generous
// liveness timers so the schedule — not the heartbeat — decides when a
// transport dies, and a grace window long enough that no session is
// reaped mid-run.
func reattachOptions(s ReattachSchedule) server.Options {
	opts := server.Options{
		Core:              core.Options{AuditTileSize: auditTile},
		CacheKB:           512,
		FlushInterval:     time.Millisecond,
		FlushBudget:       1 << 20,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  20 * time.Second,
		DetachGrace:       20 * time.Second,
		DisableOverload:   true,
		DisableAudit:      true,
		DisableE2E:        true,
	}
	if s.Mode == ReattachStorm {
		opts.CacheKB = 0 // every reattach is a gated full resync
		opts.ResyncAdmit = s.Budget
		opts.ResyncRetryAfter = 15 * time.Millisecond
		opts.MaxViewers = s.Clients + 1
	}
	return opts
}

// waitUntil polls cond every 2ms until it holds or the deadline passes.
func waitUntil(deadline time.Time, cond func() bool) bool {
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}

// redialUntil retries Redial until it succeeds or the deadline passes;
// a redial can race the server noticing the dead transport.
func redialUntil(conn *client.Conn, deadline time.Time) error {
	var err error
	for time.Now().Before(deadline) {
		if err = conn.Redial(); err == nil {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err == nil {
		err = fmt.Errorf("chaos: redial deadline passed")
	}
	return err
}

// harvestReattach fills the result's counters from both sides.
func harvestReattach(res *ReattachResult, host *server.Host, conns ...*client.Conn) {
	st := host.Resilience()
	res.Reattaches = st.Reattaches
	res.WarmReattaches = st.WarmReattaches
	res.ColdReattaches = st.ColdReattaches
	res.Rejected = st.ReattachRejected
	res.PeakInFlight = st.ResyncPeakInFlight
	res.WarmResumes, res.ColdFallbacks, res.BusyRejections = 0, 0, 0
	res.Stored, res.Painted = 0, 0
	for _, cn := range conns {
		cs := cn.Stats()
		res.WarmResumes += cs.WarmResumes
		res.ColdFallbacks += cs.ColdFallbacks
		res.BusyRejections += cs.BusyRejections
		res.Stored += cs.CacheStored
		res.Painted += cs.CachePainted
	}
}

// RunReattach executes one reattach schedule.
func RunReattach(s ReattachSchedule) (ReattachResult, error) {
	res := ReattachResult{Schedule: s, MismatchAt: -1}
	if s.MaxWall <= 0 {
		s.MaxWall = 30 * time.Second
	}
	if s.Cycles <= 0 {
		s.Cycles = 2
	}
	deadline := time.Now().Add(s.MaxWall)

	acc := auth.NewAccounts()
	acc.Add("owner", "pw")
	opts := reattachOptions(s)
	if s.Sched {
		sched := shard.NewScheduler(shard.Options{})
		defer sched.Close()
		opts.Sched = sched
	}
	host := server.NewHost(screenW, screenH, auth.NewAuthenticator("owner", acc), opts)
	// Closing the host (before the scheduler, per defer order) releases
	// every server-side goroutine and timer; the leak checker in the
	// chaos tests holds each run to that.
	defer host.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	defer l.Close()
	go host.Serve(l)

	if s.Mode == ReattachStorm {
		return runReattachStorm(s, res, host, l.Addr().String(), deadline)
	}
	return runReattachCycles(s, res, host, l.Addr().String(), deadline)
}

// runReattachCycles drives the single-client modes: populate the cache,
// then kill/resume Cycles times with mode-specific sabotage, drawing
// new content during each detach window so the resync has real work.
func runReattachCycles(s ReattachSchedule, res ReattachResult, host *server.Host, addr string, deadline time.Time) (ReattachResult, error) {
	rnd := rand.New(rand.NewSource(s.Seed))
	td := &killableDialer{addr: addr}
	conn, err := client.DialWith(td.dial, "owner", "pw", screenW, screenH)
	if err != nil {
		return res, err
	}
	defer conn.Close()
	runDone := make(chan error, 1)
	go func() { runDone <- conn.Run() }()

	// Phase 1: populate. A bank of patterns plus one repeat, so the
	// session has a cache with real holdings before anything breaks.
	const bank = 3
	var win *xserver.Window
	host.Do(func(d *xserver.Display) {
		win = d.CreateWindow(geom.XYWH(0, 0, screenW, screenH))
		d.FillRect(win, &xserver.GC{Fg: pixel.RGB(25, 60, 120)}, geom.XYWH(0, 0, screenW, screenH))
		for i := 0; i < bank; i++ {
			d.PutImage(win, cacheSlotRect(i), cacheChaosPattern(i), cacheTileSide)
		}
		d.PutImage(win, cacheSlotRect(bank), cacheChaosPattern(0), cacheTileSide)
	})
	if !waitConverged(host, conn, deadline) {
		res.MismatchAt = firstMismatch(host, conn)
		return res, fmt.Errorf("chaos: populate phase never converged (mismatch at %d)", res.MismatchAt)
	}
	if st := conn.Stats(); st.CacheStored < bank {
		return res, fmt.Errorf("chaos: client stored %d of %d bank payloads", st.CacheStored, bank)
	}
	if !waitUntil(deadline, func() bool { return len(conn.Ticket()) > 0 }) {
		return res, fmt.Errorf("chaos: no session ticket before first kill")
	}

	// Phase 2: kill/resume cycles. Each round cuts the transport, waits
	// for the server to park the session, sabotages per mode, draws a
	// pattern the client cannot have seen, and resumes.
	slot := bank + 1
	for cycle := 1; cycle <= s.Cycles; cycle++ {
		td.kill()
		<-runDone
		if !waitUntil(deadline, func() bool { return host.NumDetached() >= 1 }) {
			return res, fmt.Errorf("chaos: cycle %d: session never detached", cycle)
		}

		switch s.Mode {
		case ReattachRestart:
			// The device rebooted: RAM store gone, ticket recovered.
			conn.DropCache()
		case ReattachMidStore:
			// The next transport dies after a random byte budget — past
			// the handshake (a few hundred bytes), inside the resync's
			// CACHE_STORE wave (the first warm resync ships ~24KB of
			// tile stores; later ones may be tiny paints, where the
			// residual budget falls to heartbeat traffic instead).
			budget := 1024 + rnd.Int63n(2<<10)
			td.armWrap(func(nc net.Conn) net.Conn {
				return faultconn.Wrap(nc, faultconn.Plan{ReadFaultAfter: budget})
			})
		}

		// Content missed while detached: the resync must deliver it.
		host.Do(func(d *xserver.Display) {
			d.PutImage(win, cacheSlotRect(slot), cacheChaosPattern(bank+cycle), cacheTileSide)
		})
		slot++

		if err := redialUntil(conn, deadline); err != nil {
			return res, fmt.Errorf("chaos: cycle %d: %w", cycle, err)
		}
		go func() { runDone <- conn.Run() }()

		if s.Mode == ReattachMidStore {
			// The armed cut kills this resume mid-store; wait for the
			// stream to die, close the half-dead transport so the server
			// notices now (not at the heartbeat timeout), then resume
			// clean. Wherever the cut landed — before the ticket,
			// mid-CACHE_STORE, mid-RAW — the clean resume must still
			// converge.
			<-runDone
			td.kill()
			if !waitUntil(deadline, func() bool { return host.NumDetached() >= 1 }) {
				return res, fmt.Errorf("chaos: cycle %d: mid-store kill never detached", cycle)
			}
			if err := redialUntil(conn, deadline); err != nil {
				return res, fmt.Errorf("chaos: cycle %d clean resume: %w", cycle, err)
			}
			go func() { runDone <- conn.Run() }()
		}

		if !waitUntil(deadline, func() bool {
			return firstMismatch(host, conn) < 0 && len(conn.Ticket()) > 0
		}) {
			res.MismatchAt = firstMismatch(host, conn)
			harvestReattach(&res, host, conn)
			return res, nil
		}
	}

	// Phase 3: prove the cache is alive after the last resume — a bank
	// repeat at a fresh slot must hit the store (or re-store it after a
	// cold resume) and converge.
	paintedBefore := conn.Stats().CachePainted
	storedBefore := conn.Stats().CacheStored
	host.Do(func(d *xserver.Display) {
		d.PutImage(win, cacheSlotRect(slot), cacheChaosPattern(1), cacheTileSide)
	})
	res.Converged = waitConverged(host, conn, deadline)
	if !res.Converged {
		res.MismatchAt = firstMismatch(host, conn)
	}
	waitUntil(deadline, func() bool {
		st := conn.Stats()
		return st.CachePainted > paintedBefore || st.CacheStored > storedBefore
	})

	harvestReattach(&res, host, conn)
	conn.Close()
	<-runDone
	return res, nil
}

// runReattachStorm cuts every client at once and lets RunAuto fight
// through the admission gate.
func runReattachStorm(s ReattachSchedule, res ReattachResult, host *server.Host, addr string, deadline time.Time) (ReattachResult, error) {
	if s.Clients < 2 || s.Budget < 1 {
		return res, fmt.Errorf("chaos: storm needs clients >= 2 and budget >= 1")
	}
	host.Do(func(d *xserver.Display) {
		win := d.CreateWindow(geom.XYWH(0, 0, screenW, screenH))
		d.FillRect(win, &xserver.GC{Fg: pixel.RGB(40, 80, 140)}, geom.XYWH(0, 0, screenW, screenH))
		for i := 0; i < 4; i++ {
			d.PutImage(win, cacheSlotRect(i), cacheChaosPattern(i), cacheTileSide)
		}
	})

	dialers := make([]*killableDialer, s.Clients)
	conns := make([]*client.Conn, s.Clients)
	done := make(chan error, s.Clients)
	for i := 0; i < s.Clients; i++ {
		dialers[i] = &killableDialer{addr: addr}
		role := uint8(wire.RoleViewer)
		if i == 0 {
			role = wire.RoleOwner
		}
		cn, err := client.DialWithRole(dialers[i].dial, "owner", "pw", screenW, screenH, role)
		if err != nil {
			return res, err
		}
		conns[i] = cn
		defer cn.Close()
		go func(cn *client.Conn, i int) {
			done <- cn.RunAuto(client.ReconnectPolicy{
				Initial: 5 * time.Millisecond, MaxAttempts: 12, Seed: s.Seed + int64(i)})
		}(cn, i)
	}
	if !waitUntil(deadline, func() bool { return host.NumClients() == s.Clients }) {
		return res, fmt.Errorf("chaos: only %d/%d clients attached", host.NumClients(), s.Clients)
	}

	// Cut every transport at once.
	for _, d := range dialers {
		d.kill()
	}
	if !waitUntil(deadline, func() bool {
		if host.NumClients() != s.Clients {
			return false
		}
		for _, cn := range conns {
			if cn.Stats().Reconnects < 1 {
				return false
			}
		}
		return true
	}) {
		harvestReattach(&res, host, conns...)
		return res, fmt.Errorf("chaos: storm never drained: %d/%d back", host.NumClients(), s.Clients)
	}

	// Everyone converges byte-identically after the storm.
	res.Converged = waitUntil(deadline, func() bool {
		for _, cn := range conns {
			if firstMismatch(host, cn) >= 0 {
				return false
			}
		}
		return true
	})
	if !res.Converged {
		for _, cn := range conns {
			if at := firstMismatch(host, cn); at >= 0 {
				res.MismatchAt = at
				break
			}
		}
	}
	harvestReattach(&res, host, conns...)
	return res, nil
}
