// Package overload implements the server's overload-protection brain:
// a per-client bandwidth/RTT estimator fed by flush write progress and
// heartbeat echoes, and a degradation controller that walks an explicit
// quality ladder with hysteresis. THINC's server-push model (§5)
// assumes the client drains updates as fast as the server produces
// them; when it cannot, the controller trades fidelity for liveness one
// rung at a time — and climbs back down the same way once pressure
// subsides — instead of jumping straight to the disconnect-and-resync
// cliff.
package overload

import "time"

// Ladder rungs, mildest to harshest. Rung changes are always by one.
const (
	// RungLossless is normal operation: every update exactly as drawn.
	RungLossless = 0
	// RungCompress keeps updates lossless but switches RAW payloads to
	// the heaviest codec — more CPU for fewer bytes.
	RungCompress = 1
	// RungDownscale transmits RAW/PFILL payloads at half resolution per
	// axis (§6's resampler as a bandwidth valve). Lossy; leaving this
	// rung (or any above it) triggers a full refresh to repair the
	// screen.
	RungDownscale = 2
	// RungDropVideo additionally drops video frames at the server while
	// audio keeps flowing — §4.2's drop-at-server taken to its limit.
	RungDropVideo = 3
	// RungResync is the last rung: the backlog is discarded and replaced
	// with one fresh snapshot, because delivering history the client
	// cannot absorb only grows its staleness.
	RungResync = 4

	// NumRungs counts the ladder rungs.
	NumRungs = 5
)

// RungName names a ladder rung for telemetry and traces.
func RungName(r int) string {
	switch r {
	case RungLossless:
		return "lossless"
	case RungCompress:
		return "compress"
	case RungDownscale:
		return "downscale"
	case RungDropVideo:
		return "drop-video"
	case RungResync:
		return "resync"
	default:
		return "unknown"
	}
}

// ewmaAlpha weighs new samples into the running estimates. One third
// reacts within a few flush ticks without chasing single-batch noise.
const ewmaAlpha = 1.0 / 3

// Estimator tracks one client's drain bandwidth and round-trip time.
// It is passive arithmetic — the owner (the connection's flush loop)
// provides synchronization.
type Estimator struct {
	bps      float64 // EWMA drain rate, bytes/sec (0 = no sample yet)
	rttUS    float64 // EWMA heartbeat RTT, microseconds
	minRTTUS float64 // smallest RTT seen (the uncongested path)
}

// ObserveFlush folds one flush-write observation into the bandwidth
// estimate: n bytes were committed to the transport in elapsed time.
// Tiny batches say nothing about the drain rate and are skipped.
func (e *Estimator) ObserveFlush(n int, elapsed time.Duration) {
	if n < 1024 {
		return
	}
	sec := elapsed.Seconds()
	if sec < 1e-6 {
		// An instant write means the socket buffer took it all: the
		// observable rate is "at least this fast".
		sec = 1e-6
	}
	sample := float64(n) / sec
	if e.bps == 0 {
		e.bps = sample
		return
	}
	e.bps += ewmaAlpha * (sample - e.bps)
}

// ObserveRTT folds one heartbeat round-trip sample (microseconds).
func (e *Estimator) ObserveRTT(us int64) {
	if us <= 0 {
		return
	}
	s := float64(us)
	if e.minRTTUS == 0 || s < e.minRTTUS {
		e.minRTTUS = s
	}
	if e.rttUS == 0 {
		e.rttUS = s
		return
	}
	e.rttUS += ewmaAlpha * (s - e.rttUS)
}

// Bps returns the estimated drain rate in bytes/sec (0 before the
// first usable sample).
func (e *Estimator) Bps() float64 { return e.bps }

// RTTMicros returns the smoothed heartbeat RTT in microseconds.
func (e *Estimator) RTTMicros() float64 { return e.rttUS }

// MinRTTMicros returns the smallest RTT observed.
func (e *Estimator) MinRTTMicros() float64 { return e.minRTTUS }

// Config tunes the controller. The zero value picks the defaults.
type Config struct {
	// UpSec escalates when the backlog's projected drain time stays
	// above it; zero means 0.5s.
	UpSec float64
	// DownSec de-escalates when the projected drain time stays below
	// it; zero means 0.1s. Must be well under UpSec (hysteresis).
	DownSec float64
	// UpTicks is how many consecutive pressured ticks trigger one
	// escalation; zero means 4.
	UpTicks int
	// DownTicks is how many consecutive relaxed ticks trigger one
	// recovery step; zero means 24. Recovery is deliberately slower
	// than escalation so a marginal link does not oscillate.
	DownTicks int
	// FloorBps bounds the assumed drain rate from below when the
	// estimator has no usable sample; zero means 64 KiB/s.
	FloorBps float64
	// MaxRung caps how far the ladder may climb; zero means RungResync.
	MaxRung int
	// RTTInflate escalates when the smoothed RTT exceeds this multiple
	// of the minimum RTT *and* RTTFloorUS — the bufferbloat signal;
	// zero means 10x.
	RTTInflate float64
	// RTTFloorUS is the absolute smoothed-RTT floor (microseconds)
	// below which RTT inflation is never called pressure; zero means
	// 50ms. Loopback and LAN jitter stays far under it.
	RTTFloorUS float64
	// HoldTicks is the settling time: after any rung change the
	// controller holds position this many ticks before judging again,
	// so the change's own side effects — the resync snapshot, the
	// repair refresh — drain instead of being mistaken for fresh
	// pressure and re-escalated. Zero means 16; negative disables.
	HoldTicks int
}

func (c Config) withDefaults() Config {
	if c.UpSec <= 0 {
		c.UpSec = 0.5
	}
	if c.DownSec <= 0 {
		c.DownSec = 0.1
	}
	if c.UpTicks <= 0 {
		c.UpTicks = 4
	}
	if c.DownTicks <= 0 {
		c.DownTicks = 24
	}
	if c.FloorBps <= 0 {
		c.FloorBps = 64 << 10
	}
	if c.MaxRung <= 0 || c.MaxRung >= NumRungs {
		c.MaxRung = RungResync
	}
	if c.RTTInflate <= 0 {
		c.RTTInflate = 10
	}
	if c.RTTFloorUS <= 0 {
		c.RTTFloorUS = 50_000
	}
	if c.HoldTicks == 0 {
		c.HoldTicks = 16
	}
	if c.HoldTicks < 0 {
		c.HoldTicks = 0
	}
	return c
}

// Direction of a rung change.
type Direction int

// Rung change directions.
const (
	// Steady: no change this tick.
	Steady Direction = iota
	// Up: degraded one rung.
	Up
	// Down: recovered one rung.
	Down
)

// Controller walks the ladder from estimator state. Like the estimator
// it is owned by one connection's flush loop and does no locking.
type Controller struct {
	cfg Config
	est *Estimator

	rung       int
	upStreak   int
	downStreak int
	hold       int // settling ticks left after the last rung change

	// Burst settling: a rung change can queue its own byte burst (the
	// resync snapshot, the repair refresh). While that burst drains,
	// its bytes must not read as fresh pressure or the ladder limit-
	// cycles: descend, queue repair, repair re-pressures, re-ascend.
	settling bool
	baseline int // burst peak, captured on the first settled tick (-1 = pending)
	prev     int // previous tick's backlog while settling
}

// NewController builds a controller over est.
func NewController(est *Estimator, cfg Config) *Controller {
	return &Controller{cfg: cfg.withDefaults(), est: est}
}

// Rung returns the active ladder rung.
func (c *Controller) Rung() int { return c.rung }

// ForceRung sets the rung directly — the admin pin, and how a
// reattached session's controller resumes at the rung its client was
// left at instead of silently diverging from the payload degradation
// still applied to it. The controller re-enters settling so the
// attach snapshot or repair burst drains before it judges again.
func (c *Controller) ForceRung(rung int) {
	if rung < RungLossless {
		rung = RungLossless
	}
	if rung > c.cfg.MaxRung {
		rung = c.cfg.MaxRung
	}
	c.rung = rung
	c.upStreak, c.downStreak = 0, 0
	c.hold = c.cfg.HoldTicks
	c.settling, c.baseline = true, -1
}

// Tick evaluates one flush period: backlog is the client's queued wire
// bytes after this period's flush. It returns the (possibly new) rung
// and the direction of any change; at most one rung moves per tick.
func (c *Controller) Tick(backlog int) (rung int, dir Direction) {
	if c.hold > 0 {
		// Settling: the last change's consequences are still draining.
		c.hold--
		c.upStreak, c.downStreak = 0, 0
		return c.rung, Steady
	}
	bps := c.est.Bps()
	if bps < c.cfg.FloorBps {
		bps = c.cfg.FloorBps
	}
	drainSec := float64(backlog) / bps

	if c.settling {
		switch {
		case c.baseline < 0:
			// First look at the post-change backlog: this is the burst's
			// peak. If it is already drained, resume judging immediately.
			c.baseline, c.prev = backlog, backlog
			if drainSec >= c.cfg.DownSec && backlog > 0 {
				return c.rung, Steady
			}
			c.settling = false
		case backlog < c.prev && backlog <= c.baseline && drainSec >= c.cfg.DownSec:
			// Still a shrinking burst: let it drain without judgment.
			c.prev = backlog
			return c.rung, Steady
		default:
			// Drained below the recovery threshold, or growing again —
			// growth past the peak is real pressure, not our burst.
			c.settling = false
		}
	}

	pressured := drainSec > c.cfg.UpSec
	if !pressured && c.est.rttUS > c.cfg.RTTFloorUS &&
		c.est.minRTTUS > 0 && c.est.rttUS > c.cfg.RTTInflate*c.est.minRTTUS {
		pressured = true // bufferbloat: the path is queueing, not losing
	}

	switch {
	case pressured:
		c.downStreak = 0
		c.upStreak++
		if c.upStreak >= c.cfg.UpTicks && c.rung < c.cfg.MaxRung {
			c.upStreak = 0
			c.rung++
			c.hold = c.cfg.HoldTicks
			c.settling, c.baseline = true, -1
			return c.rung, Up
		}
	case drainSec < c.cfg.DownSec:
		c.upStreak = 0
		c.downStreak++
		if c.downStreak >= c.cfg.DownTicks && c.rung > RungLossless {
			c.downStreak = 0
			c.rung--
			c.hold = c.cfg.HoldTicks
			c.settling, c.baseline = true, -1
			return c.rung, Down
		}
	default:
		// The dead band between the thresholds: hold position.
		c.upStreak = 0
		c.downStreak = 0
	}
	return c.rung, Steady
}
