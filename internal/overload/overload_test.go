package overload

import (
	"testing"
	"time"
)

func TestEstimatorEWMAConverges(t *testing.T) {
	var e Estimator
	for i := 0; i < 50; i++ {
		e.ObserveFlush(100_000, 100*time.Millisecond) // 1 MB/s
	}
	if bps := e.Bps(); bps < 0.9e6 || bps > 1.1e6 {
		t.Fatalf("Bps = %.0f, want ~1e6", bps)
	}
}

func TestEstimatorIgnoresTinyBatches(t *testing.T) {
	var e Estimator
	e.ObserveFlush(100, time.Second)
	if e.Bps() != 0 {
		t.Fatalf("tiny batch produced a sample: %.0f", e.Bps())
	}
}

func TestEstimatorRTTTracksMin(t *testing.T) {
	var e Estimator
	e.ObserveRTT(500)
	e.ObserveRTT(200)
	e.ObserveRTT(900)
	if e.MinRTTMicros() != 200 {
		t.Fatalf("min RTT = %.0f, want 200", e.MinRTTMicros())
	}
	if e.RTTMicros() <= 0 {
		t.Fatal("no smoothed RTT")
	}
}

// feed establishes a known bandwidth estimate.
func feed(e *Estimator, bps int) {
	for i := 0; i < 30; i++ {
		e.ObserveFlush(bps/10, 100*time.Millisecond)
	}
}

func TestControllerClimbsUnderPressure(t *testing.T) {
	var e Estimator
	feed(&e, 1<<20) // 1 MiB/s
	c := NewController(&e, Config{UpTicks: 3, DownTicks: 5, HoldTicks: -1})

	backlog := 2 << 20 // two seconds of backlog: pressured
	for i := 0; i < 3*NumRungs; i++ {
		c.Tick(backlog)
	}
	if c.Rung() != RungResync {
		t.Fatalf("rung = %d after sustained pressure, want %d", c.Rung(), RungResync)
	}
}

func TestControllerOneRungPerTrigger(t *testing.T) {
	var e Estimator
	feed(&e, 1<<20)
	c := NewController(&e, Config{UpTicks: 3, DownTicks: 5, HoldTicks: -1})
	seen := 0
	for i := 0; i < 3; i++ {
		_, dir := c.Tick(4 << 20)
		if dir == Up {
			seen++
		}
	}
	if seen != 1 || c.Rung() != 1 {
		t.Fatalf("ups=%d rung=%d after exactly UpTicks pressured ticks, want 1/1", seen, c.Rung())
	}
}

func TestControllerRecoversRungByRung(t *testing.T) {
	var e Estimator
	feed(&e, 1<<20)
	c := NewController(&e, Config{UpTicks: 2, DownTicks: 3, HoldTicks: -1})
	for i := 0; i < 4*NumRungs; i++ {
		c.Tick(4 << 20)
	}
	if c.Rung() != RungResync {
		t.Fatalf("setup: rung = %d", c.Rung())
	}
	downs := 0
	for i := 0; i < 3*NumRungs; i++ {
		_, dir := c.Tick(0)
		if dir == Down {
			downs++
		}
	}
	if c.Rung() != RungLossless {
		t.Fatalf("rung = %d after sustained quiet, want 0", c.Rung())
	}
	if downs != RungResync {
		t.Fatalf("recovered in %d steps, want %d (one rung at a time)", downs, RungResync)
	}
}

func TestControllerDeadBandHolds(t *testing.T) {
	var e Estimator
	feed(&e, 1<<20)
	cfg := Config{UpSec: 1, DownSec: 0.1, UpTicks: 2, DownTicks: 2, HoldTicks: -1}
	c := NewController(&e, cfg)
	for i := 0; i < 4; i++ {
		c.Tick(4 << 20)
	}
	got := c.Rung()
	if got == 0 {
		t.Fatal("setup: controller never climbed")
	}
	// ~0.5s projected drain: between DownSec and UpSec — must hold.
	for i := 0; i < 50; i++ {
		if _, dir := c.Tick(512 << 10); dir != Steady {
			t.Fatalf("dead band moved the rung (dir=%d)", dir)
		}
	}
	if c.Rung() != got {
		t.Fatalf("rung drifted in dead band: %d -> %d", got, c.Rung())
	}
}

func TestControllerSettlingHold(t *testing.T) {
	var e Estimator
	feed(&e, 1<<20)
	c := NewController(&e, Config{UpTicks: 1, DownTicks: 1, HoldTicks: 3})
	if _, dir := c.Tick(4 << 20); dir != Up {
		t.Fatalf("first pressured tick did not escalate (rung=%d)", c.Rung())
	}
	// Three held ticks, then one settled look at the unchanged backlog.
	for i := 0; i < 4; i++ {
		if _, dir := c.Tick(4 << 20); dir != Steady {
			t.Fatalf("tick %d inside the hold moved the rung (dir=%d)", i, dir)
		}
	}
	// The backlog is not shrinking, so it is not our burst: escalate.
	if _, dir := c.Tick(4 << 20); dir != Up {
		t.Fatalf("pressure after the hold expired did not escalate (rung=%d)", c.Rung())
	}
	if c.Rung() != 2 {
		t.Fatalf("rung = %d, want 2", c.Rung())
	}
}

// TestControllerSettlingIgnoresDrainingBurst is the limit-cycle guard:
// the repair refresh queued by a recovery step briefly re-inflates the
// backlog, and the controller must watch that burst drain rather than
// read it as fresh pressure and climb right back up.
func TestControllerSettlingIgnoresDrainingBurst(t *testing.T) {
	var e Estimator
	feed(&e, 1<<20) // 1 MiB/s; defaults UpSec 0.5 / DownSec 0.1
	c := NewController(&e, Config{UpTicks: 2, DownTicks: 2, HoldTicks: -1})
	for c.Rung() != RungDownscale {
		c.Tick(8 << 20)
	}
	for c.Rung() != RungCompress {
		c.Tick(0)
	}
	// The refresh burst: 600KB draining to nothing. Its first ticks
	// project a 0.6s drain — over UpSec — yet must not escalate.
	for _, backlog := range []int{600_000, 450_000, 300_000, 150_000, 0, 0, 0} {
		if _, dir := c.Tick(backlog); dir == Up {
			t.Fatalf("draining burst at backlog=%d re-escalated to rung %d", backlog, c.Rung())
		}
	}
	if c.Rung() != RungLossless {
		t.Fatalf("rung = %d after the burst drained, want lossless", c.Rung())
	}
}

func TestControllerRTTInflationEscalates(t *testing.T) {
	var e Estimator
	feed(&e, 1<<30) // drain time never pressures
	e.ObserveRTT(1000)
	for i := 0; i < 40; i++ {
		e.ObserveRTT(200_000) // 200ms against a 1ms floor
	}
	c := NewController(&e, Config{UpTicks: 2, HoldTicks: -1})
	c.Tick(0)
	_, dir := c.Tick(0)
	if dir != Up {
		t.Fatalf("bufferbloat RTT did not escalate (rung=%d)", c.Rung())
	}
}

func TestControllerMaxRungCap(t *testing.T) {
	var e Estimator
	feed(&e, 1<<20)
	c := NewController(&e, Config{UpTicks: 1, MaxRung: RungDownscale, HoldTicks: -1})
	for i := 0; i < 20; i++ {
		c.Tick(32 << 20)
	}
	if c.Rung() != RungDownscale {
		t.Fatalf("rung = %d, want capped at %d", c.Rung(), RungDownscale)
	}
}
