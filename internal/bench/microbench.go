package bench

import (
	"fmt"
	"math/rand"

	"thinc/internal/baseline"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/sim"
	"thinc/internal/xserver"
)

// Interactive microbenchmarks for the operations §3 singles out COPY
// for: document scrolling and opaque window movement. Command-based
// systems ship a 17-byte COPY plus the newly exposed strip; scrapers
// re-encode everything that moved.

// MicroResult measures one interactive operation sequence.
type MicroResult struct {
	System      string
	ScrollBytes int64 // per scroll step
	DragBytes   int64 // per window drag step
}

// RunScrollDrag measures scroll and drag cost per step over the LAN
// configuration.
func RunScrollDrag(sys baseline.System) MicroResult {
	res := MicroResult{System: sys.Name()}
	res.ScrollBytes = runScroll(sys)
	res.DragBytes = runDrag(sys)
	return res
}

// newMicroSession builds a session+display pair for a microbenchmark.
func newMicroSession(sys baseline.System) (baseline.Session, *xserver.Display, *sim.Engine) {
	eng := sim.NewEngine()
	cfg := baseline.SessionConfig{Eng: eng, Link: LANDesktop().Link, W: ScreenW, H: ScreenH,
		ViewW: ScreenW, ViewH: ScreenH}
	sess := sys.NewSession(cfg)
	dpy := xserver.NewDisplay(ScreenW, ScreenH, sess.Driver())
	sess.BindDisplay(dpy)
	sess.Start()
	eng.Run()
	return sess, dpy, eng
}

// runScroll renders a text document, then scrolls it by one line 20
// times, drawing the newly exposed line each step.
func runScroll(sys baseline.System) int64 {
	sess, dpy, eng := newMicroSession(sys)
	win := dpy.CreateWindow(geom.XYWH(0, 0, ScreenW, ScreenH))
	rnd := rand.New(rand.NewSource(11))

	// Fill the "document".
	dpy.FillRect(win, &xserver.GC{Fg: pixel.RGB(250, 250, 250)}, win.Bounds())
	for y := 8; y < ScreenH-16; y += xserver.GlyphH + 4 {
		dpy.DrawText(win, &xserver.GC{Fg: pixel.RGB(20, 20, 20)}, 10, y,
			fmt.Sprintf("line %d with some document text %d", y, rnd.Intn(1000)))
	}
	sess.Damage()
	eng.Run()
	base := sess.Stats().BytesToClient

	const steps = 20
	line := xserver.GlyphH + 4
	for i := 0; i < steps; i++ {
		dpy.CopyArea(win, win, geom.XYWH(0, line, ScreenW, ScreenH-line), geom.Point{})
		dpy.FillRect(win, &xserver.GC{Fg: pixel.RGB(250, 250, 250)},
			geom.XYWH(0, ScreenH-line, ScreenW, line))
		dpy.DrawText(win, &xserver.GC{Fg: pixel.RGB(20, 20, 20)}, 10, ScreenH-line+2,
			fmt.Sprintf("new line %d arriving %d", i, rnd.Intn(1000)))
		sess.Damage()
		eng.Run()
	}
	return (sess.Stats().BytesToClient - base) / steps
}

// runDrag draws a window of content and drags it across the desktop in
// 20 steps.
func runDrag(sys baseline.System) int64 {
	sess, dpy, eng := newMicroSession(sys)
	desktop := pixel.RGB(40, 44, 52)
	root := dpy.CreateWindow(geom.XYWH(0, 0, ScreenW, ScreenH))
	dpy.FillRect(root, &xserver.GC{Fg: desktop}, root.Bounds())

	win := dpy.CreateWindow(geom.XYWH(40, 40, 400, 300))
	dpy.FillRect(win, &xserver.GC{Fg: pixel.RGB(245, 245, 245)}, win.Bounds())
	dpy.DrawText(win, &xserver.GC{Fg: pixel.RGB(0, 0, 0)}, 10, 10, "draggable window")
	sess.Damage()
	eng.Run()
	base := sess.Stats().BytesToClient

	const steps = 20
	for i := 0; i < steps; i++ {
		dpy.MoveWindow(win, geom.Point{X: 40 + (i+1)*16, Y: 40 + (i+1)*8}, desktop)
		sess.Damage()
		eng.Run()
	}
	return (sess.Stats().BytesToClient - base) / steps
}

// Microbench regenerates the scroll/drag comparison table.
func (s *Suite) Microbench() *Table {
	t := &Table{
		ID:     "Microbench",
		Title:  "Interactive operations: bytes per step (LAN)",
		Header: []string{"platform", "scroll B/step", "drag B/step"},
		Notes: []string{
			"§3: COPY accelerates scrolling and opaque window movement without resending screen data",
		},
	}
	for _, name := range []string{"THINC", "SunRay", "VNC", "NX"} {
		r := RunScrollDrag(SystemByName(name))
		t.Rows = append(t.Rows, []string{r.System,
			fmt.Sprintf("%d", r.ScrollBytes), fmt.Sprintf("%d", r.DragBytes)})
	}
	return t
}
