package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"time"

	"thinc/internal/auth"
	"thinc/internal/client"
	"thinc/internal/geom"
	"thinc/internal/overload"
	"thinc/internal/pixel"
	"thinc/internal/server"
	"thinc/internal/sim"
	"thinc/internal/simnet"
	"thinc/internal/telemetry"
	"thinc/internal/xserver"
)

// End-to-end latency bench (wire v5): drives live server+client
// sessions over loopback and over simnet-shaped links, lets the mark
// loop measure client-perceived damage-to-glass latency, and snapshots
// per-stage and per-rung percentiles — the numbers BENCH_pr7.json
// records. Unlike the figure benchmarks (simulated testbeds on virtual
// time), every run here is a real TCP session on the wall clock.

// E2EOptions configures a bench sweep.
type E2EOptions struct {
	// Duration each (workload, link, rung) run drives damage for.
	Duration time.Duration
	// Rungs pins each run's degradation rung (ladder disabled).
	Rungs []int
	// W, H is the session geometry.
	W, H int
}

func (o E2EOptions) withDefaults() E2EOptions {
	if o.Duration <= 0 {
		o.Duration = 2 * time.Second
	}
	if len(o.Rungs) == 0 {
		o.Rungs = []int{0, 2}
	}
	if o.W <= 0 || o.H <= 0 {
		o.W, o.H = 320, 240
	}
	return o
}

// E2EPercentiles summarizes one latency distribution in microseconds.
type E2EPercentiles struct {
	Count int64 `json:"count"`
	P50   int64 `json:"p50_us"`
	P95   int64 `json:"p95_us"`
	P99   int64 `json:"p99_us"`
	Avg   int64 `json:"avg_us"`
}

// E2ERun is one (workload, link, rung) cell of the sweep.
type E2ERun struct {
	Workload string `json:"workload"`
	Link     string `json:"link"`
	Rung     int    `json:"rung"`
	RungName string `json:"rung_name"`

	Marks    int `json:"marks"`
	Acks     int `json:"acks"`
	Timeouts int `json:"timeouts"`

	E2E    E2EPercentiles            `json:"e2e"`
	Stages map[string]E2EPercentiles `json:"stages"`
}

// E2EReport is the BENCH_pr7.json payload.
type E2EReport struct {
	Schema   string   `json:"schema"`
	Duration string   `json:"duration_per_run"`
	Runs     []E2ERun `json:"runs"`
}

// Write serializes the report as indented JSON.
func (r *E2EReport) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Check validates the acceptance shape: at least two rungs over both a
// loopback and a shaped link, and non-zero samples in every stage of
// every run. The CI smoke target calls it after a short sweep.
func (r *E2EReport) Check() error {
	if len(r.Runs) == 0 {
		return fmt.Errorf("e2e report has no runs")
	}
	links := map[string]bool{}
	rungs := map[int]bool{}
	for _, run := range r.Runs {
		links[run.Link] = true
		rungs[run.Rung] = true
		if run.Acks == 0 {
			return fmt.Errorf("%s/%s rung %d: no acked marks", run.Workload, run.Link, run.Rung)
		}
		if run.E2E.Count == 0 {
			return fmt.Errorf("%s/%s rung %d: empty e2e histogram", run.Workload, run.Link, run.Rung)
		}
		for _, stage := range []string{"queue", "write", "wire", "apply"} {
			if run.Stages[stage].Count == 0 {
				return fmt.Errorf("%s/%s rung %d: stage %q has no samples",
					run.Workload, run.Link, run.Rung, stage)
			}
		}
	}
	if !links["loopback"] {
		return fmt.Errorf("no loopback runs in report")
	}
	if len(links) < 2 {
		return fmt.Errorf("no shaped-link runs in report")
	}
	if len(rungs) < 2 {
		return fmt.Errorf("report covers %d rung(s), want >= 2", len(rungs))
	}
	return nil
}

// e2eWorkload drives deterministic damage against a live display until
// the deadline. Each returns roughly workload-shaped traffic: "desktop"
// is fills, text and copies (the §8 web mix); "media" is full-region
// PutImage frames (the §8 video mix).
type e2eWorkload struct {
	name string
	run  func(host *server.Host, w, h int, deadline time.Time)
}

func e2eWorkloads() []e2eWorkload {
	return []e2eWorkload{
		{name: "desktop", run: func(host *server.Host, w, h int, deadline time.Time) {
			tick := 0
			for time.Now().Before(deadline) {
				tick++
				host.Do(func(d *xserver.Display) {
					win := d.CreateWindow(geom.XYWH(0, 0, w, h))
					d.FillRect(win, &xserver.GC{Fg: pixel.RGB(24, 26, 32)}, win.Bounds())
					d.FillRect(win, &xserver.GC{Fg: pixel.RGB(uint8(tick*13), 80, 40)},
						geom.XYWH((tick*7)%(w/2), (tick*5)%(h/2), w/4, h/4))
					d.DrawText(win, &xserver.GC{Fg: pixel.RGB(240, 240, 240)}, 8, 8,
						fmt.Sprintf("page %d", tick))
					pm := d.CreatePixmap(w/2, 16)
					d.FillRect(pm, &xserver.GC{Fg: pixel.RGB(40, 44, 52)}, pm.Bounds())
					d.DrawText(pm, &xserver.GC{Fg: pixel.RGB(120, 220, 120)}, 4, 4,
						fmt.Sprintf("tick %d", tick))
					d.CopyArea(win, pm, pm.Bounds(), geom.Point{X: 0, Y: h - 16})
					d.FreePixmap(pm)
				})
				time.Sleep(5 * time.Millisecond)
			}
		}},
		{name: "media", run: func(host *server.Host, w, h int, deadline time.Time) {
			fw, fh := w/2, h/2
			frame := make([]pixel.ARGB, fw*fh)
			tick := 0
			for time.Now().Before(deadline) {
				tick++
				for i := range frame {
					frame[i] = pixel.RGB(uint8(i+tick*3), uint8(i>>4), uint8(tick*7))
				}
				host.Do(func(d *xserver.Display) {
					win := d.CreateWindow(geom.XYWH(0, 0, w, h))
					d.PutImage(win, geom.XYWH(w/4, h/4, fw, fh), frame, fw)
				})
				time.Sleep(10 * time.Millisecond)
			}
		}},
	}
}

// e2eLinks names the network paths of the sweep: a direct loopback dial
// and simnet-shaped proxies for the paper's WAN and wireless profiles.
type e2eLink struct {
	name   string
	params *simnet.LinkParams // nil = direct loopback
}

func e2eLinks() []e2eLink {
	wan := simnet.LinkParams{Name: "WAN", Bandwidth: 100e6,
		RTT: 20 * sim.Millisecond, Window: 1 << 20}
	return []e2eLink{
		{name: "loopback"},
		{name: "wan20ms", params: &wan},
	}
}

// RunE2E sweeps workloads x links x rungs and collects the report.
func RunE2E(opts E2EOptions, progress func(string)) (*E2EReport, error) {
	opts = opts.withDefaults()
	report := &E2EReport{
		Schema:   "thinc-e2e-bench/v1",
		Duration: opts.Duration.String(),
	}
	for _, wl := range e2eWorkloads() {
		for _, link := range e2eLinks() {
			for _, rung := range opts.Rungs {
				if progress != nil {
					progress(fmt.Sprintf("e2e: %s over %s at rung %s",
						wl.name, link.name, overload.RungName(rung)))
				}
				run, err := runE2ECell(opts, wl, link, rung)
				if err != nil {
					return nil, fmt.Errorf("%s/%s rung %d: %w", wl.name, link.name, rung, err)
				}
				report.Runs = append(report.Runs, run)
			}
		}
	}
	return report, nil
}

// runE2ECell runs one live session cell and extracts its histograms.
func runE2ECell(opts E2EOptions, wl e2eWorkload, link e2eLink, rung int) (E2ERun, error) {
	run := E2ERun{Workload: wl.name, Link: link.name,
		Rung: rung, RungName: overload.RungName(rung)}

	accounts := auth.NewAccounts()
	accounts.Add("bench", "pw")
	host := server.NewHost(opts.W, opts.H, auth.NewAuthenticator("bench", accounts),
		server.Options{
			FlushInterval:   time.Millisecond,
			MarkInterval:    2 * time.Millisecond,
			DisableAudit:    true,
			DisableOverload: true, // hard-pin the rung below
		})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return run, err
	}
	defer l.Close()
	go host.Serve(l)
	host.ForceRung(rung)

	addr := l.Addr().String()
	if link.params != nil {
		shaped, stop, err := simnet.StartProxy(addr, *link.params)
		if err != nil {
			return run, err
		}
		defer stop()
		addr = shaped
	}
	conn, err := client.Dial(addr, "bench", "pw", opts.W, opts.H)
	if err != nil {
		return run, err
	}
	defer conn.Close()
	go conn.Run()
	// The attach raced ForceRung for connections already dialing; pin
	// again now that the client is live so the cell's rung is certain.
	host.ForceRung(rung)

	wl.run(host, opts.W, opts.H, time.Now().Add(opts.Duration))
	// Let in-flight marks drain before reading the histograms: the last
	// flush's ack needs a round trip (shaped links pay the full RTT).
	settle := 250 * time.Millisecond
	if link.params != nil {
		settle += time.Duration(link.params.RTT) * time.Microsecond
	}
	time.Sleep(settle)

	reg := host.Telemetry()
	run.Marks = int(reg.Value("thinc_e2e_marks_total"))
	run.Acks = int(reg.Value("thinc_e2e_acks_total"))
	run.Timeouts = int(reg.Value("thinc_e2e_timeouts_total"))
	run.E2E = percentilesOf(histSnap(reg, "thinc_e2e_latency_us",
		telemetry.L("rung", overload.RungName(rung))), 1)
	run.Stages = map[string]E2EPercentiles{}
	for _, stage := range []string{"queue", "write", "wire", "apply"} {
		run.Stages[stage] = percentilesOf(histSnap(reg, "thinc_e2e_stage_ns",
			telemetry.L("stage", stage)), 1000) // ns -> us
	}
	return run, nil
}

// histSnap finds one histogram series snapshot by name and labels.
func histSnap(reg *telemetry.Registry, name string, labels ...telemetry.Label) telemetry.HistogramSnapshot {
	want := map[string]string{}
	for _, l := range labels {
		want[l.Key] = l.Value
	}
	for _, s := range reg.Snapshot() {
		if s.Name != name || s.Histogram == nil {
			continue
		}
		match := true
		for k, v := range want {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return *s.Histogram
		}
	}
	return telemetry.HistogramSnapshot{}
}

// percentilesOf derives p50/p95/p99 from histogram buckets by linear
// interpolation inside the containing bucket, divided by div (1 for
// microsecond histograms, 1000 to fold ns buckets to us).
func percentilesOf(s telemetry.HistogramSnapshot, div int64) E2EPercentiles {
	p := E2EPercentiles{Count: s.Count}
	if s.Count == 0 {
		return p
	}
	p.Avg = s.Sum / s.Count / div
	p.P50 = quantile(s, 0.50) / div
	p.P95 = quantile(s, 0.95) / div
	p.P99 = quantile(s, 0.99) / div
	return p
}

// quantile locates the q-th quantile in the snapshot's native unit. The
// overflow bucket reports its lower bound (the histogram cannot resolve
// beyond its last edge).
func quantile(s telemetry.HistogramSnapshot, q float64) int64 {
	target := int64(q * float64(s.Count))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, c := range s.Buckets {
		if seen+c < target {
			seen += c
			continue
		}
		if i >= len(s.Bounds) { // +Inf bucket
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := int64(0)
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		// Position of the target inside this bucket's count.
		frac := float64(target-seen) / float64(c)
		return lo + int64(frac*float64(hi-lo))
	}
	return s.Bounds[len(s.Bounds)-1]
}
