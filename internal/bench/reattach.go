package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"thinc/internal/auth"
	"thinc/internal/client"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/server"
	"thinc/internal/simnet"
	"thinc/internal/xserver"
)

// Bytes-on-wire bench for the wire-v7 warm reattach: the same static
// repeat-heavy screen is resumed over and over, once with the payload
// store surviving the disconnect (warm) and once with the client
// dropping it before every redial (cold). A cold resume re-ships the
// screen; a warm resume — after one priming cycle has seeded the
// store with the screen's tiles — replays them as ~21-byte CACHE_PAINT
// references. The report records what the client received per resync
// and how long each resume took to converge back to the server screen,
// the metric a user behind a flaky link actually feels.

// ReattachOptions configures a reattach bench sweep.
type ReattachOptions struct {
	// Cycles is how many measured kill/resume rounds each cell runs
	// (default 12). Two unmeasured priming cycles precede them, seeding
	// the store with both sentinel variants so the measured warm
	// resumes run against a fully populated cache.
	Cycles int
	// W, H is the session geometry.
	W, H int
}

func (o ReattachOptions) withDefaults() ReattachOptions {
	if o.Cycles <= 0 {
		o.Cycles = 12
	}
	if o.W <= 0 || o.H <= 0 {
		o.W, o.H = 256, 192
	}
	return o
}

// ReattachCell is one (link, mode) measurement.
type ReattachCell struct {
	Link   string `json:"link"`
	Mode   string `json:"mode"` // "warm" | "cold"
	Cycles int    `json:"cycles"`

	// ResyncBytes is what the client received across all measured
	// resumes, summed over every message type it applied (the handshake
	// itself is outside the counters on both sides, so the cells
	// compare pure resync traffic).
	ResyncBytes    int64 `json:"resync_bytes"`
	BytesPerResync int64 `json:"bytes_per_resync"`

	WarmResumes int   `json:"warm_resumes"`
	ColdResumes int   `json:"cold_resumes"`
	CachePaints int64 `json:"cache_paints"`
	SavedBytes  int64 `json:"saved_bytes"`

	// Converge is the redial-to-converged latency distribution across
	// the measured cycles, in microseconds.
	Converge E2EPercentiles `json:"converge"`
}

// ReattachReport is the BENCH_pr9.json payload.
type ReattachReport struct {
	Schema string         `json:"schema"`
	Cycles int            `json:"cycles"`
	Runs   []ReattachCell `json:"runs"`
	// WarmColdMilli is warm/cold resync bytes per link, x1000 — the
	// fraction of a cold resync a warm resume still ships.
	WarmColdMilli map[string]int64 `json:"warm_cold_bytes_milli"`
}

// Write serializes the report as indented JSON.
func (r *ReattachReport) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Check validates the acceptance shape: on every link a warm resume
// must re-ship less than 5% of the cold resync's bytes, every warm
// cycle must actually have resumed warm (and cold cycles cold), the
// warm cells must show cache replays, and every cell must carry a full
// convergence-latency distribution.
func (r *ReattachReport) Check() error {
	if len(r.Runs) == 0 {
		return fmt.Errorf("reattach report has no runs")
	}
	byLink := map[string]map[string]ReattachCell{}
	for _, c := range r.Runs {
		if byLink[c.Link] == nil {
			byLink[c.Link] = map[string]ReattachCell{}
		}
		byLink[c.Link][c.Mode] = c
		if c.Converge.Count != int64(c.Cycles) || c.Converge.P99 <= 0 {
			return fmt.Errorf("%s/%s: convergence latency incomplete (count=%d p99=%d)",
				c.Link, c.Mode, c.Converge.Count, c.Converge.P99)
		}
		switch c.Mode {
		case "warm":
			if c.WarmResumes != c.Cycles || c.ColdResumes != 0 {
				return fmt.Errorf("%s: %d/%d warm resumes (%d cold)",
					c.Link, c.WarmResumes, c.Cycles, c.ColdResumes)
			}
			if c.CachePaints == 0 || c.SavedBytes <= 0 {
				return fmt.Errorf("%s: warm resumes never rode the cache (paints=%d saved=%d)",
					c.Link, c.CachePaints, c.SavedBytes)
			}
		case "cold":
			if c.WarmResumes != 0 {
				return fmt.Errorf("%s: cold cell resumed warm %d times", c.Link, c.WarmResumes)
			}
		}
	}
	if len(byLink) < 2 {
		return fmt.Errorf("report covers %d link(s), want loopback and a shaped link", len(byLink))
	}
	for link, modes := range byLink {
		warm, ok1 := modes["warm"]
		cold, ok2 := modes["cold"]
		if !ok1 || !ok2 {
			return fmt.Errorf("%s: missing a mode (have %d)", link, len(modes))
		}
		if warm.ResyncBytes <= 0 || cold.ResyncBytes <= 0 {
			return fmt.Errorf("%s: empty resync window", link)
		}
		milli := warm.ResyncBytes * 1000 / cold.ResyncBytes
		if milli >= 50 {
			return fmt.Errorf("%s: warm resync ships %d.%01d%% of cold bytes, want < 5%% (warm=%d cold=%d)",
				link, milli/10, milli%10, warm.ResyncBytes, cold.ResyncBytes)
		}
	}
	return nil
}

// RunReattachBench sweeps links x {warm, cold} and collects the report.
func RunReattachBench(opts ReattachOptions, progress func(string)) (*ReattachReport, error) {
	opts = opts.withDefaults()
	report := &ReattachReport{
		Schema:        "thinc-reattach-bench/v1",
		Cycles:        opts.Cycles,
		WarmColdMilli: map[string]int64{},
	}
	for _, link := range e2eLinks() {
		var cells [2]ReattachCell
		for i, mode := range []string{"warm", "cold"} {
			if progress != nil {
				progress(fmt.Sprintf("reattach: %s %s (%d cycles)", mode, link.name, opts.Cycles))
			}
			cell, err := runReattachCell(opts, link, mode)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", link.name, mode, err)
			}
			cells[i] = cell
			report.Runs = append(report.Runs, cell)
		}
		if cells[1].ResyncBytes > 0 {
			report.WarmColdMilli[link.name] = cells[0].ResyncBytes * 1000 / cells[1].ResyncBytes
		}
	}
	return report, nil
}

// benchDialer dials addr and remembers the latest transport so the
// bench can cut it between cycles.
type benchDialer struct {
	mu   sync.Mutex
	addr string
	last net.Conn
}

func (d *benchDialer) dial() (net.Conn, error) {
	nc, err := net.Dial("tcp", d.addr)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.last = nc
	d.mu.Unlock()
	return nc, nil
}

func (d *benchDialer) kill() {
	d.mu.Lock()
	nc := d.last
	d.mu.Unlock()
	if nc != nil {
		nc.Close()
	}
}

// runReattachCell drives one session through a priming cycle plus the
// measured kill/resume rounds, reading the client byte counters around
// each resync.
func runReattachCell(opts ReattachOptions, link e2eLink, mode string) (ReattachCell, error) {
	cell := ReattachCell{Link: link.name, Mode: mode, Cycles: opts.Cycles}

	accounts := auth.NewAccounts()
	accounts.Add("bench", "pw")
	host := server.NewHost(opts.W, opts.H, auth.NewAuthenticator("bench", accounts), server.Options{
		CacheKB:           client.DefaultCacheRequestKB,
		FlushInterval:     time.Millisecond,
		FlushBudget:       1 << 22,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  20 * time.Second,
		DetachGrace:       20 * time.Second,
		DisableAudit:      true,
		DisableE2E:        true,
		DisableOverload:   true,
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return cell, err
	}
	defer l.Close()
	go host.Serve(l)

	addr := l.Addr().String()
	if link.params != nil {
		shaped, stop, err := simnet.StartProxy(addr, *link.params)
		if err != nil {
			return cell, err
		}
		defer stop()
		addr = shaped
	}
	td := &benchDialer{addr: addr}
	conn, err := client.DialWith(td.dial, "bench", "pw", opts.W, opts.H)
	if err != nil {
		return cell, err
	}
	defer conn.Close()
	runDone := make(chan error, 1)
	go func() { runDone <- conn.Run() }()

	// The static screen being resumed: the cache-bench pattern bank
	// tiled across the framebuffer — the repeat-heavy desktop a warm
	// resume should barely have to ship.
	bank := make([][]pixel.ARGB, cacheBenchBank)
	for i := range bank {
		bank[i] = cacheBenchPattern(i)
	}
	var win *xserver.Window
	host.Do(func(d *xserver.Display) {
		win = d.CreateWindow(geom.XYWH(0, 0, opts.W, opts.H))
		d.FillRect(win, &xserver.GC{Fg: pixel.RGB(24, 26, 32)}, win.Bounds())
		cacheBenchRound(d, win, bank, 0)
		cacheBenchRound(d, win, bank, 3)
	})
	waitState := func(what string, cond func() bool) error {
		deadline := time.Now().Add(15 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				return fmt.Errorf("timed out waiting for %s", what)
			}
			time.Sleep(time.Millisecond)
		}
		return nil
	}
	if err := waitState("initial convergence", func() bool {
		return conn.Snapshot().Checksum() == host.ScreenChecksum() && len(conn.Ticket()) > 0
	}); err != nil {
		return cell, err
	}

	// Each cycle kills the transport, draws the sentinel while the
	// session is detached (something changed while we were away — the
	// reason convergence is a real wait, not a no-op on a static
	// screen), resumes, and waits for the client to both converge on
	// the changed screen and drain the rest of the resync. The sentinel
	// alternates between two variants drawn at one fixed slot, so after
	// the two priming cycles have stored both affected tile states a
	// warm resync is pure CACHE_PAINT replay.
	var latencies []time.Duration
	cycle := func(n int, measured bool) error {
		td.kill()
		<-runDone
		if err := waitState("detach", func() bool { return host.NumDetached() >= 1 }); err != nil {
			return err
		}
		host.Do(func(d *xserver.Display) {
			d.PutImage(win, geom.XYWH(4, 4, cachePatternW, cachePatternH),
				bank[n%2], cachePatternW)
		})
		want := host.ScreenChecksum()
		if mode == "cold" {
			conn.DropCache()
		}
		base := clientBytesTotal(conn)
		start := time.Now()
		var rerr error
		for attempt := 0; attempt < 100; attempt++ {
			if rerr = conn.Redial(); rerr == nil {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if rerr != nil {
			return fmt.Errorf("redial: %w", rerr)
		}
		go func() { runDone <- conn.Run() }()
		if err := waitState("resync convergence", func() bool {
			return conn.Snapshot().Checksum() == want
		}); err != nil {
			return err
		}
		if measured {
			latencies = append(latencies, time.Since(start))
		}
		// Drain the tail of the resync: convergence completes at the
		// sentinel tile, but the rest of the grid may still be in
		// flight. Quiesce the byte counter before reading it.
		stable := clientBytesTotal(conn)
		for {
			time.Sleep(25 * time.Millisecond)
			now := clientBytesTotal(conn)
			if now == stable {
				break
			}
			stable = now
		}
		if measured {
			cell.ResyncBytes += stable - base
		}
		// The next cycle's reattach needs the fresh ticket.
		return waitState("ticket", func() bool { return len(conn.Ticket()) > 0 })
	}
	for n := 0; n < 2; n++ {
		if err := cycle(n, false); err != nil {
			return cell, fmt.Errorf("priming cycle %d: %w", n, err)
		}
	}
	primeWarm := conn.Stats().WarmResumes
	primePaints := conn.Stats().CachePainted
	primeSaved := conn.Stats().CacheSavedBytes
	for i := 0; i < opts.Cycles; i++ {
		if err := cycle(i, true); err != nil {
			return cell, fmt.Errorf("cycle %d: %w", i+1, err)
		}
	}

	st := conn.Stats()
	cell.WarmResumes = st.WarmResumes - primeWarm
	cell.ColdResumes = opts.Cycles - cell.WarmResumes
	cell.CachePaints = int64(st.CachePainted - primePaints)
	cell.SavedBytes = st.CacheSavedBytes - primeSaved
	cell.BytesPerResync = cell.ResyncBytes / int64(opts.Cycles)
	cell.Converge = durationPercentiles(latencies)

	conn.Close()
	<-runDone
	return cell, nil
}

// durationPercentiles summarizes a latency sample in microseconds.
func durationPercentiles(ds []time.Duration) E2EPercentiles {
	p := E2EPercentiles{Count: int64(len(ds))}
	if len(ds) == 0 {
		return p
	}
	us := make([]int64, len(ds))
	var sum int64
	for i, d := range ds {
		us[i] = d.Microseconds()
		sum += us[i]
	}
	sort.Slice(us, func(i, j int) bool { return us[i] < us[j] })
	at := func(q float64) int64 {
		i := int(q*float64(len(us)-1) + 0.5)
		return us[i]
	}
	p.Avg = sum / int64(len(us))
	p.P50 = at(0.50)
	p.P95 = at(0.95)
	p.P99 = at(0.99)
	return p
}
