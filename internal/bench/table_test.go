package bench

import (
	"strings"
	"testing"

	"thinc/internal/sim"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:     "Figure X",
		Title:  "demo",
		Header: []string{"platform", "value"},
		Rows: [][]string{
			{"THINC", "1"},
			{"a-very-long-name", "22222"},
		},
		Notes: []string{"a note"},
	}
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Figure X: demo") {
		t.Errorf("title line %q", lines[0])
	}
	// Columns align: 'value' column starts at the same offset everywhere.
	idx := strings.Index(lines[1], "value")
	for _, ln := range lines[3:5] {
		if len(ln) <= idx {
			t.Fatalf("row too short: %q", ln)
		}
	}
	if !strings.Contains(lines[5], "note: a note") {
		t.Errorf("note missing: %q", lines[5])
	}
}

func TestFormatHelpers(t *testing.T) {
	if got := ms(1500 * sim.Millisecond); got != "1500" {
		t.Errorf("ms = %q", got)
	}
	if got := kb(2048); got != "2" {
		t.Errorf("kb = %q", got)
	}
	if got := mb(3 << 20); got != "3.0" {
		t.Errorf("mb = %q", got)
	}
	if got := pct(0.1234); got != "12.3" {
		t.Errorf("pct = %q", got)
	}
}

func TestConfigsAndSystems(t *testing.T) {
	if LANDesktop().Name != "LAN Desktop" || WANDesktop().Link.RTT != 66*sim.Millisecond {
		t.Error("config constants wrong")
	}
	p := PDA()
	if p.ViewW != 320 || p.ViewH != 240 {
		t.Error("PDA viewport wrong")
	}
	if len(Systems()) != 9 {
		t.Errorf("%d systems, want 9 (incl. local)", len(Systems()))
	}
	if SystemByName("THINC") == nil || SystemByName("nope") != nil {
		t.Error("SystemByName wrong")
	}
	// GoToMyPC's PDA minimum is 640x480 (§8.1).
	g := PDAFor(SystemByName("GoToMyPC"))
	if g.ViewW != 640 || g.ViewH != 480 {
		t.Errorf("GTMP PDA viewport %dx%d", g.ViewW, g.ViewH)
	}
}
