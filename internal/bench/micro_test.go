package bench

import "testing"

func TestMicrobenchShape(t *testing.T) {
	thinc := RunScrollDrag(SystemByName("THINC"))
	vnc := RunScrollDrag(SystemByName("VNC"))
	t.Logf("THINC scroll=%d drag=%d; VNC scroll=%d drag=%d",
		thinc.ScrollBytes, thinc.DragBytes, vnc.ScrollBytes, vnc.DragBytes)
	// §3: COPY makes scroll and drag orders of magnitude cheaper than
	// re-scraping the moved pixels.
	if thinc.ScrollBytes*10 > vnc.ScrollBytes {
		t.Errorf("THINC scroll %d should be <10%% of VNC %d", thinc.ScrollBytes, vnc.ScrollBytes)
	}
	if thinc.DragBytes*10 > vnc.DragBytes {
		t.Errorf("THINC drag %d should be <10%% of VNC %d", thinc.DragBytes, vnc.DragBytes)
	}
}
