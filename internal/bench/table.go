package bench

import (
	"fmt"
	"strings"
)

// Table is a figure or table of §8 rendered as text.
type Table struct {
	ID     string // "Figure 2", "Ablation", ...
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", t.ID, t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func ms(t interface{ Millis() float64 }) string {
	return fmt.Sprintf("%.0f", t.Millis())
}

func kb(n int64) string { return fmt.Sprintf("%.0f", float64(n)/1024) }

func mb(n int64) string { return fmt.Sprintf("%.1f", float64(n)/(1<<20)) }

func pct(f float64) string { return fmt.Sprintf("%.1f", f*100) }
