package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"thinc/internal/telemetry"
)

func TestQuantileInterpolation(t *testing.T) {
	// Buckets: (0,10] has 10 obs, (10,100] has 10 obs.
	s := telemetry.HistogramSnapshot{
		Bounds:  []int64{10, 100, 1000},
		Buckets: []int64{10, 10, 0, 0},
		Count:   20,
		Sum:     600,
	}
	if got := quantile(s, 0.50); got != 10 {
		t.Errorf("p50 = %d, want 10 (end of first bucket)", got)
	}
	if got := quantile(s, 0.95); got < 80 || got > 100 {
		t.Errorf("p95 = %d, want ~91 inside (10,100]", got)
	}
	p := percentilesOf(s, 1)
	if p.Count != 20 || p.Avg != 30 {
		t.Errorf("count/avg = %d/%d, want 20/30", p.Count, p.Avg)
	}
}

func TestQuantileOverflowBucket(t *testing.T) {
	s := telemetry.HistogramSnapshot{
		Bounds:  []int64{10, 100},
		Buckets: []int64{0, 0, 5}, // everything beyond the last edge
		Count:   5,
		Sum:     5000,
	}
	if got := quantile(s, 0.99); got != 100 {
		t.Errorf("overflow p99 = %d, want last bound 100", got)
	}
}

func TestE2EReportCheck(t *testing.T) {
	ok := E2EPercentiles{Count: 10, P50: 1, P95: 2, P99: 3}
	stages := map[string]E2EPercentiles{
		"queue": ok, "write": ok, "wire": ok, "apply": ok,
	}
	good := &E2EReport{Runs: []E2ERun{
		{Workload: "desktop", Link: "loopback", Rung: 0, Acks: 5, E2E: ok, Stages: stages},
		{Workload: "desktop", Link: "wan20ms", Rung: 2, Acks: 5, E2E: ok, Stages: stages},
	}}
	if err := good.Check(); err != nil {
		t.Errorf("valid report rejected: %v", err)
	}

	if err := (&E2EReport{}).Check(); err == nil {
		t.Error("empty report accepted")
	}
	noShaped := &E2EReport{Runs: []E2ERun{
		{Link: "loopback", Rung: 0, Acks: 5, E2E: ok, Stages: stages},
		{Link: "loopback", Rung: 2, Acks: 5, E2E: ok, Stages: stages},
	}}
	if err := noShaped.Check(); err == nil {
		t.Error("report without a shaped link accepted")
	}
	oneRung := &E2EReport{Runs: []E2ERun{
		{Link: "loopback", Rung: 0, Acks: 5, E2E: ok, Stages: stages},
		{Link: "wan20ms", Rung: 0, Acks: 5, E2E: ok, Stages: stages},
	}}
	if err := oneRung.Check(); err == nil {
		t.Error("single-rung report accepted")
	}
	deadStage := map[string]E2EPercentiles{
		"queue": ok, "write": ok, "wire": ok, "apply": {},
	}
	noApply := &E2EReport{Runs: []E2ERun{
		{Link: "loopback", Rung: 0, Acks: 5, E2E: ok, Stages: deadStage},
		{Link: "wan20ms", Rung: 2, Acks: 5, E2E: ok, Stages: stages},
	}}
	if err := noApply.Check(); err == nil {
		t.Error("report with an empty stage accepted")
	}
}

func TestE2EReportRoundTrips(t *testing.T) {
	r := &E2EReport{Schema: "thinc-e2e-bench/v1", Duration: "2s",
		Runs: []E2ERun{{Workload: "desktop", Link: "loopback", RungName: "lossless",
			Marks: 3, Acks: 3,
			E2E:    E2EPercentiles{Count: 3, P50: 900, P95: 1800, P99: 2000, Avg: 1000},
			Stages: map[string]E2EPercentiles{"queue": {Count: 3}},
		}}}
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var back E2EReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Runs[0].E2E.P99 != 2000 || back.Runs[0].Stages["queue"].Count != 3 {
		t.Errorf("round trip lost data: %+v", back)
	}
}
