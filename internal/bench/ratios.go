package bench

import (
	"bytes"
	"compress/zlib"

	"thinc/internal/pixel"
	"thinc/internal/resample"
	"thinc/internal/workload"
)

// measureFrameRatios upscales one decoded clip frame to full screen
// (smooth interpolation, as players scale) and measures how well zlib
// compresses it at 24-bit and 8-bit depth — the per-frame wire cost
// model for software video playback.
func measureFrameRatios(clip *workload.VideoClip) (r24, r8 float64) {
	src := clip.FrameRGB(0)
	rgb := resample.Fant(src, clip.W, clip.W, clip.H, ScreenW, ScreenH)
	const sample = 256 << 10
	buf24 := make([]byte, 0, sample)
	buf8 := make([]byte, 0, sample/4)
	for _, p := range rgb {
		if len(buf24) >= sample {
			break
		}
		buf24 = append(buf24, byte(p>>24), byte(p>>16), byte(p>>8), byte(p))
		buf8 = append(buf8, pixel.To8Bit(p))
	}
	return zratio(buf24), zratio(buf8)
}

func zratio(data []byte) float64 {
	var out bytes.Buffer
	zw, err := zlib.NewWriterLevel(&out, zlib.BestSpeed)
	if err != nil {
		return 1
	}
	if _, err := zw.Write(data); err != nil {
		return 1
	}
	zw.Close()
	r := float64(out.Len()) / float64(len(data))
	if r > 1 {
		r = 1
	}
	return r
}
