package bench

import (
	"encoding/json"
	"io"

	"thinc/internal/baseline"
	"thinc/internal/compress"
	"thinc/internal/telemetry"
	"thinc/internal/wire"
)

// TelemetrySnapshot captures a session's wire-level and core telemetry
// after a benchmark run, serialized to BENCH_telemetry-style JSON.
type TelemetrySnapshot struct {
	// Delivered messages and bytes keyed by wire command type name
	// ("RAW", "COPY", "SFILL", "PFILL", "BITMAP", ...).
	MsgsByType  map[string]int64 `json:"msgs_by_type,omitempty"`
	BytesByType map[string]int64 `json:"bytes_by_type,omitempty"`
	// Every series in the session's core registry (translation counters,
	// scheduler queue/merge/evict/split activity, size histograms).
	Series []telemetry.SeriesSnapshot `json:"series,omitempty"`
}

// sessionTelemetry is implemented by sessions that expose per-type
// delivery accounting and a core metrics registry (the THINC push
// pipeline does; black-box baselines do not).
type sessionTelemetry interface {
	WireByType() (msgs, bytes map[string]int64)
	Telemetry() *telemetry.Registry
}

// snapshotTelemetry extracts a snapshot from a finished session, or nil
// when the system under test doesn't expose telemetry.
func snapshotTelemetry(sess baseline.Session) *TelemetrySnapshot {
	st, ok := sess.(sessionTelemetry)
	if !ok {
		return nil
	}
	msgs, bytes := st.WireByType()
	snap := &TelemetrySnapshot{MsgsByType: msgs, BytesByType: bytes}
	if reg := st.Telemetry(); reg != nil {
		snap.Series = reg.Snapshot()
	}
	return snap
}

// EncodePoolsSnapshot captures the process-wide encode fast-path
// counters after a benchmark run: wire encode-buffer pool hits and
// vectored-write activity, plus codec scratch pool reuse. Because the
// counters are process-wide atomics, the snapshot aggregates every run
// in the process — take it once, at the end.
type EncodePoolsSnapshot struct {
	Wire  wire.EncoderStats     `json:"wire"`
	Codec compress.ScratchStats `json:"codec"`
}

// SnapshotEncodePools reads the current encode fast-path counters.
func SnapshotEncodePools() *EncodePoolsSnapshot {
	return &EncodePoolsSnapshot{Wire: wire.Stats(), Codec: compress.PoolStats()}
}

// TelemetryReport is the top-level BENCH_telemetry JSON document: one
// entry per benchmark run that produced a snapshot, plus the
// process-wide encode pool counters accumulated across all of them.
type TelemetryReport struct {
	Runs        []TelemetryRun       `json:"runs"`
	EncodePools *EncodePoolsSnapshot `json:"encode_pools,omitempty"`
}

// TelemetryRun names one run's snapshot.
type TelemetryRun struct {
	System   string             `json:"system"`
	Config   string             `json:"config"`
	Workload string             `json:"workload"` // "web" or "av"
	Snapshot *TelemetrySnapshot `json:"snapshot"`
}

// Write serializes the report as indented JSON.
func (r *TelemetryReport) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
