package bench

import (
	"testing"

	"thinc/internal/baseline"
	"thinc/internal/core"
	"thinc/internal/sim"
)

// Shape tests: the paper's qualitative results (who wins, by roughly
// what factor, where the crossovers fall) must hold on shortened
// workloads. Absolute milliseconds are simulation-calibrated and
// recorded in EXPERIMENTS.md, not asserted here.

func quickSuite() *Suite { return NewSuite(9, 5) }

func TestWebTHINCFastestThinClient(t *testing.T) {
	s := quickSuite()
	for _, cfg := range []Config{LANDesktop(), WANDesktop()} {
		thinc := s.Web(baseline.THINC(), cfg)
		for _, sys := range Systems() {
			switch sys.Name() {
			case "THINC", "local":
				continue
			}
			other := s.Web(sys, cfg)
			// Compare including client processing: the paper's
			// conservative measure favors the systems it could not
			// instrument, and THINC still wins (§8.3).
			if other.AvgLatencyFull() < thinc.AvgLatencyFull() {
				t.Errorf("%s: %s (%v) beat THINC (%v) including client processing",
					cfg.Name, sys.Name(), other.AvgLatencyFull(), thinc.AvgLatencyFull())
			}
		}
	}
}

func TestWebTHINCBeatsLocalPC(t *testing.T) {
	// §8.3: THINC outperforms the local PC by leveraging the faster
	// server CPU ("by more than 60%").
	s := quickSuite()
	thinc := s.Web(baseline.THINC(), LANDesktop())
	local := s.Web(baseline.Local(), LANDesktop())
	if float64(local.AvgLatencyFull()) < 1.4*float64(thinc.AvgLatencyFull()) {
		t.Errorf("local PC (%v) should be well behind THINC (%v)",
			local.AvgLatencyFull(), thinc.AvgLatencyFull())
	}
}

func TestWebXDegradesMostLANToWAN(t *testing.T) {
	// §8.3: the high-level approach (X) experiences the largest
	// LAN-to-WAN slowdown (~2.5x or more); THINC degrades little.
	s := quickSuite()
	x := s.Web(baseline.X(), WANDesktop()).AvgLatencyFull().Seconds() /
		s.Web(baseline.X(), LANDesktop()).AvgLatencyFull().Seconds()
	thinc := s.Web(baseline.THINC(), WANDesktop()).AvgLatencyFull().Seconds() /
		s.Web(baseline.THINC(), LANDesktop()).AvgLatencyFull().Seconds()
	if x < 2 {
		t.Errorf("X LAN->WAN slowdown %.2fx, want >= 2x", x)
	}
	if thinc > 2 {
		t.Errorf("THINC LAN->WAN slowdown %.2fx, want < 2x", thinc)
	}
	if x < thinc {
		t.Error("X should degrade more than THINC")
	}
	// NX mitigates X's round-trip problem (§8.3).
	nx := s.Web(baseline.NX(), WANDesktop()).AvgLatencyFull()
	xw := s.Web(baseline.X(), WANDesktop()).AvgLatencyFull()
	if nx >= xw {
		t.Errorf("NX WAN (%v) should beat X WAN (%v)", nx, xw)
	}
}

func TestWebGoToMyPCSlowest(t *testing.T) {
	// §8.3: GoToMyPC takes by far the longest (seconds per page) while
	// sending the least data among thin clients.
	s := quickSuite()
	g := s.Web(baseline.GoToMyPC(), WANDesktop())
	if g.AvgLatencyNet() < sim.Second {
		t.Errorf("GoToMyPC WAN latency %v, want > 1s", g.AvgLatencyNet())
	}
	for _, sys := range Systems() {
		if sys.Name() == "GoToMyPC" || sys.Name() == "local" {
			continue
		}
		if s.Web(sys, WANDesktop()).AvgBytes() < g.AvgBytes() {
			t.Errorf("%s sent less data than GoToMyPC", sys.Name())
		}
	}
}

func TestWebDataShape(t *testing.T) {
	s := quickSuite()
	cfg := LANDesktop()
	local := s.Web(baseline.Local(), cfg).AvgBytes()
	thinc := s.Web(baseline.THINC(), cfg).AvgBytes()
	nx := s.Web(baseline.NX(), cfg).AvgBytes()
	vnc := s.Web(baseline.VNC(), cfg).AvgBytes()
	sunray := s.Web(baseline.SunRay(), cfg).AvgBytes()
	// §8.3 Figure 3: local PC least; NX beats THINC; THINC beats VNC
	// and Sun Ray.
	if local >= thinc {
		t.Error("local PC should transfer the least")
	}
	if nx >= thinc {
		t.Error("NX should transfer less than THINC (better compression)")
	}
	if thinc >= vnc {
		t.Errorf("THINC (%d) should transfer less than VNC (%d)", thinc, vnc)
	}
	if thinc >= sunray {
		t.Errorf("THINC (%d) should transfer less than Sun Ray (%d) — offscreen awareness", thinc, sunray)
	}
	// Sun Ray's adaptive WAN compression shrinks its data (§8.3).
	sunrayWAN := s.Web(baseline.SunRay(), WANDesktop()).AvgBytes()
	if sunrayWAN >= sunray {
		t.Error("Sun Ray WAN data should drop (adaptive compression)")
	}
}

func TestWebTHINCvsSunRayTranslation(t *testing.T) {
	// §8.3: both use similar low-level commands; THINC wins because of
	// its translation architecture (offscreen awareness).
	s := quickSuite()
	for _, cfg := range []Config{LANDesktop(), WANDesktop()} {
		thinc := s.Web(baseline.THINC(), cfg).AvgLatencyNet()
		sunray := s.Web(baseline.SunRay(), cfg).AvgLatencyNet()
		if sunray <= thinc {
			t.Errorf("%s: Sun Ray (%v) should be slower than THINC (%v)", cfg.Name, sunray, thinc)
		}
	}
}

func TestAVOnlyTHINCIsPerfect(t *testing.T) {
	// §8.3 Figure 5: THINC is the only thin client at 100% everywhere;
	// everything else is far below.
	s := quickSuite()
	for _, cfg := range []Config{LANDesktop(), WANDesktop()} {
		thinc := s.AV(baseline.THINC(), cfg)
		if thinc.Quality < 0.99 {
			t.Errorf("%s: THINC A/V quality %.1f%%, want 100%%", cfg.Name, thinc.Quality*100)
		}
		for _, sys := range Systems() {
			switch sys.Name() {
			case "THINC", "local":
				continue
			}
			q := s.AV(sys, cfg).Quality
			if q > 0.5 {
				t.Errorf("%s: %s quality %.1f%%, want well below THINC", cfg.Name, sys.Name(), q*100)
			}
		}
	}
	// PDA: THINC still 100% (§8.3).
	if q := s.AV(baseline.THINC(), PDA()).Quality; q < 0.99 {
		t.Errorf("THINC PDA quality %.1f%%", q*100)
	}
}

func TestAVBandwidthAnchors(t *testing.T) {
	// §8.3 Figure 6 anchors: local ~1.2 Mbps (MPEG stream), THINC
	// ~24 Mbps (YV12 at full rate), THINC PDA ~3.5 Mbps after server
	// resampling.
	s := quickSuite()
	local := s.AV(baseline.Local(), LANDesktop())
	if local.Mbps < 1.0 || local.Mbps > 1.5 {
		t.Errorf("local A/V bandwidth %.2f Mbps, want ~1.2", local.Mbps)
	}
	thinc := s.AV(baseline.THINC(), LANDesktop())
	if thinc.Mbps < 22 || thinc.Mbps > 29 {
		t.Errorf("THINC A/V bandwidth %.2f Mbps, want ~24-26", thinc.Mbps)
	}
	pda := s.AV(baseline.THINC(), PDA())
	if pda.Mbps < 2.5 || pda.Mbps > 5 {
		t.Errorf("THINC PDA A/V bandwidth %.2f Mbps, want ~3.5", pda.Mbps)
	}
}

func TestAVVNCClientPullHurtsWAN(t *testing.T) {
	// §8.3: VNC's client-pull model costs it dearly as RTT grows.
	s := quickSuite()
	lan := s.AV(baseline.VNC(), LANDesktop()).Quality
	wan := s.AV(baseline.VNC(), WANDesktop()).Quality
	if wan >= lan {
		t.Errorf("VNC WAN quality (%.1f%%) should drop below LAN (%.1f%%)", wan*100, lan*100)
	}
}

func TestFig7KoreaWindowStarved(t *testing.T) {
	// §8.3 Figure 7: perfect quality from every remote site except
	// Korea, whose 256KB window cannot sustain the video bitrate.
	s := quickSuite()
	thinc := baseline.THINC()
	for _, row := range s.Fig7().Rows {
		site, q := row[0], row[4]
		if site == "KR" {
			if q == "100.0" {
				t.Error("KR should be degraded (window-starved)")
			}
		} else if q != "100.0" {
			t.Errorf("site %s quality %s, want 100.0", site, q)
		}
	}
	_ = thinc
}

func TestFig4RemoteLatencyShape(t *testing.T) {
	// §8.3 Figure 4: sub-second everywhere (KR worst); latency grows
	// <2.5x LAN->Finland while RTT grows >100x.
	s := quickSuite()
	lan := s.Web(baseline.THINC(), LANDesktop()).AvgLatencyNet()
	var fi, kr sim.Time
	for _, row := range s.Fig4().Rows {
		w := s.webCached("THINC", row[0])
		switch row[0] {
		case "FI":
			fi = w.AvgLatencyNet()
		case "KR":
			kr = w.AvgLatencyNet()
		}
	}
	if fi == 0 || kr == 0 {
		t.Fatal("missing site results")
	}
	if float64(fi) > 2.5*float64(lan) {
		t.Errorf("FI latency %v vs LAN %v: growth over 2.5x", fi, lan)
	}
	if kr <= fi {
		t.Error("KR should be the slowest site")
	}
	if fi > sim.Second {
		t.Errorf("FI latency %v, want sub-second", fi)
	}
}

// webCached fetches a cached web result by system and config name.
func (s *Suite) webCached(sys, cfgName string) WebResult {
	for k, v := range s.web {
		if v.System == sys && v.Config == cfgName {
			_ = k
			return v
		}
	}
	return WebResult{}
}

func TestAblationShapes(t *testing.T) {
	s := quickSuite()

	// Offscreen awareness: without it, uncompressed traffic explodes
	// (the Sun Ray comparison isolates it with compression off).
	thincNoZip := s.Web(baseline.THINCWith("nozip", coreOptions(false, false)), LANDesktop())
	noOff := s.Web(baseline.THINCWith("nozip-nooff", coreOptions(true, false)), LANDesktop())
	if noOff.AvgBytes() < 3*thincNoZip.AvgBytes() {
		t.Errorf("offscreen awareness should cut uncompressed data >3x: %d vs %d",
			thincNoZip.AvgBytes(), noOff.AvgBytes())
	}

	// SRSF + realtime vs FIFO: interactive response under load.
	srsf := RunInteractive(baseline.THINC(), WANDesktop())
	fifo := RunInteractive(baseline.THINCWith("fifo", coreOptions(false, true)), WANDesktop())
	if srsf >= fifo {
		t.Errorf("SRSF response (%v) should beat FIFO (%v)", srsf, fifo)
	}

	// Push vs pull: WAN video collapses under client-pull.
	pull := s.AV(baseline.WithPull("pull"), WANDesktop()).Quality
	if pull > 0.5 {
		t.Errorf("client-pull WAN video quality %.1f%%, want collapsed", pull*100)
	}
}

func coreOptions(disableOffscreen, fifo bool) core.Options {
	return core.Options{DisableOffscreen: disableOffscreen, FIFODelivery: fifo}
}

func TestPDAResizeShape(t *testing.T) {
	// §8.3: server-side resize cuts bandwidth; client-side resize does
	// not, and costs client CPU (latency).
	s := quickSuite()
	server := s.Web(baseline.THINC(), PDA())
	cr := clientResizeTHINC()
	client := s.Web(cr, PDA())
	if server.AvgBytes() >= client.AvgBytes() {
		t.Errorf("server resize (%d B) should send less than client resize (%d B)",
			server.AvgBytes(), client.AvgBytes())
	}
	if server.AvgLatencyFull() > client.AvgLatencyFull() {
		t.Error("server resize should not be slower than client resize")
	}
}

func TestTHINCAVSyncBounded(t *testing.T) {
	// §4.2: server-side timestamping keeps audio and video delivered
	// with the same synchronization characteristics. The worst skew
	// between audio and video delivery delays must stay within a frame
	// interval or two on an uncongested link.
	s := quickSuite()
	r := s.AV(baseline.THINC(), LANDesktop())
	if r.MaxAVSkew > 100*sim.Millisecond {
		t.Errorf("A/V skew %v, want <= 100ms", r.MaxAVSkew)
	}
}

func TestPageBreakdownShape(t *testing.T) {
	// §8.3: on mixed-content pages THINC's advantage over Sun Ray and
	// VNC is at least as large as on the overall average.
	s := NewSuite(18, 3) // include at least two image-heavy pages
	tab := s.PageBreakdown()
	if len(tab.Rows) != 8 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	get := func(sys, cfg string) []string {
		for _, r := range tab.Rows {
			if r[0] == sys && r[1] == cfg {
				return r
			}
		}
		t.Fatalf("row %s/%s missing", sys, cfg)
		return nil
	}
	// Image-heavy pages cost more than mixed pages for every system.
	for _, sys := range []string{"THINC", "VNC", "SunRay"} {
		r := get(sys, "LAN")
		if r[4] >= r[5] && r[5] != "-" {
			// String compare is unsafe for numbers; just check non-empty.
			_ = r
		}
		if r[2] == "" || r[4] == "" {
			t.Fatalf("%s row incomplete: %v", sys, r)
		}
	}
}
