package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"time"

	"thinc/internal/auth"
	"thinc/internal/client"
	"thinc/internal/geom"
	"thinc/internal/overload"
	"thinc/internal/pixel"
	"thinc/internal/server"
	"thinc/internal/simnet"
	"thinc/internal/telemetry"
	"thinc/internal/xserver"
)

// Bytes-on-wire bench for the wire-v6 payload cache: the same
// repeat-heavy workload drives a cache-negotiated session and a
// cache-disabled session over loopback and a shaped WAN link, and the
// report records what the client actually received in the steady state
// — after the warmup rounds have populated the store, every round is
// pure repeats, so the cached session ships ~21-byte CACHE_PAINT
// references where the uncached one re-ships full payloads. The mark
// loop runs throughout, so each cell also carries client-perceived
// end-to-end latency percentiles for regression tracking against the
// PR 7 baseline.

// cacheBench workload geometry: a bank of icon-sized patterns redrawn
// every round at round-shifted slots. Slots exceed the pattern size by
// a margin so draws never abut (RawCmd merging would re-key digests
// and turn repeats into fresh content).
const (
	cacheBenchBank  = 12
	cachePatternW   = 32
	cachePatternH   = 24
	cacheSlotW      = cachePatternW + 4
	cacheSlotH      = cachePatternH + 4
	cacheBenchSlots = 7 * 6 // 256x192 screen / slot grid
)

// CacheOptions configures a cache bench sweep.
type CacheOptions struct {
	// WarmRounds populate the cache (excluded from measurement).
	WarmRounds int
	// SteadyRounds are the measured repeat rounds.
	SteadyRounds int
	// W, H is the session geometry.
	W, H int
}

func (o CacheOptions) withDefaults() CacheOptions {
	if o.WarmRounds <= 0 {
		o.WarmRounds = 3
	}
	if o.SteadyRounds <= 0 {
		o.SteadyRounds = 60
	}
	if o.W <= 0 || o.H <= 0 {
		o.W, o.H = 256, 192
	}
	return o
}

// CacheCell is one (link, mode) measurement.
type CacheCell struct {
	Link string `json:"link"`
	Mode string `json:"mode"` // "cached" | "uncached"

	// SteadyBytes is what the client received during the steady rounds,
	// summed over every message type it applied.
	SteadyBytes   int64          `json:"steady_bytes"`
	BytesPerRound int64          `json:"bytes_per_round"`
	CacheStores   int64          `json:"cache_stores"`
	CachePaints   int64          `json:"cache_paints"`
	CacheMisses   int64          `json:"cache_misses"`
	SavedBytes    int64          `json:"saved_bytes"`
	HitRatioMilli int64          `json:"hit_ratio_milli"`
	ClientStoreKB int64          `json:"client_store_kb"`
	Acks          int            `json:"acks"`
	E2E           E2EPercentiles `json:"e2e"`
}

// CacheReport is the BENCH_pr8.json payload.
type CacheReport struct {
	Schema       string      `json:"schema"`
	Bank         int         `json:"bank_patterns"`
	PatternBytes int         `json:"pattern_payload_bytes"`
	WarmRounds   int         `json:"warm_rounds"`
	SteadyRounds int         `json:"steady_rounds"`
	Runs         []CacheCell `json:"runs"`
	// RatioMilli is uncached/cached steady bytes per link, x1000.
	RatioMilli map[string]int64 `json:"steady_bytes_ratio_milli"`
}

// Write serializes the report as indented JSON.
func (r *CacheReport) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Check validates the acceptance shape: every link must show at least
// a 5x steady-state bytes-on-wire reduction, cached cells must run hot
// (>= 80% hit ratio, zero misses), uncached cells must be free of
// cache traffic, and every cell must have acked latency marks.
func (r *CacheReport) Check() error {
	if len(r.Runs) == 0 {
		return fmt.Errorf("cache report has no runs")
	}
	byLink := map[string]map[string]CacheCell{}
	for _, c := range r.Runs {
		if byLink[c.Link] == nil {
			byLink[c.Link] = map[string]CacheCell{}
		}
		byLink[c.Link][c.Mode] = c
		if c.Acks == 0 {
			return fmt.Errorf("%s/%s: no acked marks", c.Link, c.Mode)
		}
		switch c.Mode {
		case "cached":
			if c.CacheMisses != 0 {
				return fmt.Errorf("%s: %d cache misses on a lossless link", c.Link, c.CacheMisses)
			}
			if c.HitRatioMilli < 800 {
				return fmt.Errorf("%s: hit ratio %d/1000, want >= 800", c.Link, c.HitRatioMilli)
			}
			if c.CachePaints == 0 || c.SavedBytes <= 0 {
				return fmt.Errorf("%s: cache never engaged (paints=%d saved=%d)",
					c.Link, c.CachePaints, c.SavedBytes)
			}
		case "uncached":
			if c.CacheStores != 0 || c.CachePaints != 0 {
				return fmt.Errorf("%s: uncached session saw cache traffic (stores=%d paints=%d)",
					c.Link, c.CacheStores, c.CachePaints)
			}
		}
	}
	if len(byLink) < 2 {
		return fmt.Errorf("report covers %d link(s), want loopback and a shaped link", len(byLink))
	}
	for link, modes := range byLink {
		cached, ok1 := modes["cached"]
		plain, ok2 := modes["uncached"]
		if !ok1 || !ok2 {
			return fmt.Errorf("%s: missing a mode (have %d)", link, len(modes))
		}
		if cached.SteadyBytes <= 0 || plain.SteadyBytes <= 0 {
			return fmt.Errorf("%s: empty steady window", link)
		}
		ratio := plain.SteadyBytes * 1000 / cached.SteadyBytes
		if ratio < 5000 {
			return fmt.Errorf("%s: steady bytes ratio %d.%03dx, want >= 5x (cached=%d uncached=%d)",
				link, ratio/1000, ratio%1000, cached.SteadyBytes, plain.SteadyBytes)
		}
	}
	return nil
}

// cacheBenchPattern fills bank entry i: position-independent bytes so
// every redraw is a digest-identical repeat, varied enough that the
// damage pipeline ships RAW rather than collapsing to a fill.
func cacheBenchPattern(i int) []pixel.ARGB {
	pix := make([]pixel.ARGB, cachePatternW*cachePatternH)
	for j := range pix {
		pix[j] = pixel.RGB(uint8(31*i+j), uint8(j>>2^i*67), uint8(j*13))
	}
	return pix
}

// cacheBenchRound draws every bank pattern once at its round-shifted
// slot. Slots stay disjoint within a round (bank < slot count and the
// shift is uniform), so commands never merge.
func cacheBenchRound(d *xserver.Display, win *xserver.Window, bank [][]pixel.ARGB, round int) {
	cols := 7
	for i, pix := range bank {
		slot := (i + round*5) % cacheBenchSlots
		r := geom.XYWH((slot%cols)*cacheSlotW+1, (slot/cols)*cacheSlotH+1,
			cachePatternW, cachePatternH)
		d.PutImage(win, r, pix, cachePatternW)
	}
}

// RunCacheBench sweeps links x {cached, uncached} and collects the
// report.
func RunCacheBench(opts CacheOptions, progress func(string)) (*CacheReport, error) {
	opts = opts.withDefaults()
	report := &CacheReport{
		Schema:       "thinc-cache-bench/v1",
		Bank:         cacheBenchBank,
		PatternBytes: cachePatternW * cachePatternH * 4,
		WarmRounds:   opts.WarmRounds,
		SteadyRounds: opts.SteadyRounds,
		RatioMilli:   map[string]int64{},
	}
	for _, link := range e2eLinks() {
		var cells [2]CacheCell
		for i, mode := range []string{"cached", "uncached"} {
			if progress != nil {
				progress(fmt.Sprintf("cache: %s %s (%d+%d rounds)",
					mode, link.name, opts.WarmRounds, opts.SteadyRounds))
			}
			cell, err := runCacheCell(opts, link, mode)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", link.name, mode, err)
			}
			cells[i] = cell
			report.Runs = append(report.Runs, cell)
		}
		if cells[0].SteadyBytes > 0 {
			report.RatioMilli[link.name] = cells[1].SteadyBytes * 1000 / cells[0].SteadyBytes
		}
	}
	return report, nil
}

// runCacheCell drives one live session through warmup plus steady
// rounds and reads the client's byte counters around the steady window.
func runCacheCell(opts CacheOptions, link e2eLink, mode string) (CacheCell, error) {
	cell := CacheCell{Link: link.name, Mode: mode}

	accounts := auth.NewAccounts()
	accounts.Add("bench", "pw")
	srvOpts := server.Options{
		FlushInterval:   time.Millisecond,
		FlushBudget:     1 << 22,
		MarkInterval:    2 * time.Millisecond,
		DisableAudit:    true,
		DisableOverload: true, // pinned lossless: the cache-relevant rung
	}
	if mode == "cached" {
		srvOpts.CacheKB = client.DefaultCacheRequestKB
	}
	host := server.NewHost(opts.W, opts.H, auth.NewAuthenticator("bench", accounts), srvOpts)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return cell, err
	}
	defer l.Close()
	go host.Serve(l)

	addr := l.Addr().String()
	if link.params != nil {
		shaped, stop, err := simnet.StartProxy(addr, *link.params)
		if err != nil {
			return cell, err
		}
		defer stop()
		addr = shaped
	}
	conn, err := client.Dial(addr, "bench", "pw", opts.W, opts.H)
	if err != nil {
		return cell, err
	}
	defer conn.Close()
	go conn.Run()

	bank := make([][]pixel.ARGB, cacheBenchBank)
	for i := range bank {
		bank[i] = cacheBenchPattern(i)
	}
	var win *xserver.Window
	host.Do(func(d *xserver.Display) {
		win = d.CreateWindow(geom.XYWH(0, 0, opts.W, opts.H))
		d.FillRect(win, &xserver.GC{Fg: pixel.RGB(24, 26, 32)}, win.Bounds())
	})

	runRounds := func(from, n int) error {
		for r := from; r < from+n; r++ {
			host.Do(func(d *xserver.Display) {
				cacheBenchRound(d, win, bank, r)
			})
			time.Sleep(4 * time.Millisecond)
		}
		// Quiesce: the steady window must contain exactly these rounds.
		want := host.ScreenChecksum()
		deadline := time.Now().Add(10 * time.Second)
		for conn.Snapshot().Checksum() != want {
			if time.Now().After(deadline) {
				return fmt.Errorf("client never converged after round %d", from+n-1)
			}
			time.Sleep(2 * time.Millisecond)
		}
		return nil
	}

	if err := runRounds(0, opts.WarmRounds); err != nil {
		return cell, err
	}
	base := clientBytesTotal(conn)
	if err := runRounds(opts.WarmRounds, opts.SteadyRounds); err != nil {
		return cell, err
	}
	cell.SteadyBytes = clientBytesTotal(conn) - base
	cell.BytesPerRound = cell.SteadyBytes / int64(opts.SteadyRounds)

	// Let the last marks ack before reading latency histograms.
	settle := 250 * time.Millisecond
	if link.params != nil {
		settle += time.Duration(link.params.RTT) * time.Microsecond
	}
	time.Sleep(settle)

	st := conn.Stats()
	cell.CacheStores = int64(st.CacheStored)
	cell.CachePaints = int64(st.CachePainted)
	cell.CacheMisses = int64(st.CacheMissReports)
	cell.ClientStoreKB = st.CacheBytes / 1024
	reg := host.Telemetry()
	cell.SavedBytes = reg.Value("thinc_cache_saved_bytes_total")
	cell.HitRatioMilli = reg.Value("thinc_cache_hit_ratio_milli")
	cell.Acks = int(reg.Value("thinc_e2e_acks_total"))
	cell.E2E = percentilesOf(histSnap(reg, "thinc_e2e_latency_us",
		telemetry.L("rung", overload.RungName(0))), 1)
	return cell, nil
}

// clientBytesTotal sums the client's per-type wire byte counters — the
// bytes-on-wire methodology: count what the client applied, so framing
// and every message kind (display, cache, control) are all included.
func clientBytesTotal(conn *client.Conn) int64 {
	var n int64
	for _, b := range conn.Stats().Bytes {
		n += b
	}
	return n
}
