// Package bench is the slow-motion benchmarking harness (§8): it runs
// every system under test against the web and A/V workloads over the
// emulated network environments, measures page latency, data
// transferred, and A/V quality the way the paper does, and regenerates
// each figure of the evaluation as a table of numbers.
package bench

import (
	"thinc/internal/baseline"
	"thinc/internal/driver"
	"thinc/internal/geom"
	"thinc/internal/sim"
	"thinc/internal/simnet"
	"thinc/internal/workload"
	"thinc/internal/xserver"
)

// Screen geometry of the session (§8.1: 1024x768 24-bit).
const (
	ScreenW = 1024
	ScreenH = 768
)

// Config is one evaluation environment.
type Config struct {
	Name         string
	Link         simnet.LinkParams
	ViewW, ViewH int
}

// LANDesktop is the 100 Mbps LAN configuration.
func LANDesktop() Config {
	return Config{Name: "LAN Desktop", Link: simnet.LAN(), ViewW: ScreenW, ViewH: ScreenH}
}

// WANDesktop is the 100 Mbps / 66 ms RTT configuration.
func WANDesktop() Config {
	return Config{Name: "WAN Desktop", Link: simnet.WAN(), ViewW: ScreenW, ViewH: ScreenH}
}

// PDA is the 802.11g small-screen configuration (320x240 viewport).
func PDA() Config {
	return Config{Name: "802.11g PDA", Link: simnet.PDA80211g(), ViewW: 320, ViewH: 240}
}

// PDAFor adapts the PDA viewport to a system's constraints (GoToMyPC's
// minimum is 640x480, §8.1).
func PDAFor(sys baseline.System) Config {
	c := PDA()
	if sys.ColorBits() == 8 {
		c.ViewW, c.ViewH = 640, 480
	}
	return c
}

// Systems returns the evaluated platforms in the paper's order.
func Systems() []baseline.System {
	return []baseline.System{
		baseline.Local(),
		baseline.THINC(),
		baseline.X(),
		baseline.NX(),
		baseline.SunRay(),
		baseline.VNC(),
		baseline.ICA(),
		baseline.RDP(),
		baseline.GoToMyPC(),
	}
}

// SystemByName finds a system by display name (nil if unknown).
func SystemByName(name string) baseline.System {
	for _, s := range Systems() {
		if s.Name() == name {
			return s
		}
	}
	return nil
}

// interPageGap separates page loads so they can be disambiguated, like
// the paper's packet-capture methodology.
const interPageGap = 300 * sim.Millisecond

// PageResult measures one page load.
type PageResult struct {
	LatencyNet  sim.Time // click to last display data delivered
	LatencyFull sim.Time // including client processing time
	Bytes       int64
	ImageHeavy  bool
}

// WebResult is a complete web benchmark run.
type WebResult struct {
	System    string
	Config    string
	Pages     []PageResult
	Telemetry *TelemetrySnapshot // nil for systems without telemetry
}

// AvgLatencyNet returns the mean page latency (network measure).
func (w WebResult) AvgLatencyNet() sim.Time {
	return w.avg(func(p PageResult) sim.Time { return p.LatencyNet })
}

// AvgLatencyFull returns the mean latency including client processing.
func (w WebResult) AvgLatencyFull() sim.Time {
	return w.avg(func(p PageResult) sim.Time { return p.LatencyFull })
}

// AvgBytes returns mean data transferred per page.
func (w WebResult) AvgBytes() int64 {
	var n int64
	for _, p := range w.Pages {
		n += p.Bytes
	}
	if len(w.Pages) == 0 {
		return 0
	}
	return n / int64(len(w.Pages))
}

func (w WebResult) avg(f func(PageResult) sim.Time) sim.Time {
	var t sim.Time
	for _, p := range w.Pages {
		t += f(p)
	}
	if len(w.Pages) == 0 {
		return 0
	}
	return t / sim.Time(len(w.Pages))
}

// pageCosts derives the CPU model inputs from a page's statistics.
func pageCosts(st workload.PageStats) (layout, render sim.Time) {
	pixels := st.ImagePixels + st.FillPixels + st.Glyphs*xserver.GlyphW*xserver.GlyphH
	return baseline.CostPageLayout, baseline.RenderCost(st.Ops, pixels)
}

// pageStatsCache precomputes page statistics once (pages are
// deterministic), so cost-model inputs are known before rendering.
var pageStatsCache []workload.PageStats

func pageStats() []workload.PageStats {
	if pageStatsCache != nil {
		return pageStatsCache
	}
	d := xserver.NewDisplay(ScreenW, ScreenH, driver.Nop{})
	b := &workload.Browser{Dpy: d, Win: d.CreateWindow(geom.XYWH(0, 0, ScreenW, ScreenH)), DoubleBuffer: true}
	out := make([]workload.PageStats, workload.NumPages)
	for i := range out {
		out[i] = b.RenderPage(i)
	}
	pageStatsCache = out
	return out
}

// RunWeb executes the 54-page web benchmark (§8.2) for one system and
// configuration. Pages lets callers shorten the run (0 = all pages).
func RunWeb(sys baseline.System, cfg Config, pages int) WebResult {
	if pages <= 0 || pages > workload.NumPages {
		pages = workload.NumPages
	}
	eng := sim.NewEngine()
	scfg := baseline.SessionConfig{
		Eng: eng, Link: cfg.Link,
		W: ScreenW, H: ScreenH, ViewW: cfg.ViewW, ViewH: cfg.ViewH,
	}
	sess := sys.NewSession(scfg)
	dpy := xserver.NewDisplay(ScreenW, ScreenH, sess.Driver())
	sess.BindDisplay(dpy)
	win := dpy.CreateWindow(geom.XYWH(0, 0, ScreenW, ScreenH))
	br := &workload.Browser{Dpy: dpy, Win: win, DoubleBuffer: true}
	sess.Start()
	eng.Run() // drain connection setup / initial refresh

	stats := pageStats()
	res := WebResult{System: sys.Name(), Config: cfg.Name}
	for i := 0; i < pages; i++ {
		st := stats[i]
		layout, render := pageCosts(st)
		before := sess.Stats()
		click := eng.Now() + interPageGap
		i := i
		eng.At(click, func() {
			sess.Input(baseline.InputEvent{
				P:            br.NextLink(),
				LayoutCost:   layout,
				RenderCost:   render,
				ContentBytes: st.IntrinsicBytes,
				OnServer: func() {
					br.RenderPage(i)
					sess.Damage()
				},
			})
		})
		eng.Run()
		after := sess.Stats()
		lat := after.LastDelivery - click
		if lat < 0 {
			lat = 0
		}
		full := lat
		if sys.Name() != "local" { // local folds CPU into delivery time
			full += after.ClientCPU - before.ClientCPU
		}
		res.Pages = append(res.Pages, PageResult{
			LatencyNet:  lat,
			LatencyFull: full,
			Bytes:       after.BytesToClient - before.BytesToClient,
			ImageHeavy:  st.ImageHeavy,
		})
	}
	res.Telemetry = snapshotTelemetry(sess)
	return res
}

// AVResult is one A/V playback run.
type AVResult struct {
	System       string
	Config       string
	Quality      float64 // 0..1 combined A/V quality (§8.2)
	VideoQuality float64
	AudioQuality float64
	Frames       int
	Bytes        int64
	Mbps         float64            // average bandwidth over the clip
	MaxAVSkew    sim.Time           // §4.2 synchronization bound (native path)
	Telemetry    *TelemetrySnapshot // nil for systems without telemetry
}

// avWeightVideo weighs video over audio in the combined measure; the
// paper's single-connection captures weigh data volume, and video
// dominates the bytes.
const avWeightVideo = 0.9

// RunAV plays the A/V clip (§8.2) full-screen for one system and
// configuration. seconds lets callers shorten the clip (0 = full).
func RunAV(sys baseline.System, cfg Config, seconds float64) AVResult {
	clip := workload.DefaultClip()
	track := workload.DefaultAudio()
	if seconds > 0 && sim.Time(seconds*float64(sim.Second)) < clip.Duration {
		clip.Duration = sim.Time(seconds * float64(sim.Second))
		track.Duration = clip.Duration
	}

	eng := sim.NewEngine()
	scfg := baseline.SessionConfig{
		Eng: eng, Link: cfg.Link,
		W: ScreenW, H: ScreenH, ViewW: cfg.ViewW, ViewH: cfg.ViewH,
	}
	sess := sys.NewSession(scfg)
	dpy := xserver.NewDisplay(ScreenW, ScreenH, sess.Driver())
	dpy.SkipOverlayRender = true
	sess.BindDisplay(dpy)
	fullScreen := geom.XYWH(0, 0, ScreenW, ScreenH)
	sess.SetVideoRect(fullScreen)
	sess.Start()
	eng.Run()

	t0 := eng.Now() + 200*sim.Millisecond
	frames := clip.NumFrames()
	chunks := track.NumChunks()

	switch s := sess.(type) {
	case interface {
		PlayClip(frames int, duration sim.Time, mpegBytes int64)
	}:
		// Local PC: native playback of the encoded stream.
		eng.At(t0, func() { s.PlayClip(frames, clip.Duration, clip.MPEGBytes()) })
		for j := 0; j < chunks; j++ {
			j := j
			eng.At(t0+sim.Time(track.PTS(j)), func() { sess.Audio(track.PTS(j), track.ChunkBytes()) })
		}
	default:
		if sys.NativeVideo() {
			vp := dpy.CreateVideoPort(clip.W, clip.H, fullScreen)
			for i := 0; i < frames; i++ {
				i := i
				at := t0 + sim.Time(clip.PTS(i))
				eng.At(at, func() {
					vp.PutFrame(clip.Frame(i), uint64(at))
					sess.Damage()
				})
			}
		} else {
			// Software playback: the player scales the decoded frame to
			// full screen and blits it. Measure the blit's zlib ratios
			// once from a real upscaled frame.
			r24, r8 := softwareFrameRatios(clip)
			rawBytes := ScreenW * ScreenH * 4
			for i := 0; i < frames; i++ {
				i := i
				at := t0 + sim.Time(clip.PTS(i))
				eng.At(at, func() {
					sess.SoftwareFrame(i, uint64(at), rawBytes, r24, r8)
					sess.Damage()
				})
			}
		}
		if sys.SupportsAudio() {
			for j := 0; j < chunks; j++ {
				j := j
				at := t0 + sim.Time(track.PTS(j))
				eng.At(at, func() { sess.Audio(uint64(at), track.ChunkBytes()) })
			}
		}
	}
	eng.Run()

	st := sess.Stats()
	res := AVResult{System: sys.Name(), Config: cfg.Name, Frames: st.VideoFrames,
		Bytes: st.BytesToClient, MaxAVSkew: st.MaxAVSkew}

	videoFrac := float64(st.VideoFrames) / float64(frames)
	if videoFrac > 1 {
		videoFrac = 1
	}
	actual := clip.Duration
	if st.VideoFrames > 0 {
		if d := st.LastFrame - st.FirstFrame + clip.FrameInterval(); d > actual {
			actual = d
		}
	}
	res.VideoQuality = videoFrac * float64(clip.Duration) / float64(actual)

	if sys.SupportsAudio() {
		af := float64(st.AudioChunks) / float64(chunks)
		if af > 1 {
			af = 1
		}
		res.AudioQuality = af
		res.Quality = avWeightVideo*res.VideoQuality + (1-avWeightVideo)*res.AudioQuality
	} else {
		res.Quality = res.VideoQuality // video-only systems (§8.2)
	}
	span := clip.Duration
	if st.LastDelivery > t0 && st.LastDelivery-t0 > span {
		span = st.LastDelivery - t0
	}
	res.Mbps = float64(res.Bytes*8) / span.Seconds() / 1e6
	res.Telemetry = snapshotTelemetry(sess)
	return res
}

// softwareRatio caches the upscaled-frame compressibility measurement.
var softwareRatio24, softwareRatio8 float64

func softwareFrameRatios(clip *workload.VideoClip) (r24, r8 float64) {
	if softwareRatio24 != 0 {
		return softwareRatio24, softwareRatio8
	}
	softwareRatio24, softwareRatio8 = measureFrameRatios(clip)
	return softwareRatio24, softwareRatio8
}
