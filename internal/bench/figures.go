package bench

import (
	"fmt"

	"thinc/internal/baseline"
	"thinc/internal/compress"
	"thinc/internal/core"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/sim"
	"thinc/internal/simnet"
	"thinc/internal/xserver"
)

// Suite runs the evaluation and regenerates every figure of §8. Pages
// and AVSeconds shorten the workloads for quick runs (zero = full
// paper-scale workloads: 54 pages, 34.75 s clip).
type Suite struct {
	Pages     int
	AVSeconds float64

	web map[string]WebResult // key: system|config
	av  map[string]AVResult
}

// NewSuite returns a harness; pages/avSeconds of 0 mean full scale.
func NewSuite(pages int, avSeconds float64) *Suite {
	return &Suite{
		Pages:     pages,
		AVSeconds: avSeconds,
		web:       make(map[string]WebResult),
		av:        make(map[string]AVResult),
	}
}

// Web returns (cached) web results for a system and configuration.
func (s *Suite) Web(sys baseline.System, cfg Config) WebResult {
	key := sys.Name() + "|" + cfg.Name + cfgGeom(cfg)
	if r, ok := s.web[key]; ok {
		return r
	}
	r := RunWeb(sys, cfg, s.Pages)
	s.web[key] = r
	return r
}

// AV returns (cached) A/V results for a system and configuration.
func (s *Suite) AV(sys baseline.System, cfg Config) AVResult {
	key := sys.Name() + "|" + cfg.Name + cfgGeom(cfg)
	if r, ok := s.av[key]; ok {
		return r
	}
	r := RunAV(sys, cfg, s.AVSeconds)
	s.av[key] = r
	return r
}

func cfgGeom(cfg Config) string {
	return fmt.Sprintf("|%dx%d", cfg.ViewW, cfg.ViewH)
}

// pdaSystems are the platforms with small-screen support (§8.3).
func pdaSystems() []baseline.System {
	var out []baseline.System
	for _, sys := range Systems() {
		if sys.Resize() != baseline.ResizeNone {
			out = append(out, sys)
		}
	}
	return out
}

// Fig2 regenerates Figure 2: average web page latency per platform for
// LAN, WAN, and PDA, with and without client processing time.
func (s *Suite) Fig2() *Table {
	t := &Table{
		ID:     "Figure 2",
		Title:  "Web Benchmark: Average Page Latency (ms)",
		Header: []string{"platform", "LAN", "LAN+client", "WAN", "WAN+client", "PDA", "PDA+client"},
		Notes: []string{
			"'+client' includes client processing time (the paper could instrument it only for X, VNC, NX, THINC and the local PC)",
			"PDA columns cover only the systems with small-screen support",
		},
	}
	pda := map[string]bool{}
	for _, sys := range pdaSystems() {
		pda[sys.Name()] = true
	}
	for _, sys := range Systems() {
		lan := s.Web(sys, LANDesktop())
		wan := s.Web(sys, WANDesktop())
		row := []string{sys.Name(),
			ms(lan.AvgLatencyNet()), ms(lan.AvgLatencyFull()),
			ms(wan.AvgLatencyNet()), ms(wan.AvgLatencyFull())}
		if pda[sys.Name()] && sys.Name() != "local" {
			p := s.Web(sys, PDAFor(sys))
			row = append(row, ms(p.AvgLatencyNet()), ms(p.AvgLatencyFull()))
		} else {
			row = append(row, "-", "-")
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig3 regenerates Figure 3: average data transferred per web page.
func (s *Suite) Fig3() *Table {
	t := &Table{
		ID:     "Figure 3",
		Title:  "Web Benchmark: Average Page Data Transferred (KB)",
		Header: []string{"platform", "LAN", "WAN", "PDA"},
	}
	pda := map[string]bool{}
	for _, sys := range pdaSystems() {
		pda[sys.Name()] = true
	}
	for _, sys := range Systems() {
		row := []string{sys.Name(),
			kb(s.Web(sys, LANDesktop()).AvgBytes()),
			kb(s.Web(sys, WANDesktop()).AvgBytes())}
		if pda[sys.Name()] && sys.Name() != "local" {
			row = append(row, kb(s.Web(sys, PDAFor(sys)).AvgBytes()))
		} else {
			row = append(row, "-")
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// siteConfig builds the evaluation config for a Table 2 remote site.
func siteConfig(site simnet.Site) Config {
	return Config{Name: site.Name, Link: site.Link(), ViewW: ScreenW, ViewH: ScreenH}
}

// Fig4 regenerates Figure 4: THINC web latency from the remote sites of
// Table 2.
func (s *Suite) Fig4() *Table {
	t := &Table{
		ID:     "Figure 4",
		Title:  "Web Benchmark: THINC Average Page Latency Using Remote Sites (ms)",
		Header: []string{"site", "miles", "rtt(ms)", "latency", "latency+client"},
	}
	thinc := baseline.THINC()
	for _, site := range simnet.Sites() {
		w := s.Web(thinc, siteConfig(site))
		t.Rows = append(t.Rows, []string{
			site.Name,
			fmt.Sprintf("%d", site.Miles),
			fmt.Sprintf("%.0f", site.Link().RTT.Millis()),
			ms(w.AvgLatencyNet()), ms(w.AvgLatencyFull()),
		})
	}
	return t
}

// Fig5 regenerates Figure 5: A/V quality per platform.
func (s *Suite) Fig5() *Table {
	t := &Table{
		ID:     "Figure 5",
		Title:  "A/V Benchmark: A/V Quality (%) (GoToMyPC and VNC are video only)",
		Header: []string{"platform", "LAN", "WAN", "PDA"},
	}
	pda := map[string]bool{}
	for _, sys := range pdaSystems() {
		pda[sys.Name()] = true
	}
	for _, sys := range Systems() {
		row := []string{sys.Name(),
			pct(s.AV(sys, LANDesktop()).Quality),
			pct(s.AV(sys, WANDesktop()).Quality)}
		if pda[sys.Name()] && sys.Name() != "local" {
			row = append(row, pct(s.AV(sys, PDAFor(sys)).Quality))
		} else {
			row = append(row, "-")
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig6 regenerates Figure 6: total data transferred during A/V playback.
func (s *Suite) Fig6() *Table {
	t := &Table{
		ID:     "Figure 6",
		Title:  "A/V Benchmark: Total Data Transferred (MB / Mbps)",
		Header: []string{"platform", "LAN MB", "LAN Mbps", "WAN MB", "WAN Mbps", "PDA Mbps"},
	}
	pda := map[string]bool{}
	for _, sys := range pdaSystems() {
		pda[sys.Name()] = true
	}
	for _, sys := range Systems() {
		lan := s.AV(sys, LANDesktop())
		wan := s.AV(sys, WANDesktop())
		row := []string{sys.Name(),
			mb(lan.Bytes), fmt.Sprintf("%.1f", lan.Mbps),
			mb(wan.Bytes), fmt.Sprintf("%.1f", wan.Mbps)}
		if pda[sys.Name()] && sys.Name() != "local" {
			row = append(row, fmt.Sprintf("%.1f", s.AV(sys, PDAFor(sys)).Mbps))
		} else {
			row = append(row, "-")
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig7 regenerates Figure 7: THINC A/V quality from the remote sites,
// with the relative bandwidth available from each site.
func (s *Suite) Fig7() *Table {
	t := &Table{
		ID:     "Figure 7",
		Title:  "A/V Benchmark: THINC A/V Quality Using Remote Sites",
		Header: []string{"site", "rtt(ms)", "window", "rel.bw", "quality(%)"},
		Notes: []string{
			"rel.bw: achievable throughput relative to the LAN testbed (Iperf-style, window/RTT capped)",
			"KR is capped by its 256KB PlanetLab TCP window — below the ~24 Mbps the video needs",
		},
	}
	thinc := baseline.THINC()
	lanRate := simnet.LAN().EffectiveRate()
	for _, site := range simnet.Sites() {
		link := site.Link()
		a := s.AV(thinc, siteConfig(site))
		t.Rows = append(t.Rows, []string{
			site.Name,
			fmt.Sprintf("%.0f", link.RTT.Millis()),
			fmt.Sprintf("%dK", link.Window>>10),
			fmt.Sprintf("%.2f", link.EffectiveRate()/lanRate),
			pct(a.Quality),
		})
	}
	return t
}

// Ablations regenerates the design-choice studies DESIGN.md calls out.
func (s *Suite) Ablations() *Table {
	t := &Table{
		ID:     "Ablations",
		Title:  "THINC design choices (web: LAN latency ms / KB per page; video: WAN quality %; resp: WAN interactive response ms)",
		Header: []string{"variant", "web ms", "web KB", "PDA ms", "PDA KB", "AV WAN %", "resp ms"},
	}
	variants := []baseline.System{
		baseline.THINC(),
		baseline.THINCWith("no-offscreen", core.Options{RawCodec: compress.CodecPNG, DisableOffscreen: true}),
		baseline.THINCWith("no-compress", core.Options{}),
		baseline.THINCWith("fifo-sched", core.Options{RawCodec: compress.CodecPNG, FIFODelivery: true}),
		baseline.WithPull("client-pull"),
		clientResizeTHINC(),
	}
	for _, sys := range variants {
		lan := s.Web(sys, LANDesktop())
		pdaCfg := PDA()
		p := s.Web(sys, pdaCfg)
		av := s.AV(sys, WANDesktop())
		resp := RunInteractive(sys, WANDesktop())
		t.Rows = append(t.Rows, []string{
			sys.Name(),
			ms(lan.AvgLatencyNet()), kb(lan.AvgBytes()),
			ms(p.AvgLatencyNet()), kb(p.AvgBytes()),
			pct(av.Quality),
			ms(resp),
		})
	}
	return t
}

// clientResizeTHINC is THINC with client-side resizing (the ICA/GTMP
// strategy) for the server-vs-client resize ablation (§6).
func clientResizeTHINC() baseline.System {
	s := baseline.THINC()
	s.SysName = "client-resize"
	s.ResizeBy = baseline.ResizeClient
	return s
}

// AllTables regenerates every figure in order.
func (s *Suite) AllTables() []*Table {
	return []*Table{s.Fig2(), s.Fig3(), s.Fig4(), s.Fig5(), s.Fig6(), s.Fig7(),
		s.PageBreakdown(), s.Microbench(), s.Ablations()}
}

// InteractiveProbe measures interactive responsiveness: while a large
// screen update is still streaming, the user clicks a button; the probe
// is the delay until the button's redraw reaches the client. This is
// the workload SRSF and the real-time queue exist for (§5); mean page
// latency cannot show it because the page's completion time is
// scheduling-invariant.
type probeSession interface {
	SetProbe(r geom.Rect)
	ProbeTime() sim.Time
}

// RunInteractive returns the button-response delay for a THINC variant
// over the given configuration.
func RunInteractive(sys baseline.System, cfg Config) sim.Time {
	eng := sim.NewEngine()
	scfg := baseline.SessionConfig{Eng: eng, Link: cfg.Link,
		W: ScreenW, H: ScreenH, ViewW: cfg.ViewW, ViewH: cfg.ViewH}
	sess := sys.NewSession(scfg)
	dpy := xserver.NewDisplay(ScreenW, ScreenH, sess.Driver())
	sess.BindDisplay(dpy)
	win := dpy.CreateWindow(geom.XYWH(0, 0, ScreenW, ScreenH))
	sess.Start()
	eng.Run()

	ps, ok := sess.(probeSession)
	if !ok {
		return 0
	}
	button := geom.XYWH(500, 700, 80, 24)
	ps.SetProbe(button)

	click := eng.Now() + interPageGap
	var clickAt sim.Time
	eng.At(click, func() {
		clickAt = eng.Now()
		sess.Input(baseline.InputEvent{
			P:          geom.Point{X: 540, Y: 712},
			LayoutCost: 5 * sim.Millisecond,
			OnServer: func() {
				// A big image repaint is queued first...
				img := make([]pixel.ARGB, ScreenW*600)
				for i := range img {
					img[i] = pixel.RGB(uint8(i), uint8(i>>8), uint8(i>>16))
				}
				dpy.PutImage(win, geom.XYWH(0, 0, ScreenW, 600), img, ScreenW)
				// ...then the button feedback the user is waiting for.
				dpy.FillRect(win, &xserver.GC{Fg: pixel.RGB(90, 90, 220)}, button)
				sess.Damage()
			},
		})
	})
	eng.Run()
	if ps.ProbeTime() == 0 {
		return 0
	}
	return ps.ProbeTime() - clickAt
}

// PageBreakdown reproduces the paper's page-by-page analysis (§8.3):
// THINC against the other fast systems (Sun Ray, VNC, NX), split into
// mixed-content pages and the image-heavy pages where THINC falls back
// to compressed RAW.
func (s *Suite) PageBreakdown() *Table {
	t := &Table{
		ID:    "Page classes",
		Title: "Web page-by-page analysis: mixed-content vs image-heavy pages",
		Header: []string{"platform", "config",
			"mixed ms", "image ms", "mixed KB", "image KB"},
		Notes: []string{
			"§8.3: THINC wins every page class except single-large-image pages in some configs,",
			"where compression-centric systems close the gap — its mixed-content advantage is larger than the averages show",
		},
	}
	for _, name := range []string{"THINC", "SunRay", "VNC", "NX"} {
		sys := SystemByName(name)
		for _, cfg := range []Config{LANDesktop(), WANDesktop()} {
			w := s.Web(sys, cfg)
			var mixedMS, imgMS sim.Time
			var mixedKB, imgKB int64
			var nm, ni int
			for _, p := range w.Pages {
				if p.ImageHeavy {
					imgMS += p.LatencyFull
					imgKB += p.Bytes
					ni++
				} else {
					mixedMS += p.LatencyFull
					mixedKB += p.Bytes
					nm++
				}
			}
			row := []string{name, cfg.Name[:3]}
			if nm > 0 {
				row = append(row, ms(mixedMS/sim.Time(nm)), "")
				row[3] = "-"
				if ni > 0 {
					row[3] = ms(imgMS / sim.Time(ni))
				}
				row = append(row, kb(mixedKB/int64(nm)))
				if ni > 0 {
					row = append(row, kb(imgKB/int64(ni)))
				} else {
					row = append(row, "-")
				}
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t
}
