package pixel

// YV12 conversion. YV12 is planar YUV 4:2:0 with the V plane before the U
// plane: Y at full resolution, then V and U subsampled 2x2. It is the
// preferred output format of MPEG decoders and the format THINC exports to
// applications through its XVideo-like interface; the client "hardware"
// converts it back to RGB while scaling (§4.2 of the paper).

// YV12Image is a planar YUV 4:2:0 frame.
type YV12Image struct {
	W, H int
	Y    []byte // W*H luma samples
	V    []byte // ceil(W/2)*ceil(H/2) chroma
	U    []byte // ceil(W/2)*ceil(H/2) chroma
}

// NewYV12 allocates a frame of the given geometry.
func NewYV12(w, h int) *YV12Image {
	cw, ch := (w+1)/2, (h+1)/2
	return &YV12Image{
		W: w, H: h,
		Y: make([]byte, w*h),
		V: make([]byte, cw*ch),
		U: make([]byte, cw*ch),
	}
}

// Size returns the total byte size of the frame.
func (img *YV12Image) Size() int { return len(img.Y) + len(img.V) + len(img.U) }

// Marshal appends the three planes (Y, V, U) to dst and returns it.
func (img *YV12Image) Marshal(dst []byte) []byte {
	dst = append(dst, img.Y...)
	dst = append(dst, img.V...)
	dst = append(dst, img.U...)
	return dst
}

// UnmarshalYV12 parses a frame of the given geometry from buf.
// It returns nil if buf is too short.
func UnmarshalYV12(w, h int, buf []byte) *YV12Image {
	if len(buf) < YV12Size(w, h) {
		return nil
	}
	cw, ch := (w+1)/2, (h+1)/2
	img := &YV12Image{W: w, H: h}
	img.Y = buf[: w*h : w*h]
	img.V = buf[w*h : w*h+cw*ch : w*h+cw*ch]
	img.U = buf[w*h+cw*ch : w*h+2*cw*ch : w*h+2*cw*ch]
	return img
}

// RGBToYUV converts one pixel using the BT.601 studio-swing matrix.
func RGBToYUV(p ARGB) (y, u, v uint8) {
	r, g, b := int32(p.R()), int32(p.G()), int32(p.B())
	yy := (66*r + 129*g + 25*b + 128) >> 8
	uu := (-38*r - 74*g + 112*b + 128) >> 8
	vv := (112*r - 94*g - 18*b + 128) >> 8
	return clamp8(yy + 16), clamp8(uu + 128), clamp8(vv + 128)
}

// YUVToRGB converts one sample triple back to an opaque RGB pixel.
func YUVToRGB(y, u, v uint8) ARGB {
	c := int32(y) - 16
	d := int32(u) - 128
	e := int32(v) - 128
	r := (298*c + 409*e + 128) >> 8
	g := (298*c - 100*d - 208*e + 128) >> 8
	b := (298*c + 516*d + 128) >> 8
	return RGB(clamp8(r), clamp8(g), clamp8(b))
}

func clamp8(v int32) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// EncodeYV12 converts a rectangle of ARGB pixels (given as a row-major
// slice with the given stride in pixels) into a YV12 frame. Chroma is
// averaged over each 2x2 block.
func EncodeYV12(pix []ARGB, stride, w, h int) *YV12Image {
	img := NewYV12(w, h)
	cw := (w + 1) / 2
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			yy, _, _ := RGBToYUV(pix[y*stride+x])
			img.Y[y*w+x] = yy
		}
	}
	for cy := 0; cy < (h+1)/2; cy++ {
		for cx := 0; cx < cw; cx++ {
			var us, vs, n int32
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					px, py := cx*2+dx, cy*2+dy
					if px >= w || py >= h {
						continue
					}
					_, u, v := RGBToYUV(pix[py*stride+px])
					us += int32(u)
					vs += int32(v)
					n++
				}
			}
			img.U[cy*cw+cx] = uint8(us / n)
			img.V[cy*cw+cx] = uint8(vs / n)
		}
	}
	return img
}

// DecodeYV12 converts the frame to ARGB pixels, scaling to dw x dh with
// nearest-neighbor sampling — modeling the client video hardware's
// combined color-space conversion and scaling (the "hardware overlay").
func DecodeYV12(img *YV12Image, dw, dh int) []ARGB {
	out := make([]ARGB, dw*dh)
	if img.W == 0 || img.H == 0 || dw == 0 || dh == 0 {
		return out
	}
	cw := (img.W + 1) / 2
	for y := 0; y < dh; y++ {
		sy := y * img.H / dh
		for x := 0; x < dw; x++ {
			sx := x * img.W / dw
			yy := img.Y[sy*img.W+sx]
			u := img.U[(sy/2)*cw+sx/2]
			v := img.V[(sy/2)*cw+sx/2]
			out[y*dw+x] = YUVToRGB(yy, u, v)
		}
	}
	return out
}
