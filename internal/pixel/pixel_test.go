package pixel

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPackUnpack(t *testing.T) {
	p := PackARGB(0x12, 0x34, 0x56, 0x78)
	if p.A() != 0x12 || p.R() != 0x34 || p.G() != 0x56 || p.B() != 0x78 {
		t.Fatalf("channel round trip failed: %08x", uint32(p))
	}
	if !RGB(1, 2, 3).Opaque() {
		t.Error("RGB should be opaque")
	}
	if PackARGB(0x80, 0, 0, 0).Opaque() {
		t.Error("half-alpha is not opaque")
	}
}

func TestOverOpaqueSrc(t *testing.T) {
	src := RGB(10, 20, 30)
	dst := RGB(200, 200, 200)
	if Over(src, dst) != src {
		t.Error("opaque src should replace dst")
	}
}

func TestOverTransparentSrc(t *testing.T) {
	src := PackARGB(0, 99, 99, 99)
	dst := RGB(1, 2, 3)
	if Over(src, dst) != dst {
		t.Error("transparent src should leave dst")
	}
}

func TestOverHalfBlend(t *testing.T) {
	src := PackARGB(128, 255, 0, 0)
	dst := RGB(0, 0, 255)
	out := Over(src, dst)
	if !out.Opaque() {
		t.Errorf("over opaque dst must stay opaque: a=%d", out.A())
	}
	// Red should land near 128, blue near 127.
	if d := int(out.R()) - 128; d < -3 || d > 3 {
		t.Errorf("red = %d, want ~128", out.R())
	}
	if d := int(out.B()) - 127; d < -3 || d > 3 {
		t.Errorf("blue = %d, want ~127", out.B())
	}
}

func TestOverBothTransparent(t *testing.T) {
	// A fully transparent source never disturbs the destination, and a
	// nearly-transparent source over a transparent destination must not
	// produce a visible pixel.
	dst := PackARGB(0, 9, 9, 9)
	if got := Over(PackARGB(0, 50, 50, 50), dst); got != dst {
		t.Errorf("transparent src must leave dst: got %08x", uint32(got))
	}
	if got := Over(PackARGB(1, 50, 50, 50), PackARGB(0, 9, 9, 9)); got.A() != 1 {
		t.Errorf("alpha should be src alpha over empty dst: got a=%d", got.A())
	}
}

func Test8BitRoundTrip(t *testing.T) {
	// Quantization error must be bounded by the dropped bits.
	f := func(r, g, b uint8) bool {
		q := From8Bit(To8Bit(RGB(r, g, b)))
		dr := int(r) - int(q.R())
		dg := int(g) - int(q.G())
		db := int(b) - int(q.B())
		abs := func(v int) int {
			if v < 0 {
				return -v
			}
			return v
		}
		return abs(dr) < 32 && abs(dg) < 32 && abs(db) < 64
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFormatBytes(t *testing.T) {
	if FormatARGB32.BytesPerPixel() != 4 || FormatRGB24.BytesPerPixel() != 3 ||
		Format8Bit.BytesPerPixel() != 1 || FormatYV12.BytesPerPixel() != 0 {
		t.Error("BytesPerPixel wrong")
	}
	for _, f := range []Format{FormatARGB32, FormatRGB24, Format8Bit, FormatYV12} {
		if f.String() == "unknown" {
			t.Errorf("format %d has no name", f)
		}
	}
}

func TestYV12Size(t *testing.T) {
	// 352x240: Y=84480, U=V=44*... cw=176, ch=120 -> 21120 each.
	if got := YV12Size(352, 240); got != 352*240+2*176*120 {
		t.Errorf("YV12Size(352,240) = %d", got)
	}
	// Odd sizes round chroma up.
	if got := YV12Size(3, 3); got != 9+2*4 {
		t.Errorf("YV12Size(3,3) = %d", got)
	}
	// 12 bits per pixel for even geometry.
	if got := YV12Size(1024, 768); got != 1024*768*3/2 {
		t.Errorf("YV12Size(1024,768) = %d, want %d", got, 1024*768*3/2)
	}
}

func TestYUVRoundTrip(t *testing.T) {
	// RGB -> YUV -> RGB must be close for typical colors.
	f := func(r, g, b uint8) bool {
		y, u, v := RGBToYUV(RGB(r, g, b))
		q := YUVToRGB(y, u, v)
		abs := func(v int) int {
			if v < 0 {
				return -v
			}
			return v
		}
		// Studio swing clamps extremes; tolerate small error.
		return abs(int(q.R())-int(r)) <= 6 && abs(int(q.G())-int(g)) <= 6 && abs(int(q.B())-int(b)) <= 6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeYV12(t *testing.T) {
	const w, h = 16, 12
	pix := make([]ARGB, w*h)
	for i := range pix {
		// Gentle gradient; chroma subsampling error stays small.
		v := uint8(i * 255 / len(pix))
		pix[i] = RGB(v, v/2, 255-v)
	}
	img := EncodeYV12(pix, w, w, h)
	if img.Size() != YV12Size(w, h) {
		t.Fatalf("size = %d, want %d", img.Size(), YV12Size(w, h))
	}
	out := DecodeYV12(img, w, h)
	var worst int
	for i := range pix {
		for _, d := range []int{
			int(pix[i].R()) - int(out[i].R()),
			int(pix[i].G()) - int(out[i].G()),
			int(pix[i].B()) - int(out[i].B()),
		} {
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
	}
	if worst > 40 {
		t.Errorf("worst channel error %d too large", worst)
	}
}

func TestDecodeYV12Scaling(t *testing.T) {
	// A solid-color frame must stay solid at any scale (hardware overlay
	// property: scaling is free and lossless for flat content).
	const w, h = 8, 8
	pix := make([]ARGB, w*h)
	for i := range pix {
		pix[i] = RGB(40, 80, 160)
	}
	img := EncodeYV12(pix, w, w, h)
	out := DecodeYV12(img, 32, 24)
	first := out[0]
	for i, p := range out {
		if p != first {
			t.Fatalf("pixel %d = %v differs from %v", i, p, first)
		}
	}
}

func TestMarshalUnmarshalYV12(t *testing.T) {
	img := NewYV12(6, 4)
	rnd := rand.New(rand.NewSource(7))
	for i := range img.Y {
		img.Y[i] = byte(rnd.Intn(256))
	}
	for i := range img.U {
		img.U[i] = byte(rnd.Intn(256))
		img.V[i] = byte(rnd.Intn(256))
	}
	buf := img.Marshal(nil)
	if len(buf) != img.Size() {
		t.Fatalf("marshal size %d != %d", len(buf), img.Size())
	}
	got := UnmarshalYV12(6, 4, buf)
	if got == nil {
		t.Fatal("unmarshal failed")
	}
	for i := range img.Y {
		if got.Y[i] != img.Y[i] {
			t.Fatal("Y plane mismatch")
		}
	}
	for i := range img.U {
		if got.U[i] != img.U[i] || got.V[i] != img.V[i] {
			t.Fatal("chroma plane mismatch")
		}
	}
	if UnmarshalYV12(6, 4, buf[:len(buf)-1]) != nil {
		t.Error("short buffer should fail")
	}
}
