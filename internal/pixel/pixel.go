// Package pixel defines the pixel representations used by THINC: 32-bit
// ARGB with a full alpha channel (the native format — the paper's protocol
// supports 24-bit color plus alpha so that compositing and anti-aliased
// text survive the trip to the client), an 8-bit indexed approximation used
// to model legacy 8-bit systems, and planar YV12 used by the video path.
package pixel

// ARGB is a 32-bit pixel with 8 bits per channel, alpha in the top byte.
// Color components are not premultiplied.
type ARGB uint32

// PackARGB builds a pixel from its four channels.
func PackARGB(a, r, g, b uint8) ARGB {
	return ARGB(uint32(a)<<24 | uint32(r)<<16 | uint32(g)<<8 | uint32(b))
}

// RGB builds an opaque pixel.
func RGB(r, g, b uint8) ARGB { return PackARGB(0xff, r, g, b) }

// A returns the alpha channel.
func (p ARGB) A() uint8 { return uint8(p >> 24) }

// R returns the red channel.
func (p ARGB) R() uint8 { return uint8(p >> 16) }

// G returns the green channel.
func (p ARGB) G() uint8 { return uint8(p >> 8) }

// B returns the blue channel.
func (p ARGB) B() uint8 { return uint8(p) }

// Opaque reports whether the pixel is fully opaque.
func (p ARGB) Opaque() bool { return p.A() == 0xff }

// Over composites src over dst using the Porter-Duff OVER operator on
// non-premultiplied pixels.
func Over(src, dst ARGB) ARGB {
	sa := uint32(src.A())
	if sa == 0xff {
		return src
	}
	if sa == 0 {
		return dst
	}
	da := uint32(dst.A())
	// out.a = sa + da*(1-sa)
	oa := sa + da*(255-sa)/255
	if oa == 0 {
		return 0
	}
	blend := func(sc, dc uint8) uint8 {
		s, d := uint32(sc), uint32(dc)
		// Non-premultiplied OVER: (s*sa + d*da*(1-sa)) / oa
		n := s*sa + d*da*(255-sa)/255
		return uint8(n / oa)
	}
	return PackARGB(uint8(oa), blend(src.R(), dst.R()), blend(src.G(), dst.G()), blend(src.B(), dst.B()))
}

// To8Bit quantizes an ARGB pixel to an 8-bit 3-3-2 value, the approximation
// used to model 8-bit-color systems such as GoToMyPC.
func To8Bit(p ARGB) uint8 {
	return p.R()&0xe0 | (p.G()&0xe0)>>3 | p.B()>>6
}

// From8Bit expands a 3-3-2 value back to an opaque ARGB pixel.
func From8Bit(v uint8) ARGB {
	r := v & 0xe0
	g := (v << 3) & 0xe0
	b := (v << 6) & 0xc0
	// Replicate high bits into the low bits for full dynamic range.
	return RGB(r|r>>3|r>>6, g|g>>3|g>>6, b|b>>2|b>>4|b>>6)
}

// Format identifies how pixel data is laid out on the wire and in memory.
type Format uint8

// Wire formats used by the protocol and the baseline systems.
const (
	FormatARGB32 Format = iota // 4 bytes per pixel, full alpha
	FormatRGB24                // 3 bytes per pixel, opaque
	Format8Bit                 // 1 byte per pixel, 3-3-2
	FormatYV12                 // planar YUV 4:2:0, 12 bits per pixel
)

// BytesPerPixel returns the wire cost of one pixel in f; for YV12 it
// returns 0 because the format is planar (use YV12Size).
func (f Format) BytesPerPixel() int {
	switch f {
	case FormatARGB32:
		return 4
	case FormatRGB24:
		return 3
	case Format8Bit:
		return 1
	default:
		return 0
	}
}

func (f Format) String() string {
	switch f {
	case FormatARGB32:
		return "argb32"
	case FormatRGB24:
		return "rgb24"
	case Format8Bit:
		return "8bit"
	case FormatYV12:
		return "yv12"
	default:
		return "unknown"
	}
}

// YV12Size returns the number of bytes of a w x h YV12 image:
// a full-resolution Y plane plus quarter-resolution V and U planes.
func YV12Size(w, h int) int {
	cw, ch := (w+1)/2, (h+1)/2
	return w*h + 2*cw*ch
}
