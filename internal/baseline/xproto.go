package baseline

import (
	"thinc/internal/driver"
	"thinc/internal/fb"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/sim"
	"thinc/internal/simnet"
	"thinc/internal/xserver"
)

// XSystem is the client-side-UI family (§2): the window server runs at
// the client and applications forward display requests over the
// network. Every drawing request — including offscreen pixmap drawing —
// traverses the link, rendering cost lands on the slower client CPU,
// and application/UI coupling shows up as synchronous round trips.
// NX is an X proxy: it suppresses round trips and compresses the
// protocol stream aggressively.
type XSystem struct {
	SysName   string
	SyncEvery int     // messages between synchronous round trips
	CmdRatio  float64 // compression ratio on the command stream
	ImgRatio  float64 // additional ratio on image payloads (after pixRatio)
	ProxyCPU  sim.Time
	// SoftFrameCPU is the per-frame processing cost of pushing software
	// video through the protocol stack (player-side scaling, transport
	// copies, proxy recoding) — calibrated in EXPERIMENTS.md.
	SoftFrameCPU sim.Time
}

// X models XFree86 over ssh -C (the paper's configuration): zlib on the
// stream, frequent synchronization.
func X() *XSystem {
	return &XSystem{SysName: "X", SyncEvery: 40, CmdRatio: 0.5, ImgRatio: 1,
		SoftFrameCPU: 185 * sim.Millisecond}
}

// NX models NoMachine NX 1.4: near-total round-trip suppression and
// strong differential compression of the X protocol.
func NX() *XSystem {
	return &XSystem{SysName: "NX", SyncEvery: 1 << 20, CmdRatio: 0.12, ImgRatio: 0.55,
		ProxyCPU: 15 * sim.Microsecond, SoftFrameCPU: 290 * sim.Millisecond}
}

// Name implements System.
func (s *XSystem) Name() string { return s.SysName }

// NativeVideo implements System.
func (s *XSystem) NativeVideo() bool { return false }

// SupportsAudio implements System (X with aRts, NX with its media
// channel).
func (s *XSystem) SupportsAudio() bool { return true }

// Resize implements System: X-class systems have no small-screen
// support (§8.3 reports no PDA numbers for them).
func (s *XSystem) Resize() ResizeMode { return ResizeNone }

// ColorBits implements System.
func (s *XSystem) ColorBits() int { return 24 }

// NewSession implements System.
func (s *XSystem) NewSession(cfg SessionConfig) Session {
	xs := &xSession{sys: s, cfg: cfg, pipe: simnet.NewPipe(cfg.Eng, cfg.Link)}
	xs.drv = &xForwardDriver{s: xs}
	return xs
}

// xMsg is one queued network write; Xlib batches small requests into a
// single write, so one xMsg may carry several requests.
type xMsg struct {
	size    int
	reqs    int      // requests carried (sync accounting)
	render  sim.Time // client-side rendering cost
	cpu     sim.Time // server/proxy CPU paid when the request is sent
	isFrame bool     // full video-rect image (player output)
	isAudio bool
	pts     sim.Time // absolute deadline for audio
}

type xSession struct {
	sys  *XSystem
	cfg  SessionConfig
	pipe *simnet.Pipe
	dpy  *xserver.Display
	drv  *xForwardDriver

	queue       []xMsg
	sending     bool
	sinceSync   int
	serverBusy  sim.Time
	videoRect   geom.Rect
	frameQueued int // index+1 of queued frame message, 0 = none

	st SessionStats
}

// Driver implements Session.
func (x *xSession) Driver() driver.Driver { return x.drv }

// BindDisplay implements Session.
func (x *xSession) BindDisplay(d *xserver.Display) { x.dpy = d }

// Start implements Session.
func (x *xSession) Start() {}

// SetVideoRect implements Session.
func (x *xSession) SetVideoRect(r geom.Rect) { x.videoRect = r }

// Stats implements Session.
func (x *xSession) Stats() SessionStats { return x.st }

// Input implements Session: the click reaches the application at the
// server; layout runs there, drawing requests flow back and render at
// the client.
func (x *xSession) Input(ev InputEvent) {
	x.pipe.C2S.Send(32, nil, func(at sim.Time, _ simnet.Payload) {
		busy := at + ev.LayoutCost
		if busy > x.serverBusy {
			x.serverBusy = busy
		}
		ev.OnServer() // enqueues forwarded requests via the driver
		x.pump()
	})
}

// Damage implements Session.
func (x *xSession) Damage() { x.pump() }

// Audio implements Session: PCM forwarded through the sound channel
// (aRts for X, the media channel for NX).
func (x *xSession) Audio(ptsUS uint64, size int) {
	x.enqueue(xMsg{size: size, isAudio: true, pts: sim.Time(ptsUS)})
}

// enqueue adds a request to the outgoing stream; a queued video frame
// not yet sent is replaced by a newer one (the player drops frames when
// the transport is saturated).
func (x *xSession) enqueue(m xMsg) {
	if m.isFrame {
		if x.frameQueued > 0 {
			x.queue[x.frameQueued-1] = m
			x.pump()
			return
		}
		x.queue = append(x.queue, m)
		x.frameQueued = len(x.queue)
		x.pump()
		return
	}
	// Xlib batching: small plain requests coalesce into one write.
	const writeBuf = 4096
	if n := len(x.queue); n > 0 && n != x.frameQueued {
		last := &x.queue[n-1]
		if !last.isFrame && !last.isAudio && !m.isAudio &&
			last.size+m.size <= writeBuf {
			last.size += m.size
			last.reqs += m.reqs
			last.render += m.render
			last.cpu += m.cpu
			x.pump()
			return
		}
	}
	x.queue = append(x.queue, m)
	x.pump()
}

// pump drains the queue, stalling for a round trip every SyncEvery
// messages (the synchronous X calls interspersed in real clients).
func (x *xSession) pump() {
	if x.sending || len(x.queue) == 0 {
		return
	}
	now := x.cfg.Eng.Now()
	if x.serverBusy > now {
		x.sending = true
		x.cfg.Eng.At(x.serverBusy, func() { x.sending = false; x.pump() })
		return
	}
	if x.sinceSync >= x.sys.SyncEvery {
		// Synchronous request: stall one round trip.
		x.sending = true
		x.sinceSync = 0
		x.pipe.C2S.Send(16, nil, func(sim.Time, simnet.Payload) {
			x.pipe.S2C.Send(16, nil, func(sim.Time, simnet.Payload) {
				x.sending = false
				x.pump()
			})
		})
		return
	}
	m := x.queue[0]
	x.queue = x.queue[1:]
	if x.frameQueued > 0 {
		x.frameQueued--
	}
	x.sinceSync += max(1, m.reqs)
	x.serverBusy = maxTime(x.serverBusy, now) + x.sys.ProxyCPU + m.cpu
	x.pipe.S2C.Send(m.size, nil, func(at sim.Time, _ simnet.Payload) {
		x.st.BytesToClient += int64(m.size)
		x.st.MsgsToClient++
		x.st.LastDelivery = at
		// The client window server renders the request.
		x.st.ClientCPU += ClientTime(m.render + CostClientPerMsg + ByteCost(int64(m.size)))
		if m.isFrame {
			x.st.VideoFrames++
			if x.st.FirstFrame == 0 {
				x.st.FirstFrame = at
			}
			x.st.LastFrame = at
		}
		if m.isAudio && at <= m.pts+audioSlack {
			x.st.AudioChunks++
		}
	})
	// Keep draining.
	x.pump()
}

// xForwardDriver forwards every driver-level request as X protocol
// traffic — including offscreen drawing, because the pixmaps live at
// the client's window server.
type xForwardDriver struct {
	driver.Nop
	s *xSession
}

const xReqOverhead = 28

func (d *xForwardDriver) fwd(size int, render sim.Time, frame bool) {
	d.s.enqueue(xMsg{size: size, reqs: 1, render: render, isFrame: frame})
}

func (d *xForwardDriver) cmdSize(n int) int {
	return int(float64(n) * d.s.sys.CmdRatio)
}

// FillSolid implements driver.Driver.
func (d *xForwardDriver) FillSolid(_ driver.DrawableID, r geom.Rect, _ pixel.ARGB) {
	d.fwd(d.cmdSize(xReqOverhead), PixelCost(r.Area()), false)
}

// FillTile implements driver.Driver.
func (d *xForwardDriver) FillTile(_ driver.DrawableID, r geom.Rect, tile *fb.Tile) {
	d.fwd(d.cmdSize(xReqOverhead+len(tile.Pix)*4), PixelCost(r.Area()), false)
}

// FillStipple implements driver.Driver: core text is compact on the X
// wire — a glyph index plus positioning.
func (d *xForwardDriver) FillStipple(_ driver.DrawableID, r geom.Rect, _ *fb.Bitmap, _, _ pixel.ARGB, _ bool) {
	d.fwd(d.cmdSize(12), PixelCost(r.Area())+CostPerOp, false)
}

// PutImage implements driver.Driver: uncompressed pixels on the X wire
// (the stream compressor sees them afterwards).
func (d *xForwardDriver) PutImage(_ driver.DrawableID, r geom.Rect, pix []pixel.ARGB, stride int) {
	raw := r.Area() * 4
	ratio, _ := pixRatio(samplePix(pix, r.Area()), false)
	ratio *= d.s.sys.ImgRatio
	size := int(float64(raw)*ratio) + xReqOverhead
	isFrame := !d.s.videoRect.Empty() &&
		r.Intersect(d.s.videoRect).Area()*10 >= d.s.videoRect.Area()*8
	d.fwd(size, PixelCost(r.Area()), isFrame)
}

// Composite implements driver.Driver.
func (d *xForwardDriver) Composite(id driver.DrawableID, r geom.Rect, pix []pixel.ARGB, stride int) {
	d.PutImage(id, r, pix, stride)
}

// CopyArea implements driver.Driver.
func (d *xForwardDriver) CopyArea(_, _ driver.DrawableID, sr geom.Rect, _ geom.Point) {
	d.fwd(d.cmdSize(xReqOverhead), PixelCost(sr.Area()), false)
}

// CreatePixmap implements driver.Driver.
func (d *xForwardDriver) CreatePixmap(driver.DrawableID, int, int) {
	d.fwd(d.cmdSize(20), 0, false)
}

// DestroyPixmap implements driver.Driver.
func (d *xForwardDriver) DestroyPixmap(driver.DrawableID) {
	d.fwd(d.cmdSize(20), 0, false)
}

// samplePix bounds the pixels considered for a compressibility probe.
func samplePix(pix []pixel.ARGB, area int) []pixel.ARGB {
	n := area
	if n > len(pix) {
		n = len(pix)
	}
	return pix[:n]
}

// SoftwareFrame implements Session: the player XPutImages a full-screen
// frame; queued-but-unsent frames are replaced. The stream compressor
// (ssh -C for X, the NX proxy) pays CPU for every frame it squeezes.
func (x *xSession) SoftwareFrame(seq int, ptsUS uint64, rawBytes int, ratio24, _ float64) {
	size := int(float64(rawBytes) * ratio24 * x.sys.ImgRatio)
	cpu := ZlibCost(int64(rawBytes)) + x.sys.SoftFrameCPU
	x.enqueue(xMsg{size: size + xReqOverhead, cpu: cpu, isFrame: true})
}
