package baseline

import (
	"thinc/internal/driver"
	"thinc/internal/fb"
	"thinc/internal/geom"
	"thinc/internal/sim"
	"thinc/internal/simnet"
	"thinc/internal/xserver"
)

// ScrapeSystem is the screen-scraping, client-pull family (§2): the
// server reduces everything to framebuffer pixels, the client requests
// updates and receives compressed dirty regions. VNC and GoToMyPC are
// its members; GoToMyPC adds 8-bit color, a heavier (costlier, denser)
// compressor, and an intermediate relay server that all traffic
// traverses.
type ScrapeSystem struct {
	SysName    string
	EightBit   bool
	CPUFactor  float64    // compression CPU multiplier (GTMP ~3x)
	ExtraRatio float64    // additional density from the heavier codec
	RelayRTT   sim.Time   // added round trip through the relay
	ServeDelay sim.Time   // per-batch relay/service processing delay
	ResizeBy   ResizeMode // VNC clips, GTMP client-resizes
	// SoftFrameCPU is the per-served-frame cost of scraping and
	// encoding full-screen video — calibrated in EXPERIMENTS.md.
	SoftFrameCPU sim.Time
}

// VNC models RealVNC 4: client pull, zlib-class encodings, clipping on
// small screens, no audio.
func VNC() *ScrapeSystem {
	return &ScrapeSystem{SysName: "VNC", CPUFactor: 1, ExtraRatio: 1.25, ResizeBy: ResizeClip,
		SoftFrameCPU: 30 * sim.Millisecond}
}

// GoToMyPC models the hosted service: 8-bit color, expensive dense
// compression, relayed connection (~70 ms observed RTT), client-side
// resize.
func GoToMyPC() *ScrapeSystem {
	return &ScrapeSystem{
		SysName:      "GoToMyPC",
		EightBit:     true,
		CPUFactor:    40, // "complex compression ... at the expense of high server utilization" (§8.3)
		ExtraRatio:   0.6,
		RelayRTT:     70 * sim.Millisecond,
		ServeDelay:   600 * sim.Millisecond,
		ResizeBy:     ResizeClient,
		SoftFrameCPU: 100 * sim.Millisecond,
	}
}

// Name implements System.
func (s *ScrapeSystem) Name() string { return s.SysName }

// NativeVideo implements System.
func (s *ScrapeSystem) NativeVideo() bool { return false }

// SupportsAudio implements System.
func (s *ScrapeSystem) SupportsAudio() bool { return false }

// Resize implements System.
func (s *ScrapeSystem) Resize() ResizeMode { return s.ResizeBy }

// ColorBits implements System.
func (s *ScrapeSystem) ColorBits() int {
	if s.EightBit {
		return 8
	}
	return 24
}

// NewSession implements System.
func (s *ScrapeSystem) NewSession(cfg SessionConfig) Session {
	return &scrapeSession{sys: s, cfg: cfg, pipe: simnet.NewPipe(cfg.Eng, cfg.Link)}
}

type scrapeSession struct {
	sys  *ScrapeSystem
	cfg  SessionConfig
	pipe *simnet.Pipe
	dpy  *xserver.Display

	shadow     *fb.Framebuffer // last state sent to the client
	pending    bool            // client request waiting for damage
	inFlight   bool            // an update batch is on the wire
	serverBusy sim.Time

	videoRect geom.Rect
	softDirty *softFrame
	softRaw   int
	softMode  bool
	st        SessionStats
}

// Driver implements Session: scraping intercepts nothing — it reads the
// rendered framebuffer.
func (s *scrapeSession) Driver() driver.Driver { return driver.Nop{} }

// BindDisplay implements Session.
func (s *scrapeSession) BindDisplay(d *xserver.Display) {
	s.dpy = d
	s.shadow = fb.New(s.cfg.W, s.cfg.H)
}

// Start implements Session: the client issues its first update request.
func (s *scrapeSession) Start() { s.clientRequest() }

// SetVideoRect implements Session.
func (s *scrapeSession) SetVideoRect(r geom.Rect) { s.videoRect = r }

// Audio implements Session: no audio channel (§8.2: VNC and GoToMyPC
// are measured video-only).
func (s *scrapeSession) Audio(uint64, int) {}

// Stats implements Session.
func (s *scrapeSession) Stats() SessionStats { return s.st }

// Input implements Session.
func (s *scrapeSession) Input(ev InputEvent) {
	s.pipe.C2S.Send(24, nil, func(at sim.Time, _ simnet.Payload) {
		s.cfg.Eng.After(s.relayDelay(), func() {
			busy := s.cfg.Eng.Now() + ev.LayoutCost + ev.RenderCost
			if busy > s.serverBusy {
				s.serverBusy = busy
			}
			ev.OnServer()
			s.Damage()
		})
	})
}

// relayDelay is the extra one-way hop through the relay server.
func (s *scrapeSession) relayDelay() sim.Time { return s.sys.RelayRTT / 2 }

// Damage implements Session: serve a waiting request.
func (s *scrapeSession) Damage() {
	if s.pending && !s.inFlight {
		s.pending = false
		s.serve()
	}
}

// clientRequest models the client-pull loop: one outstanding request at
// a time (§5's client-pull analysis).
func (s *scrapeSession) clientRequest() {
	s.pipe.C2S.Send(16, nil, func(at sim.Time, _ simnet.Payload) {
		s.cfg.Eng.After(s.relayDelay(), func() { s.onRequest() })
	})
}

func (s *scrapeSession) onRequest() {
	if s.inFlight {
		return
	}
	if s.softMode {
		s.serveSoft()
		return
	}
	dirtyNow := !s.dpy.Screen().EqualIn(s.shadow, s.scrapeArea())
	if dirtyNow {
		s.serve()
	} else {
		s.pending = true
	}
}

// scrapeArea is the region the server encodes: the viewport for
// clipping clients, the whole screen otherwise.
func (s *scrapeSession) scrapeArea() geom.Rect {
	if s.sys.ResizeBy == ResizeClip && s.cfg.Scaled() {
		return s.cfg.Viewport()
	}
	return geom.XYWH(0, 0, s.cfg.W, s.cfg.H)
}

// serve encodes the dirty region and transmits it.
func (s *scrapeSession) serve() {
	area := s.scrapeArea()
	screen := s.dpy.Screen()

	// Dirty-region detection against the shadow state, at 64x64-tile
	// granularity (the granularity real scrapers use), with horizontal
	// runs of dirty tiles merged into bands.
	const tile = 64
	shadowArea := s.shadow.ReadImage(area)
	current := screen.ReadImage(area)
	w := area.W()
	var dirtyRects []geom.Rect
	for ty := 0; ty < area.H(); ty += tile {
		th := min(tile, area.H()-ty)
		runStart := -1
		for tx := 0; tx <= area.W(); tx += tile {
			isDirty := false
			if tx < area.W() {
				tw := min(tile, area.W()-tx)
			scan:
				for y := ty; y < ty+th; y++ {
					row := y * w
					for x := tx; x < tx+tw; x++ {
						if shadowArea[row+x] != current[row+x] {
							isDirty = true
							break scan
						}
					}
				}
			}
			if isDirty && runStart < 0 {
				runStart = tx
			}
			if !isDirty && runStart >= 0 {
				dirtyRects = append(dirtyRects, geom.Rect{
					X0: area.X0 + runStart, Y0: area.Y0 + ty,
					X1: area.X0 + tx, Y1: area.Y0 + ty + th,
				})
				runStart = -1
			}
		}
	}
	if len(dirtyRects) == 0 {
		s.pending = true
		return
	}

	// Encode each dirty rect: raw pixels (8-bit for GTMP), compressed.
	totalSize := 0
	totalRaw := int64(0)
	frameCovered := 0
	for _, r := range dirtyRects {
		pix := screen.ReadImage(r)
		ratio, rawBytes := pixRatio(pix, s.sys.EightBit)
		ratio *= s.sys.ExtraRatio
		totalSize += int(float64(rawBytes)*ratio) + 16
		totalRaw += int64(rawBytes)
		if !s.videoRect.Empty() {
			frameCovered += r.Intersect(s.videoRect).Area()
		}
	}
	// Update shadow to what the client will have.
	s.shadow.PutImage(area, current, w)

	// Compression CPU and relay/service processing delay transmission.
	cpu := sim.Time(float64(ZlibCost(totalRaw))*s.sys.CPUFactor) + s.sys.ServeDelay
	s.serverBusy = maxTime(s.serverBusy, s.cfg.Eng.Now()) + cpu
	sendAt := s.serverBusy
	s.inFlight = true
	isFrame := !s.videoRect.Empty() && frameCovered*10 >= s.videoRect.Area()*8

	s.cfg.Eng.At(sendAt, func() {
		s.pipe.S2C.Send(totalSize, nil, func(at sim.Time, _ simnet.Payload) {
			s.cfg.Eng.After(s.relayDelay(), func() {
				now := s.cfg.Eng.Now()
				s.st.BytesToClient += int64(totalSize)
				s.st.MsgsToClient++
				s.st.LastDelivery = now
				apply := CostClientPerMsg + ByteCost(int64(totalSize)) + UnzlibCost(int64(totalSize))
				if s.sys.ResizeBy == ResizeClient && s.cfg.Scaled() {
					apply += ResampleCost(s.cfg.W * s.cfg.H)
				}
				s.st.ClientCPU += ClientTime(apply)
				if isFrame {
					s.st.VideoFrames++
					if s.st.FirstFrame == 0 {
						s.st.FirstFrame = now
					}
					s.st.LastFrame = now
				}
				s.inFlight = false
				// Pull loop: immediately request the next update.
				s.clientRequest()
			})
		})
	})
}

// SoftwareFrame implements Session: the playback blit dirties the whole
// screen; the next client request scrapes and ships it. Frames arriving
// while a request is unserved simply refresh the dirty content (the old
// frame is never seen — scraping drops it).
func (s *scrapeSession) SoftwareFrame(seq int, ptsUS uint64, rawBytes int, ratio24, ratio8 float64) {
	sizeRaw := rawBytes
	ratio := ratio24 * s.sys.ExtraRatio
	if s.sys.EightBit {
		sizeRaw = rawBytes / 4
		ratio = ratio8 * s.sys.ExtraRatio
	}
	if s.sys.ResizeBy == ResizeClip && s.cfg.Scaled() {
		sizeRaw = sizeRaw * (s.cfg.ViewW * s.cfg.ViewH) / (s.cfg.W * s.cfg.H)
	}
	s.softMode = true
	s.softDirty = &softFrame{seq: seq, size: int(float64(sizeRaw) * ratio)}
	s.softRaw = sizeRaw
	if s.pending && !s.inFlight {
		s.pending = false
		s.serveSoft()
	}
}

// serveSoft ships the current software-video frame to the client.
func (s *scrapeSession) serveSoft() {
	sf := s.softDirty
	if sf == nil {
		s.pending = true
		return
	}
	s.softDirty = nil
	cpu := sim.Time(float64(ZlibCost(int64(s.softRaw)))*s.sys.CPUFactor) + s.sys.SoftFrameCPU + s.sys.ServeDelay
	s.serverBusy = maxTime(s.serverBusy, s.cfg.Eng.Now()) + cpu
	s.inFlight = true
	s.cfg.Eng.At(s.serverBusy, func() {
		s.pipe.S2C.Send(sf.size, nil, func(at sim.Time, _ simnet.Payload) {
			s.cfg.Eng.After(s.relayDelay(), func() {
				now := s.cfg.Eng.Now()
				s.st.BytesToClient += int64(sf.size)
				s.st.MsgsToClient++
				s.st.LastDelivery = now
				apply := CostClientPerMsg + ByteCost(int64(sf.size)) + UnzlibCost(int64(sf.size))
				if s.sys.ResizeBy == ResizeClient && s.cfg.Scaled() {
					apply += ResampleCost(s.cfg.W * s.cfg.H)
				}
				s.st.ClientCPU += ClientTime(apply)
				s.st.VideoFrames++
				if s.st.FirstFrame == 0 {
					s.st.FirstFrame = now
				}
				s.st.LastFrame = now
				s.inFlight = false
				s.clientRequest()
			})
		})
	})
}
