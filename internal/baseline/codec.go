package baseline

import (
	"bytes"
	"compress/zlib"

	"thinc/internal/pixel"
)

// measure compresses up to sampleCap bytes and returns out/in — the
// zlib wire-cost model. Every payload is sampled individually (display
// content mixes flat and photographic regions whose ratios differ by an
// order of magnitude); the sample cap keeps simulations fast.
func measure(data []byte) float64 {
	const sampleCap = 64 << 10
	if len(data) == 0 {
		return 1
	}
	sample := data
	if len(sample) > sampleCap {
		sample = sample[:sampleCap]
	}
	var buf bytes.Buffer
	zw, err := zlib.NewWriterLevel(&buf, zlib.BestSpeed)
	if err != nil {
		return 1
	}
	if _, err := zw.Write(sample); err != nil {
		return 1
	}
	zw.Close()
	r := float64(buf.Len()) / float64(len(sample))
	if r > 1 {
		r = 1
	}
	return r
}

// pixRatio measures the ratio for raw ARGB pixel content, optionally
// quantized to 8-bit color first (GoToMyPC). Unlike the size-bucketed
// cache, every payload is sampled: web update regions mix flat and
// photographic content whose ratios differ by an order of magnitude.
func pixRatio(pix []pixel.ARGB, eightBit bool) (ratio float64, rawBytes int) {
	n := len(pix)
	sample := n
	if sample > 16<<10 {
		sample = 16 << 10
	}
	if eightBit {
		buf := make([]byte, sample)
		for i := 0; i < sample; i++ {
			buf[i] = pixel.To8Bit(pix[i])
		}
		return measure(buf), n
	}
	buf := make([]byte, 0, sample*4)
	for _, p := range pix[:sample] {
		buf = append(buf, byte(p>>24), byte(p>>16), byte(p>>8), byte(p))
	}
	return measure(buf), n * 4
}
