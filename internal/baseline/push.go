package baseline

import (
	"thinc/internal/compress"
	"thinc/internal/core"
	"thinc/internal/driver"
	"thinc/internal/geom"
	"thinc/internal/sim"
	"thinc/internal/simnet"
	"thinc/internal/telemetry"
	"thinc/internal/wire"
	"thinc/internal/xserver"
)

// PushSystem is the family of driver-level, server-push architectures:
// THINC, Sun Ray (similar low-level command set, no offscreen awareness
// or video support, §2), and the rich-command systems ICA and RDP
// (higher per-command overhead, window-based flow control, no native
// MPEG-1 video). All reuse the core translation machinery with the
// knobs the paper's analysis identifies.
type PushSystem struct {
	SysName   string
	Opts      core.Options
	Video     bool       // native video port available
	Audio     bool       // audio channel available
	ResizeBy  ResizeMode // small-screen strategy
	MsgBytes  int        // extra wire bytes per message (richer protocols)
	MsgCPU    sim.Time   // extra server CPU per message (translation cost)
	FlowWin   int        // bytes in flight before stalling (0 = pure push)
	WANZlib   bool       // adaptive: zlib RAW payloads on high-RTT links
	AlwaysZip bool       // zlib RAW payloads everywhere
	ZipCPUx   float64    // compression CPU multiplier (1 when zero)
	// SoftFrameCPU is the per-frame server cost of pushing software
	// video through the protocol stack (translation of full-screen
	// updates through the command pipeline) — calibrated in
	// EXPERIMENTS.md.
	SoftFrameCPU sim.Time
	// PullMode gates every flush behind a client update request (the
	// VNC-style client-pull ablation for §5): the server sends one
	// batch per request, and the next request arrives a round trip
	// after the batch is delivered.
	PullMode bool
}

// THINC builds the paper's system: offscreen awareness, PNG-compressed
// RAW, native video, server-side resize, pure push.
func THINC() *PushSystem {
	return &PushSystem{
		SysName:  "THINC",
		Opts:     core.Options{RawCodec: compress.CodecPNG},
		Video:    true,
		Audio:    true,
		ResizeBy: ResizeServer,
	}
}

// THINCWith returns THINC with modified core options (ablations).
func THINCWith(name string, opts core.Options) *PushSystem {
	s := THINC()
	s.SysName = name
	s.Opts = opts
	return s
}

// SunRay models Sun Ray 3: push, low-level commands, no offscreen
// tracking (copies to screen degrade to pixels), no transparent video,
// adaptive compression on slow links (§2, §8.3).
func SunRay() *PushSystem {
	return &PushSystem{
		SysName:      "SunRay",
		Opts:         core.Options{DisableOffscreen: true, PixelTranslate: true},
		Audio:        true,
		WANZlib:      true,
		ZipCPUx:      3, // the "more cpu-intensive compression schemes" of §8.3
		SoftFrameCPU: 110 * sim.Millisecond,
	}
}

// ICA models Citrix MetaFrame: rich command set (per-command overhead
// and translation cost), compression, window-based flow control, no
// offscreen awareness, client-side resize for small screens.
func ICA() *PushSystem {
	return &PushSystem{
		SysName:      "ICA",
		Opts:         core.Options{DisableOffscreen: true},
		Audio:        true,
		ResizeBy:     ResizeClient,
		MsgBytes:     24,
		MsgCPU:       40 * sim.Microsecond,
		FlowWin:      256 << 10,
		AlwaysZip:    true,
		SoftFrameCPU: 100 * sim.Millisecond,
	}
}

// RDP models Microsoft Remote Desktop: like ICA architecturally, with
// viewport clipping instead of resizing on small screens.
func RDP() *PushSystem {
	return &PushSystem{
		SysName:      "RDP",
		Opts:         core.Options{DisableOffscreen: true},
		Audio:        true,
		ResizeBy:     ResizeClip,
		MsgBytes:     20,
		MsgCPU:       35 * sim.Microsecond,
		FlowWin:      384 << 10,
		AlwaysZip:    true,
		SoftFrameCPU: 75 * sim.Millisecond,
	}
}

// Name implements System.
func (s *PushSystem) Name() string { return s.SysName }

// NativeVideo implements System.
func (s *PushSystem) NativeVideo() bool { return s.Video }

// SupportsAudio implements System.
func (s *PushSystem) SupportsAudio() bool { return s.Audio }

// Resize implements System.
func (s *PushSystem) Resize() ResizeMode { return s.ResizeBy }

// ColorBits implements System.
func (s *PushSystem) ColorBits() int { return 24 }

// Flush pacing.
const (
	flushTick  = 2 * sim.Millisecond
	sockBuffer = 64 << 10
)

// NewSession implements System.
func (s *PushSystem) NewSession(cfg SessionConfig) Session {
	// Each session gets its own registry wired into the core, so bench
	// runs can snapshot translation/scheduler telemetry per run.
	reg := telemetry.NewRegistry()
	opts := s.Opts
	if opts.Metrics == nil {
		opts.Metrics = core.NewMetrics(reg)
	}
	srv := core.NewServer(opts)
	ps := &pushSession{sys: s, cfg: cfg, srv: srv, reg: reg,
		pipe: simnet.NewPipe(cfg.Eng, cfg.Link)}
	ps.zip = s.AlwaysZip || (s.WANZlib && cfg.Link.RTT >= 20*sim.Millisecond)
	return ps
}

type pushSession struct {
	sys  *PushSystem
	cfg  SessionConfig
	srv  *core.Server
	cl   *core.Client
	pipe *simnet.Pipe
	dpy  *xserver.Display

	pullToken bool // PullMode: a request is waiting to be served

	zip            bool
	serverBusy     sim.Time
	flushScheduled bool

	videoRect geom.Rect
	soft      *softFrame

	probeRect geom.Rect
	probeAt   sim.Time

	lastVideoDelay sim.Time
	haveVideoDelay bool

	st SessionStats

	// Per-wire-type delivery accounting, indexed by wire.Type; reg is
	// the session's core telemetry registry (see NewSession).
	typeMsgs  [256]int64
	typeBytes [256]int64
	reg       *telemetry.Registry
}

// WireByType returns delivered message and byte counts keyed by wire
// type name ("RAW", "COPY", ...), for telemetry snapshots.
func (p *pushSession) WireByType() (msgs, bytes map[string]int64) {
	msgs = make(map[string]int64)
	bytes = make(map[string]int64)
	for t := range p.typeMsgs {
		if p.typeMsgs[t] == 0 {
			continue
		}
		name := wire.Type(t).String()
		msgs[name] = p.typeMsgs[t]
		bytes[name] = p.typeBytes[t]
	}
	return msgs, bytes
}

// Telemetry returns the session's core metrics registry.
func (p *pushSession) Telemetry() *telemetry.Registry { return p.reg }

// SetProbe arms a one-shot probe: the arrival time of the first display
// message touching r is recorded (interactive-response measurement for
// the scheduling ablation).
func (p *pushSession) SetProbe(r geom.Rect) { p.probeRect = r; p.probeAt = 0 }

// ProbeTime returns the probe's arrival time (0 until hit).
func (p *pushSession) ProbeTime() sim.Time { return p.probeAt }

// Driver implements Session.
func (p *pushSession) Driver() driver.Driver { return p.srv }

// BindDisplay implements Session.
func (p *pushSession) BindDisplay(d *xserver.Display) {
	p.dpy = d
	// Attach the client after the display exists so the initial refresh
	// reads real content. Server-side resize only for systems that do it.
	if p.sys.ResizeBy == ResizeServer && p.cfg.Scaled() {
		p.cl = p.srv.AttachClient(p.cfg.ViewW, p.cfg.ViewH)
	} else {
		p.cl = p.srv.AttachClient(p.cfg.W, p.cfg.H)
	}
}

// Start implements Session.
func (p *pushSession) Start() {
	if p.sys.PullMode {
		p.requestUpdate()
		return
	}
	p.kick()
}

// requestUpdate is the client-pull loop: one outstanding request.
func (p *pushSession) requestUpdate() {
	p.pipe.C2S.Send(16, nil, func(sim.Time, simnet.Payload) {
		p.pullToken = true
		p.kick()
	})
}

// SetVideoRect implements Session.
func (p *pushSession) SetVideoRect(r geom.Rect) { p.videoRect = r }

// Input implements Session.
func (p *pushSession) Input(ev InputEvent) {
	eng := p.cfg.Eng
	p.pipe.C2S.Send(24, nil, func(at sim.Time, _ simnet.Payload) {
		if p.dpy != nil {
			p.dpy.InjectInput(ev.P)
		}
		// The response costs server CPU before updates can flush.
		busy := at + ev.LayoutCost + ev.RenderCost
		if busy > p.serverBusy {
			p.serverBusy = busy
		}
		ev.OnServer()
		p.kick()
		_ = eng
	})
}

// Damage implements Session.
func (p *pushSession) Damage() { p.kick() }

// WithPull returns a THINC variant that waits for client update
// requests (ablation: server-push vs client-pull, §5).
func WithPull(name string) *PushSystem {
	s := THINC()
	s.SysName = name
	s.PullMode = true
	return s
}

// Audio implements Session.
func (p *pushSession) Audio(ptsUS uint64, size int) {
	if !p.sys.Audio {
		return
	}
	p.srv.PushAudio(ptsUS, make([]byte, size))
	p.kick()
}

// Stats implements Session.
func (p *pushSession) Stats() SessionStats { return p.st }

// kick schedules a flush when one is not already pending, gated on
// server CPU availability.
func (p *pushSession) kick() {
	if p.flushScheduled {
		return
	}
	p.flushScheduled = true
	at := p.cfg.Eng.Now()
	if p.serverBusy > at {
		at = p.serverBusy
	}
	p.cfg.Eng.At(at, p.flush)
}

// flush is the non-blocking commit loop (§5): drain as much of the
// client buffer as the transport accepts without blocking.
func (p *pushSession) flush() {
	p.flushScheduled = false
	if p.cl == nil {
		return
	}
	if p.sys.PullMode && !p.pullToken {
		return // wait for the client's request
	}
	// Socket-buffer model: in-flight bytes occupy the link queue.
	inflight := int(float64(p.pipe.S2C.QueueDelay()) / float64(sim.Second) * p.pipe.S2C.Params().EffectiveRate())
	budget := sockBuffer - inflight
	sent := 0
	if budget > 0 && p.soft != nil && p.soft.size <= budget {
		sf := *p.soft
		p.soft = nil
		budget -= sf.size
		p.sendSoft(sf)
		sent++
	}
	if budget > 0 {
		msgs := p.cl.Flush(budget)
		for _, m := range msgs {
			p.sendMsg(m)
		}
		sent += len(msgs)
	}
	// A command larger than the socket buffer would wedge the session;
	// when the link is idle, stream it anyway (a real kernel accepts a
	// large write and trickles it out).
	if sent == 0 && inflight == 0 {
		if p.soft != nil {
			sf := *p.soft
			p.soft = nil
			p.sendSoft(sf)
			sent++
		} else {
			msgs := p.cl.Buf.FlushOne()
			for _, m := range msgs {
				p.sendMsg(m)
			}
			sent += len(msgs)
		}
	}
	if p.sys.PullMode && sent > 0 {
		// One batch per request; the client asks again after it sees
		// the batch (one-way there + request back = a full RTT gap).
		p.pullToken = false
		p.cfg.Eng.After(p.pipe.S2C.OneWay(), func() { p.requestUpdate() })
		return
	}
	if p.cl.Buf.Len() > 0 || p.soft != nil {
		p.flushScheduled = true
		at := p.cfg.Eng.Now() + flushTick
		if p.serverBusy > at {
			at = p.serverBusy
		}
		p.cfg.Eng.At(at, p.flush)
	}
}

// sendMsg models the wire cost of one message and its delivery.
func (p *pushSession) sendMsg(m wire.Message) {
	size := wire.WireSize(m) + p.sys.MsgBytes
	clipFrac := 1.0
	var decodeCPU sim.Time

	switch v := m.(type) {
	case *wire.Raw:
		if p.zip {
			// Model zlib on the RAW payload (size-bucketed ratio probe
			// keeps the simulation fast).
			f := measure(v.Data)
			size = int(float64(len(v.Data))*f) + 32 + p.sys.MsgBytes
			zc := ZlibCost(int64(len(v.Data)))
			if p.sys.ZipCPUx > 1 {
				zc = sim.Time(float64(zc) * p.sys.ZipCPUx)
			}
			p.serverBusy = maxTime(p.serverBusy, p.cfg.Eng.Now()) + zc
			decodeCPU = UnzlibCost(int64(size))
		}
		if p.sys.ResizeBy == ResizeClip && p.cfg.Scaled() {
			// Clipping client: only the viewport intersection is sent.
			inter := v.Rect.Intersect(p.cfg.Viewport())
			if inter.Empty() {
				return
			}
			clipFrac = float64(inter.Area()) / float64(v.Rect.Area())
			size = int(float64(size) * clipFrac)
		}
	case *wire.VideoFrame:
		// Native video passes through untouched.
	default:
		if p.sys.ResizeBy == ResizeClip && p.cfg.Scaled() {
			b := msgBounds(m)
			if !b.Empty() && !b.Overlaps(p.cfg.Viewport()) {
				return
			}
		}
	}

	p.serverBusy = maxTime(p.serverBusy, p.cfg.Eng.Now()) + p.sys.MsgCPU
	send := func() {
		p.pipe.S2C.Send(size, m, func(at sim.Time, _ simnet.Payload) {
			p.st.BytesToClient += int64(size)
			p.st.MsgsToClient++
			p.typeMsgs[m.Type()]++
			p.typeBytes[m.Type()] += int64(size)
			p.st.LastDelivery = at
			apply := CostClientPerMsg + ByteCost(int64(size)) + decodeCPU
			if p.sys.ResizeBy == ResizeClient && p.cfg.Scaled() {
				// The client scales every update to its viewport.
				apply += ResampleCost(msgPixels(m))
			}
			p.st.ClientCPU += ClientTime(apply)
			p.noteVideo(m, at)
		})
	}
	if stall := p.flowStall(size); stall > 0 {
		// The sender blocks while the window drains: subsequent flushes
		// queue behind the stall.
		p.serverBusy = maxTime(p.serverBusy, p.cfg.Eng.Now()) + stall
		p.cfg.Eng.At(p.serverBusy, send)
	} else {
		send()
	}
}

// flowStall models window-based flow control on a large transfer: the
// sender can keep only FlowWin bytes outstanding per round trip, so a
// message of the given size effectively streams at FlowWin/RTT when
// that is below the link rate (ICA/RDP's WAN sluggishness, §2).
func (p *pushSession) flowStall(size int) sim.Time {
	if p.sys.FlowWin <= 0 {
		return 0
	}
	rtt := p.pipe.S2C.Params().RTT.Seconds()
	if rtt <= 0 {
		return 0
	}
	winRate := float64(p.sys.FlowWin) / rtt
	linkRate := p.pipe.S2C.Params().EffectiveRate()
	if winRate >= linkRate {
		return 0
	}
	stall := float64(size)/winRate - float64(size)/linkRate
	return sim.Time(stall * float64(sim.Second))
}

// sendSoft transmits a software-video frame update.
func (p *pushSession) sendSoft(sf softFrame) {
	p.serverBusy = maxTime(p.serverBusy, p.cfg.Eng.Now()) + sf.cpu
	size := sf.size + p.sys.MsgBytes
	if p.sys.ResizeBy == ResizeClip && p.cfg.Scaled() {
		// Only the viewport slice of the full-screen blit is sent.
		size = size * (p.cfg.ViewW * p.cfg.ViewH) / (p.cfg.W * p.cfg.H)
	}
	p.serverBusy = maxTime(p.serverBusy, p.cfg.Eng.Now()) + p.sys.MsgCPU
	send := func() {
		p.pipe.S2C.Send(size, nil, func(at sim.Time, _ simnet.Payload) {
			p.st.BytesToClient += int64(size)
			p.st.MsgsToClient++
			p.st.LastDelivery = at
			apply := CostClientPerMsg + ByteCost(int64(size))
			if p.zip {
				apply += UnzlibCost(int64(size))
			}
			if p.sys.ResizeBy == ResizeClient && p.cfg.Scaled() {
				apply += ResampleCost(p.cfg.W * p.cfg.H)
			}
			p.st.ClientCPU += ClientTime(apply)
			p.markFrame(at)
		})
	}
	if stall := p.flowStall(size); stall > 0 {
		p.serverBusy = maxTime(p.serverBusy, p.cfg.Eng.Now()) + stall
		p.cfg.Eng.At(p.serverBusy, send)
	} else {
		send()
	}
}

// noteVideo counts displayed video frames: native frames directly,
// software playback as full-coverage raw updates of the video rect.
func (p *pushSession) noteVideo(m wire.Message, at sim.Time) {
	if p.probeAt == 0 && !p.probeRect.Empty() {
		if b := msgBounds(m); !b.Empty() && b.Overlaps(p.probeRect) {
			p.probeAt = at
		}
	}
	switch v := m.(type) {
	case *wire.VideoFrame:
		p.markFrame(at)
		p.lastVideoDelay = at - sim.Time(v.PTS)
		p.haveVideoDelay = true
	case *wire.AudioData:
		// Audio counts only when it arrives close enough to its
		// timestamp to play (1s of client buffering).
		if at <= sim.Time(v.PTS)+audioSlack {
			p.st.AudioChunks++
		}
		if p.haveVideoDelay {
			skew := (at - sim.Time(v.PTS)) - p.lastVideoDelay
			if skew < 0 {
				skew = -skew
			}
			if skew > p.st.MaxAVSkew {
				p.st.MaxAVSkew = skew
			}
		}
	case *wire.Raw:
		if !p.videoRect.Empty() && !v.Blend {
			inter := v.Rect.Intersect(p.videoRect)
			if inter.Area()*10 >= p.videoRect.Area()*8 {
				p.markFrame(at)
			}
		}
	}
}

func (p *pushSession) markFrame(at sim.Time) {
	p.st.VideoFrames++
	if p.st.FirstFrame == 0 {
		p.st.FirstFrame = at
	}
	p.st.LastFrame = at
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

// msgBounds extracts a display message's destination rectangle.
func msgBounds(m wire.Message) geom.Rect {
	switch v := m.(type) {
	case *wire.Raw:
		return v.Rect
	case *wire.SFill:
		return v.Rect
	case *wire.PFill:
		return v.Rect
	case *wire.Bitmap:
		return v.Rect
	case *wire.Copy:
		return geom.XYWH(v.Dst.X, v.Dst.Y, v.Src.W(), v.Src.H())
	default:
		return geom.Rect{}
	}
}

// msgPixels returns the pixel area a message touches (client resize
// cost accounting).
func msgPixels(m wire.Message) int {
	return msgBounds(m).Area()
}

// softFrame is a pending software-video update.
type softFrame struct {
	seq  int
	size int
	cpu  sim.Time // server CPU paid when the frame is sent
}

// SoftwareFrame implements Session for the software playback path: the
// full-screen blit becomes one large update with replacement semantics
// (exactly what command-queue eviction does to full-coverage raws).
func (p *pushSession) SoftwareFrame(seq int, ptsUS uint64, rawBytes int, ratio24, _ float64) {
	size := rawBytes
	cpu := p.sys.SoftFrameCPU
	if p.zip {
		size = int(float64(rawBytes) * ratio24)
		zc := ZlibCost(int64(rawBytes))
		if p.sys.ZipCPUx > 1 {
			zc = sim.Time(float64(zc) * p.sys.ZipCPUx)
		}
		cpu += zc
	}
	if p.soft != nil {
		p.soft.seq, p.soft.size, p.soft.cpu = seq, size, cpu // drop the unsent frame
		return
	}
	p.soft = &softFrame{seq: seq, size: size, cpu: cpu}
	p.kick()
}
