package baseline

import (
	"testing"

	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/sim"
	"thinc/internal/simnet"
	"thinc/internal/xserver"
)

// pdaCfg is a small-viewport session config.
func pdaCfg(link simnet.LinkParams) SessionConfig {
	return SessionConfig{Eng: sim.NewEngine(), Link: link, W: 256, H: 192, ViewW: 64, ViewH: 48}
}

func drawBlock(sess Session, dpy *xserver.Display, r geom.Rect) {
	win := dpy.CreateWindow(geom.XYWH(0, 0, 256, 192))
	dpy.FillRect(win, &xserver.GC{Fg: pixel.RGB(200, 10, 10)}, r)
	sess.Damage()
}

func TestClipModeSendsOnlyViewport(t *testing.T) {
	// RDP clips: content outside the viewport is never transmitted.
	cfg := pdaCfg(simnet.LAN())
	sess := RDP().NewSession(cfg)
	dpy := xserver.NewDisplay(cfg.W, cfg.H, sess.Driver())
	sess.BindDisplay(dpy)
	sess.Start()
	cfg.Eng.Run()
	base := sess.Stats().BytesToClient

	// Entirely outside the 64x48 viewport.
	drawBlock(sess, dpy, geom.XYWH(100, 100, 50, 50))
	cfg.Eng.Run()
	outside := sess.Stats().BytesToClient - base

	// Inside the viewport.
	drawBlock(sess, dpy, geom.XYWH(0, 0, 50, 40))
	cfg.Eng.Run()
	inside := sess.Stats().BytesToClient - base - outside

	if outside >= inside {
		t.Errorf("clip mode: outside %d B, inside %d B — clipping not applied", outside, inside)
	}
}

func TestClientResizeCostsClientCPU(t *testing.T) {
	// ICA sends full-size data and the client pays to scale it.
	full := testCfg(simnet.LAN())
	scaled := pdaCfg(simnet.LAN())

	run := func(cfg SessionConfig) SessionStats {
		sess := ICA().NewSession(cfg)
		dpy := xserver.NewDisplay(cfg.W, cfg.H, sess.Driver())
		sess.BindDisplay(dpy)
		sess.Start()
		cfg.Eng.Run()
		drawBlock(sess, dpy, geom.XYWH(0, 0, 200, 150))
		cfg.Eng.Run()
		return sess.Stats()
	}
	f, s := run(full), run(scaled)
	// Same bytes (no server-side reduction)...
	if s.BytesToClient < f.BytesToClient*9/10 {
		t.Errorf("client resize should not reduce bytes: %d vs %d", s.BytesToClient, f.BytesToClient)
	}
	// ...but more client CPU.
	if s.ClientCPU <= f.ClientCPU {
		t.Errorf("client resize should cost client CPU: %v vs %v", s.ClientCPU, f.ClientCPU)
	}
}

func TestTHINCServerResizeReducesBytes(t *testing.T) {
	run := func(cfg SessionConfig) int64 {
		sess := THINC().NewSession(cfg)
		dpy := xserver.NewDisplay(cfg.W, cfg.H, sess.Driver())
		sess.BindDisplay(dpy)
		sess.Start()
		cfg.Eng.Run()
		base := sess.Stats().BytesToClient
		// Image content (fills are resolution-independent already).
		win := dpy.CreateWindow(geom.XYWH(0, 0, 256, 192))
		pix := make([]pixel.ARGB, 200*150)
		for i := range pix {
			pix[i] = pixel.RGB(uint8(i), uint8(i>>4), uint8(i>>8))
		}
		dpy.PutImage(win, geom.XYWH(0, 0, 200, 150), pix, 200)
		sess.Damage()
		cfg.Eng.Run()
		return sess.Stats().BytesToClient - base
	}
	full := run(testCfg(simnet.LAN()))
	scaled := run(pdaCfg(simnet.LAN()))
	if scaled*2 > full {
		t.Errorf("server resize saved too little: %d vs %d", scaled, full)
	}
}

func TestPullModeWaitsForRequest(t *testing.T) {
	cfg := testCfg(simnet.WAN())
	sess := WithPull("pull").NewSession(cfg)
	dpy := xserver.NewDisplay(cfg.W, cfg.H, sess.Driver())
	sess.BindDisplay(dpy)
	sess.Start()
	cfg.Eng.Run()
	first := sess.Stats().LastDelivery
	// Even the initial refresh cannot arrive before a request round trip.
	if first < cfg.Link.RTT {
		t.Errorf("pull delivery at %v, before a full request RTT (%v)", first, cfg.Link.RTT)
	}
	// Successive updates each pay the pull cycle.
	drawBlock(sess, dpy, geom.XYWH(0, 0, 30, 30))
	cfg.Eng.Run()
	if sess.Stats().BytesToClient == 0 {
		t.Fatal("pull session never delivered")
	}
}

func TestGoToMyPCRelayAddsLatency(t *testing.T) {
	run := func(sys System) sim.Time {
		cfg := testCfg(simnet.LAN())
		sess := sys.NewSession(cfg)
		dpy := xserver.NewDisplay(cfg.W, cfg.H, sess.Driver())
		sess.BindDisplay(dpy)
		sess.Start()
		cfg.Eng.Run()
		start := cfg.Eng.Now()
		drawBlock(sess, dpy, geom.XYWH(0, 0, 40, 40))
		cfg.Eng.Run()
		return sess.Stats().LastDelivery - start
	}
	vnc := run(VNC())
	gtmp := run(GoToMyPC())
	if gtmp <= vnc {
		t.Errorf("GTMP (%v) should be slower than VNC (%v): relay + service delay", gtmp, vnc)
	}
}

func TestXSyncStallsGrowWithRTT(t *testing.T) {
	run := func(link simnet.LinkParams) sim.Time {
		cfg := testCfg(link)
		sess := X().NewSession(cfg)
		dpy := xserver.NewDisplay(cfg.W, cfg.H, sess.Driver())
		sess.BindDisplay(dpy)
		sess.Start()
		cfg.Eng.Run()
		start := cfg.Eng.Now()
		// Many small requests force sync round trips (SyncEvery=125).
		win := dpy.CreateWindow(geom.XYWH(0, 0, 256, 192))
		for i := 0; i < 300; i++ {
			dpy.FillRect(win, &xserver.GC{Fg: pixel.RGB(uint8(i), 0, 0)},
				geom.XYWH(i%200, (i*3)%150, 4, 4))
		}
		sess.Damage()
		cfg.Eng.Run()
		return sess.Stats().LastDelivery - start
	}
	lan := run(simnet.LAN())
	wan := run(simnet.WAN())
	// At least one sync round trip (66 ms RTT) must show up in the WAN.
	if wan < lan+60*sim.Millisecond {
		t.Errorf("X WAN (%v) should pay sync round trips over LAN (%v)", wan, lan)
	}
}

func TestResizeModeStrings(t *testing.T) {
	for m, want := range map[ResizeMode]string{
		ResizeNone: "none", ResizeServer: "server", ResizeClient: "client", ResizeClip: "clip",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q", m, m.String())
		}
	}
}
