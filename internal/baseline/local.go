package baseline

import (
	"thinc/internal/driver"
	"thinc/internal/geom"
	"thinc/internal/sim"
	"thinc/internal/simnet"
	"thinc/internal/xserver"
)

// LocalPC models today's prevalent desktop (§8.1's baseline): the
// application runs on the client itself. Web pages are fetched from the
// web server over the measured link (the page's intrinsic content),
// then laid out and rendered by the slower client CPU. A/V content
// streams at its encoded (MPEG) bitrate and plays locally.
type LocalPC struct{}

// Local returns the local-PC baseline.
func Local() *LocalPC { return &LocalPC{} }

// Name implements System.
func (*LocalPC) Name() string { return "local" }

// NativeVideo implements System: the local player decodes and displays
// directly — treated as native for workload dispatch.
func (*LocalPC) NativeVideo() bool { return true }

// SupportsAudio implements System.
func (*LocalPC) SupportsAudio() bool { return true }

// Resize implements System: a local PC displays at its own resolution.
func (*LocalPC) Resize() ResizeMode { return ResizeNone }

// ColorBits implements System.
func (*LocalPC) ColorBits() int { return 24 }

// NewSession implements System.
func (*LocalPC) NewSession(cfg SessionConfig) Session {
	return &localSession{cfg: cfg, pipe: simnet.NewPipe(cfg.Eng, cfg.Link)}
}

type localSession struct {
	cfg  SessionConfig
	pipe *simnet.Pipe
	st   SessionStats
}

// Driver implements Session: rendering is local; nothing to intercept.
func (l *localSession) Driver() driver.Driver { return driver.Nop{} }

// BindDisplay implements Session.
func (l *localSession) BindDisplay(*xserver.Display) {}

// Start implements Session.
func (l *localSession) Start() {}

// SetVideoRect implements Session.
func (l *localSession) SetVideoRect(geom.Rect) {}

// Damage implements Session.
func (l *localSession) Damage() {}

// Stats implements Session.
func (l *localSession) Stats() SessionStats { return l.st }

// Input implements Session: the click is local; the browser fetches the
// page content over the network (one request round trip plus transfer),
// then lays out and renders at client speed.
func (l *localSession) Input(ev InputEvent) {
	// HTTP request out...
	l.pipe.C2S.Send(256, nil, func(at sim.Time, _ simnet.Payload) {
		// ...content back.
		l.pipe.S2C.Send(ev.ContentBytes, nil, func(at2 sim.Time, _ simnet.Payload) {
			l.st.BytesToClient += int64(ev.ContentBytes)
			l.st.MsgsToClient++
			// Layout and render on the client CPU; completion is the
			// "last graphical update" the paper instruments.
			cpu := ClientTime(ev.LayoutCost + ev.RenderCost)
			l.st.ClientCPU += cpu
			done := at2 + cpu
			l.st.LastDelivery = done
			l.cfg.Eng.At(done, func() { ev.OnServer() })
		})
	})
}

// Audio implements Session: audio plays locally; account the encoded
// stream bytes as part of the A/V fetch.
func (l *localSession) Audio(ptsUS uint64, size int) {
	l.st.AudioChunks++
}

// PlayClip models local A/V playback for the harness: the encoded
// stream arrives at its bitrate; every frame decodes and displays on
// time (the local PC is the 100%-quality reference).
func (l *localSession) PlayClip(frames int, duration sim.Time, mpegBytes int64) {
	eng := l.cfg.Eng
	interval := duration / sim.Time(frames)
	chunk := mpegBytes / int64(frames)
	for i := 0; i < frames; i++ {
		i := i
		eng.At(sim.Time(i)*interval, func() {
			l.pipe.S2C.Send(int(chunk), nil, func(at sim.Time, _ simnet.Payload) {
				l.st.BytesToClient += chunk
				l.st.MsgsToClient++
				l.st.LastDelivery = at
				// Decode + display cost per frame (tiny relative to the
				// frame interval on this hardware class).
				l.st.ClientCPU += ClientTime(PixelCost(352 * 240))
				l.st.VideoFrames++
				if l.st.FirstFrame == 0 {
					l.st.FirstFrame = at
				}
				l.st.LastFrame = at
			})
		})
	}
}

// SoftwareFrame implements Session: never used — the local PC plays
// natively via PlayClip.
func (l *localSession) SoftwareFrame(int, uint64, int, float64, float64) {}
