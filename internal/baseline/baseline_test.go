package baseline

import (
	"testing"

	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/sim"
	"thinc/internal/simnet"
	"thinc/internal/xserver"
)

func testCfg(link simnet.LinkParams) SessionConfig {
	return SessionConfig{Eng: sim.NewEngine(), Link: link, W: 256, H: 192, ViewW: 256, ViewH: 192}
}

func TestSystemProperties(t *testing.T) {
	cases := []struct {
		sys    System
		video  bool
		audio  bool
		resize ResizeMode
		bits   int
	}{
		{THINC(), true, true, ResizeServer, 24},
		{SunRay(), false, true, ResizeNone, 24},
		{ICA(), false, true, ResizeClient, 24},
		{RDP(), false, true, ResizeClip, 24},
		{VNC(), false, false, ResizeClip, 24},
		{GoToMyPC(), false, false, ResizeClient, 8},
		{X(), false, true, ResizeNone, 24},
		{NX(), false, true, ResizeNone, 24},
		{Local(), true, true, ResizeNone, 24},
	}
	for _, c := range cases {
		if c.sys.NativeVideo() != c.video {
			t.Errorf("%s: NativeVideo = %v", c.sys.Name(), c.sys.NativeVideo())
		}
		if c.sys.SupportsAudio() != c.audio {
			t.Errorf("%s: SupportsAudio = %v", c.sys.Name(), c.sys.SupportsAudio())
		}
		if c.sys.Resize() != c.resize {
			t.Errorf("%s: Resize = %v", c.sys.Name(), c.sys.Resize())
		}
		if c.sys.ColorBits() != c.bits {
			t.Errorf("%s: ColorBits = %d", c.sys.Name(), c.sys.ColorBits())
		}
	}
}

// drive renders a small scene through a session and drains the engine.
func drive(t *testing.T, sys System) (Session, *sim.Engine) {
	t.Helper()
	cfg := testCfg(simnet.LAN())
	sess := sys.NewSession(cfg)
	dpy := xserver.NewDisplay(cfg.W, cfg.H, sess.Driver())
	sess.BindDisplay(dpy)
	win := dpy.CreateWindow(geom.XYWH(0, 0, cfg.W, cfg.H))
	sess.Start()
	cfg.Eng.Run()

	done := false
	cfg.Eng.At(cfg.Eng.Now()+10*sim.Millisecond, func() {
		sess.Input(InputEvent{
			P:          geom.Point{X: 10, Y: 10},
			LayoutCost: sim.Millisecond,
			RenderCost: sim.Millisecond,
			OnServer: func() {
				dpy.FillRect(win, &xserver.GC{Fg: pixel.RGB(200, 10, 10)}, geom.XYWH(0, 0, 128, 96))
				dpy.DrawText(win, &xserver.GC{Fg: pixel.RGB(0, 0, 0)}, 5, 5, "hello")
				sess.Damage()
				done = true
			},
		})
	})
	cfg.Eng.Run()
	if !done {
		t.Fatalf("%s: input never reached the server", sys.Name())
	}
	return sess, cfg.Eng
}

func TestAllSessionsDeliverDrawing(t *testing.T) {
	for _, sys := range []System{THINC(), SunRay(), ICA(), RDP(), VNC(), GoToMyPC(), X(), NX()} {
		sess, _ := drive(t, sys)
		st := sess.Stats()
		if st.BytesToClient == 0 {
			t.Errorf("%s: no display data delivered", sys.Name())
		}
		if st.LastDelivery == 0 {
			t.Errorf("%s: no delivery time recorded", sys.Name())
		}
	}
}

func TestLocalSessionFetchesContent(t *testing.T) {
	cfg := testCfg(simnet.LAN())
	sess := Local().NewSession(cfg)
	dpy := xserver.NewDisplay(cfg.W, cfg.H, sess.Driver())
	sess.BindDisplay(dpy)
	sess.Start()
	ran := false
	sess.Input(InputEvent{
		LayoutCost:   10 * sim.Millisecond,
		RenderCost:   5 * sim.Millisecond,
		ContentBytes: 50 << 10,
		OnServer:     func() { ran = true },
	})
	cfg.Eng.Run()
	st := sess.Stats()
	if !ran {
		t.Fatal("render callback not invoked")
	}
	if st.BytesToClient != 50<<10 {
		t.Errorf("local fetched %d bytes, want the page content", st.BytesToClient)
	}
	// Client processing dominates and is folded into delivery time.
	if st.LastDelivery < 30*sim.Millisecond {
		t.Errorf("local completion %v too early (CPU not charged?)", st.LastDelivery)
	}
}

func TestScrapePullCycleQuiesces(t *testing.T) {
	// After content is delivered, the pull loop must go idle (pending
	// request parked) rather than spinning.
	sess, eng := drive(t, VNC())
	if eng.Pending() != 0 {
		t.Fatalf("VNC session left %d events pending", eng.Pending())
	}
	st := sess.Stats()
	if st.MsgsToClient == 0 {
		t.Fatal("no update batches delivered")
	}
}

func TestTHINCSoftwareVsNativeVideoCost(t *testing.T) {
	// The same clip costs far more through the software path than the
	// native path — the §4.2 motivation.
	run := func(soft bool) int64 {
		cfg := testCfg(simnet.LAN())
		sess := THINC().NewSession(cfg)
		dpy := xserver.NewDisplay(cfg.W, cfg.H, sess.Driver())
		dpy.SkipOverlayRender = true
		sess.BindDisplay(dpy)
		sess.SetVideoRect(dpy.Bounds())
		sess.Start()
		cfg.Eng.Run()
		if soft {
			for i := 0; i < 10; i++ {
				sess.SoftwareFrame(i, uint64(i), cfg.W*cfg.H*4, 0.8, 0.5)
			}
		} else {
			vp := dpy.CreateVideoPort(64, 48, dpy.Bounds())
			for i := 0; i < 10; i++ {
				vp.PutFrame(pixel.NewYV12(64, 48), uint64(i))
			}
		}
		cfg.Eng.Run()
		return sess.Stats().BytesToClient
	}
	native := run(false)
	soft := run(true)
	if native == 0 || soft == 0 {
		t.Fatal("no video delivered")
	}
	if soft < 4*native {
		t.Errorf("software path (%d B) should dwarf native YV12 (%d B)", soft, native)
	}
}

func TestPushFrameReplacementUnderBackpressure(t *testing.T) {
	// Over a slow link, most software frames are replaced before
	// delivery — drop-at-server.
	cfg := SessionConfig{Eng: sim.NewEngine(),
		Link: simnet.LinkParams{Name: "slow", Bandwidth: 2e6, RTT: 10 * sim.Millisecond, Window: 1 << 20},
		W:    256, H: 192, ViewW: 256, ViewH: 192}
	sess := SunRay().NewSession(cfg)
	dpy := xserver.NewDisplay(cfg.W, cfg.H, sess.Driver())
	sess.BindDisplay(dpy)
	sess.SetVideoRect(dpy.Bounds())
	sess.Start()
	cfg.Eng.Run()
	for i := 0; i < 30; i++ {
		i := i
		cfg.Eng.At(cfg.Eng.Now()+sim.Time(i)*40*sim.Millisecond, func() {
			sess.SoftwareFrame(i, uint64(i), cfg.W*cfg.H*4, 0.9, 0.5)
		})
	}
	cfg.Eng.Run()
	st := sess.Stats()
	if st.VideoFrames >= 30 {
		t.Errorf("slow link delivered all %d frames; expected drops", st.VideoFrames)
	}
	if st.VideoFrames == 0 {
		t.Error("no frames delivered at all")
	}
}

func TestFlowStallOnlyWhenWindowLimited(t *testing.T) {
	mk := func(link simnet.LinkParams) *pushSession {
		return ICA().NewSession(testCfgWith(link)).(*pushSession)
	}
	lan := mk(simnet.LAN())
	if s := lan.flowStall(1 << 20); s != 0 {
		t.Errorf("LAN stall %v, want 0 (window/RTT above link rate)", s)
	}
	wan := mk(simnet.WAN())
	if s := wan.flowStall(1 << 20); s <= 0 {
		t.Error("WAN large transfer should stall on the flow window")
	}
}

func testCfgWith(link simnet.LinkParams) SessionConfig {
	return SessionConfig{Eng: sim.NewEngine(), Link: link, W: 256, H: 192, ViewW: 256, ViewH: 192}
}

func TestMeasureRatioBounds(t *testing.T) {
	flat := make([]byte, 32<<10)
	r := measure(flat)
	if r <= 0 || r > 0.05 {
		t.Errorf("flat ratio %.3f, want tiny", r)
	}
	noisy := make([]byte, 32<<10)
	for i := range noisy {
		noisy[i] = byte(i*2654435761 + i>>3)
	}
	rn := measure(noisy)
	if rn < r {
		t.Error("noise should compress worse than zeros")
	}
	if measure(nil) != 1 {
		t.Error("empty payload ratio should be 1")
	}
}

func TestPixRatio8BitSmaller(t *testing.T) {
	pix := make([]pixel.ARGB, 4096)
	for i := range pix {
		pix[i] = pixel.RGB(uint8(i), uint8(i*7), uint8(i*13))
	}
	_, raw24 := pixRatio(pix, false)
	_, raw8 := pixRatio(pix, true)
	if raw8*4 != raw24 {
		t.Errorf("8-bit raw %d vs 24-bit %d, want 4x", raw8, raw24)
	}
}
