// Package baseline implements the systems the paper evaluates against
// (§2, §8): THINC itself plus architectural models of Citrix ICA,
// Microsoft RDP, Sun Ray, VNC, GoToMyPC, X, NX, and the local PC. The
// originals are closed commercial products; each model reproduces the
// *architectural* properties the paper's analysis attributes the
// results to — where the UI runs, how display commands are intercepted,
// push vs pull delivery, offscreen and video handling, and where
// resizing happens — over the same workloads and link models.
package baseline

import (
	"thinc/internal/driver"
	"thinc/internal/geom"
	"thinc/internal/sim"
	"thinc/internal/simnet"
	"thinc/internal/xserver"
)

// ResizeMode is how a system presents a session on a small screen (§6).
type ResizeMode int

// Small-screen strategies.
const (
	ResizeNone   ResizeMode = iota // small screens unsupported
	ResizeServer                   // THINC: server scales updates
	ResizeClient                   // ICA/GoToMyPC: full-size data, client scales
	ResizeClip                     // RDP/VNC: client shows a viewport-sized clip
)

func (m ResizeMode) String() string {
	switch m {
	case ResizeServer:
		return "server"
	case ResizeClient:
		return "client"
	case ResizeClip:
		return "clip"
	default:
		return "none"
	}
}

// System describes one thin-client architecture.
type System interface {
	// Name is the display name used in result tables.
	Name() string
	// NativeVideo reports whether applications can use the video port
	// (among the systems tested, only THINC for MPEG-1 content).
	NativeVideo() bool
	// SupportsAudio reports whether the system carries audio (VNC and
	// GoToMyPC do not).
	SupportsAudio() bool
	// Resize reports the system's small-screen strategy.
	Resize() ResizeMode
	// ColorBits is the client color depth (GoToMyPC is 8).
	ColorBits() int
	// NewSession opens a simulated client/server connection.
	NewSession(cfg SessionConfig) Session
}

// SessionConfig parameterizes a session.
type SessionConfig struct {
	Eng          *sim.Engine
	Link         simnet.LinkParams
	W, H         int // session framebuffer geometry
	ViewW, ViewH int // client viewport geometry
}

// Viewport returns the client viewport rectangle.
func (c SessionConfig) Viewport() geom.Rect { return geom.XYWH(0, 0, c.ViewW, c.ViewH) }

// Scaled reports whether the viewport differs from the session size.
func (c SessionConfig) Scaled() bool { return c.ViewW != c.W || c.ViewH != c.H }

// InputEvent is a user action the benchmark injects (§8.2's mechanical
// mouse clicker).
type InputEvent struct {
	P geom.Point
	// LayoutCost is the application-logic CPU time of the response
	// (HTML layout), charged at server speed wherever the application
	// runs.
	LayoutCost sim.Time
	// RenderCost is the drawing CPU time, charged wherever the UI runs:
	// at the server for server-rendered systems, at the (slower) client
	// for X-class systems and the local PC.
	RenderCost sim.Time
	// ContentBytes is the page's intrinsic fetched content (used by the
	// local-PC baseline, which downloads the page itself).
	ContentBytes int
	// OnServer renders the response; the harness draws into the window
	// system inside this callback.
	OnServer func()
}

// SessionStats are the measurements the slow-motion harness reads.
type SessionStats struct {
	BytesToClient int64    // wire bytes delivered to the client
	MsgsToClient  int      // messages delivered
	LastDelivery  sim.Time // arrival time of the newest display data
	ClientCPU     sim.Time // accumulated client processing time

	VideoFrames           int // video frames shown at the client
	FirstFrame, LastFrame sim.Time
	AudioChunks           int
	// MaxAVSkew is the worst |audio delay - video delay| observed across
	// deliveries — the §4.2 synchronization property THINC's shared
	// timestamping bounds. Only meaningful on the native video path.
	MaxAVSkew sim.Time
}

// Session is one live client/server connection under simulation.
type Session interface {
	// Driver returns the video driver to attach to the window system
	// (the interception point; scraping systems return a no-op and read
	// the rendered screen instead).
	Driver() driver.Driver
	// BindDisplay hands the session the display after creation.
	BindDisplay(d *xserver.Display)
	// Start arms the session's periodic machinery (flush timers,
	// initial update requests).
	Start()
	// Input injects a user event; see InputEvent.
	Input(ev InputEvent)
	// Damage tells the session new content was rendered (push systems
	// also learn through their driver; scrapers depend on this).
	Damage()
	// Audio delivers a timestamped PCM chunk from the virtual audio
	// driver; ignored by systems without audio support.
	Audio(ptsUS uint64, size int)
	// SetVideoRect tells the session where video plays so software-path
	// frame deliveries can be counted (full-coverage updates).
	SetVideoRect(r geom.Rect)
	// SoftwareFrame models one frame of software video playback for
	// systems without a native video path: the player has blitted a
	// full-screen image of rawBytes of ARGB data whose zlib ratios (24-
	// and 8-bit) were measured by the harness. An undelivered previous
	// frame is replaced (players drop frames under backpressure).
	SoftwareFrame(seq int, ptsUS uint64, rawBytes int, ratio24, ratio8 float64)
	// Stats returns the current measurements.
	Stats() SessionStats
}

// Cost model: CPU time charged for rendering and codec work. The
// absolute values are calibrated to the testbed's era (dual 933 MHz
// server, 450 MHz client); only the ratios matter for figure shapes.
const (
	// CostPerOp is the window-server cost per drawing request.
	CostPerOp = 30 * sim.Microsecond
	// CostPageLayout is browser layout/application logic per page.
	CostPageLayout = 40 * sim.Millisecond
	// CostClientPerMsg is the client's fixed cost per applied message.
	CostClientPerMsg = 5 * sim.Microsecond
	// ClientSlowdown is how much slower the client CPU is than the
	// server (450 MHz PII vs dual 933 MHz PIII).
	ClientSlowdown = 2.2
)

// PixelCost returns the rendering cost of n pixels (~8 ns each).
func PixelCost(n int) sim.Time { return sim.Time(n) / 128 }

// ByteCost returns the client apply cost of n bytes (~2 ns each).
func ByteCost(n int64) sim.Time { return sim.Time(n) / 512 }

// ZlibCost returns compression CPU for n input bytes (~20 ns each).
func ZlibCost(n int64) sim.Time { return sim.Time(n) / 50 }

// UnzlibCost returns decompression CPU for n bytes (~10 ns each).
func UnzlibCost(n int64) sim.Time { return sim.Time(n) / 100 }

// PNGCost returns PNG encode CPU for n input bytes (~40 ns each).
func PNGCost(n int64) sim.Time { return sim.Time(n) / 25 }

// ResampleCost returns the cost of resampling n pixels (~16 ns each).
func ResampleCost(n int) sim.Time { return sim.Time(n) / 64 }

// RenderCost estimates the window-server cost of a page or update from
// its op and pixel counts.
func RenderCost(ops, pixels int) sim.Time {
	return sim.Time(ops)*CostPerOp + PixelCost(pixels)
}

// audioSlack is how late an audio chunk may arrive and still play (the
// client-side jitter buffer).
const audioSlack = 300 * sim.Millisecond

// ClientTime scales a cost to the slower client CPU.
func ClientTime(t sim.Time) sim.Time {
	return sim.Time(float64(t) * ClientSlowdown)
}
