package fb

import (
	"hash/fnv"
	"testing"

	"thinc/internal/geom"
	"thinc/internal/pixel"
)

// refDigest computes the digest of r the slow way, through hash/fnv,
// to pin DigestRect to the standard FNV-1a 64 over big-endian pixels.
func refDigest(f *Framebuffer, r geom.Rect) uint64 {
	r = f.clip(r)
	h := fnv.New64a()
	var b [4]byte
	for y := r.Y0; y < r.Y1; y++ {
		for x := r.X0; x < r.X1; x++ {
			p := f.At(x, y)
			b[0], b[1], b[2], b[3] = byte(p>>24), byte(p>>16), byte(p>>8), byte(p)
			h.Write(b[:])
		}
	}
	return h.Sum64()
}

func scribble(f *Framebuffer, seed uint32) {
	s := seed
	for y := 0; y < f.H(); y++ {
		for x := 0; x < f.W(); x++ {
			s = s*1664525 + 1013904223
			f.Set(x, y, pixel.ARGB(s|0xff000000))
		}
	}
}

func TestDigestRectMatchesFNV(t *testing.T) {
	f := New(37, 23)
	scribble(f, 1)
	for _, r := range []geom.Rect{
		f.Bounds(),
		geom.XYWH(0, 0, 16, 16),
		geom.XYWH(32, 16, 16, 16), // hangs off the right/bottom edges
		geom.XYWH(5, 7, 1, 1),
		geom.XYWH(0, 0, 0, 0), // empty: offset basis
	} {
		if got, want := f.DigestRect(r), refDigest(f, r); got != want {
			t.Errorf("DigestRect(%+v) = %#x, want %#x", r, got, want)
		}
	}
}

func TestDigestRectSensitivity(t *testing.T) {
	f := New(32, 32)
	scribble(f, 2)
	before := f.DigestRect(f.Bounds())
	p := f.At(17, 9)
	f.Set(17, 9, p^1) // one low bit of one pixel
	if f.DigestRect(f.Bounds()) == before {
		t.Fatal("single-bit pixel flip did not change the digest")
	}
}

func TestGridGeometry(t *testing.T) {
	g := Grid(96, 64, 16)
	if g.TW != 6 || g.TH != 4 || g.Tiles() != 24 {
		t.Fatalf("Grid(96,64,16) = %+v", g)
	}
	// Non-divisible: 100x50 with 16px tiles -> 7x4 grid, ragged edges.
	g = Grid(100, 50, 16)
	if g.TW != 7 || g.TH != 4 {
		t.Fatalf("Grid(100,50,16) = %+v", g)
	}
	last := g.Rect(g.Tiles() - 1)
	if last.W() != 4 || last.H() != 2 {
		t.Fatalf("last tile = %+v, want 4x2", last)
	}
	// Every pixel is covered exactly once.
	covered := make([]int, 100*50)
	for i := 0; i < g.Tiles(); i++ {
		r := g.Rect(i)
		for y := r.Y0; y < r.Y1; y++ {
			for x := r.X0; x < r.X1; x++ {
				covered[y*100+x]++
			}
		}
	}
	for i, n := range covered {
		if n != 1 {
			t.Fatalf("pixel %d covered %d times", i, n)
		}
	}
}

func TestGridPanicsOnBadSide(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Grid(_, _, 0) did not panic")
		}
	}()
	Grid(10, 10, 0)
}

func TestTileIndexIncremental(t *testing.T) {
	f := New(96, 64)
	scribble(f, 3)
	ix := NewTileIndex(96, 64, 16)

	// First read hashes the true contents (everything starts dirty).
	for i := 0; i < ix.Tiles(); i++ {
		if got, want := ix.Digest(f, i), f.DigestRect(ix.Grid().Rect(i)); got != want {
			t.Fatalf("tile %d: digest %#x, want %#x", i, got, want)
		}
	}

	// An unmarked change is invisible: the index serves the stale digest.
	stale := ix.Digest(f, 0)
	f.Set(1, 1, f.At(1, 1)^0xff)
	if ix.Digest(f, 0) != stale {
		t.Fatal("unmarked change rehashed eagerly; index must be lazy")
	}

	// Marking the draw's bounds refreshes exactly the touched tiles.
	ix.MarkRect(geom.XYWH(0, 0, 4, 4))
	if got, want := ix.Digest(f, 0), f.DigestRect(ix.Grid().Rect(0)); got != want {
		t.Fatalf("post-mark digest %#x, want %#x", got, want)
	}
}

func TestTileIndexMarkRect(t *testing.T) {
	f := New(96, 64)
	ix := NewTileIndex(96, 64, 16)
	for i := 0; i < ix.Tiles(); i++ {
		ix.Digest(f, i) // settle: all clean
	}
	// A rect spanning tiles (1,1)-(2,2) dirties exactly those four.
	ix.MarkRect(geom.XYWH(20, 20, 20, 20))
	want := map[int]bool{7: true, 8: true, 13: true, 14: true}
	for i := 0; i < ix.Tiles(); i++ {
		dirty := ix.dirty[i>>6]&(1<<(uint(i)&63)) != 0
		if dirty != want[i] {
			t.Errorf("tile %d dirty = %v, want %v", i, dirty, want[i])
		}
	}
	// Empty and off-surface rects mark nothing.
	ix2 := NewTileIndex(96, 64, 16)
	for i := 0; i < ix2.Tiles(); i++ {
		ix2.Digest(f, i)
	}
	ix2.MarkRect(geom.Rect{})
	ix2.MarkRect(geom.XYWH(200, 200, 10, 10))
	for _, w := range ix2.dirty {
		if w != 0 {
			t.Fatal("empty/off-surface MarkRect dirtied tiles")
		}
	}
}

func TestTileIndexDigestRange(t *testing.T) {
	f := New(96, 64)
	scribble(f, 4)
	ix := NewTileIndex(96, 64, 16)
	got := ix.DigestRange(f, 20, 10, nil) // clamps at 24 tiles
	if len(got) != 4 {
		t.Fatalf("DigestRange(20,10) returned %d digests, want 4", len(got))
	}
	for k, d := range got {
		if want := f.DigestRect(ix.Grid().Rect(20 + k)); d != want {
			t.Fatalf("digest[%d] = %#x, want %#x", k, d, want)
		}
	}
	if out := ix.DigestRange(f, -5, 3, nil); len(out) != 3 || out[0] != ix.Digest(f, 0) {
		t.Fatalf("negative start not clamped: %v", out)
	}
}

// TestDigestHotPathZeroAlloc is the audit satellite's allocation guard:
// hashing, marking, and clean reads must not allocate, or the per-draw
// and per-probe costs would scale with GC pressure.
func TestDigestHotPathZeroAlloc(t *testing.T) {
	f := New(256, 256)
	scribble(f, 5)
	ix := NewTileIndex(256, 256, 64)
	r := geom.XYWH(64, 64, 64, 64)
	var sink uint64
	if n := testing.AllocsPerRun(100, func() { sink += f.DigestRect(r) }); n != 0 {
		t.Errorf("DigestRect allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { ix.MarkRect(r) }); n != 0 {
		t.Errorf("MarkRect allocates %v/op", n)
	}
	ix.Digest(f, 5)
	if n := testing.AllocsPerRun(100, func() { sink += ix.Digest(f, 5) }); n != 0 {
		t.Errorf("clean Digest allocates %v/op", n)
	}
	out := make([]uint64, 0, 16)
	if n := testing.AllocsPerRun(100, func() {
		ix.MarkRect(r)
		out = ix.DigestRange(f, 0, 16, out[:0])
	}); n != 0 {
		t.Errorf("mark+DigestRange (preallocated dst) allocates %v/op", n)
	}
	_ = sink
}

// BenchmarkTileDigest measures the audit hot path: rehash one dirty
// 64x64 tile. Wired into the bench-smoke CI job.
func BenchmarkTileDigest(b *testing.B) {
	f := New(1024, 768)
	scribble(f, 6)
	ix := NewTileIndex(1024, 768, 64)
	r := ix.Grid().Rect(0)
	ix.Digest(f, 0)
	b.SetBytes(int64(r.Area() * 4))
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		ix.MarkRect(r)
		sink += ix.Digest(f, 0)
	}
	_ = sink
}
