package fb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"thinc/internal/geom"
	"thinc/internal/pixel"
)

func TestNewIsOpaqueBlack(t *testing.T) {
	f := New(4, 3)
	if f.W() != 4 || f.H() != 3 {
		t.Fatal("geometry wrong")
	}
	if f.At(0, 0) != pixel.RGB(0, 0, 0) {
		t.Fatal("fresh framebuffer should be opaque black")
	}
}

func TestSetAtBounds(t *testing.T) {
	f := New(4, 4)
	f.Set(2, 2, pixel.RGB(1, 2, 3))
	if f.At(2, 2) != pixel.RGB(1, 2, 3) {
		t.Error("Set/At round trip failed")
	}
	f.Set(-1, 0, pixel.RGB(9, 9, 9)) // must not panic
	f.Set(4, 4, pixel.RGB(9, 9, 9))
	if f.At(-1, 0) != 0 || f.At(4, 4) != 0 {
		t.Error("out-of-bounds At should be zero")
	}
}

func TestFillSolid(t *testing.T) {
	f := New(10, 10)
	red := pixel.RGB(255, 0, 0)
	f.FillSolid(geom.XYWH(2, 2, 4, 4), red)
	if f.At(2, 2) != red || f.At(5, 5) != red {
		t.Error("inside not filled")
	}
	if f.At(1, 2) == red || f.At(6, 6) == red {
		t.Error("outside was filled")
	}
	// Clipping: fill overlapping the edge must not panic.
	f.FillSolid(geom.XYWH(-5, -5, 100, 100), red)
	if f.At(0, 0) != red || f.At(9, 9) != red {
		t.Error("clipped fill incomplete")
	}
}

func TestFillTileAnchoring(t *testing.T) {
	f := New(8, 8)
	// 2x2 checkerboard tile.
	a, b := pixel.RGB(255, 255, 255), pixel.RGB(0, 0, 255)
	tile := NewTile(2, 2, []pixel.ARGB{a, b, b, a})
	// Two adjacent fills must align seamlessly because tiling is anchored
	// at the surface origin, not the fill origin.
	f.FillTile(geom.XYWH(0, 0, 4, 8), tile)
	f.FillTile(geom.XYWH(4, 0, 4, 8), tile)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			want := a
			if (x+y)%2 == 1 {
				want = b
			}
			if f.At(x, y) != want {
				t.Fatalf("tile misaligned at (%d,%d)", x, y)
			}
		}
	}
}

func TestBitmapBits(t *testing.T) {
	bm := NewBitmap(10, 3)
	bm.SetBit(9, 2, true)
	bm.SetBit(0, 0, true)
	if !bm.BitAt(9, 2) || !bm.BitAt(0, 0) || bm.BitAt(5, 1) {
		t.Error("bitmap get/set wrong")
	}
	bm.SetBit(9, 2, false)
	if bm.BitAt(9, 2) {
		t.Error("clear failed")
	}
	if bm.BitAt(-1, 0) || bm.BitAt(10, 0) {
		t.Error("out-of-bounds bits should read false")
	}
	if BitmapStride(10) != 2 || BitmapStride(8) != 1 || BitmapStride(9) != 2 {
		t.Error("stride wrong")
	}
}

func TestFillBitmapOpaqueAndTransparent(t *testing.T) {
	f := New(6, 2)
	f.FillSolid(f.Bounds(), pixel.RGB(10, 10, 10))
	bm := NewBitmap(3, 1)
	bm.SetBit(0, 0, true)
	bm.SetBit(2, 0, true)
	fg, bg := pixel.RGB(255, 0, 0), pixel.RGB(0, 255, 0)

	f.FillBitmap(geom.XYWH(0, 0, 3, 1), bm, fg, bg, false)
	if f.At(0, 0) != fg || f.At(1, 0) != bg || f.At(2, 0) != fg {
		t.Error("opaque stipple wrong")
	}
	f.FillBitmap(geom.XYWH(0, 1, 3, 1), bm, fg, bg, true)
	if f.At(0, 1) != fg || f.At(1, 1) != pixel.RGB(10, 10, 10) {
		t.Error("transparent stipple wrong")
	}
}

func TestFillBitmapAlphaText(t *testing.T) {
	// Anti-aliased text: a half-alpha foreground must blend, not replace.
	f := New(2, 1)
	f.FillSolid(f.Bounds(), pixel.RGB(0, 0, 0))
	bm := NewBitmap(2, 1)
	bm.SetBit(0, 0, true)
	f.FillBitmap(geom.XYWH(0, 0, 2, 1), bm, pixel.PackARGB(128, 255, 255, 255), 0, true)
	got := f.At(0, 0)
	if got.R() < 120 || got.R() > 136 {
		t.Errorf("half-alpha glyph pixel R=%d, want ~128", got.R())
	}
}

func TestCopyNonOverlapping(t *testing.T) {
	f := New(10, 10)
	f.FillSolid(geom.XYWH(0, 0, 2, 2), pixel.RGB(200, 0, 0))
	f.Copy(geom.XYWH(0, 0, 2, 2), geom.Point{X: 6, Y: 6})
	if f.At(6, 6) != pixel.RGB(200, 0, 0) || f.At(7, 7) != pixel.RGB(200, 0, 0) {
		t.Error("copy destination wrong")
	}
	if f.At(0, 0) != pixel.RGB(200, 0, 0) {
		t.Error("copy must not disturb source")
	}
}

// TestCopyOverlapProperty verifies overlap-safe copies against a
// two-buffer model for random geometry — the scroll correctness property.
func TestCopyOverlapProperty(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		fb := New(24, 24)
		for y := 0; y < 24; y++ {
			for x := 0; x < 24; x++ {
				fb.Set(x, y, pixel.RGB(uint8(x*11), uint8(y*7), uint8(seed)))
			}
		}
		src := geom.XYWH(rnd.Intn(20)-4, rnd.Intn(20)-4, rnd.Intn(16), rnd.Intn(16))
		dst := geom.Point{X: rnd.Intn(28) - 4, Y: rnd.Intn(28) - 4}

		// Model: read through a snapshot so overlap cannot matter.
		want := fb.Clone()
		snap := fb.Clone()
		want.CopyFrom(snap, src, dst)

		fb.Copy(src, dst)
		return fb.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestCopyFromOtherBuffer(t *testing.T) {
	src := New(4, 4)
	src.FillSolid(src.Bounds(), pixel.RGB(0, 99, 0))
	dst := New(8, 8)
	dst.CopyFrom(src, geom.XYWH(1, 1, 3, 3), geom.Point{X: 5, Y: 5})
	if dst.At(5, 5) != pixel.RGB(0, 99, 0) || dst.At(7, 7) != pixel.RGB(0, 99, 0) {
		t.Error("cross-buffer copy wrong")
	}
	if dst.At(4, 4) == pixel.RGB(0, 99, 0) {
		t.Error("copied outside destination")
	}
}

func TestPutReadImageRoundTrip(t *testing.T) {
	f := New(10, 10)
	r := geom.XYWH(3, 4, 4, 3)
	img := make([]pixel.ARGB, r.Area())
	for i := range img {
		img[i] = pixel.RGB(uint8(i), uint8(i*2), uint8(i*3))
	}
	f.PutImage(r, img, r.W())
	got := f.ReadImage(r)
	for i := range img {
		if got[i] != img[i] {
			t.Fatalf("pixel %d mismatch", i)
		}
	}
}

func TestPutImageClips(t *testing.T) {
	f := New(4, 4)
	r := geom.XYWH(2, 2, 4, 4) // hangs off the edge
	img := make([]pixel.ARGB, r.Area())
	for i := range img {
		img[i] = pixel.RGB(9, 9, 9)
	}
	f.PutImage(r, img, r.W()) // must not panic
	if f.At(3, 3) != pixel.RGB(9, 9, 9) {
		t.Error("in-bounds part not written")
	}
}

func TestCompositeOver(t *testing.T) {
	f := New(2, 1)
	f.FillSolid(f.Bounds(), pixel.RGB(0, 0, 0))
	img := []pixel.ARGB{pixel.PackARGB(128, 255, 0, 0), pixel.PackARGB(0, 255, 0, 0)}
	f.CompositeOver(geom.XYWH(0, 0, 2, 1), img, 2)
	if r := f.At(0, 0).R(); r < 120 || r > 136 {
		t.Errorf("composite R=%d, want ~128", r)
	}
	if f.At(1, 0) != pixel.RGB(0, 0, 0) {
		t.Error("transparent pixel must not change dst")
	}
}

func TestOverlayYV12FullScreen(t *testing.T) {
	f := New(64, 48)
	// Solid-color 16x12 video frame scaled full screen.
	pix := make([]pixel.ARGB, 16*12)
	for i := range pix {
		pix[i] = pixel.RGB(50, 100, 150)
	}
	frame := pixel.EncodeYV12(pix, 16, 16, 12)
	f.OverlayYV12(f.Bounds(), frame)
	got := f.At(32, 24)
	for _, d := range []int{int(got.R()) - 50, int(got.G()) - 100, int(got.B()) - 150} {
		if d < -8 || d > 8 {
			t.Fatalf("overlay color drifted: %v", got)
		}
	}
}

func TestDiffRegion(t *testing.T) {
	a := New(16, 16)
	b := a.Clone()
	if d := a.DiffRegion(b); !d.Empty() {
		t.Fatal("identical buffers should have empty diff")
	}
	b.FillSolid(geom.XYWH(4, 4, 3, 3), pixel.RGB(255, 0, 0))
	d := a.DiffRegion(b)
	if d.Area() != 9 || d.Bounds() != geom.XYWH(4, 4, 3, 3) {
		t.Errorf("diff = %v area %d", d.Bounds(), d.Area())
	}
}

func TestEqualInChecksum(t *testing.T) {
	a := New(8, 8)
	b := a.Clone()
	if !a.Equal(b) || a.Checksum() != b.Checksum() {
		t.Fatal("clones must be equal")
	}
	b.Set(7, 7, pixel.RGB(1, 1, 1))
	if a.Equal(b) || a.Checksum() == b.Checksum() {
		t.Error("difference not detected")
	}
	if !a.EqualIn(b, geom.XYWH(0, 0, 7, 7)) {
		t.Error("EqualIn should ignore the changed pixel")
	}
	if a.EqualIn(b, geom.XYWH(6, 6, 2, 2)) {
		t.Error("EqualIn missed the changed pixel")
	}
}

func BenchmarkFillSolid(b *testing.B) {
	f := New(1024, 768)
	r := geom.XYWH(0, 0, 1024, 768)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.FillSolid(r, pixel.RGB(uint8(i), 0, 0))
	}
}

func BenchmarkCopyScroll(b *testing.B) {
	f := New(1024, 768)
	src := geom.XYWH(0, 16, 1024, 752)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Copy(src, geom.Point{X: 0, Y: 0})
	}
}
