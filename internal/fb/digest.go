package fb

import "thinc/internal/geom"

// Tile digest index: the framebuffer decomposition behind the wire-v4
// integrity audit. The screen is sharded into fixed square tiles (the
// right and bottom edges may be narrower) and each tile carries an
// FNV-1a 64 digest of its pixels. Draws mark the tiles they touch dirty
// (MarkRect — zero-alloc, O(tiles touched)); digests are rehashed
// lazily when read, so an audit never rehashes the full screen, only
// what changed since the last probe.

// FNV-1a 64 parameters (hash/fnv's, inlined so the per-pixel loop stays
// free of interface calls and allocations).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// DigestRect returns the FNV-1a 64 digest of r's pixels (clipped to the
// surface), hashing each ARGB pixel as 4 big-endian bytes — exactly the
// bytes the pixel would occupy in an uncompressed RAW payload. Both
// ends of an audit compute this independently; it allocates nothing.
func (f *Framebuffer) DigestRect(r geom.Rect) uint64 {
	r = f.clip(r)
	h := fnvOffset64
	for y := r.Y0; y < r.Y1; y++ {
		row := f.pix[y*f.w+r.X0 : y*f.w+r.X1]
		for _, p := range row {
			h = (h ^ (uint64(p) >> 24)) * fnvPrime64
			h = (h ^ (uint64(p) >> 16 & 0xff)) * fnvPrime64
			h = (h ^ (uint64(p) >> 8 & 0xff)) * fnvPrime64
			h = (h ^ (uint64(p) & 0xff)) * fnvPrime64
		}
	}
	return h
}

// TileGrid describes the tiling of a w x h surface into side x side
// tiles, row-major. It is pure geometry — both ends of an audit derive
// the same grid from the session geometry and the probe's tile size.
type TileGrid struct {
	W, H int // surface size, pixels
	Side int // tile side, pixels
	TW   int // tiles per row
	TH   int // tile rows
}

// Grid builds the tile grid for a w x h surface. side must be positive.
func Grid(w, h, side int) TileGrid {
	if side <= 0 {
		panic("fb.Grid: non-positive tile side")
	}
	return TileGrid{
		W: w, H: h, Side: side,
		TW: (w + side - 1) / side,
		TH: (h + side - 1) / side,
	}
}

// Tiles returns the number of tiles in the grid.
func (g TileGrid) Tiles() int { return g.TW * g.TH }

// Rect returns tile i's rectangle (clipped at the right/bottom edges).
func (g TileGrid) Rect(i int) geom.Rect {
	tx, ty := i%g.TW, i/g.TW
	r := geom.XYWH(tx*g.Side, ty*g.Side, g.Side, g.Side)
	return r.Intersect(geom.XYWH(0, 0, g.W, g.H))
}

// TileIndex maintains per-tile digests for one surface, incrementally:
// MarkRect records which tiles a draw touched; Digest rehashes dirty
// tiles on demand. It carries no framebuffer reference — the caller
// passes the surface at read time, so the index composes with any
// pixel-ownership scheme.
type TileIndex struct {
	grid  TileGrid
	dig   []uint64
	dirty []uint64 // bitset, one bit per tile
}

// NewTileIndex builds an index over a w x h surface with side x side
// tiles. Every tile starts dirty, so the first audit hashes the true
// initial contents.
func NewTileIndex(w, h, side int) *TileIndex {
	g := Grid(w, h, side)
	ix := &TileIndex{
		grid:  g,
		dig:   make([]uint64, g.Tiles()),
		dirty: make([]uint64, (g.Tiles()+63)/64),
	}
	ix.MarkAll()
	return ix
}

// Grid returns the index's tile geometry.
func (ix *TileIndex) Grid() TileGrid { return ix.grid }

// Tiles returns the number of tiles in the index.
func (ix *TileIndex) Tiles() int { return ix.grid.Tiles() }

// MarkAll marks every tile dirty.
func (ix *TileIndex) MarkAll() {
	n := ix.Tiles()
	for i := range ix.dirty {
		ix.dirty[i] = ^uint64(0)
	}
	if rem := uint(n) & 63; rem != 0 && len(ix.dirty) > 0 {
		ix.dirty[len(ix.dirty)-1] = (1 << rem) - 1
	}
}

// MarkRect marks every tile intersecting r dirty. It allocates nothing
// and is called on the draw path for every screen-changing command.
func (ix *TileIndex) MarkRect(r geom.Rect) {
	g := ix.grid
	r = r.Intersect(geom.XYWH(0, 0, g.W, g.H))
	if r.Empty() {
		return
	}
	tx0, ty0 := r.X0/g.Side, r.Y0/g.Side
	tx1, ty1 := (r.X1-1)/g.Side, (r.Y1-1)/g.Side
	for ty := ty0; ty <= ty1; ty++ {
		base := ty * g.TW
		for tx := tx0; tx <= tx1; tx++ {
			i := base + tx
			ix.dirty[i>>6] |= 1 << (uint(i) & 63)
		}
	}
}

// Digest returns tile i's digest, rehashing from f first if the tile is
// dirty. f must have the grid's geometry.
func (ix *TileIndex) Digest(f *Framebuffer, i int) uint64 {
	if ix.dirty[i>>6]&(1<<(uint(i)&63)) != 0 {
		ix.dig[i] = f.DigestRect(ix.grid.Rect(i))
		ix.dirty[i>>6] &^= 1 << (uint(i) & 63)
	}
	return ix.dig[i]
}

// DigestRange appends the digests of tiles [start, start+n) to dst and
// returns it, rehashing dirty tiles from f. Out-of-range indices are
// clamped away.
func (ix *TileIndex) DigestRange(f *Framebuffer, start, n int, dst []uint64) []uint64 {
	if start < 0 {
		start = 0
	}
	end := start + n
	if t := ix.Tiles(); end > t {
		end = t
	}
	for i := start; i < end; i++ {
		dst = append(dst, ix.Digest(f, i))
	}
	return dst
}
