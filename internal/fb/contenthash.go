package fb

import "thinc/internal/pixel"

// Content digests for the wire-v6 payload cache. Both sides address
// cache entries by an FNV-1a 64 digest of the decoded content plus the
// fields that change how it paints, so the digest — not the codec or
// the screen position — is the identity of a payload. The pixel
// convention matches DigestRect exactly: each ARGB pixel hashes as 4
// big-endian bytes, the bytes it would occupy in an uncompressed RAW
// payload. All of these helpers allocate nothing; they sit on the
// per-command fan-out path.

// DigestSeed starts a content digest chain.
func DigestSeed() uint64 { return fnvOffset64 }

// DigestPixels folds pix into h, 4 big-endian bytes per pixel.
func DigestPixels(h uint64, pix []pixel.ARGB) uint64 {
	for _, p := range pix {
		h = (h ^ (uint64(p) >> 24)) * fnvPrime64
		h = (h ^ (uint64(p) >> 16 & 0xff)) * fnvPrime64
		h = (h ^ (uint64(p) >> 8 & 0xff)) * fnvPrime64
		h = (h ^ (uint64(p) & 0xff)) * fnvPrime64
	}
	return h
}

// DigestBytes folds raw bytes into h (bitmap stipple rows).
func DigestBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	return h
}

// DigestU32 folds a 32-bit value into h as 4 big-endian bytes
// (geometry, colors).
func DigestU32(h uint64, v uint32) uint64 {
	h = (h ^ (uint64(v) >> 24)) * fnvPrime64
	h = (h ^ (uint64(v) >> 16 & 0xff)) * fnvPrime64
	h = (h ^ (uint64(v) >> 8 & 0xff)) * fnvPrime64
	return (h ^ (uint64(v) & 0xff)) * fnvPrime64
}

// DigestU8 folds one byte into h (flags, kind discriminators).
func DigestU8(h uint64, v uint8) uint64 {
	return (h ^ uint64(v)) * fnvPrime64
}

// CacheDigestRaw is the canonical cache identity of a RAW payload: kind
// discriminator, content geometry, blend flag, then the decoded pixels.
// Server (digesting commands at fan-out) and client (verifying a
// CACHE_STORE it just decoded) both call this one function, so the two
// sides cannot drift. The codec is deliberately absent: the same pixels
// shipped PNG-compressed and uncompressed are the same cache entry.
func CacheDigestRaw(w, h int, blend bool, pix []pixel.ARGB) uint64 {
	d := DigestSeed()
	d = DigestU8(d, 0) // wire.CacheKindRaw, unimported to avoid a cycle
	d = DigestU32(d, uint32(w))
	d = DigestU32(d, uint32(h))
	var b uint8
	if blend {
		b = 1
	}
	d = DigestU8(d, b)
	return DigestPixels(d, pix)
}

// CacheDigestBitmap is the canonical cache identity of a BITMAP stipple
// payload: kind, content geometry, paint semantics (colors, mode), bit
// geometry, then the stipple rows.
func CacheDigestBitmap(w, h int, fg, bg pixel.ARGB, transparent bool, bitW, bitH int, bits []byte) uint64 {
	d := DigestSeed()
	d = DigestU8(d, 1) // wire.CacheKindBitmap
	d = DigestU32(d, uint32(w))
	d = DigestU32(d, uint32(h))
	d = DigestU32(d, uint32(fg))
	d = DigestU32(d, uint32(bg))
	var t uint8
	if transparent {
		t = 1
	}
	d = DigestU8(d, t)
	d = DigestU32(d, uint32(bitW))
	d = DigestU32(d, uint32(bitH))
	return DigestBytes(d, bits)
}
