package fb

import (
	"testing"

	"thinc/internal/pixel"
)

// The cache digest is the wire-v6 identity of a payload: server and
// client must compute the same value from the same decoded content, and
// every field that changes how the payload paints must change the
// digest. These tests pin both properties in the package that owns the
// canonical recipe.

func TestCacheDigestRawSensitivity(t *testing.T) {
	pix := []pixel.ARGB{pixel.RGB(1, 2, 3), pixel.RGB(4, 5, 6), pixel.RGB(7, 8, 9), pixel.RGB(10, 11, 12)}
	base := CacheDigestRaw(2, 2, false, pix)
	if base != CacheDigestRaw(2, 2, false, append([]pixel.ARGB(nil), pix...)) {
		t.Fatal("digest is not a pure function of the content")
	}
	variants := map[string]uint64{
		"geometry": CacheDigestRaw(4, 1, false, pix),
		"blend":    CacheDigestRaw(2, 2, true, pix),
		"pixels": CacheDigestRaw(2, 2, false,
			[]pixel.ARGB{pixel.RGB(1, 2, 3), pixel.RGB(4, 5, 6), pixel.RGB(7, 8, 9), pixel.RGB(10, 11, 13)}),
	}
	for field, d := range variants {
		if d == base {
			t.Fatalf("changing %s did not change the digest", field)
		}
	}
}

func TestCacheDigestBitmapSensitivity(t *testing.T) {
	bits := []byte{0xA5, 0x3C}
	base := CacheDigestBitmap(8, 2, pixel.RGB(9, 9, 9), pixel.RGB(1, 1, 1), false, 8, 2, bits)
	variants := map[string]uint64{
		"geometry":    CacheDigestBitmap(4, 4, pixel.RGB(9, 9, 9), pixel.RGB(1, 1, 1), false, 8, 2, bits),
		"fg":          CacheDigestBitmap(8, 2, pixel.RGB(9, 9, 8), pixel.RGB(1, 1, 1), false, 8, 2, bits),
		"bg":          CacheDigestBitmap(8, 2, pixel.RGB(9, 9, 9), pixel.RGB(1, 1, 2), false, 8, 2, bits),
		"transparent": CacheDigestBitmap(8, 2, pixel.RGB(9, 9, 9), pixel.RGB(1, 1, 1), true, 8, 2, bits),
		"bit-geom":    CacheDigestBitmap(8, 2, pixel.RGB(9, 9, 9), pixel.RGB(1, 1, 1), false, 16, 1, bits),
		"bits":        CacheDigestBitmap(8, 2, pixel.RGB(9, 9, 9), pixel.RGB(1, 1, 1), false, 8, 2, []byte{0xA5, 0x3D}),
	}
	for field, d := range variants {
		if d == base {
			t.Fatalf("changing %s did not change the digest", field)
		}
	}
	// The two kinds can never collide by construction: the kind
	// discriminator is the first folded byte.
	if CacheDigestRaw(8, 2, false, nil) == CacheDigestBitmap(8, 2, 0, 0, false, 0, 0, nil) {
		t.Fatal("RAW and BITMAP digests share a value for empty content")
	}
}

// TestDigestPixelsMatchesRectConvention pins the shared convention:
// DigestPixels folds each ARGB pixel as 4 big-endian bytes, exactly the
// bytes DigestBytes would see from an uncompressed RAW payload.
func TestDigestPixelsMatchesRectConvention(t *testing.T) {
	pix := []pixel.ARGB{pixel.PackARGB(0x11, 0x22, 0x33, 0x44), pixel.RGB(200, 100, 50)}
	var raw []byte
	for _, p := range pix {
		raw = append(raw, byte(p>>24), byte(p>>16), byte(p>>8), byte(p))
	}
	if DigestPixels(DigestSeed(), pix) != DigestBytes(DigestSeed(), raw) {
		t.Fatal("DigestPixels diverged from the big-endian byte convention")
	}
	// And the primitive folds compose the same way the composites do.
	h := DigestSeed()
	h = DigestU8(h, 0x7f)
	h = DigestU32(h, 0xdeadbeef)
	h2 := DigestBytes(DigestSeed(), []byte{0x7f, 0xde, 0xad, 0xbe, 0xef})
	if h != h2 {
		t.Fatal("DigestU8/DigestU32 diverged from the byte-fold convention")
	}
}

// TestCacheDigestZeroAlloc: the digest sits on the per-command fan-out
// path; it must not allocate.
func TestCacheDigestZeroAlloc(t *testing.T) {
	pix := make([]pixel.ARGB, 64*64)
	for i := range pix {
		pix[i] = pixel.RGB(uint8(i), uint8(i>>3), uint8(i>>6))
	}
	bits := make([]byte, 512)
	if n := testing.AllocsPerRun(100, func() {
		_ = CacheDigestRaw(64, 64, false, pix)
		_ = CacheDigestBitmap(64, 8, 1, 2, true, 64, 64, bits)
	}); n != 0 {
		t.Fatalf("cache digest allocates %.1f per call, want 0", n)
	}
}
