// Package fb implements a software framebuffer providing exactly the
// raster operations THINC's protocol relies on the client hardware to
// accelerate: raw image transfer, screen-to-screen copy, solid fill,
// pattern (tile) fill, bitmap (stipple) fill, alpha compositing, and a
// YUV overlay for the video path. The same type backs the server's
// offscreen pixmaps, the local-PC display path, and every client model.
package fb

import (
	"fmt"
	"hash/crc32"

	"thinc/internal/geom"
	"thinc/internal/pixel"
)

// Framebuffer is a w x h surface of ARGB pixels. It is not safe for
// concurrent use; callers serialize access (window servers are
// single-threaded, which THINC's non-blocking pipeline is designed around).
type Framebuffer struct {
	w, h int
	pix  []pixel.ARGB
}

// New allocates a framebuffer initialized to opaque black.
func New(w, h int) *Framebuffer {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("fb.New: negative size %dx%d", w, h))
	}
	f := &Framebuffer{w: w, h: h, pix: make([]pixel.ARGB, w*h)}
	black := pixel.RGB(0, 0, 0)
	for i := range f.pix {
		f.pix[i] = black
	}
	return f
}

// W returns the width in pixels.
func (f *Framebuffer) W() int { return f.w }

// H returns the height in pixels.
func (f *Framebuffer) H() int { return f.h }

// Bounds returns the full-surface rectangle.
func (f *Framebuffer) Bounds() geom.Rect { return geom.XYWH(0, 0, f.w, f.h) }

// Pix returns the backing pixel slice in row-major order.
func (f *Framebuffer) Pix() []pixel.ARGB { return f.pix }

// At returns the pixel at (x, y); out-of-bounds reads return zero.
func (f *Framebuffer) At(x, y int) pixel.ARGB {
	if x < 0 || y < 0 || x >= f.w || y >= f.h {
		return 0
	}
	return f.pix[y*f.w+x]
}

// Set writes the pixel at (x, y); out-of-bounds writes are dropped.
func (f *Framebuffer) Set(x, y int, p pixel.ARGB) {
	if x < 0 || y < 0 || x >= f.w || y >= f.h {
		return
	}
	f.pix[y*f.w+x] = p
}

// clip returns r clipped to the surface.
func (f *Framebuffer) clip(r geom.Rect) geom.Rect {
	return r.Intersect(f.Bounds())
}

// FillSolid paints every pixel of r with color c (the SFILL command).
func (f *Framebuffer) FillSolid(r geom.Rect, c pixel.ARGB) {
	r = f.clip(r)
	for y := r.Y0; y < r.Y1; y++ {
		row := f.pix[y*f.w+r.X0 : y*f.w+r.X1]
		for i := range row {
			row[i] = c
		}
	}
}

// Tile is a small repeating pattern image used by PFILL.
type Tile struct {
	W, H int
	Pix  []pixel.ARGB // row-major, W*H
}

// NewTile builds a tile from its pixels; it panics on a size mismatch so
// protocol decoding bugs surface immediately.
func NewTile(w, h int, pix []pixel.ARGB) *Tile {
	if len(pix) != w*h || w <= 0 || h <= 0 {
		panic(fmt.Sprintf("fb.NewTile: %dx%d with %d pixels", w, h, len(pix)))
	}
	return &Tile{W: w, H: h, Pix: pix}
}

// FillTile tiles r with t, anchored at the surface origin so that
// adjacent fills align seamlessly (the PFILL command).
func (f *Framebuffer) FillTile(r geom.Rect, t *Tile) {
	f.FillTileAnchored(r, t, 0, 0)
}

// FillTileAnchored tiles r with t using tile phase (ax, ay): the tile's
// (0,0) pixel lands on surface coordinates congruent to (ax, ay). THINC
// needs the explicit anchor to preserve pattern alignment when offscreen
// fills are relocated on screen (§4.1).
func (f *Framebuffer) FillTileAnchored(r geom.Rect, t *Tile, ax, ay int) {
	r = f.clip(r)
	for y := r.Y0; y < r.Y1; y++ {
		ty := (((y - ay) % t.H) + t.H) % t.H
		trow := t.Pix[ty*t.W : (ty+1)*t.W]
		frow := f.pix[y*f.w : y*f.w+f.w]
		for x := r.X0; x < r.X1; x++ {
			frow[x] = trow[(((x-ax)%t.W)+t.W)%t.W]
		}
	}
}

// Bitmap is a 1-bit-per-pixel stipple used by the BITMAP command: ones
// take the foreground color, zeros the background (or are skipped when
// transparent), which is how glyph text reaches the client.
type Bitmap struct {
	W, H int
	Bits []byte // rows padded to whole bytes, MSB first
}

// BitmapStride returns the number of bytes per bitmap row for width w.
func BitmapStride(w int) int { return (w + 7) / 8 }

// NewBitmap allocates a cleared bitmap.
func NewBitmap(w, h int) *Bitmap {
	return &Bitmap{W: w, H: h, Bits: make([]byte, BitmapStride(w)*h)}
}

// BitAt returns the stipple bit at (x, y).
func (b *Bitmap) BitAt(x, y int) bool {
	if x < 0 || y < 0 || x >= b.W || y >= b.H {
		return false
	}
	return b.Bits[y*BitmapStride(b.W)+x/8]&(0x80>>uint(x%8)) != 0
}

// SetBit sets the stipple bit at (x, y).
func (b *Bitmap) SetBit(x, y int, v bool) {
	if x < 0 || y < 0 || x >= b.W || y >= b.H {
		return
	}
	mask := byte(0x80 >> uint(x%8))
	idx := y*BitmapStride(b.W) + x/8
	if v {
		b.Bits[idx] |= mask
	} else {
		b.Bits[idx] &^= mask
	}
}

// FillBitmap paints r using bm as a stipple anchored at r's origin:
// set bits take fg; clear bits take bg, unless transparent is true, in
// which case clear bits leave the destination untouched. When fg or bg
// carry alpha, they are composited with OVER (anti-aliased text relies on
// the alpha channel surviving; see §3 of the paper).
func (f *Framebuffer) FillBitmap(r geom.Rect, bm *Bitmap, fg, bg pixel.ARGB, transparent bool) {
	clipped := f.clip(r)
	for y := clipped.Y0; y < clipped.Y1; y++ {
		by := y - r.Y0
		for x := clipped.X0; x < clipped.X1; x++ {
			bx := x - r.X0
			idx := y*f.w + x
			if bm.BitAt(bx%bm.W, by%bm.H) {
				f.pix[idx] = composite(fg, f.pix[idx])
			} else if !transparent {
				f.pix[idx] = composite(bg, f.pix[idx])
			}
		}
	}
}

func composite(src, dst pixel.ARGB) pixel.ARGB {
	if src.Opaque() {
		return src
	}
	return pixel.Over(src, dst)
}

// Copy moves the pixels of src to the rectangle of equal size at dst,
// handling overlapping source and destination correctly (the COPY
// command — scrolling and window moves depend on overlap safety).
func (f *Framebuffer) Copy(src geom.Rect, dst geom.Point) {
	dx, dy := dst.X-src.X0, dst.Y-src.Y0
	// Clip the destination, then back-project to the source so both stay
	// in bounds and congruent.
	dr := f.clip(f.clip(src).Translate(dx, dy))
	sr := dr.Translate(-dx, -dy)
	if dr.Empty() {
		return
	}
	if dy > 0 || (dy == 0 && dx > 0) {
		// Walk backwards to avoid clobbering unread source pixels.
		for y := dr.Y1 - 1; y >= dr.Y0; y-- {
			sy := y - dy
			if dx > 0 {
				for x := dr.X1 - 1; x >= dr.X0; x-- {
					f.pix[y*f.w+x] = f.pix[sy*f.w+x-dx]
				}
			} else {
				copy(f.pix[y*f.w+dr.X0:y*f.w+dr.X1], f.pix[sy*f.w+sr.X0:sy*f.w+sr.X1])
			}
		}
		return
	}
	for y := dr.Y0; y < dr.Y1; y++ {
		sy := y - dy
		copy(f.pix[y*f.w+dr.X0:y*f.w+dr.X1], f.pix[sy*f.w+sr.X0:sy*f.w+sr.X1])
	}
}

// CopyFrom copies the src rectangle of another framebuffer to dst on f
// (pixmap-to-screen and pixmap-to-pixmap transfers).
func (f *Framebuffer) CopyFrom(other *Framebuffer, src geom.Rect, dst geom.Point) {
	dx, dy := dst.X-src.X0, dst.Y-src.Y0
	dr := f.clip(other.clip(src).Translate(dx, dy))
	for y := dr.Y0; y < dr.Y1; y++ {
		sy := y - dy
		copy(f.pix[y*f.w+dr.X0:y*f.w+dr.X1],
			other.pix[sy*other.w+dr.X0-dx:sy*other.w+dr.X1-dx])
	}
}

// PutImage writes the row-major pixels img (stride in pixels) into r
// (the RAW command).
func (f *Framebuffer) PutImage(r geom.Rect, img []pixel.ARGB, stride int) {
	clipped := f.clip(r)
	for y := clipped.Y0; y < clipped.Y1; y++ {
		srow := img[(y-r.Y0)*stride+(clipped.X0-r.X0):]
		copy(f.pix[y*f.w+clipped.X0:y*f.w+clipped.X1], srow[:clipped.W()])
	}
}

// CompositeOver draws img (stride in pixels) over r using Porter-Duff
// OVER — the graphics-compositing path that THINC supports end to end.
func (f *Framebuffer) CompositeOver(r geom.Rect, img []pixel.ARGB, stride int) {
	clipped := f.clip(r)
	for y := clipped.Y0; y < clipped.Y1; y++ {
		srow := img[(y-r.Y0)*stride+(clipped.X0-r.X0):]
		drow := f.pix[y*f.w+clipped.X0 : y*f.w+clipped.X1]
		for i := range drow {
			drow[i] = pixel.Over(srow[i], drow[i])
		}
	}
}

// OverlayYV12 decodes the video frame and scales it into r — the client
// "hardware overlay" that makes full-screen playback cost the same as
// original-size playback (§4.2).
func (f *Framebuffer) OverlayYV12(r geom.Rect, frame *pixel.YV12Image) {
	clipped := f.clip(r)
	if clipped.Empty() {
		return
	}
	rgb := pixel.DecodeYV12(frame, r.W(), r.H())
	f.PutImage(r, rgb, r.W())
}

// ReadImage copies the pixels of r out of the framebuffer (screen
// scraping — what VNC-class systems do, and what THINC falls back to for
// RAW updates).
func (f *Framebuffer) ReadImage(r geom.Rect) []pixel.ARGB {
	r = f.clip(r)
	out := make([]pixel.ARGB, r.Area())
	for y := r.Y0; y < r.Y1; y++ {
		copy(out[(y-r.Y0)*r.W():], f.pix[y*f.w+r.X0:y*f.w+r.X1])
	}
	return out
}

// Clone returns a deep copy of the framebuffer.
func (f *Framebuffer) Clone() *Framebuffer {
	g := &Framebuffer{w: f.w, h: f.h, pix: make([]pixel.ARGB, len(f.pix))}
	copy(g.pix, f.pix)
	return g
}

// Equal reports whether two framebuffers have identical geometry and pixels.
func (f *Framebuffer) Equal(other *Framebuffer) bool {
	if f.w != other.w || f.h != other.h {
		return false
	}
	for i := range f.pix {
		if f.pix[i] != other.pix[i] {
			return false
		}
	}
	return true
}

// EqualIn reports whether the two framebuffers agree on every pixel of r.
func (f *Framebuffer) EqualIn(other *Framebuffer, r geom.Rect) bool {
	r = f.clip(other.clip(r))
	for y := r.Y0; y < r.Y1; y++ {
		for x := r.X0; x < r.X1; x++ {
			if f.pix[y*f.w+x] != other.pix[y*other.w+x] {
				return false
			}
		}
	}
	return true
}

// DiffRegion returns the region where f and other disagree (they must
// have equal geometry). Used by tests and by the screen-scraping
// baselines' dirty-region detection.
func (f *Framebuffer) DiffRegion(other *Framebuffer) geom.Region {
	if f.w != other.w || f.h != other.h {
		panic("fb.DiffRegion: geometry mismatch")
	}
	var rg geom.Region
	for y := 0; y < f.h; y++ {
		x := 0
		for x < f.w {
			if f.pix[y*f.w+x] == other.pix[y*f.w+x] {
				x++
				continue
			}
			x0 := x
			for x < f.w && f.pix[y*f.w+x] != other.pix[y*f.w+x] {
				x++
			}
			rg.UnionRect(geom.Rect{X0: x0, Y0: y, X1: x, Y1: y + 1})
		}
	}
	return rg
}

// Checksum returns a CRC-32 over the pixel contents, for cheap
// equality probes in integration tests.
func (f *Framebuffer) Checksum() uint32 {
	buf := make([]byte, 0, len(f.pix)*4)
	for _, p := range f.pix {
		buf = append(buf, byte(p>>24), byte(p>>16), byte(p>>8), byte(p))
	}
	return crc32.ChecksumIEEE(buf)
}
