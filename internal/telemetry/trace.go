package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Event is one trace record: a point event or a completed span.
type Event struct {
	Seq     uint64 `json:"seq"`
	TimeUS  int64  `json:"time_us"` // wall-clock microseconds
	Name    string `json:"name"`
	Detail  string `json:"detail,omitempty"`
	DurUS   int64  `json:"dur_us,omitempty"` // span duration (0 for point events)
	Session string `json:"session,omitempty"`
}

// Tracer records events into a fixed-capacity ring buffer. It starts
// disabled: every emit checks one atomic flag and returns immediately,
// so instrumented hot paths cost nothing until someone turns tracing on
// (the debug listener does). Callers formatting event details should
// gate on Enabled() so the formatting work is skipped too.
//
// All methods are safe on a nil *Tracer — components can carry an
// optional tracer without nil checks at every call site.
type Tracer struct {
	enabled atomic.Bool
	// dropped counts ring overwrites: events evicted before any reader
	// saw them. Exported as thinc_trace_dropped_total so span-log
	// consumers know when a window is incomplete.
	dropped atomic.Int64

	mu   sync.Mutex
	buf  []Event
	next int    // ring write position
	n    int    // events currently held
	seq  uint64 // total events ever emitted
}

// NewTracer returns a tracer holding the last capacity events (min 16).
func NewTracer(capacity int) *Tracer {
	if capacity < 16 {
		capacity = 16
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// SetEnabled turns event recording on or off.
func (t *Tracer) SetEnabled(on bool) {
	if t == nil {
		return
	}
	t.enabled.Store(on)
}

// Enabled reports whether events are being recorded. Hot paths use it
// to skip detail formatting entirely.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// Event records a point event.
func (t *Tracer) Event(name, detail string) {
	if !t.Enabled() {
		return
	}
	t.record(Event{TimeUS: time.Now().UnixMicro(), Name: name, Detail: detail})
}

// SessionEvent records a point event attributed to a session, so
// /debug/spans consumers can filter one client's timeline out of the
// shared ring.
func (t *Tracer) SessionEvent(session, name, detail string) {
	if !t.Enabled() {
		return
	}
	t.record(Event{TimeUS: time.Now().UnixMicro(), Name: name, Detail: detail,
		Session: session})
}

func (t *Tracer) record(e Event) {
	t.mu.Lock()
	t.seq++
	e.Seq = t.seq
	t.buf[t.next] = e
	t.next = (t.next + 1) % len(t.buf)
	if t.n < len(t.buf) {
		t.n++
	} else {
		// The slot we just wrote held an event nobody will see again.
		t.dropped.Add(1)
	}
	t.mu.Unlock()
}

// Dropped returns how many events have been overwritten before export.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Span is an in-progress timed operation started by Start. The zero
// Span (returned when tracing is disabled) is inert.
type Span struct {
	t       *Tracer
	name    string
	startUS int64
}

// Start opens a span; End records it with its duration.
func (t *Tracer) Start(name string) Span {
	if !t.Enabled() {
		return Span{}
	}
	return Span{t: t, name: name, startUS: time.Now().UnixMicro()}
}

// End completes the span with an optional detail string.
func (s Span) End(detail string) {
	if s.t == nil {
		return
	}
	now := time.Now().UnixMicro()
	s.t.record(Event{TimeUS: s.startUS, Name: s.name, Detail: detail, DurUS: now - s.startUS})
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, t.n)
	start := t.next - t.n
	if start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(start+i)%len(t.buf)])
	}
	return out
}

// Len returns how many events are currently retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}
