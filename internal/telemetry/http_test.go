package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// httpGet fetches path from ts and returns status, body, and headers.
func httpGet(t *testing.T, ts *httptest.Server, path string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b), resp.Header
}

// decodeSpans parses an NDJSON span-log body into events.
func decodeSpans(t *testing.T, body string) []Event {
	t.Helper()
	var out []Event
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if line == "" {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("span line %q: %v", line, err)
		}
		out = append(out, e)
	}
	return out
}

func TestSpansEndpoint(t *testing.T) {
	tr := NewTracer(32)
	tr.SetEnabled(true)
	tr.SessionEvent("alice", "flush", "bytes=100")
	tr.SessionEvent("bob", "flush", "bytes=200")
	tr.SessionEvent("alice", "e2e.ack", "e2e_us=900")
	tr.Event("host", "tick") // no session

	ts := httptest.NewServer(Handler(NewRegistry(), tr))
	defer ts.Close()

	code, body, hdr := httpGet(t, ts, "/debug/spans")
	if code != 200 {
		t.Fatalf("/debug/spans code=%d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q, want application/x-ndjson", ct)
	}
	if d := hdr.Get("X-Trace-Dropped"); d != "0" {
		t.Errorf("X-Trace-Dropped = %q, want 0", d)
	}
	all := decodeSpans(t, body)
	if len(all) != 4 {
		t.Fatalf("got %d events, want 4", len(all))
	}
	// Oldest first.
	for i := 1; i < len(all); i++ {
		if all[i].Seq <= all[i-1].Seq {
			t.Fatalf("span order not oldest-first: %+v", all)
		}
	}
}

func TestSpansSessionFilter(t *testing.T) {
	tr := NewTracer(32)
	tr.SetEnabled(true)
	tr.SessionEvent("alice", "flush", "")
	tr.SessionEvent("bob", "flush", "")
	tr.SessionEvent("alice", "e2e.ack", "")

	ts := httptest.NewServer(Handler(nil, tr))
	defer ts.Close()

	_, body, _ := httpGet(t, ts, "/debug/spans?session=alice")
	evs := decodeSpans(t, body)
	if len(evs) != 2 {
		t.Fatalf("session filter kept %d events, want 2", len(evs))
	}
	for _, e := range evs {
		if e.Session != "alice" {
			t.Fatalf("foreign session leaked through filter: %+v", e)
		}
	}

	// Filter plus newest-n: only the latest alice event survives.
	_, body, _ = httpGet(t, ts, "/debug/spans?session=alice&n=1")
	evs = decodeSpans(t, body)
	if len(evs) != 1 || evs[0].Name != "e2e.ack" {
		t.Fatalf("filter+n=1 = %+v, want just the newest alice event", evs)
	}

	// Unknown session: empty document, still well-formed.
	code, body, _ := httpGet(t, ts, "/debug/spans?session=nobody")
	if code != 200 || strings.TrimSpace(body) != "" {
		t.Fatalf("unknown session: code=%d body=%q, want empty 200", code, body)
	}
}

func TestSpansDroppedHeader(t *testing.T) {
	tr := NewTracer(16)
	tr.SetEnabled(true)
	for i := 0; i < 21; i++ { // capacity 16: five overwrites
		tr.Event("e", "")
	}
	ts := httptest.NewServer(Handler(nil, tr))
	defer ts.Close()

	_, _, hdr := httpGet(t, ts, "/debug/spans")
	if d := hdr.Get("X-Trace-Dropped"); d != "5" {
		t.Errorf("X-Trace-Dropped = %q, want 5", d)
	}
	if tr.Dropped() != 5 {
		t.Errorf("Dropped() = %d, want 5", tr.Dropped())
	}
}

func TestTraceNewestN(t *testing.T) {
	tr := NewTracer(32)
	tr.SetEnabled(true)
	for i := 0; i < 10; i++ {
		tr.Event("e", "")
	}
	ts := httptest.NewServer(Handler(nil, tr))
	defer ts.Close()

	_, body, _ := httpGet(t, ts, "/debug/trace?n=3")
	var out struct {
		Events []Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	if len(out.Events) != 3 || out.Events[2].Seq != 10 {
		t.Fatalf("n=3 returned %d events ending at seq %d, want newest 3",
			len(out.Events), out.Events[len(out.Events)-1].Seq)
	}

	// Malformed and out-of-range n values fall back to the full window.
	for _, q := range []string{"?n=banana", "?n=-1", "?n=999"} {
		_, body, _ := httpGet(t, ts, "/debug/trace"+q)
		if err := json.Unmarshal([]byte(body), &out); err != nil {
			t.Fatalf("trace%s JSON: %v", q, err)
		}
		if len(out.Events) != 10 {
			t.Fatalf("trace%s returned %d events, want all 10", q, len(out.Events))
		}
	}
}

func TestHandlerNilBackends(t *testing.T) {
	// reg and tr may both be nil; the endpoints serve empty documents
	// rather than panicking (nil *Tracer methods are all safe).
	ts := httptest.NewServer(Handler(nil, nil))
	defer ts.Close()

	if code, body, _ := httpGet(t, ts, "/metrics"); code != 200 || strings.Contains(body, "thinc_") {
		t.Fatalf("nil /metrics: code=%d body=%q", code, body)
	}
	code, body, hdr := httpGet(t, ts, "/debug/spans")
	if code != 200 || strings.TrimSpace(body) != "" || hdr.Get("X-Trace-Dropped") != "0" {
		t.Fatalf("nil /debug/spans: code=%d body=%q dropped=%q",
			code, body, hdr.Get("X-Trace-Dropped"))
	}
	code, body, _ = httpGet(t, ts, "/debug/vars")
	if code != 200 || strings.TrimSpace(body) != "null" {
		t.Fatalf("nil /debug/vars: code=%d body=%q", code, body)
	}
}

func TestIndexPage(t *testing.T) {
	ts := httptest.NewServer(Handler(nil, nil))
	defer ts.Close()

	code, body, _ := httpGet(t, ts, "/")
	if code != 200 {
		t.Fatalf("index code=%d", code)
	}
	for _, want := range []string{"/metrics", "/debug/trace", "/debug/spans", "/debug/vars", "/debug/pprof"} {
		if !strings.Contains(body, want) {
			t.Errorf("index page missing %s", want)
		}
	}
}
