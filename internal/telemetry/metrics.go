// Package telemetry is THINC's dependency-free observability core: a
// low-overhead metrics registry (atomic counters, gauges, and
// fixed-bucket histograms with consistent snapshot semantics), a
// ring-buffer span/event tracer, and a debug HTTP listener exposing
// Prometheus-format metrics, recent trace events, and pprof.
//
// The hot-path contract is strict: incrementing a Counter or Gauge and
// observing into a Histogram perform only atomic operations — no locks,
// no allocations — so the command pipeline can be instrumented
// unconditionally. All registration (which does allocate and lock)
// happens once at setup time; callers keep the returned instrument
// pointers and touch them directly per event.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value pair attached to a series.
type Label struct {
	Key, Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the counter to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution. Bucket i counts
// observations v <= Bounds[i]; one extra bucket counts the overflow
// (+Inf). Observations and snapshots are lock-free; a snapshot's total
// count is derived from the same bucket reads it reports, so the
// invariant count == sum(buckets) holds even under concurrent writers.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1
	sum    atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// HistogramSnapshot is a consistent point-in-time view of a Histogram.
type HistogramSnapshot struct {
	Bounds  []int64 `json:"bounds"`  // bucket upper bounds (le)
	Buckets []int64 `json:"buckets"` // per-bucket counts, non-cumulative; last is +Inf
	Count   int64   `json:"count"`   // == sum of Buckets by construction
	Sum     int64   `json:"sum"`
}

// Snapshot captures the histogram. Count is computed from the very
// bucket reads returned, so Count always equals the sum of Buckets.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:  h.bounds,
		Buckets: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Buckets[i] = c
		s.Count += c
	}
	s.Sum = h.sum.Load()
	return s
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Metric kinds.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// series is one labeled instrument inside a family. Exactly one of the
// value sources is set.
type series struct {
	labels   []Label
	labelStr string // pre-rendered {k="v",...} ("" when unlabeled)
	ctr      *Counter
	gauge    *Gauge
	fn       func() int64 // CounterFunc / GaugeFunc
	hist     *Histogram
}

// family is all series sharing one metric name.
type family struct {
	name, help, kind string
	series           []*series
}

// Registry holds metric families and renders them. Registration is
// idempotent: re-registering the same name+labels returns the existing
// instrument, so independent subsystems can share a registry safely.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// getFamily finds or creates the family, checking kind consistency.
func (r *Registry) getFamily(name, help, kind string) *family {
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.families = append(r.families, f)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	return f
}

// findSeries returns the series with exactly these labels, or nil.
func (f *family) findSeries(labelStr string) *series {
	for _, s := range f.series {
		if s.labelStr == labelStr {
			return s
		}
	}
	return nil
}

// Counter registers (or finds) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, KindCounter)
	ls := renderLabels(labels)
	if s := f.findSeries(ls); s != nil && s.ctr != nil {
		return s.ctr
	}
	c := &Counter{}
	f.series = append(f.series, &series{labels: labels, labelStr: ls, ctr: c})
	return c
}

// Gauge registers (or finds) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, KindGauge)
	ls := renderLabels(labels)
	if s := f.findSeries(ls); s != nil && s.gauge != nil {
		return s.gauge
	}
	g := &Gauge{}
	f.series = append(f.series, &series{labels: labels, labelStr: ls, gauge: g})
	return g
}

// GaugeFunc registers a gauge series whose value is computed at
// collection time — point-in-time state (queue depths, client counts)
// costs nothing on the hot path this way.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, KindGauge)
	ls := renderLabels(labels)
	if s := f.findSeries(ls); s != nil {
		s.fn = fn
		s.gauge, s.ctr = nil, nil
		return
	}
	f.series = append(f.series, &series{labels: labels, labelStr: ls, fn: fn})
}

// CounterFunc registers a counter series computed at collection time,
// for subsystems that already keep their own atomic accounting.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, KindCounter)
	ls := renderLabels(labels)
	if s := f.findSeries(ls); s != nil {
		s.fn = fn
		s.gauge, s.ctr = nil, nil
		return
	}
	f.series = append(f.series, &series{labels: labels, labelStr: ls, fn: fn})
}

// Histogram registers (or finds) a histogram series with the given
// bucket upper bounds (ascending).
func (r *Registry) Histogram(name, help string, bounds []int64, labels ...Label) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not ascending", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, KindHistogram)
	ls := renderLabels(labels)
	if s := f.findSeries(ls); s != nil && s.hist != nil {
		return s.hist
	}
	h := &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	f.series = append(f.series, &series{labels: labels, labelStr: ls, hist: h})
	return h
}

func (s *series) value() int64 {
	switch {
	case s.ctr != nil:
		return s.ctr.Value()
	case s.gauge != nil:
		return s.gauge.Value()
	case s.fn != nil:
		return s.fn()
	}
	return 0
}

// Value returns the current value of the series with exactly the given
// labels (0 when absent). Histograms report their observation count.
// The series is evaluated outside the registry lock: a derived
// GaugeFunc may read back through the registry.
func (r *Registry) Value(name string, labels ...Label) int64 {
	r.mu.Lock()
	f := r.byName[name]
	var s *series
	if f != nil {
		s = f.findSeries(renderLabels(labels))
	}
	r.mu.Unlock()
	if s == nil {
		return 0
	}
	if s.hist != nil {
		return s.hist.Count()
	}
	return s.value()
}

// Total sums every series of the family. Histograms contribute their
// observation counts. Like Value, series are evaluated outside the
// registry lock.
func (r *Registry) Total(name string) int64 {
	r.mu.Lock()
	f := r.byName[name]
	var ss []*series
	if f != nil {
		ss = make([]*series, len(f.series))
		copy(ss, f.series)
	}
	r.mu.Unlock()
	var n int64
	for _, s := range ss {
		if s.hist != nil {
			n += s.hist.Count()
			continue
		}
		n += s.value()
	}
	return n
}

// HistogramStats returns count and sum for a histogram series.
func (r *Registry) HistogramStats(name string, labels ...Label) (count, sum int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		return 0, 0
	}
	s := f.findSeries(renderLabels(labels))
	if s == nil || s.hist == nil {
		return 0, 0
	}
	snap := s.hist.Snapshot()
	return snap.Count, snap.Sum
}

// WritePrometheus renders every family in the Prometheus text
// exposition format.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		r.mu.Lock()
		ss := make([]*series, len(f.series))
		copy(ss, f.series)
		r.mu.Unlock()
		for _, s := range ss {
			if s.hist != nil {
				snap := s.hist.Snapshot()
				var cum int64
				for i, b := range snap.Bounds {
					cum += snap.Buckets[i]
					fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, mergeLabel(s.labels, "le", fmt.Sprint(b)), cum)
				}
				cum += snap.Buckets[len(snap.Buckets)-1]
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, mergeLabel(s.labels, "le", "+Inf"), cum)
				fmt.Fprintf(w, "%s_sum%s %d\n", f.name, s.labelStr, snap.Sum)
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.labelStr, snap.Count)
				continue
			}
			fmt.Fprintf(w, "%s%s %d\n", f.name, s.labelStr, s.value())
		}
	}
}

// mergeLabel renders the series labels plus one extra pair (le).
func mergeLabel(labels []Label, key, value string) string {
	all := make([]Label, 0, len(labels)+1)
	all = append(all, labels...)
	all = append(all, Label{Key: key, Value: value})
	return renderLabels(all)
}

// SeriesSnapshot is one series in JSON-friendly form.
type SeriesSnapshot struct {
	Name      string             `json:"name"`
	Kind      string             `json:"kind"`
	Labels    map[string]string  `json:"labels,omitempty"`
	Value     int64              `json:"value,omitempty"`
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
}

// Snapshot captures every series, sorted by name then label string —
// the payload bench harnesses serialize to BENCH_*.json.
func (r *Registry) Snapshot() []SeriesSnapshot {
	// Like WritePrometheus, copy the structure under the lock but
	// evaluate series values outside it: a GaugeFunc may read back
	// through the registry (e.g. a derived ratio gauge), which would
	// self-deadlock on a held mutex.
	type entry struct {
		f *family
		s *series
	}
	r.mu.Lock()
	var entries []entry
	for _, f := range r.families {
		for _, s := range f.series {
			entries = append(entries, entry{f, s})
		}
	}
	r.mu.Unlock()
	out := make([]SeriesSnapshot, 0, len(entries))
	for _, e := range entries {
		f, s := e.f, e.s
		snap := SeriesSnapshot{Name: f.name, Kind: f.kind}
		if len(s.labels) > 0 {
			snap.Labels = make(map[string]string, len(s.labels))
			for _, l := range s.labels {
				snap.Labels[l.Key] = l.Value
			}
		}
		if s.hist != nil {
			h := s.hist.Snapshot()
			snap.Histogram = &h
		} else {
			snap.Value = s.value()
		}
		out = append(out, snap)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return fmt.Sprint(out[i].Labels) < fmt.Sprint(out[j].Labels)
	})
	return out
}

// NumSeries returns the number of distinct series registered (histogram
// families count one series per label set).
func (r *Registry) NumSeries() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, f := range r.families {
		n += len(f.series)
	}
	return n
}

// Common bucket layouts.
var (
	// SizeBuckets covers wire sizes from one SRSF queue bound to the
	// next (64 B .. 32 KiB, then overflow) — command sizes map directly
	// onto scheduler queues.
	SizeBuckets = []int64{64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768}
	// LatencyBucketsUS covers microsecond latencies from 50us to 4s.
	LatencyBucketsUS = []int64{50, 100, 250, 500, 1000, 2500, 5000, 10000,
		25000, 50000, 100000, 250000, 500000, 1000000, 4000000}
	// FineLatencyBucketsNS covers nanosecond latencies from 100ns to
	// 1s, with sub-millisecond resolution the RTT-scale preset above
	// lacks: the zero-alloc encode path (~216ns) and the per-stage
	// pipeline legs (queue drain, flush write) land in distinct buckets
	// instead of collapsing into the first one.
	FineLatencyBucketsNS = []int64{100, 250, 500, 1000, 2500, 5000,
		10000, 25000, 50000, 100000, 250000, 500000, 1000000, 2500000,
		5000000, 10000000, 25000000, 50000000, 100000000, 250000000,
		500000000, 1000000000}
	// ByteBuckets covers per-flush byte volumes (256 B .. 4 MiB).
	ByteBuckets = []int64{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20}
	// CountBuckets covers small counts (queue residency in flush
	// periods, batch sizes).
	CountBuckets = []int64{0, 1, 2, 4, 8, 16, 32, 64, 128}
)
