package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestTracerRing(t *testing.T) {
	tr := NewTracer(16)
	tr.Event("dropped", "tracing disabled") // disabled: must not record
	if tr.Len() != 0 {
		t.Fatal("disabled tracer recorded an event")
	}
	tr.SetEnabled(true)
	for i := 0; i < 20; i++ {
		tr.Event("e", "")
	}
	evs := tr.Events()
	if len(evs) != 16 {
		t.Fatalf("ring holds %d events, want capacity 16", len(evs))
	}
	// Oldest-first, monotone seq, and the first 4 were overwritten.
	if evs[0].Seq != 5 || evs[len(evs)-1].Seq != 20 {
		t.Fatalf("seq range [%d,%d], want [5,20]", evs[0].Seq, evs[len(evs)-1].Seq)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("non-monotone seq at %d: %v -> %v", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestSpan(t *testing.T) {
	tr := NewTracer(16)
	tr.SetEnabled(true)
	sp := tr.Start("op")
	sp.End("done")
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Name != "op" || evs[0].Detail != "done" {
		t.Fatalf("events = %+v", evs)
	}
	if evs[0].DurUS < 0 {
		t.Fatalf("negative duration %d", evs[0].DurUS)
	}
}

func TestDebugHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("thinc_test_total", "t").Add(11)
	tr := NewTracer(32)
	tr.SetEnabled(true)
	tr.Event("attach", "user=demo")

	ts := httptest.NewServer(Handler(reg, tr))
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "thinc_test_total 11") {
		t.Fatalf("/metrics: code=%d body=%q", code, body)
	}
	code, body := get("/debug/trace")
	if code != 200 {
		t.Fatalf("/debug/trace code=%d", code)
	}
	var out struct {
		Enabled bool    `json:"enabled"`
		Events  []Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("trace JSON: %v (%q)", err, body)
	}
	if !out.Enabled || len(out.Events) != 1 || out.Events[0].Name != "attach" {
		t.Fatalf("trace = %+v", out)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "thinc_test_total") {
		t.Fatalf("/debug/vars: code=%d body=%q", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline code=%d", code)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Fatalf("unknown path code=%d, want 404", code)
	}
}

func TestServeLifecycle(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(16)
	s, err := Serve("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if !tr.Enabled() {
		t.Fatal("Serve must enable the tracer")
	}
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("GET metrics: %v", err)
	}
	resp.Body.Close()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if tr.Enabled() {
		t.Fatal("Close must disable the tracer")
	}
}
