package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops", L("kind", "a"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if got := r.Value("test_ops_total", L("kind", "a")); got != 5 {
		t.Fatalf("registry value = %d, want 5", got)
	}
	g := r.Gauge("test_depth", "depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_x_total", "x", L("q", "0"))
	b := r.Counter("test_x_total", "x", L("q", "0"))
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	c := r.Counter("test_x_total", "x", L("q", "1"))
	if a == c {
		t.Fatal("different labels must return a different counter")
	}
	if n := r.NumSeries(); n != 2 {
		t.Fatalf("NumSeries = %d, want 2", n)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_y_total", "y")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as gauge must panic")
		}
	}()
	r.Gauge("test_y_total", "y")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_size_bytes", "sizes", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 100, 500, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []int64{2, 2, 1, 1} // <=10, <=100, <=1000, +Inf
	for i, w := range want {
		if s.Buckets[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, s.Buckets[i], w, s.Buckets)
		}
	}
	if s.Count != 6 || s.Sum != 5+10+11+100+500+5000 {
		t.Fatalf("count=%d sum=%d", s.Count, s.Sum)
	}
}

// TestSnapshotReentrantGaugeFunc guards against a self-deadlock: a
// GaugeFunc that reads back through the registry (a derived ratio
// gauge) must not hang Snapshot, which used to evaluate values while
// holding the registry lock.
func TestSnapshotReentrantGaugeFunc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_base_total", "base")
	c.Add(5)
	r.GaugeFunc("test_derived", "reads the registry back",
		func() int64 { return r.Value("test_base_total") * 2 })
	done := make(chan []SeriesSnapshot, 1)
	go func() { done <- r.Snapshot() }()
	select {
	case snaps := <-done:
		for _, s := range snaps {
			if s.Name == "test_derived" && s.Value != 10 {
				t.Fatalf("derived gauge = %d, want 10", s.Value)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Snapshot deadlocked on a reentrant GaugeFunc")
	}
}

// TestValueReentrantGaugeFunc covers the direct-read path: Value and
// Total must evaluate a derived GaugeFunc outside the registry lock,
// or a gauge that reads back through the registry self-deadlocks the
// first time a bench harness or debug handler reads it by name.
func TestValueReentrantGaugeFunc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_base_total", "base")
	c.Add(7)
	r.GaugeFunc("test_derived", "reads the registry back",
		func() int64 { return r.Value("test_base_total") * 3 })
	done := make(chan [2]int64, 1)
	go func() { done <- [2]int64{r.Value("test_derived"), r.Total("test_derived")} }()
	select {
	case got := <-done:
		if got[0] != 21 || got[1] != 21 {
			t.Fatalf("derived gauge Value=%d Total=%d, want 21", got[0], got[1])
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Value/Total deadlocked on a reentrant GaugeFunc")
	}
}

// TestSnapshotConsistencyUnderWriters is the telemetry-consistency
// guarantee: while many goroutines observe concurrently, every
// histogram snapshot must satisfy count == sum(bucket counts), and
// counters must never be seen above their final value.
func TestSnapshotConsistencyUnderWriters(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_lat_us", "latency", []int64{1, 2, 4, 8, 16})
	c := r.Counter("test_n_total", "n")

	const writers = 8
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(seed + int64(i%20))
				c.Inc()
			}
		}(int64(w))
	}
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			var sum int64
			for _, b := range s.Buckets {
				sum += b
			}
			if s.Count != sum {
				t.Errorf("torn snapshot: count=%d sum(buckets)=%d", s.Count, sum)
				return
			}
			if v := c.Value(); v > writers*perWriter {
				t.Errorf("counter overshot: %d", v)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	readerWG.Wait()

	if got := h.Count(); got != writers*perWriter {
		t.Fatalf("final count = %d, want %d", got, writers*perWriter)
	}
	if got := c.Value(); got != writers*perWriter {
		t.Fatalf("final counter = %d, want %d", got, writers*perWriter)
	}
}

func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("thinc_wire_bytes_total", "bytes by type", L("type", "RAW")).Add(42)
	r.Counter("thinc_wire_bytes_total", "bytes by type", L("type", "COPY")).Add(7)
	r.Gauge("thinc_clients", "attached clients").Set(3)
	r.GaugeFunc("thinc_queue_depth", "depth", func() int64 { return 9 }, L("queue", "0"))
	h := r.Histogram("thinc_rtt_us", "rtt", []int64{100, 1000})
	h.Observe(50)
	h.Observe(500)
	h.Observe(5000)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()

	for _, want := range []string{
		"# TYPE thinc_wire_bytes_total counter",
		`thinc_wire_bytes_total{type="RAW"} 42`,
		`thinc_wire_bytes_total{type="COPY"} 7`,
		"# TYPE thinc_clients gauge",
		"thinc_clients 3",
		`thinc_queue_depth{queue="0"} 9`,
		"# TYPE thinc_rtt_us histogram",
		`thinc_rtt_us_bucket{le="100"} 1`,
		`thinc_rtt_us_bucket{le="1000"} 2`,
		`thinc_rtt_us_bucket{le="+Inf"} 3`,
		"thinc_rtt_us_sum 5550",
		"thinc_rtt_us_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "b", L("type", "RAW")).Add(10)
	r.Histogram("a_us", "a", []int64{1}).Observe(2)
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d series, want 2", len(snap))
	}
	// Sorted by name: a_us first.
	if snap[0].Name != "a_us" || snap[0].Histogram == nil {
		t.Fatalf("first series = %+v", snap[0])
	}
	if snap[1].Name != "b_total" || snap[1].Value != 10 || snap[1].Labels["type"] != "RAW" {
		t.Fatalf("second series = %+v", snap[1])
	}
}

func TestTotalsAndHistogramStats(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_total", "t", L("k", "a")).Add(3)
	r.Counter("t_total", "t", L("k", "b")).Add(4)
	if got := r.Total("t_total"); got != 7 {
		t.Fatalf("Total = %d, want 7", got)
	}
	h := r.Histogram("h_us", "h", []int64{10})
	h.Observe(4)
	h.Observe(6)
	c, s := r.HistogramStats("h_us")
	if c != 2 || s != 10 {
		t.Fatalf("HistogramStats = %d,%d want 2,10", c, s)
	}
}

// TestHotPathAllocFree enforces the acceptance criterion directly:
// counter increments, gauge sets, histogram observations, and disabled
// tracer calls must not allocate.
func TestHotPathAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_c_total", "c")
	g := r.Gauge("alloc_g", "g")
	h := r.Histogram("alloc_h", "h", SizeBuckets)
	tr := NewTracer(64) // disabled

	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(9)
		g.Add(-1)
		h.Observe(777)
		tr.Event("x", "y")
		if tr.Enabled() {
			t.Fatal("tracer should be disabled")
		}
	}); n != 0 {
		t.Fatalf("hot path allocated %.1f allocs/op, want 0", n)
	}
	var nilTr *Tracer
	if n := testing.AllocsPerRun(1000, func() {
		nilTr.Event("x", "y")
		nilTr.Start("s").End("")
	}); n != 0 {
		t.Fatalf("nil tracer allocated %.1f allocs/op, want 0", n)
	}
}
