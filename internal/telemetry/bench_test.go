package telemetry

import "testing"

// The benchmarks document the acceptance criterion: with the debug
// listener disabled (tracer off), instrumentation on the command hot
// path performs no allocations. Run with -benchmem or rely on
// ReportAllocs to see allocs/op — all of these must report 0.

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_c_total", "c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_h", "h", SizeBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 0xffff))
	}
}

func BenchmarkDisabledTracerEvent(b *testing.B) {
	tr := NewTracer(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Event("flush", "idle")
	}
}

// BenchmarkInstrumentedCommandPath models the full per-command
// telemetry cost the scheduler pays in Add+Flush: one class counter,
// one size histogram observation, one residency observation, one sent
// counter, plus the disabled-tracer check. Must be 0 allocs/op.
func BenchmarkInstrumentedCommandPath(b *testing.B) {
	r := NewRegistry()
	queued := r.Counter("bench_queued_total", "q", L("class", "partial"))
	sent := r.Counter("bench_sent_total", "s")
	size := r.Histogram("bench_size", "sz", SizeBuckets)
	wait := r.Histogram("bench_wait", "w", CountBuckets)
	tr := NewTracer(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		queued.Inc()
		size.Observe(int64(i&0x3fff) + 17)
		wait.Observe(int64(i & 7))
		sent.Inc()
		if tr.Enabled() {
			tr.Event("cmd", "never reached")
		}
	}
}

func BenchmarkParallelObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_par", "p", LatencyBucketsUS)
	c := r.Counter("bench_par_total", "p")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := int64(0)
		for pb.Next() {
			i++
			h.Observe(i & 0xffff)
			c.Inc()
		}
	})
}
