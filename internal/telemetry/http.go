package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Handler builds the debug mux: /metrics (Prometheus text format),
// /debug/trace (recent ring-buffer events as JSON, ?n= limits to the
// newest n), /debug/vars (the full registry snapshot as JSON), and the
// standard /debug/pprof endpoints. reg and tr may be nil; the matching
// endpoints then serve empty documents.
func Handler(reg *Registry, tr *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg != nil {
			reg.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		events := tr.Events()
		if s := r.URL.Query().Get("n"); s != "" {
			var n int
			if _, err := jsonNumber(s, &n); err == nil && n >= 0 && n < len(events) {
				events = events[len(events)-n:]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			Enabled bool    `json:"enabled"`
			Events  []Event `json:"events"`
		}{Enabled: tr.Enabled(), Events: events})
	})
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, r *http.Request) {
		// JSON-lines span export for offline waterfall/flame analysis:
		// one Event object per line, oldest first. ?session= keeps only
		// one client's timeline; ?n= keeps the newest n after
		// filtering. The X-Trace-Dropped header carries the ring's
		// overwrite count so consumers know when the window is
		// incomplete.
		events := tr.Events()
		if sess := r.URL.Query().Get("session"); sess != "" {
			kept := events[:0]
			for _, e := range events {
				if e.Session == sess {
					kept = append(kept, e)
				}
			}
			events = kept
		}
		if s := r.URL.Query().Get("n"); s != "" {
			var n int
			if _, err := jsonNumber(s, &n); err == nil && n >= 0 && n < len(events) {
				events = events[len(events)-n:]
			}
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Trace-Dropped", strconv.FormatInt(tr.Dropped(), 10))
		enc := json.NewEncoder(w)
		for _, e := range events {
			_ = enc.Encode(e)
		}
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var snap []SeriesSnapshot
		if reg != nil {
			snap = reg.Snapshot()
		}
		_ = json.NewEncoder(w).Encode(snap)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("thinc debug listener\n\n" +
			"/metrics      Prometheus text format\n" +
			"/debug/trace  recent trace events (JSON, ?n=100)\n" +
			"/debug/spans  span log (JSON lines, ?session=user&n=100)\n" +
			"/debug/vars   registry snapshot (JSON)\n" +
			"/debug/pprof  Go runtime profiles\n"))
	})
	return mux
}

func jsonNumber(s string, n *int) (int, error) {
	err := json.Unmarshal([]byte(s), n)
	return *n, err
}

// Server is a running debug listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
	tr  *Tracer
}

// Serve starts the debug listener on addr. Starting the listener turns
// the tracer on; Close turns it back off. The returned Server reports
// the bound address (useful with ":0").
func Serve(addr string, reg *Registry, tr *Tracer) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	tr.SetEnabled(true)
	srv := &http.Server{Handler: Handler(reg, tr), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv, tr: tr}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and disables tracing.
func (s *Server) Close() error {
	s.tr.SetEnabled(false)
	return s.srv.Close()
}
