package core

import (
	"thinc/internal/geom"
)

// Queue is a command queue (§4): commands drawing to one surface,
// ordered by arrival, with the invariant that only commands relevant to
// the surface's current contents remain queued. As new commands
// overwrite old ones, overwritten commands are clipped (Partial) or
// evicted (all classes), according to their overwrite class.
type Queue struct {
	cmds []Command

	// Evicted counts commands that became irrelevant before delivery —
	// the work the translation layer saves (read by benchmarks).
	Evicted int

	// MaxBytes caps the queue's summed wire size (0 = unbounded). When
	// an Add overflows the cap, the oldest commands are dropped until
	// the queue holds at most half the cap: their regions simply stop
	// being reproducible from commands, so CopyOut routes them to the
	// raw-pixel fallback — eviction-to-RAW, deferred to copy-out time.
	MaxBytes int
	// Overflows counts budget overflow sweeps.
	Overflows int
}

// Len returns the number of queued commands.
func (q *Queue) Len() int { return len(q.cmds) }

// Commands returns the queued commands in arrival order. The slice is
// owned by the queue.
func (q *Queue) Commands() []Command { return q.cmds }

// Clear drops everything.
func (q *Queue) Clear() {
	q.cmds = q.cmds[:0]
}

// Add inserts c, first evicting or clipping the commands it overwrites
// (opaque classes only — transparent commands overwrite nothing), then
// attempting to merge c into the most recent surviving command
// (scanline and abutting-fill aggregation, §4).
func (q *Queue) Add(c Command) {
	if c.Class() != Transparent {
		// Evict by the command's *live* region: a clone extracted by
		// CopyOut may cover less than its bounds, and must not evict
		// content it will not repaint.
		cover := c.Live().Rects()
		kept := q.cmds[:0]
		for _, b := range q.cmds {
			evicted := false
			for _, r := range cover {
				if b.CoverOutput(r) {
					evicted = true
					break
				}
			}
			if evicted {
				q.Evicted++
				continue
			}
			kept = append(kept, b)
		}
		q.cmds = kept
	}
	if n := len(q.cmds); n > 0 && q.cmds[n-1].Merge(c) {
		q.enforceBudget()
		return
	}
	q.cmds = append(q.cmds, c)
	q.enforceBudget()
}

// enforceBudget applies MaxBytes: oldest-first drops down to half the
// cap. Dropping a prefix is always safe — the surface itself holds the
// rendered result, and CopyOut reads it as raw pixels for any region
// the remaining commands no longer cover.
func (q *Queue) enforceBudget() {
	if q.MaxBytes <= 0 {
		return
	}
	total := 0
	for _, c := range q.cmds {
		total += c.WireSize()
	}
	if total <= q.MaxBytes {
		return
	}
	q.Overflows++
	i := 0
	for ; i < len(q.cmds) && total > q.MaxBytes/2; i++ {
		total -= q.cmds[i].WireSize()
		q.Evicted++
	}
	q.cmds = append(q.cmds[:0], q.cmds[i:]...)
}

// LiveRegion returns the union of all queued commands' live regions.
func (q *Queue) LiveRegion() geom.Region {
	var rg geom.Region
	for _, c := range q.cmds {
		rg.Union(c.Live())
	}
	return rg
}

// CopyOut extracts clones of the commands needed to reproduce the src
// rectangle of this queue's surface elsewhere (§4.1). It returns the
// clones — clipped to src where the class permits, in arrival order,
// still in source coordinates — plus the fallback region: the part of
// src whose content is not reproducible from commands and must be
// transferred as raw pixels by the caller.
//
// Class rules:
//   - Partial commands are cloned with their live region clipped to src.
//   - Complete commands are cloned only when fully inside src; a
//     partially-overlapping Complete command's area falls to the
//     fallback (its payload cannot be split).
//   - Transparent commands are cloned only when the content they blend
//     over is itself fully reproduced by the cloned opaque commands;
//     otherwise their effect is already baked into the fallback pixels.
//
// The caller must emit the fallback pixels *before* the cloned commands
// (the clones repaint or blend consistently over them).
//
// Transparent eligibility uses *prefix* coverage — the opaque content
// reproduced by clones that arrived before the transparent command —
// because that is what the command blended over. If any transparent
// command in src is ineligible, the whole extraction degrades to the
// raw fallback: its blend result exists only in the rendered surface,
// and replaying any sibling commands around a baked snapshot risks
// double blends or stale repaints.
func (q *Queue) CopyOut(src geom.Rect) (clones []Command, fallback geom.Region) {
	var covered geom.Region // coverage by cloned opaque commands so far
	for _, b := range q.cmds {
		switch b.Class() {
		case Partial:
			inter := b.Live().Clone()
			inter.IntersectRect(src)
			if inter.Empty() {
				continue
			}
			cl := b.Clone()
			cl.Live().IntersectRect(src)
			covered.Union(&inter)
			clones = append(clones, cl)
		case Complete:
			if !b.Live().OverlapsRect(src) {
				continue
			}
			if src.Contains(b.Bounds()) {
				covered.Union(b.Live())
				clones = append(clones, b.Clone())
			}
			// Else: its visible part falls to the raw fallback.
		case Transparent:
			if !b.Live().OverlapsRect(src) {
				continue
			}
			if src.Contains(b.Bounds()) && covered.ContainsRect(b.Bounds()) {
				clones = append(clones, b.Clone())
				continue
			}
			// Ineligible transparent command: bail out to pixels.
			return nil, geom.RegionOf(src)
		}
	}
	fallback = geom.RegionOf(src)
	fallback.Subtract(&covered)
	return clones, fallback
}
