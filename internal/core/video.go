package core

import (
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/wire"
)

// Video stream objects (§4.2). Each stream represents one video being
// displayed: its format, geometry, and on-screen position. Frames are
// translated directly into protocol messages; the client buffer keeps at
// most one undelivered frame per stream, so a congested link drops
// frames at the server instead of queueing stale video.

// Stream is the server-side state of one video stream.
type Stream struct {
	ID         uint32
	SrcW, SrcH int
	Dst        geom.Rect
	Format     pixel.Format

	// FramesIn / FramesSent / FramesDropped account playback quality.
	FramesIn      int
	FramesSent    int
	FramesDropped int
}

// ctlCmd wraps a small control message (video init/move/end) as a
// Command so it flows through the client buffer with ordering intact.
// It participates in no overwrite interactions.
type ctlCmd struct {
	msg  wire.Message
	area geom.Rect
	rg   geom.Region
	rt   bool // deliver through the real-time queue (cursor traffic)
}

func newCtlCmd(msg wire.Message, area geom.Rect) *ctlCmd {
	return &ctlCmd{msg: msg, area: area, rg: geom.RegionOf(area)}
}

// Class implements Command.
func (c *ctlCmd) Class() Class { return Transparent }

// Bounds implements Command.
func (c *ctlCmd) Bounds() geom.Rect { return c.area }

// Live implements Command.
func (c *ctlCmd) Live() *geom.Region { return &c.rg }

// ReadsFrom implements Command.
func (c *ctlCmd) ReadsFrom() geom.Rect { return geom.Rect{} }

// CoverOutput implements Command: control messages are never evicted by
// drawing.
func (c *ctlCmd) CoverOutput(geom.Rect) bool { return false }

// Translate implements Command.
func (c *ctlCmd) Translate(int, int) {}

// Clone implements Command.
func (c *ctlCmd) Clone() Command { cp := *c; cp.rg = c.rg.Clone(); return &cp }

// WireSize implements Command.
func (c *ctlCmd) WireSize() int { return wire.WireSize(c.msg) }

// Emit implements Command.
func (c *ctlCmd) Emit(dst []wire.Message) []wire.Message { return append(dst, c.msg) }

// Merge implements Command.
func (c *ctlCmd) Merge(Command) bool { return false }

// FrameCmd carries one video frame. It is never evicted by drawing
// commands (the overlay sits above the framebuffer); it is *replaced*
// when a newer frame for the same stream arrives before delivery.
type FrameCmd struct {
	StreamID uint32
	Seq      uint32
	PTS      uint64
	Frame    *pixel.YV12Image
	area     geom.Rect
	rg       geom.Region
}

// NewFrame builds a frame command for a stream displayed at dst.
func NewFrame(stream uint32, seq uint32, pts uint64, frame *pixel.YV12Image, dst geom.Rect) *FrameCmd {
	return &FrameCmd{StreamID: stream, Seq: seq, PTS: pts, Frame: frame,
		area: dst, rg: geom.RegionOf(dst)}
}

// Class implements Command.
func (c *FrameCmd) Class() Class { return Transparent }

// Bounds implements Command.
func (c *FrameCmd) Bounds() geom.Rect { return c.area }

// Live implements Command.
func (c *FrameCmd) Live() *geom.Region { return &c.rg }

// ReadsFrom implements Command.
func (c *FrameCmd) ReadsFrom() geom.Rect { return geom.Rect{} }

// CoverOutput implements Command.
func (c *FrameCmd) CoverOutput(geom.Rect) bool { return false }

// Translate implements Command.
func (c *FrameCmd) Translate(dx, dy int) {
	c.area = c.area.Translate(dx, dy)
	c.rg.Translate(dx, dy)
}

// Clone implements Command.
func (c *FrameCmd) Clone() Command { cp := *c; cp.rg = c.rg.Clone(); return &cp }

// WireSize implements Command.
func (c *FrameCmd) WireSize() int {
	return wire.HeaderSize + 24 + c.Frame.Size()
}

// Emit implements Command.
func (c *FrameCmd) Emit(dst []wire.Message) []wire.Message {
	return append(dst, &wire.VideoFrame{
		Stream: c.StreamID, Seq: c.Seq, PTS: c.PTS,
		W: c.Frame.W, H: c.Frame.H, Data: c.Frame.Marshal(nil),
	})
}

// Merge implements Command.
func (c *FrameCmd) Merge(Command) bool { return false }

// AudioCmd carries timestamped PCM audio. Audio is small and
// latency-sensitive; the buffer treats it as real-time (§4.2, §5).
type AudioCmd struct {
	PTS  uint64
	Data []byte
	rg   geom.Region
}

// NewAudio builds an audio chunk command.
func NewAudio(pts uint64, data []byte) *AudioCmd {
	return &AudioCmd{PTS: pts, Data: data}
}

// Class implements Command.
func (c *AudioCmd) Class() Class { return Transparent }

// Bounds implements Command.
func (c *AudioCmd) Bounds() geom.Rect { return geom.Rect{} }

// Live implements Command.
func (c *AudioCmd) Live() *geom.Region { return &c.rg }

// ReadsFrom implements Command.
func (c *AudioCmd) ReadsFrom() geom.Rect { return geom.Rect{} }

// CoverOutput implements Command.
func (c *AudioCmd) CoverOutput(geom.Rect) bool { return false }

// Translate implements Command.
func (c *AudioCmd) Translate(int, int) {}

// Clone implements Command.
func (c *AudioCmd) Clone() Command { cp := *c; return &cp }

// WireSize implements Command.
func (c *AudioCmd) WireSize() int { return wire.HeaderSize + 12 + len(c.Data) }

// Emit implements Command.
func (c *AudioCmd) Emit(dst []wire.Message) []wire.Message {
	return append(dst, &wire.AudioData{PTS: c.PTS, Data: c.Data})
}

// Merge implements Command.
func (c *AudioCmd) Merge(Command) bool { return false }
