package core

import (
	"fmt"

	"thinc/internal/compress"
	"thinc/internal/driver"
	"thinc/internal/fb"
	"thinc/internal/geom"
	"thinc/internal/overload"
	"thinc/internal/payloadcache"
	"thinc/internal/pixel"
	"thinc/internal/resample"
	"thinc/internal/wire"
)

// Options configures a THINC server core. The zero value enables every
// optimization the paper describes; the knobs exist for the ablation
// experiments.
type Options struct {
	// RawCodec compresses RAW payloads (the prototype used PNG, §7).
	// Zero value CodecNone disables compression.
	RawCodec compress.Codec
	// DisableOffscreen turns off offscreen drawing awareness (§4.1):
	// offscreen operations are ignored and copies to the screen fall
	// back to raw pixels — the Sun Ray behaviour the paper contrasts
	// with.
	DisableOffscreen bool
	// PixelTranslate re-derives display primitives from raw pixel
	// fallbacks by sampling (solid tiles become SFILL) — Sun Ray's
	// after-the-fact translation (§2), which works but costs sampling
	// effort and misses everything that is not a solid region.
	PixelTranslate bool
	// FIFODelivery disables the SRSF scheduler: per-client buffers
	// flush in arrival order (ablation for §5).
	FIFODelivery bool
	// Metrics, when set, receives translation and scheduler telemetry
	// (see NewMetrics). Nil servers use detached instruments, so the
	// instrumentation is always on and never nil-checked.
	Metrics *Metrics
	// QueueBudgetBytes caps each client's buffered wire backlog. When an
	// add pushes a buffer past the cap, the largest evictable commands
	// are deterministically replaced with a RAW snapshot of the screen
	// regions they covered (eviction-to-RAW). Zero means unbounded.
	QueueBudgetBytes int
	// OffscreenQueueBudgetBytes caps each pixmap's offscreen command
	// queue; overflowing queues drop their oldest commands, and the
	// dropped regions fall back to raw pixels at copy-out time. Zero
	// means unbounded.
	OffscreenQueueBudgetBytes int
	// AuditTileSize is the tile side in pixels of the integrity-audit
	// digest index (wire v4). Zero means DefaultAuditTile.
	AuditTileSize int
}

// Server is the THINC server core: the virtual display driver (§3). It
// implements driver.Driver, so it plugs into the window system exactly
// where a hardware driver would. Drawing operations are translated into
// protocol command objects and dispatched to every attached client's
// command buffer; offscreen drawing is tracked per pixmap (§4.1); video
// streams pass through natively (§4.2).
//
// The core is synchronous and transport-agnostic: transports drain each
// client's buffer with Client.Flush, offering however many bytes they
// can write without blocking (§5).
type Server struct {
	opts Options
	mem  driver.Memory
	w, h int

	offscreen map[driver.DrawableID]*Queue
	streams   map[uint32]*Stream
	frameSeq  uint32

	cursorImg        []pixel.ARGB
	cursorW, cursorH int
	cursorHot        geom.Point
	cursorPos        geom.Point

	clients map[*Client]struct{}

	// tiles is the per-tile digest index over the screen (wire v4
	// integrity audit); nil when the Memory cannot expose its screen.
	tiles *fb.TileIndex

	// epoch and damageNS stamp each translated command batch for the
	// end-to-end tracing pipeline (wire v5); see trace.go.
	epoch    uint64
	damageNS int64

	// Stats aggregates translation activity across the session.
	Stats TranslateStats

	met *Metrics
}

// TranslateStats counts translation-layer events.
type TranslateStats struct {
	OnscreenCmds    int // commands broadcast to clients
	OffscreenCmds   int // commands captured in pixmap queues
	OffscreenExecs  int // offscreen queues executed on copy-to-screen
	RawFallbacks    int // operations that degraded to raw pixels
	OffscreenEvicts int // commands evicted inside offscreen queues
}

// Client is the per-connection state: a command buffer plus the
// client's viewport geometry for server-side scaling (§6).
type Client struct {
	srv  *Server
	Buf  *ClientBuffer
	view geom.Rect // client viewport size (w,h at origin)

	// Streams the client has been told about (for resize bookkeeping).
	streamDst map[uint32]geom.Rect

	degrade  int  // active degradation ladder rung (overload package)
	budget   int  // hard cap on buffered wire bytes (0 = unbounded)
	inBudget bool // re-entrancy guard: replacement RAWs skip enforcement

	// BudgetSweeps counts budget-eviction sweeps on this client.
	BudgetSweeps int
	// VideoDrops counts video frames dropped for this client by the
	// drop-video degradation rung.
	VideoDrops int

	// audit is the per-client integrity-audit cursor; it rides the
	// retained client across reattach like the degradation rung does.
	audit AuditState

	// trace is the per-client e2e mark cursor (wire v5); it rides
	// reattach the same way.
	trace TraceState

	// cache models the client's content-addressed payload store (wire
	// v6); nil when caching is disabled or unnegotiated. Like audit and
	// trace state it rides the retained client across reattach, so a
	// reconnecting client's warm store keeps hitting.
	cache *payloadcache.LRU

	// CacheStats counts this client's cache protocol outcomes.
	CacheStats CacheStats
}

// NewServer creates a server core for a screen of the given geometry.
// mem provides read access to the window system's rendered surfaces;
// pass the xserver.Display (it implements driver.Memory). When the
// server is attached via xserver.NewDisplay, Init is called for you and
// mem may be nil here.
func NewServer(opts Options) *Server {
	met := opts.Metrics
	if met == nil {
		met = nopMetrics
	}
	return &Server{
		opts:      opts,
		offscreen: make(map[driver.DrawableID]*Queue),
		streams:   make(map[uint32]*Stream),
		clients:   make(map[*Client]struct{}),
		met:       met,
	}
}

// Init implements driver.Driver.
func (s *Server) Init(mem driver.Memory, w, h int) {
	s.mem = mem
	s.w, s.h = w, h
	s.initAudit()
}

// ScreenSize returns the session framebuffer geometry.
func (s *Server) ScreenSize() (int, int) { return s.w, s.h }

// AttachClient adds a client with the given viewport. A viewport
// smaller than the session framebuffer enables server-side scaling.
func (s *Server) AttachClient(viewW, viewH int) *Client {
	if viewW <= 0 || viewH <= 0 || viewW > s.w || viewH > s.h {
		viewW, viewH = s.w, s.h
	}
	c := &Client{
		srv:       s,
		Buf:       NewClientBufferWith(s.met),
		view:      geom.XYWH(0, 0, viewW, viewH),
		streamDst: make(map[uint32]geom.Rect),
		budget:    s.opts.QueueBudgetBytes,
	}
	c.Buf.FIFO = s.opts.FIFODelivery
	// Late joiner: bring the client current with one full-screen RAW
	// (the shared-session attach path).
	s.syncClient(c)
	s.clients[c] = struct{}{}
	return c
}

// syncClient queues everything a client needs to become current: one
// full-screen RAW snapshot, the active video streams, and the cursor.
// It is the attach path, the reattach path, and the slow-client resync.
func (s *Server) syncClient(c *Client) {
	if s.mem == nil {
		return
	}
	s.stampDamage()
	full := geom.XYWH(0, 0, s.w, s.h)
	pix := s.mem.ReadPixels(driver.Screen, full)
	c.add(NewRaw(full, pix, full.W(), false, s.opts.RawCodec))
	s.syncStreamsAndCursor(c)
}

// syncStreamsAndCursor replays the non-framebuffer session state a
// (re)attaching client needs: active video streams and the cursor.
func (s *Server) syncStreamsAndCursor(c *Client) {
	// Replay active streams so video keeps playing.
	for _, st := range s.streams {
		c.add(newCtlCmd(&wire.VideoInit{Stream: st.ID, Format: st.Format,
			SrcW: st.SrcW, SrcH: st.SrcH, Dst: c.scaleRect(st.Dst)}, st.Dst))
		c.streamDst[st.ID] = st.Dst
	}
	// Replay the cursor so a late joiner sees it.
	if len(s.cursorImg) > 0 {
		s.sendCursorTo(c)
		mv := newCtlCmd(&wire.CursorMove{X: c.maybeScalePoint(s.cursorPos).X,
			Y: c.maybeScalePoint(s.cursorPos).Y}, geom.Rect{})
		mv.rt = true
		c.Buf.AddSlot(mv, slotCursorMove)
	}
}

// DetachClient removes a client.
func (s *Server) DetachClient(c *Client) { delete(s.clients, c) }

// ReattachClient restores a previously detached client — the session
// reconnect path. The client keeps its identity and buffer, its
// viewport is updated to the reconnecting peer's geometry, any stale
// buffered commands are dropped, and a full resync is queued.
func (s *Server) ReattachClient(c *Client, viewW, viewH int) {
	if viewW <= 0 || viewH <= 0 || viewW > s.w || viewH > s.h {
		viewW, viewH = s.w, s.h
	}
	c.view = geom.XYWH(0, 0, viewW, viewH)
	c.streamDst = make(map[uint32]geom.Rect)
	c.Buf.Clear()
	s.syncClient(c)
	s.clients[c] = struct{}{}
}

// ResyncClient discards a client's backlog and queues a full-screen
// resync — the slow-client policy: bounded buffers beat unbounded lag.
func (s *Server) ResyncClient(c *Client) {
	c.Buf.Clear()
	s.syncClient(c)
}

// NumClients returns the number of attached clients.
func (s *Server) NumClients() int { return len(s.clients) }

// Resize updates the client's viewport (§6). Subsequent updates are
// scaled to the new geometry; the client is refreshed with a
// full-screen update at the new size.
func (c *Client) Resize(viewW, viewH int) {
	if viewW <= 0 || viewH <= 0 || viewW > c.srv.w || viewH > c.srv.h {
		viewW, viewH = c.srv.w, c.srv.h
	}
	c.view = geom.XYWH(0, 0, viewW, viewH)
	if c.srv.mem != nil {
		c.srv.stampDamage()
		full := geom.XYWH(0, 0, c.srv.w, c.srv.h)
		pix := c.srv.mem.ReadPixels(driver.Screen, full)
		c.add(NewRaw(full, pix, full.W(), false, c.srv.opts.RawCodec))
	}
}

// View returns the client viewport rectangle.
func (c *Client) View() geom.Rect { return c.view }

// Scaled reports whether server-side scaling is active for the client.
func (c *Client) Scaled() bool { return c.view.W() != c.srv.w || c.view.H() != c.srv.h }

// Flush drains up to budget bytes from the client's buffer in SRSF
// order (see ClientBuffer.Flush).
func (c *Client) Flush(budget int) []wire.Message { return c.Buf.Flush(budget) }

// FlushAll drains the client's buffer completely.
func (c *Client) FlushAll() []wire.Message { return c.Buf.FlushAll() }

// add routes a translated command into the client's buffer, applying
// the degradation ladder's payload rewrites, server-side scaling when
// the viewport differs from the session size, and the queue budget.
func (c *Client) add(cmd Command) {
	c.Buf.SetStamp(c.srv.epoch, c.srv.damageNS)
	cmd = c.degradeTransform(cmd)
	if !c.Scaled() {
		// Cache wrapping sits after the rung rewrite (the codec in force
		// is the rung's) and only on the unscaled path: scaled payloads
		// are resampled per viewport, so their bytes are not the shared
		// repeating content the cache indexes.
		c.Buf.Add(c.cacheTransform(cmd))
	} else {
		for _, sc := range c.srv.scaleCommand(cmd, c) {
			c.Buf.Add(sc)
		}
	}
	c.enforceBudget()
}

// broadcast sends a command to every attached client. Each client gets
// its own clone so per-client eviction and scaling never alias. Every
// screen-changing command funnels through here, so this is also where
// the audit index learns which tiles went stale (under-marking would
// freeze a stale expected digest and turn repairs into a loop;
// marking here makes that impossible).
func (s *Server) broadcast(cmd Command) {
	s.stampDamage()
	s.Stats.OnscreenCmds++
	s.met.onscreenCmds.Inc()
	s.markAudit(cmd)
	s.fanout(cmd)
}

// fanout delivers one translated command into every attached client's
// buffer — the translate-once/deliver-N path. Each client gets its own
// clone (per-client live regions, degradation rewrites, and scaling
// never alias), but clone payloads share the original's immutable
// refcounted backing, so the marginal cost of an added viewer is queue
// bookkeeping, not a payload copy.
func (s *Server) fanout(cmd Command) {
	n := len(s.clients)
	if n == 0 {
		return
	}
	s.met.fanoutDeliveries.Add(int64(n))
	if n > 1 {
		s.met.fanoutSharedBytes.Add(int64(n-1) * int64(sharedPayloadBytes(cmd)))
	}
	first := true
	for c := range s.clients {
		if first {
			c.add(cmd)
			first = false
		} else {
			c.add(cmd.Clone())
		}
	}
}

// sharedPayloadBytes returns the payload bytes a clone of cmd shares
// with the original instead of copying — the fan-out amplification
// numerator.
func sharedPayloadBytes(cmd Command) int {
	switch c := cmd.(type) {
	case *RawCmd:
		return len(c.Pix) * 4
	case *TileCmd:
		return len(c.Tile.Pix) * 4
	case *BitmapCmd:
		return len(c.Bits.Bits)
	case *AudioCmd:
		return len(c.Data)
	case *FrameCmd:
		return c.Frame.Size()
	}
	return 0
}

// offscreenQueue returns the command queue tracking pixmap d, or nil if
// offscreen awareness is off or d is unknown.
func (s *Server) offscreenQueue(d driver.DrawableID) *Queue {
	if s.opts.DisableOffscreen {
		return nil
	}
	return s.offscreen[d]
}

// route sends the command to the pixmap queue (offscreen destination)
// or broadcasts it to clients (screen destination).
func (s *Server) route(d driver.DrawableID, cmd Command) {
	if d.IsScreen() {
		s.broadcast(cmd)
		return
	}
	if q := s.offscreenQueue(d); q != nil {
		before := q.Evicted
		q.Add(cmd)
		s.Stats.OffscreenEvicts += q.Evicted - before
		s.met.offscreenEvicts.Add(int64(q.Evicted - before))
		s.Stats.OffscreenCmds++
		s.met.offscreenCmds.Inc()
	}
	// Without offscreen awareness the operation is ignored; the copy to
	// the screen will fall back to RAW (§4.1).
}

// --- driver.Driver display entrypoints ---

// CreatePixmap implements driver.Driver.
func (s *Server) CreatePixmap(d driver.DrawableID, w, h int) {
	if !s.opts.DisableOffscreen {
		s.offscreen[d] = &Queue{MaxBytes: s.opts.OffscreenQueueBudgetBytes}
	}
}

// DestroyPixmap implements driver.Driver.
func (s *Server) DestroyPixmap(d driver.DrawableID) {
	delete(s.offscreen, d)
}

// FillSolid implements driver.Driver.
func (s *Server) FillSolid(d driver.DrawableID, r geom.Rect, c pixel.ARGB) {
	s.route(d, NewFill(r, c))
}

// FillTile implements driver.Driver.
func (s *Server) FillTile(d driver.DrawableID, r geom.Rect, tile *fb.Tile) {
	// Copy the tile: the window system owns the original.
	own := fb.NewTile(tile.W, tile.H, append([]pixel.ARGB(nil), tile.Pix...))
	s.route(d, NewTile(r, own))
}

// FillStipple implements driver.Driver.
func (s *Server) FillStipple(d driver.DrawableID, r geom.Rect, bm *fb.Bitmap, fg, bg pixel.ARGB, transparent bool) {
	bounds := s.drawableBounds(d)
	if !bounds.Contains(r) {
		// A clipped stipple loses bit alignment on the wire; transfer
		// the rendered pixels instead.
		s.rawFallback(d, r.Intersect(bounds), !fg.Opaque() || (transparent && !bg.Opaque()))
		return
	}
	own := &fb.Bitmap{W: bm.W, H: bm.H, Bits: append([]byte(nil), bm.Bits...)}
	s.route(d, NewBitmap(r, own, fg, bg, transparent))
}

// PutImage implements driver.Driver.
func (s *Server) PutImage(d driver.DrawableID, r geom.Rect, pix []pixel.ARGB, stride int) {
	s.route(d, NewRaw(r, pix, stride, false, s.opts.RawCodec))
}

// Composite implements driver.Driver.
func (s *Server) Composite(d driver.DrawableID, r geom.Rect, pix []pixel.ARGB, stride int) {
	s.route(d, NewRaw(r, pix, stride, true, s.opts.RawCodec))
}

// rawFallback transfers the current rendered pixels of r on d. blend
// content is emitted as an opaque snapshot (the blend already happened
// in the surface). With PixelTranslate, uniform tiles are re-derived as
// fills before shipping pixels (§2's Sun Ray translation).
func (s *Server) rawFallback(d driver.DrawableID, r geom.Rect, _ bool) {
	if r.Empty() {
		return
	}
	s.Stats.RawFallbacks++
	s.met.rawFallbacks.Inc()
	pix := s.mem.ReadPixels(d, r)
	if !s.opts.PixelTranslate {
		s.route(d, NewRaw(r, pix, r.W(), false, s.opts.RawCodec))
		return
	}
	s.pixelTranslate(d, r, pix)
}

// pixelTranslate samples the pixel block in 32-pixel tile bands,
// emitting SFILL for uniform tiles and RAW bands for the rest.
func (s *Server) pixelTranslate(d driver.DrawableID, r geom.Rect, pix []pixel.ARGB) {
	const tile = 32
	w := r.W()
	for ty := 0; ty < r.H(); ty += tile {
		th := min(tile, r.H()-ty)
		runStart := -1
		flushRun := func(end int) {
			if runStart < 0 {
				return
			}
			band := geom.Rect{X0: r.X0 + runStart, Y0: r.Y0 + ty, X1: r.X0 + end, Y1: r.Y0 + ty + th}
			sub := make([]pixel.ARGB, 0, band.Area())
			for y := 0; y < th; y++ {
				row := (ty+y)*w + runStart
				sub = append(sub, pix[row:row+band.W()]...)
			}
			s.route(d, NewRaw(band, sub, band.W(), false, s.opts.RawCodec))
			runStart = -1
		}
		for tx := 0; tx <= r.W(); tx += tile {
			uniform := false
			var c pixel.ARGB
			if tx < r.W() {
				tw := min(tile, r.W()-tx)
				uniform, c = uniformTile(pix, w, tx, ty, tw, th)
			}
			if tx >= r.W() {
				flushRun(r.W())
				break
			}
			tw := min(tile, r.W()-tx)
			if uniform {
				flushRun(tx)
				s.route(d, NewFill(geom.Rect{X0: r.X0 + tx, Y0: r.Y0 + ty,
					X1: r.X0 + tx + tw, Y1: r.Y0 + ty + th}, c))
			} else if runStart < 0 {
				runStart = tx
			}
		}
	}
}

// uniformTile reports whether the tile at (tx, ty) is a single color.
func uniformTile(pix []pixel.ARGB, stride, tx, ty, tw, th int) (bool, pixel.ARGB) {
	c := pix[ty*stride+tx]
	for y := ty; y < ty+th; y++ {
		row := y * stride
		for x := tx; x < tx+tw; x++ {
			if pix[row+x] != c {
				return false, 0
			}
		}
	}
	return true, c
}

func (s *Server) drawableBounds(d driver.DrawableID) geom.Rect {
	w, h := s.mem.SurfaceSize(d)
	return geom.XYWH(0, 0, w, h)
}

// CopyArea implements driver.Driver — the heart of offscreen awareness
// (§4.1).
func (s *Server) CopyArea(dst, src driver.DrawableID, sr geom.Rect, dp geom.Point) {
	dx, dy := dp.X-sr.X0, dp.Y-sr.Y0
	switch {
	case dst.IsScreen() && src.IsScreen():
		// Scroll / window move: a plain COPY.
		s.broadcast(NewCopy(sr, dp))

	case dst.IsScreen() && !src.IsScreen():
		// Offscreen contents presented: execute the pixmap's queue.
		q := s.offscreenQueue(src)
		if q == nil {
			// Offscreen awareness off (or untracked): raw pixels of the
			// destination region, read from the already-rendered screen.
			dr := geom.XYWH(dp.X, dp.Y, sr.W(), sr.H()).Intersect(s.drawableBounds(dst))
			s.rawFallback(driver.Screen, dr, false)
			return
		}
		s.Stats.OffscreenExecs++
		s.met.offscreenExecs.Inc()
		if tr := s.met.Trace; tr.Enabled() {
			tr.Event("translate.offscreen_exec",
				fmt.Sprintf("src=%d rect=%dx%d", src, sr.W(), sr.H()))
		}
		clones, fallback := q.CopyOut(sr)
		// Fallback pixels first (CopyOut contract), then the semantic
		// commands in arrival order. Edge-crossing Complete/Transparent
		// clones degrade to screen snapshots; those hold the *final*
		// content of this operation, so they must be sent after every
		// clone — a transparent clone blending over a final-content
		// snapshot would double-blend.
		var deferred []Command
		for _, fr := range fallback.Rects() {
			pix := s.mem.ReadPixels(src, fr)
			cmd := NewRaw(fr.Translate(dx, dy), pix, fr.W(), false, s.opts.RawCodec)
			if clipped, snap := s.clipToScreen(cmd); clipped != nil {
				s.Stats.RawFallbacks++
				s.met.rawFallbacks.Inc()
				if snap {
					deferred = append(deferred, clipped)
				} else {
					s.broadcast(clipped)
				}
			}
		}
		for _, cl := range clones {
			cl.Translate(dx, dy)
			if clipped, snap := s.clipToScreen(cl); clipped != nil {
				if snap {
					deferred = append(deferred, clipped)
				} else {
					s.broadcast(clipped)
				}
			}
		}
		for _, cmd := range deferred {
			s.broadcast(cmd)
		}

	case !dst.IsScreen() && !src.IsScreen():
		// Offscreen hierarchy composition: copy the command group
		// between queues, translated to the new location (§4.1).
		dq := s.offscreenQueue(dst)
		if dq == nil {
			return
		}
		sq := s.offscreenQueue(src)
		if sq == nil {
			return
		}
		clones, fallback := sq.CopyOut(sr)
		for _, fr := range fallback.Rects() {
			pix := s.mem.ReadPixels(src, fr)
			dq.Add(NewRaw(fr.Translate(dx, dy), pix, fr.W(), false, s.opts.RawCodec))
			s.Stats.RawFallbacks++
			s.met.rawFallbacks.Inc()
			s.Stats.OffscreenCmds++
			s.met.offscreenCmds.Inc()
		}
		for _, cl := range clones {
			cl.Translate(dx, dy)
			dq.Add(cl)
			s.Stats.OffscreenCmds++
			s.met.offscreenCmds.Inc()
		}

	default:
		// Screen-to-pixmap (rare: apps snapshotting the screen): track
		// the pixels as a RAW in the pixmap's queue.
		if dq := s.offscreenQueue(dst); dq != nil {
			dr := geom.XYWH(dp.X, dp.Y, sr.W(), sr.H()).Intersect(s.drawableBounds(dst))
			srcRect := dr.Translate(-dx, -dy)
			pix := s.mem.ReadPixels(driver.Screen, srcRect)
			dq.Add(NewRaw(dr, pix, dr.W(), false, s.opts.RawCodec))
			s.Stats.OffscreenCmds++
			s.met.offscreenCmds.Inc()
			s.Stats.RawFallbacks++
			s.met.rawFallbacks.Inc()
		}
	}
}

// clipToScreen restricts a command to the visible framebuffer. It
// returns nil when nothing remains; Complete/Transparent commands that
// cross the edge degrade to a RAW snapshot of the visible part, and
// snapshot=true tells the caller the pixels carry the operation's
// *final* screen content (ordering constraint above).
func (s *Server) clipToScreen(cmd Command) (clipped Command, snapshot bool) {
	screen := geom.XYWH(0, 0, s.w, s.h)
	if screen.Contains(cmd.Bounds()) {
		return cmd, false
	}
	switch cmd.Class() {
	case Partial:
		cmd.Live().IntersectRect(screen)
		if cmd.Live().Empty() {
			return nil, false
		}
		return cmd, false
	default:
		vis := cmd.Bounds().Intersect(screen)
		if vis.Empty() {
			return nil, false
		}
		// The screen already holds the rendered result.
		pix := s.mem.ReadPixels(driver.Screen, vis)
		return NewRaw(vis, pix, vis.W(), false, s.opts.RawCodec), true
	}
}

// --- driver.Driver video/audio/input entrypoints (§4.2, §5) ---

// VideoSetup implements driver.Driver.
func (s *Server) VideoSetup(stream uint32, srcW, srcH int, dst geom.Rect) {
	s.stampDamage()
	st := &Stream{ID: stream, SrcW: srcW, SrcH: srcH, Dst: dst, Format: pixel.FormatYV12}
	s.streams[stream] = st
	for c := range s.clients {
		c.add(newCtlCmd(&wire.VideoInit{Stream: stream, Format: pixel.FormatYV12,
			SrcW: srcW, SrcH: srcH, Dst: c.scaleRect(dst)}, dst))
		c.streamDst[stream] = dst
	}
}

// VideoFrame implements driver.Driver.
func (s *Server) VideoFrame(stream uint32, frame *pixel.YV12Image, ptsUS uint64) {
	st, ok := s.streams[stream]
	if !ok {
		return
	}
	s.stampDamage()
	st.FramesIn++
	s.frameSeq++
	// One copy of the frame serves every unscaled client: the window
	// system owns the original, but the copy is immutable and shared.
	var shared *pixel.YV12Image
	for c := range s.clients {
		if c.degrade >= overload.RungDropVideo {
			// Drop-at-server taken to its limit (§4.2): the overloaded
			// client skips the frame entirely; audio keeps flowing.
			st.FramesDropped++
			c.VideoDrops++
			s.met.frameDrops.Inc()
			continue
		}
		var f *pixel.YV12Image
		if c.Scaled() {
			f = c.scaleFrame(st, frame)
		} else if shared == nil {
			shared = copyFrame(frame)
			f = shared
		} else {
			f = shared
			s.met.fanoutSharedBytes.Add(int64(shared.Size()))
		}
		cmd := NewFrame(stream, s.frameSeq, ptsUS, f, st.Dst)
		c.Buf.SetStamp(s.epoch, s.damageNS)
		if c.Buf.AddFrame(cmd) {
			st.FramesDropped++
		}
		c.enforceBudget()
	}
}

// VideoMove implements driver.Driver.
func (s *Server) VideoMove(stream uint32, dst geom.Rect) {
	st, ok := s.streams[stream]
	if !ok {
		return
	}
	old := st.Dst
	st.Dst = dst
	s.stampDamage()
	for c := range s.clients {
		c.add(newCtlCmd(&wire.VideoMove{Stream: stream, Dst: c.scaleRect(dst)}, dst))
		c.streamDst[stream] = dst
	}
	// The software overlay leaves the last frame's pixels at the old
	// position; repaint them from the real framebuffer.
	s.repaintRegion(old)
}

// VideoStop implements driver.Driver.
func (s *Server) VideoStop(stream uint32) {
	st, ok := s.streams[stream]
	delete(s.streams, stream)
	s.stampDamage()
	for c := range s.clients {
		c.add(newCtlCmd(&wire.VideoEnd{Stream: stream}, geom.Rect{}))
		delete(c.streamDst, stream)
	}
	if ok {
		// Clear the vacated overlay: without this the client keeps
		// showing the final video frame over content it never received.
		s.repaintRegion(st.Dst)
	}
}

// repaintRegion pushes the true framebuffer content under r to every
// client — the repair after a software overlay vacates screen area.
// The pixels are read and wrapped once; the fan-out shares the backing
// across clients.
func (s *Server) repaintRegion(r geom.Rect) {
	if s.mem == nil {
		return
	}
	vis := r.Intersect(geom.XYWH(0, 0, s.w, s.h))
	if vis.Empty() {
		return
	}
	s.stampDamage()
	pix := s.mem.ReadPixels(driver.Screen, vis)
	s.fanout(NewRaw(vis, pix, vis.W(), false, s.opts.RawCodec))
}

// Stream returns the state of an active stream (nil if unknown).
func (s *Server) Stream(id uint32) *Stream { return s.streams[id] }

// PushAudio injects timestamped PCM audio from the virtual audio
// driver. The chunk is copied once (the audio driver owns the
// original) and the immutable copy is shared across every client's
// AudioCmd clone.
func (s *Server) PushAudio(ptsUS uint64, data []byte) {
	if len(s.clients) == 0 {
		return
	}
	s.stampDamage()
	s.fanout(NewAudio(ptsUS, append([]byte(nil), data...)))
}

// NotifyInput implements driver.Driver: updates near p become
// real-time for every client (§5).
func (s *Server) NotifyInput(p geom.Point) {
	for c := range s.clients {
		c.Buf.NotifyInput(p)
	}
}

// SetCursor implements driver.Driver: the cursor image travels to every
// client (scaled for small viewports) on the interactive path.
func (s *Server) SetCursor(img []pixel.ARGB, w, h int, hot geom.Point) {
	s.stampDamage()
	s.cursorImg = append([]pixel.ARGB(nil), img...)
	s.cursorW, s.cursorH = w, h
	s.cursorHot = hot
	for c := range s.clients {
		s.sendCursorTo(c)
	}
}

// sendCursorTo ships the current cursor image, scaled for the client.
// Unscaled clients share the server's cursor slice directly: SetCursor
// replaces it wholesale and nothing writes it in place, so the fan-out
// needs no per-client copy.
func (s *Server) sendCursorTo(c *Client) {
	pix, cw, ch, chot := s.cursorImg, s.cursorW, s.cursorH, s.cursorHot
	if c.Scaled() {
		cw = max(1, s.cursorW*c.view.W()/s.w)
		ch = max(1, s.cursorH*c.view.H()/s.h)
		pix = resample.Fant(s.cursorImg, s.cursorW, s.cursorW, s.cursorH, cw, ch)
		chot = geom.Point{X: chot.X * cw / max(1, s.cursorW), Y: chot.Y * ch / max(1, s.cursorH)}
	}
	cmd := newCtlCmd(&wire.CursorSet{HotX: chot.X, HotY: chot.Y, W: cw, H: ch, Pix: pix}, geom.Rect{})
	cmd.rt = true
	c.Buf.SetStamp(s.epoch, s.damageNS)
	c.Buf.Add(cmd)
}

// maybeScalePoint maps a framebuffer point into the client's viewport
// when scaling is active.
func (c *Client) maybeScalePoint(p geom.Point) geom.Point {
	if c.Scaled() {
		return c.scalePoint(p)
	}
	return p
}

// MoveCursor implements driver.Driver: moves are real-time and an
// unsent previous move is superseded.
func (s *Server) MoveCursor(p geom.Point) {
	s.cursorPos = p
	s.stampDamage()
	for c := range s.clients {
		cp := c.maybeScalePoint(p)
		cmd := newCtlCmd(&wire.CursorMove{X: cp.X, Y: cp.Y}, geom.Rect{})
		cmd.rt = true
		c.Buf.SetStamp(s.epoch, s.damageNS)
		c.Buf.AddSlot(cmd, slotCursorMove)
	}
}

func copyFrame(f *pixel.YV12Image) *pixel.YV12Image {
	return &pixel.YV12Image{
		W: f.W, H: f.H,
		Y: append([]byte(nil), f.Y...),
		V: append([]byte(nil), f.V...),
		U: append([]byte(nil), f.U...),
	}
}

var _ driver.Driver = (*Server)(nil)

func (s *Server) String() string {
	return fmt.Sprintf("thinc.Server(%dx%d, %d clients, %d pixmaps)",
		s.w, s.h, len(s.clients), len(s.offscreen))
}
