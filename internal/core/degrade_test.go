package core

import (
	"testing"

	"thinc/internal/compress"
	"thinc/internal/fb"
	"thinc/internal/geom"
	"thinc/internal/overload"
	"thinc/internal/pixel"
	"thinc/internal/wire"
)

// rawMsgs filters a flush result down to its RAW payloads.
func rawMsgs(msgs []wire.Message) []*wire.Raw {
	var out []*wire.Raw
	for _, m := range msgs {
		if r, ok := m.(*wire.Raw); ok {
			out = append(out, r)
		}
	}
	return out
}

func TestDegradeCompressRungSwitchesCodec(t *testing.T) {
	srv, _ := newTestServer(t, Options{})
	healthy := srv.AttachClient(0, 0)
	slow := srv.AttachClient(0, 0)
	healthy.FlushAll()
	slow.FlushAll()

	slow.SetDegrade(overload.RungCompress)
	r := geom.XYWH(0, 0, 64, 48)
	srv.PutImage(0, r, make([]pixel.ARGB, r.Area()), r.W())

	sr := rawMsgs(slow.FlushAll())
	hr := rawMsgs(healthy.FlushAll())
	if len(sr) != 1 || len(hr) != 1 {
		t.Fatalf("raw counts = %d/%d, want 1/1", len(sr), len(hr))
	}
	if sr[0].Codec != compress.CodecPNG {
		t.Fatalf("degraded codec = %v, want PNG", sr[0].Codec)
	}
	// The shared broadcast original must stay untouched for the
	// healthy client (clone-before-mutate).
	if hr[0].Codec != compress.CodecNone {
		t.Fatalf("healthy client codec = %v, want None", hr[0].Codec)
	}
}

func TestDegradeDownscaleRung(t *testing.T) {
	srv, _ := newTestServer(t, Options{})
	c := srv.AttachClient(0, 0)
	c.FlushAll()
	c.SetDegrade(overload.RungDownscale)

	r := geom.XYWH(0, 0, 64, 48)
	srv.PutImage(0, r, make([]pixel.ARGB, r.Area()), r.W())
	tile := fb.NewTile(8, 8, make([]pixel.ARGB, 64))
	srv.FillTile(0, geom.XYWH(64, 0, 32, 32), tile)

	msgs := c.FlushAll()
	raws := rawMsgs(msgs)
	if len(raws) != 1 || raws[0].Codec != compress.CodecDown2 {
		t.Fatalf("raw = %+v, want one CodecDown2 payload", raws)
	}
	found := false
	for _, m := range msgs {
		if pf, ok := m.(*wire.PFill); ok {
			found = true
			if pf.TileW != 4 || pf.TileH != 4 {
				t.Fatalf("degraded tile = %dx%d, want 4x4", pf.TileW, pf.TileH)
			}
		}
	}
	if !found {
		t.Fatal("no PFILL in flush")
	}
	// Round-trip of the lossy payload still yields full-geometry pixels.
	pix, err := raws[0].Pixels()
	if err != nil {
		t.Fatal(err)
	}
	if len(pix) != r.Area() {
		t.Fatalf("decoded %d pixels, want %d", len(pix), r.Area())
	}
}

func TestDegradeDropVideoKeepsAudio(t *testing.T) {
	srv, _ := newTestServer(t, Options{})
	c := srv.AttachClient(0, 0)
	c.FlushAll()
	c.SetDegrade(overload.RungDropVideo)

	srv.VideoSetup(7, 32, 24, geom.XYWH(0, 0, 32, 24))
	frame := &pixel.YV12Image{W: 32, H: 24,
		Y: make([]byte, 32*24), V: make([]byte, 16*12), U: make([]byte, 16*12)}
	srv.VideoFrame(7, frame, 1000)
	srv.PushAudio(1000, make([]byte, 256))

	if c.VideoDrops != 1 {
		t.Fatalf("VideoDrops = %d, want 1", c.VideoDrops)
	}
	if st := srv.Stream(7); st.FramesDropped != 1 {
		t.Fatalf("FramesDropped = %d, want 1", st.FramesDropped)
	}
	var video, audio int
	for _, m := range c.FlushAll() {
		switch m.(type) {
		case *wire.VideoFrame:
			video++
		case *wire.AudioData:
			audio++
		}
	}
	if video != 0 || audio != 1 {
		t.Fatalf("flush carried %d video / %d audio, want 0/1", video, audio)
	}
}

// TestVideoStopRepaintsVacatedOverlay: the client composites video
// into its framebuffer (software overlay), so stopping or moving a
// stream must repaint the vacated screen area from the real
// framebuffer — otherwise the last frame lingers forever.
func TestVideoStopRepaintsVacatedOverlay(t *testing.T) {
	srv, _ := newTestServer(t, Options{})
	c := srv.AttachClient(0, 0)
	c.FlushAll()

	dst := geom.XYWH(8, 8, 32, 24)
	srv.VideoSetup(3, 32, 24, dst)
	frame := &pixel.YV12Image{W: 32, H: 24,
		Y: make([]byte, 32*24), V: make([]byte, 16*12), U: make([]byte, 16*12)}
	srv.VideoFrame(3, frame, 1)
	c.FlushAll()

	moved := geom.XYWH(40, 20, 32, 24)
	srv.VideoMove(3, moved)
	repaired := false
	for _, m := range c.FlushAll() {
		if r, ok := m.(*wire.Raw); ok && r.Rect.Contains(dst) {
			repaired = true
		}
	}
	if !repaired {
		t.Fatal("VideoMove left no repaint of the old overlay position")
	}

	srv.VideoStop(3)
	var ended, repainted bool
	for _, m := range c.FlushAll() {
		switch v := m.(type) {
		case *wire.VideoEnd:
			ended = true
		case *wire.Raw:
			if v.Rect.Contains(moved) {
				repainted = true
			}
		}
	}
	if !ended {
		t.Fatal("no VideoEnd in flush")
	}
	if !repainted {
		t.Fatal("VideoStop left no repaint of the vacated overlay")
	}
}

func TestQueueBudgetEvictsToRaw(t *testing.T) {
	srv, _ := newTestServer(t, Options{QueueBudgetBytes: 32 << 10})
	c := srv.AttachClient(0, 0)
	c.FlushAll() // drain the attach snapshot

	// Disjoint 32x32 RAWs (4 KiB each): no overwrite eviction can help,
	// only the budget can keep the backlog bounded.
	for i := 0; i < 40; i++ {
		r := geom.XYWH((i%4)*32, (i/4)*8, 32, 8)
		srv.PutImage(0, r, make([]pixel.ARGB, r.Area()), r.W())
	}
	if got := c.Buf.QueuedBytes(); got > 48<<10 {
		t.Fatalf("backlog %d bytes escaped a 32 KiB budget", got)
	}
	if c.Buf.Stats.BudgetEvicted == 0 || c.BudgetSweeps == 0 {
		t.Fatalf("no budget activity recorded: evicted=%d sweeps=%d",
			c.Buf.Stats.BudgetEvicted, c.BudgetSweeps)
	}
	// Everything still flushes — the replacement RAWs deliver.
	if msgs := c.FlushAll(); len(msgs) == 0 {
		t.Fatal("nothing left to flush")
	}
}

func TestQueueBudgetSparesRealtime(t *testing.T) {
	srv, _ := newTestServer(t, Options{QueueBudgetBytes: 16 << 10})
	c := srv.AttachClient(0, 0)
	c.FlushAll()

	srv.PushAudio(1, make([]byte, 4096))
	for i := 0; i < 20; i++ {
		r := geom.XYWH((i%4)*32, (i/4)*16, 32, 16)
		srv.PutImage(0, r, make([]pixel.ARGB, r.Area()), r.W())
	}
	audio := 0
	for _, m := range c.FlushAll() {
		if _, ok := m.(*wire.AudioData); ok {
			audio++
		}
	}
	if audio != 1 {
		t.Fatalf("audio messages delivered = %d, want 1 (never evicted)", audio)
	}
}

func TestOffscreenQueueBudgetFallsBackToPixels(t *testing.T) {
	q := &Queue{MaxBytes: 8 << 10}
	r := geom.XYWH(0, 0, 32, 16) // 2 KiB each
	for i := 0; i < 8; i++ {
		q.Add(NewRaw(r.Translate(0, i*16), make([]pixel.ARGB, r.Area()), r.W(), false, compress.CodecNone))
	}
	if q.Overflows == 0 {
		t.Fatal("queue never overflowed")
	}
	// The dropped prefix is no longer reproducible from commands: it
	// must land in the raw fallback region.
	_, fallback := q.CopyOut(geom.XYWH(0, 0, 32, 128))
	if fallback.Empty() {
		t.Fatal("dropped commands left no fallback region")
	}
	if !fallback.OverlapsRect(geom.XYWH(0, 0, 32, 16)) {
		t.Fatal("fallback does not cover the evicted oldest command")
	}
}

// TestFlushOvershootsForOversizedCommand: an unsplittable command
// larger than the whole flush budget must still go out via the
// FlushOne streaming path — otherwise it blocks every future flush and
// the queue wedges forever. The chaos harness found exactly this: a
// 1764-byte audio write against a modem-class 512-byte pacing budget
// froze the session. This exercises the drain discipline the server's
// flush loop uses: Flush, then FlushOne when it stalls non-empty.
func TestFlushOvershootsForOversizedCommand(t *testing.T) {
	srv, _ := newTestServer(t, Options{})
	c := srv.AttachClient(0, 0)
	c.FlushAll()

	srv.PushAudio(1, make([]byte, 1764))
	r := geom.XYWH(0, 0, 16, 16)
	srv.PutImage(0, r, make([]pixel.ARGB, r.Area()), r.W())

	if msgs := c.Flush(512); len(msgs) != 0 {
		t.Fatalf("budgeted flush delivered %d messages past an oversized head", len(msgs))
	}
	msgs := c.Buf.FlushOne()
	if len(msgs) != 1 {
		t.Fatalf("FlushOne delivered %d messages, want the oversized one", len(msgs))
	}
	if _, ok := msgs[0].(*wire.AudioData); !ok {
		t.Fatalf("FlushOne delivered %T, want *wire.AudioData", msgs[0])
	}
	if c.Buf.Stats.Overshoots != 1 {
		t.Fatalf("Overshoots = %d, want 1", c.Buf.Stats.Overshoots)
	}
	// The queue keeps draining under the same discipline.
	for i := 0; i < 100 && c.Buf.Len() > 0; i++ {
		if len(c.Flush(512)) == 0 && len(c.Buf.FlushOne()) == 0 {
			t.Fatal("flush wedged after the overshoot")
		}
	}
	if c.Buf.Len() != 0 {
		t.Fatal("backlog never drained")
	}
}

func TestRefreshClientRepaintsFullScreen(t *testing.T) {
	srv, _ := newTestServer(t, Options{})
	c := srv.AttachClient(0, 0)
	c.FlushAll()

	srv.RefreshClient(c)
	raws := rawMsgs(c.FlushAll())
	total := 0
	for _, r := range raws {
		total += r.Rect.Area()
	}
	if w, h := srv.ScreenSize(); total != w*h {
		t.Fatalf("refresh covered %d pixels, want %d", total, w*h)
	}
}

func TestSetDegradeClamps(t *testing.T) {
	c := &Client{}
	c.SetDegrade(-3)
	if c.Degrade() != overload.RungLossless {
		t.Fatalf("negative rung = %d", c.Degrade())
	}
	c.SetDegrade(99)
	if c.Degrade() != overload.NumRungs-1 {
		t.Fatalf("oversized rung = %d", c.Degrade())
	}
}
