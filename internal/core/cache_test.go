package core

import (
	"testing"

	"thinc/internal/compress"
	"thinc/internal/driver"
	"thinc/internal/fb"
	"thinc/internal/geom"
	"thinc/internal/overload"
	"thinc/internal/pixel"
	"thinc/internal/wire"
)

// cachePattern builds pixels whose values depend only on coordinates
// relative to the rect origin, so the same content drawn at different
// positions produces byte-identical payloads (the repeat the cache
// exists to catch).
func cachePattern(r geom.Rect, seed uint32) []pixel.ARGB {
	pix := make([]pixel.ARGB, r.Area())
	for y := 0; y < r.H(); y++ {
		for x := 0; x < r.W(); x++ {
			pix[y*r.W()+x] = pixel.ARGB(0xFF000000 | (seed * uint32(y*r.W()+x+1)))
		}
	}
	return pix
}

// cacheMsgs splits a flush result into its cache-protocol messages.
func cacheMsgs(msgs []wire.Message) (stores []*wire.CacheStore, paints []*wire.CachePaint) {
	for _, m := range msgs {
		switch v := m.(type) {
		case *wire.CacheStore:
			stores = append(stores, v)
		case *wire.CachePaint:
			paints = append(paints, v)
		}
	}
	return stores, paints
}

func newCacheClient(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv, _ := newTestServer(t, Options{})
	c := srv.AttachClient(0, 0)
	c.FlushAll() // drain the attach snapshot
	c.SetCacheSize(64 << 10)
	return srv, c
}

func TestCacheStoreThenPaint(t *testing.T) {
	srv, c := newCacheClient(t)

	r1 := geom.XYWH(0, 0, 16, 16)
	srv.PutImage(driver.Screen, r1, cachePattern(r1, 7), r1.W())
	stores, paints := cacheMsgs(c.FlushAll())
	if len(stores) != 1 || len(paints) != 0 {
		t.Fatalf("first appearance: %d stores / %d paints, want 1/0", len(stores), len(paints))
	}
	st := stores[0]
	if st.Kind != wire.CacheKindRaw || st.Rect != r1 {
		t.Fatalf("store = kind %d rect %v", st.Kind, st.Rect)
	}
	// The stored payload round-trips to the pixels that were drawn, and
	// the advertised digest is the canonical digest of that content.
	raw := wire.Raw{Rect: st.Rect, Codec: st.Codec, Blend: st.Blend, Data: st.Data}
	pix, err := raw.Pixels()
	if err != nil {
		t.Fatal(err)
	}
	if got := fb.CacheDigestRaw(r1.W(), r1.H(), st.Blend, pix); got != st.Digest {
		t.Fatalf("store digest %016x, content digests to %016x", st.Digest, got)
	}
	if !c.CacheHolds(st.Digest) || c.CacheEntries() != 1 {
		t.Fatalf("model does not hold the stored digest (entries=%d)", c.CacheEntries())
	}

	// The same content at a new position rides a ~21-byte reference.
	r2 := geom.XYWH(64, 32, 16, 16)
	srv.PutImage(driver.Screen, r2, cachePattern(r2.Translate(-64, -32).Translate(0, 0), 7), r2.W())
	msgs := c.FlushAll()
	stores, paints = cacheMsgs(msgs)
	if len(stores) != 0 || len(paints) != 1 {
		t.Fatalf("repeat: %d stores / %d paints, want 0/1", len(stores), len(paints))
	}
	if paints[0].Digest != st.Digest || paints[0].Rect != r2 {
		t.Fatalf("paint = %016x at %v, want %016x at %v",
			paints[0].Digest, paints[0].Rect, st.Digest, r2)
	}
	if c.CacheStats.Hits != 1 || c.CacheStats.Stores != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 store", c.CacheStats)
	}
	if c.CacheStats.SavedBytes <= 0 {
		t.Fatalf("SavedBytes = %d, want > 0", c.CacheStats.SavedBytes)
	}
}

func TestCacheBitmapStoreThenPaint(t *testing.T) {
	srv, c := newCacheClient(t)

	// 32x16 stipple: 64 bit-rows bytes, exactly at the admissibility
	// floor. Opaque colors keep it Complete class.
	bm := fb.NewBitmap(32, 16)
	for i := range bm.Bits {
		bm.Bits[i] = byte(i * 37)
	}
	fg, bg := pixel.RGB(10, 20, 30), pixel.RGB(200, 100, 0)
	r1 := geom.XYWH(0, 0, 32, 16)
	srv.FillStipple(driver.Screen, r1, bm, fg, bg, false)
	stores, paints := cacheMsgs(c.FlushAll())
	if len(stores) != 1 || len(paints) != 0 {
		t.Fatalf("first appearance: %d stores / %d paints, want 1/0", len(stores), len(paints))
	}
	st := stores[0]
	if st.Kind != wire.CacheKindBitmap || st.Fg != fg || st.Bg != bg {
		t.Fatalf("store = kind %d fg %v bg %v", st.Kind, st.Fg, st.Bg)
	}
	if got := fb.CacheDigestBitmap(r1.W(), r1.H(), fg, bg, false,
		st.BitW, st.BitH, st.Bits); got != st.Digest {
		t.Fatalf("store digest %016x, content digests to %016x", st.Digest, got)
	}

	// Same glyph block elsewhere; deliberately not abutting r1 so the
	// two commands cannot merge into a wider run.
	r2 := geom.XYWH(64, 48, 32, 16)
	srv.FillStipple(driver.Screen, r2, bm, fg, bg, false)
	stores, paints = cacheMsgs(c.FlushAll())
	if len(stores) != 0 || len(paints) != 1 || paints[0].Digest != st.Digest {
		t.Fatalf("repeat: stores=%d paints=%v", len(stores), paints)
	}
}

// TestCacheDownscaleRung: a lossy CodecDown2 payload must never be
// stored (the wire bytes would not verify against the lossless digest),
// but a repeat of content stored while lossless still hits — the paint
// reference delivers the stored lossless pixels, un-degrading the
// region for 21 bytes.
func TestCacheDownscaleRung(t *testing.T) {
	srv, c := newCacheClient(t)

	r1 := geom.XYWH(0, 0, 16, 16)
	srv.PutImage(driver.Screen, r1, cachePattern(r1, 11), r1.W())
	stores, _ := cacheMsgs(c.FlushAll())
	if len(stores) != 1 {
		t.Fatalf("lossless store count = %d", len(stores))
	}

	c.SetDegrade(overload.RungDownscale)
	r2 := geom.XYWH(32, 0, 16, 16)
	srv.PutImage(driver.Screen, r2, cachePattern(r2, 11), r2.W())
	st2, paints := cacheMsgs(c.FlushAll())
	if len(st2) != 0 || len(paints) != 1 || paints[0].Digest != stores[0].Digest {
		t.Fatalf("lossy-rung repeat: stores=%d paints=%v", len(st2), paints)
	}

	// Fresh content at the lossy rung: delivered plain (and lossy), never
	// stored under a digest its bytes cannot verify.
	r3 := geom.XYWH(64, 0, 16, 16)
	srv.PutImage(driver.Screen, r3, cachePattern(r3, 99), r3.W())
	msgs := c.FlushAll()
	st3, p3 := cacheMsgs(msgs)
	if len(st3) != 0 || len(p3) != 0 {
		t.Fatalf("lossy fresh content used the cache protocol: stores=%d paints=%d", len(st3), len(p3))
	}
	raws := rawMsgs(msgs)
	if len(raws) != 1 || raws[0].Codec != compress.CodecDown2 {
		t.Fatalf("lossy fresh content = %+v, want one CodecDown2 RAW", raws)
	}
	if c.CacheStats.Stores != 1 {
		t.Fatalf("Stores = %d, want 1 (lossy payload must not be stored)", c.CacheStats.Stores)
	}
}

// TestCachePartialOverwriteFallsBack: the digest names the full
// payload, so once overwrite eviction clips a buffered command's live
// region the cache protocol no longer applies — the remainder ships as
// plain per-rect RAW and nothing enters the model.
func TestCachePartialOverwriteFallsBack(t *testing.T) {
	srv, c := newCacheClient(t)

	r := geom.XYWH(0, 0, 32, 32)
	srv.PutImage(driver.Screen, r, cachePattern(r, 5), r.W())
	srv.FillSolid(driver.Screen, geom.XYWH(0, 0, 32, 8), pixel.RGB(1, 2, 3))

	msgs := c.FlushAll()
	stores, paints := cacheMsgs(msgs)
	if len(stores) != 0 || len(paints) != 0 {
		t.Fatalf("clipped command used the cache protocol: stores=%d paints=%d",
			len(stores), len(paints))
	}
	if len(rawMsgs(msgs)) == 0 {
		t.Fatal("no RAW fallback for the clipped remainder")
	}
	if c.CacheEntries() != 0 {
		t.Fatalf("model holds %d entries after a fallback emit", c.CacheEntries())
	}
}

// TestCacheMergeRekeys: merge absorption rewrites the payload, so the
// absorber's cache identity must follow — and the merged payload is the
// repeating unit the cache should key on.
func TestCacheMergeRekeys(t *testing.T) {
	srv, c := newCacheClient(t)

	// Two vertically abutting halves drawn back to back merge in the
	// buffer into one 16x32 command.
	top, bottom := geom.XYWH(0, 0, 16, 16), geom.XYWH(0, 16, 16, 16)
	whole := geom.XYWH(0, 0, 16, 32)
	wholePix := cachePattern(whole, 13)
	srv.PutImage(driver.Screen, top, wholePix[:top.Area()], top.W())
	srv.PutImage(driver.Screen, bottom, wholePix[top.Area():], bottom.W())
	if c.Buf.Stats.Merged == 0 {
		t.Fatal("halves did not merge; the test no longer exercises re-keying")
	}
	stores, _ := cacheMsgs(c.FlushAll())
	if len(stores) != 1 || stores[0].Rect != whole {
		t.Fatalf("merged emit = %+v, want one store covering %v", stores, whole)
	}
	wantDigest := fb.CacheDigestRaw(whole.W(), whole.H(), false, wholePix)
	if stores[0].Digest != wantDigest {
		t.Fatalf("merged digest %016x, want digest of merged payload %016x",
			stores[0].Digest, wantDigest)
	}

	// The same content drawn as one block is the same cache identity.
	at := geom.XYWH(48, 0, 16, 32)
	srv.PutImage(driver.Screen, at, wholePix, at.W())
	st2, paints := cacheMsgs(c.FlushAll())
	if len(st2) != 0 || len(paints) != 1 || paints[0].Digest != wantDigest {
		t.Fatalf("whole-block repeat: stores=%d paints=%v", len(st2), paints)
	}
}

// TestCacheWarmAndColdResize mirrors the negotiation rules: granting
// the capacity already in force keeps the model warm (reattach), any
// other capacity restarts cold (the two sides could not have evicted
// identically under different caps).
func TestCacheWarmAndColdResize(t *testing.T) {
	srv, c := newCacheClient(t)

	r := geom.XYWH(0, 0, 16, 16)
	srv.PutImage(driver.Screen, r, cachePattern(r, 3), r.W())
	c.FlushAll()
	if c.CacheEntries() != 1 {
		t.Fatalf("entries = %d", c.CacheEntries())
	}

	c.SetCacheSize(64 << 10) // unchanged: warm
	if c.CacheEntries() != 1 {
		t.Fatal("unchanged capacity lost the warm model")
	}
	c.SetCacheSize(128 << 10) // changed: cold
	if c.CacheEntries() != 0 {
		t.Fatal("changed capacity kept a model the client cannot match")
	}
	c.SetCacheSize(0)
	if c.CacheSize() != 0 || c.CacheEntries() != 0 {
		t.Fatal("zero grant did not disable the cache")
	}
}

func TestCacheMissRepairForgetsAndRepaints(t *testing.T) {
	srv, c := newCacheClient(t)

	r := geom.XYWH(8, 8, 16, 16)
	srv.PutImage(driver.Screen, r, cachePattern(r, 21), r.W())
	stores, _ := cacheMsgs(c.FlushAll())
	if len(stores) != 1 {
		t.Fatalf("stores = %d", len(stores))
	}
	d := stores[0].Digest

	srv.CacheMissRepair(c, d, r)
	if c.CacheHolds(d) {
		t.Fatal("model still holds the digest the client reported missing")
	}
	if c.CacheStats.Misses != 1 {
		t.Fatalf("Misses = %d, want 1", c.CacheStats.Misses)
	}
	repaired := false
	for _, m := range c.FlushAll() {
		switch v := m.(type) {
		case *wire.Raw:
			if v.Rect.Contains(r) {
				repaired = true
			}
		case *wire.CacheStore:
			if v.Rect.Contains(r) {
				repaired = true // the repair raw is itself cache-eligible
			}
		}
	}
	if !repaired {
		t.Fatal("no repaint of the reported region")
	}

	// Out-of-screen reports are clipped, not executed.
	before := c.Buf.Len()
	srv.CacheMissRepair(c, 42, geom.XYWH(10000, 10000, 5, 5))
	if c.Buf.Len() != before {
		t.Fatal("off-screen miss report queued a repaint")
	}
}

// TestCacheSchedulesHitAtPaintCost: SRSF schedules on wire economy, so
// a kilobyte payload the client holds must sort as a ~21-byte command.
func TestCacheSchedulesHitAtPaintCost(t *testing.T) {
	srv, c := newCacheClient(t)

	r := geom.XYWH(0, 0, 32, 32)
	srv.PutImage(driver.Screen, r, cachePattern(r, 17), r.W())
	c.FlushAll()

	r2 := geom.XYWH(64, 0, 32, 32)
	srv.PutImage(driver.Screen, r2, cachePattern(r2, 17), r2.W())
	if got := c.Buf.entries[0].cmd.WireSize(); got != cachePaintWire {
		t.Fatalf("scheduled size of a hit = %d, want %d", got, cachePaintWire)
	}
	// A cold cache prices the same payload at full cost plus the store
	// overhead.
	c.SetCacheSize(32 << 10)
	if got := c.Buf.entries[0].cmd.WireSize(); got <= cachePaintWire {
		t.Fatalf("scheduled size after cold restart = %d, want full store cost", got)
	}
}

// TestCacheHotPathZeroAlloc enforces the hot-path allocation budget:
// deciding hit-vs-store — memoized digest, model lookup, scheduling
// size — allocates nothing. (Emitting a message allocates the message,
// like every other emit path.)
func TestCacheHotPathZeroAlloc(t *testing.T) {
	srv, c := newCacheClient(t)

	r := geom.XYWH(0, 0, 32, 32)
	srv.PutImage(driver.Screen, r, cachePattern(r, 29), r.W())
	c.FlushAll()

	r2 := geom.XYWH(64, 0, 32, 32)
	srv.PutImage(driver.Screen, r2, cachePattern(r2, 29), r2.W())
	cc, ok := c.Buf.entries[0].cmd.(*cacheCmd)
	if !ok {
		t.Fatalf("buffered command is %T, want *cacheCmd", c.Buf.entries[0].cmd)
	}
	raw := cc.Command.(*RawCmd)
	if n := testing.AllocsPerRun(1000, func() {
		if rawCmdDigest(raw) != cc.digest {
			t.Fatal("memoized digest diverged")
		}
		if !c.CacheHolds(cc.digest) {
			t.Fatal("model lost the digest")
		}
		if cc.WireSize() != cachePaintWire {
			t.Fatal("hit not priced as a paint")
		}
	}); n != 0 {
		t.Fatalf("cache hot path allocates %.1f per decision, want 0", n)
	}
}

// TestCacheDisabledIsByteIdentical: with no grant the wire stream must
// not change at all — the default-off guarantee every pre-v6 test and
// peer relies on.
func TestCacheDisabledIsByteIdentical(t *testing.T) {
	srv, c := newCacheClient(t)
	c.SetCacheSize(0)

	r := geom.XYWH(0, 0, 16, 16)
	srv.PutImage(driver.Screen, r, cachePattern(r, 31), r.W())
	srv.PutImage(driver.Screen, r.Translate(32, 0), cachePattern(r, 31), r.W())
	for _, m := range c.FlushAll() {
		switch m.(type) {
		case *wire.CacheStore, *wire.CachePaint:
			t.Fatalf("disabled cache emitted %v", m.Type())
		}
	}
	if c.CacheStats.Stores != 0 || c.CacheStats.Hits != 0 {
		t.Fatalf("disabled cache accrued stats %+v", c.CacheStats)
	}
}
