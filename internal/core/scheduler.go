package core

import (
	"fmt"
	"sort"
	"time"

	"thinc/internal/geom"
	"thinc/internal/wire"
)

// Delivery scheduling (§5). The per-client command buffer keeps the
// commands awaiting transmission with the command-queue overwrite
// invariants, and delivers them with a multi-queue
// Shortest-Remaining-Size-First (SRSF) scheduler: NumQueues queues with
// power-of-two size boundaries, flushed in increasing order, each
// ordered by arrival. A real-time queue preempts everything for updates
// near recent user input. Flushing is non-blocking: the caller offers a
// byte budget (how much the transport will take without blocking), and
// oversized RAW commands are broken so the remainder waits, reformatted,
// for the next flush period.
//
// Reordering correctness: commands may be delivered out of arrival
// order only when no dependency exists between them. Dependencies are
// recorded explicitly at insertion — paint-order (the new command's
// output overlaps a buffered command's surviving output), read-after-
// write (the new command reads a buffered command's output — COPY
// sources, transparent blends), and write-after-read (the new command
// overwrites what a buffered COPY still needs to read). The flusher
// delivers a command only after all of its dependencies.

// Scheduler geometry.
const (
	// NumQueues is the number of SRSF size queues (the paper's
	// implementation uses 10).
	NumQueues = 10
	// queueBase is the size bound of the first queue; queue i holds
	// commands of wire size <= queueBase << i.
	queueBase = 64
	// rtMaxSize bounds commands eligible for the real-time queue —
	// "small to medium-sized" updates issued in response to input.
	rtMaxSize = 8 * 1024
	// rtRadius is the half-size of the region around the last input
	// event whose updates are considered interactive feedback.
	rtRadius = 48
	// rtLifetime is how many flush periods an input event keeps its
	// region hot.
	rtLifetime = 8
)

// sizeQueue maps a wire size to its SRSF queue index.
func sizeQueue(size int) int {
	bound := queueBase
	for i := 0; i < NumQueues-1; i++ {
		if size <= bound {
			return i
		}
		bound <<= 1
	}
	return NumQueues - 1
}

// entry is a buffered command plus its scheduling state.
type entry struct {
	cmd      Command
	seq      uint64
	deps     []*entry // must be delivered (or evicted) first
	realtime bool     // preempts the size queues
	stream   uint32
	isFrame  bool
	slot     string // replacement-slot key ("" = none)
	inFlush  uint64 // flush counter at insertion (queue-residency metric)
	// epoch and damageNS carry the translation layer's batch stamp
	// through the scheduler (wire v5 e2e tracing; see trace.go).
	epoch    uint64
	damageNS int64
	// size caches cmd.WireSize() so queue classification, backlog
	// accounting, and flush budgeting never recompute it. It is
	// refreshed whenever the live remainder changes: overwrite
	// eviction shrinking a survivor, merge absorption, RAW splitting.
	size int
}

// BufferStats accounts a client buffer's activity.
type BufferStats struct {
	Queued     int // commands accepted
	Merged     int // commands absorbed into a predecessor
	Evicted    int // commands dropped as irrelevant before delivery
	FrameDrops int // video frames replaced before delivery
	Sent       int // commands fully delivered
	Splits     int // RAW commands broken for non-blocking flush
	BytesSent  int64

	// BudgetEvicted counts commands replaced by the per-client byte
	// budget's eviction-to-RAW sweeps.
	BudgetEvicted int

	// Overshoots counts commands streamed past the flush budget by
	// FlushOne — the forward-progress guarantee when the head command
	// is unsplittable and larger than the whole budget.
	Overshoots int
}

// ClientBuffer is the per-client command buffer (§5).
type ClientBuffer struct {
	entries []*entry
	seq     uint64
	flushes uint64 // Flush invocations (queue-residency metric)

	rtCenter geom.Point
	rtTTL    int

	// stampEpoch/stampDamageNS are applied to each added entry;
	// lastFlush summarizes the most recent delivering flush (trace.go).
	stampEpoch    uint64
	stampDamageNS int64
	lastFlush     FlushTrace

	// FIFO disables SRSF and real-time scheduling: commands flush in
	// arrival order (the ablation baseline for §5).
	FIFO bool

	Stats BufferStats

	met *Metrics

	// onQueued, when set, fires after every successful insert (Add,
	// AddSlot, AddFrame — replacements included). It is the damage
	// hook of the event-driven delivery core: the server arms a paced
	// flush only when there is something to deliver, so an idle
	// session costs no timer at all. Called under whatever lock guards
	// the buffer, so it must be cheap and must not call back in.
	onQueued func()
}

// SetOnQueued installs (or clears, with nil) the insert hook. The
// caller must hold the same lock that guards the buffer's inserts.
func (b *ClientBuffer) SetOnQueued(fn func()) { b.onQueued = fn }

// notifyQueued fires the insert hook, if any.
func (b *ClientBuffer) notifyQueued() {
	if b.onQueued != nil {
		b.onQueued()
	}
}

// NewClientBuffer returns an empty buffer.
func NewClientBuffer() *ClientBuffer { return &ClientBuffer{met: nopMetrics} }

// NewClientBufferWith returns an empty buffer reporting into the given
// instrument bundle (nil falls back to detached instruments).
func NewClientBufferWith(met *Metrics) *ClientBuffer {
	if met == nil {
		met = nopMetrics
	}
	return &ClientBuffer{met: met}
}

// Clear drops every buffered command without delivering it — the
// slow-client policy: when a peer cannot keep up, stale commands are
// discarded wholesale and the caller queues a full resync instead of
// letting the backlog grow without bound.
func (b *ClientBuffer) Clear() {
	b.Stats.Evicted += len(b.entries)
	b.met.evicted.Add(int64(len(b.entries)))
	b.met.bufferClears.Inc()
	if b.met.Trace.Enabled() {
		b.met.Trace.Event("sched.clear", fmt.Sprintf("dropped=%d", len(b.entries)))
	}
	b.entries = b.entries[:0]
}

// Len returns the number of buffered commands.
func (b *ClientBuffer) Len() int { return len(b.entries) }

// QueuedBytes returns the total remaining wire size buffered.
func (b *ClientBuffer) QueuedBytes() int {
	n := 0
	for _, e := range b.entries {
		n += e.size
	}
	return n
}

// NotifyInput marks the region around p as interactive: subsequent
// overlapping small updates are delivered through the real-time queue.
func (b *ClientBuffer) NotifyInput(p geom.Point) {
	b.rtCenter = p
	b.rtTTL = rtLifetime
}

func (b *ClientBuffer) rtRegion() geom.Rect {
	if b.rtTTL <= 0 {
		return geom.Rect{}
	}
	return geom.XYWH(b.rtCenter.X-rtRadius, b.rtCenter.Y-rtRadius, 2*rtRadius, 2*rtRadius)
}

// Add inserts a command, applying overwrite eviction, merge
// aggregation, dependency recording, and real-time classification.
func (b *ClientBuffer) Add(cmd Command) {
	b.Stats.Queued++
	b.met.queuedByClass[cmd.Class()].Inc()
	size := cmd.WireSize()
	b.met.cmdSize.Observe(int64(size))

	// Overwrite eviction (opaque commands only). Regions a buffered COPY
	// still reads from are protected: clipping the command that drew a
	// copy's source would make the client execute the copy over content
	// it never received. Protected commands survive whole; the
	// dependency edges below keep the delivery order correct.
	if cmd.Class() != Transparent {
		var protected geom.Region
		for _, e := range b.entries {
			if rs := e.cmd.ReadsFrom(); !rs.Empty() {
				protected.UnionRect(rs)
			}
		}
		// A scroll-style COPY overwrites part of what it reads: its own
		// source needs the same protection.
		if rs := cmd.ReadsFrom(); !rs.Empty() {
			protected.UnionRect(rs)
		}
		// Evict by the command's *live* region: a clone extracted by
		// CopyOut may cover less than its bounds, and must not evict
		// content it will not repaint.
		cover := cmd.Live().Rects()
		kept := b.entries[:0]
		for _, e := range b.entries {
			shielded := false
			if !protected.Empty() {
			shieldCheck:
				for _, r := range cover {
					if !e.cmd.Live().OverlapsRect(r) {
						continue
					}
					for _, pr := range protected.Rects() {
						if e.cmd.Live().OverlapsRect(pr.Intersect(r)) {
							shielded = true
							break shieldCheck
						}
					}
				}
			}
			if shielded {
				kept = append(kept, e)
				continue
			}
			evicted, touched := false, false
			for _, r := range cover {
				if !e.cmd.Live().OverlapsRect(r) {
					continue // CoverOutput would be a no-op
				}
				touched = true
				if e.cmd.CoverOutput(r) {
					evicted = true
					break
				}
			}
			if evicted {
				b.Stats.Evicted++
				b.met.evicted.Inc()
				continue
			}
			if touched {
				// Partial coverage shrank the live remainder; the cached
				// size must track it or SRSF schedules on stale bytes.
				e.size = e.cmd.WireSize()
			}
			kept = append(kept, e)
		}
		b.entries = kept
	}

	// Dependency edges: the new command must be delivered after any
	// buffered command whose surviving output it overlaps or reads, and
	// after any buffered command that still reads what it overwrites.
	var deps []*entry
	nb := cmd.Bounds()
	ns := cmd.ReadsFrom()
	for _, e := range b.entries {
		dep := false
		if !nb.Empty() && e.cmd.Live().OverlapsRect(nb) {
			dep = true // paint order
		}
		if !dep && !ns.Empty() && e.cmd.Live().OverlapsRect(ns) {
			dep = true // read after write
		}
		if !dep {
			if es := e.cmd.ReadsFrom(); !es.Empty() && !nb.Empty() && es.Overlaps(nb) {
				dep = true // write after read
			}
		}
		if dep {
			deps = append(deps, e)
		}
	}

	// Merge aggregation with the most recent command; the merged entry
	// absorbs the newcomer's dependencies.
	if n := len(b.entries); n > 0 && b.entries[n-1].cmd.Merge(cmd) {
		b.Stats.Merged++
		b.met.merged.Inc()
		last := b.entries[n-1]
		last.size = last.cmd.WireSize() // absorption grew the command
		last.deps = appendNewDeps(last.deps, deps, last)
		if len(last.deps) > 0 {
			last.realtime = false
		}
		b.notifyQueued()
		return
	}

	e := &entry{cmd: cmd, seq: b.seq, deps: deps, inFlush: b.flushes, size: size,
		epoch: b.stampEpoch, damageNS: b.stampDamageNS}
	b.seq++

	// Real-time classification: small, dependency-free updates
	// overlapping the recent input region jump the size queues.
	if rt := b.rtRegion(); !rt.Empty() && !nb.Empty() &&
		nb.Overlaps(rt) && size <= rtMaxSize && len(deps) == 0 {
		e.realtime = true
	}
	if _, ok := cmd.(*AudioCmd); ok {
		e.realtime = true // audio rides the interactive path (§4.2)
	}
	if cc, ok := cmd.(*ctlCmd); ok && cc.rt && len(deps) == 0 {
		e.realtime = true // cursor traffic is interactive feedback
	}
	if e.realtime {
		b.met.rtPromotions.Inc()
	}
	b.entries = append(b.entries, e)
	b.notifyQueued()
}

// Slot keys for AddSlot.
const slotCursorMove = "cursor-move"

// AddSlot inserts a command into a named replacement slot: an unsent
// predecessor with the same key is superseded in place (cursor moves;
// video frames use the same mechanism keyed per stream).
func (b *ClientBuffer) AddSlot(cmd Command, key string) {
	b.Stats.Queued++
	b.met.queuedByClass[cmd.Class()].Inc()
	size := cmd.WireSize()
	b.met.cmdSize.Observe(int64(size))
	for i, e := range b.entries {
		if e.slot == key {
			e2 := &entry{cmd: cmd, seq: e.seq, deps: e.deps,
				realtime: e.realtime, slot: key, inFlush: e.inFlush, size: size,
				epoch: b.stampEpoch, damageNS: b.stampDamageNS}
			b.entries[i] = e2
			b.redirectDeps(e, e2)
			b.notifyQueued()
			return
		}
	}
	e := &entry{cmd: cmd, seq: b.seq, slot: key, inFlush: b.flushes, size: size,
		epoch: b.stampEpoch, damageNS: b.stampDamageNS}
	b.seq++
	if cc, ok := cmd.(*ctlCmd); ok && cc.rt {
		e.realtime = true
	}
	b.entries = append(b.entries, e)
	b.notifyQueued()
}

// appendNewDeps merges dep lists, dropping duplicates and self-edges.
func appendNewDeps(dst, add []*entry, self *entry) []*entry {
	for _, d := range add {
		if d == self {
			continue
		}
		seen := false
		for _, x := range dst {
			if x == d {
				seen = true
				break
			}
		}
		if !seen {
			dst = append(dst, d)
		}
	}
	return dst
}

// AddFrame inserts a video frame, replacing any undelivered frame of
// the same stream (drop-at-server instead of queue-stale-video).
// It reports whether an older frame was dropped.
func (b *ClientBuffer) AddFrame(cmd *FrameCmd) (dropped bool) {
	b.Stats.Queued++
	b.met.queuedByClass[cmd.Class()].Inc()
	size := cmd.WireSize()
	b.met.cmdSize.Observe(int64(size))
	for i, e := range b.entries {
		if e.isFrame && e.stream == cmd.StreamID {
			e2 := &entry{cmd: cmd, seq: e.seq, deps: e.deps,
				stream: cmd.StreamID, isFrame: true, inFlush: e.inFlush, size: size,
				epoch: b.stampEpoch, damageNS: b.stampDamageNS}
			b.entries[i] = e2
			b.redirectDeps(e, e2)
			b.Stats.FrameDrops++
			b.met.frameDrops.Inc()
			b.notifyQueued()
			return true
		}
	}
	e := &entry{cmd: cmd, seq: b.seq, stream: cmd.StreamID, isFrame: true,
		inFlush: b.flushes, size: size,
		epoch: b.stampEpoch, damageNS: b.stampDamageNS}
	b.seq++
	b.entries = append(b.entries, e)
	b.notifyQueued()
	return false
}

// redirectDeps repoints dependency edges from old to new when an entry
// is replaced in place.
func (b *ClientBuffer) redirectDeps(old, new *entry) {
	for _, e := range b.entries {
		for i, d := range e.deps {
			if d == old {
				e.deps[i] = new
			}
		}
	}
}

// queueOf computes an entry's current SRSF queue from its *remaining*
// wire size (cached; invalidated on eviction shrink, merge, and split).
func (b *ClientBuffer) queueOf(e *entry) int {
	return sizeQueue(e.size)
}

// Flush delivers up to budget bytes of commands in scheduler order:
// real-time first, then queues in increasing size order, arrival order
// within a queue — holding back any command whose dependencies have not
// been delivered yet. A RAW command that does not fit is split;
// anything else that does not fit stops the flush (non-blocking commit,
// §5). It returns the wire messages to transmit.
func (b *ClientBuffer) Flush(budget int) []wire.Message {
	if b.rtTTL > 0 {
		b.rtTTL--
	}
	if len(b.entries) == 0 || budget <= 0 {
		return nil
	}
	b.flushes++
	b.lastFlush = FlushTrace{}
	drainNS := time.Now().UnixNano()

	inBuf := make(map[*entry]bool, len(b.entries))
	for _, e := range b.entries {
		inBuf[e] = true
	}
	order := make([]*entry, len(b.entries))
	copy(order, b.entries)
	if !b.FIFO {
		sort.SliceStable(order, func(i, j int) bool {
			ei, ej := order[i], order[j]
			if ei.realtime != ej.realtime {
				return ei.realtime
			}
			if ei.realtime && ej.realtime {
				return ei.seq < ej.seq
			}
			qi, qj := b.queueOf(ei), b.queueOf(ej)
			if qi != qj {
				return qi < qj
			}
			return ei.seq < ej.seq
		})
	}

	delivered := make(map[*entry]bool)
	ready := func(e *entry) bool {
		for _, d := range e.deps {
			if inBuf[d] && !delivered[d] {
				return false
			}
		}
		return true
	}

	var out []wire.Message
	blocked := false
	for progress := true; progress && !blocked; {
		progress = false
		for _, e := range order {
			if delivered[e] || !ready(e) {
				continue
			}
			sz := e.size
			if sz <= budget {
				out = e.cmd.Emit(out)
				budget -= sz
				delivered[e] = true
				b.Stats.Sent++
				b.met.sent.Inc()
				b.met.queueWait.Observe(int64(b.flushes - 1 - e.inFlush))
				b.noteDelivered(e, drainNS)
				progress = true
				continue
			}
			// Command breaking: only RAW payloads split cleanly. The
			// remainder keeps waiting with its *reduced* wire size, so the
			// next flush reschedules it in the queue matching what is
			// actually left to send (see TestSplitRemainderRequeued).
			if rc, ok := e.cmd.(*RawCmd); ok {
				if part := rc.SplitTop(budget); part != nil {
					out = part.Emit(out)
					budget -= part.WireSize()
					e.size = rc.WireSize() // remainder reschedules by what is left
					b.Stats.Splits++
					b.met.splits.Inc()
					if b.met.Trace.Enabled() {
						b.met.Trace.Event("sched.split",
							fmt.Sprintf("part=%dB remaining=%dB", part.WireSize(), e.size))
					}
					if rc.Live().Empty() {
						delivered[e] = true
						b.Stats.Sent++
						b.met.sent.Inc()
						b.met.queueWait.Observe(int64(b.flushes - 1 - e.inFlush))
						b.noteDelivered(e, drainNS)
					}
				}
			}
			blocked = true // transport would block; stop flushing (§5)
			break
		}
	}

	if len(delivered) > 0 {
		kept := b.entries[:0]
		for _, e := range b.entries {
			if !delivered[e] {
				kept = append(kept, e)
			}
		}
		b.entries = kept
	}
	var flushed int64
	for _, m := range out {
		flushed += int64(wire.WireSize(m))
	}
	b.Stats.BytesSent += flushed
	if len(out) > 0 {
		b.met.bytesSent.Add(flushed)
		b.met.flushBytes.Observe(flushed)
	}
	return out
}

// FlushAll drains the buffer completely, ignoring budgets — used by
// tests and by transports with no backpressure.
func (b *ClientBuffer) FlushAll() []wire.Message {
	var out []wire.Message
	for b.Len() > 0 {
		msgs := b.Flush(1 << 30)
		if len(msgs) == 0 {
			break
		}
		out = append(out, msgs...)
	}
	return out
}

// FlushOne delivers exactly the first eligible command regardless of
// size — the transport path for a command larger than the socket
// buffer when the link is otherwise idle: the kernel streams a large
// write over time, it does not refuse it.
func (b *ClientBuffer) FlushOne() []wire.Message {
	if len(b.entries) == 0 {
		return nil
	}
	// Reuse Flush's ordering with a budget big enough for any command,
	// but stop after the first delivery.
	inBuf := make(map[*entry]bool, len(b.entries))
	for _, e := range b.entries {
		inBuf[e] = true
	}
	order := make([]*entry, len(b.entries))
	copy(order, b.entries)
	sort.SliceStable(order, func(i, j int) bool {
		ei, ej := order[i], order[j]
		if ei.realtime != ej.realtime {
			return ei.realtime
		}
		if ei.realtime && ej.realtime {
			return ei.seq < ej.seq
		}
		qi, qj := b.queueOf(ei), b.queueOf(ej)
		if qi != qj {
			return qi < qj
		}
		return ei.seq < ej.seq
	})
	for _, e := range order {
		ok := true
		for _, d := range e.deps {
			if inBuf[d] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		out := e.cmd.Emit(nil)
		kept := b.entries[:0]
		for _, x := range b.entries {
			if x != e {
				kept = append(kept, x)
			}
		}
		b.entries = kept
		b.lastFlush = FlushTrace{}
		b.noteDelivered(e, time.Now().UnixNano())
		b.Stats.Sent++
		b.Stats.Overshoots++
		b.met.sent.Inc()
		b.met.overshoots.Inc()
		var flushed int64
		for _, m := range out {
			flushed += int64(wire.WireSize(m))
		}
		b.Stats.BytesSent += flushed
		b.met.bytesSent.Add(flushed)
		b.met.flushBytes.Observe(flushed)
		return out
	}
	return nil
}
