package core

import (
	"testing"

	"thinc/internal/compress"
	"thinc/internal/fb"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/wire"
)

func TestSizeQueueBoundaries(t *testing.T) {
	cases := []struct {
		size, queue int
	}{
		{1, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2},
		{8192, 7}, {16384, 8}, {32768, 9}, {1 << 20, 9},
	}
	for _, c := range cases {
		if got := sizeQueue(c.size); got != c.queue {
			t.Errorf("sizeQueue(%d) = %d, want %d", c.size, got, c.queue)
		}
	}
}

func TestSRSFSmallBeforeLarge(t *testing.T) {
	b := NewClientBuffer()
	big := geom.XYWH(0, 0, 200, 200)
	b.Add(NewRaw(big, mkPix(big, 1), 200, false, compress.CodecNone)) // arrives first
	b.Add(NewFill(geom.XYWH(500, 500, 10, 10), pixel.RGB(1, 1, 1)))   // small, later
	msgs := b.FlushAll()
	if len(msgs) < 2 {
		t.Fatalf("%d messages", len(msgs))
	}
	if _, ok := msgs[0].(*wire.SFill); !ok {
		t.Fatalf("small fill should be delivered first, got %T", msgs[0])
	}
}

func TestArrivalOrderWithinQueue(t *testing.T) {
	b := NewClientBuffer()
	b.Add(NewFill(geom.XYWH(0, 0, 5, 5), pixel.RGB(1, 1, 1)))
	b.Add(NewFill(geom.XYWH(10, 0, 5, 5), pixel.RGB(2, 2, 2)))
	msgs := b.FlushAll()
	if msgs[0].(*wire.SFill).Color != pixel.RGB(1, 1, 1) {
		t.Fatal("same-queue commands must flush in arrival order")
	}
}

func TestDependencyOrderingTransparentAfterBase(t *testing.T) {
	b := NewClientBuffer()
	big := geom.XYWH(0, 0, 150, 150)
	b.Add(NewRaw(big, mkPix(big, 1), 150, false, compress.CodecNone))
	// Transparent blend over part of the raw: must come after it even
	// though it is tiny.
	blend := geom.XYWH(10, 10, 4, 4)
	b.Add(NewRaw(blend, mkPix(blend, 2), 4, true, compress.CodecNone))
	msgs := b.FlushAll()
	sawBase := false
	for _, m := range msgs {
		if r, ok := m.(*wire.Raw); ok {
			if !r.Blend {
				sawBase = true
			} else if !sawBase {
				t.Fatal("transparent delivered before its base")
			}
		}
	}
}

func TestCopySourceProtection(t *testing.T) {
	// A COPY must flush after the command that drew its source, and any
	// later command overwriting the source must flush after the COPY.
	b := NewClientBuffer()
	src := geom.XYWH(0, 0, 120, 120)
	b.Add(NewRaw(src, mkPix(src, 1), 120, false, compress.CodecNone)) // draws source
	b.Add(NewCopy(geom.XYWH(0, 0, 50, 50), geom.Point{X: 300, Y: 300}))
	msgs := b.FlushAll()
	var order []wire.Type
	for _, m := range msgs {
		order = append(order, m.Type())
	}
	// RAW (source content) must precede COPY.
	for _, ty := range order {
		if ty == wire.TCopy {
			t.Fatalf("COPY before its source RAW: %v", order)
		}
		if ty == wire.TRaw {
			break
		}
	}
}

func TestRealtimePreemption(t *testing.T) {
	b := NewClientBuffer()
	big := geom.XYWH(0, 0, 200, 200)
	b.Add(NewRaw(big, mkPix(big, 1), 200, false, compress.CodecNone))
	// Click at (500,500); the button redraw near it is realtime.
	b.NotifyInput(geom.Point{X: 500, Y: 500})
	b.Add(NewFill(geom.XYWH(495, 495, 20, 10), pixel.RGB(9, 9, 9)))
	// Another small but far-away fill is NOT realtime.
	b.Add(NewFill(geom.XYWH(900, 50, 20, 10), pixel.RGB(8, 8, 8)))
	msgs := b.Flush(1 << 30)
	first := msgs[0].(*wire.SFill)
	if first.Rect != geom.XYWH(495, 495, 20, 10) {
		t.Fatalf("realtime update not first: %v", first.Rect)
	}
}

func TestRealtimeRegionExpires(t *testing.T) {
	b := NewClientBuffer()
	b.NotifyInput(geom.Point{X: 100, Y: 100})
	for i := 0; i < rtLifetime+1; i++ {
		b.Flush(1 << 30)
	}
	if rt := b.rtRegion(); !rt.Empty() {
		t.Fatal("input region should expire")
	}
}

func TestNonBlockingFlushSplitsRaw(t *testing.T) {
	b := NewClientBuffer()
	big := geom.XYWH(0, 0, 100, 100)
	b.Add(NewRaw(big, mkPix(big, 1), 100, false, compress.CodecNone))
	total := b.QueuedBytes()

	budget := total / 4
	msgs := b.Flush(budget)
	if len(msgs) == 0 {
		t.Fatal("no progress under small budget")
	}
	var sent int
	for _, m := range msgs {
		sent += wire.WireSize(m)
	}
	if sent > budget {
		t.Fatalf("flush exceeded budget: %d > %d", sent, budget)
	}
	if b.Len() != 1 {
		t.Fatalf("remainder should stay buffered, len=%d", b.Len())
	}
	if b.Stats.Splits != 1 {
		t.Fatalf("splits = %d", b.Stats.Splits)
	}
	// Eventually drains.
	for i := 0; i < 10 && b.Len() > 0; i++ {
		b.Flush(budget)
	}
	if b.Len() != 0 {
		t.Fatal("buffer did not drain")
	}
}

func TestFlushStopsAtUnsplittable(t *testing.T) {
	b := NewClientBuffer()
	// A tile command bigger than budget cannot split: flush returns empty.
	tile := fb.NewTile(64, 64, make([]pixel.ARGB, 64*64))
	b.Add(NewTile(geom.XYWH(0, 0, 100, 100), tile))
	msgs := b.Flush(100)
	if len(msgs) != 0 {
		t.Fatalf("unsplittable command partially flushed: %d msgs", len(msgs))
	}
	if b.Len() != 1 {
		t.Fatal("command lost")
	}
}

func TestVideoFrameReplacement(t *testing.T) {
	b := NewClientBuffer()
	frame := func(seq uint32) *FrameCmd {
		img := pixel.NewYV12(16, 16)
		return NewFrame(1, seq, uint64(seq)*1000, img, geom.XYWH(0, 0, 64, 64))
	}
	if b.AddFrame(frame(1)) {
		t.Fatal("first frame should not drop")
	}
	if !b.AddFrame(frame(2)) {
		t.Fatal("second frame should replace the first")
	}
	if b.Stats.FrameDrops != 1 {
		t.Fatalf("frame drops %d", b.Stats.FrameDrops)
	}
	msgs := b.FlushAll()
	count := 0
	for _, m := range msgs {
		if vf, ok := m.(*wire.VideoFrame); ok {
			count++
			if vf.Seq != 2 {
				t.Fatalf("stale frame delivered: seq %d", vf.Seq)
			}
		}
	}
	if count != 1 {
		t.Fatalf("%d frames delivered, want 1", count)
	}
}

func TestVideoFramesPerStreamIndependent(t *testing.T) {
	b := NewClientBuffer()
	img := pixel.NewYV12(8, 8)
	b.AddFrame(NewFrame(1, 1, 0, img, geom.XYWH(0, 0, 8, 8)))
	b.AddFrame(NewFrame(2, 1, 0, img, geom.XYWH(8, 0, 8, 8)))
	if b.Stats.FrameDrops != 0 {
		t.Fatal("frames of different streams must not replace each other")
	}
	if b.Len() != 2 {
		t.Fatalf("len %d", b.Len())
	}
}

func TestAudioIsRealtime(t *testing.T) {
	b := NewClientBuffer()
	big := geom.XYWH(0, 0, 200, 200)
	b.Add(NewRaw(big, mkPix(big, 1), 200, false, compress.CodecNone))
	b.Add(NewAudio(123, make([]byte, 512)))
	msgs := b.Flush(1 << 30)
	if _, ok := msgs[0].(*wire.AudioData); !ok {
		t.Fatalf("audio should preempt display, got %T first", msgs[0])
	}
}

func TestBufferEvictionCountsStats(t *testing.T) {
	b := NewClientBuffer()
	b.Add(NewFill(geom.XYWH(0, 0, 10, 10), pixel.RGB(1, 1, 1)))
	b.Add(NewFill(geom.XYWH(0, 0, 10, 10), pixel.RGB(2, 2, 2)))
	if b.Stats.Evicted != 1 || b.Len() != 1 {
		t.Fatalf("evicted=%d len=%d", b.Stats.Evicted, b.Len())
	}
	msgs := b.FlushAll()
	if len(msgs) != 1 || msgs[0].(*wire.SFill).Color != pixel.RGB(2, 2, 2) {
		t.Fatal("outdated fill was delivered")
	}
}

func TestFlushEmptyAndZeroBudget(t *testing.T) {
	b := NewClientBuffer()
	if msgs := b.Flush(1000); msgs != nil {
		t.Fatal("empty buffer should flush nothing")
	}
	b.Add(NewFill(geom.XYWH(0, 0, 1, 1), pixel.RGB(1, 1, 1)))
	if msgs := b.Flush(0); msgs != nil {
		t.Fatal("zero budget should flush nothing")
	}
}
