// Package core implements THINC's contribution: the translation layer
// that turns video-driver-level drawing operations into protocol
// commands (§4), the command queues with partial/complete/transparent
// overwrite semantics that keep only relevant commands buffered, the
// offscreen drawing awareness (§4.1), the video stream objects (§4.2),
// the SRSF multi-queue scheduler with real-time prioritization and
// non-blocking flush (§5), and server-side screen scaling (§6).
package core

import (
	"sync/atomic"

	"thinc/internal/compress"
	"thinc/internal/fb"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/wire"
)

// Class is a command's overwrite behaviour (§4): it governs how the
// command evicts and is evicted from command queues, and what the
// scheduler may reorder (§5).
type Class uint8

// Overwrite classes.
const (
	// Partial commands are opaque and may be partially overwritten:
	// their live region shrinks as later commands cover it.
	Partial Class = iota
	// Complete commands are opaque but evicted only when fully covered.
	// They are small, which pins them to the first scheduler queue and
	// preserves arrival-order correctness (§5).
	Complete
	// Transparent commands blend with prior content: they evict nothing
	// and must be delivered after everything they depend on.
	Transparent
)

func (c Class) String() string {
	switch c {
	case Partial:
		return "partial"
	case Complete:
		return "complete"
	case Transparent:
		return "transparent"
	default:
		return "unknown"
	}
}

// Command is a protocol command object: the unit the translation layer
// produces, command queues manage, and the scheduler delivers. Concrete
// commands implement the generic interface so queues can manipulate them
// without knowing their specifics (§4).
type Command interface {
	// Class returns the overwrite class.
	Class() Class
	// Bounds returns the command's full destination rectangle.
	Bounds() geom.Rect
	// Live returns the still-relevant destination region. For Complete
	// and Transparent commands this is always the full bounds.
	Live() *geom.Region
	// ReadsFrom returns the framebuffer region the command reads at
	// execution time (COPY's source); the zero Rect for all others.
	ReadsFrom() geom.Rect
	// CoverOutput removes r from the live region of a Partial command
	// and reports whether the command became irrelevant. For Complete
	// and Transparent commands it only reports full coverage; the
	// caller evicts on true.
	CoverOutput(r geom.Rect) (evict bool)
	// Translate moves the command's destination (and any anchored
	// payload geometry) by (dx, dy) — used when offscreen queues are
	// copied between regions (§4.1).
	Translate(dx, dy int)
	// Clone returns an independent copy; offscreen queue copies must
	// not alias the source queue's state.
	Clone() Command
	// WireSize returns the bytes needed to deliver the live remainder —
	// the quantity SRSF schedules on (§5).
	WireSize() int
	// Emit appends the wire messages delivering the live remainder.
	Emit(dst []wire.Message) []wire.Message
	// Merge tries to absorb other (arriving immediately after) into
	// this command, returning true on success — the update aggregation
	// of §4 (scanline raws, abutting fills).
	Merge(other Command) bool
}

// opaqueBase carries the live-region bookkeeping shared by partial
// commands.
type opaqueBase struct {
	bounds geom.Rect
	live   geom.Region
}

func newOpaqueBase(r geom.Rect) opaqueBase {
	return opaqueBase{bounds: r, live: geom.RegionOf(r)}
}

func (b *opaqueBase) Bounds() geom.Rect    { return b.bounds }
func (b *opaqueBase) Live() *geom.Region   { return &b.live }
func (b *opaqueBase) ReadsFrom() geom.Rect { return geom.Rect{} }
func (b *opaqueBase) CoverOutput(r geom.Rect) bool {
	b.live.SubtractRect(r)
	return b.live.Empty()
}
func (b *opaqueBase) translate(dx, dy int) {
	b.bounds = b.bounds.Translate(dx, dy)
	b.live.Translate(dx, dy)
}

// FillCmd is the SFILL protocol command object.
type FillCmd struct {
	opaqueBase
	Color pixel.ARGB
}

// NewFill builds an SFILL command covering r.
func NewFill(r geom.Rect, c pixel.ARGB) *FillCmd {
	return &FillCmd{opaqueBase: newOpaqueBase(r), Color: c}
}

// Class implements Command.
func (c *FillCmd) Class() Class { return Partial }

// Translate implements Command.
func (c *FillCmd) Translate(dx, dy int) { c.translate(dx, dy) }

// Clone implements Command.
func (c *FillCmd) Clone() Command {
	cp := *c
	cp.live = c.live.Clone()
	return &cp
}

// WireSize implements Command.
func (c *FillCmd) WireSize() int {
	n := 0
	for range c.live.Rects() {
		n += wire.HeaderSize + 12
	}
	return n
}

// Emit implements Command.
func (c *FillCmd) Emit(dst []wire.Message) []wire.Message {
	for _, r := range c.live.Rects() {
		dst = append(dst, &wire.SFill{Rect: r, Color: c.Color})
	}
	return dst
}

// Merge implements Command: same-color fills whose union is an exact
// rectangle are absorbed.
func (c *FillCmd) Merge(other Command) bool {
	o, ok := other.(*FillCmd)
	if !ok || o.Color != c.Color {
		return false
	}
	// Only merge simple single-rect states.
	if c.live.NumRects() != 1 || o.live.NumRects() != 1 {
		return false
	}
	a, b := c.live.Rects()[0], o.live.Rects()[0]
	u := a.Union(b)
	if u.Area() != a.Area()+b.Area()-a.Intersect(b).Area() {
		return false
	}
	c.bounds = c.bounds.Union(o.bounds)
	c.live = geom.RegionOf(u)
	return true
}

// TileCmd is the PFILL protocol command object. The anchor carries the
// tile phase, so clipping the live region or relocating the command
// (offscreen queue copies, §4.1) never shifts the pattern.
type TileCmd struct {
	opaqueBase
	Tile   *fb.Tile
	Anchor geom.Point
}

// NewTile builds a PFILL command covering r with tile phase (0,0).
func NewTile(r geom.Rect, t *fb.Tile) *TileCmd {
	return &TileCmd{opaqueBase: newOpaqueBase(r), Tile: t}
}

// Class implements Command.
func (c *TileCmd) Class() Class { return Partial }

// Translate implements Command: the anchor moves with the content, so
// the relocated fill shows exactly the pixels the copy produced.
func (c *TileCmd) Translate(dx, dy int) {
	c.translate(dx, dy)
	c.Anchor = c.Anchor.Add(geom.Point{X: dx, Y: dy})
}

// Clone implements Command.
func (c *TileCmd) Clone() Command {
	cp := *c
	cp.live = c.live.Clone()
	return &cp
}

// WireSize implements Command.
func (c *TileCmd) WireSize() int {
	per := wire.HeaderSize + 16 + len(c.Tile.Pix)*4
	return per * c.live.NumRects()
}

// Emit implements Command.
func (c *TileCmd) Emit(dst []wire.Message) []wire.Message {
	ax := ((c.Anchor.X % c.Tile.W) + c.Tile.W) % c.Tile.W
	ay := ((c.Anchor.Y % c.Tile.H) + c.Tile.H) % c.Tile.H
	for _, r := range c.live.Rects() {
		dst = append(dst, &wire.PFill{Rect: r, TileW: c.Tile.W, TileH: c.Tile.H,
			Ax: ax, Ay: ay, Tile: c.Tile.Pix})
	}
	return dst
}

// Merge implements Command: abutting fills with the identical tile merge.
func (c *TileCmd) Merge(other Command) bool {
	o, ok := other.(*TileCmd)
	if !ok || o.Tile != c.Tile || o.Anchor != c.Anchor {
		return false
	}
	if c.live.NumRects() != 1 || o.live.NumRects() != 1 {
		return false
	}
	a, b := c.live.Rects()[0], o.live.Rects()[0]
	u := a.Union(b)
	if u.Area() != a.Area()+b.Area()-a.Intersect(b).Area() {
		return false
	}
	c.bounds = c.bounds.Union(o.bounds)
	c.live = geom.RegionOf(u)
	return true
}

// BitmapCmd is the BITMAP protocol command object: a 1-bit stipple with
// fg/bg colors, anchored at its rectangle's origin. Opaque stipples are
// Complete (all-or-nothing eviction keeps bit alignment trivial and they
// are small); transparent or alpha-carrying stipples (anti-aliased text)
// are Transparent.
type BitmapCmd struct {
	Rect        geom.Rect
	Bits        *fb.Bitmap
	Fg, Bg      pixel.ARGB
	Transparent bool
	region      geom.Region
}

// NewBitmap builds a BITMAP command covering r.
func NewBitmap(r geom.Rect, bits *fb.Bitmap, fg, bg pixel.ARGB, transparent bool) *BitmapCmd {
	return &BitmapCmd{Rect: r, Bits: bits, Fg: fg, Bg: bg, Transparent: transparent,
		region: geom.RegionOf(r)}
}

// Class implements Command.
func (c *BitmapCmd) Class() Class {
	if c.Transparent || !c.Fg.Opaque() || !c.Bg.Opaque() {
		return Transparent
	}
	return Complete
}

// Bounds implements Command.
func (c *BitmapCmd) Bounds() geom.Rect { return c.Rect }

// Live implements Command.
func (c *BitmapCmd) Live() *geom.Region { return &c.region }

// ReadsFrom implements Command.
func (c *BitmapCmd) ReadsFrom() geom.Rect {
	if c.Class() == Transparent {
		return c.Rect // blends with what is under it
	}
	return geom.Rect{}
}

// CoverOutput implements Command: evict only on full coverage.
func (c *BitmapCmd) CoverOutput(r geom.Rect) bool { return r.Contains(c.Rect) }

// Translate implements Command.
func (c *BitmapCmd) Translate(dx, dy int) {
	c.Rect = c.Rect.Translate(dx, dy)
	c.region.Translate(dx, dy)
}

// Clone implements Command.
func (c *BitmapCmd) Clone() Command {
	cp := *c
	cp.region = c.region.Clone()
	return &cp
}

// WireSize implements Command.
func (c *BitmapCmd) WireSize() int {
	return wire.HeaderSize + 8 + 4 + 4 + 1 + 4 + len(c.Bits.Bits)
}

// Emit implements Command.
func (c *BitmapCmd) Emit(dst []wire.Message) []wire.Message {
	return append(dst, &wire.Bitmap{
		Rect: c.Rect, Fg: c.Fg, Bg: c.Bg, Transparent: c.Transparent,
		BitW: c.Bits.W, BitH: c.Bits.H, Bits: c.Bits.Bits,
	})
}

// Merge implements Command: horizontally abutting stipples with the
// same colors and height merge into one — the per-character overhead
// §4 calls out collapses into one BITMAP per text run.
func (c *BitmapCmd) Merge(other Command) bool {
	o, ok := other.(*BitmapCmd)
	if !ok || o.Fg != c.Fg || o.Bg != c.Bg || o.Transparent != c.Transparent {
		return false
	}
	a, b := c.Rect, o.Rect
	if a.Y0 != b.Y0 || a.Y1 != b.Y1 || a.X1 != b.X0 {
		return false
	}
	// Merge only pristine commands whose bitmaps exactly tile their
	// rects (no wrap-around stippling in play).
	if c.Bits.W != a.W() || c.Bits.H != a.H() || o.Bits.W != b.W() || o.Bits.H != b.H() {
		return false
	}
	merged := fb.NewBitmap(a.W()+b.W(), a.H())
	for y := 0; y < a.H(); y++ {
		for x := 0; x < a.W(); x++ {
			merged.SetBit(x, y, c.Bits.BitAt(x, y))
		}
		for x := 0; x < b.W(); x++ {
			merged.SetBit(a.W()+x, y, o.Bits.BitAt(x, y))
		}
	}
	c.Bits = merged
	c.Rect = geom.Rect{X0: a.X0, Y0: a.Y0, X1: b.X1, Y1: a.Y1}
	c.region = geom.RegionOf(c.Rect)
	return true
}

// CopyCmd is the COPY protocol command object. It is Complete: its
// small, fixed wire size pins it to the first scheduler queue, and its
// source dependency is protected by the buffer's ordering rules (§5).
type CopyCmd struct {
	Src    geom.Rect
	Dst    geom.Point
	region geom.Region
}

// NewCopy builds a COPY of src to dst.
func NewCopy(src geom.Rect, dst geom.Point) *CopyCmd {
	out := geom.XYWH(dst.X, dst.Y, src.W(), src.H())
	return &CopyCmd{Src: src, Dst: dst, region: geom.RegionOf(out)}
}

// Class implements Command.
func (c *CopyCmd) Class() Class { return Complete }

// Bounds implements Command.
func (c *CopyCmd) Bounds() geom.Rect { return geom.XYWH(c.Dst.X, c.Dst.Y, c.Src.W(), c.Src.H()) }

// Live implements Command.
func (c *CopyCmd) Live() *geom.Region { return &c.region }

// ReadsFrom implements Command.
func (c *CopyCmd) ReadsFrom() geom.Rect { return c.Src }

// CoverOutput implements Command.
func (c *CopyCmd) CoverOutput(r geom.Rect) bool { return r.Contains(c.Bounds()) }

// Translate implements Command: both endpoints move (a copy inside a
// region that is itself relocated).
func (c *CopyCmd) Translate(dx, dy int) {
	c.Src = c.Src.Translate(dx, dy)
	c.Dst = c.Dst.Add(geom.Point{X: dx, Y: dy})
	c.region.Translate(dx, dy)
}

// Clone implements Command.
func (c *CopyCmd) Clone() Command {
	cp := *c
	cp.region = c.region.Clone()
	return &cp
}

// WireSize implements Command.
func (c *CopyCmd) WireSize() int { return wire.HeaderSize + 12 }

// Emit implements Command.
func (c *CopyCmd) Emit(dst []wire.Message) []wire.Message {
	return append(dst, &wire.Copy{Src: c.Src, Dst: c.Dst})
}

// Merge implements Command.
func (c *CopyCmd) Merge(Command) bool { return false }

// payloadRefs counts the RawCmd values sharing one immutable pixel
// backing. The session fan-out (one translated command broadcast into
// N per-client buffers) clones the command but shares the backing and
// bumps the count, so an added viewer costs per-client bookkeeping,
// never a payload copy. Any path that must produce different bytes —
// merge absorption building a bigger block — detaches onto a fresh
// backing first (setPix): copy-on-write, so one client's eviction,
// split, or merge can never mutate a sibling's payload.
type payloadRefs struct {
	n atomic.Int64

	// Content-digest memo (wire v6): the backing is immutable, so its
	// cache identity is computed once and shared by every fan-out clone.
	// Geometry and blend ride the digest but are identical across
	// sharers (clones diverge only in live region and codec). Written
	// under the host lock like all command mutation; not atomic.
	dig   uint64
	digOK bool
}

func newPayloadRefs() *payloadRefs {
	r := &payloadRefs{}
	r.n.Store(1)
	return r
}

// RawCmd is the RAW protocol command object: pixel data for a
// rectangle, kept uncompressed in the command object so that partial
// eviction and splitting never pay a recompression round trip; the
// payload is compressed at emit time. Blend marks alpha content the
// client must composite (Transparent class).
//
// The pixel backing is immutable after construction and refcounted
// (payloadRefs): clones made by the fan-out share it, and per-clone
// state (the live region, the codec rewrite of a degradation rung) is
// all that diverges between clients.
type RawCmd struct {
	opaqueBase
	Pix   []pixel.ARGB // row-major, stride == bounds.W(); immutable, shared
	Blend bool
	Codec compress.Codec

	refs *payloadRefs
}

// NewRaw builds a RAW command for r with the given pixels (stride in
// pixels, re-based to r's origin).
func NewRaw(r geom.Rect, pix []pixel.ARGB, stride int, blend bool, codec compress.Codec) *RawCmd {
	own := make([]pixel.ARGB, r.Area())
	for y := 0; y < r.H(); y++ {
		copy(own[y*r.W():(y+1)*r.W()], pix[y*stride:y*stride+r.W()])
	}
	return &RawCmd{opaqueBase: newOpaqueBase(r), Pix: own, Blend: blend, Codec: codec,
		refs: newPayloadRefs()}
}

// PayloadShares returns how many RawCmd values currently share this
// command's pixel backing (1 = sole owner). It is the observable the
// fan-out tests and amplification metrics assert on.
func (c *RawCmd) PayloadShares() int {
	if c.refs == nil {
		return 1
	}
	return int(c.refs.n.Load())
}

// setPix points c at a fresh private backing — the copy-on-write
// detach. The old backing's count drops; siblings sharing it are
// untouched.
func (c *RawCmd) setPix(pix []pixel.ARGB) {
	if c.refs != nil {
		c.refs.n.Add(-1)
	}
	c.Pix = pix
	c.refs = newPayloadRefs()
}

// release drops c's share of the backing when the command value is
// absorbed (merge) and will never emit.
func (c *RawCmd) release() {
	if c.refs != nil {
		c.refs.n.Add(-1)
		c.refs = nil
	}
}

// Class implements Command.
func (c *RawCmd) Class() Class {
	if c.Blend {
		return Transparent
	}
	return Partial
}

// ReadsFrom implements Command.
func (c *RawCmd) ReadsFrom() geom.Rect {
	if c.Blend {
		return c.bounds
	}
	return geom.Rect{}
}

// CoverOutput implements Command.
func (c *RawCmd) CoverOutput(r geom.Rect) bool {
	if c.Blend {
		return r.Contains(c.bounds)
	}
	return c.opaqueBase.CoverOutput(r)
}

// Translate implements Command.
func (c *RawCmd) Translate(dx, dy int) { c.translate(dx, dy) }

// Clone implements Command. The pixel backing is shared and its
// refcount bumped: raw payloads are immutable after construction, so a
// clone costs live-region bookkeeping, not a pixel copy.
func (c *RawCmd) Clone() Command {
	cp := *c
	cp.live = c.live.Clone()
	if c.refs != nil {
		c.refs.n.Add(1)
	}
	return &cp
}

// WireSize implements Command: the uncompressed payload cost of the
// live region (compression happens at emit; scheduling uses the
// conservative size).
func (c *RawCmd) WireSize() int {
	n := 0
	for _, r := range c.live.Rects() {
		n += wire.HeaderSize + 14 + r.Area()*4
	}
	return n
}

// subPixels extracts the pixels of r (which must lie inside bounds).
// When r covers the whole command the stored pixels are returned
// directly (they are immutable after construction), skipping the copy.
func (c *RawCmd) subPixels(r geom.Rect) []pixel.ARGB {
	if r == c.bounds {
		return c.Pix
	}
	w := c.bounds.W()
	out := make([]pixel.ARGB, r.Area())
	for y := 0; y < r.H(); y++ {
		srcOff := (r.Y0-c.bounds.Y0+y)*w + (r.X0 - c.bounds.X0)
		copy(out[y*r.W():(y+1)*r.W()], c.Pix[srcOff:srcOff+r.W()])
	}
	return out
}

// Emit implements Command: one RAW message per live rectangle,
// compressed with the command's codec into a pooled payload buffer.
// The buffers travel inside the emitted messages; the delivery layer
// hands them back via RecycleMessages once the transport write is done.
func (c *RawCmd) Emit(dst []wire.Message) []wire.Message {
	for _, r := range c.live.Rects() {
		data, err := compress.EncodeAppend(c.Codec, compress.GetScratch(), c.subPixels(r), r.W(), r.H())
		if err != nil {
			// Encoding raw pixels cannot fail with valid geometry; fall
			// back to uncompressed if a codec misbehaves.
			data, _ = compress.EncodeAppend(compress.CodecNone, data[:0], c.subPixels(r), r.W(), r.H())
			dst = append(dst, &wire.Raw{Rect: r, Codec: compress.CodecNone, Blend: c.Blend, Data: data})
			continue
		}
		dst = append(dst, &wire.Raw{Rect: r, Codec: c.Codec, Blend: c.Blend, Data: data})
	}
	return dst
}

// RecycleMessages returns the pooled payload buffers riding inside
// emitted RAW messages to the codec scratch pool. The delivery layer
// calls it after the transport write completes; paths that retain
// messages (the simulator, the recorder) simply never recycle and the
// pool refills lazily.
func RecycleMessages(msgs []wire.Message) {
	for _, m := range msgs {
		switch r := m.(type) {
		case *wire.Raw:
			if r.Data != nil {
				compress.PutScratch(r.Data)
				r.Data = nil
			}
		case *wire.CacheStore:
			// Only RAW-kind stores carry a pooled compression buffer;
			// bitmap stores alias the command's stipple rows, which the
			// pool must never reclaim.
			if r.Kind == wire.CacheKindRaw && r.Data != nil {
				compress.PutScratch(r.Data)
				r.Data = nil
			}
		}
	}
}

// Merge implements Command: abutting raws merge — vertically stacked
// scanlines into one taller command (the image-rasterization
// aggregation of §4), and horizontally abutting blocks of equal height
// into one wider command (glyph-run conversions under server-side
// scaling).
func (c *RawCmd) Merge(other Command) bool {
	o, ok := other.(*RawCmd)
	if !ok || o.Blend != c.Blend || o.Codec != c.Codec {
		return false
	}
	// Merge only pristine (un-evicted) commands.
	if c.live.NumRects() != 1 || o.live.NumRects() != 1 {
		return false
	}
	a, b := c.bounds, o.bounds
	if c.live.Rects()[0] != a || o.live.Rects()[0] != b {
		return false
	}
	switch {
	case a.X0 == b.X0 && a.X1 == b.X1 && a.Y1 == b.Y0:
		// Vertical stack. setPix detaches from the shared backing
		// (copy-on-write): fan-out siblings still referencing the old
		// pixels are untouched.
		merged := geom.Rect{X0: a.X0, Y0: a.Y0, X1: a.X1, Y1: b.Y1}
		pix := make([]pixel.ARGB, 0, merged.Area())
		pix = append(pix, c.Pix...)
		pix = append(pix, o.Pix...)
		c.setPix(pix)
		o.release()
		c.bounds = merged
		c.live = geom.RegionOf(merged)
		return true
	case a.Y0 == b.Y0 && a.Y1 == b.Y1 && a.X1 == b.X0:
		// Horizontal run: interleave rows.
		merged := geom.Rect{X0: a.X0, Y0: a.Y0, X1: b.X1, Y1: a.Y1}
		pix := make([]pixel.ARGB, 0, merged.Area())
		aw, bw := a.W(), b.W()
		for y := 0; y < a.H(); y++ {
			pix = append(pix, c.Pix[y*aw:(y+1)*aw]...)
			pix = append(pix, o.Pix[y*bw:(y+1)*bw]...)
		}
		c.setPix(pix)
		o.release()
		c.bounds = merged
		c.live = geom.RegionOf(merged)
		return true
	default:
		return false
	}
}

// SplitTop removes and returns a new RawCmd covering at most budget
// bytes of the live region (whole scanline-bands of the first live
// rect), leaving the remainder in c. It returns nil if even a single
// band does not fit. This is the command breaking that keeps the
// server's flush non-blocking (§5).
func (c *RawCmd) SplitTop(budget int) *RawCmd {
	if c.live.Empty() {
		return nil
	}
	r := c.live.Rects()[0]
	perRow := r.W() * 4
	overhead := wire.HeaderSize + 14
	rows := (budget - overhead) / perRow
	if rows <= 0 {
		return nil
	}
	if rows >= r.H() {
		rows = r.H()
	}
	band := geom.Rect{X0: r.X0, Y0: r.Y0, X1: r.X1, Y1: r.Y0 + rows}
	out := NewRaw(band, c.subPixels(band), band.W(), c.Blend, c.Codec)
	c.live.SubtractRect(band)
	return out
}
