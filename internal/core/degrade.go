package core

import (
	"fmt"
	"sort"

	"thinc/internal/compress"
	"thinc/internal/driver"
	"thinc/internal/fb"
	"thinc/internal/geom"
	"thinc/internal/overload"
	"thinc/internal/resample"
)

// Overload protection in the translation layer: per-client degradation
// of command payloads (the ladder's content rungs) and hard byte
// budgets on the command queues with deterministic eviction-to-RAW.
// The *decision* of which rung a client rides lives in
// internal/overload; this file applies it to commands.

// SetDegrade sets the client's active degradation rung (see the
// overload package's ladder). Rung changes only affect commands
// translated afterwards; the transport layer is responsible for the
// repair refresh when a client descends out of the lossy rungs.
func (c *Client) SetDegrade(rung int) {
	if rung < overload.RungLossless {
		rung = overload.RungLossless
	}
	if rung >= overload.NumRungs {
		rung = overload.NumRungs - 1
	}
	c.degrade = rung
}

// Degrade returns the client's active degradation rung.
func (c *Client) Degrade() int { return c.degrade }

// degradeTransform rewrites a translated command for the client's
// rung. Commands are never mutated in place — broadcast hands the
// first client the shared original — so any rewrite clones first
// (RAW pixel slabs are immutable and shared, keeping clones cheap).
func (c *Client) degradeTransform(cmd Command) Command {
	if c.degrade < overload.RungCompress {
		return cmd
	}
	switch v := cmd.(type) {
	case *RawCmd:
		// Rung 1: the heaviest lossless codec. Rung 2+: half-resolution
		// downscale baked into the payload codec (§6's resampler).
		codec := compress.CodecPNG
		if c.degrade >= overload.RungDownscale {
			codec = compress.CodecDown2
		}
		if v.Codec == codec {
			return cmd
		}
		cp := v.Clone().(*RawCmd)
		cp.Codec = codec
		return cp
	case *TileCmd:
		// Rung 2+: ship the pattern tile at half resolution. The fill
		// geometry is untouched; the client tiles the smaller pattern,
		// trading fidelity for a quarter of the payload.
		if c.degrade < overload.RungDownscale {
			return cmd
		}
		tw, th := (v.Tile.W+1)/2, (v.Tile.H+1)/2
		if tw >= v.Tile.W && th >= v.Tile.H {
			return cmd
		}
		pix := resample.Fant(v.Tile.Pix, v.Tile.W, v.Tile.W, v.Tile.H, tw, th)
		cp := v.Clone().(*TileCmd)
		cp.Tile = fb.NewTile(tw, th, pix)
		return cp
	}
	return cmd
}

// RefreshClient queues a full-screen repaint from the rendered screen
// without discarding the client's backlog — the repair step when a
// client descends out of the lossy rungs (or after budget evictions
// were visible). Adding it through the normal path lets overwrite
// eviction clip everything the repaint supersedes.
func (s *Server) RefreshClient(c *Client) {
	if s.mem == nil {
		return
	}
	full := geom.XYWH(0, 0, s.w, s.h)
	pix := s.mem.ReadPixels(driver.Screen, full)
	c.add(NewRaw(full, pix, full.W(), false, s.opts.RawCodec))
}

// enforceBudget applies the hard per-client byte cap: when the
// buffered backlog exceeds the budget, the largest evictable commands
// are discarded and the screen regions they would have painted are
// replaced with one RAW snapshot of the *current* rendered content —
// deterministic eviction-to-RAW. The replacement rides the normal add
// path, so it clips whatever it supersedes and lands behind the
// survivors it overlaps (the screen already holds their final result).
func (c *Client) enforceBudget() {
	max := c.budget
	if max <= 0 || c.inBudget || c.srv.mem == nil {
		return
	}
	if c.Buf.QueuedBytes() <= max {
		return
	}
	c.inBudget = true
	defer func() { c.inBudget = false }()

	region := c.Buf.evictForBudget(max / 2)
	if region.Empty() {
		return
	}
	c.BudgetSweeps++
	c.srv.met.budgetSweeps.Inc()
	if tr := c.srv.met.Trace; tr.Enabled() {
		tr.Event("sched.budget_sweep",
			fmt.Sprintf("budget=%d rects=%d", max, len(region.Rects())))
	}
	for _, r := range region.Rects() {
		sr := c.unscaleRect(r)
		if sr.Empty() {
			continue
		}
		pix := c.srv.mem.ReadPixels(driver.Screen, sr)
		c.add(NewRaw(sr, pix, sr.W(), false, c.srv.opts.RawCodec))
	}
}

// unscaleRect maps a viewport rectangle back to the smallest screen
// rectangle whose scaled image covers it (identity when the client is
// unscaled). Budget eviction records regions in buffered — viewport —
// coordinates, but replacement pixels are read from the screen.
func (c *Client) unscaleRect(r geom.Rect) geom.Rect {
	s := c.srv
	screen := geom.XYWH(0, 0, s.w, s.h)
	if !c.Scaled() {
		return r.Intersect(screen)
	}
	vw, vh := c.view.W(), c.view.H()
	out := geom.Rect{
		X0: r.X0 * s.w / vw,
		Y0: r.Y0 * s.h / vh,
		X1: (r.X1*s.w + vw - 1) / vw,
		Y1: (r.Y1*s.h + vh - 1) / vh,
	}
	return out.Intersect(screen)
}

// budgetMinEvict is the smallest entry worth budget-evicting: below
// it, the replacement RAW would cost more than the eviction saves.
const budgetMinEvict = 2048

// evictForBudget removes the largest evictable entries (ties broken by
// arrival order) until the buffered bytes drop to target, returning
// the union of their live output regions for the caller to repaint.
//
// Never evicted: real-time entries (audio must keep flowing, cursor
// feedback stays), video frames (at most one per stream, replaced in
// place anyway), control messages, slot entries, and — mirroring
// overwrite eviction's shield — anything a buffered COPY still reads,
// because repainting a copy source with *current* pixels would feed
// the copy content from the wrong point in time.
func (b *ClientBuffer) evictForBudget(target int) geom.Region {
	total := b.QueuedBytes()
	if total <= target {
		return geom.Region{}
	}
	var protected geom.Region
	for _, e := range b.entries {
		if rs := e.cmd.ReadsFrom(); !rs.Empty() {
			protected.UnionRect(rs)
		}
	}
	var cand []*entry
	for _, e := range b.entries {
		if e.realtime || e.isFrame || e.slot != "" || e.size < budgetMinEvict {
			continue
		}
		switch e.cmd.(type) {
		case *ctlCmd, *AudioCmd, *FrameCmd:
			continue
		}
		shielded := false
		for _, pr := range protected.Rects() {
			if e.cmd.Live().OverlapsRect(pr) {
				shielded = true
				break
			}
		}
		if shielded {
			continue
		}
		cand = append(cand, e)
	}
	sort.SliceStable(cand, func(i, j int) bool {
		if cand[i].size != cand[j].size {
			return cand[i].size > cand[j].size
		}
		return cand[i].seq < cand[j].seq
	})

	victims := make(map[*entry]bool)
	var region geom.Region
	for _, e := range cand {
		if total <= target {
			break
		}
		victims[e] = true
		total -= e.size
		region.Union(e.cmd.Live())
	}
	if len(victims) == 0 {
		return geom.Region{}
	}
	kept := b.entries[:0]
	for _, e := range b.entries {
		if victims[e] {
			continue
		}
		kept = append(kept, e)
	}
	b.entries = kept
	b.Stats.BudgetEvicted += len(victims)
	b.met.budgetEvicted.Add(int64(len(victims)))
	return region
}
