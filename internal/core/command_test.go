package core

import (
	"testing"

	"thinc/internal/compress"
	"thinc/internal/fb"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/wire"
)

func mkPix(r geom.Rect, seed uint8) []pixel.ARGB {
	pix := make([]pixel.ARGB, r.Area())
	for i := range pix {
		pix[i] = pixel.RGB(seed, uint8(i), uint8(i>>8))
	}
	return pix
}

func TestFillCmdClassAndClip(t *testing.T) {
	c := NewFill(geom.XYWH(0, 0, 10, 10), pixel.RGB(1, 2, 3))
	if c.Class() != Partial {
		t.Fatal("SFILL must be partial")
	}
	if c.CoverOutput(geom.XYWH(0, 0, 5, 10)) {
		t.Fatal("half-covered fill should survive")
	}
	if c.Live().Area() != 50 {
		t.Fatalf("live area %d, want 50", c.Live().Area())
	}
	if !c.CoverOutput(geom.XYWH(0, 0, 10, 10)) {
		t.Fatal("fully covered fill should be evicted")
	}
}

func TestFillCmdEmitPerLiveRect(t *testing.T) {
	c := NewFill(geom.XYWH(0, 0, 10, 10), pixel.RGB(9, 9, 9))
	c.CoverOutput(geom.XYWH(3, 3, 4, 4)) // punch a hole: 4 rects
	msgs := c.Emit(nil)
	if len(msgs) != c.Live().NumRects() {
		t.Fatalf("emitted %d messages for %d rects", len(msgs), c.Live().NumRects())
	}
	total := 0
	for _, m := range msgs {
		sf := m.(*wire.SFill)
		total += sf.Rect.Area()
		if sf.Color != pixel.RGB(9, 9, 9) {
			t.Fatal("color lost")
		}
	}
	if total != 100-16 {
		t.Fatalf("emitted area %d, want 84", total)
	}
	if c.WireSize() != len(msgs)*(wire.HeaderSize+12) {
		t.Fatalf("WireSize inconsistent")
	}
}

func TestFillCmdMerge(t *testing.T) {
	a := NewFill(geom.XYWH(0, 0, 10, 5), pixel.RGB(1, 1, 1))
	b := NewFill(geom.XYWH(0, 5, 10, 5), pixel.RGB(1, 1, 1))
	if !a.Merge(b) {
		t.Fatal("abutting same-color fills should merge")
	}
	if a.Bounds() != geom.XYWH(0, 0, 10, 10) {
		t.Fatalf("merged bounds %v", a.Bounds())
	}
	// Different color: no merge.
	c := NewFill(geom.XYWH(0, 10, 10, 5), pixel.RGB(2, 2, 2))
	if a.Merge(c) {
		t.Fatal("different colors must not merge")
	}
	// Diagonal (non-rect union): no merge.
	d := NewFill(geom.XYWH(50, 50, 5, 5), pixel.RGB(1, 1, 1))
	if a.Merge(d) {
		t.Fatal("non-rectangular union must not merge")
	}
}

func TestTileCmdTranslateKeepsPhase(t *testing.T) {
	tile := fb.NewTile(4, 4, mkPix(geom.XYWH(0, 0, 4, 4), 7))
	c := NewTile(geom.XYWH(0, 0, 8, 8), tile)
	c.Translate(5, 3)
	msgs := c.Emit(nil)
	pf := msgs[0].(*wire.PFill)
	if pf.Rect != geom.XYWH(5, 3, 8, 8) {
		t.Fatalf("rect %v", pf.Rect)
	}
	if pf.Ax != 1 || pf.Ay != 3 {
		t.Fatalf("anchor (%d,%d), want (1,3)", pf.Ax, pf.Ay)
	}
}

func TestBitmapCmdClasses(t *testing.T) {
	bm := fb.NewBitmap(8, 8)
	opaque := NewBitmap(geom.XYWH(0, 0, 8, 8), bm, pixel.RGB(1, 1, 1), pixel.RGB(2, 2, 2), false)
	if opaque.Class() != Complete {
		t.Error("opaque stipple should be Complete")
	}
	trans := NewBitmap(geom.XYWH(0, 0, 8, 8), bm, pixel.RGB(1, 1, 1), 0, true)
	if trans.Class() != Transparent {
		t.Error("transparent stipple should be Transparent")
	}
	alpha := NewBitmap(geom.XYWH(0, 0, 8, 8), bm, pixel.PackARGB(128, 1, 1, 1), pixel.RGB(0, 0, 0), false)
	if alpha.Class() != Transparent {
		t.Error("alpha stipple should be Transparent")
	}
	// Complete eviction is all-or-nothing.
	if opaque.CoverOutput(geom.XYWH(0, 0, 4, 8)) {
		t.Error("partial cover must not evict Complete command")
	}
	if !opaque.CoverOutput(geom.XYWH(-1, -1, 10, 10)) {
		t.Error("full cover must evict")
	}
}

func TestCopyCmdGeometry(t *testing.T) {
	c := NewCopy(geom.XYWH(0, 16, 100, 50), geom.Point{X: 0, Y: 0})
	if c.Class() != Complete {
		t.Error("COPY is Complete")
	}
	if c.Bounds() != geom.XYWH(0, 0, 100, 50) {
		t.Errorf("bounds %v", c.Bounds())
	}
	if c.ReadsFrom() != geom.XYWH(0, 16, 100, 50) {
		t.Errorf("reads %v", c.ReadsFrom())
	}
	c.Translate(10, 10)
	if c.Src != geom.XYWH(10, 26, 100, 50) || c.Dst != (geom.Point{X: 10, Y: 10}) {
		t.Errorf("translate wrong: %v %v", c.Src, c.Dst)
	}
	if c.WireSize() != wire.HeaderSize+12 {
		t.Errorf("wire size %d", c.WireSize())
	}
}

func TestRawCmdClipAndEmit(t *testing.T) {
	r := geom.XYWH(10, 10, 8, 4)
	c := NewRaw(r, mkPix(r, 1), 8, false, compress.CodecNone)
	if c.Class() != Partial {
		t.Fatal("opaque RAW is partial")
	}
	c.CoverOutput(geom.XYWH(10, 10, 4, 4)) // left half covered
	msgs := c.Emit(nil)
	if len(msgs) != 1 {
		t.Fatalf("%d messages", len(msgs))
	}
	raw := msgs[0].(*wire.Raw)
	if raw.Rect != geom.XYWH(14, 10, 4, 4) {
		t.Fatalf("clipped rect %v", raw.Rect)
	}
	pix, err := raw.Pixels()
	if err != nil {
		t.Fatal(err)
	}
	// Pixel (14,10) corresponds to original offset x=4.
	want := mkPix(r, 1)[4]
	if pix[0] != want {
		t.Fatalf("pixel content shifted: %08x != %08x", pix[0], want)
	}
}

func TestRawCmdBlendIsTransparent(t *testing.T) {
	r := geom.XYWH(0, 0, 4, 4)
	c := NewRaw(r, mkPix(r, 2), 4, true, compress.CodecNone)
	if c.Class() != Transparent {
		t.Fatal("blend RAW must be transparent")
	}
	if c.CoverOutput(geom.XYWH(0, 0, 2, 2)) {
		t.Fatal("partial cover of transparent must not evict")
	}
	if !c.CoverOutput(r) {
		t.Fatal("full cover of transparent must evict")
	}
}

func TestRawCmdMergeScanlines(t *testing.T) {
	r1 := geom.XYWH(5, 0, 16, 1)
	r2 := geom.XYWH(5, 1, 16, 1)
	r3 := geom.XYWH(6, 2, 16, 1) // misaligned
	a := NewRaw(r1, mkPix(r1, 3), 16, false, compress.CodecNone)
	b := NewRaw(r2, mkPix(r2, 4), 16, false, compress.CodecNone)
	if !a.Merge(b) {
		t.Fatal("stacked scanlines should merge")
	}
	if a.Bounds() != geom.XYWH(5, 0, 16, 2) {
		t.Fatalf("merged bounds %v", a.Bounds())
	}
	cmd := NewRaw(r3, mkPix(r3, 5), 16, false, compress.CodecNone)
	if a.Merge(cmd) {
		t.Fatal("misaligned scanline must not merge")
	}
	// Merged pixels preserved row by row.
	msgs := a.Emit(nil)
	pix, _ := msgs[0].(*wire.Raw).Pixels()
	if pix[0] != mkPix(r1, 3)[0] || pix[16] != mkPix(r2, 4)[0] {
		t.Fatal("merged pixel rows wrong")
	}
}

func TestRawCmdSplitTop(t *testing.T) {
	r := geom.XYWH(0, 0, 100, 50)
	c := NewRaw(r, mkPix(r, 6), 100, false, compress.CodecNone)
	total := c.WireSize()
	// Budget for ~10 rows.
	budget := wire.HeaderSize + 14 + 100*4*10
	part := c.SplitTop(budget)
	if part == nil {
		t.Fatal("split failed")
	}
	if part.Bounds() != geom.XYWH(0, 0, 100, 10) {
		t.Fatalf("split band %v", part.Bounds())
	}
	if c.Live().Area() != 100*40 {
		t.Fatalf("remainder area %d", c.Live().Area())
	}
	// Splitting costs exactly one extra message frame.
	if part.WireSize()+c.WireSize() != total+wire.HeaderSize+14 {
		t.Fatalf("split size wrong: %d + %d vs %d", part.WireSize(), c.WireSize(), total)
	}
	// Too-small budget: no split.
	if c.SplitTop(10) != nil {
		t.Fatal("tiny budget should not split")
	}
	// Full-budget split takes everything remaining in the first rect.
	part2 := c.SplitTop(1 << 30)
	if part2 == nil || part2.Bounds().H() != 40 {
		t.Fatal("full split wrong")
	}
	if !c.Live().Empty() {
		t.Fatal("nothing should remain")
	}
}

func TestCloneIndependence(t *testing.T) {
	orig := NewFill(geom.XYWH(0, 0, 10, 10), pixel.RGB(5, 5, 5))
	cl := orig.Clone()
	cl.CoverOutput(geom.XYWH(0, 0, 10, 5))
	if orig.Live().Area() != 100 {
		t.Error("clone clip leaked into original")
	}
	cl.Translate(7, 7)
	if orig.Bounds() != geom.XYWH(0, 0, 10, 10) {
		t.Error("clone translate leaked into original")
	}
}

func TestWireSizeMatchesEmittedBytes(t *testing.T) {
	r := geom.XYWH(2, 3, 12, 7)
	cmds := []Command{
		NewFill(r, pixel.RGB(1, 2, 3)),
		NewCopy(r, geom.Point{X: 50, Y: 60}),
		NewRaw(r, mkPix(r, 9), 12, false, compress.CodecNone),
		NewBitmap(r, fb.NewBitmap(12, 7), pixel.RGB(1, 1, 1), pixel.RGB(2, 2, 2), false),
		NewTile(r, fb.NewTile(3, 3, mkPix(geom.XYWH(0, 0, 3, 3), 1))),
		NewAudio(55, []byte{1, 2, 3}),
	}
	for _, c := range cmds {
		var got int
		for _, m := range c.Emit(nil) {
			got += wire.WireSize(m)
		}
		if got != c.WireSize() {
			t.Errorf("%T: WireSize %d != emitted %d", c, c.WireSize(), got)
		}
	}
}

// TestCommandContract checks the Command interface invariants every
// concrete command must uphold: clone independence, translation moving
// both bounds and live region together, and WireSize matching emission.
func TestCommandContract(t *testing.T) {
	r := geom.XYWH(4, 6, 12, 8)
	frame := pixel.NewYV12(8, 6)
	cmds := []Command{
		NewFill(r, pixel.RGB(9, 8, 7)),
		NewTile(r, fb.NewTile(3, 3, mkPix(geom.XYWH(0, 0, 3, 3), 2))),
		NewRaw(r, mkPix(r, 3), r.W(), false, compress.CodecNone),
		NewRaw(r, mkPix(r, 4), r.W(), true, compress.CodecNone),
		NewBitmap(r, fb.NewBitmap(r.W(), r.H()), pixel.RGB(1, 1, 1), pixel.RGB(2, 2, 2), false),
		NewCopy(geom.XYWH(0, 0, 12, 8), geom.Point{X: 4, Y: 6}),
		NewFrame(3, 1, 500, frame, r),
		NewAudio(123, []byte{1, 2, 3}),
		newCtlCmd(&wire.VideoEnd{Stream: 3}, geom.Rect{}),
	}
	for _, c := range cmds {
		name := func() string { return c.Class().String() }

		// WireSize matches what Emit produces.
		var emitted int
		for _, m := range c.Emit(nil) {
			emitted += wire.WireSize(m)
		}
		if emitted != c.WireSize() {
			t.Errorf("%T (%s): WireSize %d != emitted %d", c, name(), c.WireSize(), emitted)
		}

		// Clone is independent.
		cl := c.Clone()
		origBounds := c.Bounds()
		cl.Translate(100, 100)
		if c.Bounds() != origBounds {
			t.Errorf("%T: clone translate leaked into original", c)
		}
		if !origBounds.Empty() && cl.Bounds() == origBounds {
			t.Errorf("%T: translate did not move clone bounds", c)
		}

		// Live region stays inside bounds for spatial commands.
		if !c.Bounds().Empty() && !c.Live().Empty() {
			bounds := geom.RegionOf(c.Bounds())
			if !bounds.ContainsRect(c.Live().Bounds()) {
				t.Errorf("%T: live %v escapes bounds %v", c, c.Live().Bounds(), c.Bounds())
			}
		}

		// Class is stable and stringable.
		if c.Class().String() == "unknown" {
			t.Errorf("%T: unnamed class", c)
		}
	}
}

func TestBitmapCmdMergeTextRun(t *testing.T) {
	mk := func(x int, ch byte) *BitmapCmd {
		bm := fb.NewBitmap(6, 10)
		bm.SetBit(int(ch)%6, int(ch)%10, true)
		return NewBitmap(geom.XYWH(x, 20, 6, 10), bm,
			pixel.RGB(0, 0, 0), 0, true)
	}
	a := mk(10, 'a')
	b := mk(16, 'b')
	if !a.Merge(b) {
		t.Fatal("abutting glyphs should merge into a run")
	}
	if a.Rect != geom.XYWH(10, 20, 12, 10) {
		t.Fatalf("run rect %v", a.Rect)
	}
	// Bits preserved at their new offsets.
	if !a.Bits.BitAt('a'%6, 'a'%10) {
		t.Error("left glyph ink lost")
	}
	if !a.Bits.BitAt(6+'b'%6, 'b'%10) {
		t.Error("right glyph ink lost")
	}
	// Mismatched color or geometry: no merge.
	c := mk(22, 'c')
	c.Fg = pixel.RGB(255, 0, 0)
	if a.Merge(c) {
		t.Fatal("different colors must not merge")
	}
	d := mk(40, 'd') // gap
	if a.Merge(d) {
		t.Fatal("non-abutting glyphs must not merge")
	}
}
