package core_test

import (
	"testing"

	"thinc/internal/client"
	"thinc/internal/core"
	"thinc/internal/fb"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/resample"
	"thinc/internal/wire"
	"thinc/internal/xserver"
)

// scaledHarness attaches a small-viewport client (the PDA case, §6).
type scaledHarness struct {
	srv  *core.Server
	dpy  *xserver.Display
	cl   *core.Client
	dst  *client.Client
	vw   int
	vh   int
	full *client.Client // a full-size client for byte comparisons
	flc  *core.Client
}

func newScaledHarness(t *testing.T, w, h, vw, vh int) *scaledHarness {
	t.Helper()
	srv := core.NewServer(core.Options{})
	dpy := xserver.NewDisplay(w, h, srv)
	cl := srv.AttachClient(vw, vh)
	flc := srv.AttachClient(w, h)
	h2 := &scaledHarness{
		srv: srv, dpy: dpy, cl: cl, dst: client.New(vw, vh),
		vw: vw, vh: vh, full: client.New(w, h), flc: flc,
	}
	h2.sync(t)
	return h2
}

func (h *scaledHarness) sync(t *testing.T) {
	t.Helper()
	if err := h.dst.ApplyAll(h.cl.FlushAll()); err != nil {
		t.Fatalf("scaled client apply: %v", err)
	}
	if err := h.full.ApplyAll(h.flc.FlushAll()); err != nil {
		t.Fatalf("full client apply: %v", err)
	}
}

// verifyApprox compares the scaled client against a Fant-downscaled
// reference of the server screen, tolerating small per-channel error
// from independent resampling paths.
func (h *scaledHarness) verifyApprox(t *testing.T, tol int, context string) {
	t.Helper()
	ref := resample.Fant(h.dpy.Screen().Pix(), h.dpy.Screen().W(),
		h.dpy.Screen().W(), h.dpy.Screen().H(), h.vw, h.vh)
	got := h.dst.FB().Pix()
	bad := 0
	for i := range ref {
		for _, d := range []int{
			int(ref[i].R()) - int(got[i].R()),
			int(ref[i].G()) - int(got[i].G()),
			int(ref[i].B()) - int(got[i].B()),
		} {
			if d < -tol || d > tol {
				bad++
				break
			}
		}
	}
	if bad > len(ref)/20 { // ≤5% of pixels may exceed tolerance (edges)
		t.Fatalf("%s: %d/%d pixels beyond tolerance %d", context, bad, len(ref), tol)
	}
}

func TestScaledClientSolidFill(t *testing.T) {
	h := newScaledHarness(t, 128, 96, 32, 24)
	w := h.dpy.CreateWindow(geom.XYWH(0, 0, 128, 96))
	h.dpy.FillRect(w, &xserver.GC{Fg: pixel.RGB(200, 40, 10)}, geom.XYWH(0, 0, 128, 96))
	h.sync(t)
	// A full-screen solid fill must be pixel exact at any scale.
	if h.dst.FB().At(16, 12) != pixel.RGB(200, 40, 10) {
		t.Fatalf("scaled fill color %v", h.dst.FB().At(16, 12))
	}
	h.verifyApprox(t, 2, "solid fill")
}

func TestScaledClientUsesLessBandwidth(t *testing.T) {
	h := newScaledHarness(t, 128, 96, 32, 24)
	w := h.dpy.CreateWindow(geom.XYWH(0, 0, 128, 96))
	// Image-heavy content: RAW bytes must shrink roughly by the area
	// ratio (16x here).
	img := make([]pixel.ARGB, 128*96)
	for i := range img {
		img[i] = pixel.RGB(uint8(i), uint8(i*3), uint8(i*7))
	}
	h.dpy.PutImage(w, geom.XYWH(0, 0, 128, 96), img, 128)
	h.sync(t)
	scaled := h.dst.BytesTotal()
	full := h.full.BytesTotal()
	if scaled*4 > full {
		t.Fatalf("server resize saved too little: scaled=%d full=%d", scaled, full)
	}
	h.verifyApprox(t, 48, "raw image") // resample paths differ; loose bound
}

func TestScaledClientBitmapBecomesRaw(t *testing.T) {
	h := newScaledHarness(t, 128, 96, 64, 48)
	w := h.dpy.CreateWindow(geom.XYWH(0, 0, 128, 96))
	h.dpy.FillRect(w, &xserver.GC{Fg: pixel.RGB(255, 255, 255)}, w.Bounds())
	h.dpy.DrawText(w, &xserver.GC{Fg: pixel.RGB(0, 0, 0)}, 10, 10, "antialiased")
	h.sync(t)
	st := h.dst.Stats()
	if st.Messages[wire.TBitmap] != 0 {
		t.Errorf("scaled client received %d BITMAPs; they must be converted to RAW (§6)",
			st.Messages[wire.TBitmap])
	}
	if st.Messages[wire.TRaw] == 0 {
		t.Error("expected RAW conversions for text")
	}
	// Downscaled text is anti-aliased: intermediate gray values exist.
	grays := 0
	for _, p := range h.dst.FB().Pix() {
		if p.R() > 30 && p.R() < 225 {
			grays++
		}
	}
	if grays == 0 {
		t.Error("no intermediate values: resize is not anti-aliased")
	}
}

func TestScaledClientTileResized(t *testing.T) {
	h := newScaledHarness(t, 128, 96, 64, 48)
	w := h.dpy.CreateWindow(geom.XYWH(0, 0, 128, 96))
	tile := fb.NewTile(8, 8, mkTilePix(8, 8))
	h.dpy.TileRect(w, tile, geom.XYWH(0, 0, 128, 96))
	h.sync(t)
	st := h.dst.Stats()
	if st.Messages[wire.TPFill] == 0 {
		t.Fatal("tile fill should stay PFILL under scaling")
	}
	// The tile itself must have been downsized (4x4 at half scale).
	if st.Bytes[wire.TPFill] >= h.full.Stats().Bytes[wire.TPFill] {
		t.Error("scaled PFILL should cost less than full size")
	}
	h.verifyApprox(t, 64, "tile") // pattern edges are inherently lossy
}

func TestScaledClientVideoDownsampled(t *testing.T) {
	h := newScaledHarness(t, 128, 96, 32, 24)
	vp := h.dpy.CreateVideoPort(64, 48, geom.XYWH(0, 0, 128, 96))
	pix := make([]pixel.ARGB, 64*48)
	for i := range pix {
		pix[i] = pixel.RGB(80, 120, 160)
	}
	for i := 0; i < 3; i++ {
		vp.PutFrame(pixel.EncodeYV12(pix, 64, 64, 48), uint64(i))
		h.sync(t)
	}
	scaledVideo := h.dst.Stats().Bytes[wire.TVideoFrame]
	fullVideo := h.full.Stats().Bytes[wire.TVideoFrame]
	if scaledVideo*2 > fullVideo {
		t.Fatalf("video not downsampled: scaled=%d full=%d", scaledVideo, fullVideo)
	}
	got := h.dst.FB().At(16, 12)
	if d := int(got.G()) - 120; d < -12 || d > 12 {
		t.Errorf("scaled video color drifted: %v", got)
	}
}

func TestScaledClientExactCopyStaysCopy(t *testing.T) {
	// 2:1 scale with aligned geometry: COPY survives as COPY.
	h := newScaledHarness(t, 128, 96, 64, 48)
	w := h.dpy.CreateWindow(geom.XYWH(0, 0, 128, 96))
	h.dpy.FillRect(w, &xserver.GC{Fg: pixel.RGB(9, 9, 9)}, geom.XYWH(0, 0, 32, 32))
	h.sync(t)
	h.dpy.CopyArea(w, w, geom.XYWH(0, 0, 32, 32), geom.Point{X: 64, Y: 32})
	h.sync(t)
	if h.dst.Stats().Messages[wire.TCopy] == 0 {
		t.Error("aligned copy should remain a COPY for the scaled client")
	}
	if h.dst.FB().At(40, 20) != pixel.RGB(9, 9, 9) {
		t.Error("scaled copy content wrong")
	}
}

func TestClientResizeMidSession(t *testing.T) {
	h := newScaledHarness(t, 128, 96, 32, 24)
	w := h.dpy.CreateWindow(geom.XYWH(0, 0, 128, 96))
	h.dpy.FillRect(w, &xserver.GC{Fg: pixel.RGB(1, 200, 1)}, w.Bounds())
	h.sync(t)

	// Zoom in: viewport grows; the server refreshes at the new size.
	h.cl.Resize(64, 48)
	h.dst = client.New(64, 48)
	h.vw, h.vh = 64, 48
	h.sync(t)
	if h.dst.FB().At(32, 24) != pixel.RGB(1, 200, 1) {
		t.Fatal("refresh after resize missing")
	}
	if !h.cl.Scaled() {
		t.Error("64x48 view of 128x96 session should report scaled")
	}
	h.cl.Resize(128, 96)
	if h.cl.Scaled() {
		t.Error("full-size view should not report scaled")
	}
}

func TestAttachClientClampsBadViewport(t *testing.T) {
	srv := core.NewServer(core.Options{})
	xserver.NewDisplay(64, 48, srv)
	c := srv.AttachClient(-5, 10000)
	if c.View() != geom.XYWH(0, 0, 64, 48) {
		t.Errorf("bad viewport not clamped: %v", c.View())
	}
}
