package core

import (
	"thinc/internal/compress"
	"thinc/internal/driver"
	"thinc/internal/fb"
	"thinc/internal/geom"
	"thinc/internal/payloadcache"
	"thinc/internal/wire"
)

// Content-addressed payload cache, server side (wire v6). Repeated
// display payloads — glyph runs, icons, scrolled-back blocks — dominate
// steady-state bandwidth, so each client's command path carries a model
// of the client's LRU payload store. Cache-eligible RAW/BITMAP commands
// are wrapped in a cacheCmd at add time; at emit time a payload the
// model says the client holds becomes a ~20-byte CACHE_PAINT reference,
// and a first appearance becomes a CACHE_STORE that populates the
// client's store as a side effect of painting.
//
// The model mutates only at emit time and the client's store only at
// apply time. Emits happen in flush order — the order the bytes hit the
// stream — and the client applies in stream order, so both sides see
// the identical sequence of (insert, touch) operations and the shared
// deterministic LRU keeps their evictions synchronized with zero
// eviction traffic. Any divergence (corruption, a connection dropped
// mid-store) surfaces as a client CACHE_MISS, answered by CacheMissRepair:
// forget the digest, repaint the region from the true framebuffer.

const (
	// cacheMinPayload is the smallest payload worth indexing: below it
	// the CACHE_PAINT saving cannot amortize the model churn.
	cacheMinPayload = 64
	// cacheMaxCapFrac bounds one entry to capacity/frac, so the store
	// always holds a working set, never one giant payload — and keeps
	// cacheCmd entries small enough that the scheduler never needs to
	// split them (only bare RawCmds split).
	cacheMaxCapFrac = 4
	// cachePaintWire is the framed cost of a CACHE_PAINT reference.
	cachePaintWire = wire.HeaderSize + 16
	// cacheStoreOverhead is CACHE_STORE's framed cost over the plain
	// RAW/BITMAP delivery of the same payload (digest + kind + len).
	cacheStoreOverhead = 9
	// cacheSyncTile is the tile edge of the warm-reattach resync grid:
	// big enough (16KB of pixels) that per-tile protocol overhead is
	// noise, small enough that a tile stays admissible under every
	// realistic cache grant and a single changed icon dirties one tile,
	// not the screen.
	cacheSyncTile = 64
)

// CacheStats counts per-client cache protocol outcomes.
type CacheStats struct {
	Hits   int // payloads delivered as CACHE_PAINT references
	Stores int // first appearances delivered as CACHE_STORE
	Misses int // client CACHE_MISS desync reports handled
	// SavedBytes is the wire cost avoided by hits: the full delivery
	// size minus the paint reference, summed.
	SavedBytes int64
}

// SetCacheSize sets the byte capacity of the server's model of this
// client's payload store; 0 disables caching. A call with the capacity
// already in force keeps the warm model — the reattach path, where the
// client kept its store across the reconnect and the retained model
// must keep matching it. Any other capacity starts a cold model (the
// two sides could not have evicted identically under different caps).
func (c *Client) SetCacheSize(bytes int) {
	if bytes <= 0 {
		c.cache = nil
		return
	}
	if c.cache != nil && c.cache.Cap() == bytes {
		return
	}
	c.cache = payloadcache.New(bytes, nil)
}

// ResetCacheSize is SetCacheSize without the same-capacity keep-warm
// path: the model always starts cold. The cold-reattach path uses it —
// when the epoch or capacity check failed, whatever the client holds no
// longer corresponds to the retained model, and keeping the model warm
// would desynchronize the eviction streams silently.
func (c *Client) ResetCacheSize(bytes int) {
	c.cache = nil
	c.SetCacheSize(bytes)
}

// CacheEpoch returns the generation stamp of the client's cache model
// (0 = disabled or unstamped; server stamps start at 1).
func (c *Client) CacheEpoch() uint64 {
	if c.cache == nil {
		return 0
	}
	return c.cache.Epoch()
}

// SetCacheEpoch stamps the cache model with a generation counter; the
// same value rides the SessionTicket to the client, and a reattach may
// resume warm only by echoing it.
func (c *Client) SetCacheEpoch(e uint64) {
	if c.cache != nil {
		c.cache.SetEpoch(e)
	}
}

// CacheSize returns the active cache capacity (0 = disabled).
func (c *Client) CacheSize() int {
	if c.cache == nil {
		return 0
	}
	return c.cache.Cap()
}

// CacheEntries returns how many payloads the model currently holds.
func (c *Client) CacheEntries() int {
	if c.cache == nil {
		return 0
	}
	return c.cache.Len()
}

// CacheHolds reports whether the model believes the client holds digest.
func (c *Client) CacheHolds(digest uint64) bool {
	return c.cache != nil && c.cache.Has(digest)
}

// CacheMissRepair handles a client CACHE_MISS report: the client failed
// to verify a CACHE_STORE or was asked to paint a digest it does not
// hold. The digest leaves the model (whatever the client has, it is not
// this) and the reported region is repainted from the true framebuffer
// through the normal add path — the same repair shape as the integrity
// audit, so both sides reconverge without tearing the session down.
func (s *Server) CacheMissRepair(c *Client, digest uint64, r geom.Rect) {
	c.CacheStats.Misses++
	s.met.cacheMisses.Inc()
	if c.cache != nil {
		c.cache.Forget(digest)
	}
	if s.mem == nil {
		return
	}
	vis := r.Intersect(geom.XYWH(0, 0, s.w, s.h))
	if vis.Empty() {
		return
	}
	s.stampDamage()
	pix := s.mem.ReadPixels(driver.Screen, vis)
	c.add(NewRaw(vis, pix, vis.W(), false, s.opts.RawCodec))
}

// ReattachClientWarm restores a detached client whose payload store
// survived the reconnect (the epoch and capacity checks passed):
// instead of one full-screen RAW, the resync is queued as a grid of
// cache-eligible tile RAWs through the normal add path. Every tile
// whose content the retained model already indexes ships as a ~21-byte
// CACHE_PAINT; only changed tiles ship payload. The first warm resync
// of a given screen state stores its tiles (costing cacheStoreOverhead
// per tile over a cold resync) and every later warm resync of unchanged
// content is nearly free — the RDP-persistent-cache economics. Falls
// back to the plain cold resync when caching is off or the viewport is
// scaled (the scaled path never caches).
func (s *Server) ReattachClientWarm(c *Client, viewW, viewH int) {
	if viewW <= 0 || viewH <= 0 || viewW > s.w || viewH > s.h {
		viewW, viewH = s.w, s.h
	}
	c.view = geom.XYWH(0, 0, viewW, viewH)
	c.streamDst = make(map[uint32]geom.Rect)
	c.Buf.Clear()
	if s.mem == nil {
		s.clients[c] = struct{}{}
		return
	}
	if c.cache == nil || c.Scaled() {
		s.syncClient(c)
		s.clients[c] = struct{}{}
		return
	}
	s.stampDamage()
	// Checkerboard order: consecutive adds are never edge-adjacent, so
	// the scheduler's merge aggregation cannot coalesce the grid and
	// re-key the stable per-tile digests (only the most recent buffer
	// entry is a merge candidate).
	for pass := 0; pass < 2; pass++ {
		for ty, y := 0, 0; y < s.h; ty, y = ty+1, y+cacheSyncTile {
			for tx, x := 0, 0; x < s.w; tx, x = tx+1, x+cacheSyncTile {
				if (tx+ty)%2 != pass {
					continue
				}
				r := geom.XYWH(x, y, min(cacheSyncTile, s.w-x), min(cacheSyncTile, s.h-y))
				pix := s.mem.ReadPixels(driver.Screen, r)
				c.add(NewRaw(r, pix, r.W(), false, s.opts.RawCodec))
			}
		}
	}
	s.syncStreamsAndCursor(c)
	s.clients[c] = struct{}{}
}

// cacheAdmissible reports whether a payload of size bytes may enter the
// cache protocol for this client.
func (c *Client) cacheAdmissible(size int) bool {
	return c.cache != nil && size >= cacheMinPayload && size <= c.cache.Cap()/cacheMaxCapFrac
}

// cacheTransform wraps a cache-eligible command in a cacheCmd on its
// way into the buffer. It runs after degradeTransform, so the wrapped
// codec is the rung's codec; a CodecDown2 rewrite carries half-resolution
// content, which must never be stored under the lossless digest —
// storeOK=false makes it paint-only, so a lossy-rung repeat still hits
// (delivering the stored lossless pixels for 21 bytes: at the lossy
// rungs a hit is not merely near-free, it un-degrades the content).
func (c *Client) cacheTransform(cmd Command) Command {
	if c.cache == nil {
		return cmd
	}
	switch v := cmd.(type) {
	case *RawCmd:
		size := len(v.Pix) * 4
		if !c.cacheAdmissible(size) {
			return cmd
		}
		return &cacheCmd{Command: v, cl: c, digest: rawCmdDigest(v), size: size,
			storeOK: v.Codec != compress.CodecDown2}
	case *BitmapCmd:
		size := len(v.Bits.Bits)
		if !c.cacheAdmissible(size) {
			return cmd
		}
		return &cacheCmd{Command: v, cl: c, digest: bitmapCmdDigest(v), size: size,
			storeOK: true}
	}
	return cmd
}

// rawCmdDigest returns the cache identity of a RAW command's payload,
// memoized on the shared backing: the fan-out clones N commands per
// translated update, but the pixels are hashed once. The memo fields
// are written under the host lock like every other command mutation.
func rawCmdDigest(v *RawCmd) uint64 {
	if v.refs != nil && v.refs.digOK {
		return v.refs.dig
	}
	d := fb.CacheDigestRaw(v.bounds.W(), v.bounds.H(), v.Blend, v.Pix)
	if v.refs != nil {
		v.refs.dig, v.refs.digOK = d, true
	}
	return d
}

// bitmapCmdDigest returns the cache identity of a BITMAP command's
// payload. Stipples are small; no memo needed.
func bitmapCmdDigest(v *BitmapCmd) uint64 {
	return fb.CacheDigestBitmap(v.Rect.W(), v.Rect.H(), v.Fg, v.Bg, v.Transparent,
		v.Bits.W, v.Bits.H, v.Bits.Bits)
}

// cacheCmd decorates a buffered RAW/BITMAP command with its cache
// identity. Queue semantics — class, live region, overwrite eviction,
// merging, budget eviction — all delegate to the wrapped command; only
// sizing and emission consult the client's cache model. The decision is
// deferred to emit time on purpose: the model may only mutate in the
// order bytes enter the stream, and between add and flush the entry can
// still be clipped, merged, or evicted.
type cacheCmd struct {
	Command
	cl      *Client
	digest  uint64
	size    int // cache-entry payload bytes (identical on both sides)
	storeOK bool
}

// Clone implements Command.
func (cc *cacheCmd) Clone() Command {
	cp := *cc
	cp.Command = cc.Command.Clone()
	return &cp
}

// Merge implements Command: the wrapped commands merge as usual (a
// wrapped or bare newcomer both unwrap), and a successful merge re-keys
// the absorber — the merged payload is new content with a new identity,
// so aggregation (scanline raws, glyph runs) composes with caching: the
// cache sees the aggregated payload, which is exactly the repeating
// unit (a full icon, a full text line).
func (cc *cacheCmd) Merge(other Command) bool {
	inner := other
	if oc, ok := other.(*cacheCmd); ok {
		inner = oc.Command
	}
	if !cc.Command.Merge(inner) {
		return false
	}
	switch v := cc.Command.(type) {
	case *RawCmd:
		cc.size = len(v.Pix) * 4
		cc.digest = rawCmdDigest(v)
		cc.storeOK = v.Codec != compress.CodecDown2
	case *BitmapCmd:
		cc.size = len(v.Bits.Bits)
		cc.digest = bitmapCmdDigest(v)
	}
	return true
}

// cacheable reports whether this entry may use the cache protocol right
// now: the digest describes the full payload, so a partially overwritten
// command (live region no longer the whole bounds) must fall back to
// plain per-rect delivery, and a merged payload may have outgrown
// admissibility.
func (cc *cacheCmd) cacheable() bool {
	if cc.cl.cache == nil || !cc.cl.cacheAdmissible(cc.size) {
		return false
	}
	live := cc.Command.Live()
	return live.NumRects() == 1 && live.Rects()[0] == cc.Command.Bounds()
}

// WireSize implements Command: a payload the model holds schedules at
// the paint-reference cost — SRSF sees the real wire economy, so a hit
// sorts into the small-command queues and ships ahead of bulk even
// though its content is kilobytes.
func (cc *cacheCmd) WireSize() int {
	if !cc.cacheable() {
		return cc.Command.WireSize()
	}
	if cc.cl.cache.Has(cc.digest) {
		return cachePaintWire
	}
	n := cc.Command.WireSize()
	if cc.storeOK {
		n += cacheStoreOverhead
	}
	return n
}

// Emit implements Command. This is the only place the server-side model
// mutates: emits happen in flush order, which is stream order, which is
// the client's apply order — the determinism the eviction-free protocol
// rests on.
func (cc *cacheCmd) Emit(dst []wire.Message) []wire.Message {
	if !cc.cacheable() {
		return cc.Command.Emit(dst)
	}
	cl := cc.cl
	if cl.cache.Touch(cc.digest) {
		cl.CacheStats.Hits++
		cl.srv.met.cacheHits.Inc()
		if saved := int64(cc.Command.WireSize() - cachePaintWire); saved > 0 {
			cl.CacheStats.SavedBytes += saved
			cl.srv.met.cacheSavedBytes.Add(saved)
		}
		return append(dst, &wire.CachePaint{Digest: cc.digest, Rect: cc.Command.Bounds()})
	}
	if !cc.storeOK {
		return cc.Command.Emit(dst)
	}
	cl.cache.Insert(cc.digest, cc.size)
	cl.CacheStats.Stores++
	cl.srv.met.cacheStores.Inc()
	switch v := cc.Command.(type) {
	case *RawCmd:
		r := v.Bounds()
		codec := v.Codec
		data, err := compress.EncodeAppend(codec, compress.GetScratch(), v.Pix, r.W(), r.H())
		if err != nil {
			data, _ = compress.EncodeAppend(compress.CodecNone, data[:0], v.Pix, r.W(), r.H())
			codec = compress.CodecNone
		}
		return append(dst, &wire.CacheStore{Digest: cc.digest, Kind: wire.CacheKindRaw,
			Rect: r, Codec: codec, Blend: v.Blend, Data: data})
	case *BitmapCmd:
		return append(dst, &wire.CacheStore{Digest: cc.digest, Kind: wire.CacheKindBitmap,
			Rect: v.Rect, Fg: v.Fg, Bg: v.Bg, Transparent: v.Transparent,
			BitW: v.Bits.W, BitH: v.Bits.H, Bits: v.Bits.Bits})
	}
	return cc.Command.Emit(dst)
}
