package core

import (
	"fmt"
	"testing"

	"thinc/internal/driver"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/telemetry"
)

// mkPix builds a deterministic pixel block for an r.Area()-sized RAW.
func mkFanPix(r geom.Rect, seed uint8) []pixel.ARGB {
	pix := make([]pixel.ARGB, r.Area())
	for i := range pix {
		pix[i] = pixel.RGB(seed, uint8(i), uint8(i>>8))
	}
	return pix
}

// rawEntries returns the RAW commands currently buffered for a client.
func rawEntries(c *Client) []*RawCmd {
	var out []*RawCmd
	for _, e := range c.Buf.entries {
		if rc, ok := e.cmd.(*RawCmd); ok {
			out = append(out, rc)
		}
	}
	return out
}

// TestFanoutSharesRawPayload is the tentpole invariant: one translated
// RAW broadcast to N clients lands as N command objects sharing ONE
// pixel backing — the marginal cost of a viewer is queue bookkeeping,
// never a payload copy.
func TestFanoutSharesRawPayload(t *testing.T) {
	srv := NewServer(Options{})
	srv.Init(nil, 256, 256)
	const n = 8
	var clients []*Client
	for i := 0; i < n; i++ {
		clients = append(clients, srv.AttachClient(256, 256))
	}

	r := geom.XYWH(10, 10, 64, 64)
	srv.PutImage(driver.Screen, r, mkFanPix(r, 7), r.W())

	var first *RawCmd
	for i, c := range clients {
		raws := rawEntries(c)
		if len(raws) != 1 {
			t.Fatalf("client %d: %d RAW commands buffered, want 1", i, len(raws))
		}
		rc := raws[0]
		if got := rc.PayloadShares(); got != n {
			t.Errorf("client %d: PayloadShares = %d, want %d", i, got, n)
		}
		if first == nil {
			first = rc
		} else if &rc.Pix[0] != &first.Pix[0] {
			t.Errorf("client %d: payload backing not shared with client 0", i)
		}
	}
}

// TestFanoutCopyOnWriteDetach: a clone that must produce different
// bytes (merge absorption) detaches onto a private backing; siblings
// sharing the old backing are untouched.
func TestFanoutCopyOnWriteDetach(t *testing.T) {
	a := geom.XYWH(0, 0, 16, 4)
	b := geom.XYWH(0, 4, 16, 4)
	orig := NewRaw(a, mkFanPix(a, 1), a.W(), false, 0)
	clone := orig.Clone().(*RawCmd)
	if orig.PayloadShares() != 2 || clone.PayloadShares() != 2 {
		t.Fatalf("shares after clone = %d/%d, want 2/2",
			orig.PayloadShares(), clone.PayloadShares())
	}
	before := orig.Pix[0]

	next := NewRaw(b, mkFanPix(b, 2), b.W(), false, 0)
	if !clone.Merge(next) {
		t.Fatal("vertical merge refused")
	}
	// The clone grew onto a fresh backing; the original's payload and
	// refcount reverted to sole ownership.
	if clone.Bounds() != a.Union(b) {
		t.Fatalf("merged bounds %v", clone.Bounds())
	}
	if &clone.Pix[0] == &orig.Pix[0] {
		t.Fatal("merge mutated the shared backing in place")
	}
	if orig.Pix[0] != before {
		t.Fatal("original payload changed")
	}
	if orig.PayloadShares() != 1 {
		t.Fatalf("original shares = %d after detach, want 1", orig.PayloadShares())
	}
	if clone.PayloadShares() != 1 {
		t.Fatalf("clone shares = %d after detach, want 1", clone.PayloadShares())
	}
}

// TestFanoutSplitLeavesSiblingsIntact: splitting one client's RAW for a
// small flush budget only shrinks that clone's live region; the shared
// pixel backing and every sibling's live region are untouched.
func TestFanoutSplitLeavesSiblingsIntact(t *testing.T) {
	r := geom.XYWH(0, 0, 32, 32)
	orig := NewRaw(r, mkFanPix(r, 3), r.W(), false, 0)
	clone := orig.Clone().(*RawCmd)

	band := clone.SplitTop(clone.WireSize() / 4)
	if band == nil {
		t.Fatal("split refused")
	}
	if clone.Live().Rects()[0] == r {
		t.Fatal("split did not shrink the clone's live region")
	}
	if orig.Live().Rects()[0] != r {
		t.Fatal("split leaked into the sibling's live region")
	}
	if &clone.Pix[0] != &orig.Pix[0] {
		t.Fatal("split detached the payload (should stay shared)")
	}
}

// TestTranslationWorkConstantAcrossViewers pins the scaling contract:
// the same workload translates the same number of commands whether 1 or
// 8 clients watch; only delivery fan-out grows, and the extra
// deliveries share payload bytes instead of copying them.
func TestTranslationWorkConstantAcrossViewers(t *testing.T) {
	workload := func(srv *Server) {
		for i := 0; i < 20; i++ {
			r := geom.XYWH((i*13)%128, (i*29)%128, 48, 48)
			srv.PutImage(driver.Screen, r, mkFanPix(r, uint8(i)), r.W())
			srv.FillSolid(driver.Screen, geom.XYWH(i, i, 20, 20), pixel.RGB(uint8(i), 0, 0))
		}
	}
	var baseline int
	for _, n := range []int{1, 2, 4, 8} {
		reg := telemetry.NewRegistry()
		srv := NewServer(Options{Metrics: NewMetrics(reg)})
		srv.Init(nil, 256, 256)
		for i := 0; i < n; i++ {
			srv.AttachClient(256, 256)
		}
		workload(srv)

		translated := srv.Stats.OnscreenCmds
		if n == 1 {
			baseline = translated
		} else if translated != baseline {
			t.Errorf("viewers=%d: %d commands translated, want %d (constant)",
				n, translated, baseline)
		}
		deliveries := reg.Value("thinc_fanout_deliveries_total")
		if deliveries != int64(n*translated) {
			t.Errorf("viewers=%d: %d deliveries, want %d", n, deliveries, n*translated)
		}
		shared := reg.Value("thinc_fanout_shared_bytes_total")
		if n > 1 && shared == 0 {
			t.Errorf("viewers=%d: no payload bytes shared", n)
		}
		if n == 1 && shared != 0 {
			t.Errorf("viewers=1: %d bytes reported shared", shared)
		}
	}
}

// TestFanoutAudioAndRepaintShare: the non-display fan-out paths (audio
// chunks, overlay repaints) also share one payload across clients.
func TestFanoutAudioAndRepaintShare(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := NewServer(Options{Metrics: NewMetrics(reg)})
	srv.Init(nil, 64, 64)
	c1 := srv.AttachClient(64, 64)
	c2 := srv.AttachClient(64, 64)

	srv.PushAudio(1234, make([]byte, 480))
	var a1, a2 *AudioCmd
	for _, e := range c1.Buf.entries {
		if ac, ok := e.cmd.(*AudioCmd); ok {
			a1 = ac
		}
	}
	for _, e := range c2.Buf.entries {
		if ac, ok := e.cmd.(*AudioCmd); ok {
			a2 = ac
		}
	}
	if a1 == nil || a2 == nil {
		t.Fatal("audio chunk missing from a client buffer")
	}
	if &a1.Data[0] != &a2.Data[0] {
		t.Error("audio payload copied per client, want shared")
	}
	if got := reg.Value("thinc_fanout_shared_bytes_total"); got < 480 {
		t.Errorf("shared bytes = %d, want >= 480", got)
	}
}

// BenchmarkTranslateFanout measures the translate-once/deliver-N path
// end to end: one 64x64 RAW translated and fanned out to N full-size
// clients. Near-zero marginal translation cost per viewer means ns/op
// stays roughly flat from viewers=1 to viewers=8 (the per-viewer clone
// is live-region bookkeeping; the 16 KiB pixel payload is never
// recopied — sharedB/op reports the bytes that sharing avoided).
func BenchmarkTranslateFanout(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("viewers=%d", n), func(b *testing.B) {
			reg := telemetry.NewRegistry()
			srv := NewServer(Options{Metrics: NewMetrics(reg)})
			srv.Init(nil, 256, 256)
			var clients []*Client
			for i := 0; i < n; i++ {
				clients = append(clients, srv.AttachClient(256, 256))
			}
			r := geom.XYWH(16, 16, 64, 64)
			pix := mkFanPix(r, 5)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				srv.PutImage(driver.Screen, r, pix, r.W())
				if i%64 == 63 {
					b.StopTimer()
					for _, c := range clients {
						c.Buf.Clear()
					}
					b.StartTimer()
				}
			}
			b.StopTimer()
			shared := reg.Value("thinc_fanout_shared_bytes_total")
			b.ReportMetric(float64(shared)/float64(b.N), "sharedB/op")
		})
	}
}
