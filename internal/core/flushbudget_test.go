package core

import (
	"testing"

	"thinc/internal/compress"
	"thinc/internal/fb"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/wire"
)

// flushedBytes sums the framed wire size of a flush batch.
func flushedBytes(msgs []wire.Message) int {
	n := 0
	for _, m := range msgs {
		n += wire.WireSize(m)
	}
	return n
}

// TestFlushBudgetBoundsBytes: every Flush call emits at most the
// offered budget — the non-blocking commit guarantee of §5. An
// oversized RAW is split so the budget still holds, and the buffer
// drains completely over successive flushes.
func TestFlushBudgetBoundsBytes(t *testing.T) {
	b := NewClientBuffer()

	// One RAW far larger than the budget, plus small companions.
	big := geom.XYWH(0, 0, 64, 64) // 16 KB of pixels
	pix := make([]pixel.ARGB, big.Area())
	for i := range pix {
		pix[i] = pixel.RGB(uint8(i), uint8(i>>8), 7)
	}
	b.Add(NewRaw(big, pix, big.W(), false, compress.CodecNone))
	b.Add(NewFill(geom.XYWH(100, 0, 10, 10), pixel.RGB(1, 2, 3)))
	b.Add(NewFill(geom.XYWH(100, 20, 10, 10), pixel.RGB(4, 5, 6)))

	const budget = 2048
	flushes := 0
	for b.Len() > 0 {
		msgs := b.Flush(budget)
		if len(msgs) == 0 {
			t.Fatalf("flush %d made no progress with %d commands queued", flushes, b.Len())
		}
		if n := flushedBytes(msgs); n > budget {
			t.Fatalf("flush %d emitted %d bytes, budget %d", flushes, n, budget)
		}
		flushes++
		if flushes > 100 {
			t.Fatal("buffer did not drain")
		}
	}

	// 16 KB of RAW through a 2 KB budget needs several flush periods and
	// must have split the RAW.
	if flushes < 8 {
		t.Fatalf("drained in %d flushes; budget not limiting", flushes)
	}
	if b.Stats.Splits == 0 {
		t.Fatal("oversized RAW was never split")
	}
	if b.QueuedBytes() != 0 {
		t.Fatalf("QueuedBytes = %d after drain", b.QueuedBytes())
	}
}

// TestFlushBudgetSplitConverges: delivering a split RAW in pieces
// reproduces exactly the same framebuffer as delivering it whole.
func TestFlushBudgetSplitConverges(t *testing.T) {
	r := geom.XYWH(3, 5, 50, 40)
	pix := make([]pixel.ARGB, r.Area())
	for i := range pix {
		pix[i] = pixel.RGB(uint8(3*i), uint8(5*i), uint8(7*i))
	}

	apply := func(msgs []wire.Message) *fb.Framebuffer {
		dst := fb.New(64, 64)
		for _, m := range msgs {
			raw := m.(*wire.Raw)
			p, err := raw.Pixels()
			if err != nil {
				t.Fatal(err)
			}
			dst.PutImage(raw.Rect, p, raw.Rect.W())
		}
		return dst
	}

	whole := NewClientBuffer()
	whole.Add(NewRaw(r, pix, r.W(), false, compress.CodecNone))
	want := apply(whole.FlushAll())

	split := NewClientBuffer()
	split.Add(NewRaw(r, pix, r.W(), false, compress.CodecNone))
	var msgs []wire.Message
	for split.Len() > 0 {
		batch := split.Flush(1024)
		if len(batch) == 0 {
			t.Fatal("no progress")
		}
		msgs = append(msgs, batch...)
	}
	if len(msgs) < 2 {
		t.Fatalf("expected the RAW to split, got %d messages", len(msgs))
	}
	if got := apply(msgs); got.Checksum() != want.Checksum() {
		t.Fatal("split delivery diverged from whole delivery")
	}
	if split.Stats.Splits == 0 {
		t.Fatal("split counter not incremented")
	}
}

// TestFlushBudgetTooSmallForAnyBand: a budget smaller than one RAW
// scanline band makes no progress that flush — but does not lose the
// command; a later, bigger budget still delivers it.
func TestFlushBudgetTooSmallForAnyBand(t *testing.T) {
	b := NewClientBuffer()
	r := geom.XYWH(0, 0, 64, 8)
	b.Add(NewRaw(r, make([]pixel.ARGB, r.Area()), r.W(), false, compress.CodecNone))

	// One 64-px row is 256 bytes + overhead; 64 bytes fits nothing.
	if msgs := b.Flush(64); len(msgs) != 0 {
		t.Fatalf("emitted %d messages under a too-small budget", len(msgs))
	}
	if b.Len() != 1 {
		t.Fatal("command lost under a too-small budget")
	}
	if msgs := b.FlushAll(); len(msgs) == 0 {
		t.Fatal("command not delivered once budget allowed")
	}
}
