package core_test

import (
	"math/rand"
	"testing"

	"thinc/internal/client"
	"thinc/internal/core"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/wire"
	"thinc/internal/xserver"
)

// The wire-v6 convergence oracle: a cached client and an uncached
// client attach to the same server core and replay randomized,
// repeat-heavy draw sequences under random flush budgets. The cached
// pair negotiates a deliberately small store so the deterministic LRU
// evicts mid-sequence; the uncached pair is the ground truth — its
// stream is the pre-v6 wire. Both must land byte-identical to the
// server screen (and therefore to each other) after every sequence,
// and the cached stream must never produce a CACHE_MISS: in-order
// lossless delivery keeps the two LRUs in perfect sync by
// construction, so any miss is a model/store divergence bug.

// cacheOracleCap is small enough that the pattern bank plus fresh
// images overflow it repeatedly — eviction agreement is the hard part
// of the no-eviction-messages design, so the oracle must exercise it.
const cacheOracleCap = 4 << 10

// oraclePattern is one bank entry: fixed geometry (the digest covers
// content dimensions) and fixed bytes, replayed at random positions.
type oraclePattern struct {
	w, h  int
	pix   []pixel.ARGB
	blend bool
}

func mkOraclePattern(rnd *rand.Rand, blend bool) oraclePattern {
	p := oraclePattern{w: 8 + rnd.Intn(9), h: 6 + rnd.Intn(7), blend: blend}
	p.pix = make([]pixel.ARGB, p.w*p.h)
	for i := range p.pix {
		a := uint8(255)
		if blend {
			a = uint8(64 + rnd.Intn(128))
		}
		p.pix[i] = pixel.PackARGB(a, uint8(rnd.Intn(256)),
			uint8(rnd.Intn(256)), uint8(rnd.Intn(256)))
	}
	return p
}

// oracleClient is one attached translation pipeline plus the display
// client consuming it.
type oracleClient struct {
	cl  *core.Client
	dst *client.Client
}

// pump flushes under budget (<= 0 drains everything) and applies,
// counting cache messages seen.
func (oc *oracleClient) pump(t *testing.T, seed, budget int, stores, paints *int) {
	t.Helper()
	msgs := oc.cl.Flush(budget)
	if budget <= 0 {
		msgs = oc.cl.FlushAll()
	}
	for _, m := range msgs {
		switch m.(type) {
		case *wire.CacheStore:
			*stores++
		case *wire.CachePaint:
			*paints++
		}
	}
	if err := oc.dst.ApplyAll(msgs); err != nil {
		t.Fatalf("seed %d: apply: %v", seed, err)
	}
}

// TestCacheConvergenceOracle is the brute-force property test behind
// the CACHE_PAINT delta protocol: 1000 randomized draw sequences (a
// reduced draw in -short), each replayed to a cached and an uncached
// client, must converge byte-identical to the server screen. The
// uncached stream must stay free of cache messages (the v6 extension
// is invisible until negotiated), the cached stream must hit, store,
// and evict without ever reporting a miss.
func TestCacheConvergenceOracle(t *testing.T) {
	const w, h = 64, 48
	seqs := 1000
	if testing.Short() {
		seqs = 80
	}
	var hits, stores, evictions int64
	var wireStores, wirePaints, uncachedCacheMsgs int
	for seed := 0; seed < seqs; seed++ {
		rnd := rand.New(rand.NewSource(int64(seed)))
		srv := core.NewServer(core.Options{})
		dpy := xserver.NewDisplay(w, h, srv)

		cached := &oracleClient{cl: srv.AttachClient(w, h), dst: client.New(w, h)}
		cached.cl.SetCacheSize(cacheOracleCap)
		cached.dst.EnableCache(cacheOracleCap)
		plain := &oracleClient{cl: srv.AttachClient(w, h), dst: client.New(w, h)}
		for _, oc := range []*oracleClient{cached, plain} {
			if err := oc.dst.ApplyAll(oc.cl.FlushAll()); err != nil {
				t.Fatalf("seed %d: initial sync: %v", seed, err)
			}
		}

		bank := make([]oraclePattern, 5)
		for i := range bank {
			bank[i] = mkOraclePattern(rnd, i == 4) // one translucent entry
		}
		win := dpy.CreateWindow(geom.XYWH(0, 0, w, h))

		for op := 0; op < 40; op++ {
			switch rnd.Intn(8) {
			case 0, 1, 2, 3: // repeat-heavy: replay a bank pattern somewhere new
				p := bank[rnd.Intn(len(bank))]
				r := geom.XYWH(rnd.Intn(w-p.w), rnd.Intn(h-p.h), p.w, p.h)
				if p.blend {
					dpy.Composite(win, r, p.pix, p.w)
				} else {
					dpy.PutImage(win, r, p.pix, p.w)
				}
			case 4: // fresh image: store-once traffic and eviction pressure
				r := geom.XYWH(rnd.Intn(w-20), rnd.Intn(h-14), 4+rnd.Intn(16), 4+rnd.Intn(10))
				pix := make([]pixel.ARGB, r.Area())
				for i := range pix {
					pix[i] = pixel.RGB(uint8(rnd.Intn(256)), uint8(op*29), uint8(seed))
				}
				dpy.PutImage(win, r, pix, r.W())
			case 5: // solid fill: SFILL, never cached
				dpy.FillRect(win, &xserver.GC{Fg: pixel.RGB(uint8(rnd.Intn(256)),
					uint8(rnd.Intn(256)), uint8(rnd.Intn(256)))},
					geom.XYWH(rnd.Intn(w-16), rnd.Intn(h-12), 1+rnd.Intn(16), 1+rnd.Intn(12)))
			case 6: // copy: Partial overwrite reading prior state
				r := geom.XYWH(rnd.Intn(w-12), rnd.Intn(h-8), 1+rnd.Intn(12), 1+rnd.Intn(8))
				dpy.CopyArea(win, win, r, geom.Point{X: rnd.Intn(w - r.W()), Y: rnd.Intn(h - r.H())})
			default: // glyph runs: BITMAP traffic, cacheable when wide enough
				dpy.DrawText(win, &xserver.GC{Fg: pixel.RGB(240, 240, 240)},
					rnd.Intn(w-40), rnd.Intn(h-10), [3]string{"ls -la", "make -j", "git log"}[rnd.Intn(3)])
			}
			if rnd.Intn(6) == 0 {
				// Independent random budgets: the two pipelines split and
				// coalesce differently, yet must land on the same bytes.
				cached.pump(t, seed, 96+rnd.Intn(4096), &wireStores, &wirePaints)
				plain.pump(t, seed, 96+rnd.Intn(4096), &uncachedCacheMsgs, &uncachedCacheMsgs)
			}
		}
		cached.pump(t, seed, 0, &wireStores, &wirePaints)
		plain.pump(t, seed, 0, &uncachedCacheMsgs, &uncachedCacheMsgs)

		if !cached.dst.FB().Equal(dpy.Screen()) {
			d := cached.dst.FB().DiffRegion(dpy.Screen())
			t.Fatalf("seed %d: cached client diverged from screen: %v", seed, d.Bounds())
		}
		if !plain.dst.FB().Equal(dpy.Screen()) {
			d := plain.dst.FB().DiffRegion(dpy.Screen())
			t.Fatalf("seed %d: uncached client diverged from screen: %v", seed, d.Bounds())
		}
		if !cached.dst.FB().Equal(plain.dst.FB()) {
			t.Fatalf("seed %d: cached and uncached clients diverged from each other", seed)
		}
		cs := cached.cl.CacheStats
		if cs.Misses != 0 {
			t.Fatalf("seed %d: %d cache misses on a lossless in-order stream", seed, cs.Misses)
		}
		hits += int64(cs.Hits)
		stores += int64(cs.Stores)
		evictions += int64(cs.Stores - cached.cl.CacheEntries())
	}
	if uncachedCacheMsgs != 0 {
		t.Fatalf("uncached client received %d cache messages; v6 must be invisible until negotiated",
			uncachedCacheMsgs)
	}
	if hits == 0 || stores == 0 {
		t.Fatalf("oracle never exercised the cache: hits=%d stores=%d", hits, stores)
	}
	if wirePaints == 0 || wireStores == 0 {
		t.Fatalf("no cache messages observed on the wire: stores=%d paints=%d", wireStores, wirePaints)
	}
	if evictions == 0 {
		t.Fatalf("the %d-byte store never evicted; the oracle must exercise LRU agreement", cacheOracleCap)
	}
	t.Logf("cache oracle: %d sequences, %d hits, %d stores, %d evictions, wire stores=%d paints=%d",
		seqs, hits, stores, evictions, wireStores, wirePaints)
}
