package core

import (
	"testing"

	"thinc/internal/compress"
	"thinc/internal/fb"
	"thinc/internal/geom"
	"thinc/internal/pixel"
)

func TestQueueEvictsFullyCovered(t *testing.T) {
	var q Queue
	q.Add(NewFill(geom.XYWH(0, 0, 10, 10), pixel.RGB(1, 1, 1)))
	q.Add(NewFill(geom.XYWH(20, 20, 5, 5), pixel.RGB(2, 2, 2)))
	// Overwrite the first fill entirely.
	q.Add(NewFill(geom.XYWH(-1, -1, 12, 12), pixel.RGB(3, 3, 3)))
	if q.Len() != 2 {
		t.Fatalf("queue len %d, want 2 (evict + survivor)", q.Len())
	}
	if q.Evicted != 1 {
		t.Fatalf("evicted %d, want 1", q.Evicted)
	}
}

func TestQueueClipsPartial(t *testing.T) {
	var q Queue
	q.Add(NewFill(geom.XYWH(0, 0, 10, 10), pixel.RGB(1, 1, 1)))
	q.Add(NewFill(geom.XYWH(5, 0, 10, 10), pixel.RGB(2, 2, 2)))
	cmds := q.Commands()
	if len(cmds) != 2 {
		t.Fatalf("len %d", len(cmds))
	}
	if cmds[0].Live().Area() != 50 {
		t.Fatalf("first fill live area %d, want 50", cmds[0].Live().Area())
	}
	// Partial commands never overlap afterward — the §4 invariant.
	inter := cmds[0].Live().Clone()
	second := cmds[1].Live()
	inter.Intersect(second)
	if !inter.Empty() {
		t.Fatal("partial commands overlap after insertion")
	}
}

func TestQueueTransparentEvictsNothing(t *testing.T) {
	var q Queue
	q.Add(NewFill(geom.XYWH(0, 0, 10, 10), pixel.RGB(1, 1, 1)))
	r := geom.XYWH(0, 0, 10, 10)
	q.Add(NewRaw(r, mkPix(r, 1), 10, true, compress.CodecNone)) // blend
	if q.Len() != 2 || q.Evicted != 0 {
		t.Fatal("transparent command must not evict")
	}
	// But an opaque command over both evicts both.
	q.Add(NewFill(geom.XYWH(0, 0, 10, 10), pixel.RGB(2, 2, 2)))
	if q.Len() != 1 || q.Evicted != 2 {
		t.Fatalf("len %d evicted %d", q.Len(), q.Evicted)
	}
}

func TestQueueMergesScanlines(t *testing.T) {
	var q Queue
	for y := 0; y < 20; y++ {
		r := geom.XYWH(0, y, 32, 1)
		q.Add(NewRaw(r, mkPix(r, uint8(y)), 32, false, compress.CodecNone))
	}
	if q.Len() != 1 {
		t.Fatalf("scanlines did not aggregate: %d commands", q.Len())
	}
	if q.Commands()[0].Bounds() != geom.XYWH(0, 0, 32, 20) {
		t.Fatalf("merged bounds %v", q.Commands()[0].Bounds())
	}
}

func TestQueueLiveRegion(t *testing.T) {
	var q Queue
	q.Add(NewFill(geom.XYWH(0, 0, 4, 4), pixel.RGB(1, 1, 1)))
	q.Add(NewFill(geom.XYWH(10, 10, 4, 4), pixel.RGB(2, 2, 2)))
	rg := q.LiveRegion()
	if rg.Area() != 32 {
		t.Fatalf("live region area %d", rg.Area())
	}
}

func TestCopyOutPartialClipping(t *testing.T) {
	var q Queue
	q.Add(NewFill(geom.XYWH(0, 0, 20, 20), pixel.RGB(1, 1, 1)))
	src := geom.XYWH(5, 5, 10, 10)
	clones, fallback := q.CopyOut(src)
	if len(clones) != 1 {
		t.Fatalf("%d clones", len(clones))
	}
	if clones[0].Live().Area() != 100 {
		t.Fatalf("clone live area %d, want 100", clones[0].Live().Area())
	}
	if !fallback.Empty() {
		t.Fatalf("fully covered src should need no fallback, got %v", fallback.String())
	}
	// Original untouched.
	if q.Commands()[0].Live().Area() != 400 {
		t.Fatal("CopyOut mutated the source queue")
	}
}

func TestCopyOutFallbackForUncovered(t *testing.T) {
	var q Queue
	q.Add(NewFill(geom.XYWH(0, 0, 10, 5), pixel.RGB(1, 1, 1)))
	src := geom.XYWH(0, 0, 10, 10) // bottom half untracked
	clones, fallback := q.CopyOut(src)
	if len(clones) != 1 {
		t.Fatalf("%d clones", len(clones))
	}
	if fallback.Area() != 50 {
		t.Fatalf("fallback area %d, want 50", fallback.Area())
	}
}

func TestCopyOutCompleteCrossingBoundary(t *testing.T) {
	var q Queue
	bm := fb.NewBitmap(8, 8)
	bm.SetBit(0, 0, true)
	// Stipple crossing the copy boundary cannot be split: falls back.
	q.Add(NewBitmap(geom.XYWH(6, 0, 8, 8), bm, pixel.RGB(1, 1, 1), pixel.RGB(2, 2, 2), false))
	src := geom.XYWH(0, 0, 10, 10)
	clones, fallback := q.CopyOut(src)
	if len(clones) != 0 {
		t.Fatalf("boundary-crossing Complete must not be cloned, got %d", len(clones))
	}
	if !fallback.ContainsRect(geom.XYWH(6, 0, 4, 8)) {
		t.Fatalf("fallback %v misses the stipple's visible part", fallback.String())
	}
	// Fully inside: cloned.
	var q2 Queue
	q2.Add(NewBitmap(geom.XYWH(1, 1, 8, 8), bm, pixel.RGB(1, 1, 1), pixel.RGB(2, 2, 2), false))
	clones, _ = q2.CopyOut(src)
	if len(clones) != 1 {
		t.Fatal("fully contained Complete should clone")
	}
}

func TestCopyOutTransparentNeedsReproducedBase(t *testing.T) {
	src := geom.XYWH(0, 0, 20, 20)
	bm := fb.NewBitmap(4, 4)
	bm.SetBit(1, 1, true)

	// Case 1: transparent glyph over a tracked opaque fill — rides along.
	var q Queue
	q.Add(NewFill(geom.XYWH(0, 0, 20, 20), pixel.RGB(1, 1, 1)))
	q.Add(NewBitmap(geom.XYWH(2, 2, 4, 4), bm, pixel.PackARGB(128, 255, 255, 255), 0, true))
	clones, fallback := q.CopyOut(src)
	if len(clones) != 2 {
		t.Fatalf("expected fill+glyph clones, got %d", len(clones))
	}
	if !fallback.Empty() {
		t.Fatalf("no fallback expected, got %v", fallback.String())
	}

	// Case 2: transparent glyph over untracked base — baked into fallback,
	// not cloned (double blending would corrupt the client).
	var q2 Queue
	q2.Add(NewBitmap(geom.XYWH(2, 2, 4, 4), bm, pixel.PackARGB(128, 255, 255, 255), 0, true))
	clones, fallback = q2.CopyOut(src)
	if len(clones) != 0 {
		t.Fatal("transparent over untracked base must not clone")
	}
	if fallback.Area() != src.Area() {
		t.Fatalf("fallback should cover all of src, got %d", fallback.Area())
	}
}

func TestCopyOutPreservesArrivalOrder(t *testing.T) {
	var q Queue
	q.Add(NewFill(geom.XYWH(0, 0, 10, 10), pixel.RGB(1, 1, 1)))
	q.Add(NewFill(geom.XYWH(5, 5, 10, 10), pixel.RGB(2, 2, 2)))
	clones, _ := q.CopyOut(geom.XYWH(0, 0, 20, 20))
	if len(clones) != 2 {
		t.Fatalf("%d clones", len(clones))
	}
	if clones[0].(*FillCmd).Color != pixel.RGB(1, 1, 1) ||
		clones[1].(*FillCmd).Color != pixel.RGB(2, 2, 2) {
		t.Fatal("clone order does not match arrival order")
	}
}

func TestQueueClear(t *testing.T) {
	var q Queue
	q.Add(NewFill(geom.XYWH(0, 0, 4, 4), pixel.RGB(1, 1, 1)))
	q.Clear()
	if q.Len() != 0 {
		t.Fatal("clear failed")
	}
}
