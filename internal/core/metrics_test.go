package core

import (
	"strings"
	"testing"

	"thinc/internal/compress"
	"thinc/internal/driver"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/telemetry"
	"thinc/internal/wire"
)

// fakeMem is a minimal driver.Memory: surfaces read back as zero pixels.
type fakeMem struct {
	w, h int
	pix  map[driver.DrawableID][2]int
	next driver.DrawableID
}

func (m *fakeMem) NewPixmap(w, h int) driver.DrawableID {
	m.next++
	m.pix[m.next] = [2]int{w, h}
	return m.next
}

func (m *fakeMem) ReadPixels(_ driver.DrawableID, r geom.Rect) []pixel.ARGB {
	return make([]pixel.ARGB, r.Area())
}

func (m *fakeMem) SurfaceSize(d driver.DrawableID) (int, int) {
	if s, ok := m.pix[d]; ok {
		return s[0], s[1]
	}
	return m.w, m.h
}

func newTestServer(t *testing.T, opts Options) (*Server, *fakeMem) {
	t.Helper()
	srv := NewServer(opts)
	mem := &fakeMem{w: 128, h: 96, pix: map[driver.DrawableID][2]int{}}
	srv.Init(mem, 128, 96)
	return srv, mem
}

// TestSplitRemainderRequeued is the regression test for queue-size
// accounting after flush-budget RAW splitting: once a large RAW has been
// partially delivered, the remainder must be scheduled by its *reduced*
// wire size, competing in the small queues — not in the queue its
// original size selected. SRSF then delivers it ahead of genuinely
// larger commands (§5's smallest-first policy).
func TestSplitRemainderRequeued(t *testing.T) {
	b := NewClientBuffer()

	// A 64x64 RAW: ~16 KB of pixels, top queue.
	big := geom.XYWH(0, 0, 64, 64)
	b.Add(NewRaw(big, make([]pixel.ARGB, big.Area()), big.W(), false, compress.CodecNone))

	origQueue := sizeQueue(b.entries[0].cmd.WireSize())

	// Split it down until the remainder is small: each 2 KB flush takes
	// a band of rows off the top.
	for b.QueuedBytes() > 600 {
		if msgs := b.Flush(2048); len(msgs) == 0 {
			t.Fatal("no progress splitting the RAW")
		}
	}
	if b.Len() != 1 {
		t.Fatalf("expected one remainder entry, have %d", b.Len())
	}
	rem := b.entries[0]
	newQueue := b.queueOf(rem)
	if newQueue >= origQueue {
		t.Fatalf("remainder still in queue %d (original %d); not rescheduled by reduced size",
			newQueue, origQueue)
	}

	// Per-queue occupancy must agree: the remainder counts in its
	// reduced-size queue, and the original queue is empty.
	var depth, bytes [NumQueues + 1]int64
	b.queueLoads(&depth, &bytes)
	if depth[origQueue] != 0 {
		t.Fatalf("queue %d still reports depth %d", origQueue, depth[origQueue])
	}
	if depth[newQueue] != 1 || bytes[newQueue] != int64(rem.cmd.WireSize()) {
		t.Fatalf("queue %d: depth=%d bytes=%d, want 1/%d",
			newQueue, depth[newQueue], bytes[newQueue], rem.cmd.WireSize())
	}

	// A mid-size competitor in a higher queue loses to the remainder.
	mid := geom.XYWH(100, 0, 32, 32) // ~4 KB
	b.Add(NewRaw(mid, make([]pixel.ARGB, mid.Area()), mid.W(), false, compress.CodecNone))
	msgs := b.FlushOne()
	if len(msgs) != 1 {
		t.Fatalf("FlushOne delivered %d messages", len(msgs))
	}
	raw, ok := msgs[0].(*wire.Raw)
	if !ok {
		t.Fatalf("delivered %T, want *wire.Raw", msgs[0])
	}
	if raw.Rect.X0 != 0 {
		t.Fatalf("delivered rect %v; mid-size command jumped the split remainder", raw.Rect)
	}
}

// TestSchedulerMetricsFlow drives a buffer wired to a live registry and
// checks the series agree with the scheduler's own stats.
func TestSchedulerMetricsFlow(t *testing.T) {
	reg := telemetry.NewRegistry()
	met := NewMetrics(reg)
	b := NewClientBufferWith(met)

	big := geom.XYWH(0, 0, 64, 32) // 8 KB → will split under budget
	b.Add(NewRaw(big, make([]pixel.ARGB, big.Area()), big.W(), false, compress.CodecNone))
	b.Add(NewFill(geom.XYWH(100, 0, 10, 10), pixel.RGB(1, 2, 3)))
	b.Add(NewFill(geom.XYWH(100, 0, 10, 10), pixel.RGB(4, 5, 6))) // merges (same rect)

	for b.Len() > 0 {
		if msgs := b.Flush(2048); len(msgs) == 0 {
			t.Fatal("no progress")
		}
	}

	if got := reg.Total("thinc_sched_commands_queued_total"); got != 3 {
		t.Fatalf("queued_total = %d, want 3", got)
	}
	if got := reg.Value("thinc_sched_commands_merged_total"); got != int64(b.Stats.Merged) {
		t.Fatalf("merged_total = %d, scheduler saw %d", got, b.Stats.Merged)
	}
	if got := reg.Value("thinc_sched_raw_splits_total"); got != int64(b.Stats.Splits) || got == 0 {
		t.Fatalf("raw_splits_total = %d, scheduler saw %d", got, b.Stats.Splits)
	}
	if got := reg.Value("thinc_sched_commands_sent_total"); got != int64(b.Stats.Sent) {
		t.Fatalf("sent_total = %d, scheduler saw %d", got, b.Stats.Sent)
	}
	if got := reg.Value("thinc_sched_bytes_sent_total"); got != b.Stats.BytesSent {
		t.Fatalf("bytes_sent_total = %d, scheduler saw %d", got, b.Stats.BytesSent)
	}
	if count, _ := reg.HistogramStats("thinc_sched_command_size_bytes"); count != 3 {
		t.Fatalf("command_size count = %d, want 3", count)
	}
	if count, _ := reg.HistogramStats("thinc_sched_queue_wait_flushes"); count != int64(b.Stats.Sent) {
		t.Fatalf("queue_wait count = %d, want one observation per sent command (%d)",
			count, b.Stats.Sent)
	}
}

// TestTranslateMetricsFlow exercises a server core end to end and checks
// the translation-layer series mirror TranslateStats exactly.
func TestTranslateMetricsFlow(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv, mem := newTestServer(t, Options{Metrics: NewMetrics(reg)})
	srv.AttachClient(0, 0)

	srv.FillSolid(driver.Screen, geom.XYWH(0, 0, 10, 10), pixel.RGB(9, 9, 9))
	pm := mem.NewPixmap(40, 40)
	srv.CreatePixmap(pm, 40, 40)
	srv.FillSolid(pm, geom.XYWH(0, 0, 40, 40), pixel.RGB(1, 1, 1))
	srv.CopyArea(driver.Screen, pm, geom.XYWH(0, 0, 40, 40), geom.Point{X: 5, Y: 5})

	check := func(name string, want int) {
		t.Helper()
		if got := reg.Total(name); got != int64(want) || want == 0 {
			t.Fatalf("%s = %d, want %d (nonzero)", name, got, want)
		}
	}
	check("thinc_translate_commands_total", srv.Stats.OnscreenCmds+srv.Stats.OffscreenCmds)
	check("thinc_translate_offscreen_execs_total", srv.Stats.OffscreenExecs)
	if got := reg.Value("thinc_translate_commands_total", telemetry.L("dest", "offscreen")); got != int64(srv.Stats.OffscreenCmds) {
		t.Fatalf("offscreen commands = %d, stats %d", got, srv.Stats.OffscreenCmds)
	}

	// The registry renders every series the bundle registered.
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	for _, want := range []string{
		"thinc_translate_commands_total", "thinc_sched_commands_queued_total",
		"thinc_sched_command_size_bytes_bucket", "thinc_sched_bytes_sent_total",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("/metrics missing %s", want)
		}
	}
}

// TestQueueLoads checks the scrape-time per-queue gauges: depth and
// bytes land in the queue matching each command's wire size, with the
// real-time queue at index NumQueues.
func TestQueueLoads(t *testing.T) {
	srv, _ := newTestServer(t, Options{})
	c := srv.AttachClient(0, 0)
	c.Buf.Clear() // drop the attach-time sync for a clean slate

	small := geom.XYWH(0, 0, 4, 4)
	srv.FillSolid(driver.Screen, small, pixel.RGB(1, 2, 3))
	big := geom.XYWH(0, 0, 64, 64)
	srv.PutImage(driver.Screen, big, make([]pixel.ARGB, big.Area()), big.W())

	depth, bytes := srv.QueueLoads()
	var totalDepth, totalBytes int64
	for i := range depth {
		totalDepth += depth[i]
		totalBytes += bytes[i]
	}
	if totalDepth != int64(c.Buf.Len()) {
		t.Fatalf("QueueLoads depth %d, buffer holds %d", totalDepth, c.Buf.Len())
	}
	if totalBytes != int64(c.Buf.QueuedBytes()) {
		t.Fatalf("QueueLoads bytes %d, buffer holds %d", totalBytes, c.Buf.QueuedBytes())
	}
	bigQ := sizeQueue(NewRaw(big, make([]pixel.ARGB, big.Area()), big.W(), false, compress.CodecNone).WireSize())
	if depth[bigQ] == 0 {
		t.Fatalf("big RAW not accounted in queue %d (depth=%v)", bigQ, depth)
	}
}
