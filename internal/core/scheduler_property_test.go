package core

import (
	"math/rand"
	"testing"

	"thinc/internal/compress"
	"thinc/internal/driver"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/wire"
)

// randCmd builds a random command for scheduler stress tests.
func randCmd(rnd *rand.Rand) Command {
	r := geom.XYWH(rnd.Intn(200), rnd.Intn(200), 1+rnd.Intn(80), 1+rnd.Intn(80))
	switch rnd.Intn(4) {
	case 0:
		return NewFill(r, pixel.RGB(uint8(rnd.Intn(256)), 0, 0))
	case 1:
		pix := make([]pixel.ARGB, r.Area())
		return NewRaw(r, pix, r.W(), false, compress.CodecNone)
	case 2:
		pix := make([]pixel.ARGB, r.Area())
		return NewRaw(r, pix, r.W(), true, compress.CodecNone) // transparent
	default:
		src := geom.XYWH(rnd.Intn(200), rnd.Intn(200), r.W(), r.H())
		return NewCopy(src, r.Origin())
	}
}

// TestFlushNeverExceedsBudget: any flush stays within the offered
// budget unless the link-idle streaming path (FlushOne) is used — which
// Flush itself never takes.
func TestFlushNeverExceedsBudget(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		b := NewClientBuffer()
		for i := 0; i < 30; i++ {
			b.Add(randCmd(rnd))
		}
		for b.Len() > 0 {
			budget := 64 + rnd.Intn(8192)
			msgs := b.Flush(budget)
			total := 0
			for _, m := range msgs {
				total += wire.WireSize(m)
			}
			if total > budget {
				t.Fatalf("seed %d: flushed %d bytes under budget %d", seed, total, budget)
			}
			if len(msgs) == 0 {
				// Head doesn't fit; the transport path would stream it.
				if one := b.FlushOne(); len(one) == 0 && b.Len() > 0 {
					t.Fatalf("seed %d: FlushOne made no progress", seed)
				}
			}
		}
	}
}

// TestFlushRespectsDependencies: in the flushed order, no command's
// output region is painted before an earlier-arrived command it
// overlaps. We verify with a simple replay: apply messages to a model
// where each SFILL writes its unique color and check the final state
// matches arrival-order application.
func TestFlushRespectsDependencies(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		b := NewClientBuffer()
		var arrival []Command
		for i := 0; i < 25; i++ {
			// Overlapping fills with distinct colors expose reordering.
			r := geom.XYWH(rnd.Intn(40), rnd.Intn(40), 4+rnd.Intn(30), 4+rnd.Intn(30))
			c := NewFill(r, pixel.RGB(uint8(i+1), uint8(seed), 99))
			arrival = append(arrival, c.Clone())
			b.Add(c)
		}
		// Reference: apply in arrival order.
		ref := make(map[[2]int]pixel.ARGB)
		for _, c := range arrival {
			f := c.(*FillCmd)
			r := f.Bounds()
			for y := r.Y0; y < r.Y1; y++ {
				for x := r.X0; x < r.X1; x++ {
					ref[[2]int{x, y}] = f.Color
				}
			}
		}
		// Flush in random budget chunks, apply in delivery order.
		got := make(map[[2]int]pixel.ARGB)
		for b.Len() > 0 {
			for _, m := range b.Flush(64 + rnd.Intn(512)) {
				sf := m.(*wire.SFill)
				for y := sf.Rect.Y0; y < sf.Rect.Y1; y++ {
					for x := sf.Rect.X0; x < sf.Rect.X1; x++ {
						got[[2]int{x, y}] = sf.Color
					}
				}
			}
		}
		for k, v := range ref {
			if got[k] != v {
				t.Fatalf("seed %d: pixel %v = %v, want %v (ordering violated)", seed, k, got[k], v)
			}
		}
	}
}

// TestBufferAlwaysDrains: no Add sequence can wedge the buffer.
func TestBufferAlwaysDrains(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		b := NewClientBuffer()
		for i := 0; i < 50; i++ {
			b.Add(randCmd(rnd))
			if rnd.Intn(4) == 0 {
				b.NotifyInput(geom.Point{X: rnd.Intn(200), Y: rnd.Intn(200)})
			}
		}
		for guard := 0; b.Len() > 0; guard++ {
			if guard > 10000 {
				t.Fatalf("seed %d: buffer did not drain (len %d)", seed, b.Len())
			}
			if msgs := b.Flush(2048); len(msgs) == 0 {
				b.FlushOne()
			}
		}
	}
}

func BenchmarkTranslateFills(b *testing.B) {
	srv := NewServer(Options{})
	srv.Init(nopMemory{}, 1024, 768)
	cl := srv.AttachClient(1024, 768)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.FillSolid(0, geom.XYWH(i%900, (i*7)%700, 64, 32), pixel.RGB(uint8(i), 0, 0))
		if cl.Buf.Len() > 256 {
			cl.FlushAll()
		}
	}
}

func BenchmarkClientBufferAddEvict(b *testing.B) {
	buf := NewClientBuffer()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Add(NewFill(geom.XYWH(i%64, i%64, 100, 100), pixel.RGB(uint8(i), 1, 2)))
		if buf.Len() > 128 {
			buf.FlushAll()
		}
	}
}

func BenchmarkFlushSRSF(b *testing.B) {
	rnd := rand.New(rand.NewSource(1))
	cmds := make([]Command, 256)
	for i := range cmds {
		cmds[i] = randCmd(rnd)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := NewClientBuffer()
		for _, c := range cmds {
			buf.Add(c.Clone())
		}
		buf.FlushAll()
	}
}

// nopMemory satisfies driver.Memory for benchmarks that never fall back
// to raw reads.
type nopMemory struct{}

func (nopMemory) ReadPixels(d driver.DrawableID, r geom.Rect) []pixel.ARGB {
	return make([]pixel.ARGB, r.Area())
}

func (nopMemory) SurfaceSize(driver.DrawableID) (int, int) { return 1024, 768 }
