package core

import (
	"thinc/internal/driver"
	"thinc/internal/fb"
	"thinc/internal/overload"
)

// Integrity-audit support in the translation layer (wire v4): the
// per-tile digest index over the session framebuffer, maintained
// incrementally on the draw path, plus the targeted tile-repair
// injection and the per-client audit state that rides the retained
// session (like the degradation rung) across reattach.

// DefaultAuditTile is the tile side used when Options.AuditTileSize is
// zero. 64x64 ARGB tiles are 16 KiB of pixels — big enough that the
// index stays small, small enough that a repair is cheap.
const DefaultAuditTile = 64

// screenSurface is optionally implemented by driver.Memory providers
// that can expose the rendered screen framebuffer directly
// (xserver.Display does). The digest index reads pixels in place
// through it; a Memory without it leaves auditing unsupported.
type screenSurface interface {
	Screen() *fb.Framebuffer
}

// auditTileSize resolves the configured tile side.
func (s *Server) auditTileSize() int {
	if s.opts.AuditTileSize > 0 {
		return s.opts.AuditTileSize
	}
	return DefaultAuditTile
}

// initAudit (re)builds the tile index for the current screen geometry.
// Called from Init; every tile starts dirty.
func (s *Server) initAudit() {
	s.tiles = nil
	if scr, ok := s.mem.(screenSurface); ok && scr.Screen() != nil && s.w > 0 && s.h > 0 {
		s.tiles = fb.NewTileIndex(s.w, s.h, s.auditTileSize())
	}
}

// AuditSupported reports whether the core can serve audit digests —
// the attached Memory must expose its screen surface.
func (s *Server) AuditSupported() bool { return s.tiles != nil }

// AuditGrid returns the audit tile geometry. Zero value when
// unsupported.
func (s *Server) AuditGrid() fb.TileGrid {
	if s.tiles == nil {
		return fb.TileGrid{}
	}
	return s.tiles.Grid()
}

// markAudit dirties the tiles a screen-changing command touched. It is
// called once per broadcast (not per client): the index tracks the
// shared screen, not any client's queue.
func (s *Server) markAudit(cmd Command) {
	if s.tiles != nil {
		s.tiles.MarkRect(cmd.Bounds())
	}
}

// AuditDigests appends the expected digests of tiles [start, start+n)
// to dst, rehashing only tiles dirtied since the last call. The caller
// must hold whatever lock serializes drawing (the digests snapshot the
// screen as of now).
func (s *Server) AuditDigests(start, n int, dst []uint64) []uint64 {
	if s.tiles == nil {
		return dst
	}
	return s.tiles.DigestRange(s.mem.(screenSurface).Screen(), start, n, dst)
}

// AuditOverlayTile reports whether tile i overlaps an active video
// overlay. The server screen never holds video pixels — the client
// composites frames locally — so such tiles legitimately differ and
// the auditor must skip them rather than "repair" live video.
func (s *Server) AuditOverlayTile(i int) bool {
	if s.tiles == nil {
		return false
	}
	r := s.tiles.Grid().Rect(i)
	for _, st := range s.streams {
		if !st.Dst.Intersect(r).Empty() {
			return true
		}
	}
	return false
}

// AuditEligible reports whether the client is in a state where its
// framebuffer should byte-match the server screen once its queue
// drains: settled at the lossless rung (audits are deferred across the
// lossy rungs until the repair refresh lands) and unscaled (a scaled
// viewport never byte-matches the session framebuffer).
func (c *Client) AuditEligible() bool {
	return c.degrade == overload.RungLossless && !c.Scaled()
}

// RepairTiles queues a targeted RAW repaint of each listed tile to the
// client, reading the *current* screen content. Riding the normal add
// path lets overwrite eviction clip any queued command the repair
// supersedes, so SRSF reordering cannot resurrect stale bytes. Returns
// the repaired payload bytes (uncompressed).
func (s *Server) RepairTiles(c *Client, tiles []int) int {
	if s.tiles == nil || s.mem == nil {
		return 0
	}
	g := s.tiles.Grid()
	total := 0
	for _, i := range tiles {
		if i < 0 || i >= g.Tiles() {
			continue
		}
		r := g.Rect(i)
		if r.Empty() {
			continue
		}
		pix := s.mem.ReadPixels(driver.Screen, r)
		c.add(NewRaw(r, pix, r.W(), false, s.opts.RawCodec))
		total += r.Area() * 4
	}
	return total
}

// AuditState is the per-client audit cursor. It lives on the retained
// core.Client, so — like the degradation rung — it rides the session
// across reattach: a legacy verdict or an in-flight escalation is not
// forgotten when the transport drops.
type AuditState struct {
	// Seq numbers probes on this client; replies echo it.
	Seq uint32
	// Cursor is the next tile index of the rotating sampled window.
	Cursor int
	// Legacy is set once the peer has proven it will never answer a
	// probe (a v2/v3 client); the server stops probing it entirely.
	Legacy bool
	// Misses counts consecutive probes that timed out unanswered.
	Misses int
	// EverReplied records that the peer answered at least once, which
	// separates "legacy peer" from "live peer under duress".
	EverReplied bool
	// Sweeping marks an escalated full sweep in progress; SweepPos is
	// the next tile to probe and SweepBad accumulates its mismatches.
	Sweeping bool
	SweepPos int
	SweepBad int
}

// Audit returns the client's audit state (always non-nil).
func (c *Client) Audit() *AuditState { return &c.audit }

// ResetSweep clears an in-progress escalation sweep.
func (a *AuditState) ResetSweep() {
	a.Sweeping = false
	a.SweepPos = 0
	a.SweepBad = 0
}
