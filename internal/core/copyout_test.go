package core

import (
	"math/rand"
	"testing"

	"thinc/internal/compress"
	"thinc/internal/fb"
	"thinc/internal/geom"
	"thinc/internal/pixel"
)

// TestCopyOutPropertyReproducesPixels is the focused §4.1 property: for
// a random command history on an offscreen surface, executing the
// CopyOut result (fallback pixels first, then the clones) against a
// destination must reproduce the surface's src rectangle exactly.
func TestCopyOutPropertyReproducesPixels(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		const w, h = 48, 48
		surface := fb.New(w, h) // the pixmap's rendered content
		var q Queue

		apply := func(c Command) {
			// Render onto the surface exactly as the window system would,
			// then track in the queue.
			switch v := c.(type) {
			case *FillCmd:
				surface.FillSolid(v.Bounds(), v.Color)
			case *TileCmd:
				surface.FillTileAnchored(v.Bounds(), v.Tile,
					v.Anchor.X, v.Anchor.Y)
			case *RawCmd:
				if v.Blend {
					surface.CompositeOver(v.Bounds(), v.Pix, v.Bounds().W())
				} else {
					surface.PutImage(v.Bounds(), v.Pix, v.Bounds().W())
				}
			case *BitmapCmd:
				surface.FillBitmap(v.Rect, v.Bits, v.Fg, v.Bg, v.Transparent)
			}
			q.Add(c)
		}

		// The window system always hands the driver rects clipped to the
		// surface; mirror that here.
		randRect := func() geom.Rect {
			r := geom.XYWH(rnd.Intn(40), rnd.Intn(40), 1+rnd.Intn(16), 1+rnd.Intn(16))
			return r.Intersect(geom.XYWH(0, 0, w, h))
		}
		for op := 0; op < 25; op++ {
			r := randRect()
			switch rnd.Intn(4) {
			case 0:
				apply(NewFill(r, pixel.RGB(uint8(rnd.Intn(256)), uint8(rnd.Intn(256)), 0)))
			case 1:
				pix := make([]pixel.ARGB, r.Area())
				for i := range pix {
					pix[i] = pixel.RGB(uint8(i), uint8(op), uint8(seed))
				}
				apply(NewRaw(r, pix, r.W(), false, compress.CodecNone))
			case 2:
				bm := fb.NewBitmap(r.W(), r.H())
				for i := 0; i < r.Area()/3; i++ {
					bm.SetBit(rnd.Intn(r.W()), rnd.Intn(r.H()), true)
				}
				apply(NewBitmap(r, bm, pixel.RGB(255, 255, 255), pixel.RGB(0, 0, 0), rnd.Intn(2) == 0))
			case 3:
				pix := make([]pixel.ARGB, r.Area())
				for i := range pix {
					pix[i] = pixel.PackARGB(uint8(rnd.Intn(256)), 200, 50, uint8(i))
				}
				apply(NewRaw(r, pix, r.W(), true, compress.CodecNone))
			}
		}

		src := geom.XYWH(rnd.Intn(24), rnd.Intn(24), 8+rnd.Intn(24), 8+rnd.Intn(24)).
			Intersect(geom.XYWH(0, 0, w, h))
		clones, fallback := q.CopyOut(src)

		// Execute onto a fresh destination with unrelated prior content.
		dst := fb.New(w, h)
		dst.FillSolid(dst.Bounds(), pixel.RGB(123, 45, 67))
		for _, fr := range fallback.Rects() {
			dst.PutImage(fr, surface.ReadImage(fr), fr.W())
		}
		for _, c := range clones {
			switch v := c.(type) {
			case *FillCmd:
				for _, r := range v.Live().Rects() {
					dst.FillSolid(r, v.Color)
				}
			case *TileCmd:
				for _, r := range v.Live().Rects() {
					dst.FillTileAnchored(r, v.Tile, v.Anchor.X, v.Anchor.Y)
				}
			case *RawCmd:
				for _, r := range v.Live().Rects() {
					sub := v.subPixels(r)
					if v.Blend {
						dst.CompositeOver(r, sub, r.W())
					} else {
						dst.PutImage(r, sub, r.W())
					}
				}
			case *BitmapCmd:
				dst.FillBitmap(v.Rect, v.Bits, v.Fg, v.Bg, v.Transparent)
			}
		}

		if !dst.EqualIn(surface, src) {
			t.Fatalf("seed %d: CopyOut replay diverged in %v", seed, src)
		}
	}
}
