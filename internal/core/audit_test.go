package core_test

import (
	"testing"

	"thinc/internal/core"
	"thinc/internal/geom"
	"thinc/internal/overload"
	"thinc/internal/pixel"
	"thinc/internal/xserver"
)

// clientDigests computes the client-side view of the audit window: the
// client framebuffer tiled with the same grid, digested the same way.
func clientDigests(h *harness, start, n int) []uint64 {
	g := h.srv.AuditGrid()
	out := make([]uint64, 0, n)
	for i := start; i < start+n && i < g.Tiles(); i++ {
		out = append(out, h.dst.FB().DigestRect(g.Rect(i)))
	}
	return out
}

func auditHarness(t *testing.T) *harness {
	// 128x96 with 32px tiles: a 4x3 grid, 12 tiles.
	return newHarness(t, 128, 96, core.Options{AuditTileSize: 32})
}

func TestAuditDigestsTrackDrawing(t *testing.T) {
	h := auditHarness(t)
	if !h.srv.AuditSupported() {
		t.Fatal("xserver-backed core must support auditing")
	}
	g := h.srv.AuditGrid()
	if g.Tiles() != 12 {
		t.Fatalf("grid = %+v, want 12 tiles", g)
	}

	check := func(context string) {
		t.Helper()
		want := clientDigests(h, 0, g.Tiles())
		got := h.srv.AuditDigests(0, g.Tiles(), nil)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: tile %d: server digest %#x, client %#x",
					context, i, got[i], want[i])
			}
		}
	}
	check("after attach sync")

	// Draw through every translated path; the index must follow.
	w := h.dpy.CreateWindow(geom.XYWH(0, 0, 128, 96))
	h.dpy.FillRect(w, &xserver.GC{Fg: pixel.RGB(10, 200, 30)}, geom.XYWH(5, 5, 60, 40))
	h.dpy.CopyArea(w, w, geom.XYWH(0, 0, 40, 40), geom.Point{X: 80, Y: 50})
	h.dpy.PutImage(w, geom.XYWH(30, 60, 20, 15), mkImagePix(geom.XYWH(0, 0, 20, 15), 7), 20)
	h.sync(t)
	check("after drawing")
}

func TestAuditRepairTiles(t *testing.T) {
	h := auditHarness(t)
	g := h.srv.AuditGrid()
	w := h.dpy.CreateWindow(geom.XYWH(0, 0, 128, 96))
	h.dpy.FillRect(w, &xserver.GC{Fg: pixel.RGB(77, 88, 99)}, geom.XYWH(0, 0, 128, 96))
	h.sync(t)
	h.verify(t, "pre-corruption")

	// Silently corrupt two client tiles — past the decoder, invisible to
	// the transport. The audit comparison must localize exactly them.
	for _, i := range []int{1, 7} {
		r := g.Rect(i)
		p := h.dst.FB().At(r.X0, r.Y0)
		h.dst.FB().Set(r.X0, r.Y0, p^0x00000100)
	}
	want := h.srv.AuditDigests(0, g.Tiles(), nil)
	got := clientDigests(h, 0, g.Tiles())
	var bad []int
	for i := range want {
		if want[i] != got[i] {
			bad = append(bad, i)
		}
	}
	if len(bad) != 2 || bad[0] != 1 || bad[1] != 7 {
		t.Fatalf("mismatched tiles = %v, want [1 7]", bad)
	}

	// Targeted repair heals only those tiles and converges byte-exact.
	repaired := h.srv.RepairTiles(h.cl, bad)
	if wantBytes := 2 * 32 * 32 * 4; repaired != wantBytes {
		t.Fatalf("repaired %d bytes, want %d", repaired, wantBytes)
	}
	h.sync(t)
	h.verify(t, "post-repair")
}

// TestAuditRepairSupersedesQueuedCommands pins the ordering argument:
// a repair RAW reads the *current* screen, which already includes the
// effect of every queued-but-unflushed command, and riding the normal
// add path lets overwrite eviction clip what it supersedes — so a
// repair can never resurrect stale bytes however SRSF reorders.
func TestAuditRepairSupersedesQueuedCommands(t *testing.T) {
	h := auditHarness(t)
	w := h.dpy.CreateWindow(geom.XYWH(0, 0, 128, 96))
	// Queue (do not flush) a draw, then repair the tiles it covers.
	h.dpy.FillRect(w, &xserver.GC{Fg: pixel.RGB(200, 10, 10)}, geom.XYWH(0, 0, 64, 64))
	h.srv.RepairTiles(h.cl, []int{0, 1, 4, 5})
	h.sync(t)
	h.verify(t, "repair over queued draw")
}

func TestAuditOverlayTile(t *testing.T) {
	h := auditHarness(t)
	port := h.dpy.CreateVideoPort(32, 24, geom.XYWH(64, 32, 48, 32))
	defer port.Close()
	g := h.srv.AuditGrid()
	overlap := 0
	for i := 0; i < g.Tiles(); i++ {
		r := g.Rect(i)
		over := !r.Intersect(geom.XYWH(64, 32, 48, 32)).Empty()
		if h.srv.AuditOverlayTile(i) != over {
			t.Errorf("tile %d overlay flag = %v, want %v", i, !over, over)
		}
		if over {
			overlap++
		}
	}
	if overlap == 0 {
		t.Fatal("video dst overlaps no tiles; test geometry is wrong")
	}
}

func TestAuditEligibility(t *testing.T) {
	h := auditHarness(t)
	if !h.cl.AuditEligible() {
		t.Fatal("fresh lossless unscaled client must be eligible")
	}
	h.cl.SetDegrade(overload.RungCompress)
	if h.cl.AuditEligible() {
		t.Error("lossy-rung client must not be eligible (audit deferral)")
	}
	h.cl.SetDegrade(overload.RungLossless)
	scaled := h.srv.AttachClient(64, 48)
	if scaled.AuditEligible() {
		t.Error("scaled client must not be eligible")
	}
}

func TestAuditStateRidesReattach(t *testing.T) {
	h := auditHarness(t)
	a := h.cl.Audit()
	a.Legacy = true
	a.Seq = 42
	h.srv.DetachClient(h.cl)
	h.srv.ReattachClient(h.cl, 128, 96)
	if !h.cl.Audit().Legacy || h.cl.Audit().Seq != 42 {
		t.Fatal("audit state did not survive detach/reattach")
	}
	a.Sweeping, a.SweepPos, a.SweepBad = true, 5, 3
	a.ResetSweep()
	if a.Sweeping || a.SweepPos != 0 || a.SweepBad != 0 {
		t.Fatal("ResetSweep left residue")
	}
}

func TestAuditUnsupportedMemory(t *testing.T) {
	// A core whose Memory cannot expose the screen (or that was never
	// initialized) must degrade to "no auditing" without panicking.
	srv := core.NewServer(core.Options{})
	if srv.AuditSupported() {
		t.Fatal("uninitialized core claims audit support")
	}
	if g := srv.AuditGrid(); g.Tiles() != 0 {
		t.Fatalf("unsupported grid = %+v", g)
	}
	if d := srv.AuditDigests(0, 4, nil); len(d) != 0 {
		t.Fatalf("unsupported digests = %v", d)
	}
	if srv.AuditOverlayTile(0) {
		t.Fatal("unsupported overlay check returned true")
	}
	c := srv.AttachClient(64, 48)
	if n := srv.RepairTiles(c, []int{0}); n != 0 {
		t.Fatalf("unsupported repair returned %d bytes", n)
	}
}
