package core_test

import (
	"math/rand"
	"testing"

	"thinc/internal/client"
	"thinc/internal/core"
	"thinc/internal/fb"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/wire"
	"thinc/internal/xserver"
)

// harness wires a window system to a THINC server core and one client,
// the full §3 pipeline in-process.
type harness struct {
	srv *core.Server
	dpy *xserver.Display
	cl  *core.Client
	dst *client.Client
}

func newHarness(t *testing.T, w, h int, opts core.Options) *harness {
	t.Helper()
	srv := core.NewServer(opts)
	dpy := xserver.NewDisplay(w, h, srv)
	cl := srv.AttachClient(w, h)
	dst := client.New(w, h)
	hr := &harness{srv: srv, dpy: dpy, cl: cl, dst: dst}
	hr.sync(t) // drain the initial full-screen refresh
	return hr
}

// sync flushes everything to the client and asserts success.
func (h *harness) sync(t *testing.T) {
	t.Helper()
	if err := h.dst.ApplyAll(h.cl.FlushAll()); err != nil {
		t.Fatalf("client apply: %v", err)
	}
}

// verify asserts the client framebuffer matches the server screen.
func (h *harness) verify(t *testing.T, context string) {
	t.Helper()
	if !h.dst.FB().Equal(h.dpy.Screen()) {
		d := h.dst.FB().DiffRegion(h.dpy.Screen())
		t.Fatalf("%s: client diverged from server screen: diff %v (area %d)",
			context, d.Bounds(), d.Area())
	}
}

func TestEndToEndBasicDrawing(t *testing.T) {
	h := newHarness(t, 128, 96, core.Options{})
	w := h.dpy.CreateWindow(geom.XYWH(0, 0, 128, 96))
	gc := &xserver.GC{Fg: pixel.RGB(30, 60, 90)}

	h.dpy.FillRect(w, gc, geom.XYWH(10, 10, 50, 40))
	h.dpy.DrawText(w, &xserver.GC{Fg: pixel.RGB(255, 255, 255)}, 12, 12, "hello thin world")
	tile := fb.NewTile(4, 4, mkTilePix(4, 4))
	h.dpy.TileRect(w, tile, geom.XYWH(60, 50, 40, 30))
	img := mkImagePix(geom.XYWH(0, 0, 20, 15), 3)
	h.dpy.PutImage(w, geom.XYWH(100, 70, 20, 15), img, 20)

	h.sync(t)
	h.verify(t, "basic drawing")
}

func TestEndToEndScroll(t *testing.T) {
	h := newHarness(t, 64, 64, core.Options{})
	w := h.dpy.CreateWindow(geom.XYWH(0, 0, 64, 64))
	for y := 0; y < 64; y += 8 {
		h.dpy.FillRect(w, &xserver.GC{Fg: pixel.RGB(uint8(y*3), 0, 128)}, geom.XYWH(0, y, 64, 8))
	}
	h.sync(t)
	// Scroll up by 8 and draw a new bottom stripe.
	h.dpy.CopyArea(w, w, geom.XYWH(0, 8, 64, 56), geom.Point{X: 0, Y: 0})
	h.dpy.FillRect(w, &xserver.GC{Fg: pixel.RGB(1, 2, 3)}, geom.XYWH(0, 56, 64, 8))
	h.sync(t)
	h.verify(t, "scroll")
}

func TestEndToEndOffscreenDoubleBuffer(t *testing.T) {
	// The Mozilla pattern: render the page into a pixmap, then copy it
	// onscreen. With offscreen awareness the client must converge to the
	// same pixels — via semantic commands, not raw.
	h := newHarness(t, 128, 128, core.Options{})
	w := h.dpy.CreateWindow(geom.XYWH(0, 0, 128, 128))
	pm := h.dpy.CreatePixmap(100, 100)

	h.dpy.FillRect(pm, &xserver.GC{Fg: pixel.RGB(250, 250, 250)}, pm.Bounds())
	h.dpy.DrawText(pm, &xserver.GC{Fg: pixel.RGB(0, 0, 0)}, 4, 4, "offscreen page")
	tile := fb.NewTile(8, 8, mkTilePix(8, 8))
	h.dpy.TileRect(pm, tile, geom.XYWH(0, 60, 100, 40))

	h.dpy.CopyArea(w, pm, pm.Bounds(), geom.Point{X: 14, Y: 14})
	h.sync(t)
	h.verify(t, "offscreen flip")

	if h.srv.Stats.OffscreenExecs != 1 {
		t.Errorf("offscreen executions = %d, want 1", h.srv.Stats.OffscreenExecs)
	}
	// The flip must have produced semantic commands (SFILL/PFILL), not
	// just a raw screen scrape.
	st := h.dst.Stats()
	if st.Messages[6]+st.Messages[4] == 0 { // TPFill or TSFill... checked below properly
		t.Logf("message mix: %v", st.Messages)
	}
}

func TestEndToEndOffscreenHierarchy(t *testing.T) {
	// Small pixmaps composed into a larger one, then presented (§4.1).
	h := newHarness(t, 128, 128, core.Options{})
	w := h.dpy.CreateWindow(geom.XYWH(0, 0, 128, 128))

	button := h.dpy.CreatePixmap(24, 12)
	h.dpy.FillRect(button, &xserver.GC{Fg: pixel.RGB(200, 200, 220)}, button.Bounds())
	h.dpy.DrawText(button, &xserver.GC{Fg: pixel.RGB(0, 0, 0)}, 2, 1, "ok")

	page := h.dpy.CreatePixmap(100, 100)
	h.dpy.FillRect(page, &xserver.GC{Fg: pixel.RGB(255, 255, 255)}, page.Bounds())
	// Reuse the button twice — commands must be copied, not moved.
	h.dpy.CopyArea(page, button, button.Bounds(), geom.Point{X: 10, Y: 10})
	h.dpy.CopyArea(page, button, button.Bounds(), geom.Point{X: 10, Y: 40})

	h.dpy.CopyArea(w, page, page.Bounds(), geom.Point{X: 5, Y: 5})
	h.sync(t)
	h.verify(t, "offscreen hierarchy")
}

func TestEndToEndOffscreenDisabledStillCorrect(t *testing.T) {
	// Sun Ray mode: no offscreen tracking. Correctness must hold (via
	// RAW fallback), only efficiency differs.
	h := newHarness(t, 96, 96, core.Options{DisableOffscreen: true})
	w := h.dpy.CreateWindow(geom.XYWH(0, 0, 96, 96))
	pm := h.dpy.CreatePixmap(50, 50)
	h.dpy.FillRect(pm, &xserver.GC{Fg: pixel.RGB(10, 200, 10)}, pm.Bounds())
	h.dpy.DrawText(pm, &xserver.GC{Fg: pixel.RGB(0, 0, 0)}, 2, 2, "raw")
	h.dpy.CopyArea(w, pm, pm.Bounds(), geom.Point{X: 20, Y: 20})
	h.sync(t)
	h.verify(t, "offscreen disabled")
	if h.srv.Stats.RawFallbacks == 0 {
		t.Error("disabled offscreen should fall back to RAW")
	}
}

func TestEndToEndVideoPlayback(t *testing.T) {
	h := newHarness(t, 160, 120, core.Options{})
	vp := h.dpy.CreateVideoPort(32, 24, geom.XYWH(0, 0, 160, 120))
	for i := 0; i < 5; i++ {
		pix := make([]pixel.ARGB, 32*24)
		for j := range pix {
			pix[j] = pixel.RGB(uint8(40*i), 100, uint8(255-40*i))
		}
		vp.PutFrame(pixel.EncodeYV12(pix, 32, 32, 24), uint64(i)*41667)
		h.sync(t)
	}
	h.verify(t, "video playback")
	if h.dst.Stats().FramesShown != 5 {
		t.Errorf("frames shown = %d, want 5", h.dst.Stats().FramesShown)
	}
	vp.Close()
	h.sync(t)
	if h.dst.ActiveStreams() != 0 {
		t.Error("stream not torn down")
	}
}

func TestEndToEndVideoFrameDropUnderBackpressure(t *testing.T) {
	h := newHarness(t, 160, 120, core.Options{})
	vp := h.dpy.CreateVideoPort(32, 24, geom.XYWH(0, 0, 160, 120))
	// Push 10 frames without flushing: only the newest survives.
	var last *pixel.YV12Image
	for i := 0; i < 10; i++ {
		pix := make([]pixel.ARGB, 32*24)
		for j := range pix {
			pix[j] = pixel.RGB(uint8(25*i), 0, 0)
		}
		last = pixel.EncodeYV12(pix, 32, 32, 24)
		vp.PutFrame(last, uint64(i))
	}
	st := h.srv.Stream(vp.Stream())
	if st.FramesDropped != 9 {
		t.Fatalf("dropped %d, want 9", st.FramesDropped)
	}
	h.sync(t)
	h.verify(t, "video backpressure")
	if h.dst.Stats().FramesShown != 1 {
		t.Errorf("client showed %d frames, want 1", h.dst.Stats().FramesShown)
	}
}

func TestEndToEndMultiClientScreenShare(t *testing.T) {
	h := newHarness(t, 64, 64, core.Options{})
	// Second client joins mid-session.
	w := h.dpy.CreateWindow(geom.XYWH(0, 0, 64, 64))
	h.dpy.FillRect(w, &xserver.GC{Fg: pixel.RGB(77, 88, 99)}, geom.XYWH(0, 0, 32, 32))
	h.sync(t)

	cl2 := h.srv.AttachClient(64, 64)
	dst2 := client.New(64, 64)
	if err := dst2.ApplyAll(cl2.FlushAll()); err != nil {
		t.Fatal(err)
	}
	if !dst2.FB().Equal(h.dpy.Screen()) {
		t.Fatal("late joiner did not receive current screen")
	}

	// Both clients track subsequent drawing.
	h.dpy.FillRect(w, &xserver.GC{Fg: pixel.RGB(1, 2, 3)}, geom.XYWH(32, 32, 32, 32))
	h.sync(t)
	if err := dst2.ApplyAll(cl2.FlushAll()); err != nil {
		t.Fatal(err)
	}
	h.verify(t, "client 1")
	if !dst2.FB().Equal(h.dpy.Screen()) {
		t.Fatal("client 2 diverged")
	}
}

func TestEndToEndSplitFlushConverges(t *testing.T) {
	// Tiny flush budgets (congested network): the client must still
	// converge to the exact screen.
	h := newHarness(t, 96, 96, core.Options{})
	w := h.dpy.CreateWindow(geom.XYWH(0, 0, 96, 96))
	img := mkImagePix(geom.XYWH(0, 0, 96, 96), 9)
	h.dpy.PutImage(w, geom.XYWH(0, 0, 96, 96), img, 96)
	h.dpy.FillRect(w, &xserver.GC{Fg: pixel.RGB(5, 5, 5)}, geom.XYWH(40, 40, 16, 16))

	for i := 0; i < 1000 && h.cl.Buf.Len() > 0; i++ {
		if err := h.dst.ApplyAll(h.cl.Flush(2048)); err != nil {
			t.Fatal(err)
		}
	}
	if h.cl.Buf.Len() != 0 {
		t.Fatal("buffer did not drain under small budgets")
	}
	h.verify(t, "split flush")
}

// TestEndToEndRandomWorkloadProperty is the system-level correctness
// property: any interleaving of window/pixmap drawing, text, copies,
// scrolls, and offscreen flips must leave the client pixel-identical to
// the server screen once flushed.
func TestEndToEndRandomWorkloadProperty(t *testing.T) {
	for _, disableOff := range []bool{false, true} {
		for seed := int64(0); seed < 40; seed++ {
			h := newHarness(t, 96, 96, core.Options{DisableOffscreen: disableOff})
			rnd := rand.New(rand.NewSource(seed))
			w := h.dpy.CreateWindow(geom.XYWH(0, 0, 96, 96))
			floater := h.dpy.CreateWindow(geom.XYWH(10, 10, 24, 18))
			var pixmaps []*xserver.Pixmap
			for i := 0; i < 3; i++ {
				pixmaps = append(pixmaps, h.dpy.CreatePixmap(20+rnd.Intn(30), 20+rnd.Intn(30)))
			}
			randRect := func(max int) geom.Rect {
				return geom.XYWH(rnd.Intn(max), rnd.Intn(max), 1+rnd.Intn(max/2), 1+rnd.Intn(max/2))
			}
			for op := 0; op < 100; op++ {
				var target xserver.Drawable = w
				if rnd.Intn(3) == 0 {
					target = pixmaps[rnd.Intn(len(pixmaps))]
				}
				gc := &xserver.GC{
					Fg: pixel.RGB(uint8(rnd.Intn(256)), uint8(rnd.Intn(256)), uint8(rnd.Intn(256))),
					Bg: pixel.RGB(uint8(rnd.Intn(256)), uint8(rnd.Intn(256)), uint8(rnd.Intn(256))),
				}
				if rnd.Intn(12) == 0 {
					// Opaque window movement (§3's COPY showcase).
					h.dpy.MoveWindow(floater, geom.Point{X: rnd.Intn(70), Y: rnd.Intn(70)},
						pixel.RGB(uint8(seed), 40, 40))
				}
				switch rnd.Intn(7) {
				case 0:
					h.dpy.FillRect(target, gc, randRect(60))
				case 1:
					tw, th := 1+rnd.Intn(6), 1+rnd.Intn(6)
					h.dpy.TileRect(target, fb.NewTile(tw, th, mkTilePix(tw, th)), randRect(60))
				case 2:
					h.dpy.DrawText(target, gc, rnd.Intn(60), rnd.Intn(60), "xy zw")
				case 3:
					r := randRect(40)
					h.dpy.PutImageScanlines(target, r, mkImagePix(r, uint8(op)), r.W())
				case 4:
					r := randRect(30)
					img := mkImagePix(r, uint8(op))
					for j := range img {
						img[j] = pixel.PackARGB(uint8(rnd.Intn(256)), img[j].R(), img[j].G(), img[j].B())
					}
					h.dpy.Composite(target, r, img, r.W())
				case 5:
					// Window scroll.
					h.dpy.CopyArea(w, w, randRect(70), geom.Point{X: rnd.Intn(60), Y: rnd.Intn(60)})
				case 6:
					// Offscreen flip or pixmap-to-pixmap compose.
					src := pixmaps[rnd.Intn(len(pixmaps))]
					if rnd.Intn(2) == 0 {
						h.dpy.CopyArea(w, src, src.Bounds(), geom.Point{X: rnd.Intn(70), Y: rnd.Intn(70)})
					} else {
						dst := pixmaps[rnd.Intn(len(pixmaps))]
						if dst != src {
							h.dpy.CopyArea(dst, src, randRect(18), geom.Point{X: rnd.Intn(10), Y: rnd.Intn(10)})
						}
					}
				}
				if rnd.Intn(10) == 0 {
					h.sync(t)
				}
			}
			h.sync(t)
			if !h.dst.FB().Equal(h.dpy.Screen()) {
				d := h.dst.FB().DiffRegion(h.dpy.Screen())
				t.Fatalf("seed %d (offscreen disabled=%v): diverged, diff %v area %d",
					seed, disableOff, d.Bounds(), d.Area())
			}
		}
	}
}

func mkTilePix(w, h int) []pixel.ARGB {
	pix := make([]pixel.ARGB, w*h)
	for i := range pix {
		pix[i] = pixel.RGB(uint8(i*37), uint8(i*59), uint8(i*83))
	}
	return pix
}

func mkImagePix(r geom.Rect, seed uint8) []pixel.ARGB {
	pix := make([]pixel.ARGB, r.Area())
	for i := range pix {
		pix[i] = pixel.RGB(seed, uint8(i), uint8(i>>6))
	}
	return pix
}

func TestEndToEndCursor(t *testing.T) {
	h := newHarness(t, 96, 96, core.Options{})
	cur := make([]pixel.ARGB, 8*8)
	for i := range cur {
		cur[i] = pixel.PackARGB(200, 255, 255, 255)
	}
	h.dpy.SetCursor(cur, 8, 8, geom.Point{X: 1, Y: 1})
	h.dpy.MoveCursor(geom.Point{X: 40, Y: 40})
	h.sync(t)
	if !h.dst.HasCursor() {
		t.Fatal("cursor image not delivered")
	}
	if h.dst.CursorPos() != (geom.Point{X: 40, Y: 40}) {
		t.Fatalf("cursor at %v", h.dst.CursorPos())
	}
	// The framebuffer itself is untouched (hardware overlay semantics).
	h.verify(t, "cursor overlay")
	// Composition shows the cursor.
	composed := h.dst.ComposeCursor()
	if composed.Equal(h.dst.FB()) {
		t.Fatal("composed view should differ where the cursor sits")
	}

	// Unsent moves supersede: queue many moves without flushing, then
	// count deliveries.
	before := h.dst.Stats().Messages[wire.TCursorMove]
	for i := 0; i < 20; i++ {
		h.dpy.MoveCursor(geom.Point{X: i, Y: i})
	}
	h.sync(t)
	delivered := h.dst.Stats().Messages[wire.TCursorMove] - before
	if delivered != 1 {
		t.Fatalf("%d cursor moves delivered, want 1 (replacement)", delivered)
	}
	if h.dst.CursorPos() != (geom.Point{X: 19, Y: 19}) {
		t.Fatalf("final cursor pos %v", h.dst.CursorPos())
	}
}

func TestCursorIsRealtime(t *testing.T) {
	h := newHarness(t, 96, 96, core.Options{})
	w := h.dpy.CreateWindow(geom.XYWH(0, 0, 96, 96))
	// A large raw queued first, then a cursor move: the move must be
	// delivered in the first flush batch, ahead of the raw.
	img := mkImagePix(geom.XYWH(0, 0, 96, 96), 1)
	h.dpy.PutImage(w, geom.XYWH(0, 0, 96, 96), img, 96)
	h.dpy.MoveCursor(geom.Point{X: 5, Y: 5})
	msgs := h.cl.Flush(1 << 30)
	if len(msgs) == 0 {
		t.Fatal("no messages")
	}
	if _, ok := msgs[0].(*wire.CursorMove); !ok {
		t.Fatalf("first message %T, want cursor move (real-time)", msgs[0])
	}
	if err := h.dst.ApplyAll(msgs); err != nil {
		t.Fatal(err)
	}
	h.verify(t, "cursor realtime")
}

func TestCursorScaledClient(t *testing.T) {
	srv := core.NewServer(core.Options{})
	dpy := xserver.NewDisplay(128, 96, srv)
	cl := srv.AttachClient(32, 24)
	dst := client.New(32, 24)
	if err := dst.ApplyAll(cl.FlushAll()); err != nil {
		t.Fatal(err)
	}
	cur := make([]pixel.ARGB, 16*16)
	for i := range cur {
		cur[i] = pixel.RGB(255, 0, 0)
	}
	dpy.SetCursor(cur, 16, 16, geom.Point{})
	dpy.MoveCursor(geom.Point{X: 64, Y: 48})
	if err := dst.ApplyAll(cl.FlushAll()); err != nil {
		t.Fatal(err)
	}
	// Position scales by the viewport ratio.
	if dst.CursorPos() != (geom.Point{X: 16, Y: 12}) {
		t.Fatalf("scaled cursor pos %v, want (16,12)", dst.CursorPos())
	}
	if !dst.HasCursor() {
		t.Fatal("scaled cursor image missing")
	}
}

func TestLateJoinerGetsCursor(t *testing.T) {
	h := newHarness(t, 64, 64, core.Options{})
	cur := make([]pixel.ARGB, 4*4)
	for i := range cur {
		cur[i] = pixel.RGB(255, 255, 255)
	}
	h.dpy.SetCursor(cur, 4, 4, geom.Point{})
	h.dpy.MoveCursor(geom.Point{X: 10, Y: 20})
	h.sync(t)

	late := h.srv.AttachClient(64, 64)
	dst2 := client.New(64, 64)
	if err := dst2.ApplyAll(late.FlushAll()); err != nil {
		t.Fatal(err)
	}
	if !dst2.HasCursor() {
		t.Fatal("late joiner missing cursor image")
	}
	if dst2.CursorPos() != (geom.Point{X: 10, Y: 20}) {
		t.Fatalf("late joiner cursor at %v", dst2.CursorPos())
	}
}
