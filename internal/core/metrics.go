package core

import (
	"thinc/internal/telemetry"
)

// Metrics is the instrument bundle for the translation layer (§4) and
// the SRSF scheduler (§5). One bundle serves a whole core.Server: the
// per-client buffers it creates share the counters, so the series
// describe the session's aggregate command path. All instruments are
// pre-registered; the hot paths only perform atomic increments.
//
// Trace, when non-nil and enabled, receives command-path events
// (eviction sweeps, RAW splits, buffer clears); every emit site gates
// on Trace.Enabled() so disabled tracing costs one atomic load.
type Metrics struct {
	Trace *telemetry.Tracer

	// Translation layer.
	onscreenCmds    *telemetry.Counter
	offscreenCmds   *telemetry.Counter
	offscreenExecs  *telemetry.Counter
	offscreenEvicts *telemetry.Counter
	rawFallbacks    *telemetry.Counter

	// Session fan-out (translate once, deliver N).
	fanoutDeliveries  *telemetry.Counter
	fanoutSharedBytes *telemetry.Counter

	// Content-addressed payload cache (wire v6).
	cacheHits       *telemetry.Counter
	cacheStores     *telemetry.Counter
	cacheMisses     *telemetry.Counter
	cacheSavedBytes *telemetry.Counter

	// Scheduler / command buffer.
	queuedByClass [3]*telemetry.Counter
	merged        *telemetry.Counter
	evicted       *telemetry.Counter
	frameDrops    *telemetry.Counter
	sent          *telemetry.Counter
	splits        *telemetry.Counter
	rtPromotions  *telemetry.Counter
	bufferClears  *telemetry.Counter
	budgetEvicted *telemetry.Counter
	budgetSweeps  *telemetry.Counter
	overshoots    *telemetry.Counter
	bytesSent     *telemetry.Counter
	cmdSize       *telemetry.Histogram
	flushBytes    *telemetry.Histogram
	queueWait     *telemetry.Histogram
	queueLatNS    *telemetry.Histogram
}

// NewMetrics registers the core instrument bundle into reg. A nil reg
// gets a private, never-rendered registry, so instruments are always
// live and hot paths never nil-check.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	m := &Metrics{
		onscreenCmds: reg.Counter("thinc_translate_commands_total",
			"translated commands by destination", telemetry.L("dest", "screen")),
		offscreenCmds: reg.Counter("thinc_translate_commands_total",
			"translated commands by destination", telemetry.L("dest", "offscreen")),
		offscreenExecs: reg.Counter("thinc_translate_offscreen_execs_total",
			"offscreen queues executed on copy-to-screen"),
		offscreenEvicts: reg.Counter("thinc_translate_offscreen_evicted_total",
			"commands evicted inside offscreen queues"),
		rawFallbacks: reg.Counter("thinc_translate_raw_fallbacks_total",
			"operations degraded to raw pixel transfers"),
		fanoutDeliveries: reg.Counter("thinc_fanout_deliveries_total",
			"per-client deliveries produced by translate-once fan-out"),
		fanoutSharedBytes: reg.Counter("thinc_fanout_shared_bytes_total",
			"payload bytes shared across fan-out clones instead of copied"),
		cacheHits: reg.Counter("thinc_cache_hits_total",
			"cache-eligible payloads delivered as CACHE_PAINT references"),
		cacheStores: reg.Counter("thinc_cache_stores_total",
			"payload first appearances delivered as CACHE_STORE"),
		cacheMisses: reg.Counter("thinc_cache_misses_total",
			"client CACHE_MISS desync reports handled"),
		cacheSavedBytes: reg.Counter("thinc_cache_saved_bytes_total",
			"wire bytes avoided by delivering cache hits as paint references"),
		merged: reg.Counter("thinc_sched_commands_merged_total",
			"commands absorbed into a buffered predecessor"),
		evicted: reg.Counter("thinc_sched_commands_evicted_total",
			"buffered commands dropped by overwrite eviction or clears"),
		frameDrops: reg.Counter("thinc_sched_frame_drops_total",
			"video frames replaced before delivery"),
		sent: reg.Counter("thinc_sched_commands_sent_total",
			"commands fully delivered by the scheduler"),
		splits: reg.Counter("thinc_sched_raw_splits_total",
			"RAW commands broken for non-blocking flush"),
		rtPromotions: reg.Counter("thinc_sched_realtime_promotions_total",
			"commands promoted to the real-time queue"),
		bufferClears: reg.Counter("thinc_sched_buffer_clears_total",
			"whole-buffer discards (slow-client policy, reattach)"),
		budgetEvicted: reg.Counter("thinc_sched_budget_evicted_total",
			"buffered commands replaced by the per-client byte budget"),
		budgetSweeps: reg.Counter("thinc_sched_budget_sweeps_total",
			"eviction-to-RAW sweeps triggered by the per-client byte budget"),
		overshoots: reg.Counter("thinc_sched_budget_overshoots_total",
			"flushes that exceeded their budget to deliver one oversized command"),
		bytesSent: reg.Counter("thinc_sched_bytes_sent_total",
			"wire bytes emitted by the scheduler"),
		cmdSize: reg.Histogram("thinc_sched_command_size_bytes",
			"wire size of commands entering the buffer (bounds match the SRSF queue bounds)",
			telemetry.SizeBuckets),
		flushBytes: reg.Histogram("thinc_sched_flush_bytes",
			"bytes delivered per non-empty flush", telemetry.ByteBuckets),
		queueWait: reg.Histogram("thinc_sched_queue_wait_flushes",
			"flush periods a command waited in the buffer before delivery",
			telemetry.CountBuckets),
		queueLatNS: reg.Histogram("thinc_sched_queue_latency_ns",
			"damage-to-drain wall time per delivered command (the queue stage of the e2e pipeline)",
			telemetry.FineLatencyBucketsNS),
	}
	for cl, name := range map[Class]string{
		Partial: "partial", Complete: "complete", Transparent: "transparent",
	} {
		m.queuedByClass[cl] = reg.Counter("thinc_sched_commands_queued_total",
			"commands accepted into client buffers by overwrite class",
			telemetry.L("class", name))
	}
	return m
}

// nopMetrics serves buffers and servers created without a registry; the
// atomics still tick but are never rendered.
var nopMetrics = NewMetrics(nil)

// QueueLoads sums the current SRSF queue occupancy across every
// attached client: depth[i] commands and bytes[i] remaining wire bytes
// in size queue i, with index NumQueues holding the real-time queue.
// The caller provides synchronization (the core is single-threaded
// under its owner's lock); scrape-time gauges read through this instead
// of paying per-command bookkeeping.
func (s *Server) QueueLoads() (depth, bytes [NumQueues + 1]int64) {
	for c := range s.clients {
		c.Buf.queueLoads(&depth, &bytes)
	}
	return depth, bytes
}

// queueLoads accumulates this buffer's per-queue occupancy.
func (b *ClientBuffer) queueLoads(depth, bytes *[NumQueues + 1]int64) {
	for _, e := range b.entries {
		q := NumQueues // real-time queue
		if !e.realtime {
			q = sizeQueue(e.size)
		}
		depth[q]++
		bytes[q] += int64(e.size)
	}
}
