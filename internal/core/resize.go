package core

import (
	"thinc/internal/compress"
	"thinc/internal/driver"
	"thinc/internal/fb"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/resample"
)

// Server-side screen scaling (§6). When a client's viewport is smaller
// than the session framebuffer, every update is resized *by the server*
// before transmission, cutting both bandwidth and client CPU. Scaling is
// per-command:
//
//   - RAW updates are resampled with the Fant algorithm (anti-aliased).
//   - PFILL tiles are resized and the fill rectangle scaled.
//   - BITMAP updates cannot be resampled as bits without artifacts;
//     they are converted to RAW from the rendered screen and resampled.
//   - SFILL content needs no resampling; only the rectangle is scaled.
//   - COPY is scaled geometrically when the mapping is exact, otherwise
//     it degrades to a RAW snapshot of the scaled destination.
//   - Video frames are resampled to their scaled display size before
//     encoding, which is what makes PDA video cost ~3.5 Mbps instead of
//     24 Mbps in §8.

// scaleRect maps a framebuffer rect into the client's viewport,
// covering every viewport pixel the source touches.
func (c *Client) scaleRect(r geom.Rect) geom.Rect {
	s := c.srv
	x0, y0, x1, y1 := resample.ScaleRect(r.X0, r.Y0, r.X1, r.Y1, s.w, s.h, c.view.W(), c.view.H())
	return geom.Rect{X0: x0, Y0: y0, X1: x1, Y1: y1}
}

// scalePoint maps a framebuffer point into the viewport.
func (c *Client) scalePoint(p geom.Point) geom.Point {
	s := c.srv
	return geom.Point{X: p.X * c.view.W() / s.w, Y: p.Y * c.view.H() / s.h}
}

// exactScale reports whether r maps onto integral viewport pixels, so
// geometric commands (COPY) survive scaling without resampling error.
func (c *Client) exactScale(r geom.Rect) bool {
	s := c.srv
	return (r.X0*c.view.W())%s.w == 0 && (r.X1*c.view.W())%s.w == 0 &&
		(r.Y0*c.view.H())%s.h == 0 && (r.Y1*c.view.H())%s.h == 0
}

// scaleCommand transforms a translated command for a scaled client. It
// may return several commands (a partial command's live region scales
// rect by rect) or an empty slice when the command vanishes at the
// smaller size.
func (s *Server) scaleCommand(cmd Command, c *Client) []Command {
	switch v := cmd.(type) {
	case *FillCmd:
		// SFILL: content is resolution-independent; scale rectangles.
		var out []Command
		for _, r := range v.Live().Rects() {
			if sr := c.scaleRect(r); !sr.Empty() {
				out = append(out, NewFill(sr, v.Color))
			}
		}
		return out

	case *TileCmd:
		// PFILL: resize the tile image, scale the rectangle. A tile
		// scaled below 1x1 degrades to an averaged solid fill.
		tw := max(1, v.Tile.W*c.view.W()/s.w)
		th := max(1, v.Tile.H*c.view.H()/s.h)
		tp := resample.Fant(v.Tile.Pix, v.Tile.W, v.Tile.W, v.Tile.H, tw, th)
		tile := fb.NewTile(tw, th, tp)
		var out []Command
		for _, r := range v.Live().Rects() {
			if sr := c.scaleRect(r); !sr.Empty() {
				out = append(out, NewTile(sr, tile))
			}
		}
		return out

	case *RawCmd:
		// RAW: Fant-resample each live rect.
		var out []Command
		for _, r := range v.Live().Rects() {
			sr := c.scaleRect(r)
			if sr.Empty() {
				continue
			}
			pix := resample.Fant(v.subPixels(r), r.W(), r.W(), r.H(), sr.W(), sr.H())
			out = append(out, NewRaw(sr, pix, sr.W(), v.Blend, smallCodec(sr, v.Codec)))
		}
		return out

	case *BitmapCmd:
		// BITMAP: anti-aliased downscaling needs intermediate pixel
		// values bits cannot represent; convert to RAW from the
		// rendered screen and resample (§6).
		r := v.Rect.Intersect(geom.XYWH(0, 0, s.w, s.h))
		if r.Empty() {
			return nil
		}
		sr := c.scaleRect(r)
		if sr.Empty() {
			return nil
		}
		pix := s.mem.ReadPixels(driver.Screen, r)
		scaled := resample.Fant(pix, r.W(), r.W(), r.H(), sr.W(), sr.H())
		return []Command{NewRaw(sr, scaled, sr.W(), false, smallCodec(sr, s.opts.RawCodec))}

	case *CopyCmd:
		// COPY: exact mappings stay geometric; anything else snapshots
		// the scaled destination.
		if c.exactScale(v.Src) && c.exactScale(v.Bounds()) {
			return []Command{NewCopy(c.scaleRect(v.Src), c.scalePoint(v.Dst))}
		}
		dr := v.Bounds().Intersect(geom.XYWH(0, 0, s.w, s.h))
		if dr.Empty() {
			return nil
		}
		sr := c.scaleRect(dr)
		pix := s.mem.ReadPixels(driver.Screen, dr)
		scaled := resample.Fant(pix, dr.W(), dr.W(), dr.H(), sr.W(), sr.H())
		return []Command{NewRaw(sr, scaled, sr.W(), false, s.opts.RawCodec)}

	case *ctlCmd, *AudioCmd:
		// Control and audio pass through; video geometry was already
		// scaled when the message was built.
		return []Command{cmd}

	default:
		return []Command{cmd}
	}
}

// smallCodec swaps heavyweight codecs for RLE on tiny blocks: a scaled
// glyph is a handful of pixels, and a PNG header alone would dwarf it.
func smallCodec(r geom.Rect, codec compress.Codec) compress.Codec {
	if codec == compress.CodecPNG && r.Area() < 1024 {
		return compress.CodecRLE
	}
	return codec
}

// scaleFrame resamples a video frame by the viewport/session ratio, so
// a PDA client pays PDA bandwidth (§6, §8: full-screen video drops from
// ~24 Mbps to ~3.5 Mbps on the 320x240 client). The client overlay
// scales the reduced frame to its on-screen destination.
func (c *Client) scaleFrame(st *Stream, frame *pixel.YV12Image) *pixel.YV12Image {
	s := c.srv
	w := max(1, frame.W*c.view.W()/s.w)
	h := max(1, frame.H*c.view.H()/s.h)
	if w >= frame.W && h >= frame.H {
		// Never upscale at the server; the client overlay does that.
		return copyFrame(frame)
	}
	rgb := pixel.DecodeYV12(frame, w, h)
	return pixel.EncodeYV12(rgb, w, w, h)
}
