package core

import "time"

// End-to-end update tracing (wire v5): the translation layer stamps
// every command batch with a monotonically increasing flush epoch and
// the wall-clock instant the damage entered the driver. The stamps
// ride each buffered entry through the SRSF scheduler, so a flush can
// report the newest epoch and the oldest damage instant it delivered —
// the two numbers the transport needs to close the loop with a
// TimeMark and attribute the client's MarkAck back to a damage time.

// stampDamage opens a new flush epoch. It is called at every driver
// entry point that produces client-bound commands, so a batch of
// translated commands (one broadcast, one video frame, one resync)
// shares one epoch and one damage instant.
func (s *Server) stampDamage() {
	s.epoch++
	s.damageNS = time.Now().UnixNano()
}

// Epoch returns the current flush epoch — the number of stamped
// command batches translated so far.
func (s *Server) Epoch() uint64 { return s.epoch }

// FlushTrace summarizes what one Flush delivered, for the transport's
// end-to-end mark loop.
type FlushTrace struct {
	// MaxEpoch is the newest flush epoch among delivered commands.
	MaxEpoch uint64
	// OldestDamageNS is the earliest damage instant among delivered
	// commands (zero when nothing stamped was delivered).
	OldestDamageNS int64
	// Delivered counts commands fully delivered by the flush.
	Delivered int
}

// LastFlush returns the trace of the most recent Flush or FlushOne
// that delivered anything. Callers must check that the flush they just
// issued was non-empty before reading it.
func (b *ClientBuffer) LastFlush() FlushTrace { return b.lastFlush }

// SetStamp records the epoch/damage stamp applied to subsequently
// added commands. The core sets it from the server's current stamp on
// every add path; transports never call it.
func (b *ClientBuffer) SetStamp(epoch uint64, damageNS int64) {
	b.stampEpoch, b.stampDamageNS = epoch, damageNS
}

// TraceState is the per-client end-to-end mark cursor. Like the audit
// state and the degradation rung it lives on the retained core.Client,
// so a legacy verdict rides the session across reattach instead of
// being re-probed on every reconnect.
type TraceState struct {
	// Epoch numbers the marks sent to this client (trace labels).
	Sent uint64
	// Legacy is set once the peer has proven it will never ack a mark
	// (a pre-v5 client); the server stops marking its batches.
	Legacy bool
	// Misses counts consecutive marks that timed out unacknowledged.
	Misses int
	// EverAcked records that the peer acked at least once, which
	// separates "legacy peer" from "live peer under duress".
	EverAcked bool
}

// Trace returns the client's e2e mark state (always non-nil).
func (c *Client) Trace() *TraceState { return &c.trace }

// noteDelivered folds one delivered entry into the running flush trace
// and observes its damage-to-drain latency (the queue stage of the
// end-to-end pipeline) with sub-millisecond resolution.
func (b *ClientBuffer) noteDelivered(e *entry, nowNS int64) {
	b.lastFlush.Delivered++
	if e.epoch > b.lastFlush.MaxEpoch {
		b.lastFlush.MaxEpoch = e.epoch
	}
	if e.damageNS > 0 {
		if b.lastFlush.OldestDamageNS == 0 || e.damageNS < b.lastFlush.OldestDamageNS {
			b.lastFlush.OldestDamageNS = e.damageNS
		}
		if d := nowNS - e.damageNS; d >= 0 {
			b.met.queueLatNS.Observe(d)
		}
	}
}
