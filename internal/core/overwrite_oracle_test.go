package core_test

import (
	"math/rand"
	"testing"

	"thinc/internal/client"
	"thinc/internal/core"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/xserver"
)

// fbOracle is a brute-force framebuffer model, independent of both the
// window system and the translation pipeline: every draw is applied
// pixel by pixel in submission order, with no merging, no overwrite
// optimization, no queues. Whatever the scheduler does — coalesce,
// split, reorder across streams, evict under budget — the client must
// land exactly here.
type fbOracle struct {
	w, h int
	pix  []pixel.ARGB
}

func newFBOracle(screen []pixel.ARGB, w, h int) *fbOracle {
	return &fbOracle{w: w, h: h, pix: append([]pixel.ARGB(nil), screen...)}
}

// fill is a Complete-overwrite draw.
func (o *fbOracle) fill(r geom.Rect, c pixel.ARGB) {
	for y := r.Y0; y < r.Y1; y++ {
		for x := r.X0; x < r.X1; x++ {
			o.pix[y*o.w+x] = c
		}
	}
}

// put is a Complete-overwrite image draw.
func (o *fbOracle) put(r geom.Rect, src []pixel.ARGB, stride int) {
	for y := r.Y0; y < r.Y1; y++ {
		for x := r.X0; x < r.X1; x++ {
			o.pix[y*o.w+x] = src[(y-r.Y0)*stride+(x-r.X0)]
		}
	}
}

// over is a Transparent draw: per-pixel source-over blend.
func (o *fbOracle) over(r geom.Rect, src []pixel.ARGB, stride int) {
	for y := r.Y0; y < r.Y1; y++ {
		for x := r.X0; x < r.X1; x++ {
			o.pix[y*o.w+x] = pixel.Over(src[(y-r.Y0)*stride+(x-r.X0)], o.pix[y*o.w+x])
		}
	}
}

// copyArea is a Partial-overwrite draw: it reads the current state.
// Snapshot semantics make overlapping src/dst well defined.
func (o *fbOracle) copyArea(sr geom.Rect, dp geom.Point) {
	snap := make([]pixel.ARGB, sr.Area())
	for y := 0; y < sr.H(); y++ {
		for x := 0; x < sr.W(); x++ {
			snap[y*sr.W()+x] = o.pix[(sr.Y0+y)*o.w+sr.X0+x]
		}
	}
	for y := 0; y < sr.H(); y++ {
		for x := 0; x < sr.W(); x++ {
			o.pix[(dp.Y+y)*o.w+dp.X+x] = snap[y*sr.W()+x]
		}
	}
}

// firstDiff compares a client framebuffer against the oracle.
func (o *fbOracle) firstDiff(got []pixel.ARGB) int {
	for i := range o.pix {
		if got[i] != o.pix[i] {
			return i
		}
	}
	return -1
}

// TestOverwriteSemanticsOracle is the overwrite-class property test:
// random interleavings of Complete (fills, opaque images), Transparent
// (alpha-composited images) and Partial (copies reading prior state)
// draws flow through the full translation pipeline — queued, merged,
// split under random flush budgets — and the delivered result must be
// byte-identical to the brute-force oracle. A late joiner attaches
// mid-run and must converge to the same bytes as the early client
// (the seed is logged; replay any failure with it).
func TestOverwriteSemanticsOracle(t *testing.T) {
	const w, h = 96, 64
	for seed := int64(0); seed < 30; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		t.Logf("overwrite oracle seed=%d", seed)
		hr := newHarness(t, w, h, core.Options{})
		win := hr.dpy.CreateWindow(geom.XYWH(0, 0, w, h))
		o := newFBOracle(hr.dpy.Screen().Pix(), w, h)

		var late *core.Client
		var lateDst *client.Client
		for op := 0; op < 120; op++ {
			x, y := rnd.Intn(w-16), rnd.Intn(h-12)
			r := geom.XYWH(x, y, 1+rnd.Intn(16), 1+rnd.Intn(12))
			switch rnd.Intn(4) {
			case 0: // Complete: solid fill.
				c := pixel.RGB(uint8(rnd.Intn(256)), uint8(rnd.Intn(256)), uint8(rnd.Intn(256)))
				hr.dpy.FillRect(win, &xserver.GC{Fg: c}, r)
				o.fill(r, c)
			case 1: // Complete: opaque image.
				pix := mkImagePix(r, uint8(op))
				hr.dpy.PutImage(win, r, pix, r.W())
				o.put(r, pix, r.W())
			case 2: // Transparent: alpha-composited image.
				pix := make([]pixel.ARGB, r.Area())
				for i := range pix {
					pix[i] = pixel.PackARGB(uint8(rnd.Intn(256)),
						uint8(rnd.Intn(256)), uint8(rnd.Intn(256)), uint8(rnd.Intn(256)))
				}
				hr.dpy.Composite(win, r, pix, r.W())
				o.over(r, pix, r.W())
			default: // Partial: copy reads whatever is there now.
				dp := geom.Point{X: rnd.Intn(w - r.W()), Y: rnd.Intn(h - r.H())}
				hr.dpy.CopyArea(win, win, r, dp)
				o.copyArea(r, dp)
			}
			if rnd.Intn(7) == 0 {
				// Partial flush under a small random budget: forces the
				// scheduler to split, order and coalesce mid-workload.
				budget := 128 + rnd.Intn(4096)
				if err := hr.dst.ApplyAll(hr.cl.Flush(budget)); err != nil {
					t.Fatalf("seed %d: apply: %v", seed, err)
				}
				if late != nil {
					if err := lateDst.ApplyAll(late.Flush(budget)); err != nil {
						t.Fatalf("seed %d: late apply: %v", seed, err)
					}
				}
			}
			if op == 60 {
				// The late joiner: its full-screen sync must equal the
				// oracle's current state immediately.
				late = hr.srv.AttachClient(w, h)
				lateDst = client.New(w, h)
				if err := lateDst.ApplyAll(late.FlushAll()); err != nil {
					t.Fatalf("seed %d: late join: %v", seed, err)
				}
				if at := o.firstDiff(lateDst.FB().Pix()); at != -1 {
					t.Fatalf("seed %d: late joiner sync differs from oracle at pixel %d", seed, at)
				}
			}
		}

		hr.sync(t)
		if err := lateDst.ApplyAll(late.FlushAll()); err != nil {
			t.Fatalf("seed %d: late drain: %v", seed, err)
		}
		if at := o.firstDiff(hr.dst.FB().Pix()); at != -1 {
			t.Fatalf("seed %d: early client differs from oracle at pixel %d", seed, at)
		}
		if at := o.firstDiff(lateDst.FB().Pix()); at != -1 {
			t.Fatalf("seed %d: late joiner differs from oracle at pixel %d", seed, at)
		}
		if !hr.dst.FB().Equal(lateDst.FB()) {
			t.Fatalf("seed %d: early and late clients diverged from each other", seed)
		}
	}
}
