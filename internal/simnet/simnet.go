// Package simnet models the network environments of the paper's
// evaluation (§8.1) on top of the discrete-event engine: a link is a
// FIFO pipe characterized by bandwidth, round-trip time, and a TCP
// window cap. Throughput over a window-limited path is
// min(bandwidth, window/RTT), which is exactly the effect that starved
// the Korea site in Figure 7.
package simnet

import (
	"fmt"

	"thinc/internal/sim"
)

// LinkParams characterizes one network environment.
type LinkParams struct {
	Name      string
	Bandwidth int64    // bits per second
	RTT       sim.Time // round-trip propagation delay
	Window    int      // TCP window in bytes; 0 means unlimited
}

// EffectiveRate returns the achievable throughput in bytes per second,
// accounting for the bandwidth-delay product cap.
func (p LinkParams) EffectiveRate() float64 {
	raw := float64(p.Bandwidth) / 8
	if p.Window <= 0 || p.RTT <= 0 {
		return raw
	}
	capped := float64(p.Window) / p.RTT.Seconds()
	if capped < raw {
		return capped
	}
	return raw
}

func (p LinkParams) String() string {
	return fmt.Sprintf("%s(%.0f Mbps, rtt %v, win %d)",
		p.Name, float64(p.Bandwidth)/1e6, p.RTT, p.Window)
}

// Standard testbed environments (§8.1).

// LAN is the LAN Desktop configuration: 100 Mbps switched Ethernet.
func LAN() LinkParams {
	return LinkParams{Name: "LAN", Bandwidth: 100e6, RTT: 200 * sim.Microsecond, Window: 1 << 20}
}

// WAN is the WAN Desktop configuration: 100 Mbps with 66 ms RTT
// (Internet2 cross-country) and a 1 MB TCP window.
func WAN() LinkParams {
	return LinkParams{Name: "WAN", Bandwidth: 100e6, RTT: 66 * sim.Millisecond, Window: 1 << 20}
}

// PDA80211g is the 802.11g PDA configuration: an idealized 24 Mbps
// wireless link with no extra latency (§8.1).
func PDA80211g() LinkParams {
	return LinkParams{Name: "802.11g", Bandwidth: 24e6, RTT: 2 * sim.Millisecond, Window: 1 << 20}
}

// Site is one remote client location from Table 2.
type Site struct {
	Name      string
	Location  string
	PlanetLab bool
	Miles     int
}

// Sites reproduces Table 2.
func Sites() []Site {
	return []Site{
		{"NY", "New York, NY, USA", true, 5},
		{"PA", "Philadelphia, PA, USA", true, 78},
		{"MA", "Cambridge, MA, USA", true, 188},
		{"MN", "St. Paul, MN, USA", true, 1015},
		{"NM", "Albuquerque, NM, USA", false, 1816},
		{"CA", "Stanford, CA, USA", false, 2571},
		{"CAN", "Waterloo, Canada", true, 388},
		{"IE", "Maynooth, Ireland", false, 3185},
		{"PR", "San Juan, Puerto Rico", false, 1603},
		{"FI", "Helsinki, Finland", false, 4123},
		{"KR", "Seoul, Korea", true, 6885},
	}
}

// Link derives the site's link parameters. RTT follows speed-of-light
// propagation in fiber (~200,000 km/s) with a 1.5x route inflation plus
// a 4 ms access-network floor. PlanetLab nodes were restricted to a
// 256 KB TCP window; other sites allowed 1 MB (§8.1) — which is why
// Korea, and only Korea, is window-starved below video bitrate.
func (s Site) Link() LinkParams {
	km := float64(s.Miles) * 1.609344
	prop := sim.Time(2 * km / 200000 * 1.5 * float64(sim.Second))
	rtt := prop + 4*sim.Millisecond
	window := 1 << 20
	if s.PlanetLab {
		window = 256 << 10
	}
	return LinkParams{Name: s.Name, Bandwidth: 100e6, RTT: rtt, Window: window}
}

// Payload is what traverses a link: opaque to the network.
type Payload interface{}

// Link is a one-directional FIFO pipe. Messages serialize at the
// effective rate and arrive one-way-delay after their last byte is on
// the wire. Per-message Overhead models TCP/IP framing.
type Link struct {
	eng       *sim.Engine
	params    LinkParams
	rate      float64 // bytes per virtual second
	busyUntil sim.Time

	// Overhead is added to every message's wire size (default 52:
	// TCP+IP+Ethernet headers for a typical segment).
	Overhead int

	// Stats.
	Messages  int
	Bytes     int64
	LastDeliv sim.Time
}

// NewLink builds a link on the engine.
func NewLink(eng *sim.Engine, p LinkParams) *Link {
	return &Link{eng: eng, params: p, rate: p.EffectiveRate(), Overhead: 52}
}

// Params returns the link's parameters.
func (l *Link) Params() LinkParams { return l.params }

// OneWay returns the one-way propagation delay.
func (l *Link) OneWay() sim.Time { return l.params.RTT / 2 }

// QueueDelay returns how long a message sent now would wait before its
// first byte hits the wire.
func (l *Link) QueueDelay() sim.Time {
	if l.busyUntil <= l.eng.Now() {
		return 0
	}
	return l.busyUntil - l.eng.Now()
}

// Send transmits size bytes; deliver runs at the arrival time with the
// payload. Messages are delivered in FIFO order.
func (l *Link) Send(size int, payload Payload, deliver func(at sim.Time, p Payload)) {
	if size < 0 {
		panic("simnet: negative message size")
	}
	wireSize := size + l.Overhead
	start := l.eng.Now()
	if l.busyUntil > start {
		start = l.busyUntil
	}
	tx := sim.Time(float64(wireSize) / l.rate * float64(sim.Second))
	l.busyUntil = start + tx
	arrive := l.busyUntil + l.OneWay()
	l.Messages++
	l.Bytes += int64(wireSize)
	if arrive > l.LastDeliv {
		l.LastDeliv = arrive
	}
	l.eng.At(arrive, func() { deliver(arrive, payload) })
}

// Pipe is a bidirectional connection: client-to-server and
// server-to-client links sharing one parameter set.
type Pipe struct {
	S2C *Link // server to client (display updates)
	C2S *Link // client to server (input, requests)
}

// NewPipe builds a duplex pipe.
func NewPipe(eng *sim.Engine, p LinkParams) *Pipe {
	return &Pipe{S2C: NewLink(eng, p), C2S: NewLink(eng, p)}
}
