package simnet

import (
	"bytes"
	"errors"
	"io"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"thinc/internal/testutil"
)

func TestEventPairRoundTrip(t *testing.T) {
	testutil.CheckGoroutines(t)
	a, b := NewEventPair()
	defer a.Close()

	if n, err := a.Write([]byte("hello")); n != 5 || err != nil {
		t.Fatalf("Write = %d, %v", n, err)
	}
	if got := b.Buffered(); got != 5 {
		t.Fatalf("Buffered = %d, want 5", got)
	}
	p := make([]byte, 8)
	n, err := b.Read(p)
	if err != nil || string(p[:n]) != "hello" {
		t.Fatalf("Read = %q, %v", p[:n], err)
	}
	if got := b.Buffered(); got != 0 {
		t.Fatalf("Buffered after drain = %d", got)
	}
	// The other direction works too.
	b.Write([]byte("yo"))
	n, err = a.Read(p)
	if err != nil || string(p[:n]) != "yo" {
		t.Fatalf("reverse Read = %q, %v", p[:n], err)
	}
}

// TestEventConnOnDataHook: the hook fires on the writer's goroutine
// with the appended byte count, and may Read the conn from inside —
// the pattern the goroutine-free load client depends on.
func TestEventConnOnDataHook(t *testing.T) {
	testutil.CheckGoroutines(t)
	a, b := NewEventPair()
	defer a.Close()

	var got bytes.Buffer
	var calls atomic.Int32
	b.SetOnData(func(n int) {
		calls.Add(1)
		p := make([]byte, n)
		k, err := b.Read(p)
		if err != nil {
			t.Errorf("Read inside hook: %v", err)
			return
		}
		got.Write(p[:k])
	})
	a.Write([]byte("one "))
	a.Write([]byte("two"))
	if calls.Load() != 2 {
		t.Fatalf("hook fired %d times, want 2", calls.Load())
	}
	if got.String() != "one two" {
		t.Fatalf("hook drained %q", got.String())
	}
	// Clearing the hook leaves writes buffering silently.
	b.SetOnData(nil)
	a.Write([]byte("!"))
	if calls.Load() != 2 || b.Buffered() != 1 {
		t.Fatalf("cleared hook still fired (calls=%d buffered=%d)",
			calls.Load(), b.Buffered())
	}
}

// TestEventConnBlockingRead: an empty-buffer Read parks until the peer
// writes, like a socket.
func TestEventConnBlockingRead(t *testing.T) {
	testutil.CheckGoroutines(t)
	a, b := NewEventPair()
	defer a.Close()

	done := make(chan string, 1)
	go func() {
		p := make([]byte, 16)
		n, err := b.Read(p)
		if err != nil {
			done <- err.Error()
			return
		}
		done <- string(p[:n])
	}()
	time.Sleep(10 * time.Millisecond) // let the reader park
	a.Write([]byte("wakeup"))
	select {
	case got := <-done:
		if got != "wakeup" {
			t.Fatalf("blocked read got %q", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read never woke")
	}
}

func TestEventConnReadDeadline(t *testing.T) {
	testutil.CheckGoroutines(t)
	a, b := NewEventPair()
	defer a.Close()

	// SetDeadline routes to the read deadline; write deadlines are a
	// no-op because writes never block.
	if err := b.SetWriteDeadline(time.Now()); err != nil {
		t.Fatalf("SetWriteDeadline: %v", err)
	}
	if err := b.SetDeadline(time.Now().Add(30 * time.Millisecond)); err != nil {
		t.Fatalf("SetDeadline: %v", err)
	}
	if _, err := b.Read(make([]byte, 4)); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("expired read = %v, want deadline exceeded", err)
	}
	// Clearing the deadline unblocks future reads.
	if err := b.SetReadDeadline(time.Time{}); err != nil {
		t.Fatalf("clear deadline: %v", err)
	}
	a.Write([]byte("x"))
	if n, err := b.Read(make([]byte, 4)); n != 1 || err != nil {
		t.Fatalf("post-clear read = %d, %v", n, err)
	}
}

func TestEventConnClose(t *testing.T) {
	testutil.CheckGoroutines(t)
	a, b := NewEventPair()

	a.Write([]byte("tail"))
	a.Close()

	// Close is bidirectional: the local side EOFs (buffered data
	// discarded), writes on either side error as a closed pipe.
	if _, err := a.Read(make([]byte, 4)); err != io.EOF {
		t.Fatalf("local read after close = %v, want EOF", err)
	}
	if _, err := a.Write([]byte("x")); !ErrClosed(err) {
		t.Fatalf("local write after close = %v", err)
	}
	if _, err := b.Write([]byte("x")); !ErrClosed(err) {
		t.Fatalf("peer write after close = %v", err)
	}
	// The peer drains what was in flight before seeing EOF.
	p := make([]byte, 8)
	if n, err := b.Read(p); err != nil || string(p[:n]) != "tail" {
		t.Fatalf("peer drain after close = %q, %v", p[:n], err)
	}
	if _, err := b.Read(p); err != io.EOF {
		t.Fatalf("peer read after drain = %v, want EOF", err)
	}
	if err := b.SetReadDeadline(time.Now()); !ErrClosed(err) {
		t.Fatalf("deadline on closed conn = %v", err)
	}
	if ErrClosed(io.EOF) {
		t.Fatal("ErrClosed(io.EOF) = true")
	}
}

// TestEventConnCloseWakesReader: a parked reader sees EOF as soon as
// either end closes — teardown must never strand a handshake.
func TestEventConnCloseWakesReader(t *testing.T) {
	testutil.CheckGoroutines(t)
	a, b := NewEventPair()

	done := make(chan error, 1)
	go func() {
		_, err := b.Read(make([]byte, 4))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-done:
		if err != io.EOF {
			t.Fatalf("woken read = %v, want EOF", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("close never woke the reader")
	}
}

// TestEventConnCompaction drives the long-lived-conn path: consuming a
// large prefix in small reads must compact the buffer rather than grow
// it forever, without corrupting the byte stream.
func TestEventConnCompaction(t *testing.T) {
	testutil.CheckGoroutines(t)
	a, b := NewEventPair()
	defer a.Close()

	payload := make([]byte, 16<<10)
	for i := range payload {
		payload[i] = byte(i)
	}
	a.Write(payload)
	var got []byte
	p := make([]byte, 1024)
	for len(got) < len(payload) {
		n, err := b.Read(p)
		if err != nil {
			t.Fatalf("read at %d: %v", len(got), err)
		}
		got = append(got, p[:n]...)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("stream corrupted across compaction")
	}
}

func TestEventConnAddrs(t *testing.T) {
	a, _ := NewEventPair()
	defer a.Close()
	if a.LocalAddr().Network() != "event" || a.RemoteAddr().String() != "event" {
		t.Fatalf("addrs = %v / %v", a.LocalAddr(), a.RemoteAddr())
	}
}
