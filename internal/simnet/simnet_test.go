package simnet

import (
	"testing"

	"thinc/internal/sim"
)

func TestEffectiveRateWindowCap(t *testing.T) {
	// 100 Mbps, 66ms RTT, 1MB window: window/RTT ≈ 15.9 MB/s > 12.5 MB/s
	// raw — bandwidth-limited.
	wan := WAN()
	if r := wan.EffectiveRate(); r != 100e6/8 {
		t.Errorf("WAN rate %.0f, want bandwidth-limited 12.5e6", r)
	}
	// 256KB window at 170ms RTT: window-limited.
	p := LinkParams{Bandwidth: 100e6, RTT: 170 * sim.Millisecond, Window: 256 << 10}
	want := float64(256<<10) / 0.170
	if r := p.EffectiveRate(); r < want*0.99 || r > want*1.01 {
		t.Errorf("window-capped rate %.0f, want %.0f", r, want)
	}
	// Unlimited window.
	p.Window = 0
	if p.EffectiveRate() != 100e6/8 {
		t.Error("unlimited window should be bandwidth-limited")
	}
}

func TestSitesTable2(t *testing.T) {
	sites := Sites()
	if len(sites) != 11 {
		t.Fatalf("%d sites, want 11 (Table 2)", len(sites))
	}
	byName := map[string]Site{}
	for _, s := range sites {
		byName[s.Name] = s
	}
	if !byName["KR"].PlanetLab || byName["KR"].Miles != 6885 {
		t.Error("KR site wrong")
	}
	if byName["FI"].PlanetLab {
		t.Error("FI is not PlanetLab")
	}

	// The paper's crucial asymmetry: Korea's 256KB window at its RTT
	// cannot sustain 24 Mbps video; Finland's 1MB window can.
	kr := byName["KR"].Link()
	fi := byName["FI"].Link()
	videoRate := 24e6 / 8 // bytes/sec
	if kr.EffectiveRate() >= videoRate {
		t.Errorf("KR rate %.0f should be below video rate %.0f", kr.EffectiveRate(), videoRate)
	}
	if fi.EffectiveRate() < videoRate {
		t.Errorf("FI rate %.0f should sustain video rate %.0f", fi.EffectiveRate(), videoRate)
	}
	// RTT grows with distance.
	if byName["NY"].Link().RTT >= byName["KR"].Link().RTT {
		t.Error("RTT should grow with distance")
	}
}

func TestLinkSerializationAndDelay(t *testing.T) {
	eng := sim.NewEngine()
	// 8 Mbps -> 1 byte per microsecond. RTT 10ms -> one-way 5ms.
	p := LinkParams{Name: "test", Bandwidth: 8e6, RTT: 10 * sim.Millisecond, Window: 0}
	l := NewLink(eng, p)
	l.Overhead = 0

	var arrivals []sim.Time
	l.Send(1000, "a", func(at sim.Time, _ Payload) { arrivals = append(arrivals, at) })
	l.Send(1000, "b", func(at sim.Time, _ Payload) { arrivals = append(arrivals, at) })
	eng.Run()

	// First: 1000us serialize + 5000us propagation = 6000us.
	if len(arrivals) != 2 || arrivals[0] != 6000 {
		t.Fatalf("arrivals %v", arrivals)
	}
	// Second queues behind the first: 2000 + 5000.
	if arrivals[1] != 7000 {
		t.Fatalf("second arrival %v, want 7000", arrivals[1])
	}
	if l.Messages != 2 || l.Bytes != 2000 {
		t.Errorf("stats: %d msgs %d bytes", l.Messages, l.Bytes)
	}
}

func TestLinkFIFO(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, LAN())
	var got []string
	for _, name := range []string{"x", "y", "z"} {
		l.Send(100, name, func(_ sim.Time, p Payload) { got = append(got, p.(string)) })
	}
	eng.Run()
	if len(got) != 3 || got[0] != "x" || got[1] != "y" || got[2] != "z" {
		t.Fatalf("FIFO violated: %v", got)
	}
}

func TestLinkQueueDelay(t *testing.T) {
	eng := sim.NewEngine()
	p := LinkParams{Bandwidth: 8e6, RTT: 0, Window: 0} // 1 B/us
	l := NewLink(eng, p)
	l.Overhead = 0
	if l.QueueDelay() != 0 {
		t.Fatal("idle link should have zero queue delay")
	}
	l.Send(5000, nil, func(sim.Time, Payload) {})
	if l.QueueDelay() != 5000 {
		t.Fatalf("queue delay %v, want 5000us", l.QueueDelay())
	}
	eng.Run()
	if l.QueueDelay() != 0 {
		t.Fatal("drained link should have zero queue delay")
	}
}

func TestPipeIndependentDirections(t *testing.T) {
	eng := sim.NewEngine()
	pipe := NewPipe(eng, WAN())
	var s2c, c2s sim.Time
	pipe.S2C.Send(100, nil, func(at sim.Time, _ Payload) { s2c = at })
	pipe.C2S.Send(100, nil, func(at sim.Time, _ Payload) { c2s = at })
	eng.Run()
	// Directions do not queue behind each other.
	if s2c != c2s {
		t.Fatalf("duplex asymmetry: %v vs %v", s2c, c2s)
	}
	if s2c < 33*sim.Millisecond {
		t.Fatalf("arrival %v before one-way delay", s2c)
	}
}

func TestWindowStarvedThroughput(t *testing.T) {
	// Sending 1 MB over the KR link takes much longer than over FI.
	krLink := func() Site {
		for _, s := range Sites() {
			if s.Name == "KR" {
				return s
			}
		}
		panic("no KR")
	}()
	fiLink := func() Site {
		for _, s := range Sites() {
			if s.Name == "FI" {
				return s
			}
		}
		panic("no FI")
	}()

	elapsed := func(p LinkParams) sim.Time {
		eng := sim.NewEngine()
		l := NewLink(eng, p)
		var last sim.Time
		for i := 0; i < 64; i++ {
			l.Send(16<<10, nil, func(at sim.Time, _ Payload) { last = at })
		}
		eng.Run()
		return last
	}
	kr := elapsed(krLink.Link())
	fi := elapsed(fiLink.Link())
	if kr < fi*2 {
		t.Errorf("KR (%v) should be much slower than FI (%v)", kr, fi)
	}
}

func TestLinkOverheadAccounting(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, LAN())
	// Default per-message overhead models TCP/IP framing.
	if l.Overhead != 52 {
		t.Fatalf("default overhead %d", l.Overhead)
	}
	l.Send(100, nil, func(sim.Time, Payload) {})
	eng.Run()
	if l.Bytes != 152 {
		t.Errorf("accounted %d bytes, want payload+overhead", l.Bytes)
	}
	defer func() {
		if recover() == nil {
			t.Error("negative size should panic")
		}
	}()
	l.Send(-1, nil, nil)
}

func TestSiteStringAndLinkNames(t *testing.T) {
	for _, s := range Sites() {
		l := s.Link()
		if l.Name != s.Name {
			t.Errorf("link name %q for site %q", l.Name, s.Name)
		}
		if l.String() == "" {
			t.Error("empty link description")
		}
	}
}
