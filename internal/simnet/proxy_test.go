package simnet

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"thinc/internal/sim"
)

// echoServer accepts one connection and echoes everything back.
func echoServer(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(c, c)
				c.Close()
			}()
		}
	}()
	return l.Addr().String()
}

func TestProxyRelaysBytesIntact(t *testing.T) {
	addr, stop, err := StartProxy(echoServer(t), LAN())
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := bytes.Repeat([]byte("thinc-proxy-payload-"), 1000) // 20 KB
	go func() {
		c.Write(msg)
		c.(*net.TCPConn).CloseWrite()
	}()
	got, err := io.ReadAll(c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("payload corrupted: got %d bytes, want %d", len(got), len(msg))
	}
}

func TestProxyImposesRTT(t *testing.T) {
	// A high-latency, high-bandwidth link: echo round trip must pay at
	// least the configured RTT (one-way each direction, twice).
	p := LinkParams{Name: "slow", Bandwidth: 100e6,
		RTT: 60 * sim.Millisecond, Window: 1 << 20}
	addr, stop, err := StartProxy(echoServer(t), p)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if rtt := time.Since(start); rtt < 60*time.Millisecond {
		t.Errorf("echo RTT %v < configured 60ms", rtt)
	}
}

func TestProxyImposesBandwidth(t *testing.T) {
	// 1 Mbit/s: 64 KB one way needs >= ~0.5s of serialization.
	p := LinkParams{Name: "narrow", Bandwidth: 1e6, RTT: 2 * sim.Millisecond}
	addr, stop, err := StartProxy(echoServer(t), p)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	payload := make([]byte, 64<<10)
	start := time.Now()
	go func() {
		c.Write(payload)
		c.(*net.TCPConn).CloseWrite()
	}()
	if _, err := io.ReadAll(c); err != nil {
		t.Fatal(err)
	}
	// The echo pays serialization both ways; require at least the one-way
	// figure to keep the bound loose against scheduler jitter.
	min := time.Duration(float64(len(payload)) / p.EffectiveRate() * float64(time.Second))
	if took := time.Since(start); took < min {
		t.Errorf("64KB over 1Mbps took %v, want >= %v", took, min)
	}
}

func TestProxyDeadTarget(t *testing.T) {
	// Reserve a port nobody is listening on: the proxy accepts the
	// client but must close it when the target dial fails, and keep
	// serving later connections.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := l.Addr().String()
	l.Close()

	addr, stop, err := StartProxy(dead, LAN())
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("read from dead-target proxy conn succeeded, want close")
	}
}

func TestProxyStopMidStream(t *testing.T) {
	// Stop while chunks are queued behind a long propagation delay: the
	// delivery goroutines must bail out on done instead of sleeping the
	// full schedule, and the relayed conn must close promptly.
	p := LinkParams{Name: "far", Bandwidth: 100e6,
		RTT: 10 * sim.Second, Window: 1 << 20}
	addr, stop, err := StartProxy(echoServer(t), p)
	if err != nil {
		t.Fatal(err)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("stranded")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	stop()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("read after stop succeeded, want close")
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Errorf("stop took %v, want prompt teardown", took)
	}
}

func TestPaperLinkProfiles(t *testing.T) {
	// The three §8.1 testbed profiles stay as published.
	for _, tc := range []struct {
		p    LinkParams
		name string
		bw   int64
	}{
		{LAN(), "LAN", 100e6},
		{WAN(), "WAN", 100e6},
		{PDA80211g(), "802.11g", 24e6},
	} {
		if tc.p.Name != tc.name || tc.p.Bandwidth != tc.bw {
			t.Errorf("profile %q = %+v, want bandwidth %d", tc.name, tc.p, tc.bw)
		}
		if tc.p.EffectiveRate() <= 0 {
			t.Errorf("profile %q has non-positive effective rate", tc.name)
		}
		if l := NewLink(sim.NewEngine(), tc.p); l.Params().Name != tc.name {
			t.Errorf("Link.Params() lost the profile: %+v", l.Params())
		}
	}
}
