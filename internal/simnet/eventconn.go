package simnet

import (
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"time"
)

// EventConn is an in-memory net.Conn built for the event-driven load
// harness: a pair of them forms a duplex byte pipe with buffered,
// non-blocking writes and an optional OnData hook that fires after a
// peer write lands. The hook is what makes a goroutine-free client
// driver possible — instead of a blocking reader per connection, the
// harness drains whatever is buffered from inside the hook (on the
// writer's goroutine) and parses complete frames incrementally.
//
// Reads block (with deadline support) when the buffer is empty, so the
// same conn also works for the synchronous handshake phase. Writes
// never block: the buffer grows as needed, matching a kernel socket
// buffer sized ample for the test.
type EventConn struct {
	peer *EventConn

	mu       sync.Mutex
	cond     *sync.Cond
	buf      []byte
	start    int // read offset into buf
	closed   bool
	deadline time.Time
	dlTimer  *time.Timer

	// onData, called after a peer write (outside the lock, on the
	// writer's goroutine) with the number of bytes appended.
	onData func(n int)
}

// NewEventPair returns the two ends of an in-memory duplex connection.
func NewEventPair() (a, b *EventConn) {
	a = &EventConn{}
	b = &EventConn{}
	a.cond = sync.NewCond(&a.mu)
	b.cond = sync.NewCond(&b.mu)
	a.peer, b.peer = b, a
	return a, b
}

// SetOnData installs the data hook on this end: fn fires after every
// peer write that appends n bytes to this end's read buffer. Pass nil
// to clear. The hook runs on the writing goroutine with no locks held,
// so it may Read this conn (the data is already buffered) but must not
// block indefinitely.
func (c *EventConn) SetOnData(fn func(n int)) {
	c.mu.Lock()
	c.onData = fn
	c.mu.Unlock()
}

// Buffered returns the number of bytes available to Read right now.
func (c *EventConn) Buffered() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.buf) - c.start
}

// Read returns buffered bytes, blocking while the buffer is empty
// until data arrives, the read deadline passes, or the conn closes.
func (c *EventConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.buf)-c.start == 0 {
		if c.closed {
			return 0, io.EOF
		}
		if !c.deadline.IsZero() && !time.Now().Before(c.deadline) {
			return 0, os.ErrDeadlineExceeded
		}
		c.cond.Wait()
	}
	n := copy(p, c.buf[c.start:])
	c.start += n
	// Compact once the consumed prefix dominates, so a long-lived conn
	// does not grow its buffer forever.
	if c.start > 4096 && c.start*2 >= len(c.buf) {
		c.buf = append(c.buf[:0], c.buf[c.start:]...)
		c.start = 0
	}
	return n, nil
}

// Write appends p to the peer's read buffer and fires its OnData hook.
// It never blocks; writing to a closed pipe errors.
func (c *EventConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return 0, io.ErrClosedPipe
	}
	peer := c.peer
	peer.mu.Lock()
	if peer.closed {
		peer.mu.Unlock()
		return 0, io.ErrClosedPipe
	}
	peer.buf = append(peer.buf, p...)
	hook := peer.onData
	peer.cond.Broadcast()
	peer.mu.Unlock()
	if hook != nil {
		hook(len(p))
	}
	return len(p), nil
}

// Close closes both directions: local reads drain to EOF immediately
// (buffered data is discarded), peer reads see EOF after draining.
func (c *EventConn) Close() error {
	for _, e := range []*EventConn{c, c.peer} {
		e.mu.Lock()
		e.closed = true
		if e.dlTimer != nil {
			e.dlTimer.Stop()
			e.dlTimer = nil
		}
		e.cond.Broadcast()
		e.mu.Unlock()
	}
	return nil
}

// SetDeadline sets both deadlines (only reads ever block).
func (c *EventConn) SetDeadline(t time.Time) error { return c.SetReadDeadline(t) }

// SetWriteDeadline is a no-op: writes never block.
func (c *EventConn) SetWriteDeadline(time.Time) error { return nil }

// SetReadDeadline bounds blocked reads. A background timer wakes the
// waiters when the deadline trips; it is re-armed per call, so only
// conns actually using deadlines (the handshake phase) pay for one.
func (c *EventConn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return io.ErrClosedPipe
	}
	c.deadline = t
	if c.dlTimer != nil {
		c.dlTimer.Stop()
		c.dlTimer = nil
	}
	if !t.IsZero() {
		d := time.Until(t)
		if d < 0 {
			d = 0
		}
		c.dlTimer = time.AfterFunc(d, func() {
			c.mu.Lock()
			c.cond.Broadcast()
			c.mu.Unlock()
		})
	}
	return nil
}

type eventAddr struct{}

func (eventAddr) Network() string { return "event" }
func (eventAddr) String() string  { return "event" }

// LocalAddr implements net.Conn.
func (c *EventConn) LocalAddr() net.Addr { return eventAddr{} }

// RemoteAddr implements net.Conn.
func (c *EventConn) RemoteAddr() net.Addr { return eventAddr{} }

// ErrClosed reports whether err is the pipe-closed error either side
// returns after Close.
func ErrClosed(err error) bool { return errors.Is(err, io.ErrClosedPipe) }
