package simnet

import (
	"io"
	"net"
	"sync"
	"time"
)

// Proxy shapes real TCP traffic to a LinkParams profile: a loopback
// relay that imposes the link's serialization rate and one-way
// propagation delay on each direction. Where Link shapes virtual time
// on the discrete-event engine, Proxy shapes wall-clock time around a
// live server — it is how the e2e bench runs a real session over a
// WAN-class path without leaving the machine.
//
// The model matches Link: a chunk occupies the serializer for
// size/rate seconds (FIFO, back-to-back chunks queue behind each
// other), then arrives one-way-delay later. Propagation overlaps
// between chunks — delivery is scheduled per chunk on a timed queue,
// not slept inline — so a stream sees the full bandwidth, while every
// byte still pays RTT/2 each way.

// proxyChunk is one shaped read: data plus its computed arrival time.
type proxyChunk struct {
	at   time.Time
	data []byte
}

// StartProxy listens on an ephemeral loopback port and relays every
// accepted connection to target, shaping both directions to p. It
// returns the address to dial and a stop function that closes the
// listener and all live connections.
func StartProxy(target string, p LinkParams) (addr string, stop func(), err error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	var mu sync.Mutex
	var conns []net.Conn
	done := make(chan struct{})
	track := func(c net.Conn) {
		mu.Lock()
		conns = append(conns, c)
		mu.Unlock()
	}
	go func() {
		for {
			cc, err := l.Accept()
			if err != nil {
				return // listener closed
			}
			sc, err := net.Dial("tcp", target)
			if err != nil {
				cc.Close()
				continue
			}
			track(cc)
			track(sc)
			go shape(sc, cc, p, done) // client -> server
			go shape(cc, sc, p, done) // server -> client
		}
	}()
	stop = func() {
		close(done)
		l.Close()
		mu.Lock()
		for _, c := range conns {
			c.Close()
		}
		mu.Unlock()
	}
	return l.Addr().String(), stop, nil
}

// shape pumps src to dst under the link model. The reader computes each
// chunk's arrival time (serialization queue + propagation) and hands it
// to a delivery goroutine that sleeps until then — so serialization is
// FIFO but propagation pipelines across chunks.
func shape(dst, src net.Conn, p LinkParams, done <-chan struct{}) {
	rate := p.EffectiveRate() // bytes per second
	oneWay := time.Duration(p.RTT/2) * time.Microsecond

	ch := make(chan proxyChunk, 512)
	go func() {
		defer func() {
			if tc, ok := dst.(*net.TCPConn); ok {
				tc.CloseWrite()
			} else {
				dst.Close()
			}
		}()
		for c := range ch {
			if d := time.Until(c.at); d > 0 {
				select {
				case <-time.After(d):
				case <-done:
					return
				}
			}
			if _, err := dst.Write(c.data); err != nil {
				// Keep draining so the reader never blocks on a full queue.
				for range ch {
				}
				return
			}
		}
	}()

	var busyUntil time.Time
	buf := make([]byte, 16<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			now := time.Now()
			if busyUntil.Before(now) {
				busyUntil = now
			}
			busyUntil = busyUntil.Add(
				time.Duration(float64(n) / rate * float64(time.Second)))
			data := append([]byte(nil), buf[:n]...)
			select {
			case ch <- proxyChunk{at: busyUntil.Add(oneWay), data: data}:
			case <-done:
				close(ch)
				return
			}
		}
		if err != nil {
			close(ch)
			if err != io.EOF {
				src.Close()
			}
			return
		}
	}
}
