// Package cipher provides the RC4 stream cipher THINC uses to encrypt
// all protocol traffic (§7). RC4 is implemented from scratch here; it is
// kept for fidelity to the paper — it is NOT a recommendation of RC4 for
// new systems. The package also provides an io.Reader/io.Writer pair
// that transparently encrypts a transport stream.
package cipher

import (
	"errors"
	"io"
	"net"
)

// RC4 is the classic Rivest stream cipher state: a 256-byte permutation
// plus two indices. Identical key and direction on both ends keeps the
// keystreams in lockstep.
type RC4 struct {
	s    [256]byte
	i, j uint8
}

// ErrShortKey is returned for keys outside RC4's 1..256 byte range.
var ErrShortKey = errors.New("cipher: RC4 key must be 1..256 bytes")

// NewRC4 runs the key-scheduling algorithm over key.
func NewRC4(key []byte) (*RC4, error) {
	if len(key) < 1 || len(key) > 256 {
		return nil, ErrShortKey
	}
	c := &RC4{}
	for i := 0; i < 256; i++ {
		c.s[i] = byte(i)
	}
	var j byte
	for i := 0; i < 256; i++ {
		j += c.s[i] + key[i%len(key)]
		c.s[i], c.s[j] = c.s[j], c.s[i]
	}
	return c, nil
}

// XORKeyStream XORs src with the keystream into dst (dst may alias src).
func (c *RC4) XORKeyStream(dst, src []byte) {
	if len(dst) < len(src) {
		panic("cipher: output smaller than input")
	}
	i, j := c.i, c.j
	for k, b := range src {
		i++
		j += c.s[i]
		c.s[i], c.s[j] = c.s[j], c.s[i]
		dst[k] = b ^ c.s[c.s[i]+c.s[j]]
	}
	c.i, c.j = i, j
}

// StreamConn wraps a bidirectional stream so that everything written is
// RC4-encrypted and everything read is decrypted. Each direction uses an
// independent keystream derived from the shared key and a direction tag,
// mirroring how the prototype separates client->server and
// server->client traffic.
//
// Writes reuse an internal ciphertext scratch buffer, so — like the
// keystream state itself — a StreamConn supports at most one writer at
// a time.
type StreamConn struct {
	rw   io.ReadWriter
	enc  *RC4
	dec  *RC4
	wbuf []byte // reusable ciphertext scratch for Write/WriteBuffers
}

// NewStreamConn builds an encrypted channel over rw. isServer selects
// which directional keystream encrypts writes; a server and a client
// created with the same key interoperate.
func NewStreamConn(rw io.ReadWriter, key []byte, isServer bool) (*StreamConn, error) {
	s2c, err := NewRC4(deriveKey(key, 'S'))
	if err != nil {
		return nil, err
	}
	c2s, err := NewRC4(deriveKey(key, 'C'))
	if err != nil {
		return nil, err
	}
	sc := &StreamConn{rw: rw}
	if isServer {
		sc.enc, sc.dec = s2c, c2s
	} else {
		sc.enc, sc.dec = c2s, s2c
	}
	return sc, nil
}

// deriveKey appends a direction tag so the two directions never share a
// keystream (reusing an RC4 keystream across directions would be a
// classic two-time pad).
func deriveKey(key []byte, tag byte) []byte {
	k := make([]byte, 0, len(key)+1)
	k = append(k, key...)
	return append(k, tag)
}

func (s *StreamConn) Read(p []byte) (int, error) {
	n, err := s.rw.Read(p)
	s.dec.XORKeyStream(p[:n], p[:n])
	return n, err
}

func (s *StreamConn) Write(p []byte) (int, error) {
	buf := s.scratch(len(p))
	s.enc.XORKeyStream(buf, p)
	return s.rw.Write(buf)
}

// WriteBuffers encrypts every segment of a vectored write into the
// scratch buffer — the keystream is sequential, so segment order is
// the wire order — and issues a single underlying Write. It implements
// wire.BuffersWriter so a batched flush costs one transport write.
func (s *StreamConn) WriteBuffers(bufs net.Buffers) (int64, error) {
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	if total == 0 {
		return 0, nil
	}
	out := s.scratch(total)
	off := 0
	for _, b := range bufs {
		s.enc.XORKeyStream(out[off:off+len(b)], b)
		off += len(b)
	}
	n, err := s.rw.Write(out)
	return int64(n), err
}

// scratch returns the write buffer grown to n bytes. Buffers beyond
// maxScratch are not retained between writes, so a one-off full-screen
// update does not pin megabytes per connection.
func (s *StreamConn) scratch(n int) []byte {
	const maxScratch = 1 << 20
	if cap(s.wbuf) < n {
		s.wbuf = make([]byte, n)
	}
	buf := s.wbuf[:n]
	if cap(s.wbuf) > maxScratch {
		s.wbuf = nil
	}
	return buf
}
