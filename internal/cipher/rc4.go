// Package cipher provides the RC4 stream cipher THINC uses to encrypt
// all protocol traffic (§7). RC4 is implemented from scratch here; it is
// kept for fidelity to the paper — it is NOT a recommendation of RC4 for
// new systems. The package also provides an io.Reader/io.Writer pair
// that transparently encrypts a transport stream.
package cipher

import (
	"errors"
	"io"
)

// RC4 is the classic Rivest stream cipher state: a 256-byte permutation
// plus two indices. Identical key and direction on both ends keeps the
// keystreams in lockstep.
type RC4 struct {
	s    [256]byte
	i, j uint8
}

// ErrShortKey is returned for keys outside RC4's 1..256 byte range.
var ErrShortKey = errors.New("cipher: RC4 key must be 1..256 bytes")

// NewRC4 runs the key-scheduling algorithm over key.
func NewRC4(key []byte) (*RC4, error) {
	if len(key) < 1 || len(key) > 256 {
		return nil, ErrShortKey
	}
	c := &RC4{}
	for i := 0; i < 256; i++ {
		c.s[i] = byte(i)
	}
	var j byte
	for i := 0; i < 256; i++ {
		j += c.s[i] + key[i%len(key)]
		c.s[i], c.s[j] = c.s[j], c.s[i]
	}
	return c, nil
}

// XORKeyStream XORs src with the keystream into dst (dst may alias src).
func (c *RC4) XORKeyStream(dst, src []byte) {
	if len(dst) < len(src) {
		panic("cipher: output smaller than input")
	}
	i, j := c.i, c.j
	for k, b := range src {
		i++
		j += c.s[i]
		c.s[i], c.s[j] = c.s[j], c.s[i]
		dst[k] = b ^ c.s[c.s[i]+c.s[j]]
	}
	c.i, c.j = i, j
}

// StreamConn wraps a bidirectional stream so that everything written is
// RC4-encrypted and everything read is decrypted. Each direction uses an
// independent keystream derived from the shared key and a direction tag,
// mirroring how the prototype separates client->server and
// server->client traffic.
type StreamConn struct {
	rw  io.ReadWriter
	enc *RC4
	dec *RC4
}

// NewStreamConn builds an encrypted channel over rw. isServer selects
// which directional keystream encrypts writes; a server and a client
// created with the same key interoperate.
func NewStreamConn(rw io.ReadWriter, key []byte, isServer bool) (*StreamConn, error) {
	s2c, err := NewRC4(deriveKey(key, 'S'))
	if err != nil {
		return nil, err
	}
	c2s, err := NewRC4(deriveKey(key, 'C'))
	if err != nil {
		return nil, err
	}
	sc := &StreamConn{rw: rw}
	if isServer {
		sc.enc, sc.dec = s2c, c2s
	} else {
		sc.enc, sc.dec = c2s, s2c
	}
	return sc, nil
}

// deriveKey appends a direction tag so the two directions never share a
// keystream (reusing an RC4 keystream across directions would be a
// classic two-time pad).
func deriveKey(key []byte, tag byte) []byte {
	k := make([]byte, 0, len(key)+1)
	k = append(k, key...)
	return append(k, tag)
}

func (s *StreamConn) Read(p []byte) (int, error) {
	n, err := s.rw.Read(p)
	s.dec.XORKeyStream(p[:n], p[:n])
	return n, err
}

func (s *StreamConn) Write(p []byte) (int, error) {
	buf := make([]byte, len(p))
	s.enc.XORKeyStream(buf, p)
	return s.rw.Write(buf)
}
