package cipher

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

// Known-answer tests from RFC 6229.
func TestRC4KnownAnswers(t *testing.T) {
	cases := []struct {
		key  string
		want string // first 16 keystream bytes
	}{
		{"0102030405", "b2396305f03dc027ccc3524a0a1118a8"},
		{"0102030405060708", "97ab8a1bf0afb96132f2f67258da15a8"},
		{"0102030405060708090a0b0c0d0e0f10", "9ac7cc9a609d1ef7b2932899cde41b97"},
	}
	for _, c := range cases {
		key, _ := hex.DecodeString(c.key)
		want, _ := hex.DecodeString(c.want)
		rc, err := NewRC4(key)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 16)
		rc.XORKeyStream(got, make([]byte, 16)) // XOR with zeros = keystream
		if !bytes.Equal(got, want) {
			t.Errorf("key %s: keystream %x, want %x", c.key, got, want)
		}
	}
}

func TestRC4KeyValidation(t *testing.T) {
	if _, err := NewRC4(nil); err != ErrShortKey {
		t.Error("nil key should be rejected")
	}
	if _, err := NewRC4(make([]byte, 257)); err != ErrShortKey {
		t.Error("over-long key should be rejected")
	}
	if _, err := NewRC4(make([]byte, 256)); err != nil {
		t.Error("256-byte key is legal")
	}
}

func TestRC4RoundTrip(t *testing.T) {
	f := func(key []byte, msg []byte) bool {
		if len(key) == 0 || len(key) > 256 {
			key = []byte("default-key")
		}
		enc, _ := NewRC4(key)
		dec, _ := NewRC4(key)
		ct := make([]byte, len(msg))
		enc.XORKeyStream(ct, msg)
		pt := make([]byte, len(ct))
		dec.XORKeyStream(pt, ct)
		return bytes.Equal(pt, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRC4StreamSplitInvariance(t *testing.T) {
	// Encrypting in many small writes must equal one big write.
	key := []byte("split-key")
	a, _ := NewRC4(key)
	b, _ := NewRC4(key)
	msg := bytes.Repeat([]byte("thin client "), 40)

	one := make([]byte, len(msg))
	a.XORKeyStream(one, msg)

	many := make([]byte, len(msg))
	for i := 0; i < len(msg); i += 7 {
		end := min(i+7, len(msg))
		b.XORKeyStream(many[i:end], msg[i:end])
	}
	if !bytes.Equal(one, many) {
		t.Error("keystream depends on write chunking")
	}
}

func TestStreamConnDuplex(t *testing.T) {
	// Server writes, client reads (and vice versa) through a shared pipe
	// modeled by two buffers.
	key := []byte("session-key-128")
	var s2c, c2s bytes.Buffer

	srv, err := NewStreamConn(rwPair{&c2s, &s2c}, key, true)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewStreamConn(rwPair{&s2c, &c2s}, key, false)
	if err != nil {
		t.Fatal(err)
	}

	msg := []byte("display update: SFILL 0,0 100x100 #336699")
	if _, err := srv.Write(msg); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(s2c.Bytes(), []byte("SFILL")) {
		t.Error("plaintext visible on the wire")
	}
	got := make([]byte, len(msg))
	if _, err := cli.Read(got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("client read %q, want %q", got, msg)
	}

	// Reverse direction.
	input := []byte("mouse 512,384 btn1")
	if _, err := cli.Write(input); err != nil {
		t.Fatal(err)
	}
	got2 := make([]byte, len(input))
	if _, err := srv.Read(got2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, input) {
		t.Errorf("server read %q, want %q", got2, input)
	}
}

func TestStreamConnDirectionsIndependent(t *testing.T) {
	// The two directions must not share a keystream.
	key := []byte("k")
	var s2c, c2s bytes.Buffer
	srv, _ := NewStreamConn(rwPair{&c2s, &s2c}, key, true)
	cli, _ := NewStreamConn(rwPair{&s2c, &c2s}, key, false)
	msg := make([]byte, 64) // zeros expose the raw keystream
	srv.Write(msg)
	cli.Write(msg)
	if bytes.Equal(s2c.Bytes(), c2s.Bytes()) {
		t.Error("directions share a keystream (two-time pad)")
	}
}

// rwPair glues separate read and write ends into an io.ReadWriter.
type rwPair struct {
	r *bytes.Buffer
	w *bytes.Buffer
}

func (p rwPair) Read(b []byte) (int, error)  { return p.r.Read(b) }
func (p rwPair) Write(b []byte) (int, error) { return p.w.Write(b) }

func BenchmarkRC4Throughput(b *testing.B) {
	rc, _ := NewRC4([]byte("bench-key-128-bits-x"))
	buf := make([]byte, 64*1024)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rc.XORKeyStream(buf, buf)
	}
}
