// Package logx is the process-wide structured-logging convention: every
// record carries a component attribute ("server", "client", "view"),
// and session-scoped records add session/user attributes at the call
// site. Commands pick the output encoding with -log-format; libraries
// grab a component logger once at package init and never look at the
// format again.
package logx

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
)

// Setup installs the process default logger with the chosen encoding:
// "text" (human-readable key=value, the default) or "json" (one JSON
// object per line, for log shippers). A nil writer means stderr.
func Setup(format string, w io.Writer) error {
	if w == nil {
		w = os.Stderr
	}
	var h slog.Handler
	switch format {
	case "", "text":
		h = slog.NewTextHandler(w, nil)
	case "json":
		h = slog.NewJSONHandler(w, nil)
	default:
		return fmt.Errorf("logx: unknown log format %q (want text or json)", format)
	}
	slog.SetDefault(slog.New(h))
	return nil
}

// Component returns a logger stamped with component=name. It delegates
// to the process default handler at record time, so a logger created at
// package init honors a Setup that runs later in main.
func Component(name string) *slog.Logger {
	return slog.New(dynHandler{}).With("component", name)
}

// dynHandler resolves the process default handler per record instead of
// capturing it at construction. Groups are not supported — the logging
// convention here is flat attributes only.
type dynHandler struct {
	attrs []slog.Attr
}

func (h dynHandler) Enabled(ctx context.Context, l slog.Level) bool {
	return slog.Default().Handler().Enabled(ctx, l)
}

func (h dynHandler) Handle(ctx context.Context, r slog.Record) error {
	hh := slog.Default().Handler()
	if len(h.attrs) > 0 {
		hh = hh.WithAttrs(h.attrs)
	}
	return hh.Handle(ctx, r)
}

func (h dynHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	merged := append(h.attrs[:len(h.attrs):len(h.attrs)], attrs...)
	return dynHandler{attrs: merged}
}

func (h dynHandler) WithGroup(string) slog.Handler { return h }
