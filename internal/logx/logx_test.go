package logx

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestSetupJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := Setup("json", &buf); err != nil {
		t.Fatal(err)
	}
	Component("server").Info("attached", "user", "demo", "session", "s1")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not JSON: %v (%q)", err, buf.String())
	}
	for k, want := range map[string]string{
		"component": "server", "user": "demo", "session": "s1", "msg": "attached",
	} {
		if rec[k] != want {
			t.Errorf("%s = %v, want %q", k, rec[k], want)
		}
	}
}

func TestSetupText(t *testing.T) {
	var buf bytes.Buffer
	if err := Setup("text", &buf); err != nil {
		t.Fatal(err)
	}
	Component("client").Warn("stream ended", "user", "demo")
	out := buf.String()
	for _, want := range []string{"component=client", "user=demo", "stream ended"} {
		if !strings.Contains(out, want) {
			t.Errorf("output %q missing %q", out, want)
		}
	}
}

func TestComponentFollowsLaterSetup(t *testing.T) {
	lg := Component("early") // created before Setup, like a package init
	var buf bytes.Buffer
	if err := Setup("json", &buf); err != nil {
		t.Fatal(err)
	}
	lg.Info("hello")
	if !strings.Contains(buf.String(), `"component":"early"`) {
		t.Errorf("init-time logger ignored later Setup: %q", buf.String())
	}
}

func TestSetupRejectsUnknownFormat(t *testing.T) {
	if err := Setup("yaml", &bytes.Buffer{}); err == nil {
		t.Fatal("Setup accepted an unknown format")
	}
}
