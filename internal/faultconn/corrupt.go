package faultconn

import (
	"io"
	"math/rand"
	"sync"
	"sync/atomic"

	"thinc/internal/compress"
	"thinc/internal/wire"
)

// Silent payload corruption: unlike the transport faults above, which
// the framing layer or the decoder catches, the Corrupter flips bits
// *inside* well-framed display payloads. Headers, lengths, and message
// metadata are preserved, so every corrupted message still decodes and
// applies cleanly — the divergence is invisible to the parser and can
// only be caught by the wire-v4 integrity audit.

// CorruptPlan scripts a Corrupter. The zero plan flips roughly one bit
// per 4 KiB of eligible payload data with seed 0 and no flip cap.
type CorruptPlan struct {
	// Seed drives the flip positions and bit choices; a given seed over
	// a given byte stream replays exactly.
	Seed int64
	// Gap is the average number of eligible payload bytes between
	// flips; zero means 4096.
	Gap int64
	// MaxFlips caps the total flips (0 = unlimited). A schedule that
	// must bound how many tiles can diverge bounds the flips.
	MaxFlips int64
	// Fixed makes every inter-flip gap exactly Gap instead of seeded
	// uniform in [1, 2*Gap]: flips land on a deterministic stride of
	// the eligible-byte stream (the seed still picks which bit). A
	// schedule that must guarantee every drawn region takes at least
	// one flip — for any seed — uses a fixed stride no longer than the
	// region payload.
	Fixed bool
}

// Corrupter is a frame-aware io.Reader filter over the decrypted
// protocol stream (below the decoder, above the cipher). It parses
// THINC framing as bytes stream through and flips seeded bits only
// inside the pixel-data portion of display payloads:
//
//	RAW         — the pixel block, and only when the codec is CodecNone
//	              (flipping compressed data would break decode, which is
//	              exactly the loud failure this mode must avoid)
//	SFILL       — the fill color
//	PFILL       — the pattern tile pixels
//	BITMAP      — the stipple bits
//	CACHE_STORE — the cached payload (pixel data for CodecNone RAW-kind
//	              entries, stipple bits for bitmap-kind entries); the
//	              flip must trip the client's digest verification
//	CACHE_PAINT — the digest itself (the only content it carries); the
//	              flipped reference must miss the client's store
//
// Everything else — headers, rects, codec bytes, lengths, COPY
// geometry, control and audio messages, audit probes — passes through
// untouched, so the stream stays perfectly well-formed.
type Corrupter struct {
	mu    sync.Mutex
	r     io.Reader
	rnd   *rand.Rand
	gap   int64
	fixed bool

	active   atomic.Bool
	flips    atomic.Int64
	maxFlips int64

	// Frame parser state, touched only under mu (Read is called by one
	// goroutine, but Disable/Flips may race it).
	hdr       [wire.HeaderSize]byte
	hdrN      int
	typ       wire.Type
	remaining int   // payload bytes left in the current message
	payOff    int   // offset within the current payload
	skip      int   // first eligible payload offset; -1: none eligible
	stop      int   // first ineligible offset past skip; <=0: payload end
	countdown int64 // eligible bytes until the next flip
}

// NewCorrupter wraps r. The corrupter starts active; chaos schedules
// that inject corruption only during one phase call Disable first and
// Enable at the phase boundary.
func NewCorrupter(r io.Reader, plan CorruptPlan) *Corrupter {
	if plan.Gap <= 0 {
		plan.Gap = 4096
	}
	c := &Corrupter{
		r:        r,
		rnd:      rand.New(rand.NewSource(plan.Seed)),
		gap:      plan.Gap,
		fixed:    plan.Fixed,
		maxFlips: plan.MaxFlips,
	}
	c.countdown = c.drawGap()
	c.active.Store(true)
	return c
}

// Enable arms the corrupter; Disable quiesces it. The frame parser
// keeps running either way, so toggling never desynchronizes framing.
func (c *Corrupter) Enable()  { c.active.Store(true) }
func (c *Corrupter) Disable() { c.active.Store(false) }

// Flips returns how many bits have been flipped so far.
func (c *Corrupter) Flips() int64 { return c.flips.Load() }

// drawGap draws the next inter-flip gap: exactly Gap in fixed mode,
// else uniform in [1, 2*Gap] with mean about Gap. Randomness is
// consumed per flip, never per byte, so the flip positions are
// independent of how reads are chunked.
func (c *Corrupter) drawGap() int64 {
	if c.fixed {
		return c.gap
	}
	return 1 + c.rnd.Int63n(2*c.gap)
}

// cachePending marks a CACHE_STORE whose eligible window is unknown
// until its kind byte (payload offset 8) streams past; no offset can
// reach it, so nothing flips before the kind is known.
const cachePending = 1 << 30

// eligibleWindow returns the payload offset range [skip, stop) whose
// bytes may be flipped for a message type: skip -1 means the whole
// payload passes untouched, stop <= 0 means eligibility runs to the
// payload's end.
func eligibleWindow(t wire.Type) (skip, stop int) {
	switch t {
	case wire.TRaw:
		return 14, 0 // rect 8 + codec 1 + flags 1 + len 4; codec re-checked in-stream
	case wire.TSFill:
		return 8, 0 // rect; then the color
	case wire.TPFill:
		return 16, 0 // rect + tile geometry + anchor; then the tile pixels
	case wire.TBitmap:
		return 21, 0 // rect + fg + bg + flags + bit geometry; then the bits
	case wire.TCacheStore:
		return cachePending, 0 // resolved at the kind byte in-stream
	case wire.TCachePaint:
		return 0, 8 // the digest; the rect stays sacred like every rect
	}
	return -1, 0
}

func (c *Corrupter) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		c.mu.Lock()
		c.filter(p[:n])
		c.mu.Unlock()
	}
	return n, err
}

// filter advances the frame parser over buf, flipping eligible bytes
// in place. Caller holds c.mu.
func (c *Corrupter) filter(buf []byte) {
	for i := range buf {
		if c.hdrN < wire.HeaderSize {
			// Header bytes are sacred: buffer them to learn the type and
			// payload length, never modify them.
			c.hdr[c.hdrN] = buf[i]
			c.hdrN++
			if c.hdrN == wire.HeaderSize {
				c.typ = wire.Type(c.hdr[0])
				c.remaining = int(uint32(c.hdr[1])<<24 | uint32(c.hdr[2])<<16 |
					uint32(c.hdr[3])<<8 | uint32(c.hdr[4]))
				c.payOff = 0
				c.skip, c.stop = eligibleWindow(c.typ)
				if c.remaining == 0 {
					c.hdrN = 0
				}
			}
			continue
		}
		// Payload byte. A RAW's codec byte (payload offset 8) gates its
		// data: only uncompressed pixels survive a flip as *silent*
		// corruption, so anything else makes the message ineligible.
		if c.typ == wire.TRaw && c.payOff == 8 &&
			compress.Codec(buf[i]) != compress.CodecNone {
			c.skip = -1
		}
		// A CACHE_STORE's kind byte (offset 8) steers where its payload
		// starts — digest 8 + kind 1 + rect 8, then the per-kind meta —
		// and a RAW-kind entry's codec byte (offset 17) gates the data
		// exactly like a plain RAW's.
		if c.typ == wire.TCacheStore {
			switch c.payOff {
			case 8:
				switch buf[i] {
				case wire.CacheKindRaw:
					c.skip = 23
				case wire.CacheKindBitmap:
					c.skip = 30
				default:
					c.skip = -1
				}
			case 17:
				if c.skip == 23 && compress.Codec(buf[i]) != compress.CodecNone {
					c.skip = -1
				}
			}
		}
		if c.skip >= 0 && c.payOff >= c.skip &&
			(c.stop <= 0 || c.payOff < c.stop) && c.active.Load() &&
			(c.maxFlips == 0 || c.flips.Load() < c.maxFlips) {
			c.countdown--
			if c.countdown <= 0 {
				buf[i] ^= 1 << uint(c.rnd.Intn(8))
				c.flips.Add(1)
				c.countdown = c.drawGap()
			}
		}
		c.payOff++
		c.remaining--
		if c.remaining == 0 {
			c.hdrN = 0
		}
	}
}
