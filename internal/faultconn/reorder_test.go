package faultconn

import (
	"io"
	"net"
	"testing"
)

// readerTo drains b into a channel until EOF, returning the collected
// byte sequence when the writer side closes.
func readerTo(b net.Conn) <-chan []byte {
	out := make(chan []byte, 1)
	go func() {
		var got []byte
		buf := make([]byte, 64)
		for {
			n, err := b.Read(buf)
			got = append(got, buf[:n]...)
			if err != nil {
				out <- got
				return
			}
		}
	}()
	return out
}

func TestReorderSwapsAdjacentWrites(t *testing.T) {
	a, b := pipePair()
	fa := Wrap(a, Plan{ReorderAfter: 3})
	collected := readerTo(b)

	for _, chunk := range []string{"AAA", "BBB", "CCC", "DDD"} {
		if _, err := fa.Write([]byte(chunk)); err != nil {
			t.Fatal(err)
		}
	}
	fa.Close()
	got := string(<-collected)
	b.Close()

	// "BBB" crosses the boundary and is held; "CCC" jumps it.
	if got != "AAACCCBBBDDD" {
		t.Fatalf("reordered stream = %q, want AAACCCBBBDDD", got)
	}
	if fa.ReorderedWrites != 1 {
		t.Fatalf("ReorderedWrites = %d, want 1", fa.ReorderedWrites)
	}
	if fa.Faulted() {
		t.Fatal("reorder must not count as a fault")
	}
}

func TestReorderHeldWriteFlushedOnClose(t *testing.T) {
	a, b := pipePair()
	fa := Wrap(a, Plan{ReorderAfter: 3})
	collected := readerTo(b)

	if _, err := fa.Write([]byte("AAA")); err != nil {
		t.Fatal(err)
	}
	// Crosses the boundary, gets held — and no further write arrives.
	if _, err := fa.Write([]byte("BBB")); err != nil {
		t.Fatal(err)
	}
	fa.Close()
	got := string(<-collected)
	b.Close()

	if got != "AAABBB" {
		t.Fatalf("stream with flushed hold = %q, want AAABBB", got)
	}
	if fa.ReorderedWrites != 0 {
		t.Fatalf("ReorderedWrites = %d, want 0 (swap never completed)", fa.ReorderedWrites)
	}
}

func TestDuplicateRepeatsOneWrite(t *testing.T) {
	a, b := pipePair()
	fa := Wrap(a, Plan{DuplicateAfter: 3})
	collected := readerTo(b)

	for _, chunk := range []string{"AAA", "BBB", "CCC"} {
		if _, err := fa.Write([]byte(chunk)); err != nil {
			t.Fatal(err)
		}
	}
	fa.Close()
	got := string(<-collected)
	b.Close()

	// "BBB" is the first write at/past the boundary: sent twice, once.
	if got != "AAABBBBBBCCC" {
		t.Fatalf("duplicated stream = %q, want AAABBBBBBCCC", got)
	}
	if fa.DuplicatedWrites != 1 {
		t.Fatalf("DuplicatedWrites = %d, want 1", fa.DuplicatedWrites)
	}
	if fa.Faulted() {
		t.Fatal("duplication must not count as a fault")
	}
}

func TestReorderAndDuplicateCompose(t *testing.T) {
	a, b := pipePair()
	fa := Wrap(a, Plan{ReorderAfter: 6, DuplicateAfter: 1})
	collected := readerTo(b)

	for _, chunk := range []string{"AAA", "BBB", "CCC", "DDD"} {
		if _, err := fa.Write([]byte(chunk)); err != nil {
			t.Fatal(err)
		}
	}
	fa.Close()
	got := string(<-collected)
	b.Close()

	// "BBB" (already=3 >= 1) duplicates; "CCC" (already=6) is held and
	// "DDD" jumps it.
	if got != "AAABBBBBBDDDCCC" {
		t.Fatalf("stream = %q, want AAABBBBBBDDDCCC", got)
	}
	if fa.DuplicatedWrites != 1 || fa.ReorderedWrites != 1 {
		t.Fatalf("counters = dup %d reorder %d, want 1/1",
			fa.DuplicatedWrites, fa.ReorderedWrites)
	}
}

func TestReorderZeroMeansNever(t *testing.T) {
	a, b := pipePair()
	fa := Wrap(a, Plan{})
	collected := readerTo(b)
	if _, err := fa.Write([]byte("XYZ")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(fa, "123"); err != nil {
		t.Fatal(err)
	}
	fa.Close()
	got := string(<-collected)
	b.Close()
	if got != "XYZ123" {
		t.Fatalf("zero plan reordered: %q", got)
	}
}
