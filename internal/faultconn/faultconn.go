// Package faultconn wraps a net.Conn with deterministic, scriptable
// transport faults: stalls (the peer stops moving bytes), mid-message
// resets (the connection dies partway through a frame), and write
// truncation (part of a message escapes before the failure). It exists
// so resilience tests can prove the server reaps dead peers and the
// client reconnects and converges — with seeded randomness, so a
// failing schedule replays exactly.
package faultconn

import (
	"errors"
	"math/rand"
	"net"
	"os"
	"sync"
	"time"
)

// ErrInjected is returned by reads and writes that hit an injected
// fault. The underlying connection is closed at the fault point, so
// the peer observes a real transport failure, not just a local error.
var ErrInjected = errors.New("faultconn: injected fault")

// Plan scripts the faults for one connection. Budgets count bytes
// through the wrapper; a budget < 0 means "never". The zero Plan
// injects nothing.
type Plan struct {
	// ReadFaultAfter fails reads after this many bytes have been read.
	ReadFaultAfter int64
	// WriteFaultAfter fails writes after this many bytes have been
	// written. The failing write delivers the bytes up to the boundary
	// (truncation) before erroring — the mid-message cut.
	WriteFaultAfter int64
	// Stall, when true, makes the faulting read/write block until the
	// connection is closed instead of returning ErrInjected — the
	// half-dead peer. When false the fault is a reset: the underlying
	// conn is closed and ErrInjected returned.
	Stall bool
	// ReorderAfter delays one write once this many bytes have been
	// written: the first write at or past the boundary is held back and
	// transmitted after the following write — the adjacent-packet swap a
	// rerouted path produces. One-shot; a held write still pending at
	// Close is flushed so no bytes are silently lost.
	ReorderAfter int64
	// DuplicateAfter transmits one write twice once this many bytes have
	// been written — the retransmit-after-lost-ACK duplicate. One-shot.
	DuplicateAfter int64
}

// NoFault is the budget value for "never fault".
const NoFault = int64(-1)

// NewPlan derives a reset plan with budgets drawn uniformly from
// [min, max) using the seed — deterministic for a given seed.
func NewPlan(seed, min, max int64) Plan {
	rnd := rand.New(rand.NewSource(seed))
	span := max - min
	if span <= 0 {
		span = 1
	}
	return Plan{
		ReadFaultAfter:  min + rnd.Int63n(span),
		WriteFaultAfter: min + rnd.Int63n(span),
	}
}

// Conn is a net.Conn with fault injection. Safe for one concurrent
// reader plus one concurrent writer, like net.Conn itself.
type Conn struct {
	net.Conn
	plan Plan

	mu           sync.Mutex
	readN        int64
	writtenN     int64
	faulted      bool
	closed       chan struct{}
	closeOnce    sync.Once
	ReadFaults   int
	WriteFaults  int
	stallRelease chan struct{} // closed by Close; stalled ops block on it

	held             []byte // write held back for reordering
	reordered        bool   // the one-shot swap has fired
	duplicated       bool   // the one-shot duplicate has fired
	ReorderedWrites  int
	DuplicatedWrites int

	readDL  time.Time // mirrors SetReadDeadline: stalled reads honor it
	writeDL time.Time // mirrors SetWriteDeadline
}

// Wrap applies plan to nc.
func Wrap(nc net.Conn, plan Plan) *Conn {
	if plan.ReadFaultAfter == 0 {
		plan.ReadFaultAfter = NoFault
	}
	if plan.WriteFaultAfter == 0 {
		plan.WriteFaultAfter = NoFault
	}
	if plan.ReorderAfter == 0 {
		plan.ReorderAfter = NoFault
	}
	if plan.DuplicateAfter == 0 {
		plan.DuplicateAfter = NoFault
	}
	return &Conn{Conn: nc, plan: plan, closed: make(chan struct{})}
}

// Faulted reports whether a fault has fired on this connection.
func (c *Conn) Faulted() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.faulted
}

// fault trips the fault path once: stall, or reset. A stalled
// operation blocks like a silent peer would — until Close, or until
// the operation's deadline expires, exactly as a real net.Conn read
// against a dead host times out.
func (c *Conn) fault(isRead bool) error {
	c.mu.Lock()
	c.faulted = true
	var dl time.Time
	if isRead {
		c.ReadFaults++
		dl = c.readDL
	} else {
		c.WriteFaults++
		dl = c.writeDL
	}
	stall := c.plan.Stall
	c.mu.Unlock()
	if stall {
		if dl.IsZero() {
			<-c.closed
			return ErrInjected
		}
		t := time.NewTimer(time.Until(dl))
		defer t.Stop()
		select {
		case <-c.closed:
			return ErrInjected
		case <-t.C:
			return os.ErrDeadlineExceeded
		}
	}
	_ = c.Conn.Close()
	return ErrInjected
}

func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	budget := c.plan.ReadFaultAfter
	already := c.readN
	c.mu.Unlock()
	if budget >= 0 && already >= budget {
		return 0, c.fault(true)
	}
	if budget >= 0 && already+int64(len(p)) > budget {
		p = p[:budget-already] // fault lands mid-message next call
	}
	n, err := c.Conn.Read(p)
	c.mu.Lock()
	c.readN += int64(n)
	c.mu.Unlock()
	return n, err
}

func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	budget := c.plan.WriteFaultAfter
	already := c.writtenN
	c.mu.Unlock()
	if budget >= 0 && already >= budget {
		return 0, c.fault(false)
	}
	truncated := false
	if budget >= 0 && already+int64(len(p)) > budget {
		// Truncation: part of the frame escapes, then the fault.
		p = p[:budget-already]
		truncated = true
	}
	n, err := c.transmit(p, already)
	c.mu.Lock()
	c.writtenN += int64(n)
	c.mu.Unlock()
	if err != nil {
		return n, err
	}
	if truncated {
		return n, c.fault(false)
	}
	return n, nil
}

// transmit moves p to the underlying conn, applying the one-shot
// reorder and duplication modes. already is the byte count before this
// write — the boundary checks use it so the triggering write is the
// first one at or past the budget, matching the fault budgets.
func (c *Conn) transmit(p []byte, already int64) (int, error) {
	c.mu.Lock()
	duplicate := c.plan.DuplicateAfter >= 0 && !c.duplicated &&
		already >= c.plan.DuplicateAfter
	if duplicate {
		c.duplicated = true
		c.DuplicatedWrites++
	}
	hold, release := false, []byte(nil)
	if c.plan.ReorderAfter >= 0 && !c.reordered && already >= c.plan.ReorderAfter {
		if c.held == nil {
			// First write past the boundary: hold it back. Claim success —
			// the bytes are committed, just not on the wire yet.
			c.held = append([]byte(nil), p...)
			c.mu.Unlock()
			return len(p), nil
		}
		// Second write: it jumps the queue, then the held one follows.
		hold, release = true, c.held
		c.held = nil
		c.reordered = true
		c.ReorderedWrites++
	}
	c.mu.Unlock()

	n, err := c.Conn.Write(p)
	if err != nil {
		return n, err
	}
	if duplicate {
		if _, err := c.Conn.Write(p); err != nil {
			return n, err
		}
	}
	if hold {
		if _, err := c.Conn.Write(release); err != nil {
			return n, err
		}
	}
	return n, nil
}

// Close releases any stalled operations and closes the underlying conn.
// A write still held for reordering is flushed first, so a connection
// that closes right after the boundary does not lose the frame.
func (c *Conn) Close() error {
	c.mu.Lock()
	held := c.held
	c.held = nil
	c.mu.Unlock()
	if held != nil {
		_, _ = c.Conn.Write(held)
	}
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

// BytesRead returns how many bytes have passed through Read.
func (c *Conn) BytesRead() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readN
}

// BytesWritten returns how many bytes have passed through Write.
func (c *Conn) BytesWritten() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writtenN
}

// SetDeadline and friends pass through so wrapped conns keep their
// deadline semantics (the server's reaper depends on them). The
// wrapper mirrors the deadlines so stalled operations honor them too.
func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDL, c.writeDL = t, t
	c.mu.Unlock()
	return c.Conn.SetDeadline(t)
}

func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDL = t
	c.mu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.writeDL = t
	c.mu.Unlock()
	return c.Conn.SetWriteDeadline(t)
}
