package faultconn

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"thinc/internal/compress"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/wire"
)

// chunkReader yields the underlying stream in random-size chunks, so
// tests prove the frame parser survives arbitrary read boundaries.
type chunkReader struct {
	r   *bytes.Reader
	rnd *rand.Rand
}

func (c *chunkReader) Read(p []byte) (int, error) {
	max := 1 + c.rnd.Intn(len(p))
	if max < len(p) {
		p = p[:max]
	}
	return c.r.Read(p)
}

// corruptStream is a representative protocol slice: eligible display
// payloads interleaved with messages that must pass through untouched.
func corruptStream(t *testing.T) ([]byte, []wire.Message) {
	t.Helper()
	pix := make([]pixel.ARGB, 16*8)
	for i := range pix {
		pix[i] = pixel.ARGB(0xff000000 | uint32(i*7))
	}
	raw, err := wire.NewRaw(geom.XYWH(0, 0, 16, 8), pix, 16, compress.CodecNone)
	if err != nil {
		t.Fatal(err)
	}
	rle, err := wire.NewRaw(geom.XYWH(16, 0, 16, 8), pix, 16, compress.CodecRLE)
	if err != nil {
		t.Fatal(err)
	}
	msgs := []wire.Message{
		&wire.Ping{Seq: 1, TimeUS: 99},
		raw,
		&wire.Copy{Src: geom.XYWH(0, 0, 8, 8), Dst: geom.Point{X: 40, Y: 40}},
		&wire.SFill{Rect: geom.XYWH(4, 4, 20, 20), Color: pixel.RGB(1, 2, 3)},
		rle,
		&wire.PFill{Rect: geom.XYWH(0, 0, 32, 32), TileW: 4, TileH: 4,
			Tile: make([]pixel.ARGB, 16)},
		&wire.Bitmap{Rect: geom.XYWH(0, 0, 16, 16), Fg: 0xffffffff,
			BitW: 16, BitH: 16, Bits: make([]byte, 32)},
		&wire.AuditProbe{Seq: 5, Tile: 16, Start: 0, Count: 8},
	}
	var stream []byte
	for _, m := range msgs {
		stream, err = wire.AppendMessage(stream, m)
		if err != nil {
			t.Fatal(err)
		}
	}
	return stream, msgs
}

// runCorrupter pushes stream through a Corrupter with the given plan
// and chunking seed, returning the filtered bytes.
func runCorrupter(t *testing.T, stream []byte, plan CorruptPlan, chunkSeed int64) ([]byte, *Corrupter) {
	t.Helper()
	var src io.Reader = bytes.NewReader(stream)
	if chunkSeed != 0 {
		src = &chunkReader{r: bytes.NewReader(stream), rnd: rand.New(rand.NewSource(chunkSeed))}
	}
	c := NewCorrupter(src, plan)
	out, err := io.ReadAll(c)
	if err != nil {
		t.Fatal(err)
	}
	return out, c
}

// decodeAll parses every message out of a byte stream.
func decodeAll(t *testing.T, stream []byte) []wire.Message {
	t.Helper()
	r := bytes.NewReader(stream)
	var out []wire.Message
	for r.Len() > 0 {
		m, err := wire.ReadMessage(r)
		if err != nil {
			t.Fatalf("corrupted stream failed to decode at message %d: %v", len(out), err)
		}
		out = append(out, m)
	}
	return out
}

func TestCorrupterPreservesFraming(t *testing.T) {
	stream, msgs := corruptStream(t)
	out, c := runCorrupter(t, stream, CorruptPlan{Seed: 42, Gap: 16}, 7)
	if c.Flips() == 0 {
		t.Fatal("no bits flipped")
	}
	if len(out) != len(stream) {
		t.Fatalf("stream length changed: %d -> %d", len(stream), len(out))
	}
	got := decodeAll(t, out)
	if len(got) != len(msgs) {
		t.Fatalf("decoded %d messages, want %d", len(got), len(msgs))
	}
	for i, m := range got {
		if m.Type() != msgs[i].Type() {
			t.Fatalf("message %d type %v, want %v", i, m.Type(), msgs[i].Type())
		}
	}

	// Ineligible messages are byte-identical; eligible ones keep their
	// metadata but carry flipped data.
	reencode := func(m wire.Message) []byte {
		b, err := wire.AppendMessage(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	for _, i := range []int{0, 2, 7} { // Ping, Copy, AuditProbe
		if !bytes.Equal(reencode(got[i]), reencode(msgs[i])) {
			t.Errorf("ineligible message %d (%v) was modified", i, msgs[i].Type())
		}
	}
	r0, r1 := got[1].(*wire.Raw), msgs[1].(*wire.Raw)
	if r0.Rect != r1.Rect || r0.Codec != r1.Codec || len(r0.Data) != len(r1.Data) {
		t.Errorf("RAW metadata modified: %+v vs %+v", r0.Rect, r1.Rect)
	}
	if bytes.Equal(r0.Data, r1.Data) {
		t.Error("uncompressed RAW data survived a gap-16 corrupter intact")
	}
	if _, err := r0.Pixels(); err != nil {
		t.Errorf("corrupted RAW no longer decodes: %v", err)
	}
	// The RLE RAW is ineligible: flipping compressed bytes would break
	// decode, which is a loud failure, not silent corruption.
	if !bytes.Equal(reencode(got[4]), reencode(msgs[4])) {
		t.Error("compressed RAW was modified")
	}
	b0, b1 := got[6].(*wire.Bitmap), msgs[6].(*wire.Bitmap)
	if b0.Rect != b1.Rect || b0.BitW != b1.BitW || b0.BitH != b1.BitH {
		t.Error("BITMAP metadata modified")
	}
	if bytes.Equal(b0.Bits, b1.Bits) {
		t.Error("BITMAP bits survived intact")
	}
}

func TestCorrupterDeterministic(t *testing.T) {
	stream, _ := corruptStream(t)
	a, ca := runCorrupter(t, stream, CorruptPlan{Seed: 9, Gap: 32}, 3)
	b, cb := runCorrupter(t, stream, CorruptPlan{Seed: 9, Gap: 32}, 111)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed over different chunkings produced different corruption")
	}
	if ca.Flips() != cb.Flips() {
		t.Fatalf("flip counts differ: %d vs %d", ca.Flips(), cb.Flips())
	}
	c, _ := runCorrupter(t, stream, CorruptPlan{Seed: 10, Gap: 32}, 3)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical corruption")
	}
}

func TestCorrupterDisabled(t *testing.T) {
	stream, _ := corruptStream(t)
	src := bytes.NewReader(stream)
	c := NewCorrupter(src, CorruptPlan{Seed: 1, Gap: 4})
	c.Disable()
	out, err := io.ReadAll(c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, stream) {
		t.Fatal("disabled corrupter modified the stream")
	}
	if c.Flips() != 0 {
		t.Fatalf("disabled corrupter reported %d flips", c.Flips())
	}
}

func TestCorrupterMaxFlips(t *testing.T) {
	stream, _ := corruptStream(t)
	_, c := runCorrupter(t, stream, CorruptPlan{Seed: 3, Gap: 1, MaxFlips: 3}, 0)
	if c.Flips() != 3 {
		t.Fatalf("Flips() = %d, want exactly MaxFlips=3", c.Flips())
	}
}

// TestCorrupterToggleKeepsFraming proves the parser stays aligned when
// corruption is toggled mid-stream (the chaos phase boundary).
func TestCorrupterToggleKeepsFraming(t *testing.T) {
	stream, msgs := corruptStream(t)
	src := bytes.NewReader(stream)
	c := NewCorrupter(src, CorruptPlan{Seed: 5, Gap: 8})
	c.Disable()
	// Read half disabled, enable, read the rest.
	half := make([]byte, len(stream)/2)
	if _, err := io.ReadFull(c, half); err != nil {
		t.Fatal(err)
	}
	c.Enable()
	rest, err := io.ReadAll(c)
	if err != nil {
		t.Fatal(err)
	}
	out := append(half, rest...)
	if got := decodeAll(t, out); len(got) != len(msgs) {
		t.Fatalf("decoded %d messages, want %d", len(got), len(msgs))
	}
	if !bytes.Equal(out[:len(half)], stream[:len(half)]) {
		t.Error("disabled phase modified bytes")
	}
}

// cacheStream is a protocol slice of wire-v6 cache traffic: eligible
// cache payloads interleaved with cache messages that must pass through
// untouched.
func cacheStream(t *testing.T) ([]byte, []wire.Message) {
	t.Helper()
	pix := make([]pixel.ARGB, 16*8)
	for i := range pix {
		pix[i] = pixel.ARGB(0xff000000 | uint32(i*13))
	}
	plain, err := compress.EncodeAppend(compress.CodecNone, nil, pix, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	rle, err := compress.EncodeAppend(compress.CodecRLE, nil, pix, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	msgs := []wire.Message{
		&wire.CacheStore{Digest: 0x1111, Kind: wire.CacheKindRaw,
			Rect: geom.XYWH(0, 0, 16, 8), Codec: compress.CodecNone, Data: plain},
		&wire.CachePaint{Digest: 0x2222, Rect: geom.XYWH(16, 0, 16, 8)},
		&wire.CacheStore{Digest: 0x3333, Kind: wire.CacheKindRaw,
			Rect: geom.XYWH(32, 0, 16, 8), Codec: compress.CodecRLE, Data: rle},
		&wire.CacheStore{Digest: 0x4444, Kind: wire.CacheKindBitmap,
			Rect: geom.XYWH(0, 8, 16, 16), Fg: 0xffffffff, Bg: 0xff000000,
			BitW: 16, BitH: 16, Bits: make([]byte, 32)},
		&wire.CacheMiss{Digest: 0x5555, Rect: geom.XYWH(0, 0, 8, 8)},
	}
	var stream []byte
	for _, m := range msgs {
		stream, err = wire.AppendMessage(stream, m)
		if err != nil {
			t.Fatal(err)
		}
	}
	return stream, msgs
}

// TestCorrupterCacheWindows: flips land only inside the cache payloads
// the client verifies — RAW-kind data (uncompressed only), bitmap bits,
// and the CACHE_PAINT digest — never in digests of stores, rects, kind
// or codec bytes, or CACHE_MISS reports.
func TestCorrupterCacheWindows(t *testing.T) {
	stream, msgs := cacheStream(t)
	out, c := runCorrupter(t, stream, CorruptPlan{Seed: 11, Gap: 2, Fixed: true}, 17)
	if c.Flips() == 0 {
		t.Fatal("no bits flipped")
	}
	got := decodeAll(t, out)
	if len(got) != len(msgs) {
		t.Fatalf("decoded %d messages, want %d", len(got), len(msgs))
	}
	reencode := func(m wire.Message) []byte {
		b, err := wire.AppendMessage(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	s0, w0 := got[0].(*wire.CacheStore), msgs[0].(*wire.CacheStore)
	if s0.Digest != w0.Digest || s0.Rect != w0.Rect || s0.Kind != w0.Kind ||
		s0.Codec != w0.Codec || len(s0.Data) != len(w0.Data) {
		t.Error("RAW-kind store metadata modified")
	}
	if bytes.Equal(s0.Data, w0.Data) {
		t.Error("RAW-kind store data survived a fixed gap-2 corrupter intact")
	}

	p1, w1 := got[1].(*wire.CachePaint), msgs[1].(*wire.CachePaint)
	if p1.Digest == w1.Digest {
		t.Error("CACHE_PAINT digest survived intact")
	}
	if p1.Rect != w1.Rect {
		t.Error("CACHE_PAINT rect modified")
	}

	// Compressed store data would break decode — a loud failure, so it
	// stays sacred exactly like a compressed plain RAW.
	if !bytes.Equal(reencode(got[2]), reencode(msgs[2])) {
		t.Error("compressed RAW-kind store was modified")
	}

	s3, w3 := got[3].(*wire.CacheStore), msgs[3].(*wire.CacheStore)
	if s3.Digest != w3.Digest || s3.Fg != w3.Fg || s3.Bg != w3.Bg ||
		s3.BitW != w3.BitW || s3.BitH != w3.BitH {
		t.Error("bitmap-kind store metadata modified")
	}
	if bytes.Equal(s3.Bits, w3.Bits) {
		t.Error("bitmap-kind store bits survived intact")
	}

	if !bytes.Equal(reencode(got[4]), reencode(msgs[4])) {
		t.Error("CACHE_MISS was modified")
	}
}
