package faultconn

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"
)

func pipePair() (net.Conn, net.Conn) { return net.Pipe() }

func TestNoFaultPassthrough(t *testing.T) {
	a, b := pipePair()
	fa := Wrap(a, Plan{})
	defer fa.Close()
	defer b.Close()

	go func() { _, _ = fa.Write([]byte("hello")) }()
	buf := make([]byte, 5)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("got %q", buf)
	}
	if fa.Faulted() {
		t.Fatal("no-fault plan faulted")
	}
}

func TestWriteResetTruncatesMidMessage(t *testing.T) {
	a, b := pipePair()
	fa := Wrap(a, Plan{WriteFaultAfter: 7})
	defer fa.Close()
	defer b.Close()

	var got bytes.Buffer
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 64)
		for {
			n, err := b.Read(buf)
			got.Write(buf[:n])
			if err != nil {
				return
			}
		}
	}()

	n, err := fa.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v (n=%d)", err, n)
	}
	if n != 7 {
		t.Fatalf("truncated write delivered %d bytes, want 7", n)
	}
	<-done
	if got.String() != "0123456" {
		t.Fatalf("peer saw %q, want the 7-byte truncation", got.String())
	}
	// The underlying conn is closed: the peer saw a real failure, and
	// further writes fail too.
	if _, err := fa.Write([]byte("x")); err == nil {
		t.Fatal("write after reset succeeded")
	}
}

func TestReadReset(t *testing.T) {
	a, b := pipePair()
	fa := Wrap(a, Plan{ReadFaultAfter: 4})
	defer fa.Close()
	defer b.Close()

	go func() { _, _ = b.Write([]byte("abcdefgh")) }()
	buf := make([]byte, 8)
	n, err := fa.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("read %d bytes before fault, want 4", n)
	}
	if _, err := fa.Read(buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
}

func TestStallBlocksUntilClose(t *testing.T) {
	a, b := pipePair()
	fa := Wrap(a, Plan{ReadFaultAfter: 1, Stall: true})
	defer b.Close()

	go func() { _, _ = b.Write([]byte("xy")) }()
	buf := make([]byte, 2)
	if _, err := fa.Read(buf); err != nil {
		t.Fatal(err)
	}

	errc := make(chan error, 1)
	go func() {
		_, err := fa.Read(buf)
		errc <- err
	}()
	select {
	case err := <-errc:
		t.Fatalf("stalled read returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	fa.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("want ErrInjected after close, got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("stalled read did not release on close")
	}
}

func TestStallHonorsReadDeadline(t *testing.T) {
	a, b := pipePair()
	fa := Wrap(a, Plan{ReadFaultAfter: 1, Stall: true})
	defer fa.Close()
	defer b.Close()

	go func() { _, _ = b.Write([]byte("xy")) }()
	buf := make([]byte, 2)
	if _, err := fa.Read(buf); err != nil {
		t.Fatal(err)
	}

	// A silent peer with a read deadline set: the stalled read must
	// time out like a real net.Conn, not block until Close.
	if err := fa.SetReadDeadline(time.Now().Add(30 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := fa.Read(buf)
		errc <- err
	}()
	select {
	case err := <-errc:
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("want deadline error from stalled read, got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("stalled read ignored its deadline")
	}
}

func TestNewPlanDeterministic(t *testing.T) {
	p1 := NewPlan(42, 100, 1000)
	p2 := NewPlan(42, 100, 1000)
	if p1 != p2 {
		t.Fatalf("same seed, different plans: %+v vs %+v", p1, p2)
	}
	if p1.ReadFaultAfter < 100 || p1.ReadFaultAfter >= 1000 ||
		p1.WriteFaultAfter < 100 || p1.WriteFaultAfter >= 1000 {
		t.Fatalf("budgets out of range: %+v", p1)
	}
	if NewPlan(43, 100, 1000) == p1 {
		t.Fatal("different seeds produced identical plans")
	}
}
