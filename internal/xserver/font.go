package xserver

import (
	"hash/fnv"
	"sync"

	"thinc/internal/fb"
	"thinc/internal/geom"
)

// Font glyph geometry: a fixed-cell 6x10 font, the size class of the
// era's terminal fonts. Glyph shapes are synthesized deterministically
// from the character code — what matters to the display pipeline is that
// text arrives at the driver as per-glyph stipple fills with realistic
// ink coverage, not the letterforms themselves.
const (
	GlyphW = 6
	GlyphH = 10
)

var (
	glyphMu    sync.Mutex
	glyphCache = map[rune]*fb.Bitmap{}
)

// Glyph returns the stipple bitmap for ch. Whitespace renders empty;
// other characters get a reproducible ~40% ink pattern with a baseline
// row, hashed from the code point.
func Glyph(ch rune) *fb.Bitmap {
	glyphMu.Lock()
	defer glyphMu.Unlock()
	if bm, ok := glyphCache[ch]; ok {
		return bm
	}
	bm := fb.NewBitmap(GlyphW, GlyphH)
	if ch != ' ' && ch != '\t' && ch != '\n' {
		h := fnv.New64a()
		var b [4]byte
		b[0] = byte(ch)
		b[1] = byte(ch >> 8)
		b[2] = byte(ch >> 16)
		b[3] = byte(ch >> 24)
		h.Write(b[:])
		bits := h.Sum64()
		n := 0
		for y := 1; y < GlyphH-2; y++ {
			for x := 0; x < GlyphW-1; x++ {
				if bits&(1<<uint(n%64)) != 0 {
					bm.SetBit(x, y, true)
				}
				n++
				if n%17 == 0 { // stir so tall glyphs don't repeat rows
					bits = bits*0x5851f42d4c957f2d + 1
				}
			}
		}
		// Baseline stroke keeps every glyph visibly anchored.
		for x := 0; x < GlyphW-1; x++ {
			bm.SetBit(x, GlyphH-3, true)
		}
	}
	glyphCache[ch] = bm
	return bm
}

// DrawText renders s with its left baseline cell at (x, y)
// (drawable-local), one stipple fill per glyph — the request stream X
// core text generates, and the many-small-commands case THINC's command
// merging absorbs (§4). It returns the bounding box drawn.
func (d *Display) DrawText(dst Drawable, gc *GC, x, y int, s string) geom.Rect {
	var box geom.Rect
	cx := x
	for _, ch := range s {
		if ch == '\n' {
			cx = x
			y += GlyphH
			continue
		}
		r := geom.XYWH(cx, y, GlyphW, GlyphH)
		tgc := *gc
		tgc.Transparent = true // text paints ink only
		d.StippleRect(dst, &tgc, Glyph(ch), r)
		box = box.Union(r)
		cx += GlyphW
	}
	return box
}
