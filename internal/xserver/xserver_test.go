package xserver

import (
	"testing"

	"thinc/internal/driver"
	"thinc/internal/fb"
	"thinc/internal/geom"
	"thinc/internal/pixel"
)

// recordingDriver captures driver entrypoint invocations for assertions.
type recordingDriver struct {
	driver.Nop
	mem    driver.Memory
	calls  []string
	fills  []geom.Rect
	copies []struct {
		dst, src driver.DrawableID
		sr       geom.Rect
		dp       geom.Point
	}
	inputs []geom.Point
	frames int
}

func (r *recordingDriver) Init(mem driver.Memory, w, h int) {
	r.mem = mem
	r.calls = append(r.calls, "init")
}

func (r *recordingDriver) CreatePixmap(d driver.DrawableID, w, h int) {
	r.calls = append(r.calls, "createpixmap")
}

func (r *recordingDriver) DestroyPixmap(d driver.DrawableID) {
	r.calls = append(r.calls, "destroypixmap")
}

func (r *recordingDriver) FillSolid(d driver.DrawableID, rt geom.Rect, c pixel.ARGB) {
	r.calls = append(r.calls, "fill")
	r.fills = append(r.fills, rt)
}

func (r *recordingDriver) CopyArea(dst, src driver.DrawableID, sr geom.Rect, dp geom.Point) {
	r.calls = append(r.calls, "copy")
	r.copies = append(r.copies, struct {
		dst, src driver.DrawableID
		sr       geom.Rect
		dp       geom.Point
	}{dst, src, sr, dp})
}

func (r *recordingDriver) VideoFrame(stream uint32, f *pixel.YV12Image, pts uint64) {
	r.frames++
}

func (r *recordingDriver) NotifyInput(p geom.Point) { r.inputs = append(r.inputs, p) }

func TestWindowDrawingReachesScreenAndDriver(t *testing.T) {
	rd := &recordingDriver{}
	d := NewDisplay(100, 100, rd)
	w := d.CreateWindow(geom.XYWH(10, 10, 50, 50))
	gc := &GC{Fg: pixel.RGB(255, 0, 0)}

	d.FillRect(w, gc, geom.XYWH(0, 0, 20, 20)) // window-local
	if d.Screen().At(10, 10) != gc.Fg || d.Screen().At(29, 29) != gc.Fg {
		t.Error("fill not rendered at translated position")
	}
	if d.Screen().At(30, 30) == gc.Fg {
		t.Error("fill leaked outside requested rect")
	}
	if len(rd.fills) != 1 || rd.fills[0] != geom.XYWH(10, 10, 20, 20) {
		t.Errorf("driver saw fills %v", rd.fills)
	}
}

func TestWindowClipping(t *testing.T) {
	rd := &recordingDriver{}
	d := NewDisplay(100, 100, rd)
	w := d.CreateWindow(geom.XYWH(10, 10, 20, 20))
	gc := &GC{Fg: pixel.RGB(0, 255, 0)}
	// Fill larger than the window must clip to it.
	d.FillRect(w, gc, geom.XYWH(-5, -5, 100, 100))
	if d.Screen().At(9, 9) == gc.Fg || d.Screen().At(30, 30) == gc.Fg {
		t.Error("fill escaped window clip")
	}
	if d.Screen().At(10, 10) != gc.Fg || d.Screen().At(29, 29) != gc.Fg {
		t.Error("fill missing inside window")
	}
	if rd.fills[0] != geom.XYWH(10, 10, 20, 20) {
		t.Errorf("driver rect not clipped: %v", rd.fills[0])
	}
}

func TestEmptyOpsSkipDriver(t *testing.T) {
	rd := &recordingDriver{}
	d := NewDisplay(50, 50, rd)
	w := d.CreateWindow(geom.XYWH(0, 0, 50, 50))
	d.FillRect(w, &GC{}, geom.XYWH(60, 60, 5, 5)) // fully clipped
	for _, c := range rd.calls {
		if c == "fill" {
			t.Error("fully clipped fill reached the driver")
		}
	}
}

func TestPixmapLifecycle(t *testing.T) {
	rd := &recordingDriver{}
	d := NewDisplay(50, 50, rd)
	p := d.CreatePixmap(16, 16)
	gc := &GC{Fg: pixel.RGB(1, 2, 3)}
	d.FillRect(p, gc, p.Bounds())
	if got := d.ReadPixels(p.target2(), p.Bounds()); got[0] != gc.Fg {
		t.Error("pixmap rendering missing")
	}
	d.FreePixmap(p)
	d.FreePixmap(p) // double free is a no-op
	defer func() {
		if recover() == nil {
			t.Error("drawing on freed pixmap should panic")
		}
	}()
	d.FillRect(p, gc, p.Bounds())
}

// target2 exposes the drawable id for test assertions.
func (p *Pixmap) target2() driver.DrawableID { return p.id }

func TestCopyAreaPixmapToWindow(t *testing.T) {
	rd := &recordingDriver{}
	d := NewDisplay(100, 100, rd)
	w := d.CreateWindow(geom.XYWH(0, 0, 100, 100))
	p := d.CreatePixmap(10, 10)
	gc := &GC{Fg: pixel.RGB(200, 100, 0)}
	d.FillRect(p, gc, p.Bounds())

	d.CopyArea(w, p, p.Bounds(), geom.Point{X: 40, Y: 40})
	if d.Screen().At(40, 40) != gc.Fg || d.Screen().At(49, 49) != gc.Fg {
		t.Error("pixmap contents not copied to screen")
	}
	if len(rd.copies) != 1 {
		t.Fatalf("driver saw %d copies", len(rd.copies))
	}
	c := rd.copies[0]
	if !c.dst.IsScreen() || c.src.IsScreen() {
		t.Error("copy drawables wrong")
	}
	if c.dp != (geom.Point{X: 40, Y: 40}) {
		t.Errorf("copy dest %v", c.dp)
	}
}

func TestCopyAreaScrollSameSurface(t *testing.T) {
	rd := &recordingDriver{}
	d := NewDisplay(40, 40, rd)
	w := d.CreateWindow(geom.XYWH(0, 0, 40, 40))
	gc := &GC{Fg: pixel.RGB(9, 9, 9)}
	d.FillRect(w, gc, geom.XYWH(0, 10, 40, 5))
	// Scroll up by 10.
	d.CopyArea(w, w, geom.XYWH(0, 10, 40, 30), geom.Point{X: 0, Y: 0})
	if d.Screen().At(5, 0) != gc.Fg {
		t.Error("scroll did not move content up")
	}
}

func TestCopyAreaClipsDestination(t *testing.T) {
	rd := &recordingDriver{}
	d := NewDisplay(30, 30, rd)
	w := d.CreateWindow(geom.XYWH(0, 0, 30, 30))
	p := d.CreatePixmap(20, 20)
	d.FillRect(p, &GC{Fg: pixel.RGB(7, 7, 7)}, p.Bounds())
	// Destination hangs off the screen; both rects must shrink together.
	d.CopyArea(w, p, p.Bounds(), geom.Point{X: 25, Y: 25})
	c := rd.copies[0]
	if c.sr.W() != 5 || c.sr.H() != 5 {
		t.Errorf("source not shrunk with clip: %v", c.sr)
	}
	if d.Screen().At(29, 29) != pixel.RGB(7, 7, 7) {
		t.Error("clipped copy content missing")
	}
}

func TestPutImageScanlines(t *testing.T) {
	rd := &recordingDriver{}
	d := NewDisplay(20, 20, rd)
	w := d.CreateWindow(geom.XYWH(0, 0, 20, 20))
	r := geom.XYWH(2, 2, 8, 4)
	pix := make([]pixel.ARGB, r.Area())
	for i := range pix {
		pix[i] = pixel.RGB(uint8(i), 0, 0)
	}
	d.PutImageScanlines(w, r, pix, r.W())
	if d.Stats.Puts != 4 {
		t.Errorf("expected 4 scanline puts, got %d", d.Stats.Puts)
	}
	got := d.Screen().ReadImage(r)
	for i := range pix {
		if got[i] != pix[i] {
			t.Fatalf("pixel %d mismatch", i)
		}
	}
}

func TestCompositeOnWindow(t *testing.T) {
	d := NewDisplay(10, 10, &recordingDriver{})
	w := d.CreateWindow(geom.XYWH(0, 0, 10, 10))
	d.FillRect(w, &GC{Fg: pixel.RGB(0, 0, 0)}, w.Bounds())
	img := []pixel.ARGB{pixel.PackARGB(128, 255, 255, 255)}
	d.Composite(w, geom.XYWH(5, 5, 1, 1), img, 1)
	if r := d.Screen().At(5, 5).R(); r < 120 || r > 136 {
		t.Errorf("composite R=%d, want ~128", r)
	}
}

func TestDrawTextInkAndStats(t *testing.T) {
	rd := &recordingDriver{}
	d := NewDisplay(200, 40, rd)
	w := d.CreateWindow(geom.XYWH(0, 0, 200, 40))
	gc := &GC{Fg: pixel.RGB(255, 255, 255)}
	box := d.DrawText(w, gc, 5, 5, "hello")
	if d.Stats.Stipples != 5 {
		t.Errorf("5 glyphs should be 5 stipples, got %d", d.Stats.Stipples)
	}
	if box != geom.XYWH(5, 5, 5*GlyphW, GlyphH) {
		t.Errorf("text box = %v", box)
	}
	// Some ink must have landed.
	ink := 0
	for _, p := range d.Screen().ReadImage(box) {
		if p == gc.Fg {
			ink++
		}
	}
	if ink == 0 {
		t.Error("no ink rendered")
	}
	// Spaces draw nothing; newline advances.
	d.Stats.Stipples = 0
	d.DrawText(w, gc, 5, 20, "a b\nc")
	if d.Stats.Stipples != 4 {
		t.Errorf("'a b\\nc' should be 4 stipples, got %d", d.Stats.Stipples)
	}
}

func TestGlyphDeterministic(t *testing.T) {
	a1, a2 := Glyph('A'), Glyph('A')
	if a1 != a2 {
		t.Error("glyph cache should return identical bitmap")
	}
	b := Glyph('B')
	same := true
	for y := 0; y < GlyphH && same; y++ {
		for x := 0; x < GlyphW; x++ {
			if a1.BitAt(x, y) != b.BitAt(x, y) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("distinct characters should have distinct glyphs")
	}
	sp := Glyph(' ')
	for y := 0; y < GlyphH; y++ {
		for x := 0; x < GlyphW; x++ {
			if sp.BitAt(x, y) {
				t.Fatal("space must be empty")
			}
		}
	}
}

func TestVideoPortLifecycle(t *testing.T) {
	rd := &recordingDriver{}
	d := NewDisplay(64, 48, rd)
	vp := d.CreateVideoPort(16, 12, geom.XYWH(0, 0, 64, 48))
	pix := make([]pixel.ARGB, 16*12)
	for i := range pix {
		pix[i] = pixel.RGB(100, 50, 25)
	}
	frame := pixel.EncodeYV12(pix, 16, 16, 12)
	vp.PutFrame(frame, 0)
	if rd.frames != 1 || d.Stats.VideoFrames != 1 {
		t.Error("frame not delivered to driver")
	}
	got := d.Screen().At(32, 24)
	if dr := int(got.R()) - 100; dr < -8 || dr > 8 {
		t.Errorf("video not rendered to screen: %v", got)
	}
	vp.Move(geom.XYWH(10, 10, 20, 20))
	if vp.Dst() != geom.XYWH(10, 10, 20, 20) {
		t.Error("move not applied")
	}
	vp.Close()
	vp.Close() // idempotent
	defer func() {
		if recover() == nil {
			t.Error("PutFrame after Close should panic")
		}
	}()
	vp.PutFrame(frame, 1)
}

func TestInjectInput(t *testing.T) {
	rd := &recordingDriver{}
	d := NewDisplay(10, 10, rd)
	d.InjectInput(geom.Point{X: 3, Y: 4})
	if len(rd.inputs) != 1 || rd.inputs[0] != (geom.Point{X: 3, Y: 4}) {
		t.Error("input not forwarded to driver")
	}
}

func TestLocalDriverNopKeepsScreenAuthoritative(t *testing.T) {
	// With the Nop driver (local PC), the screen surface is the display.
	d := NewDisplay(32, 32, driver.Nop{})
	w := d.CreateWindow(geom.XYWH(0, 0, 32, 32))
	tile := fb.NewTile(2, 2, []pixel.ARGB{
		pixel.RGB(1, 1, 1), pixel.RGB(2, 2, 2),
		pixel.RGB(2, 2, 2), pixel.RGB(1, 1, 1),
	})
	d.TileRect(w, tile, geom.XYWH(0, 0, 32, 32))
	if d.Screen().At(0, 0) != pixel.RGB(1, 1, 1) || d.Screen().At(1, 0) != pixel.RGB(2, 2, 2) {
		t.Error("tile not rendered")
	}
}

func TestMoveWindow(t *testing.T) {
	rd := &recordingDriver{}
	d := NewDisplay(100, 100, rd)
	w := d.CreateWindow(geom.XYWH(10, 10, 30, 20))
	gc := &GC{Fg: pixel.RGB(99, 50, 10)}
	d.FillRect(w, gc, geom.XYWH(0, 0, 30, 20))
	desktop := pixel.RGB(5, 5, 5)

	d.MoveWindow(w, geom.Point{X: 50, Y: 40}, desktop)
	if w.Bounds() != geom.XYWH(50, 40, 30, 20) {
		t.Fatalf("window bounds %v", w.Bounds())
	}
	// Contents moved.
	if d.Screen().At(55, 45) != gc.Fg || d.Screen().At(79, 59) != gc.Fg {
		t.Error("window contents did not move")
	}
	// Old location exposed to the desktop.
	if d.Screen().At(15, 15) != desktop {
		t.Errorf("exposed area %v", d.Screen().At(15, 15))
	}
	// The driver saw exactly one copy plus expose fills.
	if len(rd.copies) != 1 {
		t.Errorf("driver saw %d copies, want 1", len(rd.copies))
	}
	// Drawing now lands at the new position.
	d.FillRect(w, &GC{Fg: pixel.RGB(1, 2, 3)}, geom.XYWH(0, 0, 5, 5))
	if d.Screen().At(52, 42) != pixel.RGB(1, 2, 3) {
		t.Error("drawing did not follow the window")
	}
}

func TestMoveWindowClipsAtEdge(t *testing.T) {
	d := NewDisplay(60, 60, &recordingDriver{})
	w := d.CreateWindow(geom.XYWH(0, 0, 30, 30))
	d.FillRect(w, &GC{Fg: pixel.RGB(7, 7, 7)}, w.Bounds())
	d.MoveWindow(w, geom.Point{X: 45, Y: 45}, pixel.RGB(0, 0, 0))
	if w.Bounds() != geom.XYWH(45, 45, 15, 15) {
		t.Fatalf("clipped bounds %v", w.Bounds())
	}
	if d.Screen().At(50, 50) != pixel.RGB(7, 7, 7) {
		t.Error("clipped move lost content")
	}
}
