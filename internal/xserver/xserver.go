// Package xserver implements a miniature X-like window system: the
// unmodified display-system substrate THINC plugs into underneath.
// Applications issue high-level drawing requests against windows and
// offscreen pixmaps; the server renders them in software into its
// surfaces ("video memory") and invokes the attached video device
// driver's entrypoints with the request semantics intact — exactly the
// interception point THINC's virtual driver occupies (§3, §7).
//
// The model is deliberately simplified where the simplification does not
// change what reaches the driver: windows are non-overlapping screen
// regions (no z-order), and there is one screen per display.
package xserver

import (
	"fmt"

	"thinc/internal/driver"
	"thinc/internal/fb"
	"thinc/internal/geom"
	"thinc/internal/pixel"
)

// Display is a window system instance: a screen, its offscreen pixmaps,
// and the video driver that observes all drawing. Displays are not safe
// for concurrent use — window servers are single-threaded, a property
// THINC's non-blocking delivery pipeline is designed around (§5).
type Display struct {
	screen  *fb.Framebuffer
	pixmaps map[driver.DrawableID]*fb.Framebuffer
	drv     driver.Driver
	nextID  driver.DrawableID

	videoNext uint32

	cursorImg        []pixel.ARGB
	cursorW, cursorH int
	cursorHot        geom.Point
	cursorPos        geom.Point

	// Stats counts driver-visible operations; the benchmark harness and
	// tests read them.
	Stats Stats

	// SkipOverlayRender disables software rendering of video frames
	// into the screen surface. Benchmarks of video-capable drivers set
	// it: the overlay sits above the framebuffer, no consumer reads the
	// composited pixels, and skipping the conversion keeps long clip
	// simulations fast. Correctness tests leave it false.
	SkipOverlayRender bool
}

// Stats tallies the drawing requests processed by a Display.
type Stats struct {
	Fills, Tiles, Stipples, Puts, Composites, Copies int
	VideoFrames                                      int
}

// NewDisplay creates a display of the given geometry with drv attached.
func NewDisplay(w, h int, drv driver.Driver) *Display {
	d := &Display{
		screen:  fb.New(w, h),
		pixmaps: make(map[driver.DrawableID]*fb.Framebuffer),
		drv:     drv,
		nextID:  1,
	}
	drv.Init(d, w, h)
	return d
}

// Screen returns the display's visible framebuffer (the reference for
// what any correct client must show).
func (d *Display) Screen() *fb.Framebuffer { return d.screen }

// Bounds returns the screen rectangle.
func (d *Display) Bounds() geom.Rect { return d.screen.Bounds() }

// ReadPixels implements driver.Memory.
func (d *Display) ReadPixels(id driver.DrawableID, r geom.Rect) []pixel.ARGB {
	return d.surface(id).ReadImage(r)
}

// SurfaceSize implements driver.Memory.
func (d *Display) SurfaceSize(id driver.DrawableID) (int, int) {
	s := d.surface(id)
	return s.W(), s.H()
}

func (d *Display) surface(id driver.DrawableID) *fb.Framebuffer {
	if id.IsScreen() {
		return d.screen
	}
	s, ok := d.pixmaps[id]
	if !ok {
		panic(fmt.Sprintf("xserver: unknown drawable %d", id))
	}
	return s
}

// Drawable is a rendering target handle: a window or a pixmap.
type Drawable interface {
	// target resolves to the backing drawable ID, the translation from
	// drawable-local to surface coordinates, and the clip rectangle in
	// surface coordinates.
	target() (id driver.DrawableID, off geom.Point, clip geom.Rect)
	display() *Display
}

// Window is an on-screen drawable occupying a fixed region.
type Window struct {
	d      *Display
	bounds geom.Rect
}

// CreateWindow maps a window covering r (clipped to the screen).
func (d *Display) CreateWindow(r geom.Rect) *Window {
	return &Window{d: d, bounds: r.Intersect(d.screen.Bounds())}
}

// Bounds returns the window's on-screen rectangle.
func (w *Window) Bounds() geom.Rect { return w.bounds }

// MoveWindow relocates a window, moving its contents with one
// screen-to-screen copy (the opaque window movement COPY accelerates,
// §3) and filling the exposed area with the desktop color.
func (d *Display) MoveWindow(w *Window, to geom.Point, desktop pixel.ARGB) {
	old := w.bounds
	nb := geom.XYWH(to.X, to.Y, old.W(), old.H()).Intersect(d.screen.Bounds())
	if nb.Empty() || nb == old {
		w.bounds = nb
		return
	}
	// Content ride-along.
	src := old
	if nb.W() < old.W() || nb.H() < old.H() {
		src = geom.Rect{X0: old.X0, Y0: old.Y0, X1: old.X0 + nb.W(), Y1: old.Y0 + nb.H()}
	}
	d.surface(driver.Screen).Copy(src, nb.Origin())
	d.Stats.Copies++
	d.drv.CopyArea(driver.Screen, driver.Screen, src, nb.Origin())
	// Expose: the vacated region shows the desktop.
	var exposed geom.Region
	exposed.UnionRect(old)
	exposed.SubtractRect(nb)
	for _, r := range exposed.Rects() {
		d.surface(driver.Screen).FillSolid(r, desktop)
		d.Stats.Fills++
		d.drv.FillSolid(driver.Screen, r, desktop)
	}
	w.bounds = nb
}

func (w *Window) target() (driver.DrawableID, geom.Point, geom.Rect) {
	return driver.Screen, w.bounds.Origin(), w.bounds
}

func (w *Window) display() *Display { return w.d }

// Pixmap is an offscreen drawable — the surfaces applications prepare
// their interfaces in before copying them on screen (§4.1).
type Pixmap struct {
	d    *Display
	id   driver.DrawableID
	w, h int
	dead bool
}

// CreatePixmap allocates a w x h offscreen surface.
func (d *Display) CreatePixmap(w, h int) *Pixmap {
	id := d.nextID
	d.nextID++
	d.pixmaps[id] = fb.New(w, h)
	d.drv.CreatePixmap(id, w, h)
	return &Pixmap{d: d, id: id, w: w, h: h}
}

// FreePixmap releases the pixmap; further use panics.
func (d *Display) FreePixmap(p *Pixmap) {
	if p.dead {
		return
	}
	p.dead = true
	delete(d.pixmaps, p.id)
	d.drv.DestroyPixmap(p.id)
}

// Bounds returns the pixmap rectangle (origin 0,0).
func (p *Pixmap) Bounds() geom.Rect { return geom.XYWH(0, 0, p.w, p.h) }

func (p *Pixmap) target() (driver.DrawableID, geom.Point, geom.Rect) {
	if p.dead {
		panic("xserver: use of freed pixmap")
	}
	return p.id, geom.Point{}, p.Bounds()
}

func (p *Pixmap) display() *Display { return p.d }

// GC is a graphics context: the drawing state shared by requests.
type GC struct {
	Fg, Bg      pixel.ARGB
	Transparent bool // stipple fills leave background untouched
}

// resolve translates a drawable-local rect into surface space and clips.
func resolve(dst Drawable, r geom.Rect) (driver.DrawableID, geom.Rect) {
	id, off, clip := dst.target()
	return id, r.Translate(off.X, off.Y).Intersect(clip)
}

// FillRect fills r (drawable-local) with gc's foreground — the request
// that becomes SFILL.
func (d *Display) FillRect(dst Drawable, gc *GC, r geom.Rect) {
	id, sr := resolve(dst, r)
	if sr.Empty() {
		return
	}
	d.surface(id).FillSolid(sr, gc.Fg)
	d.Stats.Fills++
	d.drv.FillSolid(id, sr, gc.Fg)
}

// TileRect tiles r with the pattern — the request that becomes PFILL.
func (d *Display) TileRect(dst Drawable, tile *fb.Tile, r geom.Rect) {
	id, sr := resolve(dst, r)
	if sr.Empty() {
		return
	}
	d.surface(id).FillTile(sr, tile)
	d.Stats.Tiles++
	d.drv.FillTile(id, sr, tile)
}

// StippleRect paints r through the 1-bit stipple bm anchored at r's
// origin, fg for set bits, bg (or nothing when gc.Transparent) for
// clear bits — the request that becomes BITMAP.
func (d *Display) StippleRect(dst Drawable, gc *GC, bm *fb.Bitmap, r geom.Rect) {
	id, sr := resolve(dst, r)
	if sr.Empty() {
		return
	}
	// The fb stipple anchors at the passed rect's origin; preserve the
	// unclipped origin so partial clips keep bit alignment.
	_, off, _ := dst.target()
	full := r.Translate(off.X, off.Y)
	d.surface(id).FillBitmap(full, bm, gc.Fg, gc.Bg, gc.Transparent)
	d.Stats.Stipples++
	d.drv.FillStipple(id, full, bm, gc.Fg, gc.Bg, gc.Transparent)
}

// PutImage writes pixels (row-major, stride in pixels) into r — the
// request that becomes RAW.
func (d *Display) PutImage(dst Drawable, r geom.Rect, pix []pixel.ARGB, stride int) {
	id, sr := resolve(dst, r)
	if sr.Empty() {
		return
	}
	_, off, _ := dst.target()
	full := r.Translate(off.X, off.Y)
	// Re-base the pixel slice to the clipped rect.
	sub := pix[(sr.Y0-full.Y0)*stride+(sr.X0-full.X0):]
	d.surface(id).PutImage(sr, sub, stride)
	d.Stats.Puts++
	d.drv.PutImage(id, sr, sub, stride)
}

// PutImageScanlines issues PutImage one scanline at a time — how real
// applications rasterize large images, and the small-update flood
// THINC's update aggregation is designed to absorb (§4).
func (d *Display) PutImageScanlines(dst Drawable, r geom.Rect, pix []pixel.ARGB, stride int) {
	for y := 0; y < r.H(); y++ {
		row := geom.XYWH(r.X0, r.Y0+y, r.W(), 1)
		d.PutImage(dst, row, pix[y*stride:], stride)
	}
}

// Composite alpha-blends pixels over r — the compositing request path
// (anti-aliased content, translucent UI).
func (d *Display) Composite(dst Drawable, r geom.Rect, pix []pixel.ARGB, stride int) {
	id, sr := resolve(dst, r)
	if sr.Empty() {
		return
	}
	_, off, _ := dst.target()
	full := r.Translate(off.X, off.Y)
	sub := pix[(sr.Y0-full.Y0)*stride+(sr.X0-full.X0):]
	d.surface(id).CompositeOver(sr, sub, stride)
	d.Stats.Composites++
	d.drv.Composite(id, sr, sub, stride)
}

// CopyArea copies sr (src-local) to dp (dst-local). Window-to-window on
// the screen becomes the scroll/move COPY; pixmap-to-window is the
// offscreen flip THINC's translation layer turns back into semantic
// commands (§4.1); pixmap-to-pixmap composes offscreen hierarchies.
func (d *Display) CopyArea(dst Drawable, src Drawable, sr geom.Rect, dp geom.Point) {
	sid, soff, sclip := src.target()
	did, doff, dclip := dst.target()
	// Translate to surface coordinates.
	ssr := sr.Translate(soff.X, soff.Y).Intersect(sclip)
	if ssr.Empty() {
		return
	}
	dpt := dp.Add(doff)
	// Clip the destination; shrink the source to match.
	dr := geom.XYWH(dpt.X, dpt.Y, ssr.W(), ssr.H()).Intersect(dclip)
	if dr.Empty() {
		return
	}
	ssr = geom.Rect{
		X0: ssr.X0 + (dr.X0 - dpt.X),
		Y0: ssr.Y0 + (dr.Y0 - dpt.Y),
		X1: ssr.X0 + (dr.X0 - dpt.X) + dr.W(),
		Y1: ssr.Y0 + (dr.Y0 - dpt.Y) + dr.H(),
	}
	if sid == did {
		d.surface(sid).Copy(ssr, dr.Origin())
	} else {
		d.surface(did).CopyFrom(d.surface(sid), ssr, dr.Origin())
	}
	d.Stats.Copies++
	d.drv.CopyArea(did, sid, ssr, dr.Origin())
}

// InjectInput reports a user input event at p (screen coordinates) to
// the driver so it can mark nearby updates real-time (§5). Mouse input
// also moves the hardware cursor.
func (d *Display) InjectInput(p geom.Point) {
	d.drv.NotifyInput(p)
	d.MoveCursor(p)
}

// SetCursor installs the session's cursor image (row-major ARGB, hot
// spot relative to the image origin) — the DDX cursor entrypoint.
func (d *Display) SetCursor(img []pixel.ARGB, w, h int, hot geom.Point) {
	if len(img) != w*h || w <= 0 || h <= 0 {
		panic(fmt.Sprintf("xserver: cursor %dx%d with %d pixels", w, h, len(img)))
	}
	d.cursorImg = append([]pixel.ARGB(nil), img...)
	d.cursorW, d.cursorH = w, h
	d.cursorHot = hot
	d.drv.SetCursor(d.cursorImg, w, h, hot)
}

// MoveCursor repositions the hardware cursor.
func (d *Display) MoveCursor(p geom.Point) {
	d.cursorPos = p
	d.drv.MoveCursor(p)
}

// CursorPos returns the current cursor position.
func (d *Display) CursorPos() geom.Point { return d.cursorPos }
