package xserver

import (
	"thinc/internal/geom"
	"thinc/internal/pixel"
)

// VideoPort is the XVideo-like extension handle: applications push
// decoder-output YV12 frames at it and the display system hands them to
// the driver, which on real hardware (or a THINC client) performs
// color-space conversion and scaling in the overlay (§4.2). The
// software path below renders the frame into the screen surface so the
// display's reference content stays authoritative.
type VideoPort struct {
	d      *Display
	stream uint32
	srcW   int
	srcH   int
	dst    geom.Rect
	closed bool
}

// CreateVideoPort opens a stream of srcW x srcH frames displayed at dst
// (screen coordinates, may be any size — the overlay scales).
func (d *Display) CreateVideoPort(srcW, srcH int, dst geom.Rect) *VideoPort {
	d.videoNext++
	vp := &VideoPort{d: d, stream: d.videoNext, srcW: srcW, srcH: srcH, dst: dst}
	d.drv.VideoSetup(vp.stream, srcW, srcH, dst)
	return vp
}

// Stream returns the port's stream identifier.
func (vp *VideoPort) Stream() uint32 { return vp.stream }

// Dst returns the current on-screen destination.
func (vp *VideoPort) Dst() geom.Rect { return vp.dst }

// PutFrame displays one frame with the given presentation timestamp.
func (vp *VideoPort) PutFrame(frame *pixel.YV12Image, ptsUS uint64) {
	if vp.closed {
		panic("xserver: PutFrame on closed video port")
	}
	if !vp.d.SkipOverlayRender {
		vp.d.screen.OverlayYV12(vp.dst, frame)
	}
	vp.d.Stats.VideoFrames++
	vp.d.drv.VideoFrame(vp.stream, frame, ptsUS)
}

// Move repositions/resizes the on-screen destination without
// interrupting the stream.
func (vp *VideoPort) Move(dst geom.Rect) {
	if vp.closed {
		return
	}
	vp.dst = dst
	vp.d.drv.VideoMove(vp.stream, dst)
}

// Close tears the stream down.
func (vp *VideoPort) Close() {
	if vp.closed {
		return
	}
	vp.closed = true
	vp.d.drv.VideoStop(vp.stream)
}
