// Package payloadcache implements the deterministic byte-budget LRU
// behind the wire-v6 content-addressed payload cache. The server keeps
// one instance per client as its model of what the client holds; the
// client keeps one as the store itself. Neither side ever sends an
// eviction message: both run this exact policy over the same ordered
// operation stream (Insert on every CACHE_STORE, Touch on every
// CACHE_PAINT), so the two caches evict the same digests at the same
// points — the synchronization is the determinism.
//
// The implementation is index-based (nodes in a slice, intrusive
// doubly-linked recency list, free list of recycled slots) so the
// steady-state hit path — one map lookup plus a list splice — performs
// no allocation, which the cache AllocsPerRun benchmark gate enforces.
package payloadcache

const none = int32(-1)

type node struct {
	digest     uint64
	size       int
	prev, next int32
}

// LRU is a byte-capacity least-recently-used index of content digests.
// It is not safe for concurrent use; both users run under their side's
// session lock.
type LRU struct {
	cap   int
	bytes int
	nodes []node
	index map[uint64]int32
	head  int32 // most recent
	tail  int32 // next victim
	free  []int32

	// onEvict, when set, observes each digest the byte budget pushes
	// out (the client deletes the payload it kept for that digest).
	onEvict func(digest uint64, size int)

	// epoch is the wire-v7 generation stamp: the server bumps it to a
	// fresh nonzero value whenever a client's cache starts cold, and a
	// reattaching client may resume warm only by echoing the exact
	// stamp. 0 means unstamped and never matches a warm claim.
	epoch uint64
}

// New creates an LRU holding at most capBytes of entry payload. onEvict
// may be nil.
func New(capBytes int, onEvict func(digest uint64, size int)) *LRU {
	return &LRU{
		cap:     capBytes,
		index:   make(map[uint64]int32),
		head:    none,
		tail:    none,
		onEvict: onEvict,
	}
}

// Cap returns the byte capacity.
func (l *LRU) Cap() int { return l.cap }

// Epoch returns the generation stamp set by SetEpoch (0 = unstamped).
func (l *LRU) Epoch() uint64 { return l.epoch }

// SetEpoch stamps the cache with a generation counter. Both sides of a
// warm reattach must carry the same stamp; a cold start re-stamps.
func (l *LRU) SetEpoch(e uint64) { l.epoch = e }

// Bytes returns the payload bytes currently held.
func (l *LRU) Bytes() int { return l.bytes }

// Len returns the number of entries.
func (l *LRU) Len() int { return len(l.index) }

// Has reports whether digest is present without disturbing recency —
// the read-only probe sizing and scheduling use.
func (l *LRU) Has(digest uint64) bool {
	_, ok := l.index[digest]
	return ok
}

// Touch moves digest to the front of the recency list, reporting
// whether it was present. Every CACHE_PAINT is a Touch on both sides.
func (l *LRU) Touch(digest uint64) bool {
	i, ok := l.index[digest]
	if !ok {
		return false
	}
	l.moveFront(i)
	return true
}

// Insert adds digest at the front and evicts from the tail until the
// byte budget holds again, reporting whether the entry was admitted.
// An already-present digest is only touched. Entries larger than the
// whole capacity are refused — deterministically, so a peer applying
// the same stream refuses them too. Every CACHE_STORE is an Insert on
// both sides.
func (l *LRU) Insert(digest uint64, size int) bool {
	if size <= 0 || size > l.cap {
		return false
	}
	if i, ok := l.index[digest]; ok {
		l.moveFront(i)
		return true
	}
	var i int32
	if n := len(l.free); n > 0 {
		i = l.free[n-1]
		l.free = l.free[:n-1]
	} else {
		l.nodes = append(l.nodes, node{})
		i = int32(len(l.nodes) - 1)
	}
	l.nodes[i] = node{digest: digest, size: size, prev: none, next: l.head}
	if l.head != none {
		l.nodes[l.head].prev = i
	}
	l.head = i
	if l.tail == none {
		l.tail = i
	}
	l.index[digest] = i
	l.bytes += size
	for l.bytes > l.cap {
		l.evictTail()
	}
	return true
}

// Forget drops digest if present — the server's response to a client
// CACHE_MISS report (the client evidently does not hold it).
func (l *LRU) Forget(digest uint64) bool {
	i, ok := l.index[digest]
	if !ok {
		return false
	}
	l.remove(i)
	return true
}

// Clear empties the cache, reporting evictions for held entries.
func (l *LRU) Clear() {
	for l.tail != none {
		l.evictTail()
	}
}

func (l *LRU) moveFront(i int32) {
	if l.head == i {
		return
	}
	n := &l.nodes[i]
	if n.prev != none {
		l.nodes[n.prev].next = n.next
	}
	if n.next != none {
		l.nodes[n.next].prev = n.prev
	}
	if l.tail == i {
		l.tail = n.prev
	}
	n.prev = none
	n.next = l.head
	l.nodes[l.head].prev = i
	l.head = i
}

func (l *LRU) evictTail() {
	i := l.tail
	if i == none {
		return
	}
	d, sz := l.nodes[i].digest, l.nodes[i].size
	l.remove(i)
	if l.onEvict != nil {
		l.onEvict(d, sz)
	}
}

func (l *LRU) remove(i int32) {
	n := &l.nodes[i]
	if n.prev != none {
		l.nodes[n.prev].next = n.next
	}
	if n.next != none {
		l.nodes[n.next].prev = n.prev
	}
	if l.head == i {
		l.head = n.next
	}
	if l.tail == i {
		l.tail = n.prev
	}
	delete(l.index, n.digest)
	l.bytes -= n.size
	l.free = append(l.free, i)
}
