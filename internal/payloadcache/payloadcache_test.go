package payloadcache

import (
	"math/rand"
	"testing"
)

func TestInsertTouchEvictOrder(t *testing.T) {
	var evicted []uint64
	l := New(100, func(d uint64, _ int) { evicted = append(evicted, d) })
	for d := uint64(1); d <= 4; d++ {
		if !l.Insert(d, 25) {
			t.Fatalf("insert %d refused", d)
		}
	}
	if l.Len() != 4 || l.Bytes() != 100 {
		t.Fatalf("len=%d bytes=%d, want 4/100", l.Len(), l.Bytes())
	}
	// Touch 1 so 2 becomes the LRU victim.
	if !l.Touch(1) {
		t.Fatal("touch 1 missed")
	}
	l.Insert(5, 50) // needs two evictions: 2 then 3
	if want := []uint64{2, 3}; len(evicted) != 2 || evicted[0] != want[0] || evicted[1] != want[1] {
		t.Fatalf("evicted %v, want %v", evicted, want)
	}
	if l.Has(2) || l.Has(3) || !l.Has(1) || !l.Has(4) || !l.Has(5) {
		t.Fatalf("wrong survivors")
	}
	if l.Bytes() != 100 {
		t.Fatalf("bytes=%d, want 100", l.Bytes())
	}
}

func TestInsertRefusesOversizeAndDuplicates(t *testing.T) {
	l := New(64, nil)
	if l.Insert(1, 65) {
		t.Fatal("oversize entry admitted")
	}
	if l.Insert(2, 0) {
		t.Fatal("zero-size entry admitted")
	}
	l.Insert(3, 10)
	l.Insert(4, 10)
	// Re-inserting an existing digest is a touch, not a double count.
	l.Insert(3, 10)
	if l.Bytes() != 20 || l.Len() != 2 {
		t.Fatalf("bytes=%d len=%d after duplicate insert", l.Bytes(), l.Len())
	}
	l.Insert(5, 50) // evicts 4 (3 was touched by re-insert)
	if l.Has(4) || !l.Has(3) {
		t.Fatal("duplicate insert did not refresh recency")
	}
}

func TestForgetAndClear(t *testing.T) {
	evicted := 0
	l := New(100, func(uint64, int) { evicted++ })
	l.Insert(1, 30)
	l.Insert(2, 30)
	if !l.Forget(1) || l.Forget(1) {
		t.Fatal("forget semantics wrong")
	}
	if l.Bytes() != 30 || l.Has(1) {
		t.Fatal("forget did not remove entry")
	}
	if evicted != 0 {
		t.Fatal("forget must not report an eviction")
	}
	l.Clear()
	if l.Len() != 0 || l.Bytes() != 0 || evicted != 1 {
		t.Fatalf("clear: len=%d bytes=%d evicted=%d", l.Len(), l.Bytes(), evicted)
	}
	// Slots recycle: a fresh insert reuses freed nodes.
	l.Insert(9, 10)
	if !l.Has(9) {
		t.Fatal("insert after clear failed")
	}
}

// TestTwoSidesConverge drives two independent LRUs — the server model
// and the client store — through the same randomized operation stream
// and demands identical state at every step. This is the property the
// protocol's no-eviction-messages design rests on.
func TestTwoSidesConverge(t *testing.T) {
	rnd := rand.New(rand.NewSource(8))
	server := New(4096, nil)
	client := New(4096, nil)
	for i := 0; i < 20000; i++ {
		d := uint64(rnd.Intn(64) + 1)
		size := int(d) * 16 // size is a function of content, same both sides
		if server.Touch(d) {
			if !client.Touch(d) {
				t.Fatalf("step %d: server hit %d, client missed", i, d)
			}
			continue
		}
		server.Insert(d, size)
		client.Insert(d, size)
	}
	if server.Len() != client.Len() || server.Bytes() != client.Bytes() {
		t.Fatalf("diverged: server %d/%d, client %d/%d",
			server.Len(), server.Bytes(), client.Len(), client.Bytes())
	}
	for d := uint64(1); d <= 64; d++ {
		if server.Has(d) != client.Has(d) {
			t.Fatalf("digest %d: server=%v client=%v", d, server.Has(d), client.Has(d))
		}
	}
}

// TestSteadyStateZeroAlloc pins the hot path: once the working set is
// resident, Touch and re-Insert allocate nothing.
func TestSteadyStateZeroAlloc(t *testing.T) {
	l := New(1<<20, nil)
	for d := uint64(1); d <= 256; d++ {
		l.Insert(d, 1024)
	}
	d := uint64(1)
	allocs := testing.AllocsPerRun(1000, func() {
		l.Touch(d)
		d++
		if d > 256 {
			d = 1
		}
	})
	if allocs != 0 {
		t.Fatalf("Touch allocates %v per op", allocs)
	}
	// Churn: evict-and-insert over recycled slots should also be free.
	next := uint64(1000)
	allocs = testing.AllocsPerRun(100, func() {
		l.Insert(next, 1024)
		next++
	})
	// Map growth can occasionally allocate; allow a small bound.
	if allocs > 1 {
		t.Fatalf("churn Insert allocates %v per op", allocs)
	}
}

func BenchmarkTouchHit(b *testing.B) {
	l := New(1<<20, nil)
	for d := uint64(1); d <= 512; d++ {
		l.Insert(d, 1024)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Touch(uint64(i%512) + 1)
	}
}
