package payloadcache

import (
	"math/rand"
	"testing"
)

// refLRU is a brute-force reference implementation: a plain slice kept
// in recency order (front = most recent), every operation O(n). The
// production LRU must agree with it on every observable — membership,
// byte accounting, and crucially the exact eviction order, because the
// wire-v6 protocol ships no eviction messages and relies on both sides
// deriving identical victims from the same operation stream.
type refLRU struct {
	cap     int
	entries []refEntry // index 0 = most recent
	evicted []uint64
}

type refEntry struct {
	digest uint64
	size   int
}

func (r *refLRU) bytes() int {
	n := 0
	for _, e := range r.entries {
		n += e.size
	}
	return n
}

func (r *refLRU) find(digest uint64) int {
	for i, e := range r.entries {
		if e.digest == digest {
			return i
		}
	}
	return -1
}

func (r *refLRU) touch(digest uint64) bool {
	i := r.find(digest)
	if i < 0 {
		return false
	}
	e := r.entries[i]
	r.entries = append(r.entries[:i], r.entries[i+1:]...)
	r.entries = append([]refEntry{e}, r.entries...)
	return true
}

func (r *refLRU) insert(digest uint64, size int) bool {
	if size <= 0 || size > r.cap {
		return false
	}
	if r.touch(digest) {
		return true
	}
	r.entries = append([]refEntry{{digest, size}}, r.entries...)
	for r.bytes() > r.cap {
		last := r.entries[len(r.entries)-1]
		r.entries = r.entries[:len(r.entries)-1]
		r.evicted = append(r.evicted, last.digest)
	}
	return true
}

func (r *refLRU) forget(digest uint64) bool {
	i := r.find(digest)
	if i < 0 {
		return false
	}
	r.entries = append(r.entries[:i], r.entries[i+1:]...)
	return true
}

// TestRandomOpsMatchReference drives the production LRU and the
// brute-force reference through the same randomized store/touch/evict
// stream and asserts identical results, byte accounting, membership,
// and eviction order after every operation. Several (seed, capacity)
// combinations keep the digest working set near, below, and far above
// capacity so the eviction path stays hot.
func TestRandomOpsMatchReference(t *testing.T) {
	for _, tc := range []struct {
		seed    int64
		cap     int
		digests int
		maxSize int
		ops     int
	}{
		{1, 1 << 10, 16, 300, 4000},  // churny: working set >> cap
		{2, 1 << 14, 48, 500, 4000},  // roomy: evictions rare
		{3, 1 << 12, 8, 4096, 4000},  // oversize inserts mixed in
		{4, 1 << 11, 32, 1, 4000},    // tiny entries: count-bound
		{5, 1 << 12, 24, 2048, 6000}, // half-cap entries: rapid turnover
	} {
		rnd := rand.New(rand.NewSource(tc.seed))
		var gotEvicted []uint64
		l := New(tc.cap, func(d uint64, _ int) { gotEvicted = append(gotEvicted, d) })
		ref := &refLRU{cap: tc.cap}
		for op := 0; op < tc.ops; op++ {
			d := uint64(rnd.Intn(tc.digests)) + 1
			switch rnd.Intn(4) {
			case 0: // touch (CACHE_PAINT)
				if got, want := l.Touch(d), ref.touch(d); got != want {
					t.Fatalf("seed %d op %d: Touch(%d) = %v, ref %v", tc.seed, op, d, got, want)
				}
			case 1: // forget (CACHE_MISS repair)
				if got, want := l.Forget(d), ref.forget(d); got != want {
					t.Fatalf("seed %d op %d: Forget(%d) = %v, ref %v", tc.seed, op, d, got, want)
				}
			default: // insert (CACHE_STORE), weighted 2x
				size := rnd.Intn(tc.maxSize) + 1
				if got, want := l.Insert(d, size), ref.insert(d, size); got != want {
					t.Fatalf("seed %d op %d: Insert(%d, %d) = %v, ref %v", tc.seed, op, d, size, got, want)
				}
			}
			if l.Bytes() != ref.bytes() {
				t.Fatalf("seed %d op %d: bytes %d, ref %d", tc.seed, op, l.Bytes(), ref.bytes())
			}
			if l.Len() != len(ref.entries) {
				t.Fatalf("seed %d op %d: len %d, ref %d", tc.seed, op, l.Len(), len(ref.entries))
			}
			for _, e := range ref.entries {
				if !l.Has(e.digest) {
					t.Fatalf("seed %d op %d: digest %d missing", tc.seed, op, e.digest)
				}
			}
			if len(gotEvicted) != len(ref.evicted) {
				t.Fatalf("seed %d op %d: %d evictions, ref %d", tc.seed, op, len(gotEvicted), len(ref.evicted))
			}
			for i := range gotEvicted {
				if gotEvicted[i] != ref.evicted[i] {
					t.Fatalf("seed %d op %d: eviction %d = digest %d, ref %d",
						tc.seed, op, i, gotEvicted[i], ref.evicted[i])
				}
			}
		}
		// Drain: Clear must evict everything in exact tail-first order.
		wantOrder := make([]uint64, 0, len(ref.entries))
		for i := len(ref.entries) - 1; i >= 0; i-- {
			wantOrder = append(wantOrder, ref.entries[i].digest)
		}
		pre := len(gotEvicted)
		l.Clear()
		got := gotEvicted[pre:]
		if len(got) != len(wantOrder) {
			t.Fatalf("seed %d: Clear evicted %d, want %d", tc.seed, len(got), len(wantOrder))
		}
		for i := range got {
			if got[i] != wantOrder[i] {
				t.Fatalf("seed %d: Clear eviction %d = digest %d, want %d", tc.seed, i, got[i], wantOrder[i])
			}
		}
		if l.Bytes() != 0 || l.Len() != 0 {
			t.Fatalf("seed %d: cache not empty after Clear", tc.seed)
		}
	}
}

// TestEpochStamp covers the wire-v7 generation stamp: it defaults to 0
// (never a warm claim), survives normal cache traffic, and re-stamps.
func TestEpochStamp(t *testing.T) {
	l := New(1024, nil)
	if l.Epoch() != 0 {
		t.Fatalf("fresh cache epoch = %d, want 0", l.Epoch())
	}
	l.SetEpoch(7)
	l.Insert(1, 100)
	l.Touch(1)
	l.Forget(1)
	l.Clear()
	if l.Epoch() != 7 {
		t.Fatalf("epoch changed by cache traffic: %d, want 7", l.Epoch())
	}
	l.SetEpoch(8)
	if l.Epoch() != 8 {
		t.Fatalf("re-stamp failed: %d, want 8", l.Epoch())
	}
}
