package wire

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzReadMessage drives the framed decoder with arbitrary bytes: it
// must never panic, and anything it accepts must survive a marshal /
// re-decode round trip (the decoder and encoder agree on the format).
// The corpus seeds every message type — display, video, audio, control,
// auth, and the session-resilience messages — plus truncated and
// corrupted variants of each.
func FuzzReadMessage(f *testing.F) {
	for _, m := range sampleMessages() {
		buf, err := Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		// Truncated frame: header promises more payload than follows.
		if len(buf) > HeaderSize {
			f.Add(buf[:HeaderSize+(len(buf)-HeaderSize)/2])
		}
		// Corrupt length field.
		bad := append([]byte(nil), buf...)
		bad[1] ^= 0xff
		f.Add(bad)
		// Flipped type byte: payload of one type decoded as another.
		bad2 := append([]byte(nil), buf...)
		bad2[0] ^= 0x07
		f.Add(bad2)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		out, err := Marshal(m)
		if err != nil {
			t.Fatalf("accepted message failed to marshal: %v", err)
		}
		m2, err := ReadMessage(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if m2.Type() != m.Type() {
			t.Fatalf("type changed across round trip: %v -> %v", m.Type(), m2.Type())
		}
	})
}

// controlMessages returns the handshake and session-control subset —
// the messages a hostile or broken peer feeds the server first.
func controlMessages() []Message {
	var ctl []Message
	for _, m := range sampleMessages() {
		switch m.(type) {
		case *ServerInit, *ClientInit, *Resize, *Input,
			*AuthChallenge, *AuthResponse, *AuthResult, *UpdateRequest,
			*Ping, *Pong, *SessionTicket, *Reattach:
			ctl = append(ctl, m)
		}
	}
	return ctl
}

// TestControlMessageTruncationSweep cuts every control message at every
// byte boundary: no truncation may panic the decoder, and every
// truncation must be reported as an error, never silently accepted as a
// different valid message of the same type.
func TestControlMessageTruncationSweep(t *testing.T) {
	for _, m := range controlMessages() {
		buf, err := Marshal(m)
		if err != nil {
			t.Fatalf("%v: marshal: %v", m.Type(), err)
		}
		payload := buf[HeaderSize:]
		for cut := 0; cut < len(payload); cut++ {
			if _, err := Unmarshal(m.Type(), payload[:cut]); err == nil {
				// A shorter prefix that still decodes means the format is
				// ambiguous under truncation.
				t.Errorf("%v: payload truncated to %d/%d bytes decoded without error",
					m.Type(), cut, len(payload))
			}
		}
	}
}

// TestControlMessageBitFlips flips each byte of every control message
// payload and decodes: corruption may be accepted (values change) or
// rejected, but must never panic, and oversized inner lengths must be
// caught by the bounds-checked decoder.
func TestControlMessageBitFlips(t *testing.T) {
	for _, m := range controlMessages() {
		buf, err := Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		payload := buf[HeaderSize:]
		for i := range payload {
			mut := append([]byte(nil), payload...)
			mut[i] ^= 0xff
			_, _ = Unmarshal(m.Type(), mut) // must not panic
		}
	}
}

// TestUnknownTypeSkippable verifies the forward-compatibility contract:
// a well-framed message of an unknown type yields ErrUnknownType with
// the stream positioned at the next frame, so a reader can skip it.
func TestUnknownTypeSkippable(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xee, 0, 0, 0, 3, 1, 2, 3}) // unknown type, 3-byte payload
	if err := WriteMessage(&buf, &Ping{Seq: 9}); err != nil {
		t.Fatal(err)
	}
	_, err := ReadMessage(&buf)
	if !errors.Is(err, ErrUnknownType) {
		t.Fatalf("unknown type: got %v, want ErrUnknownType", err)
	}
	m, err := ReadMessage(&buf)
	if err != nil {
		t.Fatalf("read after skipped unknown type: %v", err)
	}
	if p, ok := m.(*Ping); !ok || p.Seq != 9 {
		t.Fatalf("stream misaligned after unknown type: got %#v", m)
	}
}
