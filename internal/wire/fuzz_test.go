package wire

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzReadMessage drives the framed decoder with arbitrary bytes: it
// must never panic, and anything it accepts must survive a marshal /
// re-decode round trip (the decoder and encoder agree on the format).
// The corpus seeds every message type — display, video, audio, control,
// auth, and the session-resilience messages — plus truncated and
// corrupted variants of each.
func FuzzReadMessage(f *testing.F) {
	for _, m := range sampleMessages() {
		buf, err := Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		// Truncated frame: header promises more payload than follows.
		if len(buf) > HeaderSize {
			f.Add(buf[:HeaderSize+(len(buf)-HeaderSize)/2])
		}
		// Corrupt length field.
		bad := append([]byte(nil), buf...)
		bad[1] ^= 0xff
		f.Add(bad)
		// Flipped type byte: payload of one type decoded as another.
		bad2 := append([]byte(nil), buf...)
		bad2[0] ^= 0x07
		f.Add(bad2)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		out, err := Marshal(m)
		if err != nil {
			t.Fatalf("accepted message failed to marshal: %v", err)
		}
		m2, err := ReadMessage(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if m2.Type() != m.Type() {
			t.Fatalf("type changed across round trip: %v -> %v", m.Type(), m2.Type())
		}
	})
}

// controlMessages returns the handshake and session-control subset —
// the messages a hostile or broken peer feeds the server first.
func controlMessages() []Message {
	var ctl []Message
	for _, m := range sampleMessages() {
		switch m.(type) {
		case *ServerInit, *ClientInit, *Resize, *Input,
			*AuthChallenge, *AuthResponse, *AuthResult, *UpdateRequest,
			*Ping, *Pong, *SessionTicket, *Reattach, *DegradeNotice,
			*AuditProbe, *AuditReply, *TimeMark, *MarkAck:
			ctl = append(ctl, m)
		}
	}
	return ctl
}

// optionalTrailing reports how many trailing payload bytes of m form a
// documented backward-compatible extension: a shorter prefix that omits
// them is itself a valid legacy v3 encoding, so the truncation sweep
// must accept it decoding cleanly. Currently this is the Role byte on
// the attach-handshake messages.
func optionalTrailing(m Message) int {
	switch m.(type) {
	case *ClientInit, *SessionTicket, *Reattach:
		return 1
	}
	return 0
}

// TestControlMessageTruncationSweep cuts every control message at every
// byte boundary: no truncation may panic the decoder, and every
// truncation must be reported as an error, never silently accepted as a
// different valid message of the same type. The only exemption is the
// documented trailing-extension region (optionalTrailing), whose
// omission is the legacy encoding, not an ambiguity.
func TestControlMessageTruncationSweep(t *testing.T) {
	for _, m := range controlMessages() {
		buf, err := Marshal(m)
		if err != nil {
			t.Fatalf("%v: marshal: %v", m.Type(), err)
		}
		payload := buf[HeaderSize:]
		legacy := len(payload) - optionalTrailing(m)
		for cut := 0; cut < len(payload); cut++ {
			_, err := Unmarshal(m.Type(), payload[:cut])
			if cut == legacy {
				if err != nil {
					t.Errorf("%v: legacy prefix (%d/%d bytes) must still decode, got %v",
						m.Type(), cut, len(payload), err)
				}
				continue
			}
			if err == nil {
				// A shorter prefix that still decodes means the format is
				// ambiguous under truncation.
				t.Errorf("%v: payload truncated to %d/%d bytes decoded without error",
					m.Type(), cut, len(payload))
			}
		}
	}
}

// TestControlMessageBitFlips flips each byte of every control message
// payload and decodes: corruption may be accepted (values change) or
// rejected, but must never panic, and oversized inner lengths must be
// caught by the bounds-checked decoder.
func TestControlMessageBitFlips(t *testing.T) {
	for _, m := range controlMessages() {
		buf, err := Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		payload := buf[HeaderSize:]
		for i := range payload {
			mut := append([]byte(nil), payload...)
			mut[i] ^= 0xff
			_, _ = Unmarshal(m.Type(), mut) // must not panic
		}
	}
}

// TestUnknownTypeSkippable verifies the forward-compatibility contract:
// a well-framed message of an unknown type yields ErrUnknownType with
// the stream positioned at the next frame, so a reader can skip it.
func TestUnknownTypeSkippable(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xee, 0, 0, 0, 3, 1, 2, 3}) // unknown type, 3-byte payload
	if err := WriteMessage(&buf, &Ping{Seq: 9}); err != nil {
		t.Fatal(err)
	}
	_, err := ReadMessage(&buf)
	if !errors.Is(err, ErrUnknownType) {
		t.Fatalf("unknown type: got %v, want ErrUnknownType", err)
	}
	m, err := ReadMessage(&buf)
	if err != nil {
		t.Fatalf("read after skipped unknown type: %v", err)
	}
	if p, ok := m.(*Ping); !ok || p.Seq != 9 {
		t.Fatalf("stream misaligned after unknown type: got %#v", m)
	}
}

// streamingMessages returns the high-volume streaming subset: the
// length-prefixed payload carriers where a corrupted length field is
// most dangerous (over-read, over-allocation, misframing).
func streamingMessages() []Message {
	return []Message{
		&VideoFrame{Stream: 1, Seq: 2, PTS: 3, W: 8, H: 6, Data: make([]byte, 8*6*3/2)},
		&VideoFrame{Stream: 9, Seq: 1 << 30, PTS: 1 << 60, W: 1920, H: 1080, Data: []byte{1}},
		&VideoFrame{},
		&AudioData{PTS: 44100, Data: make([]byte, 512)},
		&AudioData{PTS: ^uint64(0), Data: []byte{0xff}},
		&AudioData{},
	}
}

// FuzzVideoFrame drives the VideoFrame payload decoder directly with
// arbitrary bytes. Anything accepted must carry a Data slice actually
// backed by the input (no conjured bytes from a lying length field) and
// must survive a marshal / re-decode round trip.
func FuzzVideoFrame(f *testing.F) {
	for _, m := range streamingMessages() {
		if _, ok := m.(*VideoFrame); !ok {
			continue
		}
		buf, err := Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf[HeaderSize:])
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, payload []byte) {
		m, err := Unmarshal(TVideoFrame, payload)
		if err != nil {
			return
		}
		vf := m.(*VideoFrame)
		if len(vf.Data) > len(payload) {
			t.Fatalf("decoder conjured %d data bytes from a %d-byte payload",
				len(vf.Data), len(payload))
		}
		out, err := Marshal(vf)
		if err != nil {
			t.Fatalf("accepted frame failed to marshal: %v", err)
		}
		m2, err := ReadMessage(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		vf2 := m2.(*VideoFrame)
		if vf2.Stream != vf.Stream || vf2.Seq != vf.Seq || vf2.PTS != vf.PTS ||
			vf2.W != vf.W || vf2.H != vf.H || !bytes.Equal(vf2.Data, vf.Data) {
			t.Fatalf("frame changed across round trip: %#v -> %#v", vf, vf2)
		}
	})
}

// FuzzAudioData is the same contract for the audio channel — the one
// payload that must keep flowing even at the harshest degradation rung,
// so its decoder gets its own target.
func FuzzAudioData(f *testing.F) {
	for _, m := range streamingMessages() {
		if _, ok := m.(*AudioData); !ok {
			continue
		}
		buf, err := Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf[HeaderSize:])
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, payload []byte) {
		m, err := Unmarshal(TAudioData, payload)
		if err != nil {
			return
		}
		ad := m.(*AudioData)
		if len(ad.Data) > len(payload) {
			t.Fatalf("decoder conjured %d data bytes from a %d-byte payload",
				len(ad.Data), len(payload))
		}
		out, err := Marshal(ad)
		if err != nil {
			t.Fatalf("accepted chunk failed to marshal: %v", err)
		}
		m2, err := ReadMessage(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		ad2 := m2.(*AudioData)
		if ad2.PTS != ad.PTS || !bytes.Equal(ad2.Data, ad.Data) {
			t.Fatalf("chunk changed across round trip: %#v -> %#v", ad, ad2)
		}
	})
}

// TestStreamingMessageTruncationSweep is the control-message truncation
// sweep applied to the streaming carriers: every cut of every payload
// must be rejected, never silently misframed.
func TestStreamingMessageTruncationSweep(t *testing.T) {
	for _, m := range streamingMessages() {
		buf, err := Marshal(m)
		if err != nil {
			t.Fatalf("%v: marshal: %v", m.Type(), err)
		}
		payload := buf[HeaderSize:]
		for cut := 0; cut < len(payload); cut++ {
			if _, err := Unmarshal(m.Type(), payload[:cut]); err == nil {
				t.Errorf("%v: payload truncated to %d/%d bytes decoded without error",
					m.Type(), cut, len(payload))
			}
		}
	}
}

// TestStreamingMessageBitFlips flips each payload byte of the streaming
// messages: corruption may decode to different values or be rejected,
// but must never panic or over-read.
func TestStreamingMessageBitFlips(t *testing.T) {
	for _, m := range streamingMessages() {
		buf, err := Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		payload := buf[HeaderSize:]
		for i := range payload {
			mut := append([]byte(nil), payload...)
			mut[i] ^= 0xff
			_, _ = Unmarshal(m.Type(), mut) // must not panic
		}
	}
}
