package wire

import (
	"bytes"
	"testing"
)

// FuzzReadMessage drives the framed decoder with arbitrary bytes: it
// must never panic, and anything it accepts must survive a marshal /
// re-decode round trip (the decoder and encoder agree on the format).
func FuzzReadMessage(f *testing.F) {
	for _, m := range sampleMessages() {
		buf, err := Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		out, err := Marshal(m)
		if err != nil {
			t.Fatalf("accepted message failed to marshal: %v", err)
		}
		m2, err := ReadMessage(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if m2.Type() != m.Type() {
			t.Fatalf("type changed across round trip: %v -> %v", m.Type(), m2.Type())
		}
	})
}
