package wire

import (
	"bytes"
	"errors"
	"testing"

	"thinc/internal/compress"
	"thinc/internal/geom"
)

// FuzzReadMessage drives the framed decoder with arbitrary bytes: it
// must never panic, and anything it accepts must survive a marshal /
// re-decode round trip (the decoder and encoder agree on the format).
// The corpus seeds every message type — display, video, audio, control,
// auth, and the session-resilience messages — plus truncated and
// corrupted variants of each.
func FuzzReadMessage(f *testing.F) {
	for _, m := range sampleMessages() {
		buf, err := Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		// Truncated frame: header promises more payload than follows.
		if len(buf) > HeaderSize {
			f.Add(buf[:HeaderSize+(len(buf)-HeaderSize)/2])
		}
		// Corrupt length field.
		bad := append([]byte(nil), buf...)
		bad[1] ^= 0xff
		f.Add(bad)
		// Flipped type byte: payload of one type decoded as another.
		bad2 := append([]byte(nil), buf...)
		bad2[0] ^= 0x07
		f.Add(bad2)
	}
	// Trailing-extension seeds: every documented legacy prefix of the
	// handshake messages, reframed with a consistent header, plus every
	// cut strictly inside a trailing extension (a partial CacheEpoch or
	// CacheWarm must error, never decode as a zero-valued claim).
	for _, m := range controlMessages() {
		buf, err := Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		payload := buf[HeaderSize:]
		for cut := range legacyCuts(m, len(payload)) {
			if cut >= 0 {
				f.Add(reframe(m.Type(), payload[:cut]))
			}
		}
		for cut := len(payload) - 7; cut < len(payload); cut++ {
			if cut > 0 {
				f.Add(reframe(m.Type(), payload[:cut]))
			}
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		out, err := Marshal(m)
		if err != nil {
			t.Fatalf("accepted message failed to marshal: %v", err)
		}
		m2, err := ReadMessage(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if m2.Type() != m.Type() {
			t.Fatalf("type changed across round trip: %v -> %v", m.Type(), m2.Type())
		}
	})
}

// controlMessages returns the handshake and session-control subset —
// the messages a hostile or broken peer feeds the server first.
func controlMessages() []Message {
	var ctl []Message
	for _, m := range sampleMessages() {
		switch m.(type) {
		case *ServerInit, *ClientInit, *Resize, *Input,
			*AuthChallenge, *AuthResponse, *AuthResult, *UpdateRequest,
			*Ping, *Pong, *SessionTicket, *Reattach, *DegradeNotice,
			*AuditProbe, *AuditReply, *TimeMark, *MarkAck,
			*CachePaint, *CacheMiss, *AttachBusy:
			ctl = append(ctl, m)
		}
	}
	return ctl
}

// legacyCuts returns the payload lengths (cut points) of m's documented
// backward-compatible legacy encodings: prefixes that omit one or more
// trailing extensions and are themselves valid older encodings, so the
// truncation sweep must accept them decoding cleanly. The extensions
// stack — ClientInit ends in Role (v3) then CacheKB (v6); Reattach adds
// CacheEpoch (v7) after those, so the pre-role, role-only and
// role+CacheKB prefixes are all legal; ServerInit gained CacheKB in v6
// and CacheWarm in v7; SessionTicket ends in Role (v3) then CacheEpoch
// (v7). Any cut strictly inside an extension field must still error —
// a partial epoch can never quietly decode as epoch 0.
func legacyCuts(m Message, payloadLen int) map[int]bool {
	switch m.(type) {
	case *ClientInit:
		return map[int]bool{payloadLen - 5: true, payloadLen - 4: true}
	case *Reattach:
		return map[int]bool{payloadLen - 13: true, payloadLen - 12: true, payloadLen - 8: true}
	case *ServerInit:
		return map[int]bool{payloadLen - 5: true, payloadLen - 1: true}
	case *SessionTicket:
		return map[int]bool{payloadLen - 9: true, payloadLen - 8: true}
	}
	return nil
}

// reframe frames a (possibly shortened) payload with a fresh header so
// truncated-extension variants enter the decoder as well-formed frames.
func reframe(t Type, payload []byte) []byte {
	buf := []byte{byte(t), 0, 0, 0, 0}
	buf[1] = byte(len(payload) >> 24)
	buf[2] = byte(len(payload) >> 16)
	buf[3] = byte(len(payload) >> 8)
	buf[4] = byte(len(payload))
	return append(buf, payload...)
}

// TestLegacyHelloNeverClaimsWarm pins the v7 safety property directly:
// every legal legacy prefix of Reattach and SessionTicket decodes with
// CacheEpoch 0 (no warm claim — server epochs start at 1), and every
// cut strictly inside the trailing CacheEpoch errors rather than
// decoding as a zero or partial epoch.
func TestLegacyHelloNeverClaimsWarm(t *testing.T) {
	msgs := []Message{
		&Reattach{Ticket: []byte("tkt"), ViewW: 64, ViewH: 48, Name: "n",
			Role: RoleViewer, CacheKB: 4096, CacheEpoch: 7},
		&SessionTicket{Ticket: []byte("tkt"), Role: RoleViewer, CacheEpoch: 7},
	}
	for _, m := range msgs {
		buf, err := Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		payload := buf[HeaderSize:]
		for cut := range legacyCuts(m, len(payload)) {
			got, err := Unmarshal(m.Type(), payload[:cut])
			if err != nil {
				t.Fatalf("%v: legacy prefix %d/%d must decode: %v", m.Type(), cut, len(payload), err)
			}
			var epoch uint64
			switch g := got.(type) {
			case *Reattach:
				epoch = g.CacheEpoch
			case *SessionTicket:
				epoch = g.CacheEpoch
			}
			if epoch != 0 {
				t.Errorf("%v: legacy prefix %d/%d decoded CacheEpoch %d, want 0",
					m.Type(), cut, len(payload), epoch)
			}
		}
		for cut := len(payload) - 7; cut < len(payload); cut++ {
			if _, err := Unmarshal(m.Type(), payload[:cut]); err == nil {
				t.Errorf("%v: partial CacheEpoch (%d/%d bytes) decoded without error",
					m.Type(), cut, len(payload))
			}
		}
	}
}

// TestControlMessageTruncationSweep cuts every control message at every
// byte boundary: no truncation may panic the decoder, and every
// truncation must be reported as an error, never silently accepted as a
// different valid message of the same type. The only exemptions are the
// documented legacy prefixes (legacyCuts), whose omission of trailing
// extensions is an older valid encoding, not an ambiguity.
func TestControlMessageTruncationSweep(t *testing.T) {
	for _, m := range controlMessages() {
		buf, err := Marshal(m)
		if err != nil {
			t.Fatalf("%v: marshal: %v", m.Type(), err)
		}
		payload := buf[HeaderSize:]
		legacy := legacyCuts(m, len(payload))
		for cut := 0; cut < len(payload); cut++ {
			_, err := Unmarshal(m.Type(), payload[:cut])
			if legacy[cut] {
				if err != nil {
					t.Errorf("%v: legacy prefix (%d/%d bytes) must still decode, got %v",
						m.Type(), cut, len(payload), err)
				}
				continue
			}
			if err == nil {
				// A shorter prefix that still decodes means the format is
				// ambiguous under truncation.
				t.Errorf("%v: payload truncated to %d/%d bytes decoded without error",
					m.Type(), cut, len(payload))
			}
		}
	}
}

// TestControlMessageBitFlips flips each byte of every control message
// payload and decodes: corruption may be accepted (values change) or
// rejected, but must never panic, and oversized inner lengths must be
// caught by the bounds-checked decoder.
func TestControlMessageBitFlips(t *testing.T) {
	for _, m := range controlMessages() {
		buf, err := Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		payload := buf[HeaderSize:]
		for i := range payload {
			mut := append([]byte(nil), payload...)
			mut[i] ^= 0xff
			_, _ = Unmarshal(m.Type(), mut) // must not panic
		}
	}
}

// TestUnknownTypeSkippable verifies the forward-compatibility contract:
// a well-framed message of an unknown type yields ErrUnknownType with
// the stream positioned at the next frame, so a reader can skip it.
func TestUnknownTypeSkippable(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xee, 0, 0, 0, 3, 1, 2, 3}) // unknown type, 3-byte payload
	if err := WriteMessage(&buf, &Ping{Seq: 9}); err != nil {
		t.Fatal(err)
	}
	_, err := ReadMessage(&buf)
	if !errors.Is(err, ErrUnknownType) {
		t.Fatalf("unknown type: got %v, want ErrUnknownType", err)
	}
	m, err := ReadMessage(&buf)
	if err != nil {
		t.Fatalf("read after skipped unknown type: %v", err)
	}
	if p, ok := m.(*Ping); !ok || p.Seq != 9 {
		t.Fatalf("stream misaligned after unknown type: got %#v", m)
	}
}

// streamingMessages returns the high-volume streaming subset: the
// length-prefixed payload carriers where a corrupted length field is
// most dangerous (over-read, over-allocation, misframing). CacheStore
// rides along — it is the only other slab carrier and its two kinds
// have different trailing-slab sizing rules.
func streamingMessages() []Message {
	return []Message{
		&VideoFrame{Stream: 1, Seq: 2, PTS: 3, W: 8, H: 6, Data: make([]byte, 8*6*3/2)},
		&VideoFrame{Stream: 9, Seq: 1 << 30, PTS: 1 << 60, W: 1920, H: 1080, Data: []byte{1}},
		&VideoFrame{},
		&AudioData{PTS: 44100, Data: make([]byte, 512)},
		&AudioData{PTS: ^uint64(0), Data: []byte{0xff}},
		&AudioData{},
		&CacheStore{Digest: 0xfeedfacecafebeef, Kind: CacheKindRaw,
			Rect: geom.XYWH(4, 8, 4, 2), Codec: compress.CodecNone,
			Data: make([]byte, 4*2*4)},
		&CacheStore{Digest: 1, Kind: CacheKindRaw, Blend: true,
			Rect: geom.XYWH(0, 0, 1, 1), Codec: compress.CodecRLE,
			Data: []byte{1, 2, 3}},
		&CacheStore{Digest: 2, Kind: CacheKindBitmap,
			Rect: geom.XYWH(16, 16, 10, 3), Fg: 0xffffffff, Bg: 0xff000000,
			Transparent: true, BitW: 10, BitH: 3, Bits: make([]byte, 2*3)},
	}
}

// FuzzVideoFrame drives the VideoFrame payload decoder directly with
// arbitrary bytes. Anything accepted must carry a Data slice actually
// backed by the input (no conjured bytes from a lying length field) and
// must survive a marshal / re-decode round trip.
func FuzzVideoFrame(f *testing.F) {
	for _, m := range streamingMessages() {
		if _, ok := m.(*VideoFrame); !ok {
			continue
		}
		buf, err := Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf[HeaderSize:])
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, payload []byte) {
		m, err := Unmarshal(TVideoFrame, payload)
		if err != nil {
			return
		}
		vf := m.(*VideoFrame)
		if len(vf.Data) > len(payload) {
			t.Fatalf("decoder conjured %d data bytes from a %d-byte payload",
				len(vf.Data), len(payload))
		}
		out, err := Marshal(vf)
		if err != nil {
			t.Fatalf("accepted frame failed to marshal: %v", err)
		}
		m2, err := ReadMessage(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		vf2 := m2.(*VideoFrame)
		if vf2.Stream != vf.Stream || vf2.Seq != vf.Seq || vf2.PTS != vf.PTS ||
			vf2.W != vf.W || vf2.H != vf.H || !bytes.Equal(vf2.Data, vf.Data) {
			t.Fatalf("frame changed across round trip: %#v -> %#v", vf, vf2)
		}
	})
}

// FuzzAudioData is the same contract for the audio channel — the one
// payload that must keep flowing even at the harshest degradation rung,
// so its decoder gets its own target.
func FuzzAudioData(f *testing.F) {
	for _, m := range streamingMessages() {
		if _, ok := m.(*AudioData); !ok {
			continue
		}
		buf, err := Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf[HeaderSize:])
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, payload []byte) {
		m, err := Unmarshal(TAudioData, payload)
		if err != nil {
			return
		}
		ad := m.(*AudioData)
		if len(ad.Data) > len(payload) {
			t.Fatalf("decoder conjured %d data bytes from a %d-byte payload",
				len(ad.Data), len(payload))
		}
		out, err := Marshal(ad)
		if err != nil {
			t.Fatalf("accepted chunk failed to marshal: %v", err)
		}
		m2, err := ReadMessage(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		ad2 := m2.(*AudioData)
		if ad2.PTS != ad.PTS || !bytes.Equal(ad2.Data, ad.Data) {
			t.Fatalf("chunk changed across round trip: %#v -> %#v", ad, ad2)
		}
	})
}

// FuzzCacheStore drives the CacheStore payload decoder directly. The
// message has two kinds with different slab-sizing rules (explicit
// length for RAW, geometry-derived for BITMAP), so it gets its own
// target: anything accepted must carry slabs backed by the input and
// must survive a marshal / re-decode round trip.
func FuzzCacheStore(f *testing.F) {
	for _, m := range streamingMessages() {
		if _, ok := m.(*CacheStore); !ok {
			continue
		}
		buf, err := Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf[HeaderSize:])
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, payload []byte) {
		m, err := Unmarshal(TCacheStore, payload)
		if err != nil {
			return
		}
		cs := m.(*CacheStore)
		if len(cs.Data)+len(cs.Bits) > len(payload) {
			t.Fatalf("decoder conjured %d slab bytes from a %d-byte payload",
				len(cs.Data)+len(cs.Bits), len(payload))
		}
		out, err := Marshal(cs)
		if err != nil {
			t.Fatalf("accepted store failed to marshal: %v", err)
		}
		m2, err := ReadMessage(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		cs2 := m2.(*CacheStore)
		if cs2.Digest != cs.Digest || cs2.Kind != cs.Kind || cs2.Rect != cs.Rect ||
			!bytes.Equal(cs2.Data, cs.Data) || !bytes.Equal(cs2.Bits, cs.Bits) {
			t.Fatalf("store changed across round trip: %#v -> %#v", cs, cs2)
		}
	})
}

// TestStreamingMessageTruncationSweep is the control-message truncation
// sweep applied to the streaming carriers: every cut of every payload
// must be rejected, never silently misframed.
func TestStreamingMessageTruncationSweep(t *testing.T) {
	for _, m := range streamingMessages() {
		buf, err := Marshal(m)
		if err != nil {
			t.Fatalf("%v: marshal: %v", m.Type(), err)
		}
		payload := buf[HeaderSize:]
		for cut := 0; cut < len(payload); cut++ {
			if _, err := Unmarshal(m.Type(), payload[:cut]); err == nil {
				t.Errorf("%v: payload truncated to %d/%d bytes decoded without error",
					m.Type(), cut, len(payload))
			}
		}
	}
}

// TestStreamingMessageBitFlips flips each payload byte of the streaming
// messages: corruption may decode to different values or be rejected,
// but must never panic or over-read.
func TestStreamingMessageBitFlips(t *testing.T) {
	for _, m := range streamingMessages() {
		buf, err := Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		payload := buf[HeaderSize:]
		for i := range payload {
			mut := append([]byte(nil), payload...)
			mut[i] ^= 0xff
			_, _ = Unmarshal(m.Type(), mut) // must not panic
		}
	}
}
