package wire

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"reflect"
	"testing"

	"thinc/internal/cipher"
	"thinc/internal/compress"
	"thinc/internal/geom"
	"thinc/internal/pixel"
)

// randMessage builds a randomized instance of the given message type —
// random geometry, random string/slice lengths — for the PayloadSize
// property test.
func randMessage(rnd *rand.Rand, t Type) Message {
	rect := func() geom.Rect {
		return geom.XYWH(rnd.Intn(1024), rnd.Intn(768), 1+rnd.Intn(256), 1+rnd.Intn(256))
	}
	blob := func(max int) []byte {
		b := make([]byte, rnd.Intn(max+1))
		rnd.Read(b)
		return b
	}
	str := func(max int) string { return string(blob(max)) }
	pix := func(n int) []pixel.ARGB {
		p := make([]pixel.ARGB, n)
		for i := range p {
			p[i] = pixel.ARGB(rnd.Uint32())
		}
		return p
	}
	switch t {
	case TRaw:
		return &Raw{Rect: rect(), Codec: compress.Codec(rnd.Intn(4)),
			Blend: rnd.Intn(2) == 0, Data: blob(4096)}
	case TCopy:
		return &Copy{Src: rect(), Dst: geom.Point{X: rnd.Intn(1024), Y: rnd.Intn(768)}}
	case TSFill:
		return &SFill{Rect: rect(), Color: pixel.ARGB(rnd.Uint32())}
	case TPFill:
		w, h := 1+rnd.Intn(8), 1+rnd.Intn(8)
		return &PFill{Rect: rect(), TileW: w, TileH: h,
			Ax: rnd.Intn(w), Ay: rnd.Intn(h), Tile: pix(w * h)}
	case TBitmap:
		w, h := 1+rnd.Intn(64), 1+rnd.Intn(64)
		return &Bitmap{Rect: rect(), Fg: pixel.ARGB(rnd.Uint32()), Bg: pixel.ARGB(rnd.Uint32()),
			Transparent: rnd.Intn(2) == 0, BitW: w, BitH: h,
			Bits: blob((w + 7) / 8 * h)}
	case TVideoInit:
		return &VideoInit{Stream: rnd.Uint32(), Format: pixel.FormatYV12,
			SrcW: 1 + rnd.Intn(1024), SrcH: 1 + rnd.Intn(768), Dst: rect()}
	case TVideoFrame:
		return &VideoFrame{Stream: rnd.Uint32(), Seq: rnd.Uint32(), PTS: rnd.Uint64(),
			W: 1 + rnd.Intn(1024), H: 1 + rnd.Intn(768), Data: blob(8192)}
	case TVideoMove:
		return &VideoMove{Stream: rnd.Uint32(), Dst: rect()}
	case TVideoEnd:
		return &VideoEnd{Stream: rnd.Uint32()}
	case TAudioData:
		return &AudioData{PTS: rnd.Uint64(), Data: blob(4096)}
	case TServerInit:
		return &ServerInit{Ver: uint8(rnd.Intn(256)), W: 1 + rnd.Intn(4096),
			H: 1 + rnd.Intn(4096), Format: pixel.FormatARGB32}
	case TClientInit:
		return &ClientInit{ViewW: 1 + rnd.Intn(4096), ViewH: 1 + rnd.Intn(4096), Name: str(64)}
	case TResize:
		return &Resize{ViewW: 1 + rnd.Intn(4096), ViewH: 1 + rnd.Intn(4096)}
	case TInput:
		return &Input{Kind: InputKind(rnd.Intn(3)), X: rnd.Intn(4096), Y: rnd.Intn(4096),
			Code: uint16(rnd.Intn(1 << 16)), Press: rnd.Intn(2) == 0, TimeUS: rnd.Uint64()}
	case TAuthChallenge:
		return &AuthChallenge{Nonce: blob(64)}
	case TAuthResponse:
		return &AuthResponse{User: str(32), Proof: blob(64)}
	case TAuthResult:
		return &AuthResult{OK: rnd.Intn(2) == 0, Reason: str(64)}
	case TUpdateRequest:
		return &UpdateRequest{Incremental: rnd.Intn(2) == 0}
	case TCursorSet:
		w, h := 1+rnd.Intn(32), 1+rnd.Intn(32)
		return &CursorSet{HotX: rnd.Intn(w), HotY: rnd.Intn(h), W: w, H: h, Pix: pix(w * h)}
	case TCursorMove:
		return &CursorMove{X: rnd.Intn(4096), Y: rnd.Intn(4096)}
	case TPing:
		return &Ping{Seq: rnd.Uint32(), TimeUS: rnd.Uint64()}
	case TPong:
		return &Pong{Seq: rnd.Uint32(), TimeUS: rnd.Uint64()}
	case TSessionTicket:
		return &SessionTicket{Ticket: blob(MaxTicketLen)}
	case TReattach:
		return &Reattach{Ticket: blob(MaxTicketLen),
			ViewW: 1 + rnd.Intn(4096), ViewH: 1 + rnd.Intn(4096), Name: str(64)}
	default:
		return nil
	}
}

// allTypes lists every protocol message type.
var allTypes = []Type{
	TRaw, TCopy, TSFill, TPFill, TBitmap,
	TVideoInit, TVideoFrame, TVideoMove, TVideoEnd, TAudioData,
	TServerInit, TClientInit, TResize, TInput,
	TAuthChallenge, TAuthResponse, TAuthResult, TUpdateRequest,
	TCursorSet, TCursorMove, TPing, TPong, TSessionTicket, TReattach,
}

// TestPayloadSizeMatchesAppend is the exhaustive property behind O(1)
// WireSize: for every message type, over fuzz-seeded random field
// values, the analytic PayloadSize must equal the encoded payload
// length (and WireSize the framed length).
func TestPayloadSizeMatchesAppend(t *testing.T) {
	for _, typ := range allTypes {
		typ := typ
		t.Run(typ.String(), func(t *testing.T) {
			rnd := rand.New(rand.NewSource(int64(typ) * 7919))
			for i := 0; i < 200; i++ {
				m := randMessage(rnd, typ)
				if m == nil {
					t.Fatalf("no generator for %v", typ)
				}
				payload := m.appendPayload(nil)
				if got, want := m.PayloadSize(), len(payload); got != want {
					t.Fatalf("iter %d: PayloadSize %d != encoded %d (%#v)", i, got, want, m)
				}
				buf, err := Marshal(m)
				if err != nil {
					t.Fatalf("iter %d: marshal: %v", i, err)
				}
				if got, want := WireSize(m), len(buf); got != want {
					t.Fatalf("iter %d: WireSize %d != framed %d", i, got, want)
				}
			}
		})
	}
}

// TestSlabMetaMatchesPayload pins the slab split: meta + slab must
// reproduce appendPayload byte for byte for every slab-bearing type.
func TestSlabMetaMatchesPayload(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	for _, typ := range []Type{TRaw, TBitmap, TVideoFrame, TAudioData} {
		for i := 0; i < 50; i++ {
			m := randMessage(rnd, typ)
			sm, ok := m.(slabMessage)
			if !ok {
				t.Fatalf("%v does not implement slabMessage", typ)
			}
			want := m.appendPayload(nil)
			got := append(sm.appendPayloadMeta(nil), sm.payloadSlab()...)
			if !bytes.Equal(got, want) {
				t.Fatalf("%v iter %d: meta+slab != payload", typ, i)
			}
		}
	}
}

func TestAppendMessageMatchesMarshal(t *testing.T) {
	prefix := []byte("prefix")
	for _, m := range sampleMessages() {
		want, err := Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := AppendMessage(append([]byte(nil), prefix...), m)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got[len(prefix):], want) {
			t.Errorf("%v: AppendMessage != Marshal", m.Type())
		}
	}
}

// batchMessages builds a flush-shaped mix: two slab messages over the
// vector threshold (written by reference), one under it (copied), and
// small display/control traffic between them.
func batchMessages() []Message {
	big := make([]byte, 64*64*4)
	for i := range big {
		big[i] = byte(i * 31)
	}
	frame := make([]byte, 8192)
	for i := range frame {
		frame[i] = byte(i * 17)
	}
	return []Message{
		&SFill{Rect: geom.XYWH(0, 64, 128, 16), Color: 0xff336699},
		&Raw{Rect: geom.XYWH(0, 0, 64, 64), Data: big},
		&Copy{Src: geom.XYWH(0, 0, 50, 50), Dst: geom.Point{X: 10, Y: 10}},
		&Bitmap{Rect: geom.XYWH(64, 0, 32, 32), Fg: 0xffffffff, Bg: 0xff000000,
			BitW: 32, BitH: 32, Bits: bytes.Repeat([]byte{0xa5}, 4*32)},
		&VideoFrame{Stream: 3, Seq: 9, PTS: 777, W: 64, H: 32, Data: frame},
		&PFill{Rect: geom.XYWH(0, 80, 64, 64), TileW: 2, TileH: 2,
			Tile: []pixel.ARGB{1, 2, 3, 4}},
		&Ping{Seq: 1, TimeUS: 2},
	}
}

// TestBatchRoundTrip drives the vectored write path end to end: frame
// a mixed batch (slabs by reference), write it to a plain buffer, and
// decode every message back with ReadMessage.
func TestBatchRoundTrip(t *testing.T) {
	msgs := batchMessages()
	b := NewBatch()
	defer b.Release()
	var want int64
	for _, m := range msgs {
		if err := b.Append(m); err != nil {
			t.Fatal(err)
		}
		want += int64(WireSize(m))
	}
	if b.Len() != want || b.Msgs() != len(msgs) {
		t.Fatalf("batch accounts %d bytes / %d msgs, want %d / %d",
			b.Len(), b.Msgs(), want, len(msgs))
	}
	var buf bytes.Buffer
	n, err := b.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != want {
		t.Fatalf("wrote %d bytes, want %d", n, want)
	}
	for i, m := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("message %d (%v): round trip mismatch", i, m.Type())
		}
	}
	if _, err := ReadMessage(&buf); err != io.EOF {
		t.Errorf("expected EOF after batch, got %v", err)
	}
}

// TestBatchReuseAfterReset frames two different flushes through the
// same batch; the second must not leak segments from the first.
func TestBatchReuseAfterReset(t *testing.T) {
	b := NewBatch()
	defer b.Release()
	for round := 0; round < 3; round++ {
		msgs := batchMessages()[round:]
		for _, m := range msgs {
			if err := b.Append(m); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if _, err := b.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		for i := range msgs {
			got, err := ReadMessage(&buf)
			if err != nil {
				t.Fatalf("round %d message %d: %v", round, i, err)
			}
			if got.Type() != msgs[i].Type() {
				t.Fatalf("round %d message %d: type %v, want %v",
					round, i, got.Type(), msgs[i].Type())
			}
		}
		b.Reset()
		if !b.Empty() || b.Len() != 0 {
			t.Fatal("reset batch not empty")
		}
	}
}

// TestBatchVectoredThroughStreamConn runs the vectored batch through
// the RC4 transport: WriteBuffers must produce the same ciphertext
// stream a client StreamConn decrypts back to the original messages.
func TestBatchVectoredThroughStreamConn(t *testing.T) {
	key := []byte("0123456789abcdef")
	var pipe bytes.Buffer
	srv, err := cipher.NewStreamConn(&pipe, key, true)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := cipher.NewStreamConn(&pipe, key, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := io.Writer(srv).(BuffersWriter); !ok {
		t.Fatal("cipher.StreamConn does not implement wire.BuffersWriter")
	}
	msgs := batchMessages()
	b := NewBatch()
	defer b.Release()
	for _, m := range msgs {
		if err := b.Append(m); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.WriteTo(srv); err != nil {
		t.Fatal(err)
	}
	for i, m := range msgs {
		got, err := ReadMessage(cli)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("message %d (%v): mismatch through encrypted transport", i, m.Type())
		}
	}
}

// TestStreamConnWriteBuffersMatchesWrite pins that one vectored write
// produces the identical ciphertext as sequential plain writes.
func TestStreamConnWriteBuffersMatchesWrite(t *testing.T) {
	key := []byte("k")
	segs := net.Buffers{[]byte("hello "), []byte("vectored"), []byte(" world")}
	var a, b bytes.Buffer
	ca, _ := cipher.NewStreamConn(&a, key, true)
	cb, _ := cipher.NewStreamConn(&b, key, true)
	if _, err := ca.WriteBuffers(segs); err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		if _, err := cb.Write(s); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WriteBuffers ciphertext differs from sequential Write")
	}
}

// countingWriter consumes writes without retaining them, counting
// calls — it deliberately does NOT implement BuffersWriter, so batch
// writes exercise the net.Buffers fallback.
type countingWriter struct {
	writes int
	bytes  int64
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	w.bytes += int64(len(p))
	return len(p), nil
}

// --- zero-allocation assertions (run in CI via make bench-smoke) ---

// TestWireSizeZeroAlloc asserts the acceptance criterion directly:
// sizing any display command allocates nothing.
func TestWireSizeZeroAlloc(t *testing.T) {
	msgs := sampleMessages()
	var sink int
	allocs := testing.AllocsPerRun(100, func() {
		for _, m := range msgs {
			sink += WireSize(m)
		}
	})
	if allocs != 0 {
		t.Errorf("WireSize allocates %.1f per run over all message types, want 0", allocs)
	}
	_ = sink
}

func TestAppendMessageZeroAlloc(t *testing.T) {
	msgs := batchMessages()
	need := 0
	for _, m := range msgs {
		need += WireSize(m)
	}
	dst := make([]byte, 0, need)
	allocs := testing.AllocsPerRun(100, func() {
		dst = dst[:0]
		for _, m := range msgs {
			var err error
			dst, err = AppendMessage(dst, m)
			if err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Errorf("AppendMessage into presized buffer allocates %.1f per run, want 0", allocs)
	}
}

// TestEncodeFlushZeroAlloc asserts the steady-state flush loop — batch
// framing plus the vectored write — is allocation-free once the pooled
// buffer has grown to the working-set size.
func TestEncodeFlushZeroAlloc(t *testing.T) {
	msgs := batchMessages()
	b := NewBatch()
	defer b.Release()
	w := &countingWriter{}
	flush := func() {
		b.Reset()
		for _, m := range msgs {
			if err := b.Append(m); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := b.WriteTo(w); err != nil {
			t.Fatal(err)
		}
	}
	flush() // warm the batch buffer and segment slices
	allocs := testing.AllocsPerRun(100, flush)
	if allocs != 0 {
		t.Errorf("steady-state encode flush allocates %.1f per run, want 0", allocs)
	}
}

// --- microbenchmarks ---

// BenchmarkWireSize measures O(1) sizing over one of every message
// type. Pre-change (payload re-marshal): ~2.2µs, 18776 B/op, 14
// allocs/op. Must report 0 allocs/op.
func BenchmarkWireSize(b *testing.B) {
	msgs := sampleMessages()
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		for _, m := range msgs {
			sink += WireSize(m)
		}
	}
	_ = sink
}

// BenchmarkEncodeFlush measures one steady-state flush tick: frame a
// RAW+SFILL+COPY+BITMAP+PFILL mix into the reused batch and commit it
// with one vectored write. Pre-change (Marshal per message into
// bufio): ~11.0µs, 103136 B/op, 13 allocs/op. Must report 0 allocs/op.
func BenchmarkEncodeFlush(b *testing.B) {
	msgs := []Message{
		&Raw{Rect: geom.XYWH(0, 0, 64, 64), Data: make([]byte, 64*64*4)},
		&SFill{Rect: geom.XYWH(0, 64, 128, 16), Color: 0xff336699},
		&Copy{Src: geom.XYWH(0, 0, 50, 50), Dst: geom.Point{X: 10, Y: 10}},
		&Bitmap{Rect: geom.XYWH(64, 0, 32, 32), Fg: 0xffffffff, Bg: 0xff000000,
			BitW: 32, BitH: 32, Bits: make([]byte, 4*32)},
		&PFill{Rect: geom.XYWH(0, 80, 64, 64), TileW: 2, TileH: 2,
			Tile: []pixel.ARGB{1, 2, 3, 4}},
	}
	var total int64
	for _, m := range msgs {
		total += int64(WireSize(m))
	}
	batch := NewBatch()
	defer batch.Release()
	w := &countingWriter{}
	b.SetBytes(total)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.Reset()
		for _, m := range msgs {
			if err := batch.Append(m); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := batch.WriteTo(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeFlushEncrypted is the same flush through the RC4
// transport's WriteBuffers — the full server write path minus the
// kernel.
func BenchmarkEncodeFlushEncrypted(b *testing.B) {
	msgs := batchMessages()
	var total int64
	for _, m := range msgs {
		total += int64(WireSize(m))
	}
	sc, err := cipher.NewStreamConn(nopReadWriter{}, []byte("bench-key"), true)
	if err != nil {
		b.Fatal(err)
	}
	batch := NewBatch()
	defer batch.Release()
	b.SetBytes(total)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.Reset()
		for _, m := range msgs {
			if err := batch.Append(m); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := batch.WriteTo(sc); err != nil {
			b.Fatal(err)
		}
	}
}

type nopReadWriter struct{}

func (nopReadWriter) Read(p []byte) (int, error)  { return 0, io.EOF }
func (nopReadWriter) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkMarshalRaw64x64 tracks the single-message Marshal path
// (now one exact-size allocation instead of two).
func BenchmarkMarshalRaw64x64(b *testing.B) {
	m := &Raw{Rect: geom.XYWH(0, 0, 64, 64), Data: make([]byte, 64*64*4)}
	b.SetBytes(int64(WireSize(m)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(m); err != nil {
			b.Fatal(err)
		}
	}
}

// sanity: the fmt import is used for subtest names only when needed.
var _ = fmt.Sprintf
