package wire

import (
	"bytes"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"thinc/internal/compress"
	"thinc/internal/geom"
	"thinc/internal/pixel"
)

// Golden wire-conformance vectors: the canonical protocol-v3 encoding
// of every message type, frozen as hex fixtures under testdata/. The
// fixtures are the compatibility contract — a PR that changes any
// byte of an existing encoding fails here and must either revert or
// consciously regenerate the vectors (go test ./internal/wire/
// -run Golden -update) alongside a protocol-version discussion in
// PROTOCOL.md.

var updateGolden = flag.Bool("update", false, "rewrite golden wire vectors under testdata/")

// goldenVector pairs a fixture name with the message whose canonical
// encoding it freezes. Every field is a fixed literal so the encoding
// is reproducible forever; RAW vectors use only the deterministic
// in-repo codecs (none, RLE), never stdlib compressors whose output
// may drift across Go releases.
type goldenVector struct {
	name string
	msg  Message
}

func goldenPix(n int) []pixel.ARGB {
	pix := make([]pixel.ARGB, n)
	for i := range pix {
		pix[i] = pixel.PackARGB(0xff, uint8(i*7), uint8(i*13), uint8(i*29))
	}
	return pix
}

func goldenVectors() []goldenVector {
	rawNone, err := NewRaw(geom.XYWH(10, 20, 4, 3), goldenPix(12), 4, compress.CodecNone)
	if err != nil {
		panic(err)
	}
	rawRLE, err := NewRaw(geom.XYWH(0, 0, 8, 2), append(make([]pixel.ARGB, 8, 16),
		goldenPix(8)...), 8, compress.CodecRLE)
	if err != nil {
		panic(err)
	}
	rawBlend := &Raw{Rect: geom.XYWH(1, 2, 2, 1), Codec: compress.CodecNone,
		Blend: true, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}}
	return []goldenVector{
		{"raw_none", rawNone},
		{"raw_rle", rawRLE},
		{"raw_blend", rawBlend},
		{"copy", &Copy{Src: geom.XYWH(0, 16, 1024, 752), Dst: geom.Point{X: 0, Y: 0}}},
		{"sfill", &SFill{Rect: geom.XYWH(5, 5, 100, 50), Color: pixel.PackARGB(200, 1, 2, 3)}},
		{"pfill", &PFill{Rect: geom.XYWH(0, 0, 64, 64), TileW: 2, TileH: 2, Ax: 1, Ay: 0,
			Tile: []pixel.ARGB{pixel.RGB(9, 9, 9), pixel.RGB(8, 8, 8),
				pixel.RGB(7, 7, 7), pixel.RGB(6, 6, 6)}}},
		{"bitmap", &Bitmap{Rect: geom.XYWH(3, 3, 9, 2), Fg: pixel.RGB(255, 0, 0),
			Bg: pixel.RGB(0, 0, 255), Transparent: true, BitW: 9, BitH: 2,
			Bits: []byte{0xa5, 0x80, 0x5a, 0x00}}},
		{"video_init", &VideoInit{Stream: 7, Format: pixel.FormatYV12, SrcW: 352, SrcH: 240,
			Dst: geom.XYWH(0, 0, 1024, 768)}},
		{"video_frame", &VideoFrame{Stream: 7, Seq: 42, PTS: 1_000_000, W: 2, H: 1,
			Data: []byte{1, 2, 3, 4}}},
		{"video_move", &VideoMove{Stream: 7, Dst: geom.XYWH(100, 100, 352, 240)}},
		{"video_end", &VideoEnd{Stream: 7}},
		{"audio_data", &AudioData{PTS: 999, Data: []byte{5, 6, 7}}},
		{"server_init", &ServerInit{Ver: 3, W: 1024, H: 768, Format: pixel.FormatARGB32,
			CacheKB: 4096, CacheWarm: 1}},
		{"client_init_owner", &ClientInit{ViewW: 320, ViewH: 240, Name: "pda", Role: RoleOwner,
			CacheKB: 8192}},
		{"client_init_viewer", &ClientInit{ViewW: 1024, ViewH: 768, Name: "watch", Role: RoleViewer}},
		{"resize", &Resize{ViewW: 640, ViewH: 480}},
		{"input", &Input{Kind: InputMouseButton, X: 512, Y: 384, Code: 1, Press: true,
			TimeUS: 123456}},
		{"auth_challenge", &AuthChallenge{Nonce: []byte("nonce-16-bytes!!")}},
		{"auth_response", &AuthResponse{User: "ricardo", Proof: []byte{0xde, 0xad, 0xbe, 0xef}}},
		{"auth_result", &AuthResult{OK: false, Reason: "bad password"}},
		{"update_request", &UpdateRequest{Incremental: true}},
		{"cursor_set", &CursorSet{HotX: 2, HotY: 3, W: 2, H: 2,
			Pix: []pixel.ARGB{1, 2, 3, 4}}},
		{"cursor_move", &CursorMove{X: 100, Y: 200}},
		{"ping", &Ping{Seq: 3, TimeUS: 777}},
		{"pong", &Pong{Seq: 3, TimeUS: 777}},
		{"session_ticket", &SessionTicket{Ticket: []byte("ticket-0123456789abcdef"),
			Role: RoleViewer, CacheEpoch: 0x0102030405060708}},
		{"reattach", &Reattach{Ticket: []byte("ticket-0123456789abcdef"),
			ViewW: 320, ViewH: 240, Name: "pda", Role: RoleViewer, CacheKB: 8192,
			CacheEpoch: 0x0102030405060708}},
		{"attach_busy", &AttachBusy{RetryAfterMS: 250}},
		{"degrade_notice", &DegradeNotice{Rung: 2, Cause: CauseBacklog,
			BacklogBytes: 1 << 20, EstBps: 3 << 20}},
		{"audit_probe", &AuditProbe{Seq: 9, Tile: 64, Start: 16, Count: 8}},
		{"audit_reply", &AuditReply{Seq: 9, Start: 16, W: 1024, H: 768, Count: 2,
			Digests: []uint64{0x0123456789abcdef, 0xcafebabe00facade}}},
		{"time_mark", &TimeMark{Epoch: 42, TimeUS: 0x1122334455667788}},
		{"mark_ack", &MarkAck{Epoch: 42, TimeUS: 0x1122334455667788, ApplyUS: 350}},
		{"cache_store_raw", &CacheStore{Digest: 0xfeedfacecafebeef, Kind: CacheKindRaw,
			Rect: geom.XYWH(10, 20, 2, 1), Codec: compress.CodecNone,
			Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}}},
		{"cache_store_bitmap", &CacheStore{Digest: 0x0123456789abcdef, Kind: CacheKindBitmap,
			Rect: geom.XYWH(3, 3, 9, 2), Fg: pixel.RGB(255, 0, 0),
			Bg: pixel.RGB(0, 0, 255), Transparent: true, BitW: 9, BitH: 2,
			Bits: []byte{0xa5, 0x80, 0x5a, 0x00}}},
		{"cache_paint", &CachePaint{Digest: 0xfeedfacecafebeef, Rect: geom.XYWH(40, 60, 2, 1)}},
		{"cache_miss", &CacheMiss{Digest: 0xfeedfacecafebeef, Rect: geom.XYWH(40, 60, 2, 1)}},
	}
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden_"+name+".hex")
}

func readGolden(t *testing.T, name string) []byte {
	t.Helper()
	raw, err := os.ReadFile(goldenPath(name))
	if err != nil {
		t.Fatalf("golden vector %s missing (run with -update to generate): %v", name, err)
	}
	var compact strings.Builder
	for _, line := range strings.Split(string(raw), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		compact.WriteString(strings.Join(strings.Fields(line), ""))
	}
	buf, err := hex.DecodeString(compact.String())
	if err != nil {
		t.Fatalf("golden vector %s: bad hex: %v", name, err)
	}
	return buf
}

func writeGolden(t *testing.T, name string, frame []byte, m Message) {
	t.Helper()
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s: canonical protocol-v%d encoding (header + payload)\n",
		m.Type(), ProtoVersion)
	h := hex.EncodeToString(frame)
	for len(h) > 64 {
		sb.WriteString(h[:64] + "\n")
		h = h[64:]
	}
	sb.WriteString(h + "\n")
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenPath(name), []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenVectorsFrozen marshals each canonical message and requires
// the bytes to match the committed fixture exactly — the encoder side
// of the conformance contract.
func TestGoldenVectorsFrozen(t *testing.T) {
	for _, v := range goldenVectors() {
		frame, err := Marshal(v.msg)
		if err != nil {
			t.Fatalf("%s: marshal: %v", v.name, err)
		}
		if *updateGolden {
			writeGolden(t, v.name, frame, v.msg)
			continue
		}
		want := readGolden(t, v.name)
		if !bytes.Equal(frame, want) {
			t.Errorf("%s (%v): encoding drifted from golden vector\n got %s\nwant %s",
				v.name, v.msg.Type(), hex.EncodeToString(frame), hex.EncodeToString(want))
		}
	}
}

// TestGoldenVectorsRoundTrip decodes each fixture and re-encodes it:
// the result must be byte-identical, and the decoded message must
// equal the canonical construction — the decoder side of the contract.
func TestGoldenVectorsRoundTrip(t *testing.T) {
	if *updateGolden {
		t.Skip("regenerating fixtures")
	}
	for _, v := range goldenVectors() {
		frame := readGolden(t, v.name)
		m, err := ReadMessage(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("%s: decode fixture: %v", v.name, err)
		}
		out, err := Marshal(m)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", v.name, err)
		}
		if !bytes.Equal(out, frame) {
			t.Errorf("%s (%v): decode → re-encode not byte-identical\n got %s\nwant %s",
				v.name, m.Type(), hex.EncodeToString(out), hex.EncodeToString(frame))
		}
		if !reflect.DeepEqual(m, v.msg) {
			t.Errorf("%s: decoded message differs from canonical construction:\n got %#v\nwant %#v",
				v.name, m, v.msg)
		}
	}
}

// TestGoldenVectorsCoverAllTypes fails when a protocol message type has
// no golden vector, so a new message type cannot ship without freezing
// its encoding.
func TestGoldenVectorsCoverAllTypes(t *testing.T) {
	covered := map[Type]bool{}
	for _, v := range goldenVectors() {
		covered[v.msg.Type()] = true
	}
	for typ := range typeNames {
		if !covered[typ] {
			t.Errorf("message type %v has no golden wire vector", typ)
		}
	}
}

// TestGoldenLegacyAttachDecodes freezes the legacy attach encodings:
// the pre-role v1/v2 prefix (no Role byte), the v3–v5 prefix (Role but
// no CacheKB), the v6 prefix (CacheKB but no CacheEpoch/CacheWarm), and
// the pre-v6 ServerInit (no CacheKB) must all still decode, with the
// omitted extensions defaulting to owner / cache off / epoch 0 (cold).
func TestGoldenLegacyAttachDecodes(t *testing.T) {
	legacy := []struct {
		typ     Type
		payload []byte
		want    Message
	}{
		{TClientInit,
			append([]byte{0x01, 0x40, 0x00, 0xf0, 0x00, 0x03}, "pda"...),
			&ClientInit{ViewW: 320, ViewH: 240, Name: "pda", Role: RoleOwner}},
		{TClientInit,
			append(append([]byte{0x01, 0x40, 0x00, 0xf0, 0x00, 0x03}, "pda"...), RoleViewer),
			&ClientInit{ViewW: 320, ViewH: 240, Name: "pda", Role: RoleViewer}},
		{TSessionTicket,
			[]byte{0x00, 0x02, 0xab, 0xcd},
			&SessionTicket{Ticket: []byte{0xab, 0xcd}, Role: RoleOwner}},
		{TReattach,
			append([]byte{0x00, 0x02, 0xab, 0xcd, 0x01, 0x40, 0x00, 0xf0, 0x00, 0x03}, "pda"...),
			&Reattach{Ticket: []byte{0xab, 0xcd}, ViewW: 320, ViewH: 240,
				Name: "pda", Role: RoleOwner}},
		{TReattach,
			append(append([]byte{0x00, 0x02, 0xab, 0xcd, 0x01, 0x40, 0x00, 0xf0, 0x00, 0x03},
				"pda"...), RoleViewer),
			&Reattach{Ticket: []byte{0xab, 0xcd}, ViewW: 320, ViewH: 240,
				Name: "pda", Role: RoleViewer}},
		{TReattach,
			append(append(append([]byte{0x00, 0x02, 0xab, 0xcd, 0x01, 0x40, 0x00, 0xf0, 0x00, 0x03},
				"pda"...), RoleViewer), 0x00, 0x00, 0x20, 0x00),
			&Reattach{Ticket: []byte{0xab, 0xcd}, ViewW: 320, ViewH: 240,
				Name: "pda", Role: RoleViewer, CacheKB: 8192}},
		{TSessionTicket,
			[]byte{0x00, 0x02, 0xab, 0xcd, 0x01},
			&SessionTicket{Ticket: []byte{0xab, 0xcd}, Role: RoleViewer}},
		{TServerInit,
			[]byte{0x05, 0x04, 0x00, 0x03, 0x00, 0x01},
			&ServerInit{Ver: 5, W: 1024, H: 768, Format: pixel.Format(1)}},
		{TServerInit,
			[]byte{0x06, 0x04, 0x00, 0x03, 0x00, 0x01, 0x00, 0x00, 0x10, 0x00},
			&ServerInit{Ver: 6, W: 1024, H: 768, Format: pixel.Format(1), CacheKB: 4096}},
	}
	for _, tc := range legacy {
		m, err := Unmarshal(tc.typ, tc.payload)
		if err != nil {
			t.Fatalf("%v: legacy payload rejected: %v", tc.typ, err)
		}
		if !reflect.DeepEqual(m, tc.want) {
			t.Errorf("%v: legacy decode mismatch:\n got %#v\nwant %#v", tc.typ, m, tc.want)
		}
	}
}
