package wire

import "encoding/binary"

// End-to-end update-tracing messages (protocol v5). The server stamps
// every translated command batch with a monotonically increasing flush
// epoch at the broadcast choke point; after a flush that delivered
// display traffic it appends a TimeMark naming the highest epoch the
// batch contained. The client answers with a MarkAck once it has fully
// decoded and applied everything up to the mark, closing the loop on a
// client-perceived latency measurement that needs no clock sync: all
// arithmetic stays on the server clock, with the one-way return leg
// estimated from the heartbeat min-RTT (bufferbloat-free floor).
// Both messages are well-framed, so v4 peers skip them; a peer that
// never acks is marked legacy by silence — exactly the audit-probe
// pattern — and the server stops marking its batches.

// TimeMark asks the client to acknowledge epoch once the batch it
// arrived in has been applied. TimeUS is the server's send clock in
// microseconds; the client echoes it opaquely, so a reordered or
// duplicated ack can never be mistaken for a fresh one.
type TimeMark struct {
	Epoch  uint64 // flush epoch this mark closes (highest in the batch)
	TimeUS uint64 // server clock at emission, echoed by the ack
}

// Type implements Message.
func (m *TimeMark) Type() Type { return TTimeMark }

// PayloadSize implements Message: epoch 8 + time 8.
func (m *TimeMark) PayloadSize() int { return 16 }

func (m *TimeMark) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, m.Epoch)
	return binary.BigEndian.AppendUint64(dst, m.TimeUS)
}

func decodeTimeMark(d *decoder) (*TimeMark, error) {
	m := &TimeMark{}
	m.Epoch = d.u64()
	m.TimeUS = d.u64()
	return m, d.check()
}

// MarkAck answers a TimeMark after the marked batch is on the client's
// framebuffer. ApplyUS is the client-measured decode+apply time spent
// on commands since the previous ack — a duration, not a timestamp, so
// it is meaningful across unsynchronized clocks and lets the server
// split the return path into wire time and client paint time.
type MarkAck struct {
	Epoch   uint64 // echoed mark epoch
	TimeUS  uint64 // echoed server clock from the mark
	ApplyUS uint32 // client decode+apply time since the last ack
}

// Type implements Message.
func (m *MarkAck) Type() Type { return TMarkAck }

// PayloadSize implements Message: epoch 8 + time 8 + apply 4.
func (m *MarkAck) PayloadSize() int { return 20 }

func (m *MarkAck) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, m.Epoch)
	dst = binary.BigEndian.AppendUint64(dst, m.TimeUS)
	return binary.BigEndian.AppendUint32(dst, m.ApplyUS)
}

func decodeMarkAck(d *decoder) (*MarkAck, error) {
	m := &MarkAck{}
	m.Epoch = d.u64()
	m.TimeUS = d.u64()
	m.ApplyUS = d.u32()
	return m, d.check()
}
