package wire

import (
	"encoding/binary"

	"thinc/internal/geom"
	"thinc/internal/pixel"
)

// VideoInit establishes a video stream object on the client (§4.2):
// the stream's pixel format, source geometry, and on-screen destination.
// The client hardware scales SrcW x SrcH frames into Dst.
type VideoInit struct {
	Stream     uint32
	Format     pixel.Format // FormatYV12 in the prototype
	SrcW, SrcH int
	Dst        geom.Rect
}

// Type implements Message.
func (m *VideoInit) Type() Type { return TVideoInit }

// PayloadSize implements Message: stream 4 + format 1 + src geometry 4
// + dst rect 8.
func (m *VideoInit) PayloadSize() int { return 17 }

func (m *VideoInit) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, m.Stream)
	dst = append(dst, byte(m.Format))
	dst = binary.BigEndian.AppendUint16(dst, uint16(m.SrcW))
	dst = binary.BigEndian.AppendUint16(dst, uint16(m.SrcH))
	return appendRect(dst, m.Dst)
}

func decodeVideoInit(d *decoder) (*VideoInit, error) {
	m := &VideoInit{}
	m.Stream = d.u32()
	m.Format = pixel.Format(d.u8())
	m.SrcW = int(d.u16())
	m.SrcH = int(d.u16())
	m.Dst = d.rect()
	return m, d.check()
}

// VideoFrame carries one frame of a stream in the stream's native
// format, timestamped at the server so the client can preserve A/V sync.
type VideoFrame struct {
	Stream uint32
	Seq    uint32
	PTS    uint64 // presentation timestamp, microseconds
	W, H   int    // frame geometry (server-side scaling may shrink it)
	Data   []byte // planar frame data (e.g. YV12 planes)
}

// Type implements Message.
func (m *VideoFrame) Type() Type { return TVideoFrame }

// PayloadSize implements Message: stream 4 + seq 4 + pts 8 + geometry
// 4 + len 4 + data.
func (m *VideoFrame) PayloadSize() int { return 24 + len(m.Data) }

func (m *VideoFrame) appendPayload(dst []byte) []byte {
	return append(m.appendPayloadMeta(dst), m.Data...)
}

func (m *VideoFrame) appendPayloadMeta(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, m.Stream)
	dst = binary.BigEndian.AppendUint32(dst, m.Seq)
	dst = binary.BigEndian.AppendUint64(dst, m.PTS)
	dst = binary.BigEndian.AppendUint16(dst, uint16(m.W))
	dst = binary.BigEndian.AppendUint16(dst, uint16(m.H))
	return binary.BigEndian.AppendUint32(dst, uint32(len(m.Data)))
}

func (m *VideoFrame) payloadSlab() []byte { return m.Data }

func decodeVideoFrame(d *decoder) (*VideoFrame, error) {
	m := &VideoFrame{}
	m.Stream = d.u32()
	m.Seq = d.u32()
	m.PTS = d.u64()
	m.W = int(d.u16())
	m.H = int(d.u16())
	n := int(d.u32())
	m.Data = d.bytes(n)
	return m, d.check()
}

// VideoMove repositions or resizes a stream's on-screen destination —
// window drags and resizes do not interrupt playback.
type VideoMove struct {
	Stream uint32
	Dst    geom.Rect
}

// Type implements Message.
func (m *VideoMove) Type() Type { return TVideoMove }

// PayloadSize implements Message: stream 4 + dst rect 8.
func (m *VideoMove) PayloadSize() int { return 12 }

func (m *VideoMove) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, m.Stream)
	return appendRect(dst, m.Dst)
}

func decodeVideoMove(d *decoder) (*VideoMove, error) {
	m := &VideoMove{}
	m.Stream = d.u32()
	m.Dst = d.rect()
	return m, d.check()
}

// VideoEnd tears down a stream object.
type VideoEnd struct {
	Stream uint32
}

// Type implements Message.
func (m *VideoEnd) Type() Type { return TVideoEnd }

// PayloadSize implements Message: stream 4.
func (m *VideoEnd) PayloadSize() int { return 4 }

func (m *VideoEnd) appendPayload(dst []byte) []byte {
	return binary.BigEndian.AppendUint32(dst, m.Stream)
}

func decodeVideoEnd(d *decoder) (*VideoEnd, error) {
	m := &VideoEnd{}
	m.Stream = d.u32()
	return m, d.check()
}

// AudioData carries timestamped PCM audio intercepted by the virtual
// audio driver (§4.2). Format is fixed 16-bit signed stereo at 44.1 kHz
// as the prototype's ALSA driver produced.
type AudioData struct {
	PTS  uint64 // microseconds, same clock as VideoFrame.PTS
	Data []byte
}

// Type implements Message.
func (m *AudioData) Type() Type { return TAudioData }

// PayloadSize implements Message: pts 8 + len 4 + data.
func (m *AudioData) PayloadSize() int { return 12 + len(m.Data) }

func (m *AudioData) appendPayload(dst []byte) []byte {
	return append(m.appendPayloadMeta(dst), m.Data...)
}

func (m *AudioData) appendPayloadMeta(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, m.PTS)
	return binary.BigEndian.AppendUint32(dst, uint32(len(m.Data)))
}

func (m *AudioData) payloadSlab() []byte { return m.Data }

func decodeAudioData(d *decoder) (*AudioData, error) {
	m := &AudioData{}
	m.PTS = d.u64()
	n := int(d.u32())
	m.Data = d.bytes(n)
	return m, d.check()
}
