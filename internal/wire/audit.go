package wire

import "encoding/binary"

// Integrity-audit messages (protocol v4). The server shards the session
// framebuffer into fixed square tiles and keeps an incrementally
// maintained FNV-1a 64 digest per tile; an AuditProbe asks the client
// to digest a window of *its* tiles the same way and answer with an
// AuditReply. Mismatched tiles are healed with targeted RAW repairs
// through the normal scheduler — the chaos oracle's byte-identical
// invariant, moved into the runtime. Both messages are well-framed, so
// v2/v3 peers skip them; a peer that never replies is marked legacy and
// left alone (no escalation loop).

// MaxAuditTiles bounds the tile window of one probe or reply. It keeps
// a reply under 32 KiB and makes hostile Count fields cheap to reject.
const MaxAuditTiles = 4096

// AuditProbe asks the client to digest the tiles [Start, Start+Count)
// of its framebuffer, tiled row-major into Tile x Tile squares (ragged
// at the right/bottom edges), and echo Seq back in an AuditReply. The
// server only probes a client settled at the lossless rung with an
// empty send queue, so the client's screen at probe receipt is exactly
// the server's screen at probe emission.
type AuditProbe struct {
	Seq   uint32 // probe sequence, echoed by the reply
	Tile  uint16 // tile side in pixels
	Start uint32 // first tile index of the window
	Count uint16 // number of tiles to digest (<= MaxAuditTiles)
}

// Type implements Message.
func (m *AuditProbe) Type() Type { return TAuditProbe }

// PayloadSize implements Message: seq 4 + tile 2 + start 4 + count 2.
func (m *AuditProbe) PayloadSize() int { return 12 }

func (m *AuditProbe) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, m.Seq)
	dst = binary.BigEndian.AppendUint16(dst, m.Tile)
	dst = binary.BigEndian.AppendUint32(dst, m.Start)
	return binary.BigEndian.AppendUint16(dst, m.Count)
}

func decodeAuditProbe(d *decoder) (*AuditProbe, error) {
	m := &AuditProbe{}
	m.Seq = d.u32()
	m.Tile = d.u16()
	m.Start = d.u32()
	m.Count = d.u16()
	if m.Tile == 0 || int(m.Count) > MaxAuditTiles {
		d.fail()
	}
	return m, d.check()
}

// AuditReply answers an AuditProbe with the requested tile digests. W
// and H echo the client framebuffer geometry the digests were computed
// over, so the server can discard a reply raced by a resize instead of
// misreading it as corruption. Count is the number of digests and must
// match the trailing array exactly.
type AuditReply struct {
	Seq     uint32 // echoed probe sequence
	Start   uint32 // first tile index digested
	W, H    uint16 // client framebuffer geometry at digest time
	Count   uint16 // len(Digests) (<= MaxAuditTiles)
	Digests []uint64
}

// Type implements Message.
func (m *AuditReply) Type() Type { return TAuditReply }

// PayloadSize implements Message: seq 4 + start 4 + geometry 4 + count
// 2 + 8 bytes per digest.
func (m *AuditReply) PayloadSize() int { return 14 + 8*len(m.Digests) }

func (m *AuditReply) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, m.Seq)
	dst = binary.BigEndian.AppendUint32(dst, m.Start)
	dst = binary.BigEndian.AppendUint16(dst, m.W)
	dst = binary.BigEndian.AppendUint16(dst, m.H)
	dst = binary.BigEndian.AppendUint16(dst, m.Count)
	for _, v := range m.Digests {
		dst = binary.BigEndian.AppendUint64(dst, v)
	}
	return dst
}

func decodeAuditReply(d *decoder) (*AuditReply, error) {
	m := &AuditReply{}
	m.Seq = d.u32()
	m.Start = d.u32()
	m.W = d.u16()
	m.H = d.u16()
	m.Count = d.u16()
	if int(m.Count) > MaxAuditTiles || d.remaining() != 8*int(m.Count) {
		d.fail()
		return m, d.check()
	}
	if m.Count > 0 {
		m.Digests = make([]uint64, m.Count)
		for i := range m.Digests {
			m.Digests[i] = d.u64()
		}
	}
	return m, d.check()
}
