package wire

import "encoding/binary"

// Session-resilience messages: heartbeats that detect dead peers in
// either direction, and the ticket/reattach pair that lets a client
// whose transport dropped resume its session (the server answers a
// valid Reattach with a full-screen RAW resync).

// ProtoVersion is the current protocol revision, carried in ServerInit.
// Version 1 is the original handshake; version 2 adds heartbeats and
// session reattach; version 3 adds the DegradeNotice quality-state
// message; version 4 adds the AuditProbe/AuditReply integrity audit;
// version 5 adds the TimeMark/MarkAck end-to-end tracing pair; version
// 6 adds the content-addressed payload cache (CacheStore/CachePaint/
// CacheMiss, negotiated by the CacheKB trailing extension on
// ClientInit/ServerInit/Reattach); version 7 adds warm cache resume
// across reattach (the CacheEpoch trailing extension on SessionTicket/
// Reattach, the CacheWarm byte on ServerInit, and the AttachBusy
// admission-control answer). Receivers skip well-framed unknown
// message types, so the version is informational: it lets a client know
// whether the server will honor Reattach at all, and a v6 server never
// sends cache messages to a peer whose handshake omitted CacheKB — the
// field's absence, not the version byte, is the capability signal.
// Likewise a reattach without CacheEpoch (or with epoch 0) never claims
// a warm cache: server epochs start at 1, so truncated or legacy hellos
// always fall back cold.
const ProtoVersion = 7

// MaxTicketLen bounds a session ticket on the wire.
const MaxTicketLen = 64

// Ping is a liveness probe. Either side may send one; the receiver
// echoes Seq and TimeUS back in a Pong. The server sends them on its
// heartbeat cadence; any traffic (not just Pong) proves the peer live.
type Ping struct {
	Seq    uint32
	TimeUS uint64 // sender clock, microseconds (echoed for RTT)
}

// Type implements Message.
func (m *Ping) Type() Type { return TPing }

// PayloadSize implements Message: seq 4 + time 8.
func (m *Ping) PayloadSize() int { return 12 }

func (m *Ping) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, m.Seq)
	return binary.BigEndian.AppendUint64(dst, m.TimeUS)
}

func decodePing(d *decoder) (*Ping, error) {
	m := &Ping{}
	m.Seq = d.u32()
	m.TimeUS = d.u64()
	return m, d.check()
}

// Pong answers a Ping, echoing its fields.
type Pong struct {
	Seq    uint32
	TimeUS uint64
}

// Type implements Message.
func (m *Pong) Type() Type { return TPong }

// PayloadSize implements Message: seq 4 + time 8.
func (m *Pong) PayloadSize() int { return 12 }

func (m *Pong) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, m.Seq)
	return binary.BigEndian.AppendUint64(dst, m.TimeUS)
}

func decodePong(d *decoder) (*Pong, error) {
	m := &Pong{}
	m.Seq = d.u32()
	m.TimeUS = d.u64()
	return m, d.check()
}

// SessionTicket is pushed by the server right after ServerInit: an
// opaque credential the client stores and presents in a Reattach to
// resume this session after a transport failure. Each (re)attach
// issues a fresh ticket; presenting one invalidates it. Role echoes
// the role the server granted (a trailing v3 extension: older peers
// omit it and decode as RoleOwner), so a reconnecting viewer resumes
// as a viewer. CacheEpoch is the payload-cache generation stamp (a
// trailing v7 extension; absent decodes as 0 = no warm resume): the
// client echoes it in a later Reattach to prove its in-memory store
// belongs to the server's retained cache model. Server epochs start at
// 1, so 0 never matches.
type SessionTicket struct {
	Ticket     []byte
	Role       uint8
	CacheEpoch uint64
}

// Type implements Message.
func (m *SessionTicket) Type() Type { return TSessionTicket }

// PayloadSize implements Message: ticket len 2 + ticket + role 1 +
// cache epoch 8.
func (m *SessionTicket) PayloadSize() int { return 11 + len(m.Ticket) }

func (m *SessionTicket) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.Ticket)))
	dst = append(dst, m.Ticket...)
	dst = append(dst, m.Role)
	return binary.BigEndian.AppendUint64(dst, m.CacheEpoch)
}

func decodeSessionTicket(d *decoder) (*SessionTicket, error) {
	m := &SessionTicket{}
	n := int(d.u16())
	if n > MaxTicketLen {
		d.fail()
		return m, d.check()
	}
	m.Ticket = d.bytes(n)
	if d.remaining() > 0 {
		m.Role = d.u8()
	}
	if d.remaining() > 0 {
		m.CacheEpoch = d.u64()
	}
	return m, d.check()
}

// Reattach replaces ClientInit in the handshake of a reconnecting
// client: the ticket identifies the detached session to resume. The
// viewport rides along because it may have changed while disconnected.
// A server that cannot honor the ticket (expired, unknown, or still
// attached) falls back to a fresh attach — either way the client
// converges via the full-screen RAW resync. Role is the requested
// session role (a trailing v3 extension; absent decodes as RoleOwner).
// CacheKB re-requests the payload-cache capacity after Role (a trailing
// v6 extension; absent decodes as 0 = cache disabled) — the server's
// model of the client cache rides the detached session, so a reattach
// granting the same size resumes hitting without re-warming. CacheEpoch
// (a trailing v7 extension; absent decodes as 0 = no warm claim) echoes
// the generation stamp from the SessionTicket: nonzero means "my store
// from that generation is intact", and the server resumes warm only
// when the epoch and granted capacity both match its retained model.
type Reattach struct {
	Ticket       []byte
	ViewW, ViewH int
	Name         string
	Role         uint8
	CacheKB      uint32
	CacheEpoch   uint64
}

// Type implements Message.
func (m *Reattach) Type() Type { return TReattach }

// PayloadSize implements Message: ticket len 2 + ticket + viewport 4 +
// name len 2 + name + role 1 + cache kb 4 + cache epoch 8.
func (m *Reattach) PayloadSize() int { return 21 + len(m.Ticket) + len(m.Name) }

func (m *Reattach) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.Ticket)))
	dst = append(dst, m.Ticket...)
	dst = binary.BigEndian.AppendUint16(dst, uint16(m.ViewW))
	dst = binary.BigEndian.AppendUint16(dst, uint16(m.ViewH))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.Name)))
	dst = append(dst, m.Name...)
	dst = append(dst, m.Role)
	dst = binary.BigEndian.AppendUint32(dst, m.CacheKB)
	return binary.BigEndian.AppendUint64(dst, m.CacheEpoch)
}

func decodeReattach(d *decoder) (*Reattach, error) {
	m := &Reattach{}
	n := int(d.u16())
	if n > MaxTicketLen {
		d.fail()
		return m, d.check()
	}
	m.Ticket = d.bytes(n)
	m.ViewW = int(d.u16())
	m.ViewH = int(d.u16())
	n = int(d.u16())
	m.Name = string(d.bytes(n))
	if d.remaining() > 0 {
		m.Role = d.u8()
	}
	if d.remaining() > 0 {
		m.CacheKB = d.u32()
	}
	if d.remaining() > 0 {
		m.CacheEpoch = d.u64()
	}
	return m, d.check()
}

// AttachBusy answers a handshake the reattach-storm admission gate
// refused (v7): too many full resyncs are already in flight, so the
// server declines this attach instead of letting N reconnecting
// clients saturate the flush path. RetryAfterMS is the jittered delay
// the client should wait before redialing — honoring it drains a storm
// in bounded waves. The connection closes after this message; a pre-v7
// client skips the unknown type, sees EOF, and retries on its normal
// backoff.
type AttachBusy struct {
	RetryAfterMS uint32
}

// Type implements Message.
func (m *AttachBusy) Type() Type { return TAttachBusy }

// PayloadSize implements Message: retry-after 4.
func (m *AttachBusy) PayloadSize() int { return 4 }

func (m *AttachBusy) appendPayload(dst []byte) []byte {
	return binary.BigEndian.AppendUint32(dst, m.RetryAfterMS)
}

func decodeAttachBusy(d *decoder) (*AttachBusy, error) {
	m := &AttachBusy{}
	m.RetryAfterMS = d.u32()
	return m, d.check()
}
