package wire

import (
	"encoding/binary"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// Encode-buffer pool. The flush paths (server flush loop, client send,
// WriteMessage) borrow a buffer, frame into it, write once, and return
// it. Ownership rule: whoever calls GetBuffer calls PutBuffer, and only
// after the transport write has fully completed — the transport may
// read the slice during Write but never retains it.

// maxPooledBuffer caps the capacity a returned buffer may retain, so a
// one-off full-screen update does not pin megabytes in the pool
// forever. Larger buffers are dropped for the GC.
const maxPooledBuffer = 1 << 20

var bufPool = sync.Pool{
	New: func() any {
		encStats.poolMisses.Add(1)
		b := make([]byte, 0, 4096)
		return &b
	},
}

// GetBuffer borrows an empty encode buffer from the pool.
func GetBuffer() *[]byte {
	encStats.poolGets.Add(1)
	return bufPool.Get().(*[]byte)
}

// PutBuffer returns a buffer obtained from GetBuffer. The caller must
// not touch the slice afterwards.
func PutBuffer(b *[]byte) {
	if b == nil || cap(*b) > maxPooledBuffer {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// encStats counts pool and vectored-write activity since process
// start. Package wire stays dependency-free; the server registers
// these through telemetry.CounterFunc.
var encStats struct {
	poolGets       atomic.Int64
	poolMisses     atomic.Int64
	vectoredWrites atomic.Int64
	vectoredBytes  atomic.Int64
}

// EncoderStats is a snapshot of the encode fast path's pool and
// vectored-write counters.
type EncoderStats struct {
	// PoolGets counts GetBuffer calls; PoolMisses counts the subset
	// that had to allocate. Hits = Gets - Misses.
	PoolGets   int64 `json:"pool_gets"`
	PoolMisses int64 `json:"pool_misses"`
	// VectoredWrites counts message slabs written by reference instead
	// of being copied into the batch buffer; VectoredBytes is the pixel
	// bytes that skipped the copy.
	VectoredWrites int64 `json:"vectored_writes"`
	VectoredBytes  int64 `json:"vectored_bytes"`
}

// Stats returns the current encode fast-path counters.
func Stats() EncoderStats {
	return EncoderStats{
		PoolGets:       encStats.poolGets.Load(),
		PoolMisses:     encStats.poolMisses.Load(),
		VectoredWrites: encStats.vectoredWrites.Load(),
		VectoredBytes:  encStats.vectoredBytes.Load(),
	}
}

// VectorThreshold is the slab size above which the batch encoder
// writes the slab by reference (an extra iovec) rather than copying it
// into the contiguous buffer. Below it, the copy is cheaper than the
// per-segment bookkeeping.
const VectorThreshold = 1 << 10

// BuffersWriter is implemented by transports that can consume a
// vectored batch in one call (cipher.StreamConn encrypts all segments
// into one scratch buffer and issues a single underlying Write). Plain
// net.Conn writers get the real writev through net.Buffers instead.
type BuffersWriter interface {
	WriteBuffers(bufs net.Buffers) (int64, error)
}

// batchSeg is either a span [start,end) of the batch's contiguous
// buffer (slab == nil) or a by-reference payload slab.
type batchSeg struct {
	start, end int
	slab       []byte
}

// Batch frames a sequence of messages for a single vectored write: one
// pooled contiguous buffer holds every header, metadata block, and
// small payload; large pixel slabs are referenced in place. A flush
// becomes one WriteTo instead of one Write per message.
//
// A Batch is not safe for concurrent use. The caller must not mutate
// or recycle appended messages' slabs until WriteTo returns.
type Batch struct {
	buf     *[]byte
	segs    []batchSeg
	open    bool // last seg is a growable buffer span
	msgs    int
	bytes   int64
	scratch net.Buffers
}

// NewBatch returns a Batch backed by a pooled buffer. Call Release
// when done with it.
func NewBatch() *Batch {
	return &Batch{buf: GetBuffer()}
}

// Append frames m into the batch.
func (b *Batch) Append(m Message) error {
	n := m.PayloadSize()
	if n > MaxPayload {
		return ErrTooLarge
	}
	buf := *b.buf
	start := len(buf)
	buf = append(buf, byte(m.Type()))
	buf = binary.BigEndian.AppendUint32(buf, uint32(n))
	if sm, ok := m.(slabMessage); ok {
		if slab := sm.payloadSlab(); len(slab) >= VectorThreshold {
			buf = sm.appendPayloadMeta(buf)
			*b.buf = buf
			b.extendSpan(start, len(buf))
			b.segs = append(b.segs, batchSeg{slab: slab})
			b.open = false
			encStats.vectoredWrites.Add(1)
			encStats.vectoredBytes.Add(int64(len(slab)))
			b.msgs++
			b.bytes += int64(HeaderSize + n)
			return nil
		}
	}
	buf = m.appendPayload(buf)
	*b.buf = buf
	b.extendSpan(start, len(buf))
	b.msgs++
	b.bytes += int64(HeaderSize + n)
	return nil
}

// extendSpan records [start,end) of the contiguous buffer, merging
// into the previous span when it is still growing. Offsets are
// resolved to slices only at write time because appends may move the
// buffer.
func (b *Batch) extendSpan(start, end int) {
	if b.open {
		b.segs[len(b.segs)-1].end = end
		return
	}
	b.segs = append(b.segs, batchSeg{start: start, end: end})
	b.open = true
}

// Len is the total framed bytes queued in the batch.
func (b *Batch) Len() int64 { return b.bytes }

// Msgs is the number of messages queued in the batch.
func (b *Batch) Msgs() int { return b.msgs }

// Empty reports whether the batch holds no messages.
func (b *Batch) Empty() bool { return b.msgs == 0 }

// WriteTo writes the whole batch to w: one plain Write when everything
// is contiguous, otherwise one vectored write (BuffersWriter if w
// implements it, else net.Buffers — a real writev on a net.Conn). The
// batch still holds the data afterwards; call Reset to reuse it.
func (b *Batch) WriteTo(w io.Writer) (int64, error) {
	if b.msgs == 0 {
		return 0, nil
	}
	buf := *b.buf
	if len(b.segs) == 1 && b.segs[0].slab == nil {
		n, err := w.Write(buf[b.segs[0].start:b.segs[0].end])
		return int64(n), err
	}
	bufs := b.scratch[:0]
	for _, s := range b.segs {
		if s.slab != nil {
			bufs = append(bufs, s.slab)
		} else {
			bufs = append(bufs, buf[s.start:s.end])
		}
	}
	var n int64
	var err error
	if bw, ok := w.(BuffersWriter); ok {
		n, err = bw.WriteBuffers(bufs)
	} else {
		// net.Buffers.WriteTo consumes its receiver, so point the batch's
		// scratch field at the segments (a field receiver does not escape
		// like a local would) and restore it from bufs afterwards.
		b.scratch = bufs
		n, err = b.scratch.WriteTo(w)
	}
	for i := range bufs {
		bufs[i] = nil // drop slab refs so the GC can reclaim pixel data
	}
	b.scratch = bufs[:0]
	return n, err
}

// Reset clears the batch for reuse, keeping its buffer.
func (b *Batch) Reset() {
	*b.buf = (*b.buf)[:0]
	for i := range b.segs {
		b.segs[i].slab = nil
	}
	b.segs = b.segs[:0]
	b.open = false
	b.msgs = 0
	b.bytes = 0
}

// Release returns the batch's buffer to the pool. The batch must not
// be used afterwards.
func (b *Batch) Release() {
	if b.buf != nil {
		PutBuffer(b.buf)
		b.buf = nil
	}
	b.segs = nil
	b.scratch = nil
}
