package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestAuditProbeValidation(t *testing.T) {
	good, err := Marshal(&AuditProbe{Seq: 1, Tile: 16, Start: 0, Count: 4})
	if err != nil {
		t.Fatal(err)
	}
	payload := append([]byte(nil), good[HeaderSize:]...)

	// Tile 0 would divide by zero in every tiler downstream; reject it
	// at the decoder.
	zeroTile := append([]byte(nil), payload...)
	binary.BigEndian.PutUint16(zeroTile[4:], 0)
	if _, err := Unmarshal(TAuditProbe, zeroTile); err == nil {
		t.Error("probe with Tile=0 decoded without error")
	}

	// A hostile Count above the bound is rejected before any work.
	bigCount := append([]byte(nil), payload...)
	binary.BigEndian.PutUint16(bigCount[10:], MaxAuditTiles+1)
	if _, err := Unmarshal(TAuditProbe, bigCount); err == nil {
		t.Error("probe with Count > MaxAuditTiles decoded without error")
	}
}

func TestAuditReplyCountValidation(t *testing.T) {
	good, err := Marshal(&AuditReply{Seq: 1, Start: 0, W: 96, H: 64, Count: 2,
		Digests: []uint64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	payload := append([]byte(nil), good[HeaderSize:]...)

	// Count must match the trailing digest array exactly: a count that
	// promises more or fewer digests than follow is corruption, never a
	// partial read.
	for _, count := range []uint16{0, 1, 3, MaxAuditTiles + 1} {
		mut := append([]byte(nil), payload...)
		binary.BigEndian.PutUint16(mut[12:], count)
		if _, err := Unmarshal(TAuditReply, mut); err == nil {
			t.Errorf("reply with Count=%d over 2 digests decoded without error", count)
		}
	}

	// An empty reply (timed-out client answering "nothing") is legal.
	empty, err := Marshal(&AuditReply{Seq: 7, Start: 0, W: 96, H: 64})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Unmarshal(TAuditReply, empty[HeaderSize:])
	if err != nil {
		t.Fatalf("empty reply rejected: %v", err)
	}
	if r := m.(*AuditReply); r.Seq != 7 || len(r.Digests) != 0 {
		t.Fatalf("empty reply decoded as %#v", r)
	}
}

// FuzzAuditReply drives the digest-carrying reply decoder directly:
// anything accepted must carry exactly Count digests backed by the
// input and survive a marshal / re-decode round trip.
func FuzzAuditReply(f *testing.F) {
	seeds := []*AuditReply{
		{Seq: 1, Start: 0, W: 96, H: 64, Count: 2, Digests: []uint64{1, 2}},
		{Seq: 9, Start: 1 << 20, W: 1024, H: 768},
		{},
	}
	for _, m := range seeds {
		buf, err := Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf[HeaderSize:])
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, payload []byte) {
		m, err := Unmarshal(TAuditReply, payload)
		if err != nil {
			return
		}
		r := m.(*AuditReply)
		if len(r.Digests) != int(r.Count) {
			t.Fatalf("accepted reply has %d digests but Count=%d", len(r.Digests), r.Count)
		}
		if 8*len(r.Digests) > len(payload) {
			t.Fatalf("decoder conjured %d digests from a %d-byte payload",
				len(r.Digests), len(payload))
		}
		out, err := Marshal(r)
		if err != nil {
			t.Fatalf("accepted reply failed to marshal: %v", err)
		}
		m2, err := ReadMessage(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		r2 := m2.(*AuditReply)
		if r2.Seq != r.Seq || r2.Start != r.Start || r2.W != r.W || r2.H != r.H ||
			r2.Count != r.Count {
			t.Fatalf("reply changed across round trip: %#v -> %#v", r, r2)
		}
		for i := range r.Digests {
			if r2.Digests[i] != r.Digests[i] {
				t.Fatalf("digest %d changed across round trip", i)
			}
		}
	})
}
