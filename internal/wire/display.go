package wire

import (
	"encoding/binary"

	"thinc/internal/compress"
	"thinc/internal/geom"
	"thinc/internal/pixel"
)

// Raw displays pixel data verbatim on a region of the screen (Table 1:
// RAW). It is THINC's last-resort command and the only one whose payload
// may be compressed.
type Raw struct {
	Rect  geom.Rect
	Codec compress.Codec
	Blend bool   // composite with OVER instead of replacing (alpha content)
	Data  []byte // encoded per Codec for a Rect.W() x Rect.H() block
}

// NewRaw encodes the pixels (row-major, stride in pixels) of r with the
// given codec. When the rows are already contiguous (stride == width)
// the pixels are encoded in place with no intermediate copy.
func NewRaw(r geom.Rect, pix []pixel.ARGB, stride int, codec compress.Codec) (*Raw, error) {
	var block []pixel.ARGB
	if stride == r.W() {
		block = pix[:r.Area()]
	} else {
		block = make([]pixel.ARGB, 0, r.Area())
		for y := 0; y < r.H(); y++ {
			block = append(block, pix[y*stride:y*stride+r.W()]...)
		}
	}
	data, err := compress.Encode(codec, block, r.W(), r.H())
	if err != nil {
		return nil, err
	}
	return &Raw{Rect: r, Codec: codec, Data: data}, nil
}

// Pixels decodes the payload back to ARGB pixels.
func (m *Raw) Pixels() ([]pixel.ARGB, error) {
	return compress.Decode(m.Codec, m.Data, m.Rect.W(), m.Rect.H())
}

// Type implements Message.
func (m *Raw) Type() Type { return TRaw }

// PayloadSize implements Message: rect 8 + codec 1 + flags 1 + len 4 +
// data.
func (m *Raw) PayloadSize() int { return 14 + len(m.Data) }

func (m *Raw) appendPayload(dst []byte) []byte {
	return append(m.appendPayloadMeta(dst), m.Data...)
}

func (m *Raw) appendPayloadMeta(dst []byte) []byte {
	dst = appendRect(dst, m.Rect)
	dst = append(dst, byte(m.Codec))
	var flags byte
	if m.Blend {
		flags = 1
	}
	dst = append(dst, flags)
	return binary.BigEndian.AppendUint32(dst, uint32(len(m.Data)))
}

func (m *Raw) payloadSlab() []byte { return m.Data }

func decodeRaw(d *decoder) (*Raw, error) {
	m := &Raw{}
	m.Rect = d.rect()
	m.Codec = compress.Codec(d.u8())
	m.Blend = d.u8()&1 != 0
	n := int(d.u32())
	m.Data = d.bytes(n)
	return m, d.check()
}

// Copy instructs the client to copy a screen region to another location
// within its own framebuffer (Table 1: COPY) — scrolling and window
// movement without resending data.
type Copy struct {
	Src geom.Rect
	Dst geom.Point
}

// Type implements Message.
func (m *Copy) Type() Type { return TCopy }

// PayloadSize implements Message: rect 8 + dst point 4.
func (m *Copy) PayloadSize() int { return 12 }

func (m *Copy) appendPayload(dst []byte) []byte {
	dst = appendRect(dst, m.Src)
	dst = binary.BigEndian.AppendUint16(dst, uint16(m.Dst.X))
	return binary.BigEndian.AppendUint16(dst, uint16(m.Dst.Y))
}

func decodeCopy(d *decoder) (*Copy, error) {
	m := &Copy{}
	m.Src = d.rect()
	m.Dst = geom.Point{X: int(d.u16()), Y: int(d.u16())}
	return m, d.check()
}

// SFill fills a region with a single color (Table 1: SFILL).
type SFill struct {
	Rect  geom.Rect
	Color pixel.ARGB
}

// Type implements Message.
func (m *SFill) Type() Type { return TSFill }

// PayloadSize implements Message: rect 8 + color 4.
func (m *SFill) PayloadSize() int { return 12 }

func (m *SFill) appendPayload(dst []byte) []byte {
	dst = appendRect(dst, m.Rect)
	return binary.BigEndian.AppendUint32(dst, uint32(m.Color))
}

func decodeSFill(d *decoder) (*SFill, error) {
	m := &SFill{}
	m.Rect = d.rect()
	m.Color = pixel.ARGB(d.u32())
	return m, d.check()
}

// PFill tiles a region with a pixel pattern (Table 1: PFILL). The
// anchor (Ax, Ay) is the tile phase: tile pixel (0,0) lands on screen
// coordinates congruent to the anchor modulo the tile size.
type PFill struct {
	Rect   geom.Rect
	TileW  int // tile width
	TileH  int // tile height
	Ax, Ay int // tile phase, 0 <= Ax < TileW, 0 <= Ay < TileH
	Tile   []pixel.ARGB
}

// Type implements Message.
func (m *PFill) Type() Type { return TPFill }

// PayloadSize implements Message: rect 8 + tile geometry 8 + 4 bytes
// per tile pixel.
func (m *PFill) PayloadSize() int { return 16 + 4*len(m.Tile) }

func (m *PFill) appendPayload(dst []byte) []byte {
	dst = appendRect(dst, m.Rect)
	dst = binary.BigEndian.AppendUint16(dst, uint16(m.TileW))
	dst = binary.BigEndian.AppendUint16(dst, uint16(m.TileH))
	dst = binary.BigEndian.AppendUint16(dst, uint16(m.Ax))
	dst = binary.BigEndian.AppendUint16(dst, uint16(m.Ay))
	for _, p := range m.Tile {
		dst = binary.BigEndian.AppendUint32(dst, uint32(p))
	}
	return dst
}

func decodePFill(d *decoder) (*PFill, error) {
	m := &PFill{}
	m.Rect = d.rect()
	m.TileW = int(d.u16())
	m.TileH = int(d.u16())
	m.Ax = int(d.u16())
	m.Ay = int(d.u16())
	n := m.TileW * m.TileH
	if n <= 0 || n > 1<<20 {
		return nil, ErrCorrupt
	}
	raw := d.bytes(n * 4)
	if err := d.check(); err != nil {
		return nil, err
	}
	m.Tile = make([]pixel.ARGB, n)
	for i := range m.Tile {
		m.Tile[i] = pixel.ARGB(binary.BigEndian.Uint32(raw[i*4:]))
	}
	return m, nil
}

// Bitmap fills a region using a 1-bit stipple with foreground and
// background colors (Table 1: BITMAP) — glyph text and patterned fills.
type Bitmap struct {
	Rect        geom.Rect
	Fg, Bg      pixel.ARGB
	Transparent bool // clear bits leave destination untouched
	BitW, BitH  int
	Bits        []byte // rows padded to bytes, MSB first
}

// Type implements Message.
func (m *Bitmap) Type() Type { return TBitmap }

// PayloadSize implements Message: rect 8 + fg 4 + bg 4 + flags 1 +
// bitmap geometry 4 + bits.
func (m *Bitmap) PayloadSize() int { return 21 + len(m.Bits) }

func (m *Bitmap) appendPayload(dst []byte) []byte {
	return append(m.appendPayloadMeta(dst), m.Bits...)
}

func (m *Bitmap) appendPayloadMeta(dst []byte) []byte {
	dst = appendRect(dst, m.Rect)
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.Fg))
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.Bg))
	var flags byte
	if m.Transparent {
		flags = 1
	}
	dst = append(dst, flags)
	dst = binary.BigEndian.AppendUint16(dst, uint16(m.BitW))
	return binary.BigEndian.AppendUint16(dst, uint16(m.BitH))
}

func (m *Bitmap) payloadSlab() []byte { return m.Bits }

func decodeBitmap(d *decoder) (*Bitmap, error) {
	m := &Bitmap{}
	m.Rect = d.rect()
	m.Fg = pixel.ARGB(d.u32())
	m.Bg = pixel.ARGB(d.u32())
	m.Transparent = d.u8()&1 != 0
	m.BitW = int(d.u16())
	m.BitH = int(d.u16())
	stride := (m.BitW + 7) / 8
	m.Bits = d.bytes(stride * m.BitH)
	return m, d.check()
}

// CursorSet installs the client's hardware-cursor image: ARGB pixels
// with a hotspot. Cursor handling lives at the device driver layer on
// real hardware (the DDX cursor entrypoints), so THINC virtualizes it
// like any other driver operation.
type CursorSet struct {
	HotX, HotY int
	W, H       int
	Pix        []pixel.ARGB
}

// Type implements Message.
func (m *CursorSet) Type() Type { return TCursorSet }

// PayloadSize implements Message: hotspot + geometry 8 + 4 bytes per
// cursor pixel.
func (m *CursorSet) PayloadSize() int { return 8 + 4*len(m.Pix) }

func (m *CursorSet) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(m.HotX))
	dst = binary.BigEndian.AppendUint16(dst, uint16(m.HotY))
	dst = binary.BigEndian.AppendUint16(dst, uint16(m.W))
	dst = binary.BigEndian.AppendUint16(dst, uint16(m.H))
	for _, p := range m.Pix {
		dst = binary.BigEndian.AppendUint32(dst, uint32(p))
	}
	return dst
}

func decodeCursorSet(d *decoder) (*CursorSet, error) {
	m := &CursorSet{}
	m.HotX = int(d.u16())
	m.HotY = int(d.u16())
	m.W = int(d.u16())
	m.H = int(d.u16())
	n := m.W * m.H
	if n <= 0 || n > 1<<16 {
		return nil, ErrCorrupt
	}
	raw := d.bytes(n * 4)
	if err := d.check(); err != nil {
		return nil, err
	}
	m.Pix = make([]pixel.ARGB, n)
	for i := range m.Pix {
		m.Pix[i] = pixel.ARGB(binary.BigEndian.Uint32(raw[i*4:]))
	}
	return m, nil
}

// CursorMove repositions the hardware cursor. Moves are tiny,
// latency-critical, and supersede any unsent previous move.
type CursorMove struct {
	X, Y int
}

// Type implements Message.
func (m *CursorMove) Type() Type { return TCursorMove }

// PayloadSize implements Message: x 2 + y 2.
func (m *CursorMove) PayloadSize() int { return 4 }

func (m *CursorMove) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(m.X))
	return binary.BigEndian.AppendUint16(dst, uint16(m.Y))
}

func decodeCursorMove(d *decoder) (*CursorMove, error) {
	m := &CursorMove{}
	m.X = int(d.u16())
	m.Y = int(d.u16())
	return m, d.check()
}
