package wire

import (
	"encoding/binary"

	"thinc/internal/pixel"
)

// ServerInit is the server's hello: the protocol revision it speaks,
// the session's true framebuffer geometry and native pixel format. The
// client may view it at a different size (see Resize and §6). CacheKB
// is the payload-cache capacity the server granted — min(client
// request, server cap) — as a trailing v6 extension: absent decodes as
// 0, cache disabled. Both sides size their LRU to the granted value, so
// the deterministic-eviction invariant starts from a shared number.
// CacheWarm (a trailing v7 extension; absent decodes as 0 = cold) is
// the server's explicit verdict on a warm-resume claim: 1 means the
// retained cache model was accepted and the client must keep its store
// byte-for-byte; 0 means the client must reset the store even if it
// kept one, so the two LRUs never diverge silently.
type ServerInit struct {
	Ver       uint8 // protocol revision (ProtoVersion); 0 decodes from v1 peers
	W, H      int
	Format    pixel.Format
	CacheKB   uint32
	CacheWarm uint8
}

// Type implements Message.
func (m *ServerInit) Type() Type { return TServerInit }

// PayloadSize implements Message: ver 1 + geometry 4 + format 1 +
// cache kb 4 + cache warm 1.
func (m *ServerInit) PayloadSize() int { return 11 }

func (m *ServerInit) appendPayload(dst []byte) []byte {
	dst = append(dst, m.Ver)
	dst = binary.BigEndian.AppendUint16(dst, uint16(m.W))
	dst = binary.BigEndian.AppendUint16(dst, uint16(m.H))
	dst = append(dst, byte(m.Format))
	dst = binary.BigEndian.AppendUint32(dst, m.CacheKB)
	return append(dst, m.CacheWarm)
}

func decodeServerInit(d *decoder) (*ServerInit, error) {
	m := &ServerInit{}
	m.Ver = d.u8()
	m.W = int(d.u16())
	m.H = int(d.u16())
	m.Format = pixel.Format(d.u8())
	if d.remaining() > 0 {
		m.CacheKB = d.u32()
	}
	if d.remaining() > 0 {
		m.CacheWarm = d.u8()
	}
	return m, d.check()
}

// Session roles carried in the attach handshake. An owner drives the
// session (input is injected into the display); a viewer receives the
// same broadcast update stream but its input is discarded — the
// one-to-many screen-share attach.
const (
	RoleOwner  uint8 = 0
	RoleViewer uint8 = 1
)

// RoleName returns a human-readable role label.
func RoleName(role uint8) string {
	if role == RoleViewer {
		return "viewer"
	}
	return "owner"
}

// ClientInit is the client's hello: its viewport size (which may be
// smaller than the session framebuffer — the PDA case), a display
// name for logging, and the requested session role. The role byte is
// a backward-compatible trailing extension of the v3 encoding: peers
// that omit it decode as RoleOwner. CacheKB requests a payload-cache
// capacity in kilobytes (a trailing v6 extension after the role byte;
// absent or zero decodes as 0 = no cache), which the server clamps to
// its own cap and echoes in ServerInit.
type ClientInit struct {
	ViewW, ViewH int
	Name         string
	Role         uint8
	CacheKB      uint32
}

// Type implements Message.
func (m *ClientInit) Type() Type { return TClientInit }

// PayloadSize implements Message: viewport 4 + name len 2 + name +
// role 1 + cache kb 4.
func (m *ClientInit) PayloadSize() int { return 11 + len(m.Name) }

func (m *ClientInit) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(m.ViewW))
	dst = binary.BigEndian.AppendUint16(dst, uint16(m.ViewH))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.Name)))
	dst = append(dst, m.Name...)
	dst = append(dst, m.Role)
	return binary.BigEndian.AppendUint32(dst, m.CacheKB)
}

func decodeClientInit(d *decoder) (*ClientInit, error) {
	m := &ClientInit{}
	m.ViewW = int(d.u16())
	m.ViewH = int(d.u16())
	n := int(d.u16())
	m.Name = string(d.bytes(n))
	if d.remaining() > 0 {
		m.Role = d.u8()
	}
	if d.remaining() > 0 {
		m.CacheKB = d.u32()
	}
	return m, d.check()
}

// Resize tells the server the client viewport changed; subsequent
// updates are scaled server-side to the new geometry (§6).
type Resize struct {
	ViewW, ViewH int
}

// Type implements Message.
func (m *Resize) Type() Type { return TResize }

// PayloadSize implements Message: viewport 4.
func (m *Resize) PayloadSize() int { return 4 }

func (m *Resize) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(m.ViewW))
	return binary.BigEndian.AppendUint16(dst, uint16(m.ViewH))
}

func decodeResize(d *decoder) (*Resize, error) {
	m := &Resize{}
	m.ViewW = int(d.u16())
	m.ViewH = int(d.u16())
	return m, d.check()
}

// InputKind distinguishes input events.
type InputKind uint8

// Input event kinds.
const (
	InputMouseMove InputKind = iota
	InputMouseButton
	InputKey
)

// Input is a user input event forwarded from client to server. Mouse
// coordinates are in *server* framebuffer space; a scaled client maps
// them back before sending.
type Input struct {
	Kind   InputKind
	X, Y   int
	Code   uint16 // button number or key code
	Press  bool
	TimeUS uint64 // client timestamp, microseconds
}

// Type implements Message.
func (m *Input) Type() Type { return TInput }

// PayloadSize implements Message: kind 1 + x 2 + y 2 + code 2 + press
// 1 + time 8.
func (m *Input) PayloadSize() int { return 16 }

func (m *Input) appendPayload(dst []byte) []byte {
	dst = append(dst, byte(m.Kind))
	dst = binary.BigEndian.AppendUint16(dst, uint16(m.X))
	dst = binary.BigEndian.AppendUint16(dst, uint16(m.Y))
	dst = binary.BigEndian.AppendUint16(dst, m.Code)
	var b byte
	if m.Press {
		b = 1
	}
	dst = append(dst, b)
	return binary.BigEndian.AppendUint64(dst, m.TimeUS)
}

func decodeInput(d *decoder) (*Input, error) {
	m := &Input{}
	m.Kind = InputKind(d.u8())
	m.X = int(d.u16())
	m.Y = int(d.u16())
	m.Code = d.u16()
	m.Press = d.u8()&1 != 0
	m.TimeUS = d.u64()
	return m, d.check()
}

// AuthChallenge starts PAM-style authentication: the server sends a
// nonce the client must prove knowledge of the account (or session
// share) secret against.
type AuthChallenge struct {
	Nonce []byte
}

// Type implements Message.
func (m *AuthChallenge) Type() Type { return TAuthChallenge }

// PayloadSize implements Message: nonce len 2 + nonce.
func (m *AuthChallenge) PayloadSize() int { return 2 + len(m.Nonce) }

func (m *AuthChallenge) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.Nonce)))
	return append(dst, m.Nonce...)
}

func decodeAuthChallenge(d *decoder) (*AuthChallenge, error) {
	m := &AuthChallenge{}
	n := int(d.u16())
	m.Nonce = d.bytes(n)
	return m, d.check()
}

// AuthResponse carries the username and the challenge proof.
type AuthResponse struct {
	User  string
	Proof []byte
}

// Type implements Message.
func (m *AuthResponse) Type() Type { return TAuthResponse }

// PayloadSize implements Message: user len 2 + user + proof len 2 +
// proof.
func (m *AuthResponse) PayloadSize() int { return 4 + len(m.User) + len(m.Proof) }

func (m *AuthResponse) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.User)))
	dst = append(dst, m.User...)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.Proof)))
	return append(dst, m.Proof...)
}

func decodeAuthResponse(d *decoder) (*AuthResponse, error) {
	m := &AuthResponse{}
	n := int(d.u16())
	m.User = string(d.bytes(n))
	n = int(d.u16())
	m.Proof = d.bytes(n)
	return m, d.check()
}

// AuthResult reports authentication success or failure.
type AuthResult struct {
	OK     bool
	Reason string
}

// Type implements Message.
func (m *AuthResult) Type() Type { return TAuthResult }

// PayloadSize implements Message: ok 1 + reason len 2 + reason.
func (m *AuthResult) PayloadSize() int { return 3 + len(m.Reason) }

func (m *AuthResult) appendPayload(dst []byte) []byte {
	var b byte
	if m.OK {
		b = 1
	}
	dst = append(dst, b)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.Reason)))
	return append(dst, m.Reason...)
}

func decodeAuthResult(d *decoder) (*AuthResult, error) {
	m := &AuthResult{}
	m.OK = d.u8()&1 != 0
	n := int(d.u16())
	m.Reason = string(d.bytes(n))
	return m, d.check()
}

// UpdateRequest is a client-pull update solicitation. THINC itself is
// server-push and never sends these; the message exists for the
// client-pull ablation and the VNC-class baselines (§5, §8).
type UpdateRequest struct {
	Incremental bool
}

// Type implements Message.
func (m *UpdateRequest) Type() Type { return TUpdateRequest }

// PayloadSize implements Message: incremental flag 1.
func (m *UpdateRequest) PayloadSize() int { return 1 }

func (m *UpdateRequest) appendPayload(dst []byte) []byte {
	var b byte
	if m.Incremental {
		b = 1
	}
	return append(dst, b)
}

func decodeUpdateRequest(d *decoder) (*UpdateRequest, error) {
	m := &UpdateRequest{}
	m.Incremental = d.u8()&1 != 0
	return m, d.check()
}
