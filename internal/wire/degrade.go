package wire

import "encoding/binary"

// DegradeNotice tells the client which rung of the server's adaptive
// degradation ladder its session currently rides. The server demotes a
// session rung by rung when the estimated drain rate cannot keep up with
// the update stream, and promotes it back as pressure subsides; the
// notice lets the client surface quality state (a status indicator, a
// "reduced quality" badge) without guessing from the payloads. It is
// informational — a client may ignore it entirely.
type DegradeNotice struct {
	// Rung is the active ladder rung: 0 lossless, 1 heavier compression,
	// 2 server-side downscale, 3 video frame dropping, 4 full resync.
	Rung uint8
	// Cause distinguishes why the rung changed (CauseBacklog,
	// CauseRecovered, ...).
	Cause uint8
	// BacklogBytes is the client's queued wire backlog at the decision.
	BacklogBytes uint32
	// EstBps is the estimated drain rate toward this client, bytes/sec
	// (0 when the estimator has no sample yet).
	EstBps uint32
}

// DegradeNotice causes.
const (
	// CauseBacklog: the rung rose because the backlog's projected drain
	// time crossed the escalation threshold.
	CauseBacklog uint8 = iota
	// CauseRecovered: the rung dropped after sustained headroom.
	CauseRecovered
	// CauseBudget: a hard per-client resource budget forced eviction.
	CauseBudget
	// CauseAdmin: the rung was set explicitly (operator pin, session
	// reattach carrying its previous rung forward).
	CauseAdmin
)

// Type implements Message.
func (m *DegradeNotice) Type() Type { return TDegradeNotice }

// PayloadSize implements Message: rung 1 + cause 1 + backlog 4 + bps 4.
func (m *DegradeNotice) PayloadSize() int { return 10 }

func (m *DegradeNotice) appendPayload(dst []byte) []byte {
	dst = append(dst, m.Rung, m.Cause)
	dst = binary.BigEndian.AppendUint32(dst, m.BacklogBytes)
	return binary.BigEndian.AppendUint32(dst, m.EstBps)
}

func decodeDegradeNotice(d *decoder) (*DegradeNotice, error) {
	m := &DegradeNotice{}
	m.Rung = d.u8()
	m.Cause = d.u8()
	m.BacklogBytes = d.u32()
	m.EstBps = d.u32()
	return m, d.check()
}
