// Package wire defines THINC's remote display protocol: the five display
// commands of Table 1 (RAW, COPY, SFILL, PFILL, BITMAP), the video stream
// messages (§4.2), audio, and the control/input/auth messages, together
// with their binary encoding and framing.
//
// Every message is framed as:
//
//	1 byte  message type
//	4 bytes payload length (big endian)
//	N bytes payload
//
// The byte counts produced here are what the benchmark harness measures,
// so the encoding is kept deliberately tight: rectangles are 8 bytes,
// colors 4 bytes, and only RAW payloads ever carry compression.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"thinc/internal/geom"
)

// Type identifies a protocol message.
type Type uint8

// Protocol message types. Display commands come first and mirror Table 1
// of the paper.
const (
	TRaw Type = iota + 1
	TCopy
	TSFill
	TPFill
	TBitmap

	TVideoInit
	TVideoFrame
	TVideoMove
	TVideoEnd

	TAudioData

	TServerInit
	TClientInit
	TResize
	TInput
	TAuthChallenge
	TAuthResponse
	TAuthResult
	TUpdateRequest

	TCursorSet
	TCursorMove

	TPing
	TPong
	TSessionTicket
	TReattach

	TDegradeNotice

	TAuditProbe
	TAuditReply

	TTimeMark
	TMarkAck

	TCacheStore
	TCachePaint
	TCacheMiss

	TAttachBusy
)

var typeNames = map[Type]string{
	TRaw: "RAW", TCopy: "COPY", TSFill: "SFILL", TPFill: "PFILL", TBitmap: "BITMAP",
	TVideoInit: "VIDEO_INIT", TVideoFrame: "VIDEO_FRAME", TVideoMove: "VIDEO_MOVE",
	TVideoEnd: "VIDEO_END", TAudioData: "AUDIO_DATA",
	TServerInit: "SERVER_INIT", TClientInit: "CLIENT_INIT", TResize: "RESIZE",
	TInput: "INPUT", TAuthChallenge: "AUTH_CHALLENGE", TAuthResponse: "AUTH_RESPONSE",
	TAuthResult: "AUTH_RESULT", TUpdateRequest: "UPDATE_REQUEST",
	TCursorSet: "CURSOR_SET", TCursorMove: "CURSOR_MOVE",
	TPing: "PING", TPong: "PONG",
	TSessionTicket: "SESSION_TICKET", TReattach: "REATTACH",
	TDegradeNotice: "DEGRADE_NOTICE",
	TAuditProbe:    "AUDIT_PROBE",
	TAuditReply:    "AUDIT_REPLY",
	TTimeMark:      "TIME_MARK",
	TMarkAck:       "MARK_ACK",
	TCacheStore:    "CACHE_STORE",
	TCachePaint:    "CACHE_PAINT",
	TCacheMiss:     "CACHE_MISS",
	TAttachBusy:    "ATTACH_BUSY",
}

func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Message is any protocol message. Marshaling appends the payload only;
// framing is added by WriteMessage.
type Message interface {
	Type() Type
	// PayloadSize is the exact encoded payload length in bytes,
	// computed analytically from the fields without encoding anything.
	// Invariant (enforced by TestPayloadSizeMatchesAppend):
	// PayloadSize() == len(appendPayload(nil)).
	PayloadSize() int
	appendPayload(dst []byte) []byte
}

// slabMessage is implemented by messages whose payload ends in one
// contiguous byte slab (RAW, BITMAP, VIDEO_FRAME, AUDIO_DATA). The
// batch encoder frames such messages by copying only the header and
// metadata into its buffer and referencing the slab in place, so pixel
// bytes are written to the transport without an intermediate copy.
type slabMessage interface {
	Message
	// appendPayloadMeta appends the payload minus the trailing slab.
	appendPayloadMeta(dst []byte) []byte
	// payloadSlab returns the trailing slab bytes.
	payloadSlab() []byte
}

// HeaderSize is the framing overhead per message.
const HeaderSize = 5

// MaxPayload bounds a single message payload; a full 1600x1200 ARGB
// screen fits with margin. Larger updates must be split by the sender —
// which THINC's non-blocking flush does anyway (§5).
const MaxPayload = 16 << 20

// Errors returned by the codec.
var (
	ErrTooLarge = errors.New("wire: payload exceeds MaxPayload")
	ErrCorrupt  = errors.New("wire: corrupt message")
	// ErrUnknownType marks a well-framed message of a type this build
	// does not know. The stream is positioned at the next frame, so
	// receivers may skip it and keep reading (forward compatibility).
	// Returned errors are *UnknownTypeError values matching this
	// sentinel via errors.Is.
	ErrUnknownType = errors.New("wire: unknown message type")
)

// UnknownTypeError reports the unrecognized type of a well-framed
// message. It matches ErrUnknownType under errors.Is/errors.As.
type UnknownTypeError struct{ T Type }

func (e *UnknownTypeError) Error() string {
	return fmt.Sprintf("wire: unknown message type %d", uint8(e.T))
}

// Is makes errors.Is(err, ErrUnknownType) true.
func (e *UnknownTypeError) Is(target error) bool { return target == ErrUnknownType }

// AppendMessage frames m onto dst in a single pass and returns the
// extended slice. The payload length is known up front via PayloadSize,
// so the header is written before the payload with no intermediate
// buffer. dst may be nil, a pooled buffer from GetBuffer, or any
// caller-owned slice.
func AppendMessage(dst []byte, m Message) ([]byte, error) {
	n := m.PayloadSize()
	if n > MaxPayload {
		return dst, ErrTooLarge
	}
	dst = append(dst, byte(m.Type()))
	dst = binary.BigEndian.AppendUint32(dst, uint32(n))
	return m.appendPayload(dst), nil
}

// Marshal encodes a complete framed message into a fresh exact-size
// buffer. Hot paths should prefer AppendMessage with a pooled buffer.
func Marshal(m Message) ([]byte, error) {
	n := m.PayloadSize()
	if n > MaxPayload {
		return nil, ErrTooLarge
	}
	return AppendMessage(make([]byte, 0, HeaderSize+n), m)
}

// WireSize returns the framed size of m in bytes — the quantity THINC's
// SRSF scheduler orders commands by. It is O(1) arithmetic; nothing is
// encoded.
func WireSize(m Message) int {
	return HeaderSize + m.PayloadSize()
}

// WriteMessage frames and writes m to w using a pooled encode buffer.
func WriteMessage(w io.Writer, m Message) error {
	bp := GetBuffer()
	buf, err := AppendMessage((*bp)[:0], m)
	if err != nil {
		PutBuffer(bp)
		return err
	}
	*bp = buf // keep any growth in the pool
	_, err = w.Write(buf)
	PutBuffer(bp)
	return err
}

// ReadMessage reads one framed message from r.
func ReadMessage(r io.Reader) (Message, error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxPayload {
		return nil, ErrTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return Unmarshal(Type(hdr[0]), payload)
}

// Unmarshal decodes a payload of the given type.
func Unmarshal(t Type, payload []byte) (Message, error) {
	d := decoder{buf: payload}
	var m Message
	var err error
	switch t {
	case TRaw:
		m, err = decodeRaw(&d)
	case TCopy:
		m, err = decodeCopy(&d)
	case TSFill:
		m, err = decodeSFill(&d)
	case TPFill:
		m, err = decodePFill(&d)
	case TBitmap:
		m, err = decodeBitmap(&d)
	case TVideoInit:
		m, err = decodeVideoInit(&d)
	case TVideoFrame:
		m, err = decodeVideoFrame(&d)
	case TVideoMove:
		m, err = decodeVideoMove(&d)
	case TVideoEnd:
		m, err = decodeVideoEnd(&d)
	case TAudioData:
		m, err = decodeAudioData(&d)
	case TServerInit:
		m, err = decodeServerInit(&d)
	case TClientInit:
		m, err = decodeClientInit(&d)
	case TResize:
		m, err = decodeResize(&d)
	case TInput:
		m, err = decodeInput(&d)
	case TAuthChallenge:
		m, err = decodeAuthChallenge(&d)
	case TAuthResponse:
		m, err = decodeAuthResponse(&d)
	case TAuthResult:
		m, err = decodeAuthResult(&d)
	case TUpdateRequest:
		m, err = decodeUpdateRequest(&d)
	case TCursorSet:
		m, err = decodeCursorSet(&d)
	case TCursorMove:
		m, err = decodeCursorMove(&d)
	case TPing:
		m, err = decodePing(&d)
	case TPong:
		m, err = decodePong(&d)
	case TSessionTicket:
		m, err = decodeSessionTicket(&d)
	case TReattach:
		m, err = decodeReattach(&d)
	case TDegradeNotice:
		m, err = decodeDegradeNotice(&d)
	case TAuditProbe:
		m, err = decodeAuditProbe(&d)
	case TAuditReply:
		m, err = decodeAuditReply(&d)
	case TTimeMark:
		m, err = decodeTimeMark(&d)
	case TMarkAck:
		m, err = decodeMarkAck(&d)
	case TCacheStore:
		m, err = decodeCacheStore(&d)
	case TCachePaint:
		m, err = decodeCachePaint(&d)
	case TCacheMiss:
		m, err = decodeCacheMiss(&d)
	case TAttachBusy:
		m, err = decodeAttachBusy(&d)
	default:
		return nil, &UnknownTypeError{T: t}
	}
	if err != nil {
		return nil, err
	}
	if !d.done() {
		return nil, fmt.Errorf("%w: %d trailing bytes in %v", ErrCorrupt, d.remaining(), t)
	}
	return m, nil
}

// decoder is a bounds-checked big-endian reader over a payload.
type decoder struct {
	buf []byte
	off int
	err bool
}

func (d *decoder) remaining() int { return len(d.buf) - d.off }
func (d *decoder) done() bool     { return d.off == len(d.buf) && !d.err }

func (d *decoder) fail() {
	d.err = true
}

func (d *decoder) u8() uint8 {
	if d.err || d.remaining() < 1 {
		d.fail()
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) u16() uint16 {
	if d.err || d.remaining() < 2 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32() uint32 {
	if d.err || d.remaining() < 4 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err || d.remaining() < 8 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) bytes(n int) []byte {
	if d.err || n < 0 || d.remaining() < n {
		d.fail()
		return nil
	}
	v := d.buf[d.off : d.off+n : d.off+n]
	d.off += n
	return v
}

func (d *decoder) check() error {
	if d.err {
		return ErrCorrupt
	}
	return nil
}

// Rect encoding: x, y as uint16, w, h as uint16. Commands are clipped to
// the (non-negative) screen before transmission.
func appendRect(dst []byte, r geom.Rect) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(r.X0))
	dst = binary.BigEndian.AppendUint16(dst, uint16(r.Y0))
	dst = binary.BigEndian.AppendUint16(dst, uint16(r.W()))
	return binary.BigEndian.AppendUint16(dst, uint16(r.H()))
}

func (d *decoder) rect() geom.Rect {
	x, y := int(d.u16()), int(d.u16())
	w, h := int(d.u16()), int(d.u16())
	return geom.XYWH(x, y, w, h)
}
