package wire

import (
	"encoding/binary"

	"thinc/internal/compress"
	"thinc/internal/geom"
	"thinc/internal/pixel"
)

// Content-addressed payload cache messages (wire v6). Repeated display
// content — glyph runs, icons, toolbar pixmaps, scrolled-back regions —
// dominates steady-state thin-client bandwidth, so the server digests
// every cache-eligible RAW/BITMAP payload with 64-bit FNV-1a and keeps a
// per-client model of the client's LRU store. The first appearance of a
// payload ships as CACHE_STORE (pixels + digest: the client populates
// its cache as a side effect of painting); every repeat ships as a
// ~20-byte CACHE_PAINT reference. Both sides run the same
// deterministic LRU over the same message stream, so evictions stay
// synchronized without any eviction traffic; CACHE_MISS is the client's
// repair signal when verification or lookup fails.

// Cache entry kinds carried in CacheStore: which display command the
// cached payload replays on paint.
const (
	CacheKindRaw    uint8 = 0 // RAW pixels (codec + blend semantics)
	CacheKindBitmap uint8 = 1 // BITMAP stipple (fg/bg/transparent)
)

// CacheStore delivers a payload's first appearance: paint it like the
// equivalent RAW/BITMAP command and insert it into the cache under
// Digest. The digest covers the decoded content plus the fields that
// change its appearance (geometry and blend for RAW; colors, mode and
// bit geometry for BITMAP), never the codec — so a repeat hit is
// codec-independent. The client verifies Digest against the decoded
// payload before inserting; a mismatch (corruption) paints nothing and
// answers with CacheMiss so the server repairs the region.
type CacheStore struct {
	Digest uint64
	Kind   uint8 // CacheKindRaw or CacheKindBitmap
	Rect   geom.Rect

	// CacheKindRaw fields: as wire.Raw.
	Codec compress.Codec
	Blend bool
	Data  []byte

	// CacheKindBitmap fields: as wire.Bitmap.
	Fg, Bg      pixel.ARGB
	Transparent bool
	BitW, BitH  int
	Bits        []byte
}

// Type implements Message.
func (m *CacheStore) Type() Type { return TCacheStore }

// PayloadSize implements Message: digest 8 + kind 1 + rect 8, then for
// RAW codec 1 + flags 1 + len 4 + data, or for BITMAP fg 4 + bg 4 +
// flags 1 + bitmap geometry 4 + bits.
func (m *CacheStore) PayloadSize() int {
	if m.Kind == CacheKindBitmap {
		return 30 + len(m.Bits)
	}
	return 23 + len(m.Data)
}

func (m *CacheStore) appendPayload(dst []byte) []byte {
	return append(m.appendPayloadMeta(dst), m.payloadSlab()...)
}

func (m *CacheStore) appendPayloadMeta(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, m.Digest)
	dst = append(dst, m.Kind)
	dst = appendRect(dst, m.Rect)
	if m.Kind == CacheKindBitmap {
		dst = binary.BigEndian.AppendUint32(dst, uint32(m.Fg))
		dst = binary.BigEndian.AppendUint32(dst, uint32(m.Bg))
		var flags byte
		if m.Transparent {
			flags = 1
		}
		dst = append(dst, flags)
		dst = binary.BigEndian.AppendUint16(dst, uint16(m.BitW))
		return binary.BigEndian.AppendUint16(dst, uint16(m.BitH))
	}
	dst = append(dst, byte(m.Codec))
	var flags byte
	if m.Blend {
		flags = 1
	}
	dst = append(dst, flags)
	return binary.BigEndian.AppendUint32(dst, uint32(len(m.Data)))
}

func (m *CacheStore) payloadSlab() []byte {
	if m.Kind == CacheKindBitmap {
		return m.Bits
	}
	return m.Data
}

func decodeCacheStore(d *decoder) (*CacheStore, error) {
	m := &CacheStore{}
	m.Digest = d.u64()
	m.Kind = d.u8()
	m.Rect = d.rect()
	switch m.Kind {
	case CacheKindRaw:
		m.Codec = compress.Codec(d.u8())
		m.Blend = d.u8()&1 != 0
		n := int(d.u32())
		m.Data = d.bytes(n)
	case CacheKindBitmap:
		m.Fg = pixel.ARGB(d.u32())
		m.Bg = pixel.ARGB(d.u32())
		m.Transparent = d.u8()&1 != 0
		m.BitW = int(d.u16())
		m.BitH = int(d.u16())
		stride := (m.BitW + 7) / 8
		m.Bits = d.bytes(stride * m.BitH)
	default:
		if !d.err {
			return nil, ErrCorrupt
		}
	}
	return m, d.check()
}

// CachePaint replays a cached payload at Rect: the whole reason the
// cache exists. The stored entry carries its own apply semantics (kind,
// colors, blend), so the reference is just digest + destination — 16
// payload bytes, 21 framed, against kilobytes of pixels. The paint rect
// may differ in position from the rect the entry was stored at, but
// never in size: the digest covers the content dimensions. An unknown
// digest (desync) paints nothing and answers with CacheMiss.
type CachePaint struct {
	Digest uint64
	Rect   geom.Rect
}

// Type implements Message.
func (m *CachePaint) Type() Type { return TCachePaint }

// PayloadSize implements Message: digest 8 + rect 8.
func (m *CachePaint) PayloadSize() int { return 16 }

func (m *CachePaint) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, m.Digest)
	return appendRect(dst, m.Rect)
}

func decodeCachePaint(d *decoder) (*CachePaint, error) {
	m := &CachePaint{}
	m.Digest = d.u64()
	m.Rect = d.rect()
	return m, d.check()
}

// CacheMiss is the client's desync report: a CacheStore failed digest
// verification (corruption) or a CachePaint referenced a digest the
// client does not hold. The server drops the digest from its model of
// this client and repaints Rect from the true framebuffer with plain RAW —
// the audit-repair path — so both sides reconverge without tearing the
// session down.
type CacheMiss struct {
	Digest uint64
	Rect   geom.Rect
}

// Type implements Message.
func (m *CacheMiss) Type() Type { return TCacheMiss }

// PayloadSize implements Message: digest 8 + rect 8.
func (m *CacheMiss) PayloadSize() int { return 16 }

func (m *CacheMiss) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, m.Digest)
	return appendRect(dst, m.Rect)
}

func decodeCacheMiss(d *decoder) (*CacheMiss, error) {
	m := &CacheMiss{}
	m.Digest = d.u64()
	m.Rect = d.rect()
	return m, d.check()
}
