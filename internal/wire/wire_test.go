package wire

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"thinc/internal/compress"
	"thinc/internal/geom"
	"thinc/internal/pixel"
)

// sampleMessages returns one instance of every message type.
func sampleMessages() []Message {
	pix := make([]pixel.ARGB, 12)
	for i := range pix {
		pix[i] = pixel.RGB(uint8(i), uint8(i*2), uint8(i*3))
	}
	raw, err := NewRaw(geom.XYWH(10, 20, 4, 3), pix, 4, compress.CodecNone)
	if err != nil {
		panic(err)
	}
	return []Message{
		raw,
		&Copy{Src: geom.XYWH(0, 16, 1024, 752), Dst: geom.Point{X: 0, Y: 0}},
		&SFill{Rect: geom.XYWH(5, 5, 100, 50), Color: pixel.PackARGB(200, 1, 2, 3)},
		&PFill{Rect: geom.XYWH(0, 0, 64, 64), TileW: 2, TileH: 1,
			Tile: []pixel.ARGB{pixel.RGB(9, 9, 9), pixel.RGB(8, 8, 8)}},
		&Bitmap{Rect: geom.XYWH(3, 3, 9, 2), Fg: pixel.RGB(255, 0, 0),
			Bg: pixel.RGB(0, 0, 255), Transparent: true, BitW: 9, BitH: 2,
			Bits: []byte{0xa5, 0x80, 0x5a, 0x00}},
		&VideoInit{Stream: 7, Format: pixel.FormatYV12, SrcW: 352, SrcH: 240,
			Dst: geom.XYWH(0, 0, 1024, 768)},
		&VideoFrame{Stream: 7, Seq: 42, PTS: 1_000_000, W: 2, H: 1, Data: []byte{1, 2, 3, 4}},
		&VideoMove{Stream: 7, Dst: geom.XYWH(100, 100, 352, 240)},
		&VideoEnd{Stream: 7},
		&AudioData{PTS: 999, Data: []byte{5, 6, 7}},
		&ServerInit{Ver: ProtoVersion, W: 1024, H: 768, Format: pixel.FormatARGB32},
		&ClientInit{ViewW: 320, ViewH: 240, Name: "pda"},
		&Resize{ViewW: 640, ViewH: 480},
		&Input{Kind: InputMouseButton, X: 512, Y: 384, Code: 1, Press: true, TimeUS: 123456},
		&AuthChallenge{Nonce: []byte("nonce-16-bytes!!")},
		&AuthResponse{User: "ricardo", Proof: []byte{0xde, 0xad}},
		&AuthResult{OK: false, Reason: "bad password"},
		&UpdateRequest{Incremental: true},
		&CursorSet{HotX: 2, HotY: 3, W: 2, H: 2,
			Pix: []pixel.ARGB{1, 2, 3, 4}},
		&CursorMove{X: 100, Y: 200},
		&Ping{Seq: 3, TimeUS: 777},
		&Pong{Seq: 3, TimeUS: 777},
		&SessionTicket{Ticket: []byte("ticket-0123456789abcdef"), CacheEpoch: 5},
		&Reattach{Ticket: []byte("ticket-0123456789abcdef"),
			ViewW: 320, ViewH: 240, Name: "pda", CacheEpoch: 5},
		&AttachBusy{RetryAfterMS: 250},
		&DegradeNotice{Rung: 2, Cause: CauseBacklog,
			BacklogBytes: 1 << 20, EstBps: 3 << 20},
		&AuditProbe{Seq: 11, Tile: 64, Start: 8, Count: 4},
		&AuditReply{Seq: 11, Start: 8, W: 1024, H: 768, Count: 2,
			Digests: []uint64{0x0123456789abcdef, 0xfedcba9876543210}},
		&TimeMark{Epoch: 42, TimeUS: 123456789},
		&MarkAck{Epoch: 42, TimeUS: 123456789, ApplyUS: 350},
		&CacheStore{Digest: 0x1122334455667788, Kind: CacheKindRaw,
			Rect: geom.XYWH(10, 20, 4, 3), Codec: compress.CodecNone,
			Data: append([]byte(nil), raw.Data...)},
		&CachePaint{Digest: 0x1122334455667788, Rect: geom.XYWH(40, 60, 4, 3)},
		&CacheMiss{Digest: 0x1122334455667788, Rect: geom.XYWH(40, 60, 4, 3)},
	}
}

func TestRoundTripAllMessages(t *testing.T) {
	for _, m := range sampleMessages() {
		buf, err := Marshal(m)
		if err != nil {
			t.Fatalf("%v: marshal: %v", m.Type(), err)
		}
		got, err := ReadMessage(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("%v: read: %v", m.Type(), err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%v: round trip mismatch:\n got %#v\nwant %#v", m.Type(), got, m)
		}
	}
}

func TestWireSizeMatchesMarshal(t *testing.T) {
	for _, m := range sampleMessages() {
		buf, err := Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if WireSize(m) != len(buf) {
			t.Errorf("%v: WireSize %d != marshaled %d", m.Type(), WireSize(m), len(buf))
		}
	}
}

func TestStreamOfMessages(t *testing.T) {
	// Many messages over one stream decode in order.
	var buf bytes.Buffer
	msgs := sampleMessages()
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if got.Type() != want.Type() {
			t.Fatalf("message %d: type %v, want %v", i, got.Type(), want.Type())
		}
	}
	if _, err := ReadMessage(&buf); err != io.EOF {
		t.Errorf("expected EOF after stream, got %v", err)
	}
}

func TestTruncatedMessages(t *testing.T) {
	for _, m := range sampleMessages() {
		buf, _ := Marshal(m)
		for _, cut := range []int{1, HeaderSize, len(buf) - 1} {
			if cut >= len(buf) {
				continue
			}
			if _, err := ReadMessage(bytes.NewReader(buf[:cut])); err == nil {
				t.Errorf("%v: truncated at %d decoded without error", m.Type(), cut)
			}
		}
	}
}

func TestTrailingGarbageRejected(t *testing.T) {
	m := &SFill{Rect: geom.XYWH(0, 0, 1, 1), Color: 1}
	buf, _ := Marshal(m)
	// Extend the payload with garbage and fix up the length.
	buf = append(buf, 0xff)
	buf[4]++ // payload length low byte
	if _, err := ReadMessage(bytes.NewReader(buf)); err == nil {
		t.Error("trailing garbage decoded without error")
	}
}

func TestUnknownTypeRejected(t *testing.T) {
	buf := []byte{0xee, 0, 0, 0, 0}
	if _, err := ReadMessage(bytes.NewReader(buf)); err == nil {
		t.Error("unknown type decoded without error")
	}
}

func TestOversizePayloadRejected(t *testing.T) {
	hdr := []byte{byte(TRaw), 0xff, 0xff, 0xff, 0xff}
	if _, err := ReadMessage(bytes.NewReader(hdr)); err != ErrTooLarge {
		t.Error("oversize payload header not rejected")
	}
}

func TestPFillRejectsInsaneTile(t *testing.T) {
	// Hand-craft a PFill with a zero-sized tile.
	var payload []byte
	payload = appendRect(payload, geom.XYWH(0, 0, 4, 4))
	payload = append(payload, 0, 0, 0, 0) // tile 0x0
	if _, err := Unmarshal(TPFill, payload); err == nil {
		t.Error("0x0 tile decoded without error")
	}
}

func TestRawPixelsRoundTrip(t *testing.T) {
	r := geom.XYWH(0, 0, 6, 2)
	pix := make([]pixel.ARGB, 12)
	for i := range pix {
		pix[i] = pixel.PackARGB(uint8(200+i), uint8(i), uint8(i*7), uint8(i*13))
	}
	for _, codec := range []compress.Codec{compress.CodecNone, compress.CodecRLE, compress.CodecPNG} {
		m, err := NewRaw(r, pix, 6, codec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.Pixels()
		if err != nil {
			t.Fatal(err)
		}
		for i := range pix {
			if got[i] != pix[i] {
				t.Fatalf("codec %v pixel %d mismatch", codec, i)
			}
		}
	}
}

func TestFuzzDecodeNoPanic(t *testing.T) {
	// Random bytes must never panic the decoder.
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		payload := make([]byte, rnd.Intn(64))
		rnd.Read(payload)
		typ := Type(rnd.Intn(int(TReattach) + 4))
		_, _ = Unmarshal(typ, payload) // errors fine, panics not
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDisplayCommandSizes(t *testing.T) {
	// Sanity-check the wire economy the protocol is designed around:
	// an SFILL covering the whole screen is tens of bytes, not megabytes.
	sfill := &SFill{Rect: geom.XYWH(0, 0, 1024, 768), Color: pixel.RGB(255, 255, 255)}
	if s := WireSize(sfill); s > 32 {
		t.Errorf("SFILL costs %d bytes", s)
	}
	cp := &Copy{Src: geom.XYWH(0, 0, 1024, 768), Dst: geom.Point{}}
	if s := WireSize(cp); s > 32 {
		t.Errorf("COPY costs %d bytes", s)
	}
}

func BenchmarkMarshalSFill(b *testing.B) {
	m := &SFill{Rect: geom.XYWH(0, 0, 100, 100), Color: 0xffffffff}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRoundTripRaw64x64(b *testing.B) {
	pix := make([]pixel.ARGB, 64*64)
	for i := range pix {
		pix[i] = pixel.RGB(uint8(i), uint8(i>>4), uint8(i>>8))
	}
	m, err := NewRaw(geom.XYWH(0, 0, 64, 64), pix, 64, compress.CodecNone)
	if err != nil {
		b.Fatal(err)
	}
	buf, _ := Marshal(m)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadMessage(bytes.NewReader(buf)); err != nil {
			b.Fatal(err)
		}
	}
}
