// Package resample implements the server-side image scaling THINC uses
// for heterogeneous displays (§6): a simplified version of Fant's
// non-aliasing spatial transform, a separable area-weighted resampler
// that produces anti-aliased results at very low cost, plus a
// nearest-neighbor scaler that models the cheap client-side resize of
// systems like ICA and GoToMyPC.
package resample

import "thinc/internal/pixel"

// Fant resamples a sw x sh ARGB image to dw x dh using a separable
// area-weighted (box) filter in the style of Fant's algorithm: each
// output pixel integrates the exact span of input pixels it covers, so
// downscaling is anti-aliased and upscaling is smooth. src is row-major
// with the given stride (in pixels).
//
// The sliver weights of each pass depend only on the output index
// along that axis, so they are computed once per call and reused for
// every row (horizontal) and every column (vertical) — roughly halving
// the per-pixel float work versus recomputing them in the inner loop.
func Fant(src []pixel.ARGB, stride, sw, sh, dw, dh int) []pixel.ARGB {
	if sw <= 0 || sh <= 0 || dw <= 0 || dh <= 0 {
		return nil
	}
	// Horizontal pass into an intermediate dw x sh accumulator held as
	// per-channel float64; the image sizes THINC resizes (≤ screen size)
	// keep this cheap.
	mid := make([]float64, dw*sh*4)
	xs := makeSliverSpans(sw, dw)
	for y := 0; y < sh; y++ {
		row := src[y*stride : y*stride+sw]
		for dx := 0; dx < dw; dx++ {
			var a, r, g, b float64
			ix := xs.start[dx]
			for i, w := range xs.weights(dx) {
				p := row[ix+i]
				a += float64(p.A()) * w
				r += float64(p.R()) * w
				g += float64(p.G()) * w
				b += float64(p.B()) * w
			}
			if wsum := xs.sum[dx]; wsum > 0 {
				a /= wsum
				r /= wsum
				g /= wsum
				b /= wsum
			}
			o := (y*dw + dx) * 4
			mid[o], mid[o+1], mid[o+2], mid[o+3] = a, r, g, b
		}
	}
	// Vertical pass.
	out := make([]pixel.ARGB, dw*dh)
	ys := makeSliverSpans(sh, dh)
	for dy := 0; dy < dh; dy++ {
		weights := ys.weights(dy)
		iy0 := ys.start[dy]
		wsum := ys.sum[dy]
		for dx := 0; dx < dw; dx++ {
			var a, r, g, b float64
			for i, w := range weights {
				o := ((iy0+i)*dw + dx) * 4
				a += mid[o] * w
				r += mid[o+1] * w
				g += mid[o+2] * w
				b += mid[o+3] * w
			}
			if wsum > 0 {
				a /= wsum
				r /= wsum
				g /= wsum
				b /= wsum
			}
			out[dy*dw+dx] = pixel.PackARGB(round8(a), round8(r), round8(g), round8(b))
		}
	}
	return out
}

// sliverSpans is the precomputed coverage table for one axis of an
// s -> d resize: for output cell k, the first covered input cell, the
// positive sliver weights of its span (contiguous by construction),
// and their sum.
type sliverSpans struct {
	start []int     // first input cell with positive weight
	off   []int     // weight-slice offsets, len d+1
	w     []float64 // concatenated per-cell weights
	sum   []float64 // per-cell weight sums
}

// weights returns output cell k's weight slice.
func (s *sliverSpans) weights(k int) []float64 { return s.w[s.off[k]:s.off[k+1]] }

// makeSliverSpans integrates every output cell's span [k*s/d, (k+1)*s/d)
// against the input grid, exactly as the inner loops previously did per
// pixel; accumulation order is preserved so results are bit-identical.
func makeSliverSpans(s, d int) *sliverSpans {
	sp := &sliverSpans{
		start: make([]int, d),
		off:   make([]int, d+1),
		w:     make([]float64, 0, d*2),
		sum:   make([]float64, d),
	}
	scale := float64(s) / float64(d)
	for k := 0; k < d; k++ {
		x0 := float64(k) * scale
		x1 := float64(k+1) * scale
		ix0, ix1 := int(x0), int(x1)
		start := -1
		var wsum float64
		for ix := ix0; ix <= ix1 && ix < s; ix++ {
			w := sliverWeight(float64(ix), x0, x1)
			if w <= 0 {
				continue
			}
			if start < 0 {
				start = ix
			}
			sp.w = append(sp.w, w)
			wsum += w
		}
		sp.start[k] = start
		sp.sum[k] = wsum
		sp.off[k+1] = len(sp.w)
	}
	return sp
}

// sliverWeight returns how much of input cell [i, i+1) the span [x0, x1)
// covers.
func sliverWeight(i, x0, x1 float64) float64 {
	lo := i
	if x0 > lo {
		lo = x0
	}
	hi := i + 1
	if x1 < hi {
		hi = x1
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

func round8(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return uint8(v + 0.5)
}

// Nearest resamples with nearest-neighbor sampling: fast, but aliased —
// the quality class of client-side resize in ICA/GoToMyPC that §8
// contrasts with THINC's server-side Fant scaling.
func Nearest(src []pixel.ARGB, stride, sw, sh, dw, dh int) []pixel.ARGB {
	if sw <= 0 || sh <= 0 || dw <= 0 || dh <= 0 {
		return nil
	}
	out := make([]pixel.ARGB, dw*dh)
	for y := 0; y < dh; y++ {
		sy := y * sh / dh
		for x := 0; x < dw; x++ {
			out[y*dw+x] = src[sy*stride+x*sw/dw]
		}
	}
	return out
}

// ScaleRect maps a source-space rectangle to destination space for a
// sw x sh -> dw x dh resize, expanding to cover every destination pixel
// the source rectangle touches.
func ScaleRect(x0, y0, x1, y1, sw, sh, dw, dh int) (dx0, dy0, dx1, dy1 int) {
	dx0 = x0 * dw / sw
	dy0 = y0 * dh / sh
	dx1 = (x1*dw + sw - 1) / sw
	dy1 = (y1*dh + sh - 1) / sh
	if dx1 > dw {
		dx1 = dw
	}
	if dy1 > dh {
		dy1 = dh
	}
	return
}
