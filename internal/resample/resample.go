// Package resample implements the server-side image scaling THINC uses
// for heterogeneous displays (§6): a simplified version of Fant's
// non-aliasing spatial transform, a separable area-weighted resampler
// that produces anti-aliased results at very low cost, plus a
// nearest-neighbor scaler that models the cheap client-side resize of
// systems like ICA and GoToMyPC.
package resample

import "thinc/internal/pixel"

// Fant resamples a sw x sh ARGB image to dw x dh using a separable
// area-weighted (box) filter in the style of Fant's algorithm: each
// output pixel integrates the exact span of input pixels it covers, so
// downscaling is anti-aliased and upscaling is smooth. src is row-major
// with the given stride (in pixels).
func Fant(src []pixel.ARGB, stride, sw, sh, dw, dh int) []pixel.ARGB {
	if sw <= 0 || sh <= 0 || dw <= 0 || dh <= 0 {
		return nil
	}
	// Horizontal pass into an intermediate dw x sh accumulator held as
	// per-channel float64; the image sizes THINC resizes (≤ screen size)
	// keep this cheap.
	mid := make([]float64, dw*sh*4)
	xscale := float64(sw) / float64(dw)
	for y := 0; y < sh; y++ {
		row := src[y*stride : y*stride+sw]
		for dx := 0; dx < dw; dx++ {
			x0 := float64(dx) * xscale
			x1 := float64(dx+1) * xscale
			a, r, g, b := boxSampleRow(row, x0, x1)
			o := (y*dw + dx) * 4
			mid[o], mid[o+1], mid[o+2], mid[o+3] = a, r, g, b
		}
	}
	// Vertical pass.
	out := make([]pixel.ARGB, dw*dh)
	yscale := float64(sh) / float64(dh)
	for dy := 0; dy < dh; dy++ {
		y0 := float64(dy) * yscale
		y1 := float64(dy+1) * yscale
		for dx := 0; dx < dw; dx++ {
			var a, r, g, b, wsum float64
			iy0, iy1 := int(y0), int(y1)
			for iy := iy0; iy <= iy1 && iy < sh; iy++ {
				w := sliverWeight(float64(iy), y0, y1)
				if w <= 0 {
					continue
				}
				o := (iy*dw + dx) * 4
				a += mid[o] * w
				r += mid[o+1] * w
				g += mid[o+2] * w
				b += mid[o+3] * w
				wsum += w
			}
			if wsum > 0 {
				a /= wsum
				r /= wsum
				g /= wsum
				b /= wsum
			}
			out[dy*dw+dx] = pixel.PackARGB(round8(a), round8(r), round8(g), round8(b))
		}
	}
	return out
}

// boxSampleRow integrates the span [x0, x1) of the row with exact
// fractional coverage at the span edges.
func boxSampleRow(row []pixel.ARGB, x0, x1 float64) (a, r, g, b float64) {
	var wsum float64
	ix0, ix1 := int(x0), int(x1)
	for ix := ix0; ix <= ix1 && ix < len(row); ix++ {
		w := sliverWeight(float64(ix), x0, x1)
		if w <= 0 {
			continue
		}
		p := row[ix]
		a += float64(p.A()) * w
		r += float64(p.R()) * w
		g += float64(p.G()) * w
		b += float64(p.B()) * w
		wsum += w
	}
	if wsum > 0 {
		a /= wsum
		r /= wsum
		g /= wsum
		b /= wsum
	}
	return
}

// sliverWeight returns how much of input cell [i, i+1) the span [x0, x1)
// covers.
func sliverWeight(i, x0, x1 float64) float64 {
	lo := i
	if x0 > lo {
		lo = x0
	}
	hi := i + 1
	if x1 < hi {
		hi = x1
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

func round8(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return uint8(v + 0.5)
}

// Nearest resamples with nearest-neighbor sampling: fast, but aliased —
// the quality class of client-side resize in ICA/GoToMyPC that §8
// contrasts with THINC's server-side Fant scaling.
func Nearest(src []pixel.ARGB, stride, sw, sh, dw, dh int) []pixel.ARGB {
	if sw <= 0 || sh <= 0 || dw <= 0 || dh <= 0 {
		return nil
	}
	out := make([]pixel.ARGB, dw*dh)
	for y := 0; y < dh; y++ {
		sy := y * sh / dh
		for x := 0; x < dw; x++ {
			out[y*dw+x] = src[sy*stride+x*sw/dw]
		}
	}
	return out
}

// ScaleRect maps a source-space rectangle to destination space for a
// sw x sh -> dw x dh resize, expanding to cover every destination pixel
// the source rectangle touches.
func ScaleRect(x0, y0, x1, y1, sw, sh, dw, dh int) (dx0, dy0, dx1, dy1 int) {
	dx0 = x0 * dw / sw
	dy0 = y0 * dh / sh
	dx1 = (x1*dw + sw - 1) / sw
	dy1 = (y1*dh + sh - 1) / sh
	if dx1 > dw {
		dx1 = dw
	}
	if dy1 > dh {
		dy1 = dh
	}
	return
}
