package resample

import (
	"testing"

	"thinc/internal/pixel"
)

func solid(w, h int, c pixel.ARGB) []pixel.ARGB {
	pix := make([]pixel.ARGB, w*h)
	for i := range pix {
		pix[i] = c
	}
	return pix
}

func TestFantSolidInvariant(t *testing.T) {
	// Resampling a solid image at any scale yields the same solid color.
	c := pixel.RGB(37, 101, 220)
	src := solid(17, 13, c)
	for _, sz := range [][2]int{{5, 3}, {17, 13}, {40, 29}, {1, 1}} {
		out := Fant(src, 17, 17, 13, sz[0], sz[1])
		if len(out) != sz[0]*sz[1] {
			t.Fatalf("size %v: got %d pixels", sz, len(out))
		}
		for i, p := range out {
			if p != c {
				t.Fatalf("size %v pixel %d = %v, want %v", sz, i, p, c)
			}
		}
	}
}

func TestFantIdentity(t *testing.T) {
	// Same-size resample must be exact.
	src := make([]pixel.ARGB, 8*6)
	for i := range src {
		src[i] = pixel.RGB(uint8(i*3), uint8(i*5), uint8(i*7))
	}
	out := Fant(src, 8, 8, 6, 8, 6)
	for i := range src {
		if out[i] != src[i] {
			t.Fatalf("identity resample changed pixel %d: %v != %v", i, out[i], src[i])
		}
	}
}

func TestFantAntiAliasesCheckerboard(t *testing.T) {
	// Downscaling a 1px checkerboard by 2 must average to mid-gray —
	// the anti-aliasing property nearest-neighbor lacks.
	const w, h = 16, 16
	src := make([]pixel.ARGB, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if (x+y)%2 == 0 {
				src[y*w+x] = pixel.RGB(255, 255, 255)
			} else {
				src[y*w+x] = pixel.RGB(0, 0, 0)
			}
		}
	}
	out := Fant(src, w, w, h, w/2, h/2)
	for i, p := range out {
		if p.R() < 120 || p.R() > 136 {
			t.Fatalf("pixel %d R=%d, want ~128 (anti-aliased)", i, p.R())
		}
	}
	// Nearest, by contrast, picks pure black or white.
	nout := Nearest(src, w, w, h, w/2, h/2)
	for i, p := range nout {
		if p.R() != 0 && p.R() != 255 {
			t.Fatalf("nearest pixel %d R=%d, want 0 or 255 (aliased)", i, p.R())
		}
	}
}

func TestFantEnergyConservation(t *testing.T) {
	// Mean brightness should be preserved by downscale (box filter).
	const w, h = 20, 20
	src := make([]pixel.ARGB, w*h)
	var sum int
	for i := range src {
		v := uint8((i * 13) % 256)
		src[i] = pixel.RGB(v, v, v)
		sum += int(v)
	}
	mean := float64(sum) / float64(w*h)
	out := Fant(src, w, w, h, 7, 7)
	var osum int
	for _, p := range out {
		osum += int(p.R())
	}
	omean := float64(osum) / float64(len(out))
	if d := omean - mean; d < -3 || d > 3 {
		t.Errorf("mean drifted: src %.1f dst %.1f", mean, omean)
	}
}

func TestFantDegenerate(t *testing.T) {
	if Fant(nil, 0, 0, 0, 4, 4) != nil {
		t.Error("empty source should yield nil")
	}
	if Fant(solid(2, 2, 0), 2, 2, 2, 0, 5) != nil {
		t.Error("empty destination should yield nil")
	}
	if Nearest(nil, 0, 0, 0, 4, 4) != nil {
		t.Error("nearest empty source should yield nil")
	}
}

func TestNearestExactPick(t *testing.T) {
	src := []pixel.ARGB{
		pixel.RGB(1, 0, 0), pixel.RGB(2, 0, 0),
		pixel.RGB(3, 0, 0), pixel.RGB(4, 0, 0),
	}
	out := Nearest(src, 2, 2, 2, 4, 4)
	if out[0] != src[0] || out[3] != src[1] || out[12] != src[2] || out[15] != src[3] {
		t.Errorf("nearest upscale picked wrong sources: %v", out)
	}
}

func TestScaleRect(t *testing.T) {
	// Full frame maps to full frame.
	x0, y0, x1, y1 := ScaleRect(0, 0, 1024, 768, 1024, 768, 320, 240)
	if x0 != 0 || y0 != 0 || x1 != 320 || y1 != 240 {
		t.Errorf("full-frame map = %d,%d,%d,%d", x0, y0, x1, y1)
	}
	// A 1-pixel source rect still covers at least one destination pixel.
	x0, y0, x1, y1 = ScaleRect(511, 383, 512, 384, 1024, 768, 320, 240)
	if x1-x0 < 1 || y1-y0 < 1 {
		t.Errorf("tiny rect vanished: %d,%d,%d,%d", x0, y0, x1, y1)
	}
	// Destination is clamped to the viewport.
	_, _, x1, y1 = ScaleRect(1000, 700, 1024, 768, 1024, 768, 320, 240)
	if x1 > 320 || y1 > 240 {
		t.Errorf("rect exceeds viewport: %d,%d", x1, y1)
	}
}

func BenchmarkFantDownscale(b *testing.B) {
	src := solid(1024, 768, pixel.RGB(10, 20, 30))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Fant(src, 1024, 1024, 768, 320, 240)
	}
}

func BenchmarkNearestDownscale(b *testing.B) {
	src := solid(1024, 768, pixel.RGB(10, 20, 30))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Nearest(src, 1024, 1024, 768, 320, 240)
	}
}
