package auth

import (
	"bytes"
	"testing"
)

func gate() *Authenticator {
	acc := NewAccounts()
	acc.Add("ricardo", "hunter2")
	return NewAuthenticator("ricardo", acc)
}

func TestOwnerAuthenticates(t *testing.T) {
	g := gate()
	nonce, err := g.NewChallenge()
	if err != nil {
		t.Fatal(err)
	}
	if len(nonce) != NonceSize {
		t.Fatalf("nonce size %d", len(nonce))
	}
	if err := g.Verify("ricardo", nonce, Proof("hunter2", nonce)); err != nil {
		t.Fatalf("owner rejected: %v", err)
	}
}

func TestWrongPasswordRejected(t *testing.T) {
	g := gate()
	nonce, _ := g.NewChallenge()
	if err := g.Verify("ricardo", nonce, Proof("wrong", nonce)); err != ErrBadProof {
		t.Fatalf("got %v, want ErrBadProof", err)
	}
}

func TestUnknownUserRejected(t *testing.T) {
	g := gate()
	nonce, _ := g.NewChallenge()
	// Not the owner, no session password: cannot join at all.
	if err := g.Verify("mallory", nonce, Proof("x", nonce)); err != ErrNotOwner {
		t.Fatalf("got %v, want ErrNotOwner", err)
	}
	// Even a real account that is not the session owner is refused.
	acc := NewAccounts()
	acc.Add("ricardo", "a")
	acc.Add("leonard", "b")
	g2 := NewAuthenticator("ricardo", acc)
	nonce2, _ := g2.NewChallenge()
	if err := g2.Verify("leonard", nonce2, Proof("b", nonce2)); err != ErrNotOwner {
		t.Fatalf("non-owner accepted: %v", err)
	}
}

func TestSharedSessionPassword(t *testing.T) {
	g := gate()
	g.SetSessionPassword("collab")
	nonce, _ := g.NewChallenge()
	if err := g.Verify("guest", nonce, Proof("collab", nonce)); err != nil {
		t.Fatalf("peer with session password rejected: %v", err)
	}
	if err := g.Verify("guest", nonce, Proof("not-collab", nonce)); err != ErrBadProof {
		t.Fatalf("wrong session password: %v", err)
	}
	g.SetSessionPassword("")
	if err := g.Verify("guest", nonce, Proof("collab", nonce)); err != ErrNotOwner {
		t.Fatalf("disabled sharing still admits peers: %v", err)
	}
}

func TestProofDependsOnNonce(t *testing.T) {
	p1 := Proof("secret", []byte("nonce-1"))
	p2 := Proof("secret", []byte("nonce-2"))
	if bytes.Equal(p1, p2) {
		t.Fatal("proof must vary with nonce (replay protection)")
	}
}

func TestChallengesUnique(t *testing.T) {
	g := gate()
	a, _ := g.NewChallenge()
	b, _ := g.NewChallenge()
	if bytes.Equal(a, b) {
		t.Fatal("challenges must be unique")
	}
}

func TestSessionKeyDerivation(t *testing.T) {
	n := []byte("0123456789abcdef")
	k1 := SessionKey("s1", n)
	k2 := SessionKey("s2", n)
	if len(k1) != 16 || bytes.Equal(k1, k2) {
		t.Fatal("session keys must be 128-bit and secret-dependent")
	}
	if bytes.Equal(SessionKey("s1", []byte("other-nonce-16by")), k1) {
		t.Fatal("session keys must be nonce-dependent")
	}
}

func TestSecretFor(t *testing.T) {
	g := gate()
	if s, ok := g.SecretFor("ricardo"); !ok || s != "hunter2" {
		t.Fatal("owner secret wrong")
	}
	if _, ok := g.SecretFor("guest"); ok {
		t.Fatal("peer without session password should have no secret")
	}
	g.SetSessionPassword("collab")
	if s, ok := g.SecretFor("guest"); !ok || s != "collab" {
		t.Fatal("peer secret should be the session password")
	}
}
