// Package auth implements THINC's authentication model (§7): a
// PAM-style pluggable verifier where a user must hold a valid account
// on the server and own the session being connected to, extended with
// per-session passwords so a host can invite peers into a shared
// screen session. The wire exchange is challenge/response: the server
// sends a nonce, the client proves knowledge of the secret without
// sending it.
package auth

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"sync"
)

// Errors returned by Verify.
var (
	ErrUnknownUser = errors.New("auth: unknown user")
	ErrBadProof    = errors.New("auth: bad credentials")
	ErrNotOwner    = errors.New("auth: user does not own this session")
)

// NonceSize is the challenge size in bytes.
const NonceSize = 16

// Module verifies a user's proof for a nonce — the pluggable step
// (PAM module analogue). Implementations must be safe for concurrent
// use.
type Module interface {
	Verify(user string, nonce, proof []byte) error
}

// Proof computes the response for a nonce and secret:
// HMAC-SHA256(secret, nonce). Used by clients.
func Proof(secret string, nonce []byte) []byte {
	m := hmac.New(sha256.New, []byte(secret))
	m.Write(nonce)
	return m.Sum(nil)
}

// SessionKey derives the RC4 transport key for an authenticated
// connection from the shared secret and the handshake nonce.
func SessionKey(secret string, nonce []byte) []byte {
	h := sha256.New()
	h.Write([]byte("thinc-session-key"))
	h.Write([]byte(secret))
	h.Write(nonce)
	return h.Sum(nil)[:16]
}

// Accounts is the account-database module: users and their secrets.
type Accounts struct {
	mu      sync.RWMutex
	secrets map[string]string
}

// NewAccounts returns an empty account database.
func NewAccounts() *Accounts {
	return &Accounts{secrets: make(map[string]string)}
}

// Add registers (or replaces) a user's secret.
func (a *Accounts) Add(user, secret string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.secrets[user] = secret
}

// Secret looks up a user's secret.
func (a *Accounts) Secret(user string) (string, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	s, ok := a.secrets[user]
	return s, ok
}

// Verify implements Module.
func (a *Accounts) Verify(user string, nonce, proof []byte) error {
	secret, ok := a.Secret(user)
	if !ok {
		return ErrUnknownUser
	}
	if !hmac.Equal(proof, Proof(secret, nonce)) {
		return ErrBadProof
	}
	return nil
}

// Authenticator gates session access: the owner authenticates through
// the account module; peers may join a shared session with the session
// password (§7).
type Authenticator struct {
	Owner    string
	Accounts Module

	mu          sync.RWMutex
	sessionPass string
}

// NewAuthenticator builds a session gate for owner backed by accounts.
func NewAuthenticator(owner string, accounts Module) *Authenticator {
	return &Authenticator{Owner: owner, Accounts: accounts}
}

// SetSessionPassword enables shared-session access; empty disables it.
func (g *Authenticator) SetSessionPassword(pass string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.sessionPass = pass
}

// NewChallenge returns a fresh random nonce.
func (g *Authenticator) NewChallenge() ([]byte, error) {
	nonce := make([]byte, NonceSize)
	if _, err := rand.Read(nonce); err != nil {
		return nil, err
	}
	return nonce, nil
}

// Verify checks a connection attempt. The owner must pass account
// verification; any other user may join only with the session password
// (their proof is computed over the session password).
func (g *Authenticator) Verify(user string, nonce, proof []byte) error {
	if user == g.Owner {
		return g.Accounts.Verify(user, nonce, proof)
	}
	g.mu.RLock()
	pass := g.sessionPass
	g.mu.RUnlock()
	if pass == "" {
		return ErrNotOwner
	}
	if !hmac.Equal(proof, Proof(pass, nonce)) {
		return ErrBadProof
	}
	return nil
}

// SecretFor returns the secret the given user would key the transport
// with: the account secret for the owner, the session password for
// peers. ok is false when the user cannot connect at all.
func (g *Authenticator) SecretFor(user string) (string, bool) {
	if user == g.Owner {
		if acc, okA := g.Accounts.(*Accounts); okA {
			return acc.Secret(user)
		}
		return "", false
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.sessionPass == "" {
		return "", false
	}
	return g.sessionPass, true
}
