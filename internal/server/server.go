// Package server is the runnable THINC server (§7): it owns a window
// system with the THINC virtual display driver and the virtual audio
// driver, and serves display sessions to remote clients over real
// network connections — PAM-style authentication, RC4-encrypted
// transport, server-push delivery with non-blocking flushing, input
// injection, and dynamic client resizing.
//
// The transport layer is resilient by construction: every read and
// write carries a deadline, the server heartbeats each client and
// reaps peers that stop responding, per-client command backlogs are
// bounded (a slow client is resynced with a fresh snapshot instead of
// an ever-growing queue), and a dropped client may reattach to its
// session with the opaque ticket issued at init, receiving a
// full-screen RAW resync.
package server

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"thinc/internal/audio"
	"thinc/internal/auth"
	"thinc/internal/cipher"
	"thinc/internal/core"
	"thinc/internal/geom"
	"thinc/internal/logx"
	"thinc/internal/overload"
	"thinc/internal/shard"
	"thinc/internal/wire"
	"thinc/internal/xserver"
)

// slog is the package's component logger; session-scoped records add
// user (and where known, session) attributes at the call site.
var slogger = logx.Component("server")

// Options configures a Host.
type Options struct {
	// Core configures the translation layer (compression, ablations).
	Core core.Options
	// FlushInterval paces the delivery loop; zero means 5ms.
	FlushInterval time.Duration
	// FlushBudget bounds bytes per flush (socket-buffer model); zero
	// means 256 KiB.
	FlushBudget int
	// HeartbeatInterval paces server→client Pings; zero means 1s.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is how long a connection may be silent (no
	// message of any kind read from the client) before it is declared
	// dead and torn down; zero means 3x HeartbeatInterval.
	HeartbeatTimeout time.Duration
	// WriteTimeout bounds each write batch to the client; a peer that
	// stops draining its socket is torn down when the deadline trips.
	// Zero means HeartbeatTimeout.
	WriteTimeout time.Duration
	// DetachGrace is how long a disconnected session's client state is
	// retained for ticket reattach; zero means 30s. Negative disables
	// retention entirely.
	DetachGrace time.Duration
	// MaxBacklogBytes bounds the per-client command backlog. When a
	// client falls further behind than this, its queued commands are
	// discarded and replaced by a full-screen resync (the slow-client
	// policy). Zero means 32 MiB; it must comfortably exceed one
	// uncompressed full-screen RAW. Negative disables the bound.
	MaxBacklogBytes int
	// OnInput, when set, receives user input events after they are
	// injected into the display (button dispatch for applications).
	OnInput func(ev *wire.Input)
	// Overload tunes the per-client degradation controller (see
	// overload.Config); the zero value takes that package's defaults.
	Overload overload.Config
	// DisableOverload turns the degradation ladder off. The slow-client
	// resync cliff (MaxBacklogBytes) still applies.
	DisableOverload bool
	// MaxViewers bounds concurrently attached viewer-role connections
	// (the broadcast fan-out); the owner connection is not counted.
	// Zero means 16; negative disables the bound.
	MaxViewers int

	// CacheKB caps the per-client payload cache (wire v6) in kilobytes.
	// Each handshake grants min(client request, CacheKB); the default 0
	// disables the cache entirely, keeping the wire byte-identical to a
	// pre-v6 server unless the deployment opts in.
	CacheKB int

	// ResyncAdmit bounds concurrently in-flight cold-reattach resyncs
	// (wire v7 storm admission): a reattach needing a full resync past
	// the budget is refused with AttachBusy and a jittered retry-after,
	// with its session left retained for the retry. Warm reattaches
	// bypass the gate. Zero means 8; negative disables admission
	// control.
	ResyncAdmit int
	// ResyncRetryAfter is the base retry delay a refused reattach is
	// told to wait (jittered to [0.5x, 1.5x]); zero means 250ms.
	ResyncRetryAfter time.Duration

	// AuditInterval paces the integrity-audit probes (wire v4). Each
	// tick the server asks one settled lossless client to digest a
	// sampled window of its framebuffer tiles and compares the answer
	// against the incrementally maintained server-side digests; zero
	// means 2s.
	AuditInterval time.Duration
	// AuditTimeout is how long a probe may go unanswered before it
	// counts as a miss; zero means 3x AuditInterval.
	AuditTimeout time.Duration
	// AuditSampleTiles is the size of the rotating probe window (and
	// the chunk size of an escalated full sweep); zero means 16.
	AuditSampleTiles int
	// AuditEscalateTiles: more mismatches than this in one sampled
	// window escalates to a full sweep of every tile; zero means 4.
	AuditEscalateTiles int
	// AuditResyncTiles: more total mismatches than this across a full
	// sweep abandons targeted repair for a full-screen resync; zero
	// means 8.
	AuditResyncTiles int
	// DisableAudit turns the integrity audit off entirely.
	DisableAudit bool

	// MarkInterval paces the end-to-end TimeMarks (wire v5): after a
	// flush that delivered commands, at most one mark per interval
	// rides the batch; zero means 25ms.
	MarkInterval time.Duration
	// MarkTimeout is how long a mark may go unacknowledged before it
	// counts as a miss (pre-v5 peers never answer); zero means 3s.
	MarkTimeout time.Duration
	// DisableE2E turns end-to-end mark tracing off entirely.
	DisableE2E bool

	// Sched switches the Host to the sharded, event-driven delivery
	// core: connection pumps run as shard.Tasks on the scheduler's
	// fixed worker pool instead of per-connection flush goroutines,
	// and heartbeat/audit/flush pacing rides its batched timer wheel
	// instead of per-connection tickers. An idle session then costs
	// zero goroutines (beyond the blocking reader a real net.Conn
	// requires — ServeEvent drops even that) and zero timer churn.
	// Nil keeps the classic goroutine-pair driver. Wire behavior is
	// identical either way; only the execution substrate changes.
	Sched *shard.Scheduler
}

func (o Options) withDefaults() Options {
	if o.FlushInterval <= 0 {
		o.FlushInterval = 5 * time.Millisecond
	}
	if o.FlushBudget <= 0 {
		o.FlushBudget = 256 << 10
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = time.Second
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 3 * o.HeartbeatInterval
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = o.HeartbeatTimeout
	}
	if o.DetachGrace == 0 {
		o.DetachGrace = 30 * time.Second
	}
	if o.MaxBacklogBytes == 0 {
		o.MaxBacklogBytes = 32 << 20
	}
	if o.MaxViewers == 0 {
		o.MaxViewers = 16
	}
	if o.ResyncAdmit == 0 {
		o.ResyncAdmit = 8
	}
	if o.ResyncRetryAfter <= 0 {
		o.ResyncRetryAfter = 250 * time.Millisecond
	}
	if o.AuditInterval <= 0 {
		o.AuditInterval = 2 * time.Second
	}
	if o.AuditTimeout <= 0 {
		o.AuditTimeout = 3 * o.AuditInterval
	}
	if o.AuditSampleTiles <= 0 {
		o.AuditSampleTiles = 16
	}
	if o.AuditEscalateTiles <= 0 {
		o.AuditEscalateTiles = 4
	}
	if o.AuditResyncTiles <= 0 {
		o.AuditResyncTiles = 8
	}
	if o.MarkInterval <= 0 {
		o.MarkInterval = 25 * time.Millisecond
	}
	if o.MarkTimeout <= 0 {
		o.MarkTimeout = 3 * time.Second
	}
	return o
}

// maxViewDim bounds handshake viewport geometry. The wire format
// carries u16, but nothing legitimate asks for a 40k-pixel-wide
// viewport; absurd values are rejected during the handshake rather
// than silently clamped into a surprise geometry.
const maxViewDim = 8192

// ResilienceStats counts session-lifecycle events (tests, monitoring).
type ResilienceStats struct {
	Attaches        int // fresh client attaches
	Reattaches      int // ticket reattaches into a retained session
	Reaps           int // connections torn down by heartbeat/write timeout
	SlowResyncs     int // backlogs discarded under the slow-client policy
	ExpiredSessions int // detached sessions that outlived the grace period
	SkippedUnknown  int // unknown-but-well-framed client messages skipped
	BadHandshakes   int // handshakes rejected (geometry, protocol)

	ViewerAttaches     int // attaches with the viewer role (fresh or resumed)
	ViewersRejected    int // viewer attaches refused by MaxViewers
	ViewerInputDropped int // input events from viewers discarded

	OverloadUps        int // degradation ladder escalations
	OverloadDowns      int // degradation ladder recoveries
	OverloadResyncs    int // resyncs forced by the ladder's last rung
	WatchdogRecoveries int // panics converted into clean session teardown

	AuditProbes      int // integrity probes sent (wire v4)
	AuditReplies     int // digest replies received
	AuditMismatches  int // tiles whose digests diverged
	AuditRepairs     int // tiles healed by targeted RAW repair
	AuditRepairBytes int // uncompressed payload bytes of those repairs
	AuditSweeps      int // escalations from sampled window to full sweep
	AuditResyncs     int // escalations from sweep (or misses) to full resync
	AuditTimeouts    int // probes that went unanswered past the timeout
	AuditLegacyPeers int // peers that never answered and were left alone

	E2EMarks       int // end-to-end TimeMarks sent (wire v5)
	E2EAcks        int // MarkAcks received and matched
	E2ETimeouts    int // marks that expired unacknowledged
	E2ELegacyPeers int // pre-v5 peers detected by mark silence

	CacheGrants      int // handshakes granted a payload cache (wire v6)
	CacheMissRepairs int // CACHE_MISS desyncs healed by forget-and-repaint

	WarmReattaches     int // reattaches resumed warm (epoch + capacity matched)
	ColdReattaches     int // reattaches that fell back to a cold full resync
	ReattachRejected   int // reattaches refused by the storm admission gate
	ResyncPeakInFlight int // high-watermark of concurrent gated resyncs
}

// session ties a ticket to the core client state it can resume. The
// granted role rides along so a reconnecting viewer resumes as a
// viewer regardless of what its Reattach asks for.
type session struct {
	ticket   string
	user     string
	role     uint8
	cl       *core.Client
	detached bool
	// expiry reaps the retained session after the detach grace: a
	// runtime timer in goroutine mode, a wheel timer under Sched.
	expiry interface{ Stop() bool }

	// cacheEpoch is the payload-cache generation stamped into this
	// session's SessionTicket (wire v7): a reattach resumes the retained
	// cache model warm only by echoing it. 0 = no cache granted.
	cacheEpoch uint64
}

// Host owns one display session and serves it to any number of
// clients. Display access is serialized: window servers are
// single-threaded, so applications draw via Do.
type Host struct {
	opts Options
	gate *auth.Authenticator

	mu    sync.Mutex
	dpy   *xserver.Display
	core  *core.Server
	sound *audio.Driver

	conns    map[*serverConn]struct{}
	sessions *shard.Registry // ticket → *session
	stats    ResilienceStats
	connSeq  int // connection counter: per-client telemetry labels
	wg       sync.WaitGroup
	closed   atomic.Bool

	// cacheEpoch is the monotonic payload-cache generation counter
	// (guarded by mu). It starts at 0 and is pre-incremented before
	// every stamp, so the first issued epoch is 1 and 0 never matches a
	// warm claim — the truncation-hardening property the wire layer
	// relies on.
	cacheEpoch uint64

	// resync is the reattach-storm admission gate (wire v7).
	resync *resyncGate

	met *hostMetrics
}

// NewHost creates a session of the given geometry gated by auth.
func NewHost(w, h int, gate *auth.Authenticator, opts Options) *Host {
	return newHostWith(w, h, gate, opts, nil)
}

// newHostWith is NewHost with an optionally shared instrument bundle:
// a Fleet passes one hostMetrics for all its hosts (per-host gauges
// and per-conn series are skipped there — label cardinality), nil
// builds a private bundle the classic way.
func newHostWith(w, h int, gate *auth.Authenticator, opts Options, met *hostMetrics) *Host {
	h2 := &Host{
		opts:     opts.withDefaults(),
		gate:     gate,
		sound:    audio.NewDriver(),
		conns:    make(map[*serverConn]struct{}),
		sessions: shard.NewRegistry(8),
	}
	h2.resync = newResyncGate(h2.opts.ResyncAdmit, h2.opts.ResyncRetryAfter,
		time.Now().UnixNano())
	if met == nil {
		met = defaultHostMetrics()
		h2.met = met
		met.registerHostGauges(h2)
	} else {
		h2.met = met
	}
	coreOpts := opts.Core
	if coreOpts.Metrics == nil {
		cm := core.NewMetrics(h2.met.reg)
		cm.Trace = h2.met.tr
		coreOpts.Metrics = cm
	}
	h2.core = core.NewServer(coreOpts)
	h2.dpy = xserver.NewDisplay(w, h, h2.core)
	return h2
}

// Do runs f with exclusive access to the display — the entry point for
// applications drawing into the session.
func (h *Host) Do(f func(*xserver.Display)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	f(h.dpy)
}

// Audio returns the session's virtual audio driver.
func (h *Host) Audio() *audio.Driver { return h.sound }

// ScreenChecksum returns a checksum of the current screen (tests and
// health checks).
func (h *Host) ScreenChecksum() uint32 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dpy.Screen().Checksum()
}

// NumClients returns the number of attached (live) display clients.
func (h *Host) NumClients() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.core.NumClients()
}

// NumViewers returns the number of live viewer-role connections.
func (h *Host) NumViewers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.viewersLocked()
}

// viewersLocked counts live viewer connections; callers hold h.mu.
func (h *Host) viewersLocked() int {
	n := 0
	for sc := range h.conns {
		if sc.role == wire.RoleViewer {
			n++
		}
	}
	return n
}

// NumDetached returns the number of disconnected sessions retained for
// reattach.
func (h *Host) NumDetached() int {
	return h.sessions.NumDetached()
}

// Close tears the Host down: every live connection is failed, their
// teardowns are waited for (Serve- and ServeEvent-tracked ones), and
// retained detached sessions are reaped with their expiry timers
// stopped — so a closed Host leaves no goroutines and no armed timers
// behind. Connections served by a direct ServeConn call on a caller
// goroutine are failed too, but joining that goroutine is the
// caller's job. Close is idempotent.
func (h *Host) Close() {
	if !h.closed.CompareAndSwap(false, true) {
		return
	}
	h.mu.Lock()
	conns := make([]*serverConn, 0, len(h.conns))
	for sc := range h.conns {
		conns = append(conns, sc)
	}
	h.mu.Unlock()
	for _, sc := range conns {
		if sc.sched.task != nil {
			sc.fail(errHostClosed)
		} else {
			_ = sc.nc.Close()
		}
	}
	h.wg.Wait()
	h.sessions.Range(func(k string, v any, _ bool) bool {
		s := v.(*session)
		h.mu.Lock()
		if s.expiry != nil {
			s.expiry.Stop()
		}
		h.sessions.Remove(k, s)
		h.mu.Unlock()
		return true
	})
}

var errHostClosed = errors.New("server: host closed")

// ForceRung pins every attached client's degradation rung — the admin
// override, and the chaos harness's way to exercise one rung
// deterministically. Leaving the lossy rungs queues the same
// full-screen repair refresh the controller would, the client is told
// via a DegradeNotice, and any active controller is re-seeded so it
// resumes from the pinned rung instead of fighting it; it still drifts
// as it ticks, so set DisableOverload for a hard pin.
func (h *Host) ForceRung(rung int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for sc := range h.conns {
		h.forceRungLocked(sc, rung)
	}
}

// ForceRungUser pins the degradation rung of every live connection
// authenticated as user, and reports how many connections matched.
// Viewers authenticate with the session password under their own
// usernames, so this is the per-viewer admin override — the broadcast
// counterpart of ForceRung, robust across that viewer's reconnects.
func (h *Host) ForceRungUser(user string, rung int) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for sc := range h.conns {
		if sc.user != user {
			continue
		}
		h.forceRungLocked(sc, rung)
		n++
	}
	return n
}

// forceRungLocked applies one connection's pinned rung; callers hold
// h.mu. Leaving the lossy rungs queues the repair refresh exactly as
// the controller would.
func (h *Host) forceRungLocked(sc *serverConn, rung int) {
	old := sc.cl.Degrade()
	sc.cl.SetDegrade(rung)
	if old >= overload.RungDownscale && rung < overload.RungDownscale {
		h.core.RefreshClient(sc.cl)
	}
	sc.forceRung(sc.cl.Degrade())
}

// Resilience returns a snapshot of the session-lifecycle counters.
func (h *Host) Resilience() ResilienceStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.stats
	_, st.ResyncPeakInFlight, _ = h.resync.snapshot()
	return st
}

// Serve accepts and serves connections until the listener closes.
func (h *Host) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			h.wg.Wait()
			return err
		}
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			_ = h.ServeConn(conn)
		}()
	}
}

// handshakeTimeout bounds the unauthenticated phase.
const handshakeTimeout = 10 * time.Second

// newTicket mints an opaque session ticket.
func newTicket() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}

// ServeConn authenticates and serves one client connection, returning
// when the client disconnects, times out, or fails authentication.
// With Options.Sched set the connection is driven by the sharded
// delivery core (the blocking reader runs on this goroutine, so the
// connection still costs one goroutine — it, not two); otherwise the
// classic read/flush goroutine pair runs.
func (h *Host) ServeConn(nc net.Conn) error {
	defer nc.Close()
	hr, err := h.handshake(nc)
	if err != nil {
		return err
	}
	sc := h.attachConn(nc, hr, false)
	if h.opts.Sched != nil {
		err = sc.runScheduled()
	} else {
		err = sc.run()
	}
	h.finishConn(sc, hr.sess, err)
	return err
}

// hsResult is what a completed handshake hands the connection driver.
type hsResult struct {
	enc   *cipher.StreamConn
	sess  *session
	cl    *core.Client
	user  string
	role  uint8
	gated bool
}

// handshake runs the full connection-establishment sequence —
// challenge/response auth, the switch to RC4 transport, the
// ClientInit/Reattach hello with the wire-v7 warm/cold verdict and
// storm admission, and the ServerInit + SessionTicket answer. On
// success the session is registered and attached to the core; errors
// after that point have already rolled the session back.
func (h *Host) handshake(nc net.Conn) (*hsResult, error) {
	_ = nc.SetDeadline(time.Now().Add(handshakeTimeout))

	// Challenge/response (plaintext phase carries no secrets).
	nonce, err := h.gate.NewChallenge()
	if err != nil {
		return nil, err
	}
	if err := wire.WriteMessage(nc, &wire.AuthChallenge{Nonce: nonce}); err != nil {
		return nil, err
	}
	m, err := wire.ReadMessage(nc)
	if err != nil {
		return nil, err
	}
	resp, ok := m.(*wire.AuthResponse)
	if !ok {
		return nil, fmt.Errorf("server: expected auth response, got %v", m.Type())
	}
	if err := h.gate.Verify(resp.User, nonce, resp.Proof); err != nil {
		_ = wire.WriteMessage(nc, &wire.AuthResult{OK: false, Reason: err.Error()})
		return nil, err
	}
	if err := wire.WriteMessage(nc, &wire.AuthResult{OK: true}); err != nil {
		return nil, err
	}

	// Switch to the RC4-encrypted transport (§7).
	secret, ok := h.gate.SecretFor(resp.User)
	if !ok {
		return nil, errors.New("server: no transport secret for user")
	}
	enc, err := cipher.NewStreamConn(nc, auth.SessionKey(secret, nonce), true)
	if err != nil {
		return nil, err
	}

	// Hello: a fresh ClientInit, or a Reattach resuming a retained
	// session. Both carry the viewport, which is validated here — the
	// handshake is the trust boundary, not core.AttachClient.
	m, err = wire.ReadMessage(enc)
	if err != nil {
		return nil, err
	}
	var viewW, viewH int
	var role uint8
	var cacheReqKB int
	var reattach *wire.Reattach
	switch v := m.(type) {
	case *wire.ClientInit:
		viewW, viewH = v.ViewW, v.ViewH
		role = v.Role
		cacheReqKB = int(v.CacheKB)
	case *wire.Reattach:
		viewW, viewH = v.ViewW, v.ViewH
		role = v.Role
		cacheReqKB = int(v.CacheKB)
		reattach = v
	default:
		return nil, fmt.Errorf("server: expected client init or reattach, got %v", m.Type())
	}
	if viewW < 0 || viewH < 0 || viewW > maxViewDim || viewH > maxViewDim {
		h.mu.Lock()
		h.stats.BadHandshakes++
		h.mu.Unlock()
		h.met.badHandshakes.Inc()
		slogger.Warn("rejecting absurd viewport",
			"user", resp.User, "view_w", viewW, "view_h", viewH)
		return nil, fmt.Errorf("server: rejecting absurd viewport %dx%d", viewW, viewH)
	}
	if role > wire.RoleViewer {
		h.mu.Lock()
		h.stats.BadHandshakes++
		h.mu.Unlock()
		h.met.badHandshakes.Inc()
		return nil, fmt.Errorf("server: unknown session role %d from %q", role, resp.User)
	}
	_ = nc.SetDeadline(time.Time{})

	// Attach: resume the retained session when the ticket checks out,
	// fall back to a fresh attach otherwise. The payload-cache grant —
	// min(client request, host cap), wire v6 — is computed up front
	// because the wire-v7 warm/cold verdict needs it, and the model must
	// be sized before the resync is queued (the warm resync rides the
	// cache). A reattach needing the cold full resync passes the storm
	// admission gate first; refusal leaves the session retained and
	// answers with AttachBusy.
	h.mu.Lock()
	w, ht := h.core.ScreenSize()
	cacheGrantKB := cacheReqKB
	if max := h.opts.CacheKB; max < 0 {
		cacheGrantKB = 0
	} else if cacheGrantKB > max {
		cacheGrantKB = max
	}
	var cl *core.Client
	var cacheWarm bool
	var cacheEpoch uint64
	gated := false // holding a resync-gate slot until the resync drains
	refuseBusy := func() error {
		h.stats.ReattachRejected++
		h.mu.Unlock()
		h.met.reattachRejected.Inc()
		retry := h.resync.nextRetry()
		slogger.Warn("reattach refused by storm admission gate",
			"user", resp.User, "retry_after", retry)
		_ = wire.WriteMessage(enc, &wire.AttachBusy{
			RetryAfterMS: uint32(retry / time.Millisecond)})
		return fmt.Errorf("server: reattach admission refused for %q", resp.User)
	}
	if reattach != nil {
		var s *session
		if v, detached, ok := h.sessions.Get(string(reattach.Ticket)); ok && detached {
			if cand := v.(*session); cand.user == resp.User {
				s = cand
			}
		}
		if s != nil {
			// Warm verdict: the client claims an intact store from this
			// session's epoch and the regranted capacity matches the
			// retained model. Anything else — no claim (epoch 0, which is
			// all a truncated or pre-v7 hello can say), a stale epoch, or
			// a capacity change — goes cold.
			warm := reattach.CacheEpoch != 0 &&
				reattach.CacheEpoch == s.cacheEpoch &&
				cacheGrantKB > 0 &&
				s.cl.CacheSize() == cacheGrantKB*1024
			if !warm && !h.resync.tryAcquire() {
				return nil, refuseBusy()
			}
			gated = !warm
			if s.expiry != nil {
				s.expiry.Stop()
			}
			h.sessions.Remove(s.ticket, s)
			cl = s.cl
			role = s.role // the granted role survives reconnects
			cacheWarm = warm
			if warm {
				cacheEpoch = s.cacheEpoch
				cl.SetCacheSize(cacheGrantKB * 1024) // same capacity keeps the model
				h.core.ReattachClientWarm(cl, viewW, viewH)
				h.stats.WarmReattaches++
				h.met.warmReattaches.Inc()
			} else {
				// Cold fallback: whatever the two sides hold no longer
				// corresponds; restart the model under a fresh epoch.
				cl.ResetCacheSize(cacheGrantKB * 1024)
				if cacheGrantKB > 0 {
					h.cacheEpoch++
					cacheEpoch = h.cacheEpoch
				}
				h.core.ReattachClient(cl, viewW, viewH)
				h.stats.ColdReattaches++
				h.met.coldReattaches.Inc()
			}
			cl.SetCacheEpoch(cacheEpoch)
			h.stats.Reattaches++
			h.met.reattaches.Inc()
			if tr := h.met.tr; tr.Enabled() {
				tr.Event("session.reattach", fmt.Sprintf("user=%s role=%s view=%dx%d warm=%v",
					resp.User, wire.RoleName(role), viewW, viewH, warm))
			}
		} else {
			slogger.Warn("reattach with unknown or expired ticket; attaching fresh",
				"user", resp.User)
		}
	}
	if cl == nil {
		if role == wire.RoleViewer {
			if max := h.opts.MaxViewers; max >= 0 && h.viewersLocked() >= max {
				h.stats.ViewersRejected++
				h.mu.Unlock()
				h.met.viewersRejected.Inc()
				return nil, fmt.Errorf("server: viewer limit (%d) reached, rejecting %q",
					h.opts.MaxViewers, resp.User)
			}
		}
		// A fresh attach arriving as a failed Reattach is still part of a
		// reconnect storm (an expired ticket does not make the full
		// resync cheaper), so it passes the same gate. Plain ClientInit
		// attaches are never gated.
		if reattach != nil {
			if !h.resync.tryAcquire() {
				return nil, refuseBusy()
			}
			gated = true
		}
		cl = h.core.AttachClient(viewW, viewH)
		h.stats.Attaches++
		h.met.attaches.Inc()
		cl.SetCacheSize(cacheGrantKB * 1024)
		if cacheGrantKB > 0 {
			h.cacheEpoch++
			cacheEpoch = h.cacheEpoch
			cl.SetCacheEpoch(cacheEpoch)
		}
		if tr := h.met.tr; tr.Enabled() {
			tr.Event("session.attach", fmt.Sprintf("user=%s role=%s view=%dx%d",
				resp.User, wire.RoleName(role), viewW, viewH))
		}
	}
	if role == wire.RoleViewer {
		h.stats.ViewerAttaches++
		h.met.viewerAttaches.Inc()
	}
	if cacheGrantKB > 0 {
		h.stats.CacheGrants++
		h.met.cacheGrants.Inc()
	}
	ticket, terr := newTicket()
	if terr != nil {
		h.core.DetachClient(cl)
		h.mu.Unlock()
		if gated {
			h.resync.release()
		}
		return nil, terr
	}
	sess := &session{ticket: ticket, user: resp.User, role: role, cl: cl,
		cacheEpoch: cacheEpoch}
	h.sessions.Attach(ticket, sess)
	h.mu.Unlock()

	warmByte := uint8(0)
	if cacheWarm {
		warmByte = 1
	}
	if err := wire.WriteMessage(enc, &wire.ServerInit{Ver: wire.ProtoVersion, W: w, H: ht,
		CacheKB: uint32(cacheGrantKB), CacheWarm: warmByte}); err != nil {
		h.endSession(sess, false)
		if gated {
			h.resync.release()
		}
		return nil, err
	}
	if err := wire.WriteMessage(enc, &wire.SessionTicket{Ticket: []byte(ticket), Role: role,
		CacheEpoch: cacheEpoch}); err != nil {
		h.endSession(sess, false)
		if gated {
			h.resync.release()
		}
		return nil, err
	}
	return &hsResult{enc: enc, sess: sess, cl: cl, user: resp.User, role: role,
		gated: gated}, nil
}

// attachConn builds the live connection state a completed handshake
// drives: the serverConn, its overload controller, rung carry-over,
// audio tap, registration in the conns set, and — under Sched — the
// shard task, wheel timers, and damage-wake hook.
func (h *Host) attachConn(nc net.Conn, hr *hsResult, event bool) *serverConn {
	sc := &serverConn{host: h, nc: nc, enc: hr.enc, cl: hr.cl, user: hr.user, role: hr.role,
		pongs:   make(chan *wire.Pong, 8),
		replies: make(chan *wire.AuditReply, 4),
		acks:    make(chan *wire.MarkAck, 8), noticeRung: -1}
	if hr.gated {
		sc.gateHeld.Store(true)
	}
	// A reattach already queued a full-screen resync, which heals any
	// divergence an interrupted escalation sweep was chasing; the legacy
	// verdict and probe sequence ride the session, the sweep does not.
	hr.cl.Audit().ResetSweep()
	if !h.opts.DisableOverload {
		sc.ctrl = overload.NewController(&sc.est, h.opts.Overload)
	}
	// A reattached session carries its degradation rung: the core client
	// still applies it to payloads, so the controller must resume there
	// (not silently diverge at lossless) and the client must be told.
	if r := hr.cl.Degrade(); r > 0 {
		sc.forceRung(r)
	}
	sc.detachAudio = h.sound.Attach(func(pts uint64, pcm []byte) {
		h.mu.Lock()
		defer h.mu.Unlock()
		h.core.PushAudio(pts, pcm)
	})

	if h.opts.Sched != nil {
		sc.initSched(hr.sess, event)
	}
	h.mu.Lock()
	h.conns[sc] = struct{}{}
	h.connSeq++
	label := fmt.Sprintf("%s#%d", hr.user, h.connSeq)
	if h.opts.Sched != nil {
		// The damage wake: any command queued for this client arms a
		// paced flush timer. Set under h.mu like every Buf access.
		sc.cl.Buf.SetOnQueued(sc.armFlush)
	}
	h.mu.Unlock()
	h.met.registerConn(h, label, sc)
	if h.opts.Sched != nil {
		sc.startSched()
	}
	return sc
}

// finishConn is the teardown tail every driver funnels through:
// release a still-held admission slot, drop the conn from the live
// set, count a reap when the connection died of silence, detach the
// audio tap, and end (detach or retain) the session.
func (h *Host) finishConn(sc *serverConn, sess *session, err error) {
	if sc.gateHeld.CompareAndSwap(true, false) {
		h.resync.release()
	}
	h.mu.Lock()
	delete(h.conns, sc)
	if sc.sched.task != nil {
		sc.cl.Buf.SetOnQueued(nil)
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		h.stats.Reaps++
		h.met.reaps.Inc()
		if tr := h.met.tr; tr.Enabled() {
			tr.Event("session.reap", "user="+sc.user)
		}
	}
	h.mu.Unlock()
	// Retain the session for reattach unless retention is disabled.
	h.endSession(sess, h.opts.DetachGrace > 0 && !h.closed.Load())
	sc.detachAudio()
}

// endSession detaches the session's display client and either retains
// it for the grace period (retain) or forgets it immediately.
func (h *Host) endSession(s *session, retain bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if cur, _, ok := h.sessions.Get(s.ticket); !ok || cur != any(s) {
		return // already reattached or expired; the client is not ours
	}
	h.core.DetachClient(s.cl)
	if !retain {
		h.sessions.Remove(s.ticket, s)
		return
	}
	s.detached = true
	h.sessions.Detach(s.ticket, s)
	expire := func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if h.sessions.Remove(s.ticket, s) {
			h.stats.ExpiredSessions++
			h.met.expiredSessions.Inc()
		}
	}
	// Under Sched the reap timer lives in the shared wheel — 10k
	// detached sessions are 10k wheel entries, not 10k runtime timers.
	if sched := h.opts.Sched; sched != nil {
		s.expiry = sched.Wheel().After(h.opts.DetachGrace, expire)
	} else {
		s.expiry = time.AfterFunc(h.opts.DetachGrace, expire)
	}
}

// serverConn is one live client connection.
type serverConn struct {
	host    *Host
	nc      net.Conn
	enc     *cipher.StreamConn
	cl      *core.Client
	user    string
	role    uint8 // wire.RoleOwner or wire.RoleViewer
	pongs   chan *wire.Pong
	replies chan *wire.AuditReply
	acks    chan *wire.MarkAck

	// aud is the in-flight integrity-probe state; owned entirely by the
	// flush loop (the sole prober), so it needs no lock.
	aud auditConn

	// e2e is the in-flight end-to-end mark window; owned by the flush
	// loop (the sole marker), so it needs no lock either.
	e2e e2eConn

	// Overload protection. The estimator is fed from two goroutines —
	// flush progress by the flush loop, heartbeat RTT by the read loop —
	// so estMu guards it and the controller.
	estMu sync.Mutex
	est   overload.Estimator
	ctrl  *overload.Controller // nil when the ladder is disabled

	rung      int32 // active ladder rung (atomic; telemetry reads it)
	watchdogs int64 // panics this connection survived (atomic)

	// gateHeld marks that this connection holds a resync-gate slot; the
	// flush loop clears it (releasing the slot) the first time the
	// resync backlog drains, and teardown releases whatever remains.
	gateHeld atomic.Bool

	// noticeRung is a pending out-of-band DegradeNotice rung (-1 none):
	// ForceRung and reattach rung carry-over park the value here and the
	// flush loop, which owns the encoder, emits the notice.
	noticeRung int32

	// pingSeq numbers outgoing heartbeats; owned by the flush driver
	// (flush loop or shard pump), which is the sole sender.
	pingSeq uint32

	// detachAudio unhooks the session's audio tap at teardown.
	detachAudio func()

	// sched is the event-driven driver's state (Options.Sched); its
	// zero value marks the classic goroutine-pair driver.
	sched schedConn

	unknownLogged map[wire.Type]bool
}

// forceRung adopts an externally-set rung: telemetry, the controller
// (so its hysteresis resumes from here), and a pending DegradeNotice
// for the flush loop to emit.
func (c *serverConn) forceRung(rung int) {
	atomic.StoreInt32(&c.rung, int32(rung))
	atomic.StoreInt32(&c.noticeRung, int32(rung))
	c.estMu.Lock()
	if c.ctrl != nil {
		c.ctrl.ForceRung(rung)
	}
	c.estMu.Unlock()
	// The classic driver's 5ms flush ticker would deliver the parked
	// notice on its own; the sharded pump arms flush passes only on
	// damage, so an idle scheduled session must be nudged explicitly.
	if c.sched.task != nil {
		c.armFlush()
	}
}

// run pumps the reader and the flush loop until either fails, then
// tears both down and waits for them — no goroutine outlives run.
// Both loops run under the watchdog: a panic anywhere in the command
// path becomes an error here, so one poisoned connection tears down
// cleanly (and may reattach) instead of killing the whole host.
func (c *serverConn) run() error {
	errc := make(chan error, 2)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); errc <- c.guard("read", done, c.readLoop) }()
	go func() { defer wg.Done(); errc <- c.guard("flush", done, c.flushLoop) }()
	err := <-errc
	close(done)
	_ = c.nc.Close() // unblock the sibling loop
	wg.Wait()
	return err
}

// guard is the per-goroutine watchdog: it converts a panic in loop
// into a normal connection error. Critical sections that take the Host
// lock use defer-unlock closures, so the lock is released while the
// panic unwinds and the rest of the host keeps running.
func (c *serverConn) guard(name string, done <-chan struct{}, loop func(<-chan struct{}) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			atomic.AddInt64(&c.watchdogs, 1)
			c.host.met.watchdogRecoveries.Inc()
			c.host.mu.Lock()
			c.host.stats.WatchdogRecoveries++
			c.host.mu.Unlock()
			slogger.Error("loop panic, tearing session down",
				"loop", name, "user", c.user, "panic", fmt.Sprint(r))
			err = fmt.Errorf("server: %s loop panic: %v", name, r)
		}
	}()
	return loop(done)
}

// readLoop handles client-to-server messages. Every read carries the
// heartbeat deadline: any message (the client answers our Pings, so an
// idle healthy client is never silent) proves liveness; a peer silent
// past the timeout is dead and the deadline error tears the conn down.
func (c *serverConn) readLoop(done <-chan struct{}) error {
	for {
		_ = c.nc.SetReadDeadline(time.Now().Add(c.host.opts.HeartbeatTimeout))
		m, err := wire.ReadMessage(c.enc)
		if err != nil {
			// Unknown-but-well-framed types are skipped, not fatal: a
			// newer client may speak messages this build predates.
			if errors.Is(err, wire.ErrUnknownType) {
				c.logUnknown(err)
				continue
			}
			return err
		}
		select {
		case <-done:
			return nil
		default:
		}
		if err := c.dispatch(m); err != nil {
			return err
		}
	}
}

// dispatch handles one client-to-server message. It is the shared
// inbound path of every driver: the read loop calls it after each
// decode, and an EventSession delivers decoded messages straight into
// it with no reader goroutine at all.
func (c *serverConn) dispatch(m wire.Message) error {
	switch v := m.(type) {
	case *wire.Input:
		if c.role == wire.RoleViewer {
			// Viewers watch; their input never reaches the display.
			c.host.mu.Lock()
			c.host.stats.ViewerInputDropped++
			c.host.mu.Unlock()
			c.host.met.viewerInputDropped.Inc()
			return nil
		}
		func() {
			c.host.mu.Lock()
			defer c.host.mu.Unlock()
			c.host.dpy.InjectInput(geom.Point{X: v.X, Y: v.Y})
		}()
		if h := c.host.opts.OnInput; h != nil {
			h(v)
		}
	case *wire.Resize:
		func() {
			c.host.mu.Lock()
			defer c.host.mu.Unlock()
			c.cl.Resize(v.ViewW, v.ViewH)
		}()
	case *wire.Ping:
		// Client-initiated probe: queue the echo for the writer.
		select {
		case c.pongs <- &wire.Pong{Seq: v.Seq, TimeUS: v.TimeUS}:
			c.wakeControl()
		default: // writer backlogged; the next probe will do
		}
	case *wire.Pong:
		// The read itself already refreshed the liveness deadline.
		// Our Pings carry the send time; the echo yields the RTT.
		if v.TimeUS != 0 {
			if rtt := time.Now().UnixMicro() - int64(v.TimeUS); rtt >= 0 {
				c.host.met.hbRTT.Observe(rtt)
				c.estMu.Lock()
				c.est.ObserveRTT(rtt)
				c.estMu.Unlock()
			}
		}
	case *wire.UpdateRequest:
		// Push architecture: requests are legal but unnecessary.
	case *wire.AuditReply:
		// Queue the digest reply for the flush driver, which owns the
		// audit state machine.
		select {
		case c.replies <- v:
			c.wakeControl()
		default: // audit loop backlogged; the next probe re-checks
		}
	case *wire.MarkAck:
		// Queue the e2e ack for the flush driver, which owns the mark
		// window; a dropped ack just expires as a timeout.
		select {
		case c.acks <- v:
			c.wakeControl()
		default:
		}
	case *wire.CacheMiss:
		// The client could not honor a cache reference (corruption, a
		// holding we believed it had). Drop the digest from its model
		// and queue a plain RAW repaint of the region — the cache heals
		// itself without ever risking a stale framebuffer.
		func() {
			c.host.mu.Lock()
			defer c.host.mu.Unlock()
			c.host.core.CacheMissRepair(c.cl, v.Digest, v.Rect)
			c.host.stats.CacheMissRepairs++
		}()
		c.host.met.cacheMissRepairs.Inc()
		if tr := c.host.met.tr; tr.Enabled() {
			tr.Event("cache.miss_repair", fmt.Sprintf("user=%s digest=%016x rect=%v",
				c.user, v.Digest, v.Rect))
		}
	default:
		return fmt.Errorf("server: unexpected client message %v", m.Type())
	}
	return nil
}

// logUnknown logs an unknown client message type once per type.
func (c *serverConn) logUnknown(err error) {
	c.host.mu.Lock()
	c.host.stats.SkippedUnknown++
	c.host.mu.Unlock()
	c.host.met.skippedUnknown.Inc()
	if c.unknownLogged == nil {
		c.unknownLogged = make(map[wire.Type]bool)
	}
	var ut *wire.UnknownTypeError
	key := wire.Type(0)
	if errors.As(err, &ut) {
		key = ut.T
	}
	if !c.unknownLogged[key] {
		c.unknownLogged[key] = true
		slogger.Warn("skipping unknown client message",
			"user", c.user, "err", err.Error())
	}
}

// flushLoop is the delivery engine: every interval it drains up to the
// budget from the client buffer and writes the messages out. All
// budgeted messages are framed into one pooled batch buffer (large
// pixel slabs ride along by reference) and committed with a single
// vectored write — the non-blocking socket commit of §5 over a real
// TCP connection, with no per-message allocation. It also owns the
// write side of the heartbeat (Pings out, Pong echoes out) and applies
// the slow-client policy when the backlog outgrows its bound.
func (c *serverConn) flushLoop(done <-chan struct{}) error {
	t := time.NewTicker(c.host.opts.FlushInterval)
	defer t.Stop()
	hb := time.NewTicker(c.host.opts.HeartbeatInterval)
	defer hb.Stop()
	var auditC <-chan time.Time
	if !c.host.opts.DisableAudit {
		at := time.NewTicker(c.host.opts.AuditInterval)
		defer at.Stop()
		auditC = at.C
	}
	batch := wire.NewBatch()
	defer batch.Release()
	queue, flush := c.makeQueueFlush(batch)

	for {
		select {
		case <-done:
			return nil
		case pg := <-c.pongs:
			if err := queue(pg); err != nil {
				return err
			}
			if err := flush(); err != nil {
				return err
			}
		case r := <-c.replies:
			c.auditReply(r)
		case a := <-c.acks:
			c.e2eAck(a)
		case <-auditC:
			if err := c.auditTick(queue, flush); err != nil {
				return err
			}
		case <-hb.C:
			if err := c.heartbeatTick(queue, flush); err != nil {
				return err
			}
		case <-t.C:
			if _, err := c.flushTick(batch, queue, flush); err != nil {
				return err
			}
		}
	}
}

// makeQueueFlush builds the batch-bound queue/flush pair shared by the
// goroutine flush loop and the sharded scheduler pump. queue frames m
// into the batch and feeds the per-type wire counters from the O(1)
// analytic size; flush commits the whole batch in one write under the
// write deadline.
func (c *serverConn) makeQueueFlush(batch *wire.Batch) (queue func(wire.Message) error, flush func() error) {
	met := c.host.met
	queue = func(m wire.Message) error {
		if err := batch.Append(m); err != nil {
			return err
		}
		t := m.Type()
		met.msgsByType[t].Inc()
		met.bytesByType[t].Add(int64(wire.WireSize(m)))
		return nil
	}
	flush = func() error {
		if batch.Empty() {
			return nil
		}
		_ = c.nc.SetWriteDeadline(time.Now().Add(c.host.opts.WriteTimeout))
		_, err := batch.WriteTo(c.enc)
		batch.Reset()
		return err
	}
	return queue, flush
}

// heartbeatTick emits one Ping and ages out unanswered e2e marks.
func (c *serverConn) heartbeatTick(queue func(wire.Message) error, flush func() error) error {
	c.pingSeq++
	if err := queue(&wire.Ping{Seq: c.pingSeq,
		TimeUS: uint64(time.Now().UnixMicro())}); err != nil {
		return err
	}
	c.host.met.heartbeatsSent.Inc()
	if err := flush(); err != nil {
		return err
	}
	// Age out unanswered marks even when the display is idle, so a
	// pre-v5 peer reaches its legacy verdict without new damage.
	if !c.host.opts.DisableE2E {
		c.e2eExpire()
	}
	return nil
}

// flushTick runs one delivery interval: drain up to the budget from
// the client buffer, commit the batch in one vectored write, run the
// overload controller, and apply the slow-client policy. It returns
// the post-flush backlog so the caller can decide whether another tick
// is needed (the sharded pump re-arms only while backlog remains).
func (c *serverConn) flushTick(batch *wire.Batch, queue func(wire.Message) error, flush func() error) (int, error) {
	met := c.host.met
	var msgs []wire.Message
	var backlog int
	var ft core.FlushTrace
	func() {
		c.host.mu.Lock()
		defer c.host.mu.Unlock()
		msgs = c.cl.Flush(c.host.opts.FlushBudget)
		if len(msgs) == 0 && c.cl.Buf.Len() > 0 {
			// The head command is unsplittable and larger than the
			// whole budget (a long audio write against a modem-class
			// pacing budget): stream it whole, like a kernel taking
			// one oversized write, or the queue wedges forever.
			msgs = c.cl.Buf.FlushOne()
		}
		if len(msgs) > 0 {
			ft = c.cl.Buf.LastFlush()
		}
		backlog = c.cl.Buf.QueuedBytes()
	}()
	drainNS := time.Now().UnixNano()
	for _, m := range msgs {
		if err := queue(m); err != nil {
			return backlog, err
		}
	}
	// The mark rides the same batch as the commands it names, so
	// the client acks it only after applying everything before it.
	mark := c.e2eMark(ft, drainNS)
	if mark != nil {
		if err := queue(mark); err != nil {
			return backlog, err
		}
	}
	batchBytes := batch.Len()
	start := time.Now()
	if err := flush(); err != nil {
		return backlog, err
	}
	if mark != nil {
		c.e2eArm()
	}
	// The vectored write is done; RAW payload buffers can go
	// back to the codec scratch pool.
	core.RecycleMessages(msgs)
	if batchBytes > 0 {
		met.flushBatch.Observe(batchBytes)
		c.estMu.Lock()
		c.est.ObserveFlush(int(batchBytes), time.Since(start))
		c.estMu.Unlock()
	}
	if err := c.overloadTick(backlog, queue, flush); err != nil {
		return backlog, err
	}
	// The admitted resync has fully drained: hand the gate slot to
	// the next waiting reattacher in the storm.
	if backlog == 0 && c.gateHeld.CompareAndSwap(true, false) {
		c.host.resync.release()
	}
	// An out-of-band rung change (ForceRung, reattach carry-over)
	// parked a notice for us — the flush loop owns the encoder.
	if want := atomic.SwapInt32(&c.noticeRung, -1); want >= 0 {
		if err := queue(&wire.DegradeNotice{Rung: uint8(want),
			Cause: wire.CauseAdmin, BacklogBytes: clampU32(backlog)}); err != nil {
			return backlog, err
		}
		if err := flush(); err != nil {
			return backlog, err
		}
	}
	// Slow-client policy: a backlog past the bound means the peer
	// cannot keep up with the session; delivering it all would only
	// grow the queue and the client's staleness. Drop it and queue
	// a fresh full-screen resync instead (§5's bounded buffers).
	if max := c.host.opts.MaxBacklogBytes; max > 0 && backlog > max {
		func() {
			c.host.mu.Lock()
			defer c.host.mu.Unlock()
			c.host.core.ResyncClient(c.cl)
			c.host.stats.SlowResyncs++
		}()
		met.slowResyncs.Inc()
		if tr := met.tr; tr.Enabled() {
			tr.Event("session.slow_resync",
				fmt.Sprintf("user=%s backlog=%d", c.user, backlog))
		}
	}
	return backlog, nil
}

// clampU32 saturates a non-negative int into a uint32 wire field.
func clampU32(n int) uint32 {
	if n < 0 {
		return 0
	}
	if n > int(^uint32(0)) {
		return ^uint32(0)
	}
	return uint32(n)
}

// overloadTick runs one controller evaluation and applies any rung
// change: the core client's payload degradation level, the last rung's
// forced resync, the repair refresh when leaving the lossy rungs, and
// the DegradeNotice telling the client what quality it is getting and
// why.
func (c *serverConn) overloadTick(backlog int, queue func(wire.Message) error, flush func() error) error {
	if c.ctrl == nil {
		return nil
	}
	c.estMu.Lock()
	rung, dir := c.ctrl.Tick(backlog)
	estBps := c.est.Bps()
	c.estMu.Unlock()
	if dir == overload.Steady {
		return nil
	}
	atomic.StoreInt32(&c.rung, int32(rung))
	met := c.host.met
	cause := uint8(wire.CauseBacklog)
	resync := dir == overload.Up && rung == overload.RungResync
	// Descending out of the lossy rungs: the client's screen holds
	// downscaled content; repaint it at full fidelity.
	repair := dir == overload.Down && rung == overload.RungDownscale-1
	if dir == overload.Down {
		cause = uint8(wire.CauseRecovered)
	}
	func() {
		c.host.mu.Lock()
		defer c.host.mu.Unlock()
		c.cl.SetDegrade(rung)
		if dir == overload.Up {
			c.host.stats.OverloadUps++
		} else {
			c.host.stats.OverloadDowns++
		}
		if resync {
			c.host.core.ResyncClient(c.cl)
			c.host.stats.OverloadResyncs++
		}
		if repair {
			c.host.core.RefreshClient(c.cl)
		}
	}()
	if dir == overload.Up {
		met.overloadUps.Inc()
	} else {
		met.overloadDowns.Inc()
	}
	if resync {
		met.overloadResyncs.Inc()
	}
	if tr := met.tr; tr.Enabled() {
		tr.Event("overload.rung", fmt.Sprintf("user=%s rung=%s backlog=%d bps=%.0f",
			c.user, overload.RungName(rung), backlog, estBps))
	}
	if err := queue(&wire.DegradeNotice{Rung: uint8(rung), Cause: cause,
		BacklogBytes: clampU32(backlog), EstBps: clampU32(int(estBps))}); err != nil {
		return err
	}
	return flush()
}
