// Package server is the runnable THINC server (§7): it owns a window
// system with the THINC virtual display driver and the virtual audio
// driver, and serves display sessions to remote clients over real
// network connections — PAM-style authentication, RC4-encrypted
// transport, server-push delivery with non-blocking flushing, input
// injection, and dynamic client resizing.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"thinc/internal/audio"
	"thinc/internal/auth"
	"thinc/internal/cipher"
	"thinc/internal/core"
	"thinc/internal/geom"
	"thinc/internal/wire"
	"thinc/internal/xserver"
)

// Options configures a Host.
type Options struct {
	// Core configures the translation layer (compression, ablations).
	Core core.Options
	// FlushInterval paces the delivery loop; zero means 5ms.
	FlushInterval time.Duration
	// FlushBudget bounds bytes per flush (socket-buffer model); zero
	// means 256 KiB.
	FlushBudget int
	// OnInput, when set, receives user input events after they are
	// injected into the display (button dispatch for applications).
	OnInput func(ev *wire.Input)
}

// Host owns one display session and serves it to any number of
// clients. Display access is serialized: window servers are
// single-threaded, so applications draw via Do.
type Host struct {
	opts Options
	gate *auth.Authenticator

	mu    sync.Mutex
	dpy   *xserver.Display
	core  *core.Server
	sound *audio.Driver

	conns map[*serverConn]struct{}
	wg    sync.WaitGroup
}

// NewHost creates a session of the given geometry gated by auth.
func NewHost(w, h int, gate *auth.Authenticator, opts Options) *Host {
	if opts.FlushInterval <= 0 {
		opts.FlushInterval = 5 * time.Millisecond
	}
	if opts.FlushBudget <= 0 {
		opts.FlushBudget = 256 << 10
	}
	h2 := &Host{
		opts:  opts,
		gate:  gate,
		sound: audio.NewDriver(),
		conns: make(map[*serverConn]struct{}),
	}
	h2.core = core.NewServer(opts.Core)
	h2.dpy = xserver.NewDisplay(w, h, h2.core)
	return h2
}

// Do runs f with exclusive access to the display — the entry point for
// applications drawing into the session.
func (h *Host) Do(f func(*xserver.Display)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	f(h.dpy)
}

// Audio returns the session's virtual audio driver.
func (h *Host) Audio() *audio.Driver { return h.sound }

// ScreenChecksum returns a checksum of the current screen (tests and
// health checks).
func (h *Host) ScreenChecksum() uint32 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dpy.Screen().Checksum()
}

// Serve accepts and serves connections until the listener closes.
func (h *Host) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			h.wg.Wait()
			return err
		}
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			_ = h.ServeConn(conn)
		}()
	}
}

// handshakeTimeout bounds the unauthenticated phase.
const handshakeTimeout = 10 * time.Second

// ServeConn authenticates and serves one client connection, returning
// when the client disconnects or fails authentication.
func (h *Host) ServeConn(nc net.Conn) error {
	defer nc.Close()
	_ = nc.SetDeadline(time.Now().Add(handshakeTimeout))

	// Challenge/response (plaintext phase carries no secrets).
	nonce, err := h.gate.NewChallenge()
	if err != nil {
		return err
	}
	if err := wire.WriteMessage(nc, &wire.AuthChallenge{Nonce: nonce}); err != nil {
		return err
	}
	m, err := wire.ReadMessage(nc)
	if err != nil {
		return err
	}
	resp, ok := m.(*wire.AuthResponse)
	if !ok {
		return fmt.Errorf("server: expected auth response, got %v", m.Type())
	}
	if err := h.gate.Verify(resp.User, nonce, resp.Proof); err != nil {
		_ = wire.WriteMessage(nc, &wire.AuthResult{OK: false, Reason: err.Error()})
		return err
	}
	if err := wire.WriteMessage(nc, &wire.AuthResult{OK: true}); err != nil {
		return err
	}

	// Switch to the RC4-encrypted transport (§7).
	secret, ok := h.gate.SecretFor(resp.User)
	if !ok {
		return errors.New("server: no transport secret for user")
	}
	enc, err := cipher.NewStreamConn(nc, auth.SessionKey(secret, nonce), true)
	if err != nil {
		return err
	}
	_ = nc.SetDeadline(time.Time{})

	// Geometry exchange.
	m, err = wire.ReadMessage(enc)
	if err != nil {
		return err
	}
	ci, ok := m.(*wire.ClientInit)
	if !ok {
		return fmt.Errorf("server: expected client init, got %v", m.Type())
	}
	h.mu.Lock()
	w, ht := h.core.ScreenSize()
	cl := h.core.AttachClient(ci.ViewW, ci.ViewH)
	h.mu.Unlock()
	if err := wire.WriteMessage(enc, &wire.ServerInit{W: w, H: ht}); err != nil {
		return err
	}

	sc := &serverConn{host: h, nc: nc, enc: enc, cl: cl, user: resp.User}
	detachAudio := h.sound.Attach(func(pts uint64, pcm []byte) {
		h.mu.Lock()
		h.core.PushAudio(pts, pcm)
		h.mu.Unlock()
	})
	defer detachAudio()

	h.mu.Lock()
	h.conns[sc] = struct{}{}
	h.mu.Unlock()
	defer func() {
		h.mu.Lock()
		delete(h.conns, sc)
		h.core.DetachClient(cl)
		h.mu.Unlock()
	}()

	return sc.run()
}

// serverConn is one live client connection.
type serverConn struct {
	host *Host
	nc   net.Conn
	enc  *cipher.StreamConn
	cl   *core.Client
	user string
}

// run pumps the reader and the flush loop until either fails.
func (c *serverConn) run() error {
	errc := make(chan error, 2)
	done := make(chan struct{})
	defer close(done)

	go func() { errc <- c.readLoop(done) }()
	go func() { errc <- c.flushLoop(done) }()
	return <-errc
}

// readLoop handles client-to-server messages.
func (c *serverConn) readLoop(done <-chan struct{}) error {
	for {
		m, err := wire.ReadMessage(c.enc)
		if err != nil {
			return err
		}
		select {
		case <-done:
			return nil
		default:
		}
		switch v := m.(type) {
		case *wire.Input:
			c.host.mu.Lock()
			c.host.dpy.InjectInput(geom.Point{X: v.X, Y: v.Y})
			c.host.mu.Unlock()
			if h := c.host.opts.OnInput; h != nil {
				h(v)
			}
		case *wire.Resize:
			c.host.mu.Lock()
			c.cl.Resize(v.ViewW, v.ViewH)
			c.host.mu.Unlock()
		case *wire.UpdateRequest:
			// Push architecture: requests are legal but unnecessary.
		default:
			return fmt.Errorf("server: unexpected client message %v", m.Type())
		}
	}
}

// flushLoop is the delivery engine: every interval it drains up to the
// budget from the client buffer and writes the messages out. The
// buffered writer plus bounded budget approximates the non-blocking
// socket commit of §5 over a real TCP connection.
func (c *serverConn) flushLoop(done <-chan struct{}) error {
	t := time.NewTicker(c.host.opts.FlushInterval)
	defer t.Stop()
	bw := bufio.NewWriterSize(c.enc, 64<<10)
	for {
		select {
		case <-done:
			return nil
		case <-t.C:
		}
		c.host.mu.Lock()
		msgs := c.cl.Flush(c.host.opts.FlushBudget)
		c.host.mu.Unlock()
		for _, m := range msgs {
			if err := wire.WriteMessage(bw, m); err != nil {
				return err
			}
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
}
