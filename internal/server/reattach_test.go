package server

import (
	"net"
	"sync"
	"testing"
	"time"

	"thinc/internal/client"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/simnet"
	"thinc/internal/wire"
	"thinc/internal/xserver"
)

// Wire-v7 warm reattach: the payload store survives the disconnect on
// both sides, the client proves its holdings with the ticket's cache
// epoch, and the server answers with an explicit warm verdict and a
// resync that rides the cache instead of re-shipping the screen.

func warmOptions() Options {
	opts := fastOptions()
	opts.CacheKB = 1024
	opts.DisableAudit = true
	opts.DisableE2E = true
	opts.DisableOverload = true
	return opts
}

// trackedDialer dials addr and remembers the latest transport so the
// test can kill it mid-session (the reconnect-storm trigger).
type trackedDialer struct {
	mu   sync.Mutex
	addr string
	last net.Conn
}

func (d *trackedDialer) dial() (net.Conn, error) {
	nc, err := net.Dial("tcp", d.addr)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.last = nc
	d.mu.Unlock()
	return nc, nil
}

func (d *trackedDialer) kill() {
	d.mu.Lock()
	nc := d.last
	d.mu.Unlock()
	if nc != nil {
		nc.Close()
	}
}

// paintReattachScene draws distinct content plus one repeated pattern,
// so the session has both cacheable and plain traffic.
func paintReattachScene(host *Host) {
	pix := make([]pixel.ARGB, 16*16)
	for i := range pix {
		pix[i] = pixel.RGB(uint8(i*11), uint8(i>>1), uint8(190-i))
	}
	host.Do(func(d *xserver.Display) {
		win := d.CreateWindow(geom.XYWH(0, 0, 96, 64))
		d.FillRect(win, &xserver.GC{Fg: pixel.RGB(30, 90, 160)}, win.Bounds())
		d.PutImage(win, geom.XYWH(4, 4, 16, 16), pix, 16)
		d.PutImage(win, geom.XYWH(60, 40, 16, 16), pix, 16)
	})
}

// TestWarmReattachKeepsCache: a client that kept its store across the
// disconnect resumes warm — twice. The first warm resync seeds the
// cache with the screen's tiles; the second replays them as paints, so
// the store demonstrably carries content across reconnects.
func TestWarmReattachKeepsCache(t *testing.T) {
	host, addr := startHost(t, 96, 64, warmOptions())
	td := &trackedDialer{addr: addr}

	conn, err := client.DialWith(td.dial, "owner", "pw", 96, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	runDone := make(chan error, 1)
	go func() { runDone <- conn.Run() }()

	paintReattachScene(host)
	want := host.ScreenChecksum()
	waitFor(t, "initial convergence", func() bool {
		return conn.Snapshot().Checksum() == want && len(conn.Ticket()) > 0
	})
	if conn.Stats().CacheStored < 1 {
		t.Fatalf("repeat-heavy scene stored nothing: %+v", conn.Stats())
	}

	for cycle := 1; cycle <= 2; cycle++ {
		entriesBefore := conn.Stats().CacheEntries
		paintedBefore := conn.Stats().CachePainted
		td.kill()
		<-runDone
		waitFor(t, "session detached", func() bool { return host.NumDetached() >= 1 })

		if err := conn.Redial(); err != nil {
			t.Fatalf("cycle %d: redial: %v", cycle, err)
		}
		go func() { runDone <- conn.Run() }()

		st := conn.Stats()
		if st.WarmResumes != cycle {
			t.Fatalf("cycle %d: WarmResumes = %d, want %d", cycle, st.WarmResumes, cycle)
		}
		if st.ColdFallbacks != 0 {
			t.Fatalf("cycle %d: unexpected cold fallback: %+v", cycle, st)
		}
		if st.CacheEntries < entriesBefore {
			t.Fatalf("cycle %d: store shrank across warm resume: %d -> %d",
				cycle, entriesBefore, st.CacheEntries)
		}
		// The framebuffer is already converged (nothing changed while
		// detached), so wait for the fresh ticket too — the next cycle's
		// reattach needs it.
		waitFor(t, "post-reattach convergence", func() bool {
			return conn.Snapshot().Checksum() == want && len(conn.Ticket()) > 0
		})
		if cycle == 2 {
			// The second warm resync replays the tiles the first one
			// stored: cache paints, not re-shipped pixels.
			if got := conn.Stats().CachePainted; got <= paintedBefore {
				t.Fatalf("second warm resync replayed nothing: painted %d -> %d",
					paintedBefore, got)
			}
		}
	}
	r := host.Resilience()
	if r.WarmReattaches != 2 || r.ColdReattaches != 0 {
		t.Fatalf("host reattach stats: %+v", r)
	}
	conn.Close()
	<-runDone
}

// TestEpochDesyncReattachesCold: a reattach whose warm claim does not
// hold — no claim at all (the restarted-client case: valid ticket, no
// store), or a stale epoch — resumes the session but renegotiates the
// cache cold, and the server says so in ServerInit.CacheWarm.
func TestEpochDesyncReattachesCold(t *testing.T) {
	cases := []struct {
		name  string
		epoch func(real uint64) uint64
	}{
		{"client-restarted-epoch-0", func(uint64) uint64 { return 0 }},
		{"stale-epoch", func(real uint64) uint64 { return real + 12345 }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			host, addr := startHost(t, 96, 64, warmOptions())

			conn, err := client.Dial(addr, "owner", "pw", 96, 64)
			if err != nil {
				t.Fatal(err)
			}
			go conn.Run()
			waitFor(t, "ticket issued", func() bool { return len(conn.Ticket()) > 0 })
			ticket := conn.Ticket()
			conn.Close()
			waitFor(t, "session detached", func() bool { return host.NumDetached() >= 1 })

			// The server stamped epoch 1 into the first cached session.
			nc, enc := rawSession(t, addr, "owner", "pw",
				&wire.Reattach{Ticket: ticket, ViewW: 96, ViewH: 64, Name: "back",
					CacheKB:    uint32(client.DefaultCacheRequestKB),
					CacheEpoch: tc.epoch(1)})
			defer nc.Close()
			_ = nc.SetReadDeadline(time.Now().Add(5 * time.Second))
			m, err := wire.ReadMessage(enc)
			if err != nil {
				t.Fatal(err)
			}
			si, ok := m.(*wire.ServerInit)
			if !ok {
				t.Fatalf("expected ServerInit, got %v", m.Type())
			}
			if si.CacheWarm != 0 {
				t.Fatalf("%s resumed warm", tc.name)
			}
			if si.CacheKB == 0 {
				t.Fatalf("cold reattach lost the cache grant: %+v", si)
			}
			r := host.Resilience()
			if r.Reattaches != 1 || r.ColdReattaches != 1 || r.WarmReattaches != 0 {
				t.Fatalf("reattach stats: %+v", r)
			}
		})
	}
}

// TestCapacityChangeReattachesCold: a warm claim with the right epoch
// but a different capacity request cannot match the retained model, so
// the resume goes cold instead of trusting mismatched holdings.
func TestCapacityChangeReattachesCold(t *testing.T) {
	host, addr := startHost(t, 96, 64, warmOptions())

	conn, err := client.Dial(addr, "owner", "pw", 96, 64)
	if err != nil {
		t.Fatal(err)
	}
	go conn.Run()
	waitFor(t, "ticket issued", func() bool { return len(conn.Ticket()) > 0 })
	ticket := conn.Ticket()
	conn.Close()
	waitFor(t, "session detached", func() bool { return host.NumDetached() >= 1 })

	// Correct epoch, halved request: the regranted capacity differs
	// from the retained model's, so warm would be unsound.
	nc, enc := rawSession(t, addr, "owner", "pw",
		&wire.Reattach{Ticket: ticket, ViewW: 96, ViewH: 64, Name: "resized",
			CacheKB: 512, CacheEpoch: 1})
	defer nc.Close()
	_ = nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	m, err := wire.ReadMessage(enc)
	if err != nil {
		t.Fatal(err)
	}
	if si := m.(*wire.ServerInit); si.CacheWarm != 0 || si.CacheKB != 512 {
		t.Fatalf("capacity change resumed warm: %+v", si)
	}
	if r := host.Resilience(); r.ColdReattaches != 1 {
		t.Fatalf("reattach stats: %+v", r)
	}
}

// TestReattachStormAdmission: 50 clients through a simnet-shaped link
// are cut at once. The admission gate must cap concurrent cold resyncs
// at the budget (refusing the overflow with AttachBusy), and every
// client must still get back in and converge.
func TestReattachStormAdmission(t *testing.T) {
	const clients = 50
	const budget = 4

	opts := fastOptions()
	opts.DetachGrace = 20 * time.Second
	opts.HeartbeatTimeout = 20 * time.Second
	opts.ResyncAdmit = budget
	opts.ResyncRetryAfter = 20 * time.Millisecond
	opts.MaxViewers = clients + 1
	host, addr := startHost(t, 96, 64, opts)
	paintReattachScene(host)

	// The storm arrives through a shaped LAN link, like the real access
	// network it models.
	proxyAddr, stopProxy, err := simnet.StartProxy(addr, simnet.LAN())
	if err != nil {
		t.Fatal(err)
	}
	defer stopProxy()

	dialers := make([]*trackedDialer, clients)
	conns := make([]*client.Conn, clients)
	done := make(chan error, clients)
	for i := 0; i < clients; i++ {
		dialers[i] = &trackedDialer{addr: proxyAddr}
		role := uint8(wire.RoleViewer)
		if i == 0 {
			role = wire.RoleOwner
		}
		cn, err := client.DialWithRole(dialers[i].dial, "owner", "pw", 96, 64, role)
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = cn
		defer cn.Close()
		go func(cn *client.Conn) {
			done <- cn.RunAuto(client.ReconnectPolicy{
				Initial: 5 * time.Millisecond, MaxAttempts: 12, Seed: int64(i + 1)})
		}(cn)
	}
	waitFor(t, "all clients attached", func() bool { return host.NumClients() == clients })

	// Cut every transport at once: a full reattach storm.
	for _, d := range dialers {
		d.kill()
	}

	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		n := 0
		for _, cn := range conns {
			if cn.Stats().Reconnects >= 1 {
				n++
			}
		}
		if n == clients && host.NumClients() == clients {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if host.NumClients() != clients {
		t.Fatalf("storm did not drain: %d/%d clients back", host.NumClients(), clients)
	}

	r := host.Resilience()
	if r.ResyncPeakInFlight > budget {
		t.Fatalf("gate exceeded budget: peak %d > %d", r.ResyncPeakInFlight, budget)
	}
	// A redial can race the server noticing the dead transport and fall
	// back to a (still gated) fresh attach; tolerate a few, not a trend.
	if r.Reattaches < clients*9/10 {
		t.Fatalf("Reattaches = %d, want ~%d", r.Reattaches, clients)
	}
	// A 50-wide storm against a budget of 4 must have refused someone,
	// and the refused clients must have honored the retry-after.
	if r.ReattachRejected == 0 {
		t.Fatal("storm never tripped the admission gate")
	}
	busy := 0
	for _, cn := range conns {
		busy += cn.Stats().BusyRejections
	}
	if busy == 0 {
		t.Fatal("no client recorded an AttachBusy refusal")
	}

	// Everyone converges to the same screen after the storm.
	want := host.ScreenChecksum()
	waitFor(t, "post-storm convergence", func() bool {
		for _, cn := range conns {
			if cn.Snapshot().Checksum() != want {
				return false
			}
		}
		return true
	})
}
