package server

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync/atomic"
	"time"

	"thinc/internal/shard"
	"thinc/internal/wire"
)

// This file is the sharded, event-driven connection driver selected by
// Options.Sched. The classic driver (run) spends two goroutines and
// three tickers per connection; at thousands of sessions the scheduler
// and timer heaps dominate the host. Under Sched every connection is
// one shard.Task on a fixed worker pool, its pacing rides the shared
// timer wheel, and — crucially — an idle session arms nothing at all:
// the damage hook (core.ClientBuffer.SetOnQueued) arms a one-shot
// flush timer only when there is something to deliver, heartbeats are
// batched wheel entries, and the pump runs only when a timer or an
// inbound control message wakes it. Wire behavior is byte-identical to
// the goroutine driver; flushTick, heartbeatTick, auditTick, and
// dispatch are the same code in both.
type schedConn struct {
	task *shard.Task
	sess *session

	// batch plus its bound queue/flush pair; owned by the pump (the
	// sole writer), released by finishSched.
	batch *wire.Batch
	queue func(wire.Message) error
	flush func() error

	hbTimer    *shard.Timer // periodic heartbeat wheel entry
	auditTimer *shard.Timer // periodic audit wheel entry (nil when disabled)

	// due flags, set by wheel callbacks and consumed by the pump. A
	// timer callback only stores a flag and wakes the task, so wheel
	// advancing never blocks on connection work.
	hbDue    atomic.Bool
	auditDue atomic.Bool
	flushDue atomic.Bool

	// flushArmed marks that a flush timer pass is pending; the damage
	// hook arms at most one, and the pump re-arms while backlog, an
	// active degradation rung, or a held admission slot still needs
	// paced ticks.
	flushArmed atomic.Bool

	// lastIn is the unix-nano time of the last inbound message; the
	// heartbeat pass reaps an event-driven peer silent past the
	// timeout (a socket conn's blocking reader enforces its own read
	// deadline instead). lastHB is the time of our previous heartbeat
	// pass: silence is judged against our own ping cadence, so a pass
	// that arrives late (scheduler backlog, attach storm) never reaps
	// a peer that answered every ping it was actually sent.
	lastIn atomic.Int64
	lastHB atomic.Int64

	// Teardown. failed gates the one fail() winner; err is written
	// before done closes and read only after; finished gates the one
	// finishSched run; finC closes when teardown is fully complete.
	failed   atomic.Bool
	finished atomic.Bool
	err      error
	done     chan struct{}
	finC     chan struct{}

	// event marks an EventSession-driven connection: no reader
	// goroutine exists, so finishSched itself runs the Host teardown
	// tail (a socket conn's runScheduled caller does it instead).
	event bool
}

// errSessionClosed tears down an EventSession on explicit Close.
var errSessionClosed = errors.New("server: event session closed")

// initSched wires the connection to the shard scheduler: the task is
// pinned to the shard the session ticket hashes to, so a reattached
// session lands on the same worker and its state never migrates
// mid-flight.
func (c *serverConn) initSched(sess *session, event bool) {
	s := &c.sched
	s.sess = sess
	s.event = event
	s.batch = wire.NewBatch()
	s.queue, s.flush = c.makeQueueFlush(s.batch)
	s.done = make(chan struct{})
	s.finC = make(chan struct{})
	s.lastIn.Store(time.Now().UnixNano())
	s.task = c.host.opts.Sched.Pool().Task(shard.Hash(sess.ticket), c.pump)
}

// startSched arms the periodic wheel entries and the initial flush:
// the attach/reattach resync was queued into the client buffer before
// the damage hook was installed, so the first arm cannot rely on it.
func (c *serverConn) startSched() {
	s := &c.sched
	w := c.host.opts.Sched.Wheel()
	s.hbTimer = w.Every(c.host.opts.HeartbeatInterval, func() {
		s.hbDue.Store(true)
		s.task.Wake()
	})
	if !c.host.opts.DisableAudit {
		s.auditTimer = w.Every(c.host.opts.AuditInterval, func() {
			s.auditDue.Store(true)
			s.task.Wake()
		})
	}
	c.armFlush()
}

// armFlush is the damage hook: called (under h.mu) whenever a command
// is queued for this client. At most one flush pass is armed at a
// time; an idle session therefore holds no flush timer at all.
func (c *serverConn) armFlush() {
	if c.sched.flushArmed.CompareAndSwap(false, true) {
		c.scheduleFlush()
	}
}

// scheduleFlush books the pending flush pass on the wheel, one
// FlushInterval out — the same pacing the goroutine driver's ticker
// provides, but only while there is work.
func (c *serverConn) scheduleFlush() {
	s := &c.sched
	c.host.opts.Sched.Wheel().After(c.host.opts.FlushInterval, func() {
		s.flushDue.Store(true)
		s.task.Wake()
	})
}

// wakeControl nudges the pump after dispatch queued a control answer
// (pong echo, audit reply, e2e ack); a no-op under the goroutine
// driver, whose flush loop selects on the channels directly.
func (c *serverConn) wakeControl() {
	if c.sched.task != nil {
		c.sched.task.Wake()
	}
}

// pump is the task callback: one scheduled pass over everything due.
// It runs under the same watchdog as the classic loops, so a panic in
// the command path tears this connection down instead of the worker.
func (c *serverConn) pump() {
	s := &c.sched
	select {
	case <-s.done:
		c.finishSched()
		return
	default:
	}
	err := c.guard("pump", s.done, func(<-chan struct{}) error { return c.pumpOnce() })
	if err == nil {
		return
	}
	if !s.failed.CompareAndSwap(false, true) {
		return // a concurrent fail() won; its Wake books the final pass
	}
	s.err = err
	close(s.done)
	_ = c.nc.Close() // unblock the socket reader, if one exists
	if !s.task.Wake() {
		// The pool stopped beneath us and will never run the task
		// again; we are the in-flight run, so finishing inline is safe.
		c.finishSched()
	}
}

// pumpOnce services everything currently due on this connection.
func (c *serverConn) pumpOnce() error {
	s := &c.sched
	// Drain queued control answers first: cheap, already ordered.
	for drained := false; !drained; {
		select {
		case pg := <-c.pongs:
			if err := s.queue(pg); err != nil {
				return err
			}
			if err := s.flush(); err != nil {
				return err
			}
		case r := <-c.replies:
			c.auditReply(r)
		case a := <-c.acks:
			c.e2eAck(a)
		default:
			drained = true
		}
	}
	if s.auditDue.Swap(false) {
		if err := c.auditTick(s.queue, s.flush); err != nil {
			return err
		}
	}
	if s.hbDue.Swap(false) {
		if s.event {
			// No reader enforces a deadline for an event-driven peer;
			// the heartbeat pass is its liveness check. A peer is dead
			// only if it produced nothing since before our PREVIOUS
			// pass — i.e. it ignored a full ping round — and the total
			// silence exceeds the timeout. Judging against our own
			// cadence instead of the wall clock means late passes
			// (scheduler backlog) never reap a responsive peer. The
			// wrapped os.ErrDeadlineExceeded satisfies net.Error's
			// Timeout, so teardown counts a reap like a socket timeout.
			now := time.Now().UnixNano()
			prev := s.lastHB.Swap(now)
			in := s.lastIn.Load()
			if prev != 0 && in < prev {
				if silent := time.Duration(now - in); silent > c.host.opts.HeartbeatTimeout {
					return fmt.Errorf("server: peer silent for %v: %w", silent, os.ErrDeadlineExceeded)
				}
			}
		}
		if err := c.heartbeatTick(s.queue, s.flush); err != nil {
			return err
		}
	}
	if s.flushDue.Swap(false) {
		backlog, err := c.flushTick(s.batch, s.queue, s.flush)
		if err != nil {
			return err
		}
		if backlog > 0 || atomic.LoadInt32(&c.rung) > 0 || c.gateHeld.Load() {
			// Backlog still to drain, or the overload controller needs
			// paced ticks to walk the ladder back down.
			c.scheduleFlush()
		} else {
			s.flushArmed.Store(false)
			// Damage queued between the drain and the disarm saw
			// flushArmed still true and skipped arming; recheck.
			c.host.mu.Lock()
			n := c.cl.Buf.QueuedBytes()
			c.host.mu.Unlock()
			if n > 0 {
				c.armFlush()
			}
		}
	}
	return nil
}

// fail tears the connection down from outside the pump: the socket
// reader, Host.Close, or EventSession.Close/Deliver. The actual
// teardown is delegated to a final pump pass so it serializes with any
// in-flight run on the worker.
func (c *serverConn) fail(err error) {
	s := &c.sched
	if !s.failed.CompareAndSwap(false, true) {
		return
	}
	s.err = err
	close(s.done)
	_ = c.nc.Close()
	if s.task.Wake() {
		return
	}
	// The pool will never run the task again (stopped, or the task is
	// closed); drain any in-flight run, then finish here.
	s.task.CloseWait()
	c.finishSched()
}

// finishSched is the single teardown tail of a scheduled connection:
// stop the wheel entries, close the task, release the batch, and — for
// event sessions, which have no serving goroutine — run the Host
// teardown that runScheduled's caller performs for socket conns.
func (c *serverConn) finishSched() {
	s := &c.sched
	if !s.finished.CompareAndSwap(false, true) {
		return
	}
	if s.hbTimer != nil {
		s.hbTimer.Stop()
	}
	if s.auditTimer != nil {
		s.auditTimer.Stop()
	}
	s.task.Close()
	s.batch.Release()
	if s.event {
		c.host.finishConn(c, s.sess, s.err)
		c.host.wg.Done()
	}
	close(s.finC)
}

// runScheduled drives a socket connection under the sharded core: the
// calling goroutine becomes the blocking reader (one goroutine per
// socket — the kernel requires it — instead of the classic two), while
// delivery runs on the shard workers. It returns after the pump-side
// teardown completes.
func (c *serverConn) runScheduled() error {
	s := &c.sched
	err := c.guard("read", s.done, c.readLoop)
	if err != nil {
		c.fail(err)
	}
	<-s.finC
	if s.err != nil {
		return s.err
	}
	return err
}

// EventSession is a fully event-driven connection: no reader goroutine
// exists, and inbound messages are injected pre-decoded via Deliver.
// This is the substrate the 10k-session load harness runs on — an idle
// event session costs zero goroutines and zero armed timers beyond its
// batched heartbeat wheel entry.
type EventSession struct {
	sc *serverConn
}

// ServeEvent authenticates a connection exactly like ServeConn (the
// handshake is synchronous on the caller), then attaches it to the
// sharded core and returns. Outbound traffic flows through nc as
// usual; inbound messages must be injected with Deliver. Requires
// Options.Sched.
func (h *Host) ServeEvent(nc net.Conn) (*EventSession, error) {
	if h.opts.Sched == nil {
		return nil, errors.New("server: ServeEvent requires Options.Sched")
	}
	hr, err := h.handshake(nc)
	if err != nil {
		return nil, err
	}
	h.wg.Add(1)
	sc := h.attachConn(nc, hr, true)
	return &EventSession{sc: sc}, nil
}

// Deliver injects one decoded client-to-server message, exactly as if
// the read loop had decoded it from the socket. A dispatch error tears
// the session down and is returned.
func (es *EventSession) Deliver(m wire.Message) error {
	sc := es.sc
	s := &sc.sched
	s.lastIn.Store(time.Now().UnixNano())
	select {
	case <-s.done:
		return errSessionClosed
	default:
	}
	err := sc.guard("dispatch", s.done, func(<-chan struct{}) error { return sc.dispatch(m) })
	if err != nil {
		sc.fail(err)
	}
	return err
}

// Done is closed when the session has fully torn down.
func (es *EventSession) Done() <-chan struct{} { return es.sc.sched.finC }

// Err reports why the session ended; valid after Done is closed.
func (es *EventSession) Err() error {
	select {
	case <-es.sc.sched.finC:
		return es.sc.sched.err
	default:
		return nil
	}
}

// Close tears the session down (idempotent); it returns once teardown
// completes.
func (es *EventSession) Close() {
	es.sc.fail(errSessionClosed)
	<-es.sc.sched.finC
}
