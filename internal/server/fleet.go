package server

import (
	"sync"

	"thinc/internal/auth"
	"thinc/internal/core"
	"thinc/internal/shard"
	"thinc/internal/telemetry"
)

// Fleet hosts many display sessions on one shared sharded substrate:
// a single shard.Scheduler (worker pool, timer wheel, registry caps),
// a single telemetry registry and core instrument bundle, and one
// hostMetrics shared by every Host it creates. This is the multi-host
// counterpart of NewHost — the shape the 10k-session load harness
// runs, where per-host registries and per-conn metric series would
// dominate memory and scrape cost.
//
// Per-conn telemetry series and per-host gauges are intentionally
// disabled on the shared bundle; the fleet publishes aggregate
// thinc_fleet_* and thinc_shard_* series instead.
type Fleet struct {
	sched *shard.Scheduler
	reg   *telemetry.Registry
	tr    *telemetry.Tracer
	met   *hostMetrics
	opts  Options

	mu    sync.Mutex
	hosts []*Host
}

// NewFleet builds the shared substrate. opts configures every Host the
// fleet creates (its Sched and Core.Metrics fields are overwritten
// with the shared ones); so sizes the scheduler.
func NewFleet(opts Options, so shard.Options) *Fleet {
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer(4096)

	// Task-level scheduling histograms, fed straight from the pool
	// hooks: queue wait is the fairness headline (a starved session
	// shows up here long before a user notices), run time is the cost
	// of one pump pass.
	taskWait := reg.Histogram("thinc_shard_task_wait_ns",
		"queue wait from task wake to callback start", telemetry.FineLatencyBucketsNS)
	taskRun := reg.Histogram("thinc_shard_task_run_ns",
		"execution time of one task callback", telemetry.FineLatencyBucketsNS)
	so.OnTaskWait = func(ns int64) { taskWait.Observe(ns) }
	so.OnTaskRun = func(ns int64) { taskRun.Observe(ns) }
	sched := shard.NewScheduler(so)

	met := newHostMetrics(reg, tr) // perConn stays false: shared bundle
	cm := core.NewMetrics(reg)
	cm.Trace = tr
	opts.Sched = sched
	opts.Core.Metrics = cm

	f := &Fleet{sched: sched, reg: reg, tr: tr, met: met, opts: opts}

	// Scheduler occupancy: the load harness's self-checks read these —
	// goroutine count must stay O(workers), not O(sessions).
	pool := sched.Pool()
	reg.GaugeFunc("thinc_shard_workers", "run-queue worker shards",
		func() int64 { return int64(pool.NumShards()) })
	reg.CounterFunc("thinc_shard_task_wakes_total",
		"task wakes accepted (coalesced wakes count once)",
		func() int64 { return pool.Stats().Wakes })
	reg.CounterFunc("thinc_shard_task_runs_total",
		"task callback invocations across all shards",
		func() int64 { return pool.Stats().Runs })
	reg.GaugeFunc("thinc_shard_tasks", "live tasks pinned to the pool",
		func() int64 { return pool.Stats().Tasks })
	reg.GaugeFunc("thinc_shard_queue_depth", "tasks queued to run right now",
		func() int64 { return pool.Stats().Depth })
	reg.GaugeFunc("thinc_shard_queue_depth_peak", "high-watermark run-queue depth",
		func() int64 { return pool.Stats().MaxDepth })
	wheel := sched.Wheel()
	reg.CounterFunc("thinc_shard_wheel_scheduled_total",
		"timers inserted into the wheel (periodic re-arms count)",
		func() int64 { return wheel.Stats().Scheduled })
	reg.CounterFunc("thinc_shard_wheel_fired_total", "wheel timers fired",
		func() int64 { return wheel.Stats().Fired })
	reg.GaugeFunc("thinc_shard_wheel_pending", "wheel timers currently armed",
		func() int64 { return wheel.Stats().Pending })
	reg.GaugeFunc("thinc_shard_wheel_lag_ns",
		"lag of the wheel's most recent firing pass",
		func() int64 { return wheel.Stats().LagNS })

	// Fleet-wide aggregates replacing the per-host gauges.
	reg.GaugeFunc("thinc_fleet_hosts", "hosts created by this fleet",
		func() int64 {
			f.mu.Lock()
			defer f.mu.Unlock()
			return int64(len(f.hosts))
		})
	reg.GaugeFunc("thinc_fleet_clients", "attached clients across the fleet",
		func() int64 {
			var n int64
			for _, h := range f.snapshot() {
				n += int64(h.NumClients())
			}
			return n
		})
	reg.GaugeFunc("thinc_fleet_detached_sessions",
		"sessions retained for reattach across the fleet",
		func() int64 {
			var n int64
			for _, h := range f.snapshot() {
				n += int64(h.NumDetached())
			}
			return n
		})
	return f
}

// NewHost creates a Host of the given geometry on the shared substrate.
func (f *Fleet) NewHost(w, h int, gate *auth.Authenticator) *Host {
	host := newHostWith(w, h, gate, f.opts, f.met)
	f.mu.Lock()
	f.hosts = append(f.hosts, host)
	f.mu.Unlock()
	return host
}

// snapshot copies the host list so gauge reads never hold f.mu while
// taking a host lock.
func (f *Fleet) snapshot() []*Host {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*Host(nil), f.hosts...)
}

// Hosts returns the fleet's hosts in creation order.
func (f *Fleet) Hosts() []*Host { return f.snapshot() }

// Scheduler returns the shared shard scheduler.
func (f *Fleet) Scheduler() *shard.Scheduler { return f.sched }

// Telemetry returns the fleet-wide registry.
func (f *Fleet) Telemetry() *telemetry.Registry { return f.reg }

// Close tears down every host, then the shared scheduler.
func (f *Fleet) Close() {
	for _, h := range f.snapshot() {
		h.Close()
	}
	f.sched.Close()
}
