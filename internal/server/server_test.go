package server

import (
	"bytes"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"thinc/internal/audio"
	"thinc/internal/auth"
	"thinc/internal/client"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/shard"
	"thinc/internal/testutil"
	"thinc/internal/wire"
	"thinc/internal/xserver"
)

func testGate() *auth.Authenticator {
	acc := auth.NewAccounts()
	acc.Add("owner", "pw")
	return auth.NewAuthenticator("owner", acc)
}

// startHost runs a host on a loopback listener. Every test that starts
// a host also runs under the goroutine-leak checker: cleanups run LIFO,
// so the host and listener are torn down first and the leak diff runs
// last, holding Host.Close to releasing every goroutine it owns.
func startHost(t *testing.T, w, h int, opts Options) (*Host, string) {
	t.Helper()
	testutil.CheckGoroutines(t)
	host := NewHost(w, h, testGate(), opts)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go host.Serve(l)
	t.Cleanup(func() {
		l.Close()
		host.Close()
	})
	return host, l.Addr().String()
}

// waitFor polls until cond is true or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestEndToEndOverTCP(t *testing.T) {
	host, addr := startHost(t, 160, 120, Options{FlushInterval: time.Millisecond})

	conn, err := client.Dial(addr, "owner", "pw", 160, 120)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if conn.ServerW != 160 || conn.ServerH != 120 {
		t.Fatalf("server geometry %dx%d", conn.ServerW, conn.ServerH)
	}
	go conn.Run()

	// Draw on the host; the client must converge to identical pixels.
	host.Do(func(d *xserver.Display) {
		win := d.CreateWindow(geom.XYWH(0, 0, 160, 120))
		d.FillRect(win, &xserver.GC{Fg: pixel.RGB(10, 180, 40)}, geom.XYWH(10, 10, 80, 60))
		d.DrawText(win, &xserver.GC{Fg: pixel.RGB(255, 255, 255)}, 12, 12, "over tcp")
		pm := d.CreatePixmap(40, 30)
		d.FillRect(pm, &xserver.GC{Fg: pixel.RGB(200, 30, 30)}, pm.Bounds())
		d.CopyArea(win, pm, pm.Bounds(), geom.Point{X: 100, Y: 80})
	})
	want := host.ScreenChecksum()

	waitFor(t, "client convergence", func() bool {
		return conn.Snapshot().Checksum() == want
	})
}

// TestEndToEndOverTCPSharded is the socket end-to-end path under the
// sharded delivery core (Options.Sched): the accept goroutine becomes
// the blocking reader (runScheduled) while flushes, heartbeats, and
// dispatch run on the shard workers. The client must converge exactly
// as under the classic goroutine driver.
func TestEndToEndOverTCPSharded(t *testing.T) {
	sched := shard.NewScheduler(shard.Options{})
	t.Cleanup(sched.Close)
	host, addr := startHost(t, 160, 120, Options{FlushInterval: time.Millisecond, Sched: sched})

	conn, err := client.Dial(addr, "owner", "pw", 160, 120)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go conn.Run()

	host.Do(func(d *xserver.Display) {
		win := d.CreateWindow(geom.XYWH(0, 0, 160, 120))
		d.FillRect(win, &xserver.GC{Fg: pixel.RGB(10, 180, 40)}, geom.XYWH(10, 10, 80, 60))
		d.DrawText(win, &xserver.GC{Fg: pixel.RGB(255, 255, 255)}, 12, 12, "sharded")
	})
	want := host.ScreenChecksum()

	waitFor(t, "sharded client convergence", func() bool {
		return conn.Snapshot().Checksum() == want
	})
}

func TestBadPasswordRefused(t *testing.T) {
	_, addr := startHost(t, 64, 48, Options{})
	if _, err := client.Dial(addr, "owner", "wrong", 64, 48); err == nil {
		t.Fatal("bad password accepted")
	}
}

func TestUnknownUserRefused(t *testing.T) {
	_, addr := startHost(t, 64, 48, Options{})
	if _, err := client.Dial(addr, "mallory", "pw", 64, 48); err == nil {
		t.Fatal("unknown user accepted")
	}
}

func TestSharedSessionPeer(t *testing.T) {
	host, addr := startHost(t, 64, 48, Options{FlushInterval: time.Millisecond})
	host.gate.SetSessionPassword("collab")

	owner, err := client.Dial(addr, "owner", "pw", 64, 48)
	if err != nil {
		t.Fatal(err)
	}
	defer owner.Close()
	go owner.Run()

	peer, err := client.Dial(addr, "guest", "collab", 64, 48)
	if err != nil {
		t.Fatalf("peer with session password refused: %v", err)
	}
	defer peer.Close()
	go peer.Run()

	host.Do(func(d *xserver.Display) {
		win := d.CreateWindow(geom.XYWH(0, 0, 64, 48))
		d.FillRect(win, &xserver.GC{Fg: pixel.RGB(1, 2, 3)}, geom.XYWH(0, 0, 32, 24))
	})
	want := host.ScreenChecksum()
	waitFor(t, "owner convergence", func() bool { return owner.Snapshot().Checksum() == want })
	waitFor(t, "peer convergence", func() bool { return peer.Snapshot().Checksum() == want })
}

func TestInputRoundTrip(t *testing.T) {
	var got atomic.Value
	_, addr := startHost(t, 64, 48, Options{
		FlushInterval: time.Millisecond,
		OnInput:       func(ev *wire.Input) { got.Store(*ev) },
	})
	conn, err := client.Dial(addr, "owner", "pw", 64, 48)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go conn.Run()

	ev := &wire.Input{Kind: wire.InputMouseButton, X: 30, Y: 20, Code: 1, Press: true}
	if err := conn.SendInput(ev); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "input delivery", func() bool {
		v, ok := got.Load().(wire.Input)
		return ok && v.X == 30 && v.Y == 20 && v.Press
	})
}

func TestScaledClientOverTCP(t *testing.T) {
	host, addr := startHost(t, 128, 96, Options{FlushInterval: time.Millisecond})
	conn, err := client.Dial(addr, "owner", "pw", 32, 24)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go conn.Run()

	host.Do(func(d *xserver.Display) {
		win := d.CreateWindow(geom.XYWH(0, 0, 128, 96))
		d.FillRect(win, &xserver.GC{Fg: pixel.RGB(0, 0, 200)}, win.Bounds())
	})
	waitFor(t, "scaled fill", func() bool {
		snap := conn.Snapshot()
		return snap.W() == 32 && snap.At(16, 12) == pixel.RGB(0, 0, 200)
	})

	// Zoom in mid-session.
	if err := conn.RequestResize(64, 48); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "resize refresh", func() bool {
		snap := conn.Snapshot()
		return snap.W() == 64 && snap.At(32, 24) == pixel.RGB(0, 0, 200)
	})
}

func TestAudioOverTCP(t *testing.T) {
	host, addr := startHost(t, 64, 48, Options{FlushInterval: time.Millisecond})
	conn, err := client.Dial(addr, "owner", "pw", 64, 48)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go conn.Run()

	// Wait until the client session is attached (initial refresh seen).
	waitFor(t, "attach", func() bool { return conn.Stats().Messages[wire.TRaw] > 0 })

	s := host.Audio().OpenStream(audio.CD)
	for i := 0; i < 5; i++ {
		if _, err := s.Write(make([]byte, 1764)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "audio chunks", func() bool { return conn.Stats().AudioChunks >= 5 })
}

func TestSessionRecordAndReplay(t *testing.T) {
	host := NewHost(96, 72, testGate(), Options{FlushInterval: time.Millisecond})
	var buf safeBuffer
	rec := host.Record(&buf)

	host.Do(func(d *xserver.Display) {
		win := d.CreateWindow(geom.XYWH(0, 0, 96, 72))
		d.FillRect(win, &xserver.GC{Fg: pixel.RGB(50, 100, 150)}, geom.XYWH(0, 0, 48, 36))
		d.DrawText(win, &xserver.GC{Fg: pixel.RGB(255, 255, 0)}, 4, 40, "recorded")
		pm := d.CreatePixmap(20, 20)
		d.FillRect(pm, &xserver.GC{Fg: pixel.RGB(250, 20, 20)}, pm.Bounds())
		d.CopyArea(win, pm, pm.Bounds(), geom.Point{X: 60, Y: 40})
	})
	want := host.ScreenChecksum()

	// Let the recorder drain, then stop it.
	waitFor(t, "recording drains", func() bool { return buf.Len() > 100 })
	time.Sleep(20 * time.Millisecond)
	if err := rec.Close(); err != nil {
		t.Fatalf("recorder: %v", err)
	}

	// Replay into a fresh client: the session reappears pixel-exact.
	viewer := client.New(96, 72)
	r := buf.Reader()
	count := 0
	var lastTS uint64
	for {
		rec, err := ReadRecord(r)
		if err != nil {
			break
		}
		if rec.AtUS < lastTS {
			t.Fatal("timestamps must be monotonic")
		}
		lastTS = rec.AtUS
		if err := viewer.Apply(rec.Msg); err != nil {
			t.Fatalf("replay: %v", err)
		}
		count++
	}
	if count == 0 {
		t.Fatal("empty recording")
	}
	if viewer.FB().Checksum() != want {
		t.Fatalf("replayed screen %08x != live %08x", viewer.FB().Checksum(), want)
	}
}

// safeBuffer is a mutex-guarded bytes.Buffer (recorder writes from its
// own goroutine).
type safeBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *safeBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *safeBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Len()
}

func (b *safeBuffer) Reader() *bytes.Reader {
	b.mu.Lock()
	defer b.mu.Unlock()
	return bytes.NewReader(b.buf.Bytes())
}
