package server

import (
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"thinc/internal/auth"
	"thinc/internal/cipher"
	"thinc/internal/client"
	"thinc/internal/faultconn"
	"thinc/internal/geom"
	"thinc/internal/pixel"
	"thinc/internal/wire"
	"thinc/internal/xserver"
)

// fastOptions returns Options with aggressive timers so resilience
// behavior is observable within test budgets.
func fastOptions() Options {
	return Options{
		FlushInterval:     time.Millisecond,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  120 * time.Millisecond,
		DetachGrace:       2 * time.Second,
	}
}

// rawSession performs the full client handshake by hand, returning the
// plaintext conn and the encrypted transport — for tests that need to
// speak raw protocol at the server.
func rawSession(t *testing.T, addr, user, pass string, hello wire.Message) (net.Conn, *cipher.StreamConn) {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	m, err := wire.ReadMessage(nc)
	if err != nil {
		t.Fatal(err)
	}
	ch := m.(*wire.AuthChallenge)
	if err := wire.WriteMessage(nc, &wire.AuthResponse{
		User: user, Proof: auth.Proof(pass, ch.Nonce),
	}); err != nil {
		t.Fatal(err)
	}
	if m, err = wire.ReadMessage(nc); err != nil {
		t.Fatal(err)
	}
	if res := m.(*wire.AuthResult); !res.OK {
		t.Fatalf("auth refused: %s", res.Reason)
	}
	enc, err := cipher.NewStreamConn(nc, auth.SessionKey(pass, ch.Nonce), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteMessage(enc, hello); err != nil {
		t.Fatal(err)
	}
	return nc, enc
}

// TestReconnectWithTicketResync is the headline fault-injection
// scenario: the client's transport is reset mid-session (deterministic
// injected fault), the auto-reconnect loop redials with backoff,
// presents the session ticket, the server reattaches the retained
// session and resyncs with a full-screen RAW, and the client converges
// to the server's exact screen checksum.
func TestReconnectWithTicketResync(t *testing.T) {
	host, addr := startHost(t, 160, 120, fastOptions())

	// First dial gets a connection that dies after ~24 KB of updates
	// (mid-RAW for a 160x120 session); later dials are clean.
	var dials int
	var mu sync.Mutex
	dial := func() (net.Conn, error) {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		dials++
		first := dials == 1
		mu.Unlock()
		if first {
			return faultconn.Wrap(nc, faultconn.Plan{ReadFaultAfter: 24 << 10}), nil
		}
		return nc, nil
	}

	conn, err := client.DialWith(dial, "owner", "pw", 160, 120)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	runDone := make(chan error, 1)
	go func() {
		runDone <- conn.RunAuto(client.ReconnectPolicy{
			Initial: 20 * time.Millisecond, MaxAttempts: 10, Seed: 7,
		})
	}()

	// Paint enough distinct content to blow past the fault budget.
	host.Do(func(d *xserver.Display) {
		win := d.CreateWindow(geom.XYWH(0, 0, 160, 120))
		d.FillRect(win, &xserver.GC{Fg: pixel.RGB(10, 180, 40)}, win.Bounds())
	})
	for i := 0; i < 12; i++ {
		host.Do(func(d *xserver.Display) {
			win := d.CreateWindow(geom.XYWH(0, 0, 160, 120))
			pix := make([]pixel.ARGB, 40*30)
			for j := range pix {
				pix[j] = pixel.RGB(uint8(i*17+j), uint8(j), uint8(i))
			}
			d.PutImage(win, geom.XYWH((i%4)*40, (i/4)*30, 40, 30), pix, 40)
		})
		time.Sleep(2 * time.Millisecond)
	}

	// The injected reset must have fired and the client reconnected.
	waitFor(t, "client reconnect", func() bool {
		return conn.Stats().Reconnects >= 1
	})
	waitFor(t, "server reattach", func() bool {
		return host.Resilience().Reattaches >= 1
	})

	// After reconnect + resync, the client converges to the server's
	// exact screen.
	want := host.ScreenChecksum()
	waitFor(t, "post-reconnect convergence", func() bool {
		return conn.Snapshot().Checksum() == want && conn.State() == client.StateConnected
	})

	mu.Lock()
	if dials < 2 {
		t.Fatalf("expected a redial, saw %d dials", dials)
	}
	mu.Unlock()
	conn.Close()
	<-runDone
}

// TestStalledClientReaped proves dead-peer detection: a client that
// completes the handshake and then goes silent (reads nothing, sends
// nothing — the half-dead peer) is torn down within the heartbeat
// timeout, and the server's per-connection goroutines all exit.
func TestStalledClientReaped(t *testing.T) {
	host, addr := startHost(t, 64, 48, fastOptions())

	before := runtime.NumGoroutine()

	nc, _ := rawSession(t, addr, "owner", "pw",
		&wire.ClientInit{ViewW: 64, ViewH: 48, Name: "stalled"})
	defer nc.Close()

	waitFor(t, "client attach", func() bool { return host.NumClients() == 1 })

	// Go silent. The server must reap within the heartbeat timeout
	// (plus scheduling slack).
	start := time.Now()
	waitFor(t, "dead peer reaped", func() bool { return host.NumClients() == 0 })
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("reap took %v", elapsed)
	}
	if r := host.Resilience(); r.Reaps < 1 {
		t.Fatalf("reap not counted: %+v", r)
	}

	// Zero leaked goroutines: both per-conn loops exited.
	waitFor(t, "goroutines drained", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before
	})

	// The reaped session is retained for reattach during the grace.
	if host.NumDetached() != 1 {
		t.Fatalf("detached sessions = %d, want 1", host.NumDetached())
	}
}

// TestViewportGeometryRejected: absurd handshake geometry must refuse
// the connection instead of reaching core.AttachClient.
func TestViewportGeometryRejected(t *testing.T) {
	host, addr := startHost(t, 64, 48, fastOptions())

	nc, enc := rawSession(t, addr, "owner", "pw",
		&wire.ClientInit{ViewW: 60000, ViewH: 48, Name: "absurd"})
	defer nc.Close()

	// The server must close the connection without a ServerInit.
	_ = nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if m, err := wire.ReadMessage(enc); err == nil {
		t.Fatalf("absurd viewport accepted, got %v", m.Type())
	}
	if host.NumClients() != 0 {
		t.Fatal("absurd viewport attached a client")
	}
	waitFor(t, "bad handshake counted", func() bool {
		return host.Resilience().BadHandshakes >= 1
	})

	// Zero-sized viewport remains the legal "session size" request.
	conn, err := client.Dial(addr, "owner", "pw", 0, 0)
	if err != nil {
		t.Fatalf("zero viewport refused: %v", err)
	}
	defer conn.Close()
	if snap := conn.Snapshot(); snap.W() != 64 || snap.H() != 48 {
		t.Fatalf("zero viewport resolved to %dx%d", snap.W(), snap.H())
	}
}

// TestUnknownClientMessageSkipped: a well-framed message of a type the
// server does not know must be skipped, not fatal — the connection
// keeps working afterwards.
func TestUnknownClientMessageSkipped(t *testing.T) {
	host, addr := startHost(t, 64, 48, fastOptions())

	nc, enc := rawSession(t, addr, "owner", "pw",
		&wire.ClientInit{ViewW: 64, ViewH: 48, Name: "futuristic"})
	defer nc.Close()
	if _, err := wire.ReadMessage(enc); err != nil { // ServerInit
		t.Fatal(err)
	}

	// A frame of type 0xEE with a 4-byte payload, then a Ping.
	if _, err := enc.Write([]byte{0xee, 0, 0, 0, 4, 1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteMessage(enc, &wire.Ping{Seq: 42}); err != nil {
		t.Fatal(err)
	}

	// The server answers the Ping — it survived the unknown frame. The
	// stream may interleave ticket/updates/pings; scan for our Pong.
	deadline := time.Now().Add(5 * time.Second)
	_ = nc.SetReadDeadline(deadline)
	for {
		m, err := wire.ReadMessage(enc)
		if err != nil {
			t.Fatalf("connection died after unknown message: %v", err)
		}
		if p, ok := m.(*wire.Pong); ok && p.Seq == 42 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no pong after unknown message")
		}
	}
	if r := host.Resilience(); r.SkippedUnknown < 1 {
		t.Fatalf("unknown message not counted: %+v", r)
	}
}

// TestSlowClientResync: when a client's command backlog outgrows
// MaxBacklogBytes, the backlog is discarded and replaced by a fresh
// full-screen resync — and the client still converges to the correct
// screen once the burst ends.
//
// The burst uses Composite (Transparent-class RAWs): opaque commands
// clip their predecessors' live regions, so an opaque backlog is
// bounded by the screen area no matter how much is drawn — blends are
// what accumulate without bound and need the slow-client policy.
func TestSlowClientResync(t *testing.T) {
	opts := fastOptions()
	opts.FlushBudget = 512          // trickle delivery
	opts.MaxBacklogBytes = 16 << 10 // > one 64x48 RAW (12.3 KB)
	host, addr := startHost(t, 64, 48, opts)

	conn, err := client.Dial(addr, "owner", "pw", 64, 48)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go conn.Run()

	// Burst: staggered 16x16 blends. Transparent commands evict
	// nothing, so the backlog grows past the bound.
	pix := make([]pixel.ARGB, 16*16)
	for i := 0; i < 60; i++ {
		host.Do(func(d *xserver.Display) {
			win := d.CreateWindow(geom.XYWH(0, 0, 64, 48))
			for j := range pix {
				pix[j] = pixel.RGB(uint8(i*31+j), uint8(j*3), uint8(i*7))
			}
			d.Composite(win, geom.XYWH((i*3)%48, (i*5)%32, 16, 16), pix, 16)
		})
	}

	waitFor(t, "slow-client resync", func() bool {
		return host.Resilience().SlowResyncs >= 1
	})

	// Once the burst is over, the resync brings the client current.
	want := host.ScreenChecksum()
	waitFor(t, "post-resync convergence", func() bool {
		return conn.Snapshot().Checksum() == want
	})
}

// TestDetachedSessionExpires: a retained session outliving the grace
// period is forgotten; a reattach with its ticket falls back to a
// fresh attach instead of failing.
func TestDetachedSessionExpires(t *testing.T) {
	opts := fastOptions()
	opts.DetachGrace = 60 * time.Millisecond
	host, addr := startHost(t, 64, 48, opts)

	conn, err := client.Dial(addr, "owner", "pw", 64, 48)
	if err != nil {
		t.Fatal(err)
	}
	go conn.Run()
	waitFor(t, "ticket issued", func() bool { return len(conn.Ticket()) > 0 })
	ticket := conn.Ticket()
	conn.Close()

	waitFor(t, "session detached", func() bool { return host.NumDetached() >= 1 })
	waitFor(t, "session expired", func() bool {
		r := host.Resilience()
		return host.NumDetached() == 0 && r.ExpiredSessions >= 1
	})

	// Reattach with the expired ticket: served as a fresh attach.
	nc, enc := rawSession(t, addr, "owner", "pw",
		&wire.Reattach{Ticket: ticket, ViewW: 64, ViewH: 48, Name: "late"})
	defer nc.Close()
	_ = nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	m, err := wire.ReadMessage(enc)
	if err != nil {
		t.Fatalf("expired-ticket reattach refused outright: %v", err)
	}
	si, ok := m.(*wire.ServerInit)
	if !ok {
		t.Fatalf("expected ServerInit, got %v", m.Type())
	}
	if si.Ver != wire.ProtoVersion {
		t.Fatalf("ServerInit.Ver = %d, want %d", si.Ver, wire.ProtoVersion)
	}
	if r := host.Resilience(); r.Reattaches != 0 {
		t.Fatalf("expired ticket reattached a session: %+v", r)
	}
}

// TestHeartbeatKeepsIdleSessionAlive: with no display activity and no
// input, the heartbeat traffic alone keeps the connection up well past
// the heartbeat timeout.
func TestHeartbeatKeepsIdleSessionAlive(t *testing.T) {
	host, addr := startHost(t, 64, 48, fastOptions())
	conn, err := client.Dial(addr, "owner", "pw", 64, 48)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go conn.Run()

	// Sit idle for several heartbeat timeouts.
	time.Sleep(500 * time.Millisecond)
	if host.NumClients() != 1 {
		t.Fatal("idle client was reaped despite answering heartbeats")
	}
	if conn.Stats().PongsSent < 3 {
		t.Fatalf("expected heartbeat traffic, pongs=%d", conn.Stats().PongsSent)
	}
	if r := host.Resilience(); r.Reaps != 0 {
		t.Fatalf("idle session reaped: %+v", r)
	}
}
