package server

import (
	"net"
	"sync"
	"testing"
	"time"

	"thinc/internal/client"
	"thinc/internal/telemetry"
)

// e2eOptions: fast flush and mark cadence so a test sees acked marks in
// milliseconds, with the audit off to keep the wire quiet.
func e2eOptions() Options {
	return Options{
		FlushInterval:     time.Millisecond,
		HeartbeatInterval: 10 * time.Millisecond,
		MarkInterval:      time.Millisecond,
		MarkTimeout:       150 * time.Millisecond,
		DisableAudit:      true,
	}
}

// waitForVerdict paints fresh damage while waiting for the legacy
// verdict: marks ride damage, so an idle screen sends none and the
// misses never accumulate.
func waitForVerdict(t *testing.T, host *Host) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if host.Resilience().E2ELegacyPeers == 1 {
			return
		}
		paintTestScene(host)
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("timeout waiting for legacy verdict")
}

func TestE2EMarkAckFlow(t *testing.T) {
	host, addr := startHost(t, 96, 64, e2eOptions())
	conn, err := client.Dial(addr, "owner", "pw", 96, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go conn.Run()

	paintTestScene(host)
	want := host.ScreenChecksum()
	waitFor(t, "convergence", func() bool {
		return conn.Snapshot().Checksum() == want
	})
	waitFor(t, "acked marks", func() bool {
		return host.Resilience().E2EAcks > 0
	})

	rs := host.Resilience()
	if rs.E2EMarks < rs.E2EAcks {
		t.Errorf("marks %d < acks %d", rs.E2EMarks, rs.E2EAcks)
	}
	if rs.E2ELegacyPeers != 0 {
		t.Errorf("live v5 peer was declared legacy: %+v", rs)
	}
	st := conn.Stats()
	if st.MarksSeen == 0 || st.MarkAcksSent == 0 {
		t.Errorf("client saw %d marks / sent %d acks", st.MarksSeen, st.MarkAcksSent)
	}

	// The stage decomposition must be consistent with the headline
	// figure by construction: queue+write+wire+apply == e2e, modulo the
	// ns→µs truncation of each e2e observation.
	reg := host.Telemetry()
	var stageSumNS, stageCount int64
	for _, stage := range []string{"queue", "write", "wire", "apply"} {
		n, sum := reg.HistogramStats("thinc_e2e_stage_ns", telemetry.L("stage", stage))
		if n == 0 {
			t.Errorf("stage %q has no observations", stage)
		}
		stageSumNS += sum
		stageCount = n
	}
	e2eCount, e2eSumUS := int64(0), int64(0)
	for _, s := range reg.Snapshot() {
		if s.Name == "thinc_e2e_latency_us" && s.Histogram != nil {
			e2eCount += s.Histogram.Count
			e2eSumUS += s.Histogram.Sum
		}
	}
	if e2eCount != stageCount {
		t.Errorf("e2e observations %d != per-stage observations %d", e2eCount, stageCount)
	}
	if diff := stageSumNS - e2eSumUS*1000; diff < 0 || diff >= e2eCount*1000 {
		t.Errorf("stage sum %dns vs e2e sum %dus: inconsistent (diff %d, acks %d)",
			stageSumNS, e2eSumUS, diff, e2eCount)
	}
}

func TestE2ELegacyPeerUnmarked(t *testing.T) {
	opts := e2eOptions()
	opts.MarkTimeout = 20 * time.Millisecond
	host, addr := startHost(t, 96, 64, opts)
	conn, err := client.Dial(addr, "owner", "pw", 96, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetE2EDisabled(true) // a faithful pre-v5 peer: marks ignored
	go conn.Run()

	paintTestScene(host)
	want := host.ScreenChecksum()
	waitFor(t, "convergence", func() bool {
		return conn.Snapshot().Checksum() == want
	})
	// Marks ride damage, and the verdict needs several to expire — keep
	// the display busy while the misses accumulate.
	waitForVerdict(t, host)
	marksAtVerdict := host.Resilience().E2EMarks

	// Keep the display busy: a legacy peer must stay unmarked even with
	// fresh damage flowing.
	paintTestScene(host)
	time.Sleep(50 * time.Millisecond)
	rs := host.Resilience()
	if rs.E2EMarks != marksAtVerdict {
		t.Errorf("server kept marking a legacy peer: %d -> %d marks",
			marksAtVerdict, rs.E2EMarks)
	}
	if rs.E2EAcks != 0 {
		t.Errorf("legacy peer acked %d marks", rs.E2EAcks)
	}
	if st := conn.Stats(); st.MarkAcksSent != 0 {
		t.Errorf("legacy peer sent %d acks", st.MarkAcksSent)
	}
}

func TestE2EDisabled(t *testing.T) {
	opts := e2eOptions()
	opts.DisableE2E = true
	host, addr := startHost(t, 96, 64, opts)
	conn, err := client.Dial(addr, "owner", "pw", 96, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go conn.Run()

	paintTestScene(host)
	want := host.ScreenChecksum()
	waitFor(t, "convergence", func() bool {
		return conn.Snapshot().Checksum() == want
	})
	time.Sleep(30 * time.Millisecond)
	if rs := host.Resilience(); rs.E2EMarks != 0 {
		t.Errorf("DisableE2E sent %d marks", rs.E2EMarks)
	}
	if st := conn.Stats(); st.MarksSeen != 0 {
		t.Errorf("client saw %d marks with e2e disabled", st.MarksSeen)
	}
}

func TestE2EVerdictRidesReattach(t *testing.T) {
	opts := e2eOptions()
	opts.MarkTimeout = 20 * time.Millisecond
	host, addr := startHost(t, 96, 64, opts)
	var tmu sync.Mutex
	var transport net.Conn
	conn, err := client.DialWith(func() (net.Conn, error) {
		nc, err := net.Dial("tcp", addr)
		tmu.Lock()
		transport = nc
		tmu.Unlock()
		return nc, err
	}, "owner", "pw", 96, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetE2EDisabled(true)
	go conn.Run()

	paintTestScene(host)
	waitForVerdict(t, host)
	waitFor(t, "ticket issued", func() bool { return len(conn.Ticket()) > 0 })

	// Drop the transport so the server detaches and retains the session,
	// then reattach by ticket: the verdict lives on the retained core
	// client, so the new connection must not be re-probed with marks.
	tmu.Lock()
	transport.Close()
	tmu.Unlock()
	waitFor(t, "session detached", func() bool { return host.NumDetached() == 1 })
	if err := conn.Redial(); err != nil {
		t.Fatal(err)
	}
	go conn.Run()
	waitFor(t, "reattach", func() bool { return host.Resilience().Reattaches == 1 })
	marksAtVerdict := host.Resilience().E2EMarks
	paintTestScene(host)
	time.Sleep(50 * time.Millisecond)
	rs := host.Resilience()
	if rs.E2ELegacyPeers != 1 {
		t.Errorf("verdict re-derived after reattach: %d legacy peers", rs.E2ELegacyPeers)
	}
	if rs.E2EMarks != marksAtVerdict {
		t.Errorf("reattached legacy peer was re-marked: %d -> %d",
			marksAtVerdict, rs.E2EMarks)
	}
}
